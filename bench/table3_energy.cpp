// Table III — Mobile-charger energy accounting: the depot-side ledger a
// network operator could audit, benign vs CSA.
//
// Expected shape: travel, radiated energy, and per-session radiated rate
// are statistically indistinguishable between the honest charger and the
// attacker (the stealth-by-construction property); the only divergent
// number — energy actually delivered to key nodes — is invisible to the
// depot.
#include <iostream>
#include <set>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "runner/runner.hpp"

namespace {
constexpr int kSeeds = 10;
}

int main() {
  using namespace wrsn;

  struct Trial {
    int mode;
    int seed;
  };
  std::vector<Trial> trials;
  for (int mode = 0; mode < 2; ++mode) {
    for (int seed = 1; seed <= kSeeds; ++seed) trials.push_back({mode, seed});
  }

  runner::RunStats stats;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [](const Trial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(trial.seed);
        return analysis::run_scenario(cfg, trial.mode == 0
                                               ? analysis::ChargerMode::Benign
                                               : analysis::ChargerMode::Attack);
      },
      {.label = "table3"}, &stats);

  struct Row {
    std::vector<double> travel, radiated, drawn, sessions, rate, to_keys;
  };
  Row rows[2];

  std::size_t next = 0;
  for (int mode = 0; mode < 2; ++mode) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const analysis::ScenarioResult& result = results[next++];
      Row& r = rows[mode];
      r.travel.push_back(result.ledger.travel / 1000.0);
      r.radiated.push_back(result.ledger.radiated_total() / 1000.0);
      r.drawn.push_back(result.ledger.drawn_for_radiation / 1000.0);
      r.sessions.push_back(double(result.trace.sessions.size()));
      double session_time = 0.0, delivered_keys = 0.0;
      const std::set<net::NodeId> keys(result.keys.begin(),
                                       result.keys.end());
      for (const sim::SessionRecord& s : result.trace.sessions) {
        session_time += s.end - s.start;
        if (keys.count(s.node) > 0) delivered_keys += s.delivered;
      }
      r.rate.push_back(session_time > 0.0
                           ? result.ledger.radiated_total() / session_time
                           : 0.0);
      r.to_keys.push_back(delivered_keys / 1000.0);
    }
  }

  analysis::Table table("Table III: depot-auditable MC energy ledger (mean "
                        "+- 95% CI, " + std::to_string(kSeeds) + " seeds)");
  table.headers({"metric", "benign", "CSA", "depot-visible?"});
  const auto emit = [&](const char* name, const std::vector<double>& a,
                        const std::vector<double>& b, const char* visible) {
    const auto sa = analysis::summarize(a);
    const auto sb = analysis::summarize(b);
    table.row({name, analysis::fmt_ci(sa.mean, sa.ci95, 1),
               analysis::fmt_ci(sb.mean, sb.ci95, 1), visible});
  };
  emit("travel energy [kJ]", rows[0].travel, rows[1].travel, "yes");
  emit("radiated energy [kJ]", rows[0].radiated, rows[1].radiated, "yes");
  emit("battery drawn for RF [kJ]", rows[0].drawn, rows[1].drawn, "yes");
  emit("sessions completed", rows[0].sessions, rows[1].sessions, "yes");
  emit("radiated W per session-s", rows[0].rate, rows[1].rate, "yes");
  emit("delivered to key nodes [kJ]", rows[0].to_keys, rows[1].to_keys,
       "NO (node-side only)");
  table.print(std::cout);
  analysis::print_perf(std::cout, stats);

  std::cout << "\nEvery depot-visible row overlaps across the two chargers;"
               " the one row that separates them cannot be audited without"
               " per-node coulomb counters.\n";
  return 0;
}
