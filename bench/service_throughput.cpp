// service_throughput — mission-server throughput on multi-tenant what-if
// workloads (BENCH_service.json, schema wrsn-service-bench-v1).
//
//   $ ./service_throughput [out.json]
//
// The workload models a planning-as-a-service deployment: many clients
// submitting what-if missions where most requests duplicate a recently-asked
// scenario (same config digest + seed).  Cases sweep
//
//   * worker threads 1/2/4/8 on an all-unique stream (scaling row),
//   * a 90 %-duplicate stream with the cache+coalescing enabled vs the
//     cache disabled (the headline speedup: shared results vs re-execution),
//   * a fully-warm stream (every request a cache hit: the floor latency).
//
// Four client threads issue blocking submits and record per-request wall
// latency; the JSON carries throughput, p50/p99, and the service tallies so
// validate_metrics.py can cross-check requests = executions + hits +
// coalesced + shed.  Numbers are wall-clock: record on quiet Release
// machines only (run_benchmarks.sh enforces the build type).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "svc/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRequestsPerCase = 2'000;
constexpr std::size_t kClientThreads = 4;

wrsn::svc::MissionRequest mission(std::uint64_t seed) {
  wrsn::svc::MissionRequest request;
  request.config = wrsn::analysis::default_scenario();
  request.config.seed = seed;
  request.config.topology.node_count = 16;
  request.config.topology.region = {{0.0, 0.0}, {160.0, 160.0}};
  request.config.topology.battery_capacity = 2'000.0;
  request.config.world.drain.sensing_power = 0.05;
  request.config.horizon = 7'200.0;
  return request;
}

/// Request stream with the given duplicate fraction: request i is a
/// duplicate (cycling through the unique pool) when i % 10 < 10*dup.
std::vector<wrsn::svc::MissionRequest> make_stream(double duplicate_fraction,
                                                   std::uint64_t seed_base) {
  const auto dup_slots =
      static_cast<std::size_t>(duplicate_fraction * 10.0 + 0.5);
  std::vector<wrsn::svc::MissionRequest> stream;
  stream.reserve(kRequestsPerCase);
  std::uint64_t next_unique = seed_base;
  std::uint64_t dup_cursor = seed_base;
  for (std::size_t i = 0; i < kRequestsPerCase; ++i) {
    if (i % 10 < dup_slots && next_unique > seed_base) {
      stream.push_back(mission(seed_base + (dup_cursor++ % (next_unique - seed_base))));
    } else {
      stream.push_back(mission(next_unique++));
    }
  }
  return stream;
}

struct CaseResult {
  std::string name;
  std::size_t threads = 0;
  double duplicate_fraction = 0.0;
  bool cache = true;
  bool warm = false;
  wrsn::svc::ServiceStats stats;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Runs one case: `clients` threads issue blocking submits over disjoint
/// slices of the stream, per-request latencies pooled for percentiles.
CaseResult run_case(const std::string& name, std::size_t threads,
                    double duplicate_fraction, bool cache, bool warm,
                    std::uint64_t seed_base) {
  wrsn::svc::ServiceOptions options;
  options.threads = threads;
  options.cache_capacity = cache ? 4'096 : 0;
  options.queue_limit = kRequestsPerCase + 16;
  wrsn::svc::MissionService service(options);

  const std::vector<wrsn::svc::MissionRequest> stream =
      make_stream(duplicate_fraction, seed_base);
  if (warm) {
    // Pre-execute every unique scenario so the measured pass is all hits.
    for (const auto& request : stream) service.submit(request);
    service.drain();
  }

  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<std::thread> clients;
  const auto begin = Clock::now();
  for (std::size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      latencies[c].reserve(kRequestsPerCase / kClientThreads + 1);
      for (std::size_t i = c; i < stream.size(); i += kClientThreads) {
        const auto t0 = Clock::now();
        const wrsn::svc::MissionResponse resp = service.submit(stream[i]);
        const auto t1 = Clock::now();
        if (resp.status != wrsn::svc::MissionStatus::kOk) {
          std::fprintf(stderr, "request %zu failed (status %d)\n", i,
                       int(resp.status));
          std::exit(1);
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - begin).count();

  std::vector<double> all;
  all.reserve(kRequestsPerCase);
  for (const auto& slice : latencies) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  std::sort(all.begin(), all.end());

  CaseResult r;
  r.name = name;
  r.threads = threads;
  r.duplicate_fraction = duplicate_fraction;
  r.cache = cache;
  r.warm = warm;
  r.stats = service.stats();
  r.wall_ms = wall_ms;
  r.throughput_rps = double(all.size()) / (wall_ms / 1'000.0);
  r.p50_ms = all[all.size() / 2];
  r.p99_ms = all[std::min(all.size() - 1, (all.size() * 99) / 100)];
  return r;
}

void append_case(std::string& out, const CaseResult& r, bool last) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"threads\": %zu,\n"
      "      \"duplicate_fraction\": %.2f,\n"
      "      \"cache\": %s,\n"
      "      \"warm\": %s,\n"
      "      \"requests\": %llu,\n"
      "      \"executions\": %llu,\n"
      "      \"cache_hits\": %llu,\n"
      "      \"coalesced\": %llu,\n"
      "      \"shed\": %llu,\n"
      "      \"wall_ms\": %.3f,\n"
      "      \"throughput_rps\": %.1f,\n"
      "      \"latency_ms\": { \"p50\": %.4f, \"p99\": %.4f }\n"
      "    }%s\n",
      r.name.c_str(), r.threads, r.duplicate_fraction,
      r.cache ? "true" : "false", r.warm ? "true" : "false",
      (unsigned long long)r.stats.requests,
      (unsigned long long)r.stats.executions,
      (unsigned long long)r.stats.cache_hits,
      (unsigned long long)r.stats.coalesced,
      (unsigned long long)r.stats.shed, r.wall_ms, r.throughput_rps, r.p50_ms,
      r.p99_ms, last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_service.json";

  // Each case gets a disjoint seed range so no cross-case cache effects
  // hide in a warm allocator or (hypothetically) shared state.
  std::vector<CaseResult> cases;
  std::uint64_t seed_base = 1'000;
  const auto next_base = [&] { return seed_base += 100'000; };

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    cases.push_back(run_case("t" + std::to_string(threads) + "_unique",
                             threads, 0.0, /*cache=*/true, /*warm=*/false,
                             next_base()));
  }
  cases.push_back(run_case("t1_dup90_cache_on", 1, 0.9, true, false,
                           next_base()));
  cases.push_back(run_case("t1_dup90_cache_off", 1, 0.9, false, false,
                           next_base()));
  cases.push_back(run_case("t8_dup90_cache_on", 8, 0.9, true, false,
                           next_base()));
  cases.push_back(run_case("t1_warm_hits", 1, 0.0, true, /*warm=*/true,
                           next_base()));

  const auto find = [&](const std::string& name) -> const CaseResult& {
    for (const CaseResult& c : cases) {
      if (c.name == name) return c;
    }
    std::fprintf(stderr, "missing case %s\n", name.c_str());
    std::exit(1);
  };
  const double dup90_speedup = find("t1_dup90_cache_on").throughput_rps /
                               find("t1_dup90_cache_off").throughput_rps;
  const double unique_scaling_8v1 = find("t8_unique").throughput_rps /
                                    find("t1_unique").throughput_rps;

  std::string out;
  out += "{\n";
  out += "  \"schema\": \"wrsn-service-bench-v1\",\n";
  out += "  \"context\": {\n";
#ifdef NDEBUG
  out += "    \"library_build_type\": \"release\",\n";
#else
  out += "    \"library_build_type\": \"debug\",\n";
#endif
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"hardware_threads\": %u,\n"
                "    \"client_threads\": %zu,\n"
                "    \"requests_per_case\": %zu\n"
                "  },\n",
                std::thread::hardware_concurrency(), kClientThreads,
                kRequestsPerCase);
  out += buf;
  out += "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    append_case(out, cases[i], i + 1 == cases.size());
  }
  out += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"derived\": {\n"
                "    \"dup90_speedup\": %.2f,\n"
                "    \"unique_scaling_8v1\": %.2f\n"
                "  }\n"
                "}\n",
                dup90_speedup, unique_scaling_8v1);
  out += buf;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);

  std::printf("%s", out.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("dup90 speedup (cache+coalesce vs off): %.2fx\n", dup90_speedup);
  std::printf("unique throughput scaling 1->8 threads: %.2fx\n",
              unique_scaling_8v1);
  return 0;
}
