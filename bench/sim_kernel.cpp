// Event-kernel and world-update performance: the cost of death cascades
// under the incremental (Fast) updater versus the full-rebuild Reference
// path, the kernel's schedule/cancel churn rate, and an end-to-end fig5
// exhaustion trial under both modes.
//
// Reproduce with bench/run_benchmarks.sh, which records the JSON trajectory
// in BENCH_sim.json (see EXPERIMENTS.md).  The headline criterion: the Fast
// world processes a full starvation collapse at N=400 at least 5x faster
// than Reference — deaths cost O(affected subtree), not O(N log N) plus a
// reschedule of every survivor.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "analysis/scenario.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"

namespace {

using namespace wrsn;

// At the calibrated density the radius a random geometric graph needs for
// connectivity grows like sqrt(log N): 65 m covers the classic sizes but
// sits below the threshold at N = 10k (~68.5 m), so the frontier rows get
// a wider radio rather than a denser field.
Meters comm_range_for(std::size_t n) { return n >= 10'000 ? 80.0 : 65.0; }

net::Network cascade_network(std::size_t n) {
  net::TopologyConfig topo;
  topo.node_count = n;
  // Hold density at the calibrated default (100 nodes on 400 m x 400 m).
  const double side = 40.0 * std::sqrt(double(n));
  topo.region = {{0.0, 0.0}, {side, side}};
  topo.comm_range = comm_range_for(n);
  Rng rng(42);
  return net::generate_topology(topo, rng);
}

// Topology generation at scale: the grid-bucketed adjacency build plus the
// separation index.  The 10k row is the frontier deployment target — both
// passes are O(N + edges), so doubling density should roughly double the
// time, not quadruple it the way the old O(N^2) pairwise scans did.
void BM_TopologyGenerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool heterogeneous = state.range(1) != 0;
  net::TopologyConfig topo;
  topo.node_count = n;
  const double side = 40.0 * std::sqrt(double(n));
  topo.region = {{0.0, 0.0}, {side, side}};
  topo.comm_range = comm_range_for(n);
  if (heterogeneous) {
    topo.class_count = 3;
    topo.class_capacity_ratio = 2.0;
    topo.class_rate_ratio = 1.5;
  }
  std::size_t edges = 0;
  for (auto _ : state) {
    Rng rng(42);
    const net::Network network = net::generate_topology(topo, rng);
    benchmark::DoNotOptimize(network.size());
    edges = 0;
    for (net::NodeId id = 0; id < network.size(); ++id) {
      edges += network.neighbors(id).size();
    }
  }
  state.counters["edges"] = double(edges / 2);
}
BENCHMARK(BM_TopologyGenerate)
    ->ArgNames({"nodes", "hetero"})
    ->Args({1'600, 0})
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Unit(benchmark::kMillisecond);

// A full starvation collapse: nobody charges, all N nodes request, escalate,
// and die one by one — every death triggers a routing update and (Reference)
// a reschedule of every survivor.  World construction is excluded from the
// timed region; the measured work is the event loop from first tick to a
// dead network.
void BM_WorldDeathCascade(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool reference = state.range(1) != 0;
  const net::Network network = cascade_network(n);

  sim::WorldParams params;
  params.update_mode = reference ? sim::WorldUpdateMode::Reference
                                 : sim::WorldUpdateMode::Fast;
  std::uint64_t executed = 0;
  sim::WorldUpdateStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::World world(sim, network, params, Rng(7));
    state.ResumeTiming();
    sim.run_all();
    benchmark::DoNotOptimize(world.alive_count());
    executed = sim.executed();
    stats = world.update_stats();
  }
  state.counters["events"] = double(executed);
  state.counters["deaths"] = double(n);
  state.counters["repairs"] = double(stats.repairs);
  state.counters["rebuilds"] = double(stats.rebuilds);
  state.counters["reschedules"] = double(stats.reschedules);
}
BENCHMARK(BM_WorldDeathCascade)
    ->ArgNames({"nodes", "reference"})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({400, 0})
    ->Args({400, 1})
    // Reference at N>=800 costs minutes per repetition (O(N^2 log N) in
    // reschedules alone); the Fast rows are the scaling story ROADMAP item 4
    // tracks toward the 10k-node frontier.
    ->Args({800, 0})
    ->Args({1600, 0})
    // The 10k frontier row: an entire deployment-scale collapse on the Fast
    // path — grid adjacency, SoA lanes, and subtree repair at target size.
    ->Args({10'000, 0})
    ->Unit(benchmark::kMillisecond);

// Kernel churn: steady-state schedule/cancel pressure with `range` live
// events, the pattern the world generates when drains shift (cancel the
// superseded event, schedule the replacement).  Exercises the slab free
// list, the 4-ary heap, and tombstone compaction; steady state allocates
// nothing.
void BM_KernelScheduleCancelChurn(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim.reserve(live);
  std::vector<sim::EventId> ids(live);
  for (std::size_t i = 0; i < live; ++i) {
    ids[i] = sim.schedule_at(1e12 + double(i), [] {});
  }
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  double t = 0.0;
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t victim = (lcg >> 33) % live;
    sim.cancel(ids[victim]);
    t += 1.0;
    ids[victim] = sim.schedule_at(1e12 + t, [] {});
    benchmark::DoNotOptimize(ids[victim]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_KernelScheduleCancelChurn)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000);

// End-to-end: one fig5 exhaustion trial (default 100-node deployment,
// 4-day horizon, CSA attacker) under each update mode.  The world update is
// only part of a trial (planning and detection share the bill), so the
// end-to-end gain is smaller than the cascade microbenchmark's.
void BM_Fig5Trial(benchmark::State& state) {
  const bool reference = state.range(0) != 0;
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.world.update_mode = reference ? sim::WorldUpdateMode::Reference
                                    : sim::WorldUpdateMode::Fast;
  cfg.seed = 42;
  std::size_t alive = 0;
  for (auto _ : state) {
    const analysis::ScenarioResult result =
        analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
    benchmark::DoNotOptimize(result.alive_at_end);
    alive = result.alive_at_end;
  }
  state.counters["alive_at_end"] = double(alive);
}
BENCHMARK(BM_Fig5Trial)
    ->ArgName("reference")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Scenario-frontier trials: the fig5 exhaustion mission with one frontier
// family enabled at a time, so the sweep shows what waypoint mobility
// (per-epoch adjacency rebuilds), k-coverage utility (planner reweighing),
// and heterogeneous classes each cost on top of the plain mission.
void BM_FrontierTrial(benchmark::State& state) {
  const auto family = static_cast<int>(state.range(0));
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 42;
  switch (family) {
    case 0:  // mobility
      cfg.world.mobility.fraction = 0.2;
      cfg.world.mobility.interval = 1'800.0;
      break;
    case 1:  // k-coverage
      cfg.world.coverage.k = 2;
      cfg.world.coverage.bonus = 1.0;
      break;
    default:  // heterogeneous classes
      cfg.topology.class_count = 3;
      cfg.topology.class_capacity_ratio = 2.0;
      cfg.topology.class_rate_ratio = 1.5;
      break;
  }
  std::size_t alive = 0;
  for (auto _ : state) {
    const analysis::ScenarioResult result =
        analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
    benchmark::DoNotOptimize(result.alive_at_end);
    alive = result.alive_at_end;
  }
  state.counters["alive_at_end"] = double(alive);
}
BENCHMARK(BM_FrontierTrial)
    ->ArgName("family")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Observability overhead: the fig5 trial with a MetricRegistry installed
// versus none.  Paired design — every iteration runs both arms back to
// back and the reported (manual) time is the instrumented arm, so machine
// drift across the run cancels instead of masquerading as overhead (a ~1 ms
// trial measured in two sequential benchmark rows shows ±5 % swings from
// drift alone on a busy host).  `overhead_pct` is the paired relative
// slowdown; the acceptance bound for the PR that added src/obs/ is < 3 %.
// (With no registry the macros cost one thread-local load and branch per
// write; building with -DWRSN_OBS=0 removes even the branch.)
void BM_Fig5TrialObs(benchmark::State& state) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 42;
  double base_seconds = 0.0;
  double obs_seconds = 0.0;
  double events_fired = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      const analysis::ScenarioResult result =
          analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
      benchmark::DoNotOptimize(result.alive_at_end);
    }
    const auto t1 = std::chrono::steady_clock::now();
    obs::MetricRegistry registry;
    {
      obs::ScopedRegistry scope(&registry);
      const analysis::ScenarioResult result =
          analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
      benchmark::DoNotOptimize(result.alive_at_end);
    }
    const auto t2 = std::chrono::steady_clock::now();
    base_seconds += std::chrono::duration<double>(t1 - t0).count();
    const double obs_iter = std::chrono::duration<double>(t2 - t1).count();
    obs_seconds += obs_iter;
    state.SetIterationTime(obs_iter);
    events_fired = registry.value(obs::Metric::kSimEventsFired);
  }
  state.counters["events_fired"] = events_fired;
  state.counters["overhead_pct"] =
      base_seconds > 0.0 ? 100.0 * (obs_seconds - base_seconds) / base_seconds
                         : 0.0;
}
BENCHMARK(BM_Fig5TrialObs)
    ->UseManualTime()
    // A trial runs ~1 ms; force enough pairs that the paired comparison
    // resolves sub-percent overheads instead of run-to-run noise.
    ->MinTime(2.0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
