// Fig. 3 — Rectifier nonlinearity: RF-to-DC conversion efficiency and DC
// output versus RF input power.
//
// Expected shape: zero below the sensitivity threshold, a steep knee, then
// saturation near the peak efficiency — the curve that makes partial wave
// cancellation equivalent to total energy denial.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "wpt/rectifier.hpp"

int main() {
  using namespace wrsn;

  const wpt::Rectifier rect;  // default commodity-harvester parameters

  analysis::Table table("Fig. 3: rectifier RF->DC transfer curve");
  table.headers({"RF in [dBm]", "RF in [W]", "efficiency", "DC out [W]"});

  // The whole curve goes through the batched transfer kernel in one call
  // (bit-identical to per-point dc_output).
  std::vector<double> dbms;
  std::vector<Watts> rf_in;
  for (double dbm = -10.0; dbm <= 42.0; dbm += 2.0) {
    dbms.push_back(dbm);
    rf_in.push_back(dbm_to_watts(dbm));
  }
  std::vector<Watts> dc_out(rf_in.size());
  rect.harvest_batch(rf_in, dc_out);

  for (std::size_t i = 0; i < rf_in.size(); ++i) {
    table.row({analysis::fmt(dbms[i], 0), analysis::fmt(rf_in[i], 6),
               analysis::fmt(rect.efficiency(rf_in[i]), 4),
               analysis::fmt(dc_out[i], 5)});
  }
  table.print(std::cout);

  std::cout << "\nSensitivity threshold: "
            << analysis::fmt(watts_to_dbm(rect.params().sensitivity), 1)
            << " dBm; peak efficiency " << rect.params().max_efficiency
            << "; DC cap " << rect.params().dc_cap << " W\n";
  return 0;
}
