// Fig. 3 — Rectifier nonlinearity: RF-to-DC conversion efficiency and DC
// output versus RF input power.
//
// Expected shape: zero below the sensitivity threshold, a steep knee, then
// saturation near the peak efficiency — the curve that makes partial wave
// cancellation equivalent to total energy denial.
#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "wpt/rectifier.hpp"

int main() {
  using namespace wrsn;

  const wpt::Rectifier rect;  // default commodity-harvester parameters

  analysis::Table table("Fig. 3: rectifier RF->DC transfer curve");
  table.headers({"RF in [dBm]", "RF in [W]", "efficiency", "DC out [W]"});

  for (double dbm = -10.0; dbm <= 42.0; dbm += 2.0) {
    const Watts rf = dbm_to_watts(dbm);
    table.row({analysis::fmt(dbm, 0), analysis::fmt(rf, 6),
               analysis::fmt(rect.efficiency(rf), 4),
               analysis::fmt(rect.dc_output(rf), 5)});
  }
  table.print(std::cout);

  std::cout << "\nSensitivity threshold: "
            << analysis::fmt(watts_to_dbm(rect.params().sensitivity), 1)
            << " dBm; peak efficiency " << rect.params().max_efficiency
            << "; DC cap " << rect.params().dc_cap << " W\n";
  return 0;
}
