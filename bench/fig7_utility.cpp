// Fig. 7 — Charging utility under the attack: how much genuine cover
// service the attacker sustains as (a) the key-target count grows and
// (b) the time windows tighten (shorter base-station patience).
//
// Expected shape: utility degrades gracefully with more keys (spoof
// sessions still take vehicle time); CSA dominates the window-oblivious
// Utility-first ablation on kill completion when windows tighten, at equal
// or better utility.
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/planners.hpp"

namespace {
constexpr int kSeeds = 8;
}

int main() {
  using namespace wrsn;

  const csa::CsaPlanner planner_csa;
  const csa::UtilityFirstPlanner planner_utility;

  analysis::Table key_table(
      "Fig. 7a: cover utility and exhaustion vs number of key targets (CSA)");
  key_table.headers({"keys", "utility [kJ]", "exhausted %", "spoof sessions",
                     "genuine sessions"});
  for (const std::size_t keys : {2u, 4u, 6u, 8u, 10u, 12u, 14u}) {
    std::vector<double> utility, exhausted, spoofs, genuine;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      analysis::ScenarioConfig cfg = analysis::default_scenario();
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.attack.key_selection.max_count = keys;
      const analysis::ScenarioResult result =
          analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
      utility.push_back(result.report.utility_delivered / 1000.0);
      exhausted.push_back(100.0 * result.report.exhaustion_ratio);
      spoofs.push_back(double(result.report.sessions_spoofed));
      genuine.push_back(double(result.report.sessions_genuine));
    }
    const auto ut = analysis::summarize(utility);
    const auto ex = analysis::summarize(exhausted);
    key_table.row({std::to_string(keys), analysis::fmt_ci(ut.mean, ut.ci95, 0),
                   analysis::fmt_ci(ex.mean, ex.ci95, 1),
                   analysis::fmt(analysis::summarize(spoofs).mean, 1),
                   analysis::fmt(analysis::summarize(genuine).mean, 1)});
  }
  key_table.print(std::cout);

  analysis::Table window_table(
      "Fig. 7b: window tightness sweep (patience scale), CSA vs "
      "Utility-first ablation");
  window_table.headers({"patience scale", "planner", "exhausted %",
                        "utility [kJ]", "escalations", "detected runs"});
  for (const double scale : {0.4, 0.7, 1.0, 1.3, 1.6}) {
    for (const csa::Planner* planner :
         {static_cast<const csa::Planner*>(&planner_csa),
          static_cast<const csa::Planner*>(&planner_utility)}) {
      std::vector<double> exhausted, utility, escalations;
      int detected = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(seed);
        cfg.world.patience *= scale;
        const analysis::ScenarioResult result = analysis::run_scenario(
            cfg, analysis::ChargerMode::Attack, planner);
        exhausted.push_back(100.0 * result.report.exhaustion_ratio);
        utility.push_back(result.report.utility_delivered / 1000.0);
        escalations.push_back(double(result.report.escalations));
        if (result.report.detected) ++detected;
      }
      const auto ex = analysis::summarize(exhausted);
      const auto ut = analysis::summarize(utility);
      window_table.row(
          {analysis::fmt(scale, 1), std::string(planner->name()),
           analysis::fmt_ci(ex.mean, ex.ci95, 1),
           analysis::fmt_ci(ut.mean, ut.ci95, 0),
           analysis::fmt(analysis::summarize(escalations).mean, 1),
           std::to_string(detected) + "/" + std::to_string(kSeeds)});
    }
  }
  window_table.print(std::cout);
  return 0;
}
