// Fig. 7 — Charging utility under the attack: how much genuine cover
// service the attacker sustains as (a) the key-target count grows and
// (b) the time windows tighten (shorter base-station patience).
//
// Expected shape: utility degrades gracefully with more keys (spoof
// sessions still take vehicle time); CSA dominates the window-oblivious
// Utility-first ablation on kill completion when windows tighten, at equal
// or better utility.
#include <iostream>
#include <memory>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/planners.hpp"
#include "runner/runner.hpp"

namespace {

constexpr int kSeeds = 8;

constexpr const char* kPlannerNames[] = {"CSA", "Utility-first"};

/// Planner instances carry mutable arenas and are single-thread affine
/// (core/planners.hpp), so each trial builds its own.
std::unique_ptr<wrsn::csa::Planner> make_planner(std::size_t kind) {
  using namespace wrsn;
  if (kind == 0) return std::make_unique<csa::CsaPlanner>();
  return std::make_unique<csa::UtilityFirstPlanner>();
}

}  // namespace

int main() {
  using namespace wrsn;

  // --- (a) key-target count sweep ---------------------------------------
  const std::size_t key_counts[] = {2, 4, 6, 8, 10, 12, 14};
  struct KeyTrial {
    std::size_t keys;
    int seed;
  };
  std::vector<KeyTrial> key_trials;
  for (const std::size_t keys : key_counts) {
    for (int seed = 1; seed <= kSeeds; ++seed) key_trials.push_back({keys, seed});
  }

  analysis::PhasedStats perf;
  const std::vector<analysis::ScenarioResult> key_results = runner::run_trials(
      std::span<const KeyTrial>(key_trials),
      [](const KeyTrial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(trial.seed);
        cfg.attack.key_selection.max_count = trial.keys;
        return analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
      },
      {.label = "fig7a"}, perf.phase("key-sweep"));

  analysis::Table key_table(
      "Fig. 7a: cover utility and exhaustion vs number of key targets (CSA)");
  key_table.headers({"keys", "utility [kJ]", "exhausted %", "spoof sessions",
                     "genuine sessions"});
  std::size_t next = 0;
  for (const std::size_t keys : key_counts) {
    std::vector<double> utility, exhausted, spoofs, genuine;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const analysis::ScenarioResult& result = key_results[next++];
      utility.push_back(result.report.utility_delivered / 1000.0);
      exhausted.push_back(100.0 * result.report.exhaustion_ratio);
      spoofs.push_back(double(result.report.sessions_spoofed));
      genuine.push_back(double(result.report.sessions_genuine));
    }
    const auto ut = analysis::summarize(utility);
    const auto ex = analysis::summarize(exhausted);
    key_table.row({std::to_string(keys), analysis::fmt_ci(ut.mean, ut.ci95, 0),
                   analysis::fmt_ci(ex.mean, ex.ci95, 1),
                   analysis::fmt(analysis::summarize(spoofs).mean, 1),
                   analysis::fmt(analysis::summarize(genuine).mean, 1)});
  }
  key_table.print(std::cout);

  // --- (b) window tightness sweep ---------------------------------------
  const double scales[] = {0.4, 0.7, 1.0, 1.3, 1.6};
  struct WindowTrial {
    double scale;
    std::size_t planner;
    int seed;
  };
  std::vector<WindowTrial> window_trials;
  for (const double scale : scales) {
    for (std::size_t planner = 0; planner < std::size(kPlannerNames);
         ++planner) {
      for (int seed = 1; seed <= kSeeds; ++seed) {
        window_trials.push_back({scale, planner, seed});
      }
    }
  }

  const std::vector<analysis::ScenarioResult> window_results =
      runner::run_trials(
          std::span<const WindowTrial>(window_trials),
          [](const WindowTrial& trial, Rng&) {
            const std::unique_ptr<csa::Planner> planner =
                make_planner(trial.planner);
            analysis::ScenarioConfig cfg = analysis::default_scenario();
            cfg.seed = static_cast<std::uint64_t>(trial.seed);
            cfg.world.patience *= trial.scale;
            return analysis::run_scenario(cfg, analysis::ChargerMode::Attack,
                                          planner.get());
          },
          {.label = "fig7b"}, perf.phase("window-sweep"));

  analysis::Table window_table(
      "Fig. 7b: window tightness sweep (patience scale), CSA vs "
      "Utility-first ablation");
  window_table.headers({"patience scale", "planner", "exhausted %",
                        "utility [kJ]", "escalations", "detected runs"});
  next = 0;
  for (const double scale : scales) {
    for (const char* planner_name : kPlannerNames) {
      std::vector<double> exhausted, utility, escalations;
      int detected = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const analysis::ScenarioResult& result = window_results[next++];
        exhausted.push_back(100.0 * result.report.exhaustion_ratio);
        utility.push_back(result.report.utility_delivered / 1000.0);
        escalations.push_back(double(result.report.escalations));
        if (result.report.detected) ++detected;
      }
      const auto ex = analysis::summarize(exhausted);
      const auto ut = analysis::summarize(utility);
      window_table.row(
          {analysis::fmt(scale, 1), planner_name,
           analysis::fmt_ci(ex.mean, ex.ci95, 1),
           analysis::fmt_ci(ut.mean, ut.ci95, 0),
           analysis::fmt(analysis::summarize(escalations).mean, 1),
           std::to_string(detected) + "/" + std::to_string(kSeeds)});
    }
  }
  window_table.print(std::cout);

  analysis::print_perf(std::cout, perf);
  return 0;
}
