// Fig. 8 — Empirical approximation quality of the CSA planner against the
// exact Held-Karp solver on random TIDE instances, with the baselines for
// contrast.
//
// Expected shape: CSA's utility ratio stays near 1 (far above the
// documented 1/2*(1-1/e) ~= 0.316 cost-benefit-greedy floor) and its key
// coverage matches the exact solver; the window-oblivious baselines lose
// keys as windows tighten.
//
// Each instance (generation + exact solve + 4 planner solves) is one
// runner trial; the instance is drawn from the trial's forked Rng stream,
// so the set of instances is identical at any thread count.
#include <array>
#include <iostream>

#include "analysis/perf.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/planners.hpp"
#include "runner/runner.hpp"

namespace {

using namespace wrsn;

csa::TideInstance random_instance(Rng& gen, int keys, int stops,
                                  double window_scale) {
  csa::TideInstance inst;
  inst.start_position = {0.0, 0.0};
  inst.start_time = 0.0;
  inst.speed = 5.0;
  const auto add = [&](bool key) {
    csa::Stop stop;
    stop.node = static_cast<net::NodeId>(inst.stops.size());
    stop.position = {gen.uniform(-60.0, 60.0), gen.uniform(-60.0, 60.0)};
    stop.window_open = gen.uniform(0.0, 80.0);
    stop.window_close =
        stop.window_open + window_scale * gen.uniform(60.0, 240.0);
    stop.service_time = gen.uniform(2.0, 8.0);
    stop.is_key = key;
    stop.utility = key ? 0.0 : gen.uniform(1.0, 10.0);
    inst.stops.push_back(stop);
  };
  for (int i = 0; i < keys; ++i) add(true);
  for (int i = 0; i < stops; ++i) add(false);
  return inst;
}

constexpr const char* kPlannerNames[] = {"CSA", "Utility-first",
                                         "Greedy-nearest", "Random"};

}  // namespace

int main() {
  constexpr int kInstances = 150;

  analysis::PhasedStats perf;
  for (const double window_scale : {1.0, 0.5}) {
    analysis::Table table(
        "Fig. 8: utility ratio vs exact optimum, 2 keys + 9 stops, " +
        std::to_string(kInstances) + " instances, window scale " +
        analysis::fmt(window_scale, 1));
    table.headers({"planner", "mean ratio", "p10 ratio", "min ratio",
                   "keys matched %"});

    struct InstanceResult {
      bool usable = false;
      std::array<double, 4> ratio{};
      std::array<bool, 4> matched{};
    };

    const std::vector<InstanceResult> outcomes = runner::run_trials(
        std::size_t(kInstances),
        [&](std::size_t, Rng& gen) {
          // Planner instances carry mutable arenas and are single-thread
          // affine (core/planners.hpp), so each trial builds its own set.
          const csa::ExactPlanner exact;
          const csa::CsaPlanner planner_csa;
          const csa::UtilityFirstPlanner planner_utility;
          const csa::GreedyNearestPlanner planner_greedy;
          const csa::RandomPlanner planner_random;
          const csa::Planner* planners[] = {&planner_csa, &planner_utility,
                                            &planner_greedy, &planner_random};
          const csa::TideInstance inst =
              random_instance(gen, 2, 9, window_scale);
          InstanceResult out;
          Rng rng(1);
          const csa::Plan best = exact.plan(inst, rng);
          if (!best.covers_all_keys() || best.utility <= 0.0) return out;
          out.usable = true;
          for (int p = 0; p < 4; ++p) {
            const csa::Plan plan = planners[p]->plan(inst, rng);
            out.ratio[p] = plan.utility / best.utility;
            out.matched[p] = plan.keys_scheduled == best.keys_scheduled;
          }
          return out;
        },
        {.seed = 7, .label = "fig8"},
        perf.phase("window-scale " + analysis::fmt(window_scale, 1)));

    std::vector<std::vector<double>> ratios(4);
    std::vector<int> keys_matched(4, 0);
    int usable = 0;
    for (const InstanceResult& out : outcomes) {
      if (!out.usable) continue;
      ++usable;
      for (int p = 0; p < 4; ++p) {
        ratios[p].push_back(out.ratio[p]);
        if (out.matched[p]) ++keys_matched[p];
      }
    }

    for (int p = 0; p < 4; ++p) {
      const auto s = analysis::summarize(ratios[p]);
      // One sort serves both quantiles (q = 0 is the exact minimum).
      const std::vector<double> qs =
          analysis::sorted_quantiles(ratios[p], {0.0, 0.10});
      table.row({kPlannerNames[p], analysis::fmt(s.mean, 3),
                 analysis::fmt(qs[1], 3),
                 analysis::fmt(qs[0], 3),
                 analysis::fmt(100.0 * keys_matched[p] / double(usable), 1)});
    }
    table.print(std::cout);
    std::cout << "(usable instances: " << usable << "; documented greedy "
              << "floor: 0.316)\n\n";
  }
  analysis::print_perf(std::cout, perf);
  return 0;
}
