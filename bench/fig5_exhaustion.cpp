// Fig. 5 — THE HEADLINE: key-node exhaustion ratio of CSA vs the baseline
// attack strategies, swept over network size, under the deployed detector
// suite.  The paper's claim: CSA exhausts at least 80 % of key nodes
// without being detected.
//
// Per-node duty cycles scale inversely with density (a standard coverage-
// redundancy assumption), so total network demand — and hence the single
// charger's load — stays constant across sizes; what grows is the routing
// structure and the scheduling problem.
//
// The full sweep grid (4 sizes x 4 planners x kSeeds, plus the ablation) is
// flattened into one trial list and sharded over WRSN_THREADS workers; the
// numbers are bit-identical at any thread count.
#include <iostream>
#include <memory>

#include "analysis/metrics_io.hpp"
#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/planners.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"

namespace {

constexpr int kSeeds = 10;

wrsn::analysis::ScenarioConfig sized_config(std::size_t n,
                                            std::uint64_t seed) {
  using namespace wrsn;
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  const double scale = 100.0 / double(n);
  cfg.topology.node_count = n;
  cfg.topology.mean_data_rate_bps = 12'000.0 * scale;
  cfg.topology.comm_range = 65.0 * std::sqrt(scale);
  cfg.world.drain.sensing_power = 10e-3 * scale;
  cfg.seed = seed;
  return cfg;
}

constexpr const char* kPlannerNames[] = {"CSA", "Greedy-nearest", "Random",
                                         "Utility-first"};

/// Planner instances carry mutable arenas and are single-thread affine
/// (core/planners.hpp), so each trial builds its own; the names above are
/// what the table rows group by.
std::unique_ptr<wrsn::csa::Planner> make_planner(std::size_t kind) {
  using namespace wrsn;
  switch (kind) {
    case 0: return std::make_unique<csa::CsaPlanner>();
    case 1: return std::make_unique<csa::GreedyNearestPlanner>();
    case 2: return std::make_unique<csa::RandomPlanner>();
    default: return std::make_unique<csa::UtilityFirstPlanner>();
  }
}

}  // namespace

int main() {
  using namespace wrsn;

  constexpr std::size_t kPlanners = std::size(kPlannerNames);
  const std::size_t sizes[] = {50, 100, 150, 200};

  // Flatten the (size, planner, seed) grid in row-major order; results come
  // back in the same order, so group g's trials live at [g*kSeeds, (g+1)*kSeeds).
  struct Trial {
    std::size_t n;
    std::size_t planner;
    int seed;
  };
  std::vector<Trial> trials;
  for (const std::size_t n : sizes) {
    for (std::size_t planner = 0; planner < kPlanners; ++planner) {
      for (int seed = 1; seed <= kSeeds; ++seed) {
        trials.push_back({n, planner, seed});
      }
    }
  }

  analysis::PhasedStats perf;
  obs::MetricRegistry metrics;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [](const Trial& trial, Rng&) {
        const std::unique_ptr<csa::Planner> planner = make_planner(trial.planner);
        return analysis::run_scenario(
            sized_config(trial.n, static_cast<std::uint64_t>(trial.seed)),
            analysis::ChargerMode::Attack, planner.get());
      },
      {.label = "fig5", .metrics = &metrics}, perf.phase("sweep"));

  analysis::Table table(
      "Fig. 5: key-node exhaustion (mean +- 95% CI over " +
      std::to_string(kSeeds) + " seeds)");
  table.headers({"nodes", "planner", "exhausted %", "undetected exhausted %",
                 "detected runs", "escalations"});

  std::size_t next = 0;
  for (const std::size_t n : sizes) {
    for (const char* planner_name : kPlannerNames) {
      std::vector<double> exhausted, undetected, escalations;
      int detected_runs = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const analysis::ScenarioResult& result = results[next++];
        exhausted.push_back(100.0 * result.report.exhaustion_ratio);
        undetected.push_back(100.0 *
                             result.report.undetected_exhaustion_ratio);
        escalations.push_back(double(result.report.escalations));
        if (result.report.detected) ++detected_runs;
      }
      const auto ex = analysis::summarize(exhausted);
      const auto un = analysis::summarize(undetected);
      const auto es = analysis::summarize(escalations);
      table.row({std::to_string(n), planner_name,
                 analysis::fmt_ci(ex.mean, ex.ci95, 1),
                 analysis::fmt_ci(un.mean, un.ci95, 1),
                 std::to_string(detected_runs) + "/" + std::to_string(kSeeds),
                 analysis::fmt(es.mean, 1)});
    }
  }
  table.print(std::cout);

  // Key-node definition ablation at N = 100 (DESIGN.md decision 4).
  const struct {
    net::KeyNodeRule rule;
    const char* name;
  } rules[] = {{net::KeyNodeRule::Articulation, "articulation"},
               {net::KeyNodeRule::TopTraffic, "top-traffic"},
               {net::KeyNodeRule::Hybrid, "hybrid"}};

  struct AblationTrial {
    net::KeyNodeRule rule;
    int seed;
  };
  std::vector<AblationTrial> ablation_trials;
  for (const auto& entry : rules) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      ablation_trials.push_back({entry.rule, seed});
    }
  }

  const std::vector<analysis::ScenarioResult> ablation_results =
      runner::run_trials(
          std::span<const AblationTrial>(ablation_trials),
          [](const AblationTrial& trial, Rng&) {
            analysis::ScenarioConfig cfg =
                sized_config(100, static_cast<std::uint64_t>(trial.seed));
            cfg.attack.key_selection.rule = trial.rule;
            return analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
          },
          {.label = "fig5b", .metrics = &metrics}, perf.phase("ablation"));

  analysis::Table ablation(
      "Fig. 5b: key-node selection rule ablation (CSA, N=100)");
  ablation.headers({"rule", "exhausted %", "undetected %",
                    "partitioned runs", "mean partition hour"});
  next = 0;
  for (const auto& entry : rules) {
    std::vector<double> exhausted, undetected, part_hours;
    int partitioned = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const analysis::ScenarioResult& result = ablation_results[next++];
      exhausted.push_back(100.0 * result.report.exhaustion_ratio);
      undetected.push_back(100.0 * result.report.undetected_exhaustion_ratio);
      if (result.report.partition_time.has_value()) {
        ++partitioned;
        part_hours.push_back(*result.report.partition_time / 3600.0);
      }
    }
    const auto ex = analysis::summarize(exhausted);
    const auto un = analysis::summarize(undetected);
    const auto ph = analysis::summarize(part_hours);
    ablation.row({entry.name, analysis::fmt_ci(ex.mean, ex.ci95, 1),
                  analysis::fmt_ci(un.mean, un.ci95, 1),
                  std::to_string(partitioned) + "/" + std::to_string(kSeeds),
                  part_hours.empty() ? "-" : analysis::fmt(ph.mean, 1)});
  }
  ablation.print(std::cout);

  analysis::print_metrics_tables(metrics, std::cout);
  analysis::maybe_export_metrics(metrics, std::cout);
  analysis::print_perf(std::cout, perf);
  return 0;
}
