#!/usr/bin/env python3
"""Validate a wrsn metric/benchmark JSON document.

Usage:
    validate_metrics.py METRICS_JSON SCHEMA_JSON [--table STDOUT_CAPTURE]

Accepts either document shape in bench/metrics_schema.json (top-level oneOf):

  * wrsn-metrics-v1 — the obs::MetricRegistry export.  Applies histogram
    invariants the schema language cannot express (counts length, count
    total, ascending bounds).  With --table, additionally parses the
    "== Metrics ==" and "== Timing metrics ==" tables from a captured
    bench/CLI stdout and diffs every row against the JSON values: the tables
    and the JSON are generated from the same registry, so any divergence is
    an exporter bug.
  * wrsn-service-bench-v1 — the mission-server throughput recording
    (bench/service_throughput.cpp).  Applies the service accounting
    invariant (requests = executions + cache_hits + coalesced + shed per
    case) and latency sanity (p50 <= p99).
  * wrsn-tournament-v1 — the attacker-vs-defender tournament grid
    (bench/tournament.cpp).  Applies grid invariants: cells length =
    attackers x defenders, damage/rates within [0, 1],
    undetected_damage <= damage, and digest strings parsing as unsigned
    integers (the Fnv fold, serialised as a string to survive JSON's
    53-bit number precision).

Checks run with a small built-in validator (the CI image carries no
jsonschema package).
"""

import json
import re
import sys


class ValidationError(Exception):
    pass


def resolve_ref(schema_root, ref):
    if not ref.startswith("#/"):
        raise ValidationError(f"unsupported $ref: {ref}")
    node = schema_root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def check(instance, schema, schema_root, path):
    """Minimal JSON-Schema subset: type, const, required, properties,
    additionalProperties, items, oneOf, minimum, $ref."""
    if "$ref" in schema:
        check(instance, resolve_ref(schema_root, schema["$ref"]),
              schema_root, path)
        return
    if "oneOf" in schema:
        errors = []
        for option in schema["oneOf"]:
            try:
                check(instance, option, schema_root, path)
                break
            except ValidationError as err:
                errors.append(str(err))
        else:
            raise ValidationError(
                f"{path}: matches no oneOf alternative ({'; '.join(errors)})")
        return
    if "const" in schema:
        if instance != schema["const"]:
            raise ValidationError(
                f"{path}: expected {schema['const']!r}, got {instance!r}")
        return
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(instance, dict):
            raise ValidationError(f"{path}: expected object")
        for name in schema.get("required", []):
            if name not in instance:
                raise ValidationError(f"{path}: missing required key {name!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                check(value, props[key], schema_root, f"{path}.{key}")
            elif extra is False:
                raise ValidationError(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                check(value, extra, schema_root, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(instance, list):
            raise ValidationError(f"{path}: expected array")
        items = schema.get("items")
        if items is not None:
            for i, value in enumerate(instance):
                check(value, items, schema_root, f"{path}[{i}]")
    elif expected == "number":
        if not isinstance(instance, (int, float)) or isinstance(instance, bool):
            raise ValidationError(f"{path}: expected number, got {instance!r}")
        if "minimum" in schema and instance < schema["minimum"]:
            raise ValidationError(
                f"{path}: {instance} below minimum {schema['minimum']}")
    elif expected == "string":
        if not isinstance(instance, str):
            raise ValidationError(f"{path}: expected string, got {instance!r}")
    elif expected == "boolean":
        if not isinstance(instance, bool):
            raise ValidationError(f"{path}: expected boolean, got {instance!r}")
    elif expected is not None:
        raise ValidationError(f"{path}: unsupported schema type {expected!r}")


def check_histogram_invariants(name, hist):
    bounds, counts = hist["bounds"], hist["counts"]
    if len(counts) != len(bounds) + 1:
        raise ValidationError(
            f"{name}: counts has {len(counts)} entries for "
            f"{len(bounds)} bounds (want bounds+1, incl. overflow)")
    if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
        raise ValidationError(f"{name}: bounds not strictly ascending")
    if sum(counts) != hist["count"]:
        raise ValidationError(
            f"{name}: bucket counts sum to {sum(counts)}, count={hist['count']}")
    if hist["count"] > 0 and not hist["min"] <= hist["max"]:
        raise ValidationError(f"{name}: min > max")


def check_service_invariants(doc):
    """wrsn-service-bench-v1: every request must be accounted for exactly
    once (executed, served from cache, coalesced onto an in-flight
    execution, or shed), and the latency percentiles must be ordered."""
    for case in doc["cases"]:
        name = case["name"]
        accounted = (case["executions"] + case["cache_hits"] +
                     case["coalesced"] + case["shed"])
        if case["requests"] != accounted:
            raise ValidationError(
                f"{name}: requests={case['requests']} but executions+hits+"
                f"coalesced+shed={accounted}")
        latency = case["latency_ms"]
        if latency["p50"] > latency["p99"]:
            raise ValidationError(
                f"{name}: latency p50 {latency['p50']} > p99 {latency['p99']}")
    if doc["derived"]["dup90_speedup"] <= 0:
        raise ValidationError("derived.dup90_speedup must be positive")


def check_tournament_invariants(doc):
    """wrsn-tournament-v1: the cell list must cover the full grid, the
    per-cell aggregates must be proper rates, and every digest must be a
    decimal uint64 (emitted as strings; JSON numbers only carry 53 bits)."""
    grid = doc["grid"]
    expected_cells = grid["attackers"] * grid["defenders"]
    if len(doc["cells"]) != expected_cells:
        raise ValidationError(
            f"cells: {len(doc['cells'])} entries for a "
            f"{grid['attackers']}x{grid['defenders']} grid "
            f"(want {expected_cells})")
    for digest in [doc["digest"]] + [c["digest"] for c in doc["cells"]]:
        if not digest.isdigit() or int(digest) >= 2 ** 64:
            raise ValidationError(f"digest {digest!r} is not a decimal uint64")
    for cell in doc["cells"]:
        name = f"{cell['attacker']} vs {cell['defender']}"
        for key in ("damage", "undetected_damage", "detection_rate",
                    "fp_rate"):
            if not 0.0 <= cell[key] <= 1.0:
                raise ValidationError(
                    f"{name}: {key}={cell[key]} outside [0, 1]")
        # %.6f rounding can move each side by half an ulp.
        if cell["undetected_damage"] > cell["damage"] + 1e-6:
            raise ValidationError(
                f"{name}: undetected_damage {cell['undetected_damage']} "
                f"exceeds damage {cell['damage']}")


def iter_metrics(doc):
    for section in ("deterministic", "timing"):
        for name, value in doc.get(section, {}).items():
            yield name, value


TABLE_ROW = re.compile(r"^(\S+)( \(timing\))?\s{2,}(histogram|counter|gauge-max)"
                       r"\s{2,}(\S+)\s{2,}(\S+)\s{2,}(\S+)\s{2,}(\S+)\s{2,}(\S+)\s*$")


def parse_metrics_table(text):
    """Returns {metric: (kind, value, count)} parsed from the '== Metrics =='
    and '== Timing metrics ==' tables (deterministic and wall-clock rows are
    printed as separately aligned tables)."""
    rows = {}
    in_table = False
    for line in text.splitlines():
        if line.startswith("== "):
            in_table = (line.startswith("== Metrics") or
                        line.startswith("== Timing metrics"))
            continue
        if not in_table:
            continue
        match = TABLE_ROW.match(line)
        if match:
            name, _, kind, value, count = match.groups()[:5]
            rows[name] = (kind, float(value), None if count == "-" else int(count))
    return rows


def diff_table(doc, table_text):
    rows = parse_metrics_table(table_text)
    if not rows:
        raise ValidationError("no '== Metrics ==' table rows found in capture")
    mismatches = []
    for name, value in iter_metrics(doc):
        if name not in rows:
            mismatches.append(f"{name}: in JSON but not in table")
            continue
        kind, table_value, table_count = rows[name]
        if isinstance(value, dict):  # histogram: table shows sum + count
            if table_count != value["count"]:
                mismatches.append(
                    f"{name}: table count {table_count} != JSON {value['count']}")
            json_value = value["sum"]
        else:
            json_value = value
        # Table cells are %.3f-rounded; accept half-ulp of that rounding.
        tolerance = 5e-4 + 1e-9 * abs(json_value)
        if abs(table_value - json_value) > tolerance:
            mismatches.append(
                f"{name}: table value {table_value} != JSON {json_value}")
    if mismatches:
        raise ValidationError("table/JSON divergence:\n  " +
                              "\n  ".join(mismatches))
    return len(rows)


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, schema_path = argv[1], argv[2]
    table_path = None
    if len(argv) >= 5 and argv[3] == "--table":
        table_path = argv[4]

    with open(metrics_path) as fh:
        doc = json.load(fh)
    with open(schema_path) as fh:
        schema = json.load(fh)

    try:
        check(doc, schema, schema, "$")
        if doc.get("schema") == "wrsn-service-bench-v1":
            check_service_invariants(doc)
            print(f"{metrics_path}: schema OK, "
                  f"{len(doc['cases'])} service cases balanced")
            return 0
        if doc.get("schema") == "wrsn-tournament-v1":
            check_tournament_invariants(doc)
            print(f"{metrics_path}: schema OK, "
                  f"{len(doc['cells'])} tournament cells in range")
            return 0
        for name, value in iter_metrics(doc):
            if isinstance(value, dict):
                check_histogram_invariants(name, value)
        if table_path is not None:
            with open(table_path) as fh:
                compared = diff_table(doc, fh.read())
            print(f"{metrics_path}: schema OK, {compared} table rows match")
        else:
            print(f"{metrics_path}: schema OK")
    except ValidationError as err:
        print(f"{metrics_path}: INVALID: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
