#!/usr/bin/env python3
"""Validate a wrsn-metrics-v1 JSON export.

Usage:
    validate_metrics.py METRICS_JSON SCHEMA_JSON [--table STDOUT_CAPTURE]

Checks the export against bench/metrics_schema.json with a small built-in
validator (the CI image carries no jsonschema package), then applies
histogram invariants the schema language cannot express (counts length,
count total, ascending bounds).  With --table, additionally parses the
"== Metrics ==" and "== Timing metrics ==" tables from a captured bench/CLI
stdout and diffs every row against the JSON values: the tables and the JSON
are generated from the same registry, so any divergence is an exporter bug.
"""

import json
import re
import sys


class ValidationError(Exception):
    pass


def resolve_ref(schema_root, ref):
    if not ref.startswith("#/"):
        raise ValidationError(f"unsupported $ref: {ref}")
    node = schema_root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def check(instance, schema, schema_root, path):
    """Minimal JSON-Schema subset: type, const, required, properties,
    additionalProperties, items, oneOf, minimum, $ref."""
    if "$ref" in schema:
        check(instance, resolve_ref(schema_root, schema["$ref"]),
              schema_root, path)
        return
    if "oneOf" in schema:
        errors = []
        for option in schema["oneOf"]:
            try:
                check(instance, option, schema_root, path)
                break
            except ValidationError as err:
                errors.append(str(err))
        else:
            raise ValidationError(
                f"{path}: matches no oneOf alternative ({'; '.join(errors)})")
        return
    if "const" in schema:
        if instance != schema["const"]:
            raise ValidationError(
                f"{path}: expected {schema['const']!r}, got {instance!r}")
        return
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(instance, dict):
            raise ValidationError(f"{path}: expected object")
        for name in schema.get("required", []):
            if name not in instance:
                raise ValidationError(f"{path}: missing required key {name!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                check(value, props[key], schema_root, f"{path}.{key}")
            elif extra is False:
                raise ValidationError(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                check(value, extra, schema_root, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(instance, list):
            raise ValidationError(f"{path}: expected array")
        items = schema.get("items")
        if items is not None:
            for i, value in enumerate(instance):
                check(value, items, schema_root, f"{path}[{i}]")
    elif expected == "number":
        if not isinstance(instance, (int, float)) or isinstance(instance, bool):
            raise ValidationError(f"{path}: expected number, got {instance!r}")
        if "minimum" in schema and instance < schema["minimum"]:
            raise ValidationError(
                f"{path}: {instance} below minimum {schema['minimum']}")
    elif expected is not None:
        raise ValidationError(f"{path}: unsupported schema type {expected!r}")


def check_histogram_invariants(name, hist):
    bounds, counts = hist["bounds"], hist["counts"]
    if len(counts) != len(bounds) + 1:
        raise ValidationError(
            f"{name}: counts has {len(counts)} entries for "
            f"{len(bounds)} bounds (want bounds+1, incl. overflow)")
    if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
        raise ValidationError(f"{name}: bounds not strictly ascending")
    if sum(counts) != hist["count"]:
        raise ValidationError(
            f"{name}: bucket counts sum to {sum(counts)}, count={hist['count']}")
    if hist["count"] > 0 and not hist["min"] <= hist["max"]:
        raise ValidationError(f"{name}: min > max")


def iter_metrics(doc):
    for section in ("deterministic", "timing"):
        for name, value in doc.get(section, {}).items():
            yield name, value


TABLE_ROW = re.compile(r"^(\S+)( \(timing\))?\s{2,}(histogram|counter|gauge-max)"
                       r"\s{2,}(\S+)\s{2,}(\S+)\s{2,}(\S+)\s{2,}(\S+)\s{2,}(\S+)\s*$")


def parse_metrics_table(text):
    """Returns {metric: (kind, value, count)} parsed from the '== Metrics =='
    and '== Timing metrics ==' tables (deterministic and wall-clock rows are
    printed as separately aligned tables)."""
    rows = {}
    in_table = False
    for line in text.splitlines():
        if line.startswith("== "):
            in_table = (line.startswith("== Metrics") or
                        line.startswith("== Timing metrics"))
            continue
        if not in_table:
            continue
        match = TABLE_ROW.match(line)
        if match:
            name, _, kind, value, count = match.groups()[:5]
            rows[name] = (kind, float(value), None if count == "-" else int(count))
    return rows


def diff_table(doc, table_text):
    rows = parse_metrics_table(table_text)
    if not rows:
        raise ValidationError("no '== Metrics ==' table rows found in capture")
    mismatches = []
    for name, value in iter_metrics(doc):
        if name not in rows:
            mismatches.append(f"{name}: in JSON but not in table")
            continue
        kind, table_value, table_count = rows[name]
        if isinstance(value, dict):  # histogram: table shows sum + count
            if table_count != value["count"]:
                mismatches.append(
                    f"{name}: table count {table_count} != JSON {value['count']}")
            json_value = value["sum"]
        else:
            json_value = value
        # Table cells are %.3f-rounded; accept half-ulp of that rounding.
        tolerance = 5e-4 + 1e-9 * abs(json_value)
        if abs(table_value - json_value) > tolerance:
            mismatches.append(
                f"{name}: table value {table_value} != JSON {json_value}")
    if mismatches:
        raise ValidationError("table/JSON divergence:\n  " +
                              "\n  ".join(mismatches))
    return len(rows)


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, schema_path = argv[1], argv[2]
    table_path = None
    if len(argv) >= 5 and argv[3] == "--table":
        table_path = argv[4]

    with open(metrics_path) as fh:
        doc = json.load(fh)
    with open(schema_path) as fh:
        schema = json.load(fh)

    try:
        check(doc, schema, schema, "$")
        for name, value in iter_metrics(doc):
            if isinstance(value, dict):
                check_histogram_invariants(name, value)
        if table_path is not None:
            with open(table_path) as fh:
                compared = diff_table(doc, fh.read())
            print(f"{metrics_path}: schema OK, {compared} table rows match")
        else:
            print(f"{metrics_path}: schema OK")
    except ValidationError as err:
        print(f"{metrics_path}: INVALID: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
