// Policy tournament (DESIGN.md §15) — round-robin attacker spoof-scheduling
// policies vs defender threshold policies, charting the stealth/damage
// Pareto frontier behind the paper's ">=80% of key nodes exhausted before
// detection" claim (EXPERIMENTS.md).
//
//   $ ./tournament [--trials N] [--benign N] [--seed S] [--quick] [out.json]
//
// Emits the wrsn-tournament-v1 JSON document (BENCH_tournament.json by
// default; digests serialized as strings — JSON numbers cannot hold 64-bit
// hashes) plus a printed grid and per-attacker frontier summary.  The whole
// grid runs through one runner::run_trials call, so the report digest is
// bit-identical at any WRSN_THREADS.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/perf.hpp"
#include "analysis/table.hpp"
#include "analysis/tournament.hpp"

namespace {

// Activity-dense mission (fuzzer-style knobs): small batteries and a low
// initial charge band make exhaustion, pacing, and detection all land
// inside a half-day horizon, so cells differ measurably at modest trial
// counts.
wrsn::analysis::ScenarioConfig tournament_scenario() {
  using namespace wrsn;
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.topology.node_count = 36;
  const double side = 240.0;
  cfg.topology.region = {{0.0, 0.0}, {side, side}};
  cfg.topology.battery_capacity = 2'500.0;
  cfg.horizon = 43'200.0;
  cfg.world.drain.sensing_power = 0.05;
  cfg.world.initial_level_min = 0.4;
  cfg.world.initial_level_max = 0.55;
  cfg.world.patience = 5'400.0;
  cfg.attack.key_selection.max_count = 6;
  // Mild benign fault load prices the defenders' false positives against
  // fault-laden honest missions, not sterile ones (the PR 5 FP finding).
  cfg.faults.node_burst_mtbf = 20'000.0;
  cfg.faults.node_burst_size = 2;
  cfg.faults.battery_drift_mtbf = 30'000.0;
  cfg.faults.battery_drift_power = 0.01;
  // Policy epochs/windows sized so several complete inside the horizon.
  cfg.policy.attacker.epoch = 7'200.0;
  cfg.policy.defender.window = 7'200.0;
  return cfg;
}

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt0(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrsn;

  std::string out_path = "BENCH_tournament.json";
  std::size_t attack_trials = 12;
  std::size_t benign_trials = 12;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials" && i + 1 < argc) {
      attack_trials = std::size_t(std::stoul(argv[++i]));
    } else if (arg == "--benign" && i + 1 < argc) {
      benign_trials = std::size_t(std::stoul(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::uint64_t(std::stoull(argv[++i]));
    } else if (arg == "--quick") {
      attack_trials = 2;
      benign_trials = 2;
    } else if (!arg.empty() && arg[0] != '-') {
      out_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials N] [--benign N] [--seed S] [--quick] "
                   "[out.json]\n",
                   argv[0]);
      return 2;
    }
  }

  analysis::TournamentConfig config =
      analysis::default_tournament(tournament_scenario());
  config.attack_trials = attack_trials;
  config.benign_trials = benign_trials;
  config.seed = seed;
  const analysis::TournamentRunner runner(config);
  const analysis::TournamentReport report = runner.run();

  analysis::Table table("Policy tournament: damage vs stealth (" +
                        std::to_string(attack_trials) + " attack + " +
                        std::to_string(benign_trials) +
                        " benign missions per cell/column, seed " +
                        std::to_string(seed) + ")");
  table.headers({"attacker", "defender", "damage", "undetected damage",
                 "detected", "mean TTD [s]", "benign FP rate"});
  for (const analysis::TournamentCell& cell : report.cells) {
    table.row({cell.attacker, cell.defender, fmt3(cell.damage),
               fmt3(cell.undetected_damage), fmt3(cell.detection_rate),
               fmt0(cell.mean_time_to_detection), fmt3(cell.fp_rate)});
  }
  table.print(std::cout);
  analysis::print_perf(std::cout, report.stats);

  const std::string out = analysis::tournament_json(runner.config(), report);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::cout << "\nwrote " << out_path << " (" << report.trials
            << " missions, digest " << report.digest << ")\n";
  return 0;
}
