// Table II — Algorithm scalability: CSA planning time versus instance size,
// and the exact solver's exponential wall, measured with google-benchmark.
//
// Expected shape: CSA stays sub-second up to 1600 stops (O(1) slack-based
// insertion feasibility + lazy greedy fill; see core/route_state.hpp); the
// exact DP blows up past ~16 stops, which is why the approximation exists.
//
// Reproduce with bench/run_benchmarks.sh, which records the JSON trajectory
// in BENCH_table2.json (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/fleet_planner.hpp"
#include "core/planners.hpp"
#include "core/route_state.hpp"

namespace {

using namespace wrsn;

csa::TideInstance random_instance(std::size_t keys, std::size_t stops,
                                  std::uint64_t seed) {
  Rng gen(seed);
  csa::TideInstance inst;
  inst.start_position = {0.0, 0.0};
  inst.start_time = 0.0;
  inst.speed = 3.0;
  const auto add = [&](bool key) {
    csa::Stop stop;
    stop.node = static_cast<net::NodeId>(inst.stops.size());
    stop.position = {gen.uniform(-200.0, 200.0), gen.uniform(-200.0, 200.0)};
    stop.window_open = gen.uniform(0.0, 20'000.0);
    stop.window_close = stop.window_open + gen.uniform(3'600.0, 14'400.0);
    stop.service_time = gen.uniform(600.0, 1'800.0);
    stop.is_key = key;
    stop.utility = key ? 0.0 : gen.uniform(100.0, 8'000.0);
    inst.stops.push_back(stop);
  };
  for (std::size_t i = 0; i < keys; ++i) add(true);
  for (std::size_t i = 0; i < stops; ++i) add(false);
  return inst;
}

void BM_CsaPlanner(benchmark::State& state) {
  const auto stops = static_cast<std::size_t>(state.range(0));
  const csa::TideInstance inst = random_instance(10, stops, 42);
  const csa::CsaPlanner planner;
  Rng rng(1);
  double utility = 0.0;
  std::size_t scheduled = 0;
  for (auto _ : state) {
    const csa::Plan plan = planner.plan(inst, rng);
    benchmark::DoNotOptimize(plan.utility);
    utility = plan.utility;
    scheduled = plan.visits.size();
  }
  state.counters["utility"] = utility;
  state.counters["visits"] = double(scheduled);
}
BENCHMARK(BM_CsaPlanner)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Arg(800)->Arg(1600)->Unit(benchmark::kMillisecond);

// Fleet-level scalability: the cooperative planner (Voronoi seeding, EDF key
// assignment, per-cell CELF fill, spill auction) over 1/2/4 chargers sharing
// one stop pool.  Uses plan_into on arena state, like the replan loop does.
void BM_FleetPlanner(benchmark::State& state) {
  const auto chargers = static_cast<std::size_t>(state.range(0));
  const auto stops = static_cast<std::size_t>(state.range(1));
  Rng gen(42);
  csa::FleetInstance inst;
  for (std::size_t m = 0; m < chargers; ++m) {
    csa::FleetCharger c;
    c.start_position = {gen.uniform(-200.0, 200.0),
                        gen.uniform(-200.0, 200.0)};
    c.speed = 3.0;
    inst.chargers.push_back(c);
  }
  for (std::size_t i = 0; i < 10 + stops; ++i) {
    const bool key = i < 10;
    csa::Stop stop;
    stop.node = static_cast<net::NodeId>(i);
    stop.position = {gen.uniform(-200.0, 200.0), gen.uniform(-200.0, 200.0)};
    stop.window_open = gen.uniform(0.0, 20'000.0);
    stop.window_close = stop.window_open + gen.uniform(3'600.0, 14'400.0);
    stop.service_time = gen.uniform(600.0, 1'800.0);
    stop.is_key = key;
    stop.utility = key ? 0.0 : gen.uniform(100.0, 8'000.0);
    inst.stops.push_back(stop);
  }
  const csa::CooperativeFleetPlanner planner;
  csa::FleetPlan plan;
  double utility = 0.0;
  std::size_t scheduled = 0;
  for (auto _ : state) {
    planner.plan_into(inst, plan);
    benchmark::DoNotOptimize(plan.utility);
    utility = plan.utility;
    scheduled = 0;
    for (const csa::Plan& p : plan.plans) scheduled += p.visits.size();
  }
  state.counters["utility"] = utility;
  state.counters["visits"] = double(scheduled);
}
BENCHMARK(BM_FleetPlanner)
    ->ArgsProduct({{1, 2, 4}, {400, 800, 1600}})
    ->Unit(benchmark::kMillisecond);

// Microbenchmark of the planner's hot primitive: one best_insertion scan
// over a route of `range` stops.  With the slack suffix array each position
// is O(1), so this should scale linearly in the route length.
void BM_RouteStateInsert(benchmark::State& state) {
  const auto route_stops = static_cast<std::size_t>(state.range(0));
  // Wide windows so every stop can be appended; the probe stop is scanned
  // against every position of the built route.
  csa::TideInstance inst;
  inst.start_position = {0.0, 0.0};
  inst.start_time = 0.0;
  inst.speed = 3.0;
  Rng gen(7);
  for (std::size_t i = 0; i <= route_stops; ++i) {
    csa::Stop stop;
    stop.node = static_cast<net::NodeId>(i);
    stop.position = {gen.uniform(-200.0, 200.0), gen.uniform(-200.0, 200.0)};
    stop.window_open = 0.0;
    stop.window_close = 1e9;
    stop.service_time = gen.uniform(60.0, 120.0);
    stop.utility = 1.0;
    inst.stops.push_back(stop);
  }
  csa::RouteState route(inst);
  for (std::size_t i = 0; i < route_stops; ++i) {
    route.insert(i, route.order().size());
  }
  const std::size_t probe = route_stops;  // the one stop not in the route
  for (auto _ : state) {
    const auto best = route.best_insertion(probe);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(route_stops + 1));
}
BENCHMARK(BM_RouteStateInsert)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactPlanner(benchmark::State& state) {
  const auto stops = static_cast<std::size_t>(state.range(0));
  const csa::TideInstance inst = random_instance(2, stops, 42);
  const csa::ExactPlanner planner;
  Rng rng(1);
  for (auto _ : state) {
    const csa::Plan plan = planner.plan(inst, rng);
    benchmark::DoNotOptimize(plan.utility);
  }
}
BENCHMARK(BM_ExactPlanner)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyNearest(benchmark::State& state) {
  const auto stops = static_cast<std::size_t>(state.range(0));
  const csa::TideInstance inst = random_instance(10, stops, 42);
  const csa::GreedyNearestPlanner planner;
  Rng rng(1);
  for (auto _ : state) {
    const csa::Plan plan = planner.plan(inst, rng);
    benchmark::DoNotOptimize(plan.utility);
  }
}
BENCHMARK(BM_GreedyNearest)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
