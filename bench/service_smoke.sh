#!/usr/bin/env bash
# CI smoke for the mission server (src/svc/): at WRSN_THREADS=1/2/8, start
# `wrsn_cli --serve`, fire concurrent duplicate-heavy clients (each one
# cross-checks the served result against a direct local run via the CLI's
# built-in --client verification), then SIGTERM the server and demand a
# clean drain.  Finally the per-seed digests are compared ACROSS thread
# counts: the service must be bit-identical however the pool is sized.
#
#   bench/service_smoke.sh [build-dir]
#
# Intended to run under ASan/UBSan builds too (see .github/workflows/ci.yml);
# the script only needs wrsn_cli.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
cli="$build_dir/examples/wrsn_cli"
if [[ ! -x "$cli" ]]; then
  echo "error: $cli not built (cmake --build $build_dir --target wrsn_cli)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Duplicate-heavy workload: 12 concurrent clients over only 4 distinct
# seeds, so most requests coalesce or hit the cache while in flight.
seeds=(11 11 12 11 13 12 14 11 12 13 14 11)

for threads in 1 2 8; do
  sock="$workdir/svc_$threads.sock"
  log="$workdir/serve_$threads.log"
  WRSN_THREADS=$threads "$cli" --serve "$sock" --cache 64 --queue 64 \
    > "$log" 2>&1 &
  server=$!

  for _ in $(seq 100); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  if [[ ! -S "$sock" ]]; then
    echo "FAIL: server (WRSN_THREADS=$threads) never bound $sock" >&2
    cat "$log" >&2
    exit 1
  fi

  # All clients at once; odd-numbered ones use the binary protocol.
  pids=()
  for i in "${!seeds[@]}"; do
    proto=()
    if (( i % 2 == 1 )); then proto=(--binary); fi
    "$cli" --client "$sock" --seed "${seeds[$i]}" "${proto[@]}" \
      > "$workdir/client_${threads}_${i}.log" 2>&1 &
    pids+=($!)
  done
  for i in "${!pids[@]}"; do
    if ! wait "${pids[$i]}"; then
      echo "FAIL: client $i (WRSN_THREADS=$threads) failed:" >&2
      cat "$workdir/client_${threads}_${i}.log" >&2
      exit 1
    fi
    # --client verifies service vs direct itself; demand the confirmation.
    if ! grep -q '^verified: service matches direct execution' \
        "$workdir/client_${threads}_${i}.log"; then
      echo "FAIL: client $i (WRSN_THREADS=$threads) missing verification:" >&2
      cat "$workdir/client_${threads}_${i}.log" >&2
      exit 1
    fi
  done

  kill -TERM "$server"
  if ! wait "$server"; then
    echo "FAIL: server (WRSN_THREADS=$threads) exited non-zero:" >&2
    cat "$log" >&2
    exit 1
  fi
  if ! grep -q 'drained cleanly' "$log"; then
    echo "FAIL: server (WRSN_THREADS=$threads) did not drain cleanly:" >&2
    cat "$log" >&2
    exit 1
  fi

  # Record seed -> digest for the cross-thread-count comparison.
  for i in "${!seeds[@]}"; do
    digest="$(sed -n \
      's/^verified: service matches direct execution (digest \([0-9]*\)).*/\1/p' \
      "$workdir/client_${threads}_${i}.log")"
    echo "${seeds[$i]} $digest" >> "$workdir/digests_$threads.txt"
  done
  sort -u "$workdir/digests_$threads.txt" > "$workdir/digests_$threads.uniq"
  echo "WRSN_THREADS=$threads: ${#seeds[@]} clients verified, clean drain"
done

if ! cmp -s "$workdir/digests_1.uniq" "$workdir/digests_2.uniq" ||
   ! cmp -s "$workdir/digests_1.uniq" "$workdir/digests_8.uniq"; then
  echo "FAIL: digests differ across WRSN_THREADS values:" >&2
  for t in 1 2 8; do
    echo "--- WRSN_THREADS=$t" >&2
    cat "$workdir/digests_$t.uniq" >&2
  done
  exit 1
fi

echo "service smoke OK: digests bit-identical at WRSN_THREADS=1/2/8"
