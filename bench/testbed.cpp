// Testbed analog — the paper's small-scale physical experiment, re-created
// with the high-fidelity per-wave physics: an 8-node network at meter
// spacing (every node inside every other node's RF probe range), one key
// node, full detector suite.
//
// Expected shape: the key node logs a strong carrier during every one of
// its "charging" sessions, its believed level reads healthy, its true level
// walks to zero, and it dies while its neighbours measured a charger field
// the whole time.  All deployed detectors stay silent.
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "core/orchestrator.hpp"
#include "detect/detectors.hpp"
#include "net/topology.hpp"
#include "wpt/spoofing.hpp"

int main() {
  using namespace wrsn;
  using geom::Vec2;

  // Hand-placed 8-node testbed: a 2 x 4 bench grid at 2.5 m spacing, sink
  // at the left edge.  Node 0 is the only gateway -> the key node.
  std::vector<net::SensorSpec> specs;
  const Vec2 layout[] = {{2.5, 0.0},  {5.0, 0.0},  {7.5, 0.0},  {10.0, 0.0},
                         {5.0, 2.5},  {7.5, 2.5},  {10.0, 2.5}, {12.5, 1.0}};
  for (net::NodeId i = 0; i < 8; ++i) {
    net::SensorSpec spec;
    spec.id = i;
    spec.position = layout[i];
    spec.data_rate_bps = 4'000.0;
    spec.battery_capacity = 2'000.0;  // small bench batteries
    specs.push_back(spec);
  }
  net::Network network(std::move(specs), {0.0, 0.0}, 3.0);

  sim::WorldParams wp;
  wp.request_threshold = 0.30;
  wp.patience = 3'600.0;
  wp.min_request_gap = 120.0;
  wp.charging.source_power = 10.0;
  wp.charging.gain_product = 0.35;
  wp.charging.rectifier.dc_cap = 6.0;
  wp.drain.sensing_power = 20e-3;
  wp.initial_level_min = 0.6;
  wp.initial_level_max = 0.9;

  sim::Simulator sim;
  Rng rng(2022);
  sim::World world(sim, std::move(network), wp, rng.fork("world"));

  csa::AttackParams ap;
  ap.charger.depot = {0.0, -3.0};
  ap.charger.speed = 1.0;
  ap.charger.battery_capacity = 5e5;
  ap.key_selection.rule = net::KeyNodeRule::Articulation;
  ap.key_selection.max_count = 1;
  ap.campaign_deadline = 36 * 3'600.0;
  ap.pace_limit = 0;  // one target; pacing moot

  const csa::CsaPlanner planner;
  csa::AttackAgent attacker(world, ap, planner, rng.fork("attack"));
  attacker.start();

  const Seconds horizon = 36 * 3'600.0;
  sim.run_until(horizon);

  // --- report ------------------------------------------------------------
  std::cout << "Testbed: 8 nodes, 2.5 m bench grid, 36 h run\n";
  std::cout << "Key target(s):";
  for (const net::NodeId k : attacker.key_targets()) std::cout << " " << k;
  std::cout << "\n\n";

  analysis::Table nodes("Per-node end state");
  nodes.headers({"node", "alive", "true level [J]", "believed [J]",
                 "sessions", "spoofed"});
  for (net::NodeId id = 0; id < world.network().size(); ++id) {
    std::size_t sessions = 0, spoofed = 0;
    for (const sim::SessionRecord& s : world.trace().sessions) {
      if (s.node != id) continue;
      ++sessions;
      if (s.kind == sim::SessionKind::Spoofed) ++spoofed;
    }
    nodes.row({std::to_string(id), world.alive(id) ? "yes" : "DEAD",
               analysis::fmt(world.level(id), 0),
               analysis::fmt(world.alive(id) ? world.believed_level(id) : 0.0, 0),
               std::to_string(sessions), std::to_string(spoofed)});
  }
  nodes.print(std::cout);

  analysis::Table sessions("\nSpoofed-session physics (dense testbed: every "
                           "neighbour probes the field)");
  sessions.headers({"t [h]", "node", "RF at comm antenna [W]",
                    "neighbour probe [W]", "probe dist [m]",
                    "delivered [J]", "expected [J]"});
  for (const sim::SessionRecord& s : world.trace().sessions) {
    if (s.kind != sim::SessionKind::Spoofed) continue;
    sessions.row({analysis::fmt(s.start / 3600.0, 1), std::to_string(s.node),
                  analysis::fmt(s.rf_observed, 3),
                  analysis::fmt(s.rf_neighbor_probe, 3),
                  analysis::fmt(s.nearest_probe_distance, 1),
                  analysis::fmt(s.delivered, 2),
                  analysis::fmt(s.expected_gain, 0)});
  }
  sessions.print(std::cout);

  detect::DetectorContext ctx;
  ctx.network = &world.network();
  ctx.charging_model = &world.charging_model();
  ctx.nominal_dc = world.nominal_dc_power();
  ctx.benign_gain_mean = wp.benign_gain_mean;
  ctx.benign_gain_cv = wp.benign_gain_cv;
  ctx.horizon = horizon;
  const detect::DetectorSuite suite = detect::make_deployed_suite();
  const auto results = suite.run(world.trace(), ctx);

  std::cout << "\nDeployed detector verdicts:\n";
  for (const detect::SuiteResult& r : results) {
    std::cout << "  " << r.detector << ": "
              << (r.detection.has_value()
                      ? "FIRED (" + r.detection->reason + ")"
                      : "silent")
              << "\n";
  }

  std::size_t key_deaths = 0;
  for (const sim::DeathRecord& d : world.trace().deaths) {
    for (const net::NodeId k : attacker.key_targets()) {
      if (d.node == k) ++key_deaths;
    }
  }
  std::cout << "\nKey nodes exhausted: " << key_deaths << "/"
            << attacker.key_targets().size()
            << "; escalations: " << world.trace().escalations.size() << "\n";
  return 0;
}
