// Fig. 2 — The nonlinear superposition effect (the paper's motivating
// measurement): received RF and harvested DC versus the phase offset of a
// second coherent source, and harvested power versus distance for a single
// source vs. a phase-cancelled dual source.
//
// Expected shape: RF follows the cosine interference law, collapsing to ~0
// at pi; harvested DC hits exactly zero over a wide band around pi because
// the rectifier's sensitivity threshold swallows the residual — the window
// the Charging Spoofing Attack lives in.
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "wpt/charging_model.hpp"
#include "wpt/spoofing.hpp"
#include "wpt/wave.hpp"

int main() {
  using namespace wrsn;
  using geom::Vec2;

  wpt::ChargingModelParams params;
  params.source_power = 10.0;
  params.gain_product = 0.35;
  const wpt::ChargingModel model(params);

  // --- (a) phase sweep at the docking distance --------------------------
  const Vec2 target{0.0, 0.0};
  const Vec2 charger{-0.3, 0.0};
  const Meters sep = 0.15;

  analysis::Table phase_table(
      "Fig. 2a: received power vs phase offset of the second source "
      "(dual coherent antennas at dock distance, split power)");
  phase_table.headers({"phase/pi", "RF coherent [W]", "RF incoherent [W]",
                       "DC harvested [W]", "DC if linear [W]"});

  std::vector<Radians> phis;
  std::vector<Watts> rf_coh, rf_inc;
  for (int step = 0; step <= 32; ++step) {
    const Radians phi = constants::kTwoPi * step / 32.0;
    wpt::WaveSource s1 = model.as_wave_source(charger + Vec2{0.0, sep / 2});
    wpt::WaveSource s2 = model.as_wave_source(charger - Vec2{0.0, sep / 2});
    s1.alpha /= 2.0;
    s2.alpha /= 2.0;
    // Align both waves at the target first, then offset the second by phi.
    const Meters d1 = geom::distance(s1.position, target);
    const Meters d2 = geom::distance(s2.position, target);
    s1.phase_offset = wpt::propagation_phase(d1, s1.wavelength);
    s2.phase_offset = wpt::propagation_phase(d2, s2.wavelength) + phi;

    const wpt::WaveSource arr[] = {s1, s2};
    phis.push_back(phi);
    rf_coh.push_back(wpt::superposed_rf_power(arr, target));
    rf_inc.push_back(wpt::incoherent_rf_power(arr, target));
  }
  // The whole sweep's rectifier chain runs as one batched transfer call.
  std::vector<Watts> dc(rf_coh.size());
  model.rectifier().harvest_batch(rf_coh, dc);
  for (std::size_t i = 0; i < phis.size(); ++i) {
    // "If linear": a naive model with no sensitivity threshold.
    const Watts dc_linear = model.rectifier().params().max_efficiency * rf_coh[i];
    phase_table.row({analysis::fmt(phis[i] / constants::kPi, 3),
                     analysis::fmt(rf_coh[i], 4), analysis::fmt(rf_inc[i], 4),
                     analysis::fmt(dc[i], 4), analysis::fmt(dc_linear, 4)});
  }
  phase_table.print(std::cout);

  // --- (b) distance sweep: benign vs spoofed ----------------------------
  const wpt::SpoofingEmitter emitter(model, wpt::SpoofingParams{});
  analysis::Table dist_table(
      "Fig. 2b: harvested DC vs distance, benign single source vs "
      "phase-cancelled dual source");
  dist_table.headers({"distance [m]", "benign RF [W]", "benign DC [W]",
                      "spoof RF [W]", "spoof DC [W]", "suppression [dB]"});
  for (double d = 0.2; d <= 6.01; d += 0.4) {
    const wpt::SpoofOutcome out =
        emitter.configure({-d, 0.0}, {0.0, 0.0}, nullptr);
    dist_table.row({analysis::fmt(d, 1),
                    analysis::fmt(out.rf_benign_equiv, 4),
                    analysis::fmt(out.dc_benign_equiv, 4),
                    analysis::fmt(out.rf_at_target, 8),
                    analysis::fmt(out.dc_at_target, 8),
                    analysis::fmt(out.suppression_db, 1)});
  }
  dist_table.print(std::cout);

  // --- (c) spatial profile of the null around the rectenna --------------
  // One batched field evaluation over the whole probe line: the null is a
  // local feature of the interference pattern, so a probe centimeters away
  // (the comm antenna, a neighbour's RSSI sensor) still sees a hot carrier.
  const wpt::SpoofOutcome cancelled =
      emitter.configure({-1.0, 0.0}, {0.0, 0.0}, nullptr);
  analysis::Table profile_table(
      "Fig. 2c: residual RF vs probe offset from the rectenna "
      "(phase-cancelled pair at 1 m, one batched field pass)");
  profile_table.headers({"offset [m]", "RF [W]", "DC [W]"});
  std::vector<Meters> px, py;
  for (double off = -0.10; off <= 0.1001; off += 0.02) {
    px.push_back(0.0);
    py.push_back(off);
  }
  std::vector<Watts> rf_profile(px.size());
  std::vector<double> im_scratch(px.size());
  emitter.rf_at_probes(cancelled, px, py, rf_profile, im_scratch);
  std::vector<Watts> dc_profile(px.size());
  model.rectifier().harvest_batch(rf_profile, dc_profile);
  for (std::size_t i = 0; i < px.size(); ++i) {
    profile_table.row({analysis::fmt(py[i], 2), analysis::fmt(rf_profile[i], 6),
                       analysis::fmt(dc_profile[i], 6)});
  }
  profile_table.print(std::cout);

  std::cout << "\nTakeaway: coherent superposition is nonlinear — the same "
               "radiated power yields anywhere from 2x (in phase) to 0x "
               "(anti-phase) the single-source harvest, and the rectifier "
               "threshold turns near-cancellation into exactly zero.\n";
  return 0;
}
