#!/usr/bin/env bash
# Records the planner-scalability trajectory (Table II) as google-benchmark
# JSON so successive PRs can compare numbers.  Usage:
#
#   bench/run_benchmarks.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output = BENCH_table2.json at the repo root.
# The committed BENCH_table2.json is the current trajectory point; see the
# "Table II" section of EXPERIMENTS.md for how to read it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_table2.json}"
bin="$build_dir/bench/table2_runtime"

if [[ ! -x "$bin" ]]; then
  echo "error: $bin not built (cmake --build $build_dir --target table2_runtime)" >&2
  exit 1
fi

"$bin" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true
echo "wrote $out"
