#!/usr/bin/env bash
# Records the committed benchmark trajectories so successive PRs can compare
# numbers:
#
#   * BENCH_table2.json — planner scalability (Table II), google-benchmark
#   * BENCH_sim.json    — event kernel + incremental world updates +
#                         obs-overhead rows (BM_Fig5TrialObs), google-benchmark
#   * BENCH_fig5.json   — fig5 sweep metrics from the obs JSON exporter
#                         (schema wrsn-metrics-v1, bench/metrics_schema.json);
#                         the "deterministic" section is bit-identical at any
#                         WRSN_THREADS
#   * BENCH_service.json — mission-server throughput (coalescing + result
#                         cache on duplicate-heavy what-if workloads, schema
#                         wrsn-service-bench-v1)
#
# Usage:
#
#   bench/run_benchmarks.sh [--allow-debug] [build-dir]
#
# Default build-dir = build; outputs land at the repo root.  See the
# benchmark sections of EXPERIMENTS.md for how to read them.
#
# Recordings from debug builds are refused: google-benchmark stamps
# "library_build_type" into its JSON context, and committed debug numbers
# poison every later before/after comparison.  --allow-debug overrides for
# local smoke runs only.
set -euo pipefail

allow_debug=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  allow_debug=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

check_release() {
  local out="$1"
  if [[ "$allow_debug" == 1 ]]; then return 0; fi
  # The benchmark library reports how IT was built; the harness flags in
  # CMakeCache cover the code under test.  Either being debug disqualifies
  # the recording.
  if grep -q '"library_build_type": *"debug"' "$out"; then
    echo "error: $out was recorded against a debug benchmark library;" >&2
    echo "       rebuild Release or pass --allow-debug (not for committing)" >&2
    rm -f "$out"
    exit 1
  fi
  local cache="$build_dir/CMakeCache.txt"
  if [[ -f "$cache" ]] &&
     ! grep -q '^CMAKE_BUILD_TYPE:STRING=Release' "$cache"; then
    echo "error: $build_dir is not a Release build; refusing to record" >&2
    echo "       (pass --allow-debug to override for local smoke runs)" >&2
    rm -f "$out"
    exit 1
  fi
}

require_bin() {
  if [[ ! -x "$1" ]]; then
    echo "error: $1 not built (cmake --build $build_dir)" >&2
    exit 1
  fi
}

run_one() {
  local bin="$build_dir/bench/$1"
  local out="$repo_root/$2"
  require_bin "$bin"
  "$bin" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true
  check_release "$out"
  echo "wrote $out"
}

# Fig benches export their MetricRegistry when WRSN_METRICS_JSON is set.
run_metrics() {
  local bin="$build_dir/bench/$1"
  local out="$repo_root/$2"
  require_bin "$bin"
  WRSN_METRICS_JSON="$out" "$bin"
  echo "wrote $out"
  if command -v python3 > /dev/null; then
    python3 "$repo_root/bench/validate_metrics.py" "$out" \
      "$repo_root/bench/metrics_schema.json"
  fi
}

# service_throughput writes its own JSON (incl. library_build_type in the
# context, so check_release applies to it the same way).
run_service() {
  local bin="$build_dir/bench/service_throughput"
  local out="$repo_root/BENCH_service.json"
  require_bin "$bin"
  "$bin" "$out"
  check_release "$out"
  echo "wrote $out"
  if command -v python3 > /dev/null; then
    python3 "$repo_root/bench/validate_metrics.py" "$out" \
      "$repo_root/bench/metrics_schema.json"
  fi
}

run_one table2_runtime BENCH_table2.json
run_one sim_kernel BENCH_sim.json
run_metrics fig5_exhaustion BENCH_fig5.json
run_service
