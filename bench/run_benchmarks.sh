#!/usr/bin/env bash
# Records the committed benchmark trajectories as google-benchmark JSON so
# successive PRs can compare numbers:
#
#   * BENCH_table2.json — planner scalability (Table II)
#   * BENCH_sim.json    — event kernel + incremental world updates
#
# Usage:
#
#   bench/run_benchmarks.sh [build-dir]
#
# Default build-dir = build; outputs land at the repo root.  See the
# benchmark sections of EXPERIMENTS.md for how to read them.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

run_one() {
  local bin="$build_dir/bench/$1"
  local out="$repo_root/$2"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir --target $1)" >&2
    exit 1
  fi
  "$bin" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true
  echo "wrote $out"
}

run_one table2_runtime BENCH_table2.json
run_one sim_kernel BENCH_sim.json
