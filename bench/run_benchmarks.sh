#!/usr/bin/env bash
# Records the committed benchmark trajectories so successive PRs can compare
# numbers:
#
#   * BENCH_table2.json — planner scalability (Table II), google-benchmark
#   * BENCH_sim.json    — event kernel + incremental world updates +
#                         obs-overhead rows (BM_Fig5TrialObs), google-benchmark
#   * BENCH_fig5.json   — fig5 sweep metrics from the obs JSON exporter
#                         (schema wrsn-metrics-v1, bench/metrics_schema.json);
#                         the "deterministic" section is bit-identical at any
#                         WRSN_THREADS
#
# Usage:
#
#   bench/run_benchmarks.sh [build-dir]
#
# Default build-dir = build; outputs land at the repo root.  See the
# benchmark sections of EXPERIMENTS.md for how to read them.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

require_bin() {
  if [[ ! -x "$1" ]]; then
    echo "error: $1 not built (cmake --build $build_dir)" >&2
    exit 1
  fi
}

run_one() {
  local bin="$build_dir/bench/$1"
  local out="$repo_root/$2"
  require_bin "$bin"
  "$bin" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true
  echo "wrote $out"
}

# Fig benches export their MetricRegistry when WRSN_METRICS_JSON is set.
run_metrics() {
  local bin="$build_dir/bench/$1"
  local out="$repo_root/$2"
  require_bin "$bin"
  WRSN_METRICS_JSON="$out" "$bin"
  echo "wrote $out"
  if command -v python3 > /dev/null; then
    python3 "$repo_root/bench/validate_metrics.py" "$out" \
      "$repo_root/bench/metrics_schema.json"
  fi
}

run_one table2_runtime BENCH_table2.json
run_one sim_kernel BENCH_sim.json
run_metrics fig5_exhaustion BENCH_fig5.json
