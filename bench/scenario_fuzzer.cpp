// scenario_fuzzer — randomized short missions under fault injection,
// checked by differential, invariant, and liveness oracles (analysis/fuzz.hpp).
//
// A quarter of the generated missions run a 2-3 vehicle fleet
// (`fleet.size` / `fleet.compromised` overrides), so the oracles also cover
// the territory-partitioned agents, the cooperative fleet planner, and —
// when the mix lands a permanent MC loss on a fleet mission — the charger
// handoff path.
//
//   $ ./scenario_fuzzer --trials 2000 --seed 1
//   $ WRSN_THREADS=8 ./scenario_fuzzer --trials 2000 --seed 1   # same digest
//   $ ./scenario_fuzzer --repro 'faults.node_burst_mtbf=...;seed=42;...'
//   $ ./scenario_fuzzer --self-test   # injected planner bug must be caught
//
// Every failing trial prints one `REPRO <line>` — replay it with --repro
// here or with `wrsn_cli --repro` for the full mission report.  The final
// `fuzz-digest` is bit-identical at any WRSN_THREADS; comparing digests
// across thread counts pins the runner's determinism guarantee.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/fuzz.hpp"
#include "common/rng.hpp"
#include "svc/digest.hpp"
#include "svc/service.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: scenario_fuzzer [options]\n"
      "  --trials <N>        number of randomized missions (default 2000)\n"
      "  --seed <S>          campaign seed (default 1)\n"
      "  --threads <T>       worker threads (default WRSN_THREADS / cores)\n"
      "  --max-failures <K>  repro lines to print before truncating "
      "(default 16)\n"
      "  --repro <line>      replay one failing trial and print its "
      "verdict\n"
      "  --self-test         inject a planner bug; exits 0 only if the\n"
      "                      differential oracle catches it\n"
      "  --service-trials <N> replay N fuzzed scenarios through a shared\n"
      "                      MissionService (duplicates included) and demand\n"
      "                      digest equality with direct execution\n"
      "  --help              this text\n";
}

/// Service-equivalence family: fuzzed scenarios through one shared
/// MissionService vs direct run_mission, duplicate-heavy so cache hits and
/// coalesced joins carry real missions.  Any divergence prints the exact
/// REPRO line (replayable with --repro here or wrsn_cli --repro).
int run_service_trials(std::size_t trials, std::uint64_t seed,
                       std::size_t threads) {
  using namespace wrsn;

  struct TrialCase {
    std::string repro;
    svc::MissionRequest request;
  };
  std::vector<TrialCase> cases;
  cases.reserve(trials);
  Rng gen(seed);
  for (std::size_t i = 0; i < trials; ++i) {
    analysis::FuzzOverrides overrides = analysis::generate_fuzz_overrides(gen);
    TrialCase c;
    c.repro = analysis::format_repro(overrides);
    auto [config, mode] = analysis::resolve_overrides(overrides);
    c.request.config = config;
    c.request.mode = mode;
    cases.push_back(std::move(c));
  }

  svc::ServiceOptions options;
  options.threads = threads;
  options.cache_capacity = trials;
  options.queue_limit = trials + 16;
  svc::MissionService service(options);

  // Each scenario twice: every pair exercises execute-then-share.
  std::vector<svc::MissionRequest> requests;
  std::vector<std::size_t> origin;
  requests.reserve(trials * 2);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    requests.push_back(cases[i].request);
    origin.push_back(i);
    requests.push_back(cases[i].request);
    origin.push_back(i);
  }
  const std::vector<svc::MissionResponse> responses =
      service.submit_batch(requests);

  // One direct run per unique scenario is the oracle for both duplicates.
  std::vector<std::uint64_t> expected(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expected[i] = analysis::digest_result(
        analysis::run_mission(cases[i].request.config, cases[i].request.mode));
  }

  std::size_t failures = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const TrialCase& c = cases[origin[i]];
    if (responses[i].status != svc::MissionStatus::kOk) {
      std::cout << "FAIL service status "
                << std::to_string(int(responses[i].status)) << "\n"
                << "REPRO " << c.repro << "\n";
      ++failures;
      continue;
    }
    if (responses[i].outcome.result_digest != expected[origin[i]]) {
      std::cout << "FAIL service digest " << responses[i].outcome.result_digest
                << " != direct " << expected[origin[i]] << "\n"
                << "REPRO " << c.repro << "\n";
      ++failures;
    }
  }

  const svc::ServiceStats stats = service.stats();
  std::cout << "service-trials " << trials << "\n"
            << "service-requests " << stats.requests << "\n"
            << "service-executions " << stats.executions << "\n"
            << "service-shared " << stats.cache_hits + stats.coalesced << "\n"
            << "service-failures " << failures << "\n";
  return failures == 0 ? 0 : 1;
}

int replay(const std::string& line) {
  const wrsn::analysis::FuzzOverrides overrides =
      wrsn::analysis::parse_repro(line);
  const wrsn::analysis::FuzzVerdict verdict =
      wrsn::analysis::run_fuzz_trial(overrides);
  std::cout << "repro: " << wrsn::analysis::format_repro(overrides) << "\n";
  if (verdict.ok()) {
    std::cout << "all oracles passed (digest " << verdict.digest << ")\n";
    return 0;
  }
  for (const std::string& failure : verdict.failures) {
    std::cout << "FAIL " << failure << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrsn;

  std::size_t trials = 2000;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t max_failures = 16;
  std::size_t service_trials = 0;
  bool self_test = false;
  std::string repro_line;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      trials = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--max-failures") {
      max_failures = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--service-trials") {
      service_trials = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--repro") {
      repro_line = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  try {
    if (!repro_line.empty()) return replay(repro_line);
    if (service_trials > 0) {
      return run_service_trials(service_trials, seed, threads);
    }

    if (self_test) {
      // The oracles must catch a deliberately broken planner; a clean
      // self-test run means the harness is blind, which is itself a failure.
      const std::size_t self_trials = std::min<std::size_t>(trials, 50);
      const analysis::FuzzReport report = analysis::run_fuzz_campaign(
          self_trials, seed, threads, /*inject_divergence=*/true,
          max_failures);
      std::cout << "self-test: " << report.failed_trials << "/"
                << report.trials << " trials caught the injected bug\n";
      if (report.ok()) {
        std::cerr << "self-test FAILED: oracles missed the injected "
                     "planner bug\n";
        return 1;
      }
      std::cout << "example REPRO " << report.repro_lines.front() << "\n";
      std::cout << "example failure: " << report.first_failures.front()
                << "\n";
      return 0;
    }

    const analysis::FuzzReport report =
        analysis::run_fuzz_campaign(trials, seed, threads,
                                    /*inject_divergence=*/false, max_failures);
    for (std::size_t i = 0; i < report.repro_lines.size(); ++i) {
      std::cout << "REPRO " << report.repro_lines[i] << "\n";
      std::cout << "  first failure: " << report.first_failures[i] << "\n";
    }
    if (report.failed_trials > report.repro_lines.size()) {
      std::cout << "(+" << report.failed_trials - report.repro_lines.size()
                << " more failing trials truncated)\n";
    }
    std::cout << "fuzz-trials " << report.trials << "\n";
    std::cout << "fuzz-failures " << report.failed_trials << "\n";
    std::cout << "fuzz-digest " << report.digest << "\n";
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
