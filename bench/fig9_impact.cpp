// Fig. 9 — Network impact over time: alive nodes and sink-connected nodes,
// benign charger vs CSA attacker, plus partition statistics over seeds.
//
// Expected shape: the benign curve stays flat (minus background hardware
// failures); under CSA the connected count collapses in steps as key nodes
// die, partitioning the network at a fraction of the benign lifetime.
//
// One sharded batch simulates every (mode, seed) pair; the 9a time series
// picks the first partitioning attack seed out of the batch (the same seed
// the old serial probe loop found) and the 9b aggregate reuses the rest.
#include <iostream>
#include <set>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "net/topology.hpp"
#include "runner/runner.hpp"

namespace {

using namespace wrsn;

/// Replays a death trace into hour-bucketed (alive, sink-connected) series.
struct Series {
  std::vector<std::size_t> alive;
  std::vector<std::size_t> connected;
};

Series replay(const net::Network& network, const sim::Trace& trace,
              Seconds horizon, Seconds bucket) {
  Series series;
  Bitmap mask(network.size(), true);
  std::size_t next_death = 0;
  for (Seconds t = bucket; t <= horizon + 1.0; t += bucket) {
    while (next_death < trace.deaths.size() &&
           trace.deaths[next_death].time <= t) {
      mask.reset(trace.deaths[next_death].node);
      ++next_death;
    }
    series.alive.push_back(mask.count());
    series.connected.push_back(net::count_sink_connected(network, mask));
  }
  return series;
}

}  // namespace

int main() {
  constexpr Seconds kBucket = 6 * 3'600.0;
  constexpr int kSeeds = 10;

  // Every (mode, seed) pair, benign first: results[0..kSeeds) benign,
  // results[kSeeds..2*kSeeds) attack, seed order within each block.
  struct Trial {
    bool attack;
    std::uint64_t seed;
  };
  std::vector<Trial> trials;
  for (const bool attack : {false, true}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      trials.push_back({attack, seed});
    }
  }

  runner::RunStats stats;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [](const Trial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = trial.seed;
        return analysis::run_scenario(cfg, trial.attack
                                               ? analysis::ChargerMode::Attack
                                               : analysis::ChargerMode::Benign);
      },
      {.label = "fig9"}, &stats);
  const auto benign_of = [&](std::uint64_t seed) -> const auto& {
    return results[seed - 1];
  };
  const auto attack_of = [&](std::uint64_t seed) -> const auto& {
    return results[kSeeds + seed - 1];
  };

  // Show the time series for the first seed whose attack run partitions the
  // network (the representative case; fig 9b aggregates all seeds).
  std::uint64_t kSeed = 1;
  for (std::uint64_t candidate = 1; candidate <= kSeeds; ++candidate) {
    if (attack_of(candidate).report.partition_time.has_value()) {
      kSeed = candidate;
      break;
    }
  }

  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = kSeed;

  // Rebuild the same topology the scenario uses, for connectivity replay.
  Rng rng(cfg.seed);
  Rng topo_rng = rng.fork("topology");
  const net::Network network = net::generate_topology(cfg.topology, topo_rng);

  const Series benign_series =
      replay(network, benign_of(kSeed).trace, cfg.horizon, kBucket);
  const Series attack_series =
      replay(network, attack_of(kSeed).trace, cfg.horizon, kBucket);

  analysis::Table table("Fig. 9a: network health over time (seed " +
                        std::to_string(kSeed) + ", N=" +
                        std::to_string(network.size()) + ")");
  table.headers({"hour", "benign alive", "benign connected", "CSA alive",
                 "CSA connected"});
  for (std::size_t i = 0; i < benign_series.alive.size(); ++i) {
    table.row({analysis::fmt(double(i + 1) * kBucket / 3600.0, 0),
               std::to_string(benign_series.alive[i]),
               std::to_string(benign_series.connected[i]),
               std::to_string(attack_series.alive[i]),
               std::to_string(attack_series.connected[i])});
  }
  table.print(std::cout);

  // Aggregate partition statistics.
  analysis::Table agg("Fig. 9b: partition statistics over " +
                      std::to_string(kSeeds) + " seeds");
  agg.headers({"charger", "partitioned runs", "mean partition hour",
               "mean connected at end"});
  for (const bool attack_mode : {false, true}) {
    int partitioned = 0;
    std::vector<double> hours, connected;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const analysis::ScenarioResult& r =
          attack_mode ? attack_of(seed) : benign_of(seed);
      if (r.report.partition_time.has_value()) {
        ++partitioned;
        hours.push_back(*r.report.partition_time / 3600.0);
      }
      connected.push_back(double(r.sink_connected_at_end));
    }
    agg.row({attack_mode ? "CSA" : "benign",
             std::to_string(partitioned) + "/" + std::to_string(kSeeds),
             hours.empty() ? "-"
                           : analysis::fmt(analysis::summarize(hours).mean, 1),
             analysis::fmt(analysis::summarize(connected).mean, 1)});
  }
  agg.print(std::cout);
  analysis::print_perf(std::cout, stats);
  return 0;
}
