// Fig. 11 (countermeasure study) — Budgeted coulomb-counter deployment:
// how many nodes must the operator meter, and where, to catch CSA?
//
// Expected shape: placing the meters on the key-node ranking (the same
// analysis the attacker runs) catches the attack with a budget of ~10
// meters (10 % of nodes); random placement needs several times more,
// because the attacker only ever touches its structural targets with
// spoofed sessions.
//
// The missions do not depend on the meter budget or placement, so each
// seed's (benign, attack) pair is simulated once — sharded over the runner
// — and every (budget, placement) cell re-analyzes the cached traces.
#include <iostream>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "detect/audit_planner.hpp"
#include "net/topology.hpp"
#include "runner/runner.hpp"

namespace {
constexpr int kSeeds = 10;
}

int main() {
  using namespace wrsn;

  const struct {
    detect::AuditPlacement placement;
    const char* name;
  } placements[] = {
      {detect::AuditPlacement::KeyRanked, "key-ranked"},
      {detect::AuditPlacement::TopTraffic, "top-traffic"},
      {detect::AuditPlacement::Random, "random"},
  };

  // One trial per seed: the defender's pristine-topology view plus both
  // mission traces.
  struct SeedData {
    net::Network network;
    net::TrafficLoads loads;
    analysis::ScenarioResult benign;
    analysis::ScenarioResult attack;
  };
  std::vector<std::uint64_t> seeds;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    seeds.push_back(static_cast<std::uint64_t>(seed));
  }

  runner::RunStats stats;
  std::vector<SeedData> data = runner::run_trials(
      std::span<const std::uint64_t>(seeds),
      [](const std::uint64_t& seed, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = seed;

        // The defender plans its placement on the pristine topology.
        Rng rng(cfg.seed);
        Rng topo_rng = rng.fork("topology");
        net::Network network = net::generate_topology(cfg.topology, topo_rng);
        const net::RoutingTree tree = net::build_routing_tree(network);
        net::TrafficLoads loads = net::compute_loads(network, tree);

        analysis::ScenarioResult benign =
            analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
        analysis::ScenarioResult attack =
            analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
        return SeedData{std::move(network), std::move(loads),
                        std::move(benign), std::move(attack)};
      },
      {.label = "fig11"}, &stats);

  analysis::Table table(
      "Fig. 11: CSA detection rate vs coulomb-counter budget and placement "
      "(" + std::to_string(kSeeds) + " seeds, metered energy-delta audit)");
  table.headers({"budget", "placement", "CSA detected",
                 "undetected exhausted %", "benign false positives"});

  for (const std::size_t budget : {5u, 10u, 20u, 40u, 100u}) {
    for (const auto& entry : placements) {
      int caught = 0, fp = 0;
      std::vector<double> undetected;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const SeedData& sd = data[std::size_t(seed) - 1];
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(seed);

        Rng rng(cfg.seed);
        Rng place_rng = rng.fork("audit-placement");
        const std::vector<net::NodeId> audited = detect::select_audit_nodes(
            sd.network, sd.loads, budget, entry.placement, place_rng);
        const detect::EnergyDeltaDetector detector(audited);

        detect::DetectorContext ctx;
        ctx.network = &sd.network;
        ctx.nominal_dc = 1.0;  // unused by this detector
        ctx.benign_gain_mean = cfg.world.benign_gain_mean;
        ctx.benign_gain_cv = cfg.world.benign_gain_cv;
        ctx.noise_seed = cfg.seed ^ 0x9e3779b97f4a7c15ULL;
        ctx.horizon = cfg.horizon;

        for (const bool attack : {false, true}) {
          const analysis::ScenarioResult& result =
              attack ? sd.attack : sd.benign;
          const auto detection = detector.analyze(result.trace, ctx);
          if (!attack) {
            if (detection.has_value()) ++fp;
            continue;
          }
          if (detection.has_value()) ++caught;
          std::size_t before = 0;
          for (const sim::DeathRecord& d : result.trace.deaths) {
            for (const net::NodeId key : result.keys) {
              if (d.node == key &&
                  (!detection.has_value() || d.time <= detection->time)) {
                ++before;
              }
            }
          }
          undetected.push_back(
              result.keys.empty()
                  ? 0.0
                  : 100.0 * double(before) / double(result.keys.size()));
        }
      }
      const auto un = analysis::summarize(undetected);
      table.row({std::to_string(budget), entry.name,
                 std::to_string(caught) + "/" + std::to_string(kSeeds),
                 analysis::fmt_ci(un.mean, un.ci95, 1),
                 std::to_string(fp) + "/" + std::to_string(kSeeds)});
    }
  }
  table.print(std::cout);
  analysis::print_perf(std::cout, stats);

  std::cout << "\nDefender-attacker symmetry: the defender can compute the"
               " same key-node ranking the attacker targets, so a handful of"
               " well-placed meters dominates random deployment.\n";
  return 0;
}
