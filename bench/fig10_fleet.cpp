// Fig. 10 (extension) — Fleet scaling: larger networks served by charger
// fleets, with zero or one compromised member.
//
// Expected shape: honest fleets keep arbitrarily large deployments healthy
// (capacity scales with fleet size); a single compromised member still
// exhausts the key nodes of its cell without detection — the attack
// surface grows with every vehicle an operator cannot audit.
//
// A second table sweeps the cooperative fleet planner itself (Voronoi
// seeding, EDF key skeleton, orphan/spill auctions) against the naive
// sequential reference over fleet sizes on one shared stop pool: utility,
// key coverage, and how many stops the auctions moved off their spatial
// seed.  Both planners are deterministic, so the per-row numbers are exact
// (the equivalence suite pins them bit-identical; the table shows the
// fleet-size trends).
#include <iostream>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"
#include "core/fleet_planner.hpp"
#include "core/fleet_reference.hpp"
#include "runner/runner.hpp"

namespace {

constexpr int kSeeds = 6;

/// Shared stop pool + M depots, same distributions as BM_FleetPlanner
/// (bench/table2_runtime.cpp) so the tables line up with the timing rows.
wrsn::csa::FleetInstance random_fleet(std::size_t chargers, std::size_t keys,
                                      std::size_t stops, std::uint64_t seed) {
  using namespace wrsn;
  Rng gen(seed);
  csa::FleetInstance inst;
  for (std::size_t m = 0; m < chargers; ++m) {
    csa::FleetCharger c;
    c.start_position = {gen.uniform(-200.0, 200.0),
                        gen.uniform(-200.0, 200.0)};
    c.speed = 3.0;
    inst.chargers.push_back(c);
  }
  for (std::size_t i = 0; i < keys + stops; ++i) {
    const bool key = i < keys;
    csa::Stop stop;
    stop.node = static_cast<net::NodeId>(i);
    stop.position = {gen.uniform(-200.0, 200.0), gen.uniform(-200.0, 200.0)};
    stop.window_open = gen.uniform(0.0, 20'000.0);
    stop.window_close = stop.window_open + gen.uniform(3'600.0, 14'400.0);
    stop.service_time = gen.uniform(600.0, 1'800.0);
    stop.is_key = key;
    stop.utility = key ? 0.0 : gen.uniform(100.0, 8'000.0);
    inst.stops.push_back(stop);
  }
  return inst;
}

void print_planner_sweep() {
  using namespace wrsn;

  analysis::Table table(
      "Fleet planner sweep: cooperative (Fleet-CSA) vs naive reference on "
      "one shared pool (mean over " + std::to_string(kSeeds) + " instances)");
  table.headers({"fleet", "stops", "planner", "utility", "keys scheduled",
                 "unscheduled", "auction moves"});

  for (const std::size_t fleet : {1, 2, 4, 8}) {
    for (const std::size_t stops : {400, 1600}) {
      for (const bool cooperative : {true, false}) {
        std::vector<double> utility, scheduled, unscheduled, moves;
        std::string name;
        for (int seed = 1; seed <= kSeeds; ++seed) {
          const csa::FleetInstance inst = random_fleet(
              fleet, 24, stops, static_cast<std::uint64_t>(seed));
          // One planner per instance: the cooperative planner's distance
          // memo is keyed by node id and assumes one fixed deployment.
          const csa::CooperativeFleetPlanner coop;
          const csa::reference::NaiveFleetPlanner naive;
          const csa::FleetPlanner& planner =
              cooperative ? static_cast<const csa::FleetPlanner&>(coop)
                          : static_cast<const csa::FleetPlanner&>(naive);
          name = planner.name();
          const csa::FleetPlan plan = planner.plan(inst);
          utility.push_back(plan.utility);
          scheduled.push_back(double(plan.keys_scheduled));
          unscheduled.push_back(double(plan.unscheduled_keys.size()));
          moves.push_back(double(plan.auction_moves));
        }
        const auto ut = analysis::summarize(utility);
        const auto sc = analysis::summarize(scheduled);
        const auto un = analysis::summarize(unscheduled);
        const auto mv = analysis::summarize(moves);
        table.row({std::to_string(fleet), std::to_string(stops), name,
                   analysis::fmt(ut.mean, 0),
                   analysis::fmt(sc.mean, 1) + "/24",
                   analysis::fmt(un.mean, 1), analysis::fmt(mv.mean, 1)});
      }
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace wrsn;

  const struct {
    std::size_t nodes;
    std::size_t fleet;
  } settings[] = {{100, 1}, {100, 2}, {200, 2}, {200, 4}, {400, 4}};

  struct Trial {
    std::size_t nodes;
    std::size_t fleet;
    bool attack;
    int seed;
  };
  std::vector<Trial> trials;
  for (const auto& setting : settings) {
    for (const bool attack : {false, true}) {
      for (int seed = 1; seed <= kSeeds; ++seed) {
        trials.push_back({setting.nodes, setting.fleet, attack, seed});
      }
    }
  }

  runner::RunStats stats;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [](const Trial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(trial.seed);
        cfg.topology.node_count = trial.nodes;
        // Demand scales with N; the fleet provides the capacity (unlike
        // fig5, per-node rates are NOT scaled down here).
        const double scale = 100.0 / double(trial.nodes);
        cfg.topology.comm_range = 65.0 * std::sqrt(scale);
        return analysis::run_fleet_scenario(cfg, trial.fleet,
                                            trial.attack ? 0 : SIZE_MAX);
      },
      {.label = "fig10"}, &stats);

  analysis::Table table("Fig. 10: charger fleets, honest vs one compromised "
                        "member (mean over " + std::to_string(kSeeds) +
                        " seeds)");
  table.headers({"nodes", "fleet", "compromised", "alive@end", "exhausted %",
                 "undetected %", "detected runs"});

  std::size_t next = 0;
  for (const auto& setting : settings) {
    for (const bool attack : {false, true}) {
      std::vector<double> alive, exhausted, undetected;
      int detected = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const analysis::ScenarioResult& result = results[next++];
        alive.push_back(double(result.alive_at_end));
        exhausted.push_back(100.0 * result.report.exhaustion_ratio);
        undetected.push_back(100.0 *
                             result.report.undetected_exhaustion_ratio);
        if (result.report.detected) ++detected;
      }
      const auto al = analysis::summarize(alive);
      const auto ex = analysis::summarize(exhausted);
      const auto un = analysis::summarize(undetected);
      table.row({std::to_string(setting.nodes),
                 std::to_string(setting.fleet), attack ? "member #0" : "no",
                 analysis::fmt(al.mean, 1) + "/" +
                     std::to_string(setting.nodes),
                 attack ? analysis::fmt_ci(ex.mean, ex.ci95, 1) : "-",
                 attack ? analysis::fmt_ci(un.mean, un.ci95, 1) : "-",
                 std::to_string(detected) + "/" + std::to_string(kSeeds)});
    }
  }
  table.print(std::cout);
  print_planner_sweep();
  analysis::print_perf(std::cout, stats);
  return 0;
}
