// Fig. 10 (extension) — Fleet scaling: larger networks served by charger
// fleets, with zero or one compromised member.
//
// Expected shape: honest fleets keep arbitrarily large deployments healthy
// (capacity scales with fleet size); a single compromised member still
// exhausts the key nodes of its cell without detection — the attack
// surface grows with every vehicle an operator cannot audit.
#include <iostream>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "runner/runner.hpp"

namespace {
constexpr int kSeeds = 6;
}

int main() {
  using namespace wrsn;

  const struct {
    std::size_t nodes;
    std::size_t fleet;
  } settings[] = {{100, 1}, {100, 2}, {200, 2}, {200, 4}, {400, 4}};

  struct Trial {
    std::size_t nodes;
    std::size_t fleet;
    bool attack;
    int seed;
  };
  std::vector<Trial> trials;
  for (const auto& setting : settings) {
    for (const bool attack : {false, true}) {
      for (int seed = 1; seed <= kSeeds; ++seed) {
        trials.push_back({setting.nodes, setting.fleet, attack, seed});
      }
    }
  }

  runner::RunStats stats;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [](const Trial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(trial.seed);
        cfg.topology.node_count = trial.nodes;
        // Demand scales with N; the fleet provides the capacity (unlike
        // fig5, per-node rates are NOT scaled down here).
        const double scale = 100.0 / double(trial.nodes);
        cfg.topology.comm_range = 65.0 * std::sqrt(scale);
        return analysis::run_fleet_scenario(cfg, trial.fleet,
                                            trial.attack ? 0 : SIZE_MAX);
      },
      {.label = "fig10"}, &stats);

  analysis::Table table("Fig. 10: charger fleets, honest vs one compromised "
                        "member (mean over " + std::to_string(kSeeds) +
                        " seeds)");
  table.headers({"nodes", "fleet", "compromised", "alive@end", "exhausted %",
                 "undetected %", "detected runs"});

  std::size_t next = 0;
  for (const auto& setting : settings) {
    for (const bool attack : {false, true}) {
      std::vector<double> alive, exhausted, undetected;
      int detected = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const analysis::ScenarioResult& result = results[next++];
        alive.push_back(double(result.alive_at_end));
        exhausted.push_back(100.0 * result.report.exhaustion_ratio);
        undetected.push_back(100.0 *
                             result.report.undetected_exhaustion_ratio);
        if (result.report.detected) ++detected;
      }
      const auto al = analysis::summarize(alive);
      const auto ex = analysis::summarize(exhausted);
      const auto un = analysis::summarize(undetected);
      table.row({std::to_string(setting.nodes),
                 std::to_string(setting.fleet), attack ? "member #0" : "no",
                 analysis::fmt(al.mean, 1) + "/" +
                     std::to_string(setting.nodes),
                 attack ? analysis::fmt_ci(ex.mean, ex.ci95, 1) : "-",
                 attack ? analysis::fmt_ci(un.mean, un.ci95, 1) : "-",
                 std::to_string(detected) + "/" + std::to_string(kSeeds)});
    }
  }
  table.print(std::cout);
  analysis::print_perf(std::cout, stats);
  return 0;
}
