// Fig. 6 — Detection study: which defense catches which attacker, how fast,
// and at what false-positive cost.  Rows: charger behaviours (benign, CSA
// phase-cancel, the two naive variants).  Columns: per-detector firing
// rates over seeds, for the deployed suite and the coulomb-counter-hardened
// suite.
//
// Expected shape: benign is clean (FPR ~0); silent-skip dies to the RSSI
// check in hours; no-service dies to the service audit; CSA survives the
// whole deployed suite (occasional late death-rate hits) and only the
// hardened suite catches it reliably.
#include <iostream>
#include <map>
#include <set>

#include "analysis/metrics_io.hpp"
#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"

namespace {
constexpr int kSeeds = 10;
}

int main() {
  using namespace wrsn;

  const struct {
    const char* name;
    bool benign;
    csa::SpoofMode mode;
  } chargers[] = {
      {"benign", true, csa::SpoofMode::PhaseCancel},
      {"CSA", false, csa::SpoofMode::PhaseCancel},
      {"CSA-partial", false, csa::SpoofMode::PartialCancel},
      {"silent-skip", false, csa::SpoofMode::SilentSkip},
      {"no-service", false, csa::SpoofMode::NoService},
  };
  constexpr std::size_t kChargers = sizeof(chargers) / sizeof(chargers[0]);

  // Flatten (suite, charger, seed) row-major; aggregation walks the same
  // order below.
  struct Trial {
    bool hardened;
    std::size_t charger;
    int seed;
  };
  std::vector<Trial> trials;
  for (const bool hardened : {false, true}) {
    for (std::size_t c = 0; c < kChargers; ++c) {
      for (int seed = 1; seed <= kSeeds; ++seed) {
        trials.push_back({hardened, c, seed});
      }
    }
  }

  analysis::PhasedStats perf;
  obs::MetricRegistry metrics;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [&chargers](const Trial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(trial.seed);
        cfg.hardened_detectors = trial.hardened;
        cfg.attack.spoof_mode = chargers[trial.charger].mode;
        return analysis::run_scenario(cfg,
                                      chargers[trial.charger].benign
                                          ? analysis::ChargerMode::Benign
                                          : analysis::ChargerMode::Attack);
      },
      {.label = "fig6", .metrics = &metrics}, perf.phase("suites"));

  std::size_t next = 0;
  for (const bool hardened : {false, true}) {
    analysis::Table table(
        std::string("Fig. 6: detections over ") + std::to_string(kSeeds) +
        " seeds, " + (hardened ? "HARDENED" : "DEPLOYED") + " suite");
    table.headers({"charger", "detected", "mean hour", "by detector",
                   "undetected exhausted %"});

    for (const auto& charger : chargers) {
      int detected = 0;
      std::vector<double> hours, undetected;
      std::map<std::string, int> by_detector;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const analysis::ScenarioResult& result = results[next++];
        if (result.report.detected) {
          ++detected;
          hours.push_back(result.report.detection_time / 3600.0);
          ++by_detector[result.report.detector_name];
        }
        undetected.push_back(100.0 *
                             result.report.undetected_exhaustion_ratio);
      }
      std::string detectors;
      for (const auto& [name, count] : by_detector) {
        if (!detectors.empty()) detectors += ", ";
        detectors += name + " x" + std::to_string(count);
      }
      const auto hr = analysis::summarize(hours);
      const auto un = analysis::summarize(undetected);
      table.row({charger.name,
                 std::to_string(detected) + "/" + std::to_string(kSeeds),
                 hours.empty() ? "-" : analysis::fmt(hr.mean, 1),
                 detectors.empty() ? "-" : detectors,
                 charger.benign ? "-" : analysis::fmt_ci(un.mean, un.ci95, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Death-rate threshold sensitivity: how aggressive must the monitor be to
  // see CSA, and what does that cost in benign false positives?  The trace
  // pairs (benign, attack) per seed are simulated once and re-analyzed at
  // every threshold.
  struct PairTrial {
    int seed;
  };
  std::vector<PairTrial> pair_trials;
  for (int seed = 1; seed <= kSeeds; ++seed) pair_trials.push_back({seed});

  struct TracePair {
    analysis::ScenarioResult benign;
    analysis::ScenarioResult attack;
  };
  const std::vector<TracePair> pairs = runner::run_trials(
      std::span<const PairTrial>(pair_trials),
      [](const PairTrial& trial, Rng&) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(trial.seed);
        return TracePair{
            analysis::run_scenario(cfg, analysis::ChargerMode::Benign),
            analysis::run_scenario(cfg, analysis::ChargerMode::Attack)};
      },
      {.label = "fig6b", .metrics = &metrics}, perf.phase("threshold-sweep"));

  analysis::Table sweep(
      "Fig. 6b: death-rate monitor threshold sweep (deaths per 24 h window)");
  sweep.headers({"threshold", "benign false positives", "CSA detected",
                 "CSA undetected exhausted %"});
  for (const std::size_t threshold : {3u, 4u, 5u, 6u, 8u}) {
    int fp = 0, caught = 0;
    std::vector<double> undetected;
    for (const TracePair& pair : pairs) {
      detect::DeathRateDetector detector(threshold, 86'400.0);
      detect::DetectorContext ctx;
      ctx.horizon = analysis::default_scenario().horizon;
      const auto benign_detection = detector.analyze(pair.benign.trace, ctx);
      if (benign_detection.has_value()) ++fp;
      const auto detection = detector.analyze(pair.attack.trace, ctx);
      if (detection.has_value()) ++caught;
      // Undetected-by-this-monitor exhaustion.
      std::size_t before = 0;
      std::set<net::NodeId> keys(pair.attack.keys.begin(),
                                 pair.attack.keys.end());
      for (const sim::DeathRecord& d : pair.attack.trace.deaths) {
        if (keys.count(d.node) > 0 &&
            (!detection.has_value() || d.time <= detection->time)) {
          ++before;
        }
      }
      undetected.push_back(100.0 * double(before) /
                           double(pair.attack.keys.size()));
    }
    const auto un = analysis::summarize(undetected);
    sweep.row({std::to_string(threshold),
               std::to_string(fp) + "/" + std::to_string(kSeeds),
               std::to_string(caught) + "/" + std::to_string(kSeeds),
               analysis::fmt_ci(un.mean, un.ci95, 1)});
  }
  sweep.print(std::cout);

  analysis::print_metrics_tables(metrics, std::cout);
  analysis::maybe_export_metrics(metrics, std::cout);
  analysis::print_perf(std::cout, perf);
  return 0;
}
