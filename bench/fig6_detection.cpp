// Fig. 6 — Detection study: which defense catches which attacker, how fast,
// and at what false-positive cost.  Rows: charger behaviours (benign, CSA
// phase-cancel, the two naive variants).  Columns: per-detector firing
// rates over seeds, for the deployed suite and the coulomb-counter-hardened
// suite.
//
// Expected shape: benign is clean (FPR ~0); silent-skip dies to the RSSI
// check in hours; no-service dies to the service audit; CSA survives the
// whole deployed suite (occasional late death-rate hits) and only the
// hardened suite catches it reliably.
#include <iostream>
#include <map>
#include <set>

#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"

namespace {
constexpr int kSeeds = 10;
}

int main() {
  using namespace wrsn;

  const struct {
    const char* name;
    bool benign;
    csa::SpoofMode mode;
  } chargers[] = {
      {"benign", true, csa::SpoofMode::PhaseCancel},
      {"CSA", false, csa::SpoofMode::PhaseCancel},
      {"CSA-partial", false, csa::SpoofMode::PartialCancel},
      {"silent-skip", false, csa::SpoofMode::SilentSkip},
      {"no-service", false, csa::SpoofMode::NoService},
  };

  for (const bool hardened : {false, true}) {
    analysis::Table table(
        std::string("Fig. 6: detections over ") + std::to_string(kSeeds) +
        " seeds, " + (hardened ? "HARDENED" : "DEPLOYED") + " suite");
    table.headers({"charger", "detected", "mean hour", "by detector",
                   "undetected exhausted %"});

    for (const auto& charger : chargers) {
      int detected = 0;
      std::vector<double> hours, undetected;
      std::map<std::string, int> by_detector;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        analysis::ScenarioConfig cfg = analysis::default_scenario();
        cfg.seed = static_cast<std::uint64_t>(seed);
        cfg.hardened_detectors = hardened;
        cfg.attack.spoof_mode = charger.mode;
        const analysis::ScenarioResult result = analysis::run_scenario(
            cfg, charger.benign ? analysis::ChargerMode::Benign
                                : analysis::ChargerMode::Attack);
        if (result.report.detected) {
          ++detected;
          hours.push_back(result.report.detection_time / 3600.0);
          ++by_detector[result.report.detector_name];
        }
        undetected.push_back(100.0 *
                             result.report.undetected_exhaustion_ratio);
      }
      std::string detectors;
      for (const auto& [name, count] : by_detector) {
        if (!detectors.empty()) detectors += ", ";
        detectors += name + " x" + std::to_string(count);
      }
      const auto hr = analysis::summarize(hours);
      const auto un = analysis::summarize(undetected);
      table.row({charger.name,
                 std::to_string(detected) + "/" + std::to_string(kSeeds),
                 hours.empty() ? "-" : analysis::fmt(hr.mean, 1),
                 detectors.empty() ? "-" : detectors,
                 charger.benign ? "-" : analysis::fmt_ci(un.mean, un.ci95, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Death-rate threshold sensitivity: how aggressive must the monitor be to
  // see CSA, and what does that cost in benign false positives?
  analysis::Table sweep(
      "Fig. 6b: death-rate monitor threshold sweep (deaths per 24 h window)");
  sweep.headers({"threshold", "benign false positives", "CSA detected",
                 "CSA undetected exhausted %"});
  for (const std::size_t threshold : {3u, 4u, 5u, 6u, 8u}) {
    int fp = 0, caught = 0;
    std::vector<double> undetected;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      analysis::ScenarioConfig cfg = analysis::default_scenario();
      cfg.seed = static_cast<std::uint64_t>(seed);
      for (const bool attack : {false, true}) {
        const analysis::ScenarioResult result = analysis::run_scenario(
            cfg, attack ? analysis::ChargerMode::Attack
                        : analysis::ChargerMode::Benign);
        // Re-run just the death-rate detector at this threshold.
        detect::DeathRateDetector detector(threshold, 86'400.0);
        detect::DetectorContext ctx;
        ctx.horizon = cfg.horizon;
        const auto detection = detector.analyze(result.trace, ctx);
        if (!attack && detection.has_value()) ++fp;
        if (attack) {
          if (detection.has_value()) ++caught;
          // Undetected-by-this-monitor exhaustion.
          std::size_t before = 0;
          std::set<net::NodeId> keys(result.keys.begin(), result.keys.end());
          for (const sim::DeathRecord& d : result.trace.deaths) {
            if (keys.count(d.node) > 0 &&
                (!detection.has_value() || d.time <= detection->time)) {
              ++before;
            }
          }
          undetected.push_back(100.0 * double(before) /
                               double(result.keys.size()));
        }
      }
    }
    const auto un = analysis::summarize(undetected);
    sweep.row({std::to_string(threshold),
               std::to_string(fp) + "/" + std::to_string(kSeeds),
               std::to_string(caught) + "/" + std::to_string(kSeeds),
               analysis::fmt_ci(un.mean, un.ci95, 1)});
  }
  sweep.print(std::cout);
  return 0;
}
