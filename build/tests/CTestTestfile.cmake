# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/wpt_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
