
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edge_test.cpp" "tests/CMakeFiles/edge_test.dir/edge_test.cpp.o" "gcc" "tests/CMakeFiles/edge_test.dir/edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/wrsn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wrsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/wrsn_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/wrsn_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wrsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wpt/CMakeFiles/wrsn_wpt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wrsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wrsn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/wrsn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wrsn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
