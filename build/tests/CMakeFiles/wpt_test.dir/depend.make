# Empty dependencies file for wpt_test.
# This may be replaced when dependencies are built.
