file(REMOVE_RECURSE
  "CMakeFiles/wpt_test.dir/wpt_test.cpp.o"
  "CMakeFiles/wpt_test.dir/wpt_test.cpp.o.d"
  "wpt_test"
  "wpt_test.pdb"
  "wpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
