# Empty compiler generated dependencies file for detection_study.
# This may be replaced when dependencies are built.
