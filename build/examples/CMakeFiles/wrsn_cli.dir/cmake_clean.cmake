file(REMOVE_RECURSE
  "CMakeFiles/wrsn_cli.dir/wrsn_cli.cpp.o"
  "CMakeFiles/wrsn_cli.dir/wrsn_cli.cpp.o.d"
  "wrsn_cli"
  "wrsn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
