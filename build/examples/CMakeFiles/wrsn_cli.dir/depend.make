# Empty dependencies file for wrsn_cli.
# This may be replaced when dependencies are built.
