# Empty dependencies file for fleet_compromise.
# This may be replaced when dependencies are built.
