file(REMOVE_RECURSE
  "CMakeFiles/fleet_compromise.dir/fleet_compromise.cpp.o"
  "CMakeFiles/fleet_compromise.dir/fleet_compromise.cpp.o.d"
  "fleet_compromise"
  "fleet_compromise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_compromise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
