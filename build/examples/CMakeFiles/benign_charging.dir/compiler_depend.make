# Empty compiler generated dependencies file for benign_charging.
# This may be replaced when dependencies are built.
