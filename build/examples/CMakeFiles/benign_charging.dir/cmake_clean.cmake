file(REMOVE_RECURSE
  "CMakeFiles/benign_charging.dir/benign_charging.cpp.o"
  "CMakeFiles/benign_charging.dir/benign_charging.cpp.o.d"
  "benign_charging"
  "benign_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benign_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
