# Empty dependencies file for wrsn_common.
# This may be replaced when dependencies are built.
