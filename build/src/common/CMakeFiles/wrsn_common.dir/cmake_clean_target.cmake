file(REMOVE_RECURSE
  "libwrsn_common.a"
)
