file(REMOVE_RECURSE
  "CMakeFiles/wrsn_common.dir/log.cpp.o"
  "CMakeFiles/wrsn_common.dir/log.cpp.o.d"
  "CMakeFiles/wrsn_common.dir/rng.cpp.o"
  "CMakeFiles/wrsn_common.dir/rng.cpp.o.d"
  "libwrsn_common.a"
  "libwrsn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
