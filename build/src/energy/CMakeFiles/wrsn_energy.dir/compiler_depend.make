# Empty compiler generated dependencies file for wrsn_energy.
# This may be replaced when dependencies are built.
