file(REMOVE_RECURSE
  "CMakeFiles/wrsn_energy.dir/battery.cpp.o"
  "CMakeFiles/wrsn_energy.dir/battery.cpp.o.d"
  "CMakeFiles/wrsn_energy.dir/radio.cpp.o"
  "CMakeFiles/wrsn_energy.dir/radio.cpp.o.d"
  "libwrsn_energy.a"
  "libwrsn_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
