file(REMOVE_RECURSE
  "libwrsn_energy.a"
)
