file(REMOVE_RECURSE
  "CMakeFiles/wrsn_mc.dir/agent.cpp.o"
  "CMakeFiles/wrsn_mc.dir/agent.cpp.o.d"
  "CMakeFiles/wrsn_mc.dir/charger.cpp.o"
  "CMakeFiles/wrsn_mc.dir/charger.cpp.o.d"
  "CMakeFiles/wrsn_mc.dir/fleet.cpp.o"
  "CMakeFiles/wrsn_mc.dir/fleet.cpp.o.d"
  "CMakeFiles/wrsn_mc.dir/tsp.cpp.o"
  "CMakeFiles/wrsn_mc.dir/tsp.cpp.o.d"
  "libwrsn_mc.a"
  "libwrsn_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
