# Empty compiler generated dependencies file for wrsn_mc.
# This may be replaced when dependencies are built.
