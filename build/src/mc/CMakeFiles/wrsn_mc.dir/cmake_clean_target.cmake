file(REMOVE_RECURSE
  "libwrsn_mc.a"
)
