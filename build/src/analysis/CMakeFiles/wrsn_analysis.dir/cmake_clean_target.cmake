file(REMOVE_RECURSE
  "libwrsn_analysis.a"
)
