file(REMOVE_RECURSE
  "CMakeFiles/wrsn_analysis.dir/config_io.cpp.o"
  "CMakeFiles/wrsn_analysis.dir/config_io.cpp.o.d"
  "CMakeFiles/wrsn_analysis.dir/scenario.cpp.o"
  "CMakeFiles/wrsn_analysis.dir/scenario.cpp.o.d"
  "CMakeFiles/wrsn_analysis.dir/stats.cpp.o"
  "CMakeFiles/wrsn_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/wrsn_analysis.dir/table.cpp.o"
  "CMakeFiles/wrsn_analysis.dir/table.cpp.o.d"
  "CMakeFiles/wrsn_analysis.dir/trace_io.cpp.o"
  "CMakeFiles/wrsn_analysis.dir/trace_io.cpp.o.d"
  "libwrsn_analysis.a"
  "libwrsn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
