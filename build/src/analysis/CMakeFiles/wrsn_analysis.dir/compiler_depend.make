# Empty compiler generated dependencies file for wrsn_analysis.
# This may be replaced when dependencies are built.
