
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wpt/charging_model.cpp" "src/wpt/CMakeFiles/wrsn_wpt.dir/charging_model.cpp.o" "gcc" "src/wpt/CMakeFiles/wrsn_wpt.dir/charging_model.cpp.o.d"
  "/root/repo/src/wpt/rectifier.cpp" "src/wpt/CMakeFiles/wrsn_wpt.dir/rectifier.cpp.o" "gcc" "src/wpt/CMakeFiles/wrsn_wpt.dir/rectifier.cpp.o.d"
  "/root/repo/src/wpt/spoofing.cpp" "src/wpt/CMakeFiles/wrsn_wpt.dir/spoofing.cpp.o" "gcc" "src/wpt/CMakeFiles/wrsn_wpt.dir/spoofing.cpp.o.d"
  "/root/repo/src/wpt/wave.cpp" "src/wpt/CMakeFiles/wrsn_wpt.dir/wave.cpp.o" "gcc" "src/wpt/CMakeFiles/wrsn_wpt.dir/wave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wrsn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wrsn_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
