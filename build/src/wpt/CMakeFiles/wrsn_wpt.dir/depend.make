# Empty dependencies file for wrsn_wpt.
# This may be replaced when dependencies are built.
