file(REMOVE_RECURSE
  "CMakeFiles/wrsn_wpt.dir/charging_model.cpp.o"
  "CMakeFiles/wrsn_wpt.dir/charging_model.cpp.o.d"
  "CMakeFiles/wrsn_wpt.dir/rectifier.cpp.o"
  "CMakeFiles/wrsn_wpt.dir/rectifier.cpp.o.d"
  "CMakeFiles/wrsn_wpt.dir/spoofing.cpp.o"
  "CMakeFiles/wrsn_wpt.dir/spoofing.cpp.o.d"
  "CMakeFiles/wrsn_wpt.dir/wave.cpp.o"
  "CMakeFiles/wrsn_wpt.dir/wave.cpp.o.d"
  "libwrsn_wpt.a"
  "libwrsn_wpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_wpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
