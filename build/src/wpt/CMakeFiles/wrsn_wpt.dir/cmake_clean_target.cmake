file(REMOVE_RECURSE
  "libwrsn_wpt.a"
)
