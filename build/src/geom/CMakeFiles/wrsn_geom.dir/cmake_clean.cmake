file(REMOVE_RECURSE
  "CMakeFiles/wrsn_geom.dir/vec2.cpp.o"
  "CMakeFiles/wrsn_geom.dir/vec2.cpp.o.d"
  "libwrsn_geom.a"
  "libwrsn_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
