file(REMOVE_RECURSE
  "libwrsn_geom.a"
)
