# Empty dependencies file for wrsn_geom.
# This may be replaced when dependencies are built.
