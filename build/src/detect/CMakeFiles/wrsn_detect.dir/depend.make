# Empty dependencies file for wrsn_detect.
# This may be replaced when dependencies are built.
