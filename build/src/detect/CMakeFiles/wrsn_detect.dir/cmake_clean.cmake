file(REMOVE_RECURSE
  "CMakeFiles/wrsn_detect.dir/audit_planner.cpp.o"
  "CMakeFiles/wrsn_detect.dir/audit_planner.cpp.o.d"
  "CMakeFiles/wrsn_detect.dir/detectors.cpp.o"
  "CMakeFiles/wrsn_detect.dir/detectors.cpp.o.d"
  "libwrsn_detect.a"
  "libwrsn_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
