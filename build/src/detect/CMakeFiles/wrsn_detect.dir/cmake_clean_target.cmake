file(REMOVE_RECURSE
  "libwrsn_detect.a"
)
