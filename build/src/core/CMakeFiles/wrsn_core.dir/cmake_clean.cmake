file(REMOVE_RECURSE
  "CMakeFiles/wrsn_core.dir/exact.cpp.o"
  "CMakeFiles/wrsn_core.dir/exact.cpp.o.d"
  "CMakeFiles/wrsn_core.dir/orchestrator.cpp.o"
  "CMakeFiles/wrsn_core.dir/orchestrator.cpp.o.d"
  "CMakeFiles/wrsn_core.dir/planners.cpp.o"
  "CMakeFiles/wrsn_core.dir/planners.cpp.o.d"
  "CMakeFiles/wrsn_core.dir/report.cpp.o"
  "CMakeFiles/wrsn_core.dir/report.cpp.o.d"
  "CMakeFiles/wrsn_core.dir/theory.cpp.o"
  "CMakeFiles/wrsn_core.dir/theory.cpp.o.d"
  "CMakeFiles/wrsn_core.dir/tide.cpp.o"
  "CMakeFiles/wrsn_core.dir/tide.cpp.o.d"
  "libwrsn_core.a"
  "libwrsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
