
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/wrsn_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/wrsn_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/orchestrator.cpp" "src/core/CMakeFiles/wrsn_core.dir/orchestrator.cpp.o" "gcc" "src/core/CMakeFiles/wrsn_core.dir/orchestrator.cpp.o.d"
  "/root/repo/src/core/planners.cpp" "src/core/CMakeFiles/wrsn_core.dir/planners.cpp.o" "gcc" "src/core/CMakeFiles/wrsn_core.dir/planners.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/wrsn_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/wrsn_core.dir/report.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/wrsn_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/wrsn_core.dir/theory.cpp.o.d"
  "/root/repo/src/core/tide.cpp" "src/core/CMakeFiles/wrsn_core.dir/tide.cpp.o" "gcc" "src/core/CMakeFiles/wrsn_core.dir/tide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wrsn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wrsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/wrsn_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/wrsn_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/wpt/CMakeFiles/wrsn_wpt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wrsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wrsn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/wrsn_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
