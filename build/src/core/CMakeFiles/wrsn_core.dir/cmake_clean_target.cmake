file(REMOVE_RECURSE
  "libwrsn_core.a"
)
