# Empty dependencies file for wrsn_core.
# This may be replaced when dependencies are built.
