file(REMOVE_RECURSE
  "libwrsn_sim.a"
)
