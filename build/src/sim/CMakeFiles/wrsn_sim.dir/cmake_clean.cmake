file(REMOVE_RECURSE
  "CMakeFiles/wrsn_sim.dir/simulator.cpp.o"
  "CMakeFiles/wrsn_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wrsn_sim.dir/world.cpp.o"
  "CMakeFiles/wrsn_sim.dir/world.cpp.o.d"
  "libwrsn_sim.a"
  "libwrsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
