# Empty dependencies file for wrsn_sim.
# This may be replaced when dependencies are built.
