file(REMOVE_RECURSE
  "libwrsn_net.a"
)
