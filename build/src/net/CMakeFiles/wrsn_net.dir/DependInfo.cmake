
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/keynodes.cpp" "src/net/CMakeFiles/wrsn_net.dir/keynodes.cpp.o" "gcc" "src/net/CMakeFiles/wrsn_net.dir/keynodes.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/wrsn_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/wrsn_net.dir/network.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/wrsn_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/wrsn_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/wrsn_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/wrsn_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wrsn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wrsn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/wrsn_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
