# Empty dependencies file for wrsn_net.
# This may be replaced when dependencies are built.
