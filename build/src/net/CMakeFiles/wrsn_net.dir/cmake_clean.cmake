file(REMOVE_RECURSE
  "CMakeFiles/wrsn_net.dir/keynodes.cpp.o"
  "CMakeFiles/wrsn_net.dir/keynodes.cpp.o.d"
  "CMakeFiles/wrsn_net.dir/network.cpp.o"
  "CMakeFiles/wrsn_net.dir/network.cpp.o.d"
  "CMakeFiles/wrsn_net.dir/routing.cpp.o"
  "CMakeFiles/wrsn_net.dir/routing.cpp.o.d"
  "CMakeFiles/wrsn_net.dir/topology.cpp.o"
  "CMakeFiles/wrsn_net.dir/topology.cpp.o.d"
  "libwrsn_net.a"
  "libwrsn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrsn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
