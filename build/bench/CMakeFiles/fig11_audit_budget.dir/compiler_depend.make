# Empty compiler generated dependencies file for fig11_audit_budget.
# This may be replaced when dependencies are built.
