file(REMOVE_RECURSE
  "CMakeFiles/fig11_audit_budget.dir/fig11_audit_budget.cpp.o"
  "CMakeFiles/fig11_audit_budget.dir/fig11_audit_budget.cpp.o.d"
  "fig11_audit_budget"
  "fig11_audit_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_audit_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
