# Empty dependencies file for fig7_utility.
# This may be replaced when dependencies are built.
