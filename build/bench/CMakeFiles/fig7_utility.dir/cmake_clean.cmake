file(REMOVE_RECURSE
  "CMakeFiles/fig7_utility.dir/fig7_utility.cpp.o"
  "CMakeFiles/fig7_utility.dir/fig7_utility.cpp.o.d"
  "fig7_utility"
  "fig7_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
