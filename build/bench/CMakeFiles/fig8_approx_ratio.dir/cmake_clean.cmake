file(REMOVE_RECURSE
  "CMakeFiles/fig8_approx_ratio.dir/fig8_approx_ratio.cpp.o"
  "CMakeFiles/fig8_approx_ratio.dir/fig8_approx_ratio.cpp.o.d"
  "fig8_approx_ratio"
  "fig8_approx_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_approx_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
