# Empty compiler generated dependencies file for fig6_detection.
# This may be replaced when dependencies are built.
