file(REMOVE_RECURSE
  "CMakeFiles/fig9_impact.dir/fig9_impact.cpp.o"
  "CMakeFiles/fig9_impact.dir/fig9_impact.cpp.o.d"
  "fig9_impact"
  "fig9_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
