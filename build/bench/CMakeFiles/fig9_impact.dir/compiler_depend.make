# Empty compiler generated dependencies file for fig9_impact.
# This may be replaced when dependencies are built.
