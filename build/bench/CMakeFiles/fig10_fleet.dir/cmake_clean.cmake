file(REMOVE_RECURSE
  "CMakeFiles/fig10_fleet.dir/fig10_fleet.cpp.o"
  "CMakeFiles/fig10_fleet.dir/fig10_fleet.cpp.o.d"
  "fig10_fleet"
  "fig10_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
