# Empty dependencies file for fig10_fleet.
# This may be replaced when dependencies are built.
