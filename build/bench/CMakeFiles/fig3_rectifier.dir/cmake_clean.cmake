file(REMOVE_RECURSE
  "CMakeFiles/fig3_rectifier.dir/fig3_rectifier.cpp.o"
  "CMakeFiles/fig3_rectifier.dir/fig3_rectifier.cpp.o.d"
  "fig3_rectifier"
  "fig3_rectifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rectifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
