# Empty compiler generated dependencies file for fig3_rectifier.
# This may be replaced when dependencies are built.
