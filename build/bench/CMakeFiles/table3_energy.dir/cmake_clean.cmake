file(REMOVE_RECURSE
  "CMakeFiles/table3_energy.dir/table3_energy.cpp.o"
  "CMakeFiles/table3_energy.dir/table3_energy.cpp.o.d"
  "table3_energy"
  "table3_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
