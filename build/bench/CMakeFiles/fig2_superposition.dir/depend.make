# Empty dependencies file for fig2_superposition.
# This may be replaced when dependencies are built.
