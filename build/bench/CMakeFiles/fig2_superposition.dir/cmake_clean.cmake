file(REMOVE_RECURSE
  "CMakeFiles/fig2_superposition.dir/fig2_superposition.cpp.o"
  "CMakeFiles/fig2_superposition.dir/fig2_superposition.cpp.o.d"
  "fig2_superposition"
  "fig2_superposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_superposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
