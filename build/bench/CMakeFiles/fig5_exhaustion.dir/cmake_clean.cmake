file(REMOVE_RECURSE
  "CMakeFiles/fig5_exhaustion.dir/fig5_exhaustion.cpp.o"
  "CMakeFiles/fig5_exhaustion.dir/fig5_exhaustion.cpp.o.d"
  "fig5_exhaustion"
  "fig5_exhaustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_exhaustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
