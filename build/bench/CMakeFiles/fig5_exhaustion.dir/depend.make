# Empty dependencies file for fig5_exhaustion.
# This may be replaced when dependencies are built.
