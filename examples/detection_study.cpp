// Detection study: which defenses catch which attacker?
//
//   $ ./detection_study [seed]
//
// Runs the CSA phase-cancellation attack and the two naive variants under
// the deployed detector suite and under the hardened suite (coulomb-counter
// defenses on every node), plus a benign run to show false positives.  The
// eight missions are independent, so they shard across WRSN_THREADS workers.
#include <cstdlib>
#include <iostream>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  analysis::Table table("Detector suite vs attacker variants (seed " +
                        std::to_string(seed) + ")");
  table.headers({"charger", "suite", "detected by", "at hour", "keys dead",
                 "undetected dead"});

  const struct {
    const char* name;
    bool benign;
    csa::SpoofMode mode;
  } chargers[] = {
      {"benign", true, csa::SpoofMode::PhaseCancel},
      {"CSA (phase-cancel)", false, csa::SpoofMode::PhaseCancel},
      {"silent-skip", false, csa::SpoofMode::SilentSkip},
      {"no-service", false, csa::SpoofMode::NoService},
  };
  constexpr std::size_t kChargers = sizeof(chargers) / sizeof(chargers[0]);

  struct Trial {
    bool hardened;
    std::size_t charger;
  };
  std::vector<Trial> trials;
  for (const bool hardened : {false, true}) {
    for (std::size_t c = 0; c < kChargers; ++c) trials.push_back({hardened, c});
  }

  runner::RunStats stats;
  const std::vector<analysis::ScenarioResult> results = runner::run_trials(
      std::span<const Trial>(trials),
      [&](const Trial& trial, Rng&) {
        analysis::ScenarioConfig config = analysis::default_scenario();
        config.seed = seed;
        config.hardened_detectors = trial.hardened;
        config.attack.spoof_mode = chargers[trial.charger].mode;
        return analysis::run_scenario(config,
                                      chargers[trial.charger].benign
                                          ? analysis::ChargerMode::Benign
                                          : analysis::ChargerMode::Attack);
      },
      {.label = "detection-study"}, &stats);

  std::size_t next = 0;
  for (const bool hardened : {false, true}) {
    for (const auto& entry : chargers) {
      const csa::AttackReport& r = results[next++].report;
      table.row({entry.name, hardened ? "hardened" : "deployed",
                 r.detected ? r.detector_name : "-",
                 r.detected ? analysis::fmt(r.detection_time / 3600.0, 1) : "-",
                 std::to_string(r.keys_dead) + "/" +
                     std::to_string(r.keys_total),
                 std::to_string(r.keys_dead_before_detection)});
    }
  }
  table.print(std::cout);
  analysis::print_perf(std::cout, stats);

  std::cout << "\nCSA evades the deployed suite; only per-node coulomb"
               " counters (hardened suite) see the harvest shortfall.\n";
  return 0;
}
