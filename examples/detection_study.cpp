// Detection study: which defenses catch which attacker?
//
//   $ ./detection_study [seed]
//
// Runs the CSA phase-cancellation attack and the two naive variants under
// the deployed detector suite and under the hardened suite (coulomb-counter
// defenses on every node), plus a benign run to show false positives.
#include <cstdlib>
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  analysis::Table table("Detector suite vs attacker variants (seed " +
                        std::to_string(seed) + ")");
  table.headers({"charger", "suite", "detected by", "at hour", "keys dead",
                 "undetected dead"});

  const struct {
    const char* name;
    bool benign;
    csa::SpoofMode mode;
  } chargers[] = {
      {"benign", true, csa::SpoofMode::PhaseCancel},
      {"CSA (phase-cancel)", false, csa::SpoofMode::PhaseCancel},
      {"silent-skip", false, csa::SpoofMode::SilentSkip},
      {"no-service", false, csa::SpoofMode::NoService},
  };

  for (const bool hardened : {false, true}) {
    for (const auto& entry : chargers) {
      analysis::ScenarioConfig config = analysis::default_scenario();
      config.seed = seed;
      config.hardened_detectors = hardened;
      config.attack.spoof_mode = entry.mode;

      const analysis::ScenarioResult result = analysis::run_scenario(
          config,
          entry.benign ? analysis::ChargerMode::Benign
                       : analysis::ChargerMode::Attack);
      const csa::AttackReport& r = result.report;

      table.row({entry.name, hardened ? "hardened" : "deployed",
                 r.detected ? r.detector_name : "-",
                 r.detected ? analysis::fmt(r.detection_time / 3600.0, 1) : "-",
                 std::to_string(r.keys_dead) + "/" +
                     std::to_string(r.keys_total),
                 std::to_string(r.keys_dead_before_detection)});
    }
  }
  table.print(std::cout);

  std::cout << "\nCSA evades the deployed suite; only per-node coulomb"
               " counters (hardened suite) see the harvest shortfall.\n";
  return 0;
}
