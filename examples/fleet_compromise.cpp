// Fleet compromise study: a multi-charger deployment where one fleet member
// is compromised.  Shows the attack stays contained to the compromised
// vehicle's service cell, the honest members keep their cells healthy, and
// the depot audit still cannot tell which vehicle is lying.
//
//   $ ./fleet_compromise [seed]
#include <cstdlib>
#include <iostream>
#include <set>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "mc/fleet.hpp"
#include "net/topology.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  std::uint64_t seed = 5;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);
  constexpr std::size_t kFleet = 3;

  analysis::Table table("Fleet of " + std::to_string(kFleet) +
                        " chargers, one compromised (seed " +
                        std::to_string(seed) + ")");
  table.headers({"compromised member", "keys dead", "undetected dead",
                 "detected by", "deaths", "escalations"});

  for (std::size_t bad = 0; bad <= kFleet; ++bad) {
    analysis::ScenarioConfig cfg = analysis::default_scenario();
    cfg.seed = seed;
    const analysis::ScenarioResult result = analysis::run_fleet_scenario(
        cfg, kFleet, bad < kFleet ? bad : SIZE_MAX);
    const csa::AttackReport& r = result.report;
    table.row({bad < kFleet ? "#" + std::to_string(bad) : "none (honest)",
               std::to_string(r.keys_dead) + "/" +
                   std::to_string(r.keys_total),
               std::to_string(r.keys_dead_before_detection),
               r.detected ? r.detector_name : "-",
               std::to_string(r.deaths_total),
               std::to_string(r.escalations)});
  }
  table.print(std::cout);

  // Show the containment: deaths per cell for the compromised-#0 run.
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = seed;
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(cfg, kFleet, 0);

  Rng rng(cfg.seed);
  Rng topo_rng = rng.fork("topology");
  const net::Network network = net::generate_topology(cfg.topology, topo_rng);
  const auto depots = mc::default_depots(cfg.topology.region, kFleet);
  const auto cells = mc::partition_by_depot(network, depots);

  analysis::Table cells_table("\nDeath containment (member #0 compromised)");
  cells_table.headers({"cell", "nodes", "deaths"});
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const std::set<net::NodeId> cell(cells[k].begin(), cells[k].end());
    std::size_t deaths = 0;
    for (const sim::DeathRecord& d : result.trace.deaths) {
      if (cell.count(d.node) > 0) ++deaths;
    }
    cells_table.row({"#" + std::to_string(k),
                     std::to_string(cells[k].size()),
                     std::to_string(deaths)});
  }
  cells_table.print(std::cout);

  std::cout << "\nThe compromised member exhausts the key nodes of its own"
               " cell; the honest members' cells stay healthy, and no"
               " depot-side audit attributes the deaths to a vehicle.\n";
  return 0;
}
