// Quickstart: run one Charging Spoofing Attack mission with default
// parameters and print the attack report.
//
//   $ ./quickstart [seed]
//
// This exercises the whole stack: topology generation, routing and key-node
// analysis, the discrete-event world, the CSA planner, the spoofing physics,
// and the detector suite.
#include <cstdlib>
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  analysis::ScenarioConfig config = analysis::default_scenario();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Simulating a " << config.topology.node_count
            << "-node WRSN for " << config.horizon / 3600.0
            << " h under the CSA attacker (seed " << config.seed << ")...\n";

  const analysis::ScenarioResult result =
      analysis::run_scenario(config, analysis::ChargerMode::Attack);
  const csa::AttackReport& report = result.report;

  std::cout << "\nKey targets: " << report.keys_total
            << "  exhausted: " << report.keys_dead << " ("
            << analysis::fmt(100.0 * report.exhaustion_ratio, 1)
            << " %)\n";
  std::cout << "Exhausted before any detector fired: "
            << report.keys_dead_before_detection << " ("
            << analysis::fmt(100.0 * report.undetected_exhaustion_ratio, 1)
            << " %)\n";
  if (report.detected) {
    std::cout << "Detected by '" << report.detector_name << "' at t="
              << analysis::fmt(report.detection_time / 3600.0, 2) << " h\n";
  } else {
    std::cout << "Attack ran the whole mission undetected.\n";
  }
  std::cout << "Sessions: " << report.sessions_genuine << " genuine / "
            << report.sessions_spoofed << " spoofed\n";
  std::cout << "Cover utility delivered: "
            << analysis::fmt(report.utility_delivered / 1000.0, 1)
            << " kJ; energy 'delivered' by spoofed sessions: "
            << analysis::fmt(report.spoof_delivered, 3) << " J\n";
  std::cout << "Deaths: " << report.deaths_total
            << "  escalations: " << report.escalations << "\n";
  if (report.partition_time.has_value()) {
    std::cout << "Network partitioned at t="
              << analysis::fmt(*report.partition_time / 3600.0, 2) << " h\n";
  } else {
    std::cout << "Network never partitioned.\n";
  }
  std::cout << "Alive at end: " << result.alive_at_end << "/"
            << result.node_count << " (sink-connected "
            << result.sink_connected_at_end << ")\n";
  return 0;
}
