// wrsn_cli — declarative experiment runner.
//
//   $ ./wrsn_cli [--config file.ini] [--mode benign|attack] [--fleet N]
//                [--compromised K] [--export prefix] [--seed S]
//                [--repro '<line>']
//
// Loads the calibrated defaults, applies the optional config file and flag
// overrides, runs one mission, prints the report, and (with --export) dumps
// the full trace as CSV for external analysis.  --repro takes a failing
// trial line printed by scenario_fuzzer and replays exactly that mission
// (the line's `mode`/`seed` win over the matching flags).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "analysis/config_io.hpp"
#include "analysis/fuzz.hpp"
#include "analysis/metrics_io.hpp"
#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "analysis/tournament.hpp"
#include "analysis/trace_io.hpp"
#include "obs/metrics.hpp"
#include "svc/digest.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: wrsn_cli [options]\n"
      "  --config <file.ini>   load scenario overrides (see config_io.hpp)\n"
      "  --mode benign|attack  charging service behaviour (default attack)\n"
      "  --fleet <N>           run N chargers (Voronoi territories)\n"
      "  --compromised <K>     fleet member K runs the CSA attack\n"
      "  --seed <S>            RNG seed override\n"
      "  --export <prefix>     write <prefix>_{sessions,requests,deaths,"
      "escalations}.csv\n"
      "  --metrics <file.json> collect obs metrics during the run; print the\n"
      "                        table and write the wrsn-metrics-v1 JSON\n"
      "  --repro <line>        replay a scenario_fuzzer repro line (k=v;k=v)\n"
      "  --tournament <out>    run the default attacker-policy x defender-\n"
      "                        policy grid over this scenario and write the\n"
      "                        wrsn-tournament-v1 JSON (--trials sizes it)\n"
      "  --trials <N>          tournament only: missions per cell/column\n"
      "  --serve <socket>      run the mission server on a unix socket\n"
      "                        (honors WRSN_THREADS; --cache/--queue size it;\n"
      "                        SIGINT/SIGTERM drain and print stats)\n"
      "  --client <socket>     send this invocation's scenario to a running\n"
      "                        server instead of executing locally; verifies\n"
      "                        the response against a direct run unless\n"
      "                        --no-verify\n"
      "  --binary              client only: use the binary protocol\n"
      "  --no-verify           client only: skip the direct-run cross-check\n"
      "  --cache <N>           serve only: result-cache entries (default 4096)\n"
      "  --queue <N>           serve only: admission limit (default 1024)\n"
      "  --help                this text\n";
}

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

/// --serve: host a MissionService on `socket_path` until SIGINT/SIGTERM,
/// then drain gracefully and print the service tallies.
int run_serve(const std::string& socket_path, std::size_t cache_entries,
              std::size_t queue_limit, const std::string& metrics_path) {
  using namespace wrsn;

  svc::ServiceOptions options;
  options.cache_capacity = cache_entries;
  options.queue_limit = queue_limit;
  svc::MissionService service(options);
  svc::MissionServer server(service, socket_path);
  server.start();

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  std::cout << "serving on " << socket_path << " (" << service.threads()
            << " worker thread" << (service.threads() == 1 ? "" : "s")
            << ")" << std::endl;

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "\ndraining..." << std::endl;
  server.stop();
  service.shutdown();

  const svc::ServiceStats stats = service.stats();
  analysis::Table table("Mission service (drained cleanly)");
  table.headers({"counter", "value"});
  table.row({"requests", std::to_string(stats.requests)});
  table.row({"executions", std::to_string(stats.executions)});
  table.row({"cache hits", std::to_string(stats.cache_hits)});
  table.row({"coalesced joins", std::to_string(stats.coalesced)});
  table.row({"shed", std::to_string(stats.shed)});
  table.row({"cache evictions", std::to_string(stats.evictions)});
  table.row({"queue peak", std::to_string(stats.queue_peak)});
  table.row({"connections", std::to_string(server.connections())});
  table.print(std::cout);

  if (!metrics_path.empty()) {
    obs::MetricRegistry metrics;
    obs::ScopedRegistry scope(&metrics);
    service.flush_obs();
    analysis::write_metrics_json(metrics, metrics_path);
    std::cout << "metrics JSON written to " << metrics_path << "\n";
  }
  return 0;
}

/// --client: round-trip the scenario through a running server.  Unless
/// --no-verify, the same scenario also runs directly in this process; any
/// digest divergence prints the exact REPRO line and fails the invocation.
int run_client(const std::string& socket_path, bool binary, bool verify,
               const wrsn::analysis::FuzzOverrides& overrides) {
  using namespace wrsn;

  const std::string repro = analysis::format_repro(overrides);
  svc::MissionClient client(socket_path, binary);
  const svc::MissionResponse resp = client.call(/*tenant=*/0, repro);

  analysis::Table table("Service response (" +
                        std::string(binary ? "binary" : "json") + ")");
  table.headers({"field", "value"});
  table.row({"status", std::string(svc::status_name(resp.status))});
  table.row({"route", std::string(svc::route_name(resp.route))});
  table.row({"scenario digest", std::to_string(resp.outcome.scenario_digest)});
  table.row({"seed", std::to_string(resp.outcome.seed)});
  table.row({"result digest", std::to_string(resp.outcome.result_digest)});
  table.row({"nodes alive at end",
             std::to_string(resp.outcome.alive_at_end) + "/" +
                 std::to_string(resp.outcome.node_count)});
  table.row({"keys exhausted", std::to_string(resp.outcome.keys_dead) + "/" +
                                   std::to_string(resp.outcome.keys_total)});
  table.row({"detected", resp.outcome.detected != 0
                             ? std::string(resp.outcome.detector)
                             : std::string("no")});
  table.print(std::cout);

  if (resp.status != svc::MissionStatus::kOk) {
    std::cerr << "service did not execute the mission: "
              << svc::status_name(resp.status) << "\n";
    return 1;
  }
  if (!verify) return 0;

  const auto [cfg, mode] = analysis::resolve_overrides(overrides);
  const analysis::ScenarioResult direct = analysis::run_mission(cfg, mode);
  const std::uint64_t expected = analysis::digest_result(direct);
  const std::uint64_t expected_scenario = svc::scenario_digest(cfg, mode);
  if (expected != resp.outcome.result_digest ||
      expected_scenario != resp.outcome.scenario_digest) {
    std::cerr << "SERVICE MISMATCH: direct result digest " << expected
              << " (scenario " << expected_scenario << ") vs served "
              << resp.outcome.result_digest << " (scenario "
              << resp.outcome.scenario_digest << ")\n"
              << "REPRO " << repro << "\n";
    return 1;
  }
  std::cout << "verified: service matches direct execution (digest "
            << expected << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrsn;

  std::string config_path;
  std::string mode = "attack";
  std::string export_prefix;
  std::string metrics_path;
  std::string repro_line;
  std::string tournament_path;
  std::size_t tournament_trials = 4;
  std::string serve_path;
  std::string client_path;
  bool client_binary = false;
  bool client_verify = true;
  std::size_t cache_entries = 4096;
  std::size_t queue_limit = 1024;
  std::size_t fleet = 1;
  std::size_t compromised = SIZE_MAX;
  bool compromised_set = false;
  std::uint64_t seed = 0;
  bool seed_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next();
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--fleet") {
      fleet = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--compromised") {
      compromised = std::strtoull(next().c_str(), nullptr, 10);
      compromised_set = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
      seed_set = true;
    } else if (arg == "--export") {
      export_prefix = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--repro") {
      repro_line = next();
    } else if (arg == "--tournament") {
      tournament_path = next();
    } else if (arg == "--trials") {
      tournament_trials = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--serve") {
      serve_path = next();
    } else if (arg == "--client") {
      client_path = next();
    } else if (arg == "--binary") {
      client_binary = true;
    } else if (arg == "--no-verify") {
      client_verify = false;
    } else if (arg == "--cache") {
      cache_entries = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--queue") {
      queue_limit = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  try {
    if (!serve_path.empty()) {
      return run_serve(serve_path, cache_entries, queue_limit, metrics_path);
    }
    if (!client_path.empty()) {
      // The wire protocol carries overrides-over-defaults (a repro line), so
      // fold every local source into one override map: flags first, then the
      // config file, then an explicit --repro (later sources win).
      analysis::FuzzOverrides overrides;
      overrides["mode"] = mode;
      if (!config_path.empty()) {
        std::ifstream in(config_path);
        if (!in) throw ConfigError("cannot open " + config_path);
        for (auto& [k, v] : analysis::parse_ini(in)) overrides[k] = v;
      }
      if (!repro_line.empty()) {
        for (auto& [k, v] : analysis::parse_repro(repro_line)) {
          overrides[k] = v;
        }
      }
      if (seed_set) overrides["seed"] = std::to_string(seed);
      if (fleet > 1) overrides["fleet.size"] = std::to_string(fleet);
      if (compromised_set) {
        overrides["fleet.compromised"] = std::to_string(compromised);
      }
      return run_client(client_path, client_binary, client_verify, overrides);
    }

    analysis::ScenarioConfig cfg =
        config_path.empty() ? analysis::default_scenario()
                            : analysis::load_config_file(config_path);
    if (!repro_line.empty()) {
      analysis::FuzzOverrides overrides = analysis::parse_repro(repro_line);
      if (const auto it = overrides.find("mode"); it != overrides.end()) {
        mode = it->second;
        overrides.erase(it);
      }
      cfg = analysis::apply_config(cfg, overrides);
    }
    if (seed_set) cfg.seed = seed;

    if (!tournament_path.empty()) {
      // Default 3x3 policy grid over the resolved scenario; the tournament
      // re-seeds each mission itself, forked from --seed (default 1).
      analysis::TournamentConfig tc = analysis::default_tournament(cfg);
      tc.attack_trials = tournament_trials;
      tc.benign_trials = tournament_trials;
      tc.seed = seed_set ? seed : 1;
      const analysis::TournamentRunner runner(tc);
      const analysis::TournamentReport report = runner.run();

      analysis::Table table("Policy tournament (seed " +
                            std::to_string(tc.seed) + ", " +
                            std::to_string(tournament_trials) +
                            " missions per cell)");
      table.headers({"attacker", "defender", "damage", "detected",
                     "benign FP rate"});
      for (const analysis::TournamentCell& cell : report.cells) {
        table.row({cell.attacker, cell.defender,
                   analysis::fmt(cell.damage, 3),
                   analysis::fmt(cell.detection_rate, 3),
                   analysis::fmt(cell.fp_rate, 3)});
      }
      table.print(std::cout);

      const std::string json = analysis::tournament_json(tc, report);
      std::ofstream out(tournament_path);
      if (!out) throw ConfigError("cannot write " + tournament_path);
      out << json;
      std::cout << "tournament JSON written to " << tournament_path
                << " (digest " << report.digest << ")\n";
      return 0;
    }

    // Config-file / repro-line fleet keys take effect unless the matching
    // flag was given, so `--repro 'fleet.size=3;...'` replays the fleet
    // mission the fuzzer actually ran.
    if (fleet == 1 && cfg.fleet_size > 1) fleet = cfg.fleet_size;
    if (!compromised_set && cfg.fleet_compromised != SIZE_MAX) {
      compromised = cfg.fleet_compromised;
      compromised_set = true;
    }
    // The fuzzer clamps the compromised index into the fleet in attack
    // mode; mirror that so a replay binds the attacker identically.
    if (mode == "attack" && fleet > 1 && compromised_set &&
        compromised >= fleet) {
      compromised = fleet - 1;
    }

    obs::MetricRegistry metrics;
    analysis::ScenarioResult result;
    {
      // Collect metrics only when asked: the scoped install makes every
      // instrumented layer under run_scenario write into `metrics`.
      obs::ScopedRegistry obs_scope(metrics_path.empty() ? nullptr : &metrics);
      if (fleet > 1 || compromised_set) {
        if (mode == "benign") compromised = SIZE_MAX;
        result = analysis::run_fleet_scenario(cfg, fleet, compromised);
      } else if (mode == "benign") {
        result = analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
      } else if (mode == "attack") {
        result = analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
      } else {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
      }
    }

    const csa::AttackReport& r = result.report;
    analysis::Table table("Mission report (seed " + std::to_string(cfg.seed) +
                          ", " + mode + ", fleet " + std::to_string(fleet) +
                          ")");
    table.headers({"metric", "value"});
    table.row({"nodes alive at end", std::to_string(result.alive_at_end) +
                                         "/" +
                                         std::to_string(result.node_count)});
    table.row({"sink-connected at end",
               std::to_string(result.sink_connected_at_end)});
    table.row({"key targets", std::to_string(r.keys_total)});
    table.row({"keys exhausted", std::to_string(r.keys_dead)});
    table.row({"keys exhausted undetected",
               std::to_string(r.keys_dead_before_detection)});
    table.row({"detected", r.detected ? r.detector_name + " @ " +
                                            analysis::fmt(
                                                r.detection_time / 3600.0, 1) +
                                            " h"
                                      : "no"});
    table.row({"sessions genuine/spoofed",
               std::to_string(r.sessions_genuine) + "/" +
                   std::to_string(r.sessions_spoofed)});
    table.row({"cover utility [kJ]",
               analysis::fmt(r.utility_delivered / 1000.0, 1)});
    table.row({"escalations", std::to_string(r.escalations)});
    table.row({"partitioned",
               r.partition_time.has_value()
                   ? analysis::fmt(*r.partition_time / 3600.0, 1) + " h"
                   : "never"});
    table.print(std::cout);

    if (!export_prefix.empty()) {
      analysis::export_trace(export_prefix, result.trace);
      std::cout << "\ntrace exported to " << export_prefix << "_*.csv\n";
    }
    if (!metrics_path.empty()) {
      analysis::print_metrics_tables(metrics, std::cout);
      analysis::write_metrics_json(metrics, metrics_path);
      std::cout << "metrics JSON written to " << metrics_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
