// wrsn_cli — declarative experiment runner.
//
//   $ ./wrsn_cli [--config file.ini] [--mode benign|attack] [--fleet N]
//                [--compromised K] [--export prefix] [--seed S]
//                [--repro '<line>']
//
// Loads the calibrated defaults, applies the optional config file and flag
// overrides, runs one mission, prints the report, and (with --export) dumps
// the full trace as CSV for external analysis.  --repro takes a failing
// trial line printed by scenario_fuzzer and replays exactly that mission
// (the line's `mode`/`seed` win over the matching flags).
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/config_io.hpp"
#include "analysis/fuzz.hpp"
#include "analysis/metrics_io.hpp"
#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "analysis/trace_io.hpp"
#include "obs/metrics.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: wrsn_cli [options]\n"
      "  --config <file.ini>   load scenario overrides (see config_io.hpp)\n"
      "  --mode benign|attack  charging service behaviour (default attack)\n"
      "  --fleet <N>           run N chargers (Voronoi territories)\n"
      "  --compromised <K>     fleet member K runs the CSA attack\n"
      "  --seed <S>            RNG seed override\n"
      "  --export <prefix>     write <prefix>_{sessions,requests,deaths,"
      "escalations}.csv\n"
      "  --metrics <file.json> collect obs metrics during the run; print the\n"
      "                        table and write the wrsn-metrics-v1 JSON\n"
      "  --repro <line>        replay a scenario_fuzzer repro line (k=v;k=v)\n"
      "  --help                this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrsn;

  std::string config_path;
  std::string mode = "attack";
  std::string export_prefix;
  std::string metrics_path;
  std::string repro_line;
  std::size_t fleet = 1;
  std::size_t compromised = SIZE_MAX;
  bool compromised_set = false;
  std::uint64_t seed = 0;
  bool seed_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next();
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--fleet") {
      fleet = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--compromised") {
      compromised = std::strtoull(next().c_str(), nullptr, 10);
      compromised_set = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
      seed_set = true;
    } else if (arg == "--export") {
      export_prefix = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--repro") {
      repro_line = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  try {
    analysis::ScenarioConfig cfg =
        config_path.empty() ? analysis::default_scenario()
                            : analysis::load_config_file(config_path);
    if (!repro_line.empty()) {
      analysis::FuzzOverrides overrides = analysis::parse_repro(repro_line);
      if (const auto it = overrides.find("mode"); it != overrides.end()) {
        mode = it->second;
        overrides.erase(it);
      }
      cfg = analysis::apply_config(cfg, overrides);
    }
    if (seed_set) cfg.seed = seed;
    // Config-file / repro-line fleet keys take effect unless the matching
    // flag was given, so `--repro 'fleet.size=3;...'` replays the fleet
    // mission the fuzzer actually ran.
    if (fleet == 1 && cfg.fleet_size > 1) fleet = cfg.fleet_size;
    if (!compromised_set && cfg.fleet_compromised != SIZE_MAX) {
      compromised = cfg.fleet_compromised;
      compromised_set = true;
    }
    // The fuzzer clamps the compromised index into the fleet in attack
    // mode; mirror that so a replay binds the attacker identically.
    if (mode == "attack" && fleet > 1 && compromised_set &&
        compromised >= fleet) {
      compromised = fleet - 1;
    }

    obs::MetricRegistry metrics;
    analysis::ScenarioResult result;
    {
      // Collect metrics only when asked: the scoped install makes every
      // instrumented layer under run_scenario write into `metrics`.
      obs::ScopedRegistry obs_scope(metrics_path.empty() ? nullptr : &metrics);
      if (fleet > 1 || compromised_set) {
        if (mode == "benign") compromised = SIZE_MAX;
        result = analysis::run_fleet_scenario(cfg, fleet, compromised);
      } else if (mode == "benign") {
        result = analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
      } else if (mode == "attack") {
        result = analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
      } else {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
      }
    }

    const csa::AttackReport& r = result.report;
    analysis::Table table("Mission report (seed " + std::to_string(cfg.seed) +
                          ", " + mode + ", fleet " + std::to_string(fleet) +
                          ")");
    table.headers({"metric", "value"});
    table.row({"nodes alive at end", std::to_string(result.alive_at_end) +
                                         "/" +
                                         std::to_string(result.node_count)});
    table.row({"sink-connected at end",
               std::to_string(result.sink_connected_at_end)});
    table.row({"key targets", std::to_string(r.keys_total)});
    table.row({"keys exhausted", std::to_string(r.keys_dead)});
    table.row({"keys exhausted undetected",
               std::to_string(r.keys_dead_before_detection)});
    table.row({"detected", r.detected ? r.detector_name + " @ " +
                                            analysis::fmt(
                                                r.detection_time / 3600.0, 1) +
                                            " h"
                                      : "no"});
    table.row({"sessions genuine/spoofed",
               std::to_string(r.sessions_genuine) + "/" +
                   std::to_string(r.sessions_spoofed)});
    table.row({"cover utility [kJ]",
               analysis::fmt(r.utility_delivered / 1000.0, 1)});
    table.row({"escalations", std::to_string(r.escalations)});
    table.row({"partitioned",
               r.partition_time.has_value()
                   ? analysis::fmt(*r.partition_time / 3600.0, 1) + " h"
                   : "never"});
    table.print(std::cout);

    if (!export_prefix.empty()) {
      analysis::export_trace(export_prefix, result.trace);
      std::cout << "\ntrace exported to " << export_prefix << "_*.csv\n";
    }
    if (!metrics_path.empty()) {
      analysis::print_metrics_tables(metrics, std::cout);
      analysis::write_metrics_json(metrics, metrics_path);
      std::cout << "metrics JSON written to " << metrics_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
