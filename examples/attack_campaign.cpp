// Attack campaign: the CSA planner against the baseline attack strategies,
// all driving the same compromised vehicle on the same network.
//
//   $ ./attack_campaign [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "core/exact.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  const csa::CsaPlanner planner_csa;
  const csa::GreedyNearestPlanner planner_greedy;
  const csa::RandomPlanner planner_random;
  const csa::UtilityFirstPlanner planner_utility;
  const struct {
    const csa::Planner* planner;
  } strategies[] = {
      {&planner_csa}, {&planner_greedy}, {&planner_random}, {&planner_utility}};

  analysis::Table table("Attack strategies on one mission (seed " +
                        std::to_string(seed) + ")");
  table.headers({"planner", "keys dead", "undetected dead", "detected by",
                 "utility kJ", "escalations", "partition"});

  for (const auto& strategy : strategies) {
    analysis::ScenarioConfig config = analysis::default_scenario();
    config.seed = seed;

    const analysis::ScenarioResult result = analysis::run_scenario(
        config, analysis::ChargerMode::Attack, strategy.planner);
    const csa::AttackReport& r = result.report;

    table.row({std::string(strategy.planner->name()),
               std::to_string(r.keys_dead) + "/" + std::to_string(r.keys_total),
               std::to_string(r.keys_dead_before_detection),
               r.detected ? r.detector_name : "-",
               analysis::fmt(r.utility_delivered / 1000.0, 0),
               std::to_string(r.escalations),
               r.partition_time.has_value()
                   ? analysis::fmt(*r.partition_time / 3600.0, 1) + " h"
                   : "-"});
  }
  table.print(std::cout);

  std::cout << "\nCSA exhausts the key set while honoring every time window;"
               " window-oblivious strategies either miss kills or trip the"
               " service audit.\n";
  return 0;
}
