// Benign operation study: how the honest charging service keeps the network
// alive, and how the three scheduling policies compare.
//
//   $ ./benign_charging [seed]
//
// This is the baseline the attack is measured against: key-node survival,
// escalations, and depot energy accounting under an uncompromised charger.
#include <cstdlib>
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"

int main(int argc, char** argv) {
  using namespace wrsn;

  std::uint64_t seed = 7;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  analysis::Table table("Benign charging service, policy comparison");
  table.headers({"policy", "alive@end", "key deaths", "escalations",
                 "sessions", "travel kJ", "radiated kJ"});

  const struct {
    mc::SchedulePolicy policy;
    const char* name;
  } policies[] = {
      {mc::SchedulePolicy::Njnp, "NJNP"},
      {mc::SchedulePolicy::Edf, "EDF"},
      {mc::SchedulePolicy::Fcfs, "FCFS"},
      {mc::SchedulePolicy::Tour, "TSP-tour"},
  };

  for (const auto& entry : policies) {
    analysis::ScenarioConfig config = analysis::default_scenario();
    config.seed = seed;
    config.benign.policy = entry.policy;

    const analysis::ScenarioResult result =
        analysis::run_scenario(config, analysis::ChargerMode::Benign);

    std::size_t key_deaths = 0;
    for (const sim::DeathRecord& d : result.trace.deaths) {
      for (const net::NodeId key : result.keys) {
        if (d.node == key) ++key_deaths;
      }
    }
    table.row({entry.name,
               std::to_string(result.alive_at_end) + "/" +
                   std::to_string(result.node_count),
               std::to_string(key_deaths),
               std::to_string(result.report.escalations),
               std::to_string(result.trace.sessions.size()),
               analysis::fmt(result.ledger.travel / 1000.0, 1),
               analysis::fmt(result.ledger.radiated_total() / 1000.0, 1)});
  }
  table.print(std::cout);

  std::cout << "\nAn honest charger keeps (nearly) everyone alive; any death"
               " happens with a request outstanding, which the base station"
               " sees.\n";
  return 0;
}
