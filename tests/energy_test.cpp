// Tests for the battery and first-order radio energy models.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "energy/battery.hpp"
#include "energy/radio.hpp"

namespace wrsn::energy {
namespace {

TEST(Battery, StartsFullByDefault) {
  Battery b(100.0);
  EXPECT_DOUBLE_EQ(b.level(), 100.0);
  EXPECT_DOUBLE_EQ(b.capacity(), 100.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
  EXPECT_DOUBLE_EQ(b.headroom(), 0.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, ConstructorValidation) {
  EXPECT_THROW(Battery(0.0), PreconditionError);
  EXPECT_THROW(Battery(-5.0), PreconditionError);
  EXPECT_THROW(Battery(10.0, -1.0), PreconditionError);
  EXPECT_THROW(Battery(10.0, 11.0), PreconditionError);
  EXPECT_NO_THROW(Battery(10.0, 0.0));
  EXPECT_NO_THROW(Battery(10.0, 10.0));
}

TEST(Battery, ChargeClampsAtCapacity) {
  Battery b(100.0, 90.0);
  EXPECT_DOUBLE_EQ(b.charge(30.0), 10.0);  // only 10 J fit
  EXPECT_DOUBLE_EQ(b.level(), 100.0);
  EXPECT_DOUBLE_EQ(b.charge(5.0), 0.0);
}

TEST(Battery, DischargeClampsAtZero) {
  Battery b(100.0, 20.0);
  EXPECT_DOUBLE_EQ(b.discharge(50.0), 20.0);
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.discharge(5.0), 0.0);
}

TEST(Battery, NegativeAmountsThrow) {
  Battery b(100.0);
  EXPECT_THROW(b.charge(-1.0), PreconditionError);
  EXPECT_THROW(b.discharge(-1.0), PreconditionError);
}

TEST(Battery, ChargeDischargeConservation) {
  Battery b(1000.0, 500.0);
  const Joules in = b.charge(200.0);
  const Joules out = b.discharge(300.0);
  EXPECT_DOUBLE_EQ(b.level(), 500.0 + in - out);
}

TEST(Battery, TimeToEmpty) {
  Battery b(100.0, 50.0);
  EXPECT_DOUBLE_EQ(b.time_to_empty(5.0), 10.0);
  EXPECT_TRUE(std::isinf(b.time_to_empty(0.0)));
  EXPECT_TRUE(std::isinf(b.time_to_empty(-1.0)));
}

TEST(Battery, TimeToThreshold) {
  Battery b(100.0, 80.0);
  EXPECT_DOUBLE_EQ(b.time_to_threshold(30.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(b.time_to_threshold(80.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(b.time_to_threshold(90.0, 10.0), 0.0);  // already below
  EXPECT_TRUE(std::isinf(b.time_to_threshold(30.0, 0.0)));
}

TEST(RadioParams, Validation) {
  RadioParams p;
  EXPECT_NO_THROW(p.validate());
  p.e_elec = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RadioParams{};
  p.e_amp = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(RadioModel, TxEnergyFormula) {
  RadioModel radio;  // e_elec = 50 nJ/bit, e_amp = 100 pJ/bit/m^2
  // 1000 bits over 10 m: 1000*50e-9 + 1000*100e-12*100 = 5e-5 + 1e-5.
  EXPECT_NEAR(radio.tx_energy(1000.0, 10.0), 6e-5, 1e-12);
}

TEST(RadioModel, RxEnergyIndependentOfDistance) {
  RadioModel radio;
  EXPECT_NEAR(radio.rx_energy(1000.0), 5e-5, 1e-15);
}

TEST(RadioModel, ZeroBitsZeroEnergy) {
  RadioModel radio;
  EXPECT_DOUBLE_EQ(radio.tx_energy(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(radio.rx_energy(0.0), 0.0);
}

TEST(RadioModel, NegativeInputsThrow) {
  RadioModel radio;
  EXPECT_THROW(radio.tx_energy(-1.0, 10.0), PreconditionError);
  EXPECT_THROW(radio.tx_energy(10.0, -1.0), PreconditionError);
  EXPECT_THROW(radio.rx_energy(-1.0), PreconditionError);
}

TEST(RadioModel, PowerIsEnergyPerSecondAtBps) {
  RadioModel radio;
  // tx_power(bps, d) must equal tx_energy(bps bits, d) numerically.
  EXPECT_DOUBLE_EQ(radio.tx_power(2000.0, 25.0), radio.tx_energy(2000.0, 25.0));
  EXPECT_DOUBLE_EQ(radio.rx_power(2000.0), radio.rx_energy(2000.0));
}

TEST(RadioModel, EnergyMonotoneInDistance) {
  RadioModel radio;
  double prev = 0.0;
  for (double d = 0.0; d <= 100.0; d += 10.0) {
    const double e = radio.tx_energy(1e4, d);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

// Property sweep: battery never leaves [0, capacity] under random op mixes.
class BatteryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BatteryFuzz, LevelAlwaysInRange) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  std::srand(seed);
  Battery b(500.0, 250.0);
  for (int i = 0; i < 200; ++i) {
    const double amount = (std::rand() % 1000) / 3.0;
    if (std::rand() % 2 == 0) {
      b.charge(amount);
    } else {
      b.discharge(amount);
    }
    EXPECT_GE(b.level(), 0.0);
    EXPECT_LE(b.level(), b.capacity());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatteryFuzz, ::testing::Range(1, 11));

}  // namespace
}  // namespace wrsn::energy
