// Edge cases and failure injection: degenerate topologies, exhausted
// chargers, hostile parameterizations, audit placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "detect/audit_planner.hpp"
#include "mc/agent.hpp"
#include "net/topology.hpp"

namespace wrsn {
namespace {

TEST(AuditPlanner, BudgetZeroAndOversized) {
  net::TopologyConfig cfg;
  cfg.node_count = 20;
  cfg.comm_range = 40.0;
  Rng rng(1);
  const net::Network network = net::generate_topology(cfg, rng);
  const net::RoutingTree tree = net::build_routing_tree(network);
  const net::TrafficLoads loads = net::compute_loads(network, tree);

  Rng prng(2);
  EXPECT_TRUE(detect::select_audit_nodes(network, loads, 0,
                                         detect::AuditPlacement::Random, prng)
                  .empty());
  const auto all = detect::select_audit_nodes(
      network, loads, 500, detect::AuditPlacement::Random, prng);
  EXPECT_EQ(all.size(), 20u);  // clamped to network size
}

TEST(AuditPlanner, KeyRankedMirrorsAttackerSelection) {
  net::TopologyConfig cfg;
  cfg.node_count = 60;
  cfg.comm_range = 28.0;
  Rng rng(3);
  const net::Network network = net::generate_topology(cfg, rng);
  const net::RoutingTree tree = net::build_routing_tree(network);
  const net::TrafficLoads loads = net::compute_loads(network, tree);

  Rng prng(4);
  const auto audited = detect::select_audit_nodes(
      network, loads, 10, detect::AuditPlacement::KeyRanked, prng);

  net::KeyNodeConfig key_cfg;
  key_cfg.rule = net::KeyNodeRule::Hybrid;
  key_cfg.max_count = 10;
  const auto attacker_view = net::select_key_nodes(network, loads, key_cfg);
  EXPECT_EQ(audited, attacker_view);
}

TEST(AuditPlanner, PlacementsAreDistinctSets) {
  net::TopologyConfig cfg;
  cfg.node_count = 80;
  cfg.comm_range = 26.0;
  Rng rng(5);
  const net::Network network = net::generate_topology(cfg, rng);
  const net::RoutingTree tree = net::build_routing_tree(network);
  const net::TrafficLoads loads = net::compute_loads(network, tree);
  Rng prng(6);
  const auto random = detect::select_audit_nodes(
      network, loads, 15, detect::AuditPlacement::Random, prng);
  const auto traffic = detect::select_audit_nodes(
      network, loads, 15, detect::AuditPlacement::TopTraffic, prng);
  EXPECT_EQ(random.size(), 15u);
  EXPECT_EQ(traffic.size(), 15u);
  EXPECT_NE(random, traffic);  // astronomically unlikely to coincide
}

TEST(Edge, SingleNodeNetworkRuns) {
  std::vector<net::SensorSpec> specs(1);
  specs[0].id = 0;
  specs[0].position = {5.0, 0.0};
  specs[0].data_rate_bps = 1'000.0;
  specs[0].battery_capacity = 1'000.0;
  net::Network network(std::move(specs), {0.0, 0.0}, 10.0);

  sim::WorldParams wp;
  wp.drain.sensing_power = 0.05;
  sim::Simulator sim;
  sim::World world(sim, std::move(network), wp, Rng(1));
  mc::AgentParams ap;
  ap.charger.depot = {0.0, 0.0};
  mc::ChargerAgent agent(world, ap);
  agent.start();
  sim.run_until(100'000.0);
  EXPECT_TRUE(world.alive(0));
  EXPECT_GT(agent.sessions_completed(), 0u);
}

TEST(Edge, ChargerWithTinyBatteryCyclesThroughDepot) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 61;
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.horizon = 2 * 86'400.0;
  // Battery holds only a few sessions; the agent must keep returning.
  cfg.benign.charger.battery_capacity = 1e5;
  cfg.benign.charger.depot_recharge_power = 2'000.0;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
  // Service continues despite the depot cycling (possibly degraded).
  EXPECT_GT(result.trace.sessions.size(), 5u);
  EXPECT_GT(result.alive_at_end, result.node_count - 8);
}

TEST(Edge, AttackerWithTinyBatterySurvives) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 62;
  cfg.attack.charger.battery_capacity = 1.5e5;
  cfg.attack.charger.depot_recharge_power = 2'000.0;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_GT(result.trace.sessions.size(), 5u);  // no deadlock
}

TEST(Edge, ZeroDataRateNodesOnlySense) {
  std::vector<net::SensorSpec> specs(2);
  for (net::NodeId i = 0; i < 2; ++i) {
    specs[i].id = i;
    specs[i].position = {5.0 + 5.0 * i, 0.0};
    specs[i].data_rate_bps = 0.0;
    specs[i].battery_capacity = 1'000.0;
  }
  net::Network network(std::move(specs), {0.0, 0.0}, 12.0);
  const net::RoutingTree tree = net::build_routing_tree(network);
  const net::TrafficLoads loads = net::compute_loads(network, tree);
  EXPECT_DOUBLE_EQ(loads.tx_bps[0], 0.0);
  net::DrainParams dp;
  const auto drains = net::compute_drain_rates(network, tree, loads, dp);
  EXPECT_DOUBLE_EQ(drains[0], dp.sensing_power);
  EXPECT_DOUBLE_EQ(drains[1], dp.sensing_power);
}

TEST(Edge, AllNodesHardwareFailBeforeAnyRequest) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 63;
  cfg.topology.node_count = 30;
  cfg.topology.region = {{0.0, 0.0}, {200.0, 200.0}};
  cfg.world.hardware_mtbf = 2'000.0;  // everything dies within the hour
  cfg.horizon = 86'400.0;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_EQ(result.alive_at_end, 0u);
  EXPECT_EQ(result.trace.deaths.size(), 30u);
}

TEST(Edge, EmergencyDefenseWithAggressiveThresholds) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 64;
  cfg.world.emergency_enabled = true;
  cfg.world.emergency_fraction = 0.2;
  cfg.world.emergency_patience = 300.0;
  // Must run without assertion failures or event storms.
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_GT(result.trace.sessions.size(), 0u);
}

TEST(Edge, WindowMarginLargerThanPatience) {
  // An absurd margin collapses every window to zero width: nothing is
  // servable, so the attacker idles and the network starves loudly.  The
  // run must complete without crashing, and the base station notices.
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 65;
  cfg.attack.window_margin = cfg.world.patience * 2.0;  // clamps to "now"
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_EQ(result.trace.sessions.size(), 0u);
  EXPECT_GT(result.report.escalations, 0u);
  EXPECT_TRUE(result.report.detected);
}

TEST(Edge, MaxCountOneKeySelectsSingleTarget) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 66;
  cfg.attack.key_selection.max_count = 1;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_EQ(result.keys.size(), 1u);
  EXPECT_LE(result.report.sessions_spoofed, 3u);
}

TEST(Edge, HugePatienceNeverEscalates) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 67;
  cfg.world.patience = 1e9;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
  EXPECT_EQ(result.report.escalations, 0u);
}

TEST(Edge, PermanentMcBreakdownStarvesLoudly) {
  // The charger dies for good halfway through the mission.  The run must
  // reach the horizon (no orchestrator deadlock), start no session after
  // the breakdown, and the base station must notice via escalations.
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 69;
  cfg.faults.mc_permanent_at = cfg.horizon / 2.0;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
  EXPECT_EQ(result.fault_stats.mc_breakdowns, 1u);
  EXPECT_EQ(result.fault_stats.mc_repairs, 0u);
  ASSERT_GT(result.trace.sessions.size(), 0u);
  for (const sim::SessionRecord& s : result.trace.sessions) {
    EXPECT_LT(s.start, cfg.faults.mc_permanent_at);
  }
  EXPECT_GT(result.trace.escalations.size(), 0u);
}

TEST(Edge, DelayedEscalationDeadlinesStayInTheFuture) {
  // Escalation-delay faults reschedule base-station deadlines; combined
  // with a permanent charger loss this is the harshest deadline churn the
  // simulator sees.  A deadline tightened into the past would trip the
  // kernel's schedule_at precondition and abort the run — so completing,
  // and every escalation trailing its own triggering request by at least
  // the patience window, is the regression check.
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 70;
  cfg.faults.mc_permanent_at = cfg.horizon * 0.4;
  cfg.faults.escalation_delay_prob = 0.5;
  cfg.faults.escalation_delay_max = 1'800.0;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
  ASSERT_GT(result.trace.escalations.size(), 0u);
  double previous = 0.0;
  for (const sim::EscalationRecord& e : result.trace.escalations) {
    EXPECT_GE(e.time, previous);  // append-only log stays chronological
    previous = e.time;
    // A node's requests are serialized, so the latest request at or before
    // the escalation is the one that went unserved.
    double request_time = -1.0;
    for (const sim::RequestRecord& r : result.trace.requests) {
      if (r.node == e.node && r.time <= e.time + 1e-9) {
        request_time = std::max(request_time, r.time);
      }
    }
    ASSERT_GE(request_time, 0.0) << "escalation without a request";
    EXPECT_GE(e.time, request_time + cfg.world.patience - 1e-6);
  }
}

TEST(Edge, DeterministicAcrossFleetRuns) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 68;
  const analysis::ScenarioResult a = analysis::run_fleet_scenario(cfg, 3, 1);
  const analysis::ScenarioResult b = analysis::run_fleet_scenario(cfg, 3, 1);
  EXPECT_EQ(a.trace.sessions.size(), b.trace.sessions.size());
  EXPECT_EQ(a.report.keys_dead, b.report.keys_dead);
}

}  // namespace
}  // namespace wrsn
