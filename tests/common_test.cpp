// Tests for the common substrate: checking macros, units, RNG determinism
// and distribution sanity, and the logger.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace wrsn {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(WRSN_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(WRSN_REQUIRE(false, "always fails"), PreconditionError);
}

TEST(Check, RequireMessageContainsExpressionAndContext) {
  try {
    WRSN_REQUIRE(2 < 1, "impossible ordering");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("2 < 1"), std::string::npos);
    EXPECT_NE(message.find("impossible ordering"), std::string::npos);
  }
}

TEST(Check, ErrorHierarchy) {
  // Both precondition and config errors should be catchable as
  // invalid_argument, simulation errors as runtime_error.
  EXPECT_THROW(throw ConfigError("bad"), std::invalid_argument);
  EXPECT_THROW(throw PreconditionError("bad"), std::invalid_argument);
  EXPECT_THROW(throw SimulationError("bad"), std::runtime_error);
}

TEST(Units, WavelengthMatchesCarrier) {
  EXPECT_NEAR(constants::kDefaultWavelength, 0.3276, 1e-3);
}

TEST(Units, DbmConversionRoundTrip) {
  for (const double dbm : {-30.0, -11.5, 0.0, 10.0, 36.0}) {
    EXPECT_NEAR(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9);
  }
}

TEST(Units, KnownDbmValues) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-9);
  EXPECT_NEAR(watts_to_dbm(1e-3), 0.0, 1e-9);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministicAndLabelSensitive) {
  Rng parent(7);
  Rng c1 = parent.fork("alpha");
  Rng c2 = Rng(7).fork("alpha");
  Rng c3 = parent.fork("beta");
  EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  // Different labels should produce different streams.
  Rng d1 = Rng(7).fork("alpha");
  Rng d2 = Rng(7).fork("beta");
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (d1.uniform() == d2.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
  (void)c3;
}

TEST(Rng, ForkDoesNotPerturbParentStream) {
  Rng a(99);
  Rng b(99);
  (void)a.fork("child");  // forking must not consume parent entropy
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.uniform(4.0, 4.0), 4.0);
}

TEST(Rng, UniformInvertedRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(5.0, 2.0), PreconditionError);
  EXPECT_THROW(rng.uniform_int(5, 2), PreconditionError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, ss = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsMean) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, NormalNegativeSigmaThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ExponentialNonPositiveRateThrows) {
  Rng rng(6);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(10);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Log, LevelFilterSuppressesBelow) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log(LogLevel::Debug) << "should not crash or emit";
  set_log_level(saved);
}

}  // namespace
}  // namespace wrsn
