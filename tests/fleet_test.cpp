// Tests for multi-charger fleets: partitioning, cooperative benign service,
// and the compromised-member scenario.
#include <gtest/gtest.h>

#include <set>

#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "mc/fleet.hpp"
#include "net/topology.hpp"

namespace wrsn::mc {
namespace {

net::Network fleet_network(std::uint64_t seed, std::size_t count = 60) {
  net::TopologyConfig cfg;
  cfg.region = {{0.0, 0.0}, {300.0, 300.0}};
  cfg.node_count = count;
  cfg.comm_range = 55.0;
  Rng rng(seed);
  return net::generate_topology(cfg, rng);
}

TEST(Fleet, DefaultDepotsInsideRegion) {
  const geom::Rect region{{0.0, 0.0}, {100.0, 100.0}};
  for (std::size_t count = 1; count <= 8; ++count) {
    const auto depots = default_depots(region, count);
    EXPECT_EQ(depots.size(), count);
    for (const geom::Vec2 depot : depots) {
      EXPECT_TRUE(region.contains(depot));
    }
  }
  EXPECT_THROW(default_depots(region, 0), PreconditionError);
  EXPECT_THROW(default_depots(region, 9), PreconditionError);
}

TEST(Fleet, PartitionCoversEveryNodeExactlyOnce) {
  const net::Network network = fleet_network(1);
  const auto depots = default_depots({{0, 0}, {300, 300}}, 4);
  const auto cells = partition_by_depot(network, depots);
  ASSERT_EQ(cells.size(), 4u);
  std::set<net::NodeId> seen;
  for (const auto& cell : cells) {
    for (const net::NodeId id : cell) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), network.size());
}

TEST(Fleet, PartitionAssignsToNearestDepot) {
  const net::Network network = fleet_network(2);
  const auto depots = default_depots({{0, 0}, {300, 300}}, 2);
  const auto cells = partition_by_depot(network, depots);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    for (const net::NodeId id : cells[k]) {
      const geom::Vec2 pos = network.node(id).position;
      for (std::size_t other = 0; other < depots.size(); ++other) {
        EXPECT_LE(geom::distance(pos, depots[k]),
                  geom::distance(pos, depots[other]) + 1e-9);
      }
    }
  }
}

analysis::ScenarioConfig fleet_config(std::uint64_t seed) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = seed;
  return cfg;
}

TEST(Fleet, TwoHonestChargersShareTheLoad) {
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(fleet_config(31), 2);
  EXPECT_EQ(result.report.sessions_spoofed, 0u);
  EXPECT_FALSE(result.report.detected);
  EXPECT_LT(result.report.escalations, 4u);
  // With two vehicles, the first vehicle's ledger shows roughly half the
  // single-charger radiated load.
  const analysis::ScenarioResult solo = analysis::run_scenario(
      fleet_config(31), analysis::ChargerMode::Benign);
  EXPECT_LT(result.ledger.radiated_total(),
            0.85 * solo.ledger.radiated_total());
}

TEST(Fleet, CompromisedMemberAttacksOnlyItsCell) {
  analysis::ScenarioConfig cfg = fleet_config(32);
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(cfg, 3, /*compromised=*/1);

  // Recreate the same partition to know cell 1.
  Rng rng(cfg.seed);
  Rng topo_rng = rng.fork("topology");
  const net::Network network =
      net::generate_topology(cfg.topology, topo_rng);
  const auto depots = default_depots(cfg.topology.region, 3);
  const auto cells = partition_by_depot(network, depots);
  const std::set<net::NodeId> cell(cells[1].begin(), cells[1].end());

  ASSERT_FALSE(result.keys.empty());
  for (const net::NodeId key : result.keys) {
    EXPECT_TRUE(cell.count(key) > 0)
        << "target " << key << " outside the compromised cell";
  }
  // Spoofed sessions only hit nodes in the cell.
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind == sim::SessionKind::Spoofed) {
      EXPECT_TRUE(cell.count(s.node) > 0);
    }
  }
}

TEST(Fleet, CompromisedMemberStillKillsItsTargets) {
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(fleet_config(33), 3, 0);
  EXPECT_GT(result.report.sessions_spoofed, 0u);
  EXPECT_GE(result.report.exhaustion_ratio, 0.5);
}

TEST(Fleet, HonestMembersDoNotMaskTheHardenedAudit) {
  analysis::ScenarioConfig cfg = fleet_config(34);
  cfg.hardened_detectors = true;
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(cfg, 3, 0);
  EXPECT_TRUE(result.report.detected);
}

}  // namespace
}  // namespace wrsn::mc
