// Tests for multi-charger fleets: partitioning, cooperative benign service,
// and the compromised-member scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "mc/fleet.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "runner/runner.hpp"

namespace wrsn::mc {
namespace {

net::Network fleet_network(std::uint64_t seed, std::size_t count = 60) {
  net::TopologyConfig cfg;
  cfg.region = {{0.0, 0.0}, {300.0, 300.0}};
  cfg.node_count = count;
  cfg.comm_range = 55.0;
  Rng rng(seed);
  return net::generate_topology(cfg, rng);
}

TEST(Fleet, DefaultDepotsInsideRegion) {
  const geom::Rect region{{0.0, 0.0}, {100.0, 100.0}};
  for (std::size_t count = 1; count <= 8; ++count) {
    const auto depots = default_depots(region, count);
    EXPECT_EQ(depots.size(), count);
    for (const geom::Vec2 depot : depots) {
      EXPECT_TRUE(region.contains(depot));
    }
  }
  EXPECT_THROW(default_depots(region, 0), PreconditionError);
  EXPECT_THROW(default_depots(region, 9), PreconditionError);
}

// Regression: a margin wider than half the region used to produce an
// inverted placement rect (lo > hi), scattering depots outside the region.
// The inset is now clamped per axis, so an oversized margin degenerates to
// the region center.
TEST(Fleet, DefaultDepotsClampOversizedMargin) {
  const geom::Rect region{{0.0, 0.0}, {100.0, 100.0}};
  for (std::size_t count = 1; count <= 8; ++count) {
    const auto depots = default_depots(region, count, /*margin=*/60.0);
    for (const geom::Vec2 depot : depots) {
      EXPECT_TRUE(region.contains(depot));
      EXPECT_DOUBLE_EQ(depot.x, region.center().x);
      EXPECT_DOUBLE_EQ(depot.y, region.center().y);
    }
  }
  // Even an absurd margin stays inside the region.
  for (const geom::Vec2 depot : default_depots(region, 8, 1e9)) {
    EXPECT_TRUE(region.contains(depot));
  }
  EXPECT_THROW(default_depots(region, 4, -1.0), PreconditionError);
  // Degenerate (point) regions are legal and yield that point.
  const auto point = default_depots({{5.0, 5.0}, {5.0, 5.0}}, 2, 10.0);
  for (const geom::Vec2 depot : point) {
    EXPECT_DOUBLE_EQ(depot.x, 5.0);
    EXPECT_DOUBLE_EQ(depot.y, 5.0);
  }
}

net::Network single_node_network(geom::Vec2 p) {
  std::vector<net::SensorSpec> nodes(1);
  nodes[0].id = 0;
  nodes[0].position = p;
  nodes[0].data_rate_bps = 100.0;
  return net::Network(std::move(nodes), /*sink=*/p, /*comm_range=*/100.0);
}

// Regression: std::hypot's extra internal precision can round two DISTINCT
// squared distances to the SAME double, so the old hypot-based comparison
// kept the lower-index depot even when the other one was strictly closer.
// These coordinates (found by brute force) exhibit exactly that collision;
// comparing squared distances is exact and picks depot 1.
TEST(Fleet, PartitionBreaksUlpTiesBySquaredDistance) {
  const geom::Vec2 p{0x1.d139de449085dp+5, 0x1.36150486942a7p+5};
  const std::vector<geom::Vec2> depots{
      {0x1.33f43aa259eb6p+6, 0x1.1b3a280197695p+8},
      {0x1.3a8b47446d35cp+5, -0x1.9b69cdbfe4bd6p+7}};
  // Depot 1 is strictly closer in exact arithmetic...
  ASSERT_LT((p - depots[1]).norm_sq(), (p - depots[0]).norm_sq());
  // ...yet hypot rounds both distances to the same double.
  ASSERT_EQ(geom::distance(p, depots[0]), geom::distance(p, depots[1]));

  EXPECT_EQ(nearest_depot(p, depots), 1u);
  const net::Network network = single_node_network(p);
  const auto cells = partition_by_depot(network, depots);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_TRUE(cells[0].empty());
  ASSERT_EQ(cells[1].size(), 1u);
  EXPECT_EQ(cells[1][0], 0u);
}

// Exact ties (bit-identical squared distances) pin to the lower depot index
// so the partition is a deterministic function of its inputs.
TEST(Fleet, PartitionBreaksExactTiesTowardLowerIndex) {
  const geom::Vec2 p{50.0, 0.0};
  const std::vector<geom::Vec2> depots{{0.0, 0.0}, {100.0, 0.0}};
  ASSERT_EQ((p - depots[0]).norm_sq(), (p - depots[1]).norm_sq());
  EXPECT_EQ(nearest_depot(p, depots), 0u);
  const auto cells = partition_by_depot(single_node_network(p), depots);
  ASSERT_EQ(cells[0].size(), 1u);
  EXPECT_TRUE(cells[1].empty());
}

TEST(Fleet, PartitionSkipsDeadNodesWithAliveMask) {
  const net::Network network = fleet_network(5);
  const auto depots = default_depots({{0, 0}, {300, 300}}, 3);
  Bitmap alive(network.size(), true);
  for (net::NodeId id = 0; id < network.size(); id += 3) alive.reset(id);

  const auto cells = partition_by_depot(network, depots, alive);
  ASSERT_EQ(cells.size(), depots.size());
  std::set<net::NodeId> seen;
  for (const auto& cell : cells) {
    for (const net::NodeId id : cell) {
      EXPECT_TRUE(alive[id]) << "dead node " << id << " was partitioned";
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), alive.count());

  Bitmap short_mask(network.size() - 1, true);
  EXPECT_THROW(partition_by_depot(network, depots, short_mask),
               PreconditionError);
}

// Regression: a depot that wins no node must still own an (empty) cell so
// cells[k] stays aligned with depots[k] / fleet member k.
TEST(Fleet, PartitionKeepsEmptyCellsAligned) {
  std::vector<net::SensorSpec> nodes(3);
  for (net::NodeId id = 0; id < 3; ++id) {
    nodes[id].id = id;
    nodes[id].position = {double(id), 0.0};
    nodes[id].data_rate_bps = 100.0;
  }
  const net::Network network(std::move(nodes), {0.0, 0.0}, 50.0);
  const std::vector<geom::Vec2> depots{{0.0, 0.0}, {1000.0, 1000.0}};
  const auto cells = partition_by_depot(network, depots);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].size(), 3u);
  EXPECT_TRUE(cells[1].empty());
}

TEST(Fleet, PartitionIsDeterministicAcrossThreadCounts) {
  const std::vector<std::uint64_t> seeds{11, 12, 13, 14, 15, 16, 17, 18};
  const auto trial = [](const std::uint64_t& seed, Rng&) {
    const net::Network network = fleet_network(seed);
    const auto depots = default_depots({{0, 0}, {300, 300}}, 4);
    return partition_by_depot(network, depots);
  };
  using Cells = std::vector<std::vector<net::NodeId>>;
  std::vector<Cells> baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runner::TrialOptions options;
    options.threads = threads;
    auto results = runner::run_trials(std::span<const std::uint64_t>(seeds),
                                      trial, options);
    if (baseline.empty()) {
      baseline = std::move(results);
    } else {
      EXPECT_EQ(results, baseline) << "partition diverged at " << threads
                                   << " threads";
    }
  }
}

TEST(Fleet, PartitionCoversEveryNodeExactlyOnce) {
  const net::Network network = fleet_network(1);
  const auto depots = default_depots({{0, 0}, {300, 300}}, 4);
  const auto cells = partition_by_depot(network, depots);
  ASSERT_EQ(cells.size(), 4u);
  std::set<net::NodeId> seen;
  for (const auto& cell : cells) {
    for (const net::NodeId id : cell) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), network.size());
}

TEST(Fleet, PartitionAssignsToNearestDepot) {
  const net::Network network = fleet_network(2);
  const auto depots = default_depots({{0, 0}, {300, 300}}, 2);
  const auto cells = partition_by_depot(network, depots);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    for (const net::NodeId id : cells[k]) {
      const geom::Vec2 pos = network.node(id).position;
      for (std::size_t other = 0; other < depots.size(); ++other) {
        EXPECT_LE(geom::distance(pos, depots[k]),
                  geom::distance(pos, depots[other]) + 1e-9);
      }
    }
  }
}

analysis::ScenarioConfig fleet_config(std::uint64_t seed) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = seed;
  return cfg;
}

TEST(Fleet, TwoHonestChargersShareTheLoad) {
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(fleet_config(31), 2);
  EXPECT_EQ(result.report.sessions_spoofed, 0u);
  EXPECT_FALSE(result.report.detected);
  EXPECT_LT(result.report.escalations, 4u);
  // With two vehicles, the first vehicle's ledger shows roughly half the
  // single-charger radiated load.
  const analysis::ScenarioResult solo = analysis::run_scenario(
      fleet_config(31), analysis::ChargerMode::Benign);
  EXPECT_LT(result.ledger.radiated_total(),
            0.85 * solo.ledger.radiated_total());
}

TEST(Fleet, CompromisedMemberAttacksOnlyItsCell) {
  analysis::ScenarioConfig cfg = fleet_config(32);
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(cfg, 3, /*compromised=*/1);

  // Recreate the same partition to know cell 1.
  Rng rng(cfg.seed);
  Rng topo_rng = rng.fork("topology");
  const net::Network network =
      net::generate_topology(cfg.topology, topo_rng);
  const auto depots = default_depots(cfg.topology.region, 3);
  const auto cells = partition_by_depot(network, depots);
  const std::set<net::NodeId> cell(cells[1].begin(), cells[1].end());

  ASSERT_FALSE(result.keys.empty());
  for (const net::NodeId key : result.keys) {
    EXPECT_TRUE(cell.count(key) > 0)
        << "target " << key << " outside the compromised cell";
  }
  // Spoofed sessions only hit nodes in the cell.
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind == sim::SessionKind::Spoofed) {
      EXPECT_TRUE(cell.count(s.node) > 0);
    }
  }
}

TEST(Fleet, CompromisedMemberStillKillsItsTargets) {
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(fleet_config(33), 3, 0);
  EXPECT_GT(result.report.sessions_spoofed, 0u);
  EXPECT_GE(result.report.exhaustion_ratio, 0.5);
}

TEST(Fleet, HonestMembersDoNotMaskTheHardenedAudit) {
  analysis::ScenarioConfig cfg = fleet_config(34);
  cfg.hardened_detectors = true;
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(cfg, 3, 0);
  EXPECT_TRUE(result.report.detected);
}

// Permanent loss of one fleet member hands its Voronoi cell to the
// survivors: the orphaned nodes keep getting charged, no node is ever
// served by two chargers at once, and nobody starves waiting on the dead
// vehicle.
TEST(Fleet, HandoffAfterPermanentLossKeepsTheCellServed) {
  analysis::ScenarioConfig cfg = fleet_config(40);
  const Seconds loss_at = 0.3 * cfg.horizon;
  cfg.faults.mc_permanent_at = loss_at;
  const analysis::ScenarioResult result =
      analysis::run_fleet_scenario(cfg, 3);

  // The breakdown fired and was delivered to exactly one handoff hook.
  EXPECT_GE(result.fault_stats.mc_breakdowns, 1u);
  EXPECT_EQ(result.fault_stats.mc_handoffs, 1u);

  // Recreate the partition; the faulted vehicle is fleet member 0.
  Rng rng(cfg.seed);
  Rng topo_rng = rng.fork("topology");
  const net::Network network = net::generate_topology(cfg.topology, topo_rng);
  const auto depots = default_depots(cfg.topology.region, 3);
  const auto cells = partition_by_depot(network, depots);
  const std::set<net::NodeId> lost_cell(cells[0].begin(), cells[0].end());
  ASSERT_FALSE(lost_cell.empty());

  // Survivors adopt the orphaned cell: its nodes still get genuine
  // sessions well after the loss.
  std::size_t served_after_loss = 0;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    EXPECT_EQ(s.kind, sim::SessionKind::Genuine);
    if (s.start > loss_at && lost_cell.count(s.node) > 0) ++served_after_loss;
  }
  EXPECT_GT(served_after_loss, 0u)
      << "orphaned cell was never charged after the permanent loss";

  // No node is served twice concurrently — per-node sessions must be
  // disjoint in time even while territories are being reshuffled.
  std::map<net::NodeId, std::vector<std::pair<Seconds, Seconds>>> by_node;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    by_node[s.node].emplace_back(s.start, s.end);
  }
  for (auto& [node, spans] : by_node) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9)
          << "node " << node << " charged by two sessions at once";
    }
  }

  // No live node's request window is silently dropped: nobody dies with an
  // unserved request outstanding once the survivors own the whole field.
  for (const sim::DeathRecord& d : result.trace.deaths) {
    EXPECT_FALSE(d.request_outstanding)
        << "node " << d.node << " starved at t=" << d.time;
  }
}

}  // namespace
}  // namespace wrsn::mc
