// Adaptive-policy seam (src/policy, DESIGN.md §15): bandit determinism and
// regret, static-policy decision arithmetic, and [policy.*] config coverage.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analysis/config_io.hpp"
#include "common/check.hpp"
#include "policy/bandit.hpp"
#include "policy/policy.hpp"

namespace wrsn {
namespace {

// ---------------------------------------------------------------------------
// Bandit core
// ---------------------------------------------------------------------------

std::vector<std::size_t> arm_sequence(policy::BanditKind kind,
                                      std::uint64_t seed, std::size_t rounds,
                                      double epsilon = 0.3) {
  // Planted rewards: arm 2 is best, so any sane learner converges there.
  const double rewards[] = {0.1, 0.4, 0.9, 0.2};
  policy::Bandit bandit(kind, 4, Rng(seed).fork("bandit"), epsilon);
  std::vector<std::size_t> sequence;
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::size_t arm = bandit.select();
    bandit.update(arm, rewards[arm]);
    sequence.push_back(arm);
  }
  return sequence;
}

TEST(Bandit, SeedDeterminism) {
  // Same (kind, seed, reward sequence) replays the same arm sequence;
  // different seeds explore differently (eps-greedy consumes randomness).
  const auto a = arm_sequence(policy::BanditKind::EpsilonGreedy, 7, 200);
  const auto b = arm_sequence(policy::BanditKind::EpsilonGreedy, 7, 200);
  EXPECT_EQ(a, b);
  const auto c = arm_sequence(policy::BanditKind::EpsilonGreedy, 8, 200);
  EXPECT_NE(a, c);
}

TEST(Bandit, UcbConsumesNoRandomness) {
  // UCB1 is deterministic given rewards: the seed must not matter at all.
  const auto a = arm_sequence(policy::BanditKind::Ucb, 1, 200);
  const auto b = arm_sequence(policy::BanditKind::Ucb, 999, 200);
  EXPECT_EQ(a, b);
}

TEST(Bandit, ForkedStreamsAreIndependent) {
  // The bandit owns a fork of the agent stream: constructing and running it
  // must not perturb the parent (fork() is const), and siblings forked with
  // distinct labels see distinct exploration.
  Rng parent(42);
  Rng probe = parent.fork("probe");
  const double before = probe.uniform();

  Rng parent_again(42);
  policy::Bandit bandit(policy::BanditKind::EpsilonGreedy, 4,
                        parent_again.fork("bandit"), 1.0);
  for (int i = 0; i < 50; ++i) bandit.update(bandit.select(), 0.0);
  Rng probe_again = parent_again.fork("probe");
  EXPECT_EQ(before, probe_again.uniform());

  policy::Bandit left(policy::BanditKind::EpsilonGreedy, 16,
                      Rng(42).fork("left"), 1.0);
  policy::Bandit right(policy::BanditKind::EpsilonGreedy, 16,
                       Rng(42).fork("right"), 1.0);
  std::vector<std::size_t> ls, rs;
  // Skip the deterministic untried-arm sweep before comparing exploration.
  for (int i = 0; i < 16; ++i) {
    left.update(left.select(), 0.0);
    right.update(right.select(), 0.0);
  }
  for (int i = 0; i < 64; ++i) {
    ls.push_back(left.select());
    left.update(ls.back(), 0.0);
    rs.push_back(right.select());
    right.update(rs.back(), 0.0);
  }
  EXPECT_NE(ls, rs);
}

TEST(Bandit, UntriedArmsSweepFirst) {
  policy::Bandit bandit(policy::BanditKind::Ucb, 5, Rng(1).fork("b"));
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t arm = bandit.select();
    EXPECT_EQ(arm, i);
    bandit.update(arm, 0.0);
  }
}

TEST(Bandit, RegretSanityOnPlantedBestArm) {
  // After enough rounds both learners should pull the planted best arm (2)
  // for the clear majority of post-sweep selections.
  for (const policy::BanditKind kind :
       {policy::BanditKind::EpsilonGreedy, policy::BanditKind::Ucb}) {
    const auto sequence = arm_sequence(kind, 11, 400, /*epsilon=*/0.1);
    std::size_t best = 0;
    for (std::size_t i = 100; i < sequence.size(); ++i) {
      if (sequence[i] == 2) ++best;
    }
    EXPECT_GT(best, (sequence.size() - 100) * 7 / 10)
        << "kind " << int(kind) << " pulled best arm only " << best << "x";
  }
}

TEST(Bandit, RejectsBadKnobs) {
  EXPECT_THROW(policy::Bandit(policy::BanditKind::Ucb, 0, Rng(1)),
               PreconditionError);
  EXPECT_THROW(
      policy::Bandit(policy::BanditKind::EpsilonGreedy, 2, Rng(1), 1.5),
      PreconditionError);
  EXPECT_THROW(
      policy::Bandit(policy::BanditKind::Ucb, 2, Rng(1), 0.1, -1.0),
      PreconditionError);
}

// ---------------------------------------------------------------------------
// Attack policies
// ---------------------------------------------------------------------------

policy::SpoofQuery paced_query(std::size_t window_deaths, bool last_chance) {
  policy::SpoofQuery q;
  q.now = 10'000.0;
  q.death_at = 12'000.0;
  q.window_deaths = window_deaths;
  q.last_chance = last_chance;
  q.keys_total = 6;
  return q;
}

TEST(StaticAttackPolicy, ReproducesPacingArithmetic) {
  policy::StaticAttackPolicy policy(/*pace_limit=*/2, /*leak_ratio=*/0.35);
  // Within the pace budget: spoof.
  EXPECT_TRUE(policy.decide(paced_query(2, false)).spoof);
  // Over budget: defer...
  EXPECT_FALSE(policy.decide(paced_query(3, false)).spoof);
  // ...unless the campaign deadline forces the kill.
  EXPECT_TRUE(policy.decide(paced_query(3, true)).spoof);
  // The leak ratio passes through unchanged.
  EXPECT_DOUBLE_EQ(policy.decide(paced_query(1, false)).leak_ratio, 0.35);

  // pace_limit 0 disables pacing entirely.
  policy::StaticAttackPolicy unpaced(/*pace_limit=*/0, /*leak_ratio=*/0.0);
  EXPECT_TRUE(unpaced.decide(paced_query(50, false)).spoof);
}

TEST(BanditAttackPolicy, EpochRolloverIsEventDriven) {
  policy::AttackPolicyParams params;
  params.kind = policy::AttackPolicyKind::Ucb;
  params.epoch = 1'000.0;
  policy::BanditAttackPolicy policy(params, Rng(3).fork("policy"),
                                    /*base_pace_limit=*/2,
                                    /*base_leak_ratio=*/0.3);
  policy::SpoofQuery q = paced_query(1, false);
  q.now = 100.0;
  policy.decide(q);
  EXPECT_EQ(policy.epochs_closed(), 0u);
  q.now = 2'500.0;  // crosses two epoch boundaries
  policy.decide(q);
  EXPECT_EQ(policy.epochs_closed(), 2u);
  policy.observe_death(7'700.0, /*own_kill=*/false);
  EXPECT_EQ(policy.epochs_closed(), 7u);
}

TEST(BanditAttackPolicy, IsSeedDeterministic) {
  policy::AttackPolicyParams params;
  params.kind = policy::AttackPolicyKind::EpsilonGreedy;
  params.epsilon = 0.5;
  params.epoch = 500.0;
  const auto run = [&params] {
    policy::BanditAttackPolicy policy(params, Rng(9).fork("policy"), 2, 0.3);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      policy::SpoofQuery q = paced_query(std::size_t(i % 5), false);
      q.now = 100.0 * double(i);
      decisions.push_back(policy.decide(q).spoof);
      if (i % 3 == 0) policy.observe_death(q.now + 50.0, i % 6 == 0);
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

TEST(MakeAttackPolicy, BuildsTheConfiguredKind) {
  policy::AttackPolicyParams params;
  EXPECT_EQ(policy::make_attack_policy(params, Rng(1), 2, 0.3)->name(),
            "static");
  params.kind = policy::AttackPolicyKind::EpsilonGreedy;
  EXPECT_EQ(policy::make_attack_policy(params, Rng(1), 2, 0.3)->name(),
            "eps-greedy");
  params.kind = policy::AttackPolicyKind::Ucb;
  EXPECT_EQ(policy::make_attack_policy(params, Rng(1), 2, 0.3)->name(),
            "ucb");
}

// ---------------------------------------------------------------------------
// Params validation and labels
// ---------------------------------------------------------------------------

TEST(PolicyParams, ValidateRejectsBadValues) {
  policy::AttackPolicyParams attacker;
  attacker.epsilon = 1.5;
  EXPECT_THROW(attacker.validate(), ConfigError);
  attacker = {};
  attacker.ucb_c = -1.0;
  EXPECT_THROW(attacker.validate(), ConfigError);
  attacker = {};
  attacker.epoch = 0.0;
  EXPECT_THROW(attacker.validate(), ConfigError);
  attacker = {};
  attacker.risk_weight = -0.5;
  EXPECT_THROW(attacker.validate(), ConfigError);
  attacker = {};
  EXPECT_NO_THROW(attacker.validate());

  policy::DefenderPolicyParams defender;
  defender.window = -1.0;
  EXPECT_THROW(defender.validate(), ConfigError);
  defender = {};
  defender.quantile = -0.1;
  EXPECT_THROW(defender.validate(), ConfigError);
  defender = {};
  defender.min_samples = 0;
  EXPECT_THROW(defender.validate(), ConfigError);
  defender = {};
  EXPECT_NO_THROW(defender.validate());
}

TEST(PolicyParams, LabelsRoundTrip) {
  for (const policy::AttackPolicyKind kind :
       {policy::AttackPolicyKind::Static,
        policy::AttackPolicyKind::EpsilonGreedy,
        policy::AttackPolicyKind::Ucb}) {
    EXPECT_EQ(policy::parse_attack_policy(
                  std::string(policy::attack_policy_label(kind))),
              kind);
  }
  for (const policy::DefenderPolicyKind kind :
       {policy::DefenderPolicyKind::Static,
        policy::DefenderPolicyKind::Adaptive}) {
    EXPECT_EQ(policy::parse_defender_policy(
                  std::string(policy::defender_policy_label(kind))),
              kind);
  }
  EXPECT_THROW(policy::parse_attack_policy("thompson"), ConfigError);
  EXPECT_THROW(policy::parse_defender_policy("oracle"), ConfigError);
}

// ---------------------------------------------------------------------------
// [policy.*] config keys
// ---------------------------------------------------------------------------

TEST(PolicyConfig, EveryKeyRoundTripsThroughTheIniLoader) {
  std::istringstream in(
      "[policy]\n"
      "policy.attacker = ucb\n"
      "policy.epsilon = 0.25\n"
      "policy.ucb_c = 2.5\n"
      "policy.epoch = 3600\n"
      "policy.risk_weight = 4.5\n"
      "policy.risk_budget = 7\n"
      "policy.defender = adaptive\n"
      "policy.defender_window = 10800\n"
      "policy.defender_quantile = 2.5\n"
      "policy.defender_min_samples = 3\n");
  const analysis::ScenarioConfig cfg = analysis::load_config(in);
  EXPECT_EQ(cfg.policy.attacker.kind, policy::AttackPolicyKind::Ucb);
  EXPECT_DOUBLE_EQ(cfg.policy.attacker.epsilon, 0.25);
  EXPECT_DOUBLE_EQ(cfg.policy.attacker.ucb_c, 2.5);
  EXPECT_DOUBLE_EQ(cfg.policy.attacker.epoch, 3'600.0);
  EXPECT_DOUBLE_EQ(cfg.policy.attacker.risk_weight, 4.5);
  EXPECT_EQ(cfg.policy.attacker.risk_budget, 7u);
  EXPECT_EQ(cfg.policy.defender.kind, policy::DefenderPolicyKind::Adaptive);
  EXPECT_DOUBLE_EQ(cfg.policy.defender.window, 10'800.0);
  EXPECT_DOUBLE_EQ(cfg.policy.defender.quantile, 2.5);
  EXPECT_EQ(cfg.policy.defender.min_samples, 3u);
}

TEST(PolicyConfig, LoaderRejectsInvalidPolicyValues) {
  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return analysis::load_config(in);
  };
  EXPECT_THROW(load("policy.attacker = thompson\n"), ConfigError);
  EXPECT_THROW(load("policy.defender = oracle\n"), ConfigError);
  EXPECT_THROW(load("policy.epsilon = 2.0\n"), ConfigError);
  EXPECT_THROW(load("policy.epoch = -5\n"), ConfigError);
  EXPECT_THROW(load("policy.defender_window = 0\n"), ConfigError);
  EXPECT_THROW(load("policy.defender_min_samples = 0\n"), ConfigError);
}

}  // namespace
}  // namespace wrsn
