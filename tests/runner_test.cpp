// Tests for the deterministic parallel experiment runner: the thread pool,
// submission-order aggregation, per-trial Rng forking, and — the load-bearing
// guarantee — bit-identical results at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/perf.hpp"
#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"

namespace wrsn::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(RunTrials, ReturnsResultsInSubmissionOrder) {
  const std::vector<int> configs{5, 3, 8, 1, 9, 2, 7};
  const auto results = run_trials(
      std::span<const int>(configs),
      [](const int& c, Rng&) { return c * 10; }, {.threads = 4});
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(results[i], configs[i] * 10);
  }
}

TEST(RunTrials, PerTrialRngDependsOnlyOnIndexAndSeed) {
  // The stream handed to trial i must be a pure function of (seed, label, i):
  // identical across thread counts and across runs, distinct across trials.
  const auto draw = [](std::size_t count, std::size_t threads) {
    return run_trials(
        count, [](std::size_t, Rng& rng) { return rng.uniform(); },
        {.threads = threads, .seed = 42, .label = "t"});
  };
  const auto serial = draw(16, 1);
  const auto parallel = draw(16, 8);
  EXPECT_EQ(serial, parallel);  // bit-identical, not approximately equal
  EXPECT_EQ(std::set<double>(serial.begin(), serial.end()).size(),
            serial.size());  // streams are distinct per trial

  const auto reseeded = run_trials(
      16, [](std::size_t, Rng& rng) { return rng.uniform(); },
      {.threads = 8, .seed = 43, .label = "t"});
  EXPECT_NE(serial, reseeded);
}

TEST(RunTrials, RethrowsFirstTrialErrorInSubmissionOrder) {
  const std::vector<int> configs{0, 1, 2, 3};
  EXPECT_THROW(
      run_trials(
          std::span<const int>(configs),
          [](const int& c, Rng&) -> int {
            if (c >= 2) throw std::runtime_error("trial " + std::to_string(c));
            return c;
          },
          {.threads = 4}),
      std::runtime_error);
}

TEST(RunTrials, FillsRunStats) {
  RunStats stats;
  run_trials(
      8, [](std::size_t i, Rng&) { return i; }, {.threads = 2}, &stats);
  EXPECT_EQ(stats.trials, 8u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_EQ(stats.trial_seconds.size(), 8u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.speedup(), 0.0);
  EXPECT_GT(stats.throughput(), 0.0);
}

TEST(RunTrials, ConfiguredThreadsHonorsEnvVar) {
  ::setenv("WRSN_THREADS", "3", 1);
  EXPECT_EQ(configured_threads(), 3u);
  ::setenv("WRSN_THREADS", "not-a-number", 1);
  EXPECT_GE(configured_threads(), 1u);  // falls back to hardware_concurrency
  ::unsetenv("WRSN_THREADS");
  EXPECT_GE(configured_threads(), 1u);
}

// The determinism guarantee end-to-end: a full scenario sweep produces
// bit-identical reports at 1, 2, and 8 threads.
TEST(RunTrials, ScenarioSweepIsBitIdenticalAcrossThreadCounts) {
  struct Digest {
    double exhaustion;
    double utility;
    std::uint64_t plans;
    std::size_t deaths;
    bool detected;

    bool operator==(const Digest&) const = default;
  };
  const auto sweep = [](std::size_t threads) {
    return run_trials(
        4,
        [](std::size_t i, Rng&) {
          analysis::ScenarioConfig cfg = analysis::default_scenario();
          cfg.seed = i + 1;
          // Keep the test fast: a small (still connected) deployment and a
          // short horizon.
          cfg.topology.node_count = 50;
          cfg.topology.comm_range = 65.0 * std::sqrt(2.0);
          cfg.horizon = 12 * 3'600.0;
          const analysis::ScenarioResult r =
              analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
          return Digest{r.report.exhaustion_ratio,
                        r.report.utility_delivered, r.plans_computed,
                        r.trace.deaths.size(), r.report.detected};
        },
        {.threads = threads, .label = "sweep"});
  };
  const auto at1 = sweep(1);
  const auto at2 = sweep(2);
  const auto at8 = sweep(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(PerfTable, SummarizesStats) {
  RunStats stats;
  stats.trials = 4;
  stats.threads = 2;
  stats.wall_seconds = 2.0;
  stats.trial_seconds = {1.0, 1.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(stats.trial_seconds_total(), 3.0);
  EXPECT_DOUBLE_EQ(stats.throughput(), 2.0);
  EXPECT_DOUBLE_EQ(stats.speedup(), 1.5);
  const analysis::Table table = analysis::perf_table(stats, "perf");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(PerfTable, PhasedStatsKeepsPhasesAndCombinesHonestly) {
  analysis::PhasedStats perf;
  // Phase A: 4 trials of 1 s on 1 thread -> speedup 1.
  RunStats* a = perf.phase("serial");
  a->trials = 4;
  a->threads = 1;
  a->wall_seconds = 4.0;
  a->trial_seconds = {1.0, 1.0, 1.0, 1.0};
  // Phase B: 8 trials of 1 s on 8 threads -> speedup 8.
  RunStats* b = perf.phase("parallel");
  b->trials = 8;
  b->threads = 8;
  b->wall_seconds = 1.0;
  b->trial_seconds = std::vector<double>(8, 1.0);

  EXPECT_EQ(perf.phase_count(), 2u);
  EXPECT_DOUBLE_EQ(perf.phase_stats(0).speedup(), 1.0);
  EXPECT_DOUBLE_EQ(perf.phase_stats(1).speedup(), 8.0);

  const RunStats combined = perf.combined();
  EXPECT_EQ(combined.trials, 12u);
  EXPECT_DOUBLE_EQ(combined.wall_seconds, 5.0);
  EXPECT_EQ(combined.trial_seconds.size(), 12u);
  // Sigma(trial-seconds) / Sigma(wall) = 12 / 5; the old merge_stats would
  // have reported this row under threads = max(1, 8) = 8, implying the
  // combined run scaled 8x when it spent 80 % of its wall clock serial.
  EXPECT_DOUBLE_EQ(combined.speedup(), 2.4);
  EXPECT_EQ(combined.threads, 0u);  // mixed thread counts

  // Same thread count in all phases is reported as that count.
  analysis::PhasedStats uniform;
  *uniform.phase("x") = *a;
  RunStats a2 = *a;
  *uniform.phase("y") = std::move(a2);
  EXPECT_EQ(uniform.combined().threads, 1u);

  // Per-phase rows + combined row.
  EXPECT_EQ(perf.table("perf").row_count(), 3u);
}

}  // namespace
}  // namespace wrsn::runner
