// Cross-cutting property tests: invariants that must hold for every random
// instance, seed, and planner — plan feasibility, energy accounting, wave
// physics conservation, and world-level monotonicities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

#include "analysis/scenario.hpp"
#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/planners.hpp"
#include "core/reference_planner.hpp"
#include "core/route_state.hpp"
#include "wpt/charging_model.hpp"
#include "wpt/spoofing.hpp"
#include "wpt/wave.hpp"

namespace wrsn {
namespace {

csa::TideInstance random_tide(Rng& gen, int keys, int stops) {
  csa::TideInstance inst;
  inst.start_position = {gen.uniform(-20.0, 20.0), gen.uniform(-20.0, 20.0)};
  inst.start_time = gen.uniform(0.0, 100.0);
  inst.speed = gen.uniform(1.0, 8.0);
  for (int i = 0; i < keys + stops; ++i) {
    csa::Stop s;
    s.node = static_cast<net::NodeId>(i);
    s.position = {gen.uniform(-80.0, 80.0), gen.uniform(-80.0, 80.0)};
    s.window_open = inst.start_time + gen.uniform(0.0, 120.0);
    s.window_close = s.window_open + gen.uniform(10.0, 400.0);
    s.service_time = gen.uniform(0.0, 15.0);
    s.is_key = i < keys;
    s.utility = s.is_key ? 0.0 : gen.uniform(0.5, 10.0);
    inst.stops.push_back(s);
  }
  return inst;
}

// ---------------------------------------------------------------------------
// Equivalence of the optimized planner stack with the retained naive
// reference (core/reference_planner.hpp): the slack-based RouteState, the
// cached travel matrix, and the lazy CELF-style greedy fill are pure
// optimizations — on every instance the produced Plan must be IDENTICAL
// (visit order, utility, completion time, key count) to the pre-optimization
// implementation.  5 instance families x 50 seeds = 250 instances, covering
// degenerate shapes: zero-slack windows, all-key, all-infeasible, and an
// exact-arithmetic integer grid where insertion scores tie exactly.
// ---------------------------------------------------------------------------

void expect_plans_identical(const csa::TideInstance& inst,
                            const char* family) {
  Rng r1(1), r2(1), r3(1), r4(1);
  const csa::Plan fast_csa = csa::CsaPlanner().plan(inst, r1);
  const csa::Plan ref_csa = csa::reference::NaiveCsaPlanner().plan(inst, r2);
  ASSERT_EQ(fast_csa.visits.size(), ref_csa.visits.size()) << family;
  for (std::size_t i = 0; i < fast_csa.visits.size(); ++i) {
    ASSERT_EQ(fast_csa.visits[i].stop_index, ref_csa.visits[i].stop_index)
        << family << " visit " << i;
  }
  // Same order + same instance => the evaluator yields bit-equal numbers.
  EXPECT_EQ(fast_csa.utility, ref_csa.utility) << family;
  EXPECT_EQ(fast_csa.completion_time, ref_csa.completion_time) << family;
  EXPECT_EQ(fast_csa.keys_scheduled, ref_csa.keys_scheduled) << family;

  const csa::Plan fast_uf = csa::UtilityFirstPlanner().plan(inst, r3);
  const csa::Plan ref_uf =
      csa::reference::NaiveUtilityFirstPlanner().plan(inst, r4);
  ASSERT_EQ(fast_uf.visits.size(), ref_uf.visits.size()) << family;
  for (std::size_t i = 0; i < fast_uf.visits.size(); ++i) {
    ASSERT_EQ(fast_uf.visits[i].stop_index, ref_uf.visits[i].stop_index)
        << family << " visit " << i;
  }
  EXPECT_EQ(fast_uf.utility, ref_uf.utility) << family;
  EXPECT_EQ(fast_uf.completion_time, ref_uf.completion_time) << family;
}

class PlanEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PlanEquivalence, OptimizedPlannerMatchesNaiveReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());

  {  // Mixed keys + utility stops, generic windows.
    Rng gen(seed * 613 + 11);
    expect_plans_identical(random_tide(gen, 3, 12), "mixed");
  }
  {  // Degenerate: zero-slack windows (service must start exactly at open).
    Rng gen(seed * 331 + 5);
    csa::TideInstance inst = random_tide(gen, 2, 10);
    for (csa::Stop& s : inst.stops) s.window_close = s.window_open;
    expect_plans_identical(inst, "zero-slack");
  }
  {  // Degenerate: every stop is a key (greedy fill has nothing to do).
    Rng gen(seed * 977 + 3);
    csa::TideInstance inst = random_tide(gen, 10, 0);
    expect_plans_identical(inst, "all-key");
  }
  {  // Degenerate: nothing is reachable inside its window.
    Rng gen(seed * 741 + 7);
    csa::TideInstance inst = random_tide(gen, 2, 8);
    for (csa::Stop& s : inst.stops) {
      s.window_open = 0.0;
      s.window_close = 0.0;  // closed before any positive travel time
      s.position = {500.0 + gen.uniform(0.0, 100.0), 500.0};
    }
    Rng probe(1);
    const csa::Plan p = csa::CsaPlanner().plan(inst, probe);
    expect_plans_identical(inst, "all-infeasible");
    EXPECT_TRUE(p.visits.empty());
  }
  {  // Fault-shaped: an MC breakdown delays departure — start_time jumps by
     // a repair delay, leaving a mix of expired, zero-slack, and still-open
     // windows, exactly the instance shape the orchestrator hands the
     // planner after a fault::FaultInjector outage ends.
    Rng gen(seed * 487 + 13);
    csa::TideInstance inst = random_tide(gen, 3, 10);
    inst.start_time += gen.uniform(60.0, 300.0);
    for (std::size_t i = 0; i < inst.stops.size(); ++i) {
      if (i % 3 == 0) {
        // Window closed entirely before the repaired departure.
        inst.stops[i].window_close = inst.start_time - gen.uniform(1.0, 50.0);
        inst.stops[i].window_open = inst.stops[i].window_close - 30.0;
      } else if (i % 3 == 1) {
        // Deadline collapses onto the departure instant (zero slack left).
        inst.stops[i].window_open = inst.start_time;
        inst.stops[i].window_close = inst.start_time;
      }
    }
    expect_plans_identical(inst, "post-outage");
  }
  {  // Fault-shaped: travel-budget loss models as a crippled vehicle, so
     // distant stops fall out of feasibility mid-range rather than
     // all-or-nothing.
    Rng gen(seed * 853 + 29);
    csa::TideInstance inst = random_tide(gen, 2, 10);
    inst.speed = gen.uniform(0.2, 0.8);
    expect_plans_identical(inst, "crippled-speed");
  }
  {  // Exact integer arithmetic on a symmetric collinear grid: insertion
     // deltas and cost-benefit scores tie EXACTLY, so this pins down the
     // deterministic tie-breaking (smallest position / smallest stop index)
     // shared by both implementations.
    Rng gen(seed * 59 + 1);
    csa::TideInstance inst;
    inst.start_position = {0.0, 0.0};
    inst.start_time = 0.0;
    inst.speed = 1.0;
    const int n = 3 + static_cast<int>(gen.uniform(0.0, 6.0));
    for (int i = 0; i < n; ++i) {
      csa::Stop s;
      s.node = static_cast<net::NodeId>(i);
      const double side = (i % 2 == 0) ? 1.0 : -1.0;
      s.position = {side * 10.0 * (1 + i / 2), 0.0};
      s.window_open = static_cast<double>(20 * (i % 3));
      s.window_close = s.window_open + 400.0;
      s.service_time = 5.0;
      s.is_key = (i == 0);
      s.utility = s.is_key ? 0.0 : 4.0;  // equal utilities => exact ties
      inst.stops.push_back(s);
    }
    expect_plans_identical(inst, "integer-grid");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomAndDegenerate, PlanEquivalence,
                         ::testing::Range(0, 50));

// The slack suffix array must answer exactly what the naive tail walk
// answers, for every stop at every position, at every route size along a
// growing route: same feasibility verdict, same absorbed-to-zero
// classification, and the same delta up to rounding.
TEST(RouteStateProperty, TryInsertMatchesNaiveWalkEverywhere) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng gen(seed * 127 + 9);
    const csa::TideInstance inst = random_tide(gen, 2, 10);
    csa::RouteState fast(inst);
    csa::reference::NaiveRouteState naive(inst);
    for (std::size_t round = 0; round < inst.stops.size(); ++round) {
      for (std::size_t stop = 0; stop < inst.stops.size(); ++stop) {
        for (std::size_t pos = 0; pos <= fast.order().size(); ++pos) {
          const auto f = fast.try_insert(stop, pos);
          const auto n = naive.try_insert(stop, pos);
          ASSERT_EQ(f.has_value(), n.has_value())
              << "seed " << seed << " stop " << stop << " pos " << pos;
          if (f.has_value()) {
            ASSERT_EQ(*f == 0.0, *n == 0.0)
                << "seed " << seed << " stop " << stop << " pos " << pos;
            ASSERT_NEAR(*f, *n, 1e-7)
                << "seed " << seed << " stop " << stop << " pos " << pos;
          }
        }
      }
      // Grow both routes identically: append the first insertable stop.
      bool grown = false;
      for (std::size_t stop = 0; stop < inst.stops.size() && !grown; ++stop) {
        if (std::find(fast.order().begin(), fast.order().end(), stop) !=
            fast.order().end()) {
          continue;
        }
        const auto best = fast.best_insertion(stop);
        const auto ref = naive.best_insertion(stop);
        ASSERT_EQ(best.has_value(), ref.has_value());
        if (!best.has_value()) continue;
        ASSERT_EQ(best->first, ref->first);
        fast.insert(stop, best->first);
        naive.insert(stop, best->first);
        grown = true;
      }
      if (!grown) break;
    }
    ASSERT_EQ(fast.order(), naive.order()) << "seed " << seed;
    EXPECT_EQ(fast.completion(), naive.completion()) << "seed " << seed;
  }
}

// Every plan any planner returns must re-evaluate as feasible with the
// same utility and key count (no planner may fabricate a schedule).
class PlannerFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(PlannerFeasibility, PlansAlwaysReEvaluate) {
  Rng gen(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  const csa::TideInstance inst = random_tide(gen, 3, 8);

  const csa::CsaPlanner planner_csa;
  const csa::UtilityFirstPlanner planner_uf;
  const csa::GreedyNearestPlanner planner_gn;
  const csa::RandomPlanner planner_rnd;
  const csa::ExactPlanner planner_exact;
  const csa::Planner* planners[] = {&planner_csa, &planner_uf, &planner_gn,
                                    &planner_rnd, &planner_exact};
  for (const csa::Planner* planner : planners) {
    Rng rng(7);
    const csa::Plan plan = planner->plan(inst, rng);
    std::vector<std::size_t> order;
    for (const csa::Visit& v : plan.visits) order.push_back(v.stop_index);
    const auto check = csa::evaluate_order(inst, order);
    ASSERT_TRUE(check.has_value()) << planner->name();
    EXPECT_NEAR(check->utility, plan.utility, 1e-9) << planner->name();
    EXPECT_EQ(check->keys_scheduled, plan.keys_scheduled) << planner->name();
    // No duplicate visits.
    std::set<std::size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size()) << planner->name();
    // Visits are chronologically ordered with waits honoured.
    for (std::size_t i = 1; i < plan.visits.size(); ++i) {
      EXPECT_GE(plan.visits[i].arrival, plan.visits[i - 1].departure - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PlannerFeasibility,
                         ::testing::Range(0, 20));

// CSA never schedules fewer keys than the exact optimum (its EDF skeleton
// may only tie or, in pathological cases, miss at most what the optimum
// misses too — on these generous instances it must match).
class KeyCoverage : public ::testing::TestWithParam<int> {};

TEST_P(KeyCoverage, CsaMatchesExactWhenExactCoversAll) {
  Rng gen(static_cast<std::uint64_t>(GetParam()) * 991 + 17);
  const csa::TideInstance inst = random_tide(gen, 2, 7);
  Rng rng(5);
  const csa::Plan exact = csa::ExactPlanner().plan(inst, rng);
  if (!exact.covers_all_keys()) return;
  const csa::Plan plan = csa::CsaPlanner().plan(inst, rng);
  EXPECT_TRUE(plan.covers_all_keys());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KeyCoverage,
                         ::testing::Range(0, 25));

// Wave physics: total power through a circle around an isolated source is
// independent of the phase convention, and superposition of co-located
// identical sources quadruples power everywhere.
TEST(WaveProperty, PhaseOffsetDoesNotChangeSingleSourcePower) {
  wpt::WaveSource a;
  a.position = {0.0, 0.0};
  a.alpha = 2.0;
  a.max_range = 100.0;
  for (double phase = 0.0; phase < 6.28; phase += 0.7) {
    wpt::WaveSource b = a;
    b.phase_offset = phase;
    for (double angle = 0.0; angle < 6.28; angle += 0.9) {
      const geom::Vec2 probe{10.0 * std::cos(angle), 10.0 * std::sin(angle)};
      EXPECT_NEAR(wpt::superposed_rf_power({&a, 1}, probe),
                  wpt::superposed_rf_power({&b, 1}, probe), 1e-12);
    }
  }
}

TEST(WaveProperty, RandomPhaseAveragePowerEqualsIncoherentSum) {
  // Averaged over a uniformly random relative carrier phase, the expected
  // coherent power at ANY point equals the incoherent sum — interference
  // redistributes energy, it does not create or destroy it.
  wpt::WaveSource s1;
  s1.position = {0.0, 0.5};
  s1.alpha = 1.0;
  s1.max_range = 1e5;
  wpt::WaveSource s2 = s1;
  s2.position = {0.3, -0.5};

  Rng rng(9);
  for (int probe_idx = 0; probe_idx < 5; ++probe_idx) {
    const geom::Vec2 probe{rng.uniform(-30.0, 30.0),
                           rng.uniform(-30.0, 30.0)};
    double coherent = 0.0;
    const int samples = 5'000;
    for (int i = 0; i < samples; ++i) {
      wpt::WaveSource randomized = s2;
      randomized.phase_offset = constants::kTwoPi * i / samples;
      const wpt::WaveSource arr[] = {s1, randomized};
      coherent += wpt::superposed_rf_power(arr, probe);
    }
    const wpt::WaveSource arr[] = {s1, s2};
    const double incoherent = wpt::incoherent_rf_power(arr, probe);
    EXPECT_NEAR(coherent / samples / incoherent, 1.0, 0.01)
        << "probe " << probe_idx;
  }
}

// Spoof suppression must degrade gracefully with hardware quality.
TEST(SpoofProperty, SuppressionMonotoneInJitter) {
  const wpt::ChargingModel model;
  Watts worst_low = 0.0, worst_high = 0.0;
  for (const double sigma : {0.002, 0.1}) {
    wpt::SpoofingParams params;
    params.phase_jitter_sigma = sigma;
    const wpt::SpoofingEmitter emitter(model, params);
    Rng rng(3);
    Watts worst = 0.0;
    for (int i = 0; i < 100; ++i) {
      const auto out = emitter.configure({0.0, 0.0}, {0.3, 0.0}, &rng);
      worst = std::max(worst, out.rf_at_target);
    }
    (sigma < 0.01 ? worst_low : worst_high) = worst;
  }
  EXPECT_LT(worst_low, worst_high);
}

// World-level monotonicity: a higher request threshold can only produce
// earlier (or equal) first requests.
TEST(WorldProperty, RequestThresholdMonotonicity) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    double first_low = 0.0, first_high = 0.0;
    for (const double threshold : {0.2, 0.5}) {
      analysis::ScenarioConfig cfg = analysis::default_scenario();
      cfg.seed = seed;
      cfg.topology.node_count = 30;
      cfg.topology.region = {{0.0, 0.0}, {180.0, 180.0}};
      cfg.world.request_threshold = threshold;
      cfg.world.initial_level_min = 0.40;
      cfg.world.initial_level_max = 0.80;
      cfg.horizon = 5 * 86'400.0;
      cfg.world.hardware_mtbf = 0.0;
      const auto result =
          analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
      ASSERT_FALSE(result.trace.requests.empty());
      (threshold < 0.3 ? first_low : first_high) =
          result.trace.requests.front().time;
    }
    EXPECT_LE(first_high, first_low) << "seed " << seed;
  }
}

// Battery conservation across a full mission: for every node, delivered
// energy can never exceed the charger's radiated energy budget and no
// node's level exceeds its capacity at any recorded instant.
TEST(WorldProperty, SessionEnergiesPhysical) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 21;
  const auto result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  for (const sim::SessionRecord& s : result.trace.sessions) {
    EXPECT_GE(s.delivered, 0.0);
    EXPECT_GE(s.radiated, -1e-9);
    EXPECT_LE(s.end - s.start, 4 * 3'600.0);  // no runaway sessions
    // DC delivered cannot exceed radiated RF (rectifier efficiency < 1).
    if (s.radiated > 0.0) {
      EXPECT_LE(s.delivered, s.radiated + 1e-6);
    }
  }
}

}  // namespace
}  // namespace wrsn
