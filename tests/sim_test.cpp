// Tests for the discrete-event kernel and the WRSN world: lazy energy
// accounting, the believed-level request protocol, escalations, deaths,
// routing recomputation, and hardware failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"

namespace wrsn::sim {
namespace {

using net::NodeId;

TEST(Simulator, OrdersEventsByTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilAdvancesClockAndStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(7.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
  sim.run_until(10.0);  // boundary inclusive
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelOfDeadOrUnknownIdReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));             // already fired
  EXPECT_FALSE(sim.cancel(kInvalidEvent));  // never a real id
  EXPECT_FALSE(sim.cancel(~EventId{0}));    // never scheduled
  // Cancel-after-fire with slot reuse: the next schedule may land in the
  // fired event's slab slot, but the generation embedded in the id changed,
  // so the stale id can neither collide with nor cancel the new event.
  int fired = 0;
  const EventId next = sim.schedule_in(1.0, [&] { ++fired; });
  EXPECT_NE(next, id);
  EXPECT_FALSE(sim.cancel(id));  // stale id; must not touch the new event
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilWithCancelledHeadAdvancesClock) {
  Simulator sim;
  const EventId id = sim.schedule_at(5.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  // The heap head is a tombstone; run_until must skip it and still advance
  // the clock to the boundary.
  sim.run_until(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
  EXPECT_EQ(sim.executed(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CallbackCanRescheduleIntoItsOwnSlot) {
  // The kernel releases the firing event's slot before invoking its
  // callback, so a callback may schedule into the very slot it fired from.
  // Its own (now stale) id must not be able to cancel the new occupant.
  Simulator sim;
  EventId first = kInvalidEvent;
  int second_fired = 0;
  first = sim.schedule_at(1.0, [&] {
    const EventId next = sim.schedule_in(1.0, [&] { ++second_fired; });
    EXPECT_NE(next, first);
    EXPECT_FALSE(sim.cancel(first));  // the firing event is already dead
  });
  sim.run_all();
  EXPECT_EQ(second_fired, 1);
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(Simulator, CompactionBoundsStaleHeapEntries) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1'000; ++i) {
    ids.push_back(sim.schedule_at(1.0 + i, [] {}));
  }
  // Cancel 90 %: compaction must keep tombstones at no more than half the
  // heap at every step, and the survivors must all still fire.
  for (int i = 0; i < 1'000; ++i) {
    if (i % 10 == 0) continue;
    sim.cancel(ids[i]);
    EXPECT_LE(sim.stale_entries() * 2, sim.heap_size());
  }
  EXPECT_EQ(sim.pending(), 100u);
  sim.run_all();
  EXPECT_EQ(sim.executed(), 100u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.stale_entries(), 0u);
}

TEST(Simulator, ReserveDoesNotDisturbPendingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.reserve(10'000);
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelLeavesNoResidueInPendingCount) {
  Simulator sim;
  // Long-run pattern: schedule + cancel-after-fire must not grow any
  // internal tombstone set or corrupt the pending() count.
  for (int round = 0; round < 1'000; ++round) {
    const EventId id = sim.schedule_in(1.0, [] {});
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_all();
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_FALSE(sim.cancel(id));   // dead; must be a no-op
    EXPECT_EQ(sim.pending(), 0u);   // and leave nothing behind
  }
  EXPECT_EQ(sim.executed(), 1'000u);
}

TEST(Simulator, PendingCountsOnlyLiveEvents) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  const EventId b = sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_TRUE(sim.cancel(b));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, EventsScheduledDuringEventsRun) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run_until(2.0);
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.run_until(1.0), PreconditionError);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, std::function<void()>{}),
               PreconditionError);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

// --- world fixtures -------------------------------------------------------

/// Two-node line: node 0 adjacent to sink, node 1 behind it.
net::Network line2(Joules capacity = 1000.0) {
  std::vector<net::SensorSpec> nodes(2);
  nodes[0].id = 0;
  nodes[0].position = {10.0, 0.0};
  nodes[0].data_rate_bps = 1000.0;
  nodes[0].battery_capacity = capacity;
  nodes[1].id = 1;
  nodes[1].position = {20.0, 0.0};
  nodes[1].data_rate_bps = 1000.0;
  nodes[1].battery_capacity = capacity;
  return net::Network(std::move(nodes), {0.0, 0.0}, 12.0);
}

WorldParams small_params() {
  WorldParams params;
  params.request_threshold = 0.3;
  params.patience = 500.0;
  params.min_request_gap = 10.0;
  params.initial_level_min = 1.0;  // start full: deterministic timings
  params.initial_level_max = 1.0;
  params.benign_gain_cv = 0.0;     // deterministic sessions
  params.drain.sensing_power = 1.0;  // 1 W: fast, easy arithmetic
  params.drain.radio.e_elec = 1e-12;  // make radio negligible
  params.drain.radio.e_amp = 1e-15;
  return params;
}

TEST(World, InitialStateFullBatteriesAndRouting) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  EXPECT_EQ(world.alive_count(), 2u);
  EXPECT_NEAR(world.level(0), 1000.0, 1e-9);
  EXPECT_NEAR(world.believed_level(0), 1000.0, 1e-9);
  EXPECT_TRUE(world.routing().reachable[1]);
  EXPECT_EQ(world.routing().parent[1], 0u);
  EXPECT_EQ(world.sink_connected_count(), 2u);
}

TEST(World, LazyDrainMatchesAnalyticLevel) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  const Watts drain = world.drain_rate(1);
  sim.run_until(100.0);
  EXPECT_NEAR(world.level(1), 1000.0 - drain * 100.0, 1e-6);
}

TEST(World, RequestFiresAtBelievedThresholdCrossing) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  std::vector<std::pair<Seconds, NodeId>> requests;
  world.set_request_handler([&](NodeId id) {
    requests.emplace_back(sim.now(), id);
  });
  // drain ~1 W, threshold 300 J -> crossing at ~700 s.
  sim.run_until(650.0);
  EXPECT_TRUE(requests.empty());
  sim.run_until(710.0);
  ASSERT_GE(requests.size(), 1u);
  EXPECT_NEAR(requests[0].first, 700.0, 2.0);
  EXPECT_TRUE(world.has_pending_request(requests[0].second));
}

TEST(World, PredictedRequestMatchesActual) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  Seconds fired = -1.0;
  world.set_request_handler([&](NodeId id) {
    if (id == 0 && fired < 0.0) fired = sim.now();
  });
  const Seconds predicted = world.predicted_request(0);
  sim.run_until(predicted + 1.0);
  EXPECT_NEAR(fired, predicted, 1.0);
}

TEST(World, EscalationFiresAfterPatience) {
  Simulator sim;
  WorldParams params = small_params();
  params.patience = 200.0;  // escalate before the ~1000 s death
  World world(sim, line2(), params, Rng(1));
  std::vector<Seconds> escalations;
  world.add_escalation_listener(
      [&](NodeId) { escalations.push_back(sim.now()); });
  sim.run_until(950.0);  // request ~700 + patience 200
  ASSERT_GE(world.trace().escalations.size(), 1u);
  EXPECT_FALSE(escalations.empty());
  EXPECT_NEAR(escalations[0], 900.0, 3.0);
}

TEST(World, DeathCancelsPendingEscalation) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));  // patience 500
  std::vector<Seconds> escalations;
  world.add_escalation_listener(
      [&](NodeId) { escalations.push_back(sim.now()); });
  // Death at ~1000 s lands before the ~1200 s escalation deadline.
  sim.run_until(1400.0);
  EXPECT_TRUE(escalations.empty());
  EXPECT_EQ(world.alive_count(), 0u);
}

TEST(World, ServiceCancelsEscalationAndCreditsBelief) {
  Simulator sim;
  WorldParams params = small_params();
  World world(sim, line2(), params, Rng(1));
  bool escalated = false;
  world.add_escalation_listener([&](NodeId) { escalated = true; });
  NodeId requester = net::kInvalidNode;
  world.set_request_handler([&](NodeId id) {
    if (requester == net::kInvalidNode) requester = id;
  });
  sim.run_until(710.0);
  ASSERT_NE(requester, net::kInvalidNode);

  // Serve: start immediately, push 600 J over 100 s, claim 650 expected.
  world.note_service_started(requester);
  world.set_charge_input(requester, 6.0);
  sim.run_until(810.0);
  world.set_charge_input(requester, 0.0);
  world.note_service_ended(requester, 650.0, 600.0);

  sim.run_until(1300.0);  // past the would-be escalation deadline
  EXPECT_FALSE(escalated);
  EXPECT_FALSE(world.has_pending_request(requester));
  // Believed credit = expected 650 on top of ~(level at service end).
  EXPECT_GT(world.believed_level(requester), world.level(requester));
}

TEST(World, SpoofedServiceLeavesBelievedInflated) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  NodeId requester = net::kInvalidNode;
  world.set_request_handler([&](NodeId id) {
    if (requester == net::kInvalidNode) requester = id;
  });
  sim.run_until(710.0);
  ASSERT_NE(requester, net::kInvalidNode);

  // Spoof: no energy flows, but the node is told it got 650 J.
  world.note_service_started(requester);
  world.note_service_ended(requester, 650.0, 0.0);

  const Joules gap =
      world.believed_level(requester) - world.level(requester);
  EXPECT_NEAR(gap, 650.0, 1.0);
  // The node will not re-request until its believed level decays again.
  EXPECT_GT(world.predicted_request(requester), sim.now() + 500.0);
}

TEST(World, NodeDiesWhenBatteryEmpties) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  std::vector<NodeId> deaths;
  world.add_death_listener([&](NodeId id) { deaths.push_back(id); });
  sim.run_until(1100.0);  // 1000 J at ~1 W
  EXPECT_FALSE(deaths.empty());
  EXPECT_EQ(world.trace().deaths.size(), deaths.size());
  for (const NodeId id : deaths) {
    EXPECT_FALSE(world.alive(id));
    EXPECT_NEAR(world.level(id), 0.0, 1e-6);
  }
}

TEST(World, DeathRecordsOutstandingRequestFlag) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  sim.run_until(1100.0);
  // Nobody served the requests, so nodes died while begging.
  ASSERT_FALSE(world.trace().deaths.empty());
  EXPECT_TRUE(world.trace().deaths.front().request_outstanding);
}

TEST(World, DeathTriggersRoutingRecomputation) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  // Kill node 0 by draining it manually: set a huge charge on node 1 so
  // only node 0 dies first (both drain ~1 W; node 0 drains slightly more
  // as the relay).
  std::vector<NodeId> deaths;
  world.add_death_listener([&](NodeId id) { deaths.push_back(id); });
  sim.run_until(1100.0);
  ASSERT_FALSE(deaths.empty());
  if (deaths[0] == 0) {
    // Node 1 lost its relay: unreachable.
    EXPECT_FALSE(world.routing().reachable[1]);
  }
}

TEST(World, ChargingExtendsLifetime) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  // Trickle-charge node 1 at exactly its drain rate: it should never die.
  const Watts drain = world.drain_rate(1);
  world.set_charge_input(1, drain);
  sim.run_until(5000.0);
  EXPECT_TRUE(world.alive(1));
  EXPECT_FALSE(world.alive(0));  // the un-charged relay died long ago
}

TEST(World, SetChargeInputOnDeadNodeReturnsFalse) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  sim.run_until(1100.0);
  ASSERT_FALSE(world.alive(0));
  EXPECT_FALSE(world.set_charge_input(0, 5.0));
}

TEST(World, MinRequestGapRateLimitsReRequests) {
  Simulator sim;
  WorldParams params = small_params();
  params.min_request_gap = 200.0;
  World world(sim, line2(), params, Rng(1));
  // Serve node 1 with zero energy (spoof-like) each time it asks; it can
  // only re-ask after the gap.
  std::vector<Seconds> requests;
  world.set_request_handler([&](NodeId id) {
    if (id != 1) return;
    requests.push_back(sim.now());
    world.note_service_started(id);
    world.note_service_ended(id, 0.0, 0.0);  // nothing credited
  });
  sim.run_until(1000.0);
  for (std::size_t i = 1; i < requests.size(); ++i) {
    EXPECT_GE(requests[i] - requests[i - 1], 200.0 - 1e-6);
  }
}

TEST(World, EmergencyDefenseFiresOnTrueLevel) {
  Simulator sim;
  WorldParams params = small_params();
  params.emergency_enabled = true;
  params.emergency_fraction = 0.10;
  World world(sim, line2(), params, Rng(1));
  NodeId requester = net::kInvalidNode;
  world.set_request_handler([&](NodeId id) {
    if (requester == net::kInvalidNode) requester = id;
    // Spoof every normal request so believed stays high.
    world.note_service_started(id);
    world.note_service_ended(id, 700.0, 0.0);
  });
  sim.run_until(950.0);  // true level hits 10 % at ~900 s
  bool emergency_seen = false;
  for (const RequestRecord& r : world.trace().requests) {
    if (r.emergency) emergency_seen = true;
  }
  EXPECT_TRUE(emergency_seen);
}

TEST(World, NoEmergencyWhenDisabled) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  world.set_request_handler([&](NodeId id) {
    world.note_service_started(id);
    world.note_service_ended(id, 700.0, 0.0);
  });
  sim.run_until(1100.0);
  for (const RequestRecord& r : world.trace().requests) {
    EXPECT_FALSE(r.emergency);
  }
}

TEST(World, HardwareFailuresKillWithoutDraining) {
  Simulator sim;
  WorldParams params = small_params();
  params.hardware_mtbf = 400.0;  // aggressive: both nodes die fast
  World world(sim, line2(), params, Rng(3));
  sim.run_until(3000.0);
  EXPECT_EQ(world.alive_count(), 0u);
  EXPECT_GE(world.trace().deaths.size(), 2u);
}

TEST(World, ParamsValidation) {
  WorldParams params;
  params.request_threshold = 0.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = WorldParams{};
  params.charge_target_fraction = 0.2;  // below threshold
  EXPECT_THROW(params.validate(), ConfigError);
  params = WorldParams{};
  params.emergency_fraction = 0.5;  // above request threshold
  EXPECT_THROW(params.validate(), ConfigError);
  params = WorldParams{};
  params.initial_level_min = 0.9;
  params.initial_level_max = 0.5;
  EXPECT_THROW(params.validate(), ConfigError);
  params = WorldParams{};
  params.hardware_mtbf = -1.0;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(World, PlannedSessionHelpersAreConsistent) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  const Joules deficit = 480.0;
  const Seconds duration = world.planned_session_duration(deficit);
  EXPECT_NEAR(world.expected_session_gain(duration), deficit, 1e-9);
}

TEST(World, HardwareFailureRecomputesRoutingBeforeDeathListeners) {
  // Regression: a death listener plans against the post-death topology, so
  // routing AND drain rates must be updated before listeners run.  Sweep a
  // few seeds so both death orders (relay first, leaf first) are covered.
  bool relay_case_seen = false;
  for (unsigned seed = 1; seed <= 6; ++seed) {
    Simulator sim;
    WorldParams params = small_params();
    params.hardware_mtbf = 400.0;
    World world(sim, line2(), params, Rng(seed));
    world.add_death_listener([&](NodeId id) {
      EXPECT_FALSE(world.alive(id));
      EXPECT_FALSE(world.routing().reachable[id]);
      if (id == 0 && world.alive(1)) {
        // Node 1 lost its relay: by listener time it must already be
        // unreachable and paying only the sensing floor.
        EXPECT_FALSE(world.routing().reachable[1]);
        EXPECT_EQ(world.drain_rate(1), params.drain.sensing_power);
        relay_case_seen = true;
      }
    });
    sim.run_until(3000.0);
    EXPECT_EQ(world.alive_count(), 0u);
  }
  EXPECT_TRUE(relay_case_seen);
}

TEST(World, PendingIndexTracksRequestsServiceAndDeaths) {
  Simulator sim;
  World world(sim, line2(), small_params(), Rng(1));
  EXPECT_TRUE(world.pending_nodes().empty());
  sim.run_until(750.0);  // believed level crosses 30 % at ~700 s
  const std::vector<NodeId>& pending = world.pending_nodes();
  ASSERT_FALSE(pending.empty());
  EXPECT_TRUE(std::is_sorted(pending.begin(), pending.end()));
  EXPECT_EQ(pending.size(), world.pending_requests().size());
  for (const NodeId id : pending) {
    EXPECT_TRUE(world.alive(id));
    EXPECT_TRUE(world.has_pending_request(id));
    EXPECT_EQ(world.pending_request(id).node, id);
  }
  // Service removes a node from the index immediately.
  const NodeId served = pending.front();
  world.note_service_started(served);
  EXPECT_FALSE(world.has_pending_request(served));
  for (const NodeId id : world.pending_nodes()) EXPECT_NE(id, served);
  world.note_service_ended(served, 0.0, 0.0);
  // Deaths evict any outstanding entries.
  sim.run_until(1500.0);
  EXPECT_EQ(world.alive_count(), 0u);
  EXPECT_TRUE(world.pending_nodes().empty());
}

TEST(World, GainFactorStatistics) {
  Simulator sim;
  WorldParams params = small_params();
  params.benign_gain_mean = 0.85;
  params.benign_gain_cv = 0.2;
  World world(sim, line2(), params, Rng(9));
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double f = world.draw_genuine_gain_factor();
    EXPECT_GE(f, 0.4);
    EXPECT_LE(f, 1.6);
    sum += f;
  }
  EXPECT_NEAR(sum / n, 0.85, 0.02);  // clamped draw stays unbiased
}

// --- waypoint mobility ----------------------------------------------------

/// Small random cloud with every node sink-connected, roomy batteries so no
/// one dies during short mobility horizons.
net::Network cloud(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::SensorSpec> nodes(count);
  for (net::NodeId i = 0; i < count; ++i) {
    nodes[i].id = i;
    nodes[i].position = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    nodes[i].data_rate_bps = 500.0;
    nodes[i].battery_capacity = 1e7;
  }
  return net::Network(std::move(nodes), {50.0, 50.0}, 160.0);
}

TEST(Mobility, ParamsValidation) {
  MobilityParams p;
  EXPECT_NO_THROW(p.validate());  // disabled by default
  p.fraction = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = MobilityParams{};
  p.fraction = 0.5;
  p.interval = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = MobilityParams{};
  p.fraction = 0.5;
  p.speed_max = 0.1;  // below speed_min default
  EXPECT_THROW(p.validate(), ConfigError);
  p = MobilityParams{};
  p.fraction = 0.5;
  p.pause_max = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Mobility, WalksStayInsideInitialHull) {
  const net::Network base = cloud(30, 9);
  MobilityParams p;
  p.fraction = 1.0;
  p.speed_max = 3.0;
  net::Network net = cloud(30, 9);
  MobilityModel model(p, net, Rng(4).fork("mobility"));
  ASSERT_TRUE(model.enabled());
  EXPECT_EQ(model.mobile_count(), 30u);

  geom::Vec2 lo = base.node(0).position, hi = lo;
  for (const auto& spec : base.nodes()) {
    lo.x = std::min(lo.x, spec.position.x);
    lo.y = std::min(lo.y, spec.position.y);
    hi.x = std::max(hi.x, spec.position.x);
    hi.y = std::max(hi.y, spec.position.y);
  }
  for (const Seconds t : {600.0, 1'200.0, 7'200.0, 86'400.0}) {
    model.advance_to(t, net);
    for (const auto& spec : net.nodes()) {
      EXPECT_GE(spec.position.x, lo.x - 1e-9);
      EXPECT_LE(spec.position.x, hi.x + 1e-9);
      EXPECT_GE(spec.position.y, lo.y - 1e-9);
      EXPECT_LE(spec.position.y, hi.y + 1e-9);
    }
  }
}

TEST(Mobility, AdvanceIsAPureFunctionOfTime) {
  // Two models with the same rng must land every node on identical
  // positions for the same epoch time — this is what makes Fast and
  // Reference worlds see the same geometry.
  MobilityParams p;
  p.fraction = 0.6;
  net::Network a = cloud(25, 13);
  net::Network b = cloud(25, 13);
  MobilityModel ma(p, a, Rng(21).fork("mobility"));
  MobilityModel mb(p, b, Rng(21).fork("mobility"));
  EXPECT_EQ(ma.mobile_count(), mb.mobile_count());
  for (const Seconds t : {900.0, 1'800.0, 10'000.0}) {
    ma.advance_to(t, a);
    mb.advance_to(t, b);
    for (net::NodeId i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.node(i).position, b.node(i).position) << "node " << i;
    }
  }
}

TEST(World, MobilityEpochsAdvanceTopologyVersion) {
  Simulator sim;
  WorldParams params = small_params();
  params.drain.sensing_power = 1e-4;  // nobody dies in this horizon
  params.mobility.fraction = 0.5;
  params.mobility.interval = 600.0;
  World world(sim, cloud(20, 5), params, Rng(3));
  EXPECT_EQ(world.topology_version(), 0u);
  sim.run_until(3'000.0);
  EXPECT_EQ(world.update_stats().mobility_epochs, 5u);
  EXPECT_EQ(world.topology_version(), 5u);
}

TEST(World, MobilityEpochChainStopsWhenAllDead) {
  // run_all() must terminate: the epoch chain ends once nobody is alive.
  Simulator sim;
  WorldParams params = small_params();
  params.drain.sensing_power = 5.0;  // tiny batteries drain in ~200 s
  params.mobility.fraction = 1.0;
  params.mobility.interval = 50.0;
  net::Network net = line2();
  World world(sim, std::move(net), params, Rng(6));
  sim.run_all();
  EXPECT_EQ(world.alive_count(), 0u);
}

TEST(World, CoverageWeightBoostsUncoveredNodes) {
  Simulator sim;
  WorldParams params = small_params();
  params.coverage.k = 3;
  params.coverage.bonus = 2.0;
  World world(sim, line2(), params, Rng(1));
  // Node 0 and 1 cover each other only: 1 coverer < k = 3 for both.
  const double w = world.coverage_weight(0);
  EXPECT_NEAR(w, 1.0 + 2.0 * (3.0 - 1.0) / 3.0, 1e-12);
  // With coverage disabled, the weight is identically 1.
  Simulator sim2;
  World plain(sim2, line2(), small_params(), Rng(1));
  EXPECT_DOUBLE_EQ(plain.coverage_weight(0), 1.0);
}

}  // namespace
}  // namespace wrsn::sim
