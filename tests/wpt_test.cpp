// Tests for the WPT physics: wave superposition, the nonlinear rectifier,
// the empirical charging model, and the phase-cancellation spoofing emitter.
// These are the physical claims behind the paper's Fig. 2/3.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "wpt/charging_model.hpp"
#include "wpt/rectifier.hpp"
#include "wpt/spoofing.hpp"
#include "wpt/wave.hpp"

namespace wrsn::wpt {
namespace {

using geom::Vec2;

WaveSource make_source(Vec2 pos, double alpha = 1.0, Radians phase = 0.0) {
  WaveSource s;
  s.position = pos;
  s.alpha = alpha;
  s.beta = 0.2316;
  s.phase_offset = phase;
  s.max_range = 100.0;
  return s;
}

TEST(Wave, SingleSourceReducesToDecayLaw) {
  const WaveSource s = make_source({0.0, 0.0}, 2.0);
  const Vec2 probe{3.0, 4.0};  // d = 5
  const Watts direct = s.power_at_distance(5.0);
  const Watts super = superposed_rf_power({&s, 1}, probe);
  EXPECT_NEAR(super, direct, 1e-12);
  EXPECT_NEAR(direct, 2.0 / ((5.0 + 0.2316) * (5.0 + 0.2316)), 1e-12);
}

TEST(Wave, BeyondMaxRangeIsZero) {
  WaveSource s = make_source({0.0, 0.0});
  s.max_range = 2.0;
  EXPECT_DOUBLE_EQ(s.power_at_distance(2.5), 0.0);
  EXPECT_DOUBLE_EQ(superposed_rf_power({&s, 1}, {3.0, 0.0}), 0.0);
}

TEST(Wave, NegativeDistanceThrows) {
  const WaveSource s = make_source({0.0, 0.0});
  EXPECT_THROW(s.power_at_distance(-1.0), PreconditionError);
}

TEST(Wave, PropagationPhase) {
  EXPECT_NEAR(propagation_phase(constants::kDefaultWavelength,
                                constants::kDefaultWavelength),
              constants::kTwoPi, 1e-12);
  EXPECT_THROW(propagation_phase(1.0, 0.0), PreconditionError);
}

TEST(Wave, ConstructiveInterferenceQuadruplesEqualAmplitudes) {
  // Two equidistant in-phase sources: |2A|^2 = 4 |A|^2.
  const WaveSource s1 = make_source({0.0, 1.0});
  const WaveSource s2 = make_source({0.0, -1.0});
  const Vec2 probe{10.0, 0.0};  // equidistant from both
  const WaveSource arr[] = {s1, s2};
  const Watts one = s1.power_at_distance(geom::distance(s1.position, probe));
  EXPECT_NEAR(superposed_rf_power(arr, probe), 4.0 * one, 1e-9);
}

TEST(Wave, DestructiveInterferenceCancelsEqualAmplitudes) {
  const WaveSource s1 = make_source({0.0, 1.0}, 1.0, 0.0);
  const WaveSource s2 = make_source({0.0, -1.0}, 1.0, constants::kPi);
  const Vec2 probe{10.0, 0.0};
  const WaveSource arr[] = {s1, s2};
  EXPECT_NEAR(superposed_rf_power(arr, probe), 0.0, 1e-15);
}

TEST(Wave, IncoherentSumIgnoresPhase) {
  const WaveSource s1 = make_source({0.0, 1.0}, 1.0, 0.0);
  const WaveSource s2 = make_source({0.0, -1.0}, 1.0, constants::kPi);
  const Vec2 probe{10.0, 0.0};
  const WaveSource arr[] = {s1, s2};
  const Watts one = s1.power_at_distance(geom::distance(s1.position, probe));
  EXPECT_NEAR(incoherent_rf_power(arr, probe), 2.0 * one, 1e-12);
}

// The cos-law of two-wave interference: P(phi) = P1 + P2 + 2 sqrt(P1 P2) cos(phi).
class TwoWavePhase : public ::testing::TestWithParam<int> {};

TEST_P(TwoWavePhase, MatchesCosineLaw) {
  const double phi = GetParam() * constants::kTwoPi / 16.0;
  const WaveSource s1 = make_source({0.0, 1.0}, 1.3, 0.0);
  const WaveSource s2 = make_source({0.0, -1.0}, 0.7, phi);
  const Vec2 probe{20.0, 0.0};
  const WaveSource arr[] = {s1, s2};
  const Meters d = geom::distance(s1.position, probe);
  const Watts p1 = s1.power_at_distance(d);
  const Watts p2 = s2.power_at_distance(d);
  const Watts expected = p1 + p2 + 2.0 * std::sqrt(p1 * p2) * std::cos(phi);
  EXPECT_NEAR(superposed_rf_power(arr, probe), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PhaseSweep, TwoWavePhase, ::testing::Range(0, 16));

TEST(Rectifier, ZeroBelowSensitivity) {
  Rectifier rect;
  EXPECT_DOUBLE_EQ(rect.dc_output(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rect.dc_output(0.5e-3), 0.0);  // below 1 mW default
  EXPECT_DOUBLE_EQ(rect.efficiency(0.99e-3), 0.0);
}

TEST(Rectifier, SaturatesTowardMaxEfficiency) {
  Rectifier rect;
  EXPECT_NEAR(rect.efficiency(10.0), rect.params().max_efficiency, 1e-3);
}

TEST(Rectifier, EfficiencyMonotone) {
  Rectifier rect;
  double prev = -1.0;
  for (double p = 0.0; p < 1.0; p += 0.01) {
    const double eff = rect.efficiency(p);
    EXPECT_GE(eff, prev - 1e-12);
    EXPECT_LE(eff, rect.params().max_efficiency);
    prev = eff;
  }
}

TEST(Rectifier, DcOutputCapped) {
  RectifierParams params;
  params.dc_cap = 0.5;
  Rectifier rect(params);
  EXPECT_DOUBLE_EQ(rect.dc_output(100.0), 0.5);
}

TEST(Rectifier, ParamValidation) {
  RectifierParams p;
  p.sensitivity = -1.0;
  EXPECT_THROW(Rectifier{p}, ConfigError);
  p = RectifierParams{};
  p.max_efficiency = 1.5;
  EXPECT_THROW(Rectifier{p}, ConfigError);
  p = RectifierParams{};
  p.max_efficiency = 0.0;
  EXPECT_THROW(Rectifier{p}, ConfigError);
  p = RectifierParams{};
  p.knee = 0.0;
  EXPECT_THROW(Rectifier{p}, ConfigError);
  p = RectifierParams{};
  p.dc_cap = -1.0;
  EXPECT_THROW(Rectifier{p}, ConfigError);
}

TEST(Rectifier, NegativeInputThrows) {
  Rectifier rect;
  EXPECT_THROW(rect.dc_output(-0.1), PreconditionError);
}

TEST(ChargingModel, RfDecaysWithDistance) {
  ChargingModel model;
  double prev = model.rf_at_distance(0.0);
  for (double d = 0.5; d <= 8.0; d += 0.5) {
    const double rf = model.rf_at_distance(d);
    EXPECT_LT(rf, prev);
    prev = rf;
  }
}

TEST(ChargingModel, RfClampedToSourcePower) {
  ChargingModelParams params;
  params.source_power = 3.0;
  params.gain_product = 100.0;  // absurd gain: clamp must bite
  ChargingModel model(params);
  EXPECT_DOUBLE_EQ(model.rf_at_distance(0.0), 3.0);
}

TEST(ChargingModel, ZeroBeyondMaxRange) {
  ChargingModel model;
  EXPECT_DOUBLE_EQ(model.rf_at_distance(model.params().max_range + 0.1), 0.0);
  EXPECT_DOUBLE_EQ(model.dc_at_distance(model.params().max_range + 0.1), 0.0);
}

TEST(ChargingModel, DockedDcPositiveAndBelowRf) {
  ChargingModel model;
  const Watts dc = model.docked_dc_power();
  EXPECT_GT(dc, 0.0);
  EXPECT_LT(dc, model.rf_at_distance(model.params().dock_distance));
}

TEST(ChargingModel, WaveSourceEquivalence) {
  ChargingModel model;
  const WaveSource src = model.as_wave_source({0.0, 0.0});
  for (double d = 0.5; d < 6.0; d += 1.1) {
    // The single-source wave power matches the (unclamped) decay law; at
    // these distances the clamp is inactive.
    EXPECT_NEAR(src.power_at_distance(d), model.rf_at_distance(d), 1e-9);
  }
}

TEST(ChargingModel, ParamValidation) {
  ChargingModelParams p;
  p.source_power = 0.0;
  EXPECT_THROW(ChargingModel{p}, ConfigError);
  p = ChargingModelParams{};
  p.dock_distance = 100.0;  // beyond max_range
  EXPECT_THROW(ChargingModel{p}, ConfigError);
  p = ChargingModelParams{};
  p.beta = 0.0;
  EXPECT_THROW(ChargingModel{p}, ConfigError);
}

TEST(Spoofing, IdealCancellationYieldsZeroDc) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const SpoofOutcome out =
      emitter.configure({0.0, 0.0}, {0.3, 0.0}, /*rng=*/nullptr);
  EXPECT_NEAR(out.rf_at_target, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.dc_at_target, 0.0);
  EXPECT_GT(out.dc_benign_equiv, 1.0);  // a benign charger would deliver watts
  EXPECT_GE(out.suppression_db, 100.0);
}

TEST(Spoofing, JitteredCancellationStaysBelowSensitivity) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  Rng rng(77);
  int exact_zero = 0;
  for (int i = 0; i < 200; ++i) {
    const SpoofOutcome out = emitter.configure({0.0, 0.0}, {0.3, 0.0}, &rng);
    // Residual RF from jitter/imbalance typically lands under the rectifier
    // threshold (zero harvest); rare outliers may leak, but the harvested
    // power must stay negligible against the benign service either way.
    EXPECT_LT(out.dc_at_target, 1e-3 * out.dc_benign_equiv);
    if (out.dc_at_target == 0.0) ++exact_zero;
  }
  EXPECT_GE(exact_zero, 180);  // >= 90 % of sessions harvest exactly nothing
}

TEST(Spoofing, FieldRemainsStrongAwayFromNull) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const Vec2 target{0.3, 0.0};
  const SpoofOutcome out = emitter.configure({0.0, 0.0}, target, nullptr);
  // A probe half a wavelength off the rectenna sees substantial RF: the
  // null is local, which is how the attack fools RSSI checks nearby.
  const Vec2 probe = target + Vec2{0.0, constants::kDefaultWavelength / 2.0};
  const Watts at_probe = emitter.rf_at_probe(out, probe);
  EXPECT_GT(at_probe, 0.05 * out.rf_benign_equiv);
}

TEST(Spoofing, TotalRadiatedPowerMatchesBenign) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const SpoofOutcome out = emitter.configure({0.0, 0.0}, {0.3, 0.0}, nullptr);
  // The two antenna alphas sum to the benign alpha: depot-side energy
  // accounting cannot distinguish the spoof.
  EXPECT_NEAR(out.sources[0].alpha + out.sources[1].alpha, model.alpha(),
              1e-12);
}

TEST(Spoofing, CoLocatedChargerAndTargetThrows) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  EXPECT_THROW(emitter.configure({1.0, 1.0}, {1.0, 1.0}, nullptr),
               PreconditionError);
}

TEST(Spoofing, ParamValidation) {
  ChargingModel model;
  SpoofingParams p;
  p.antenna_separation = 0.0;
  EXPECT_THROW(SpoofingEmitter(model, p), ConfigError);
  p = SpoofingParams{};
  p.amplitude_imbalance = 1.0;
  EXPECT_THROW(SpoofingEmitter(model, p), ConfigError);
  p = SpoofingParams{};
  p.phase_jitter_sigma = -0.1;
  EXPECT_THROW(SpoofingEmitter(model, p), ConfigError);
}

TEST(Spoofing, PartialCancelHitsRequestedDc) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const Vec2 charger{0.0, 0.0};
  const Vec2 target{0.3, 0.0};
  const Watts full = model.dc_at_distance(0.3);
  for (const double fraction : {0.1, 0.3, 0.5, 0.8}) {
    const Watts desired = fraction * full;
    const SpoofOutcome out =
        emitter.configure_partial(charger, target, desired, nullptr);
    EXPECT_NEAR(out.dc_at_target, desired, 0.02 * full + 1e-6)
        << "fraction " << fraction;
  }
}

TEST(Spoofing, PartialCancelZeroDesiredEqualsFullCancel) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const SpoofOutcome out =
      emitter.configure_partial({0.0, 0.0}, {0.3, 0.0}, 0.0, nullptr);
  EXPECT_NEAR(out.rf_at_target, 0.0, 1e-12);
}

TEST(Spoofing, PartialCancelClampsToConstructiveMax) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const SpoofOutcome out =
      emitter.configure_partial({0.0, 0.0}, {0.3, 0.0}, 1e9, nullptr);
  // At full detune the pair is in phase: up to 2x the benign RF.
  EXPECT_GE(out.rf_at_target, out.rf_benign_equiv * 0.9);
  EXPECT_THROW(emitter.configure_partial({0, 0}, {0.3, 0.0}, -1.0, nullptr),
               PreconditionError);
}

TEST(Spoofing, PartialCancelMonotoneInDesired) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  Watts prev = -1.0;
  for (double desired = 0.0; desired <= 2.0; desired += 0.25) {
    const SpoofOutcome out =
        emitter.configure_partial({0.0, 0.0}, {0.3, 0.0}, desired, nullptr);
    EXPECT_GE(out.dc_at_target, prev - 1e-9);
    prev = out.dc_at_target;
  }
}

// Spoof cancellation must hold wherever the target is relative to the
// charger (the geometry solves the phase for each line of sight).
class SpoofGeometry : public ::testing::TestWithParam<int> {};

TEST_P(SpoofGeometry, CancelsAtAllBearings) {
  ChargingModel model;
  SpoofingEmitter emitter(model, SpoofingParams{});
  const double angle = GetParam() * constants::kTwoPi / 12.0;
  const Vec2 target{0.4 * std::cos(angle), 0.4 * std::sin(angle)};
  const SpoofOutcome out = emitter.configure({0.0, 0.0}, target, nullptr);
  EXPECT_NEAR(out.rf_at_target, 0.0, 1e-12) << "bearing " << angle;
}

INSTANTIATE_TEST_SUITE_P(Bearings, SpoofGeometry, ::testing::Range(0, 12));

// ---- Batched kernels: bit-identical to the scalar loops -------------------
//
// The batch kernels are data layout + loop-order changes only; every value
// they produce must be EXACTLY the scalar result (EXPECT_EQ on doubles, not
// a tolerance), or downstream equivalence suites would start drifting the
// moment a caller switches to the batched path.

TEST(WaveBatch, MatchesScalarOnRandomizedSources) {
  Rng gen(20'240'801);
  for (int round = 0; round < 20; ++round) {
    std::vector<WaveSource> sources;
    const int source_count = 1 + static_cast<int>(gen.uniform(0.0, 5.0));
    for (int s = 0; s < source_count; ++s) {
      WaveSource src = make_source(
          {gen.uniform(-8.0, 8.0), gen.uniform(-8.0, 8.0)},
          gen.uniform(0.1, 4.0), gen.uniform(0.0, constants::kTwoPi));
      src.max_range = gen.uniform(2.0, 12.0);  // some points land beyond it
      src.wavelength = gen.uniform(0.05, 0.4);
      sources.push_back(src);
    }
    constexpr std::size_t kPoints = 64;
    std::vector<Meters> xs(kPoints), ys(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
      xs[i] = gen.uniform(-15.0, 15.0);
      ys[i] = gen.uniform(-15.0, 15.0);
    }
    std::vector<Watts> batch(kPoints);
    std::vector<double> im(kPoints);
    superposed_rf_power_batch(sources, xs, ys, batch, im);
    for (std::size_t i = 0; i < kPoints; ++i) {
      EXPECT_EQ(batch[i], superposed_rf_power(sources, {xs[i], ys[i]}))
          << "round " << round << " point " << i;
    }
  }
}

TEST(WaveBatch, AllPointsBeyondMaxRangeAreExactlyZero) {
  WaveSource s = make_source({0.0, 0.0}, 3.0);
  s.max_range = 2.0;
  const Meters xs[] = {2.5, -4.0, 10.0};
  const Meters ys[] = {0.0, 3.0, -10.0};
  Watts out[3];
  double im[3];
  superposed_rf_power_batch({&s, 1}, xs, ys, out, im);
  for (const Watts p : out) EXPECT_EQ(p, 0.0);
}

TEST(WaveBatch, SizeMismatchThrows) {
  const WaveSource s = make_source({0.0, 0.0});
  const Meters xs[2] = {1.0, 2.0};
  const Meters ys[1] = {1.0};
  Watts out[2];
  double im[2];
  EXPECT_THROW(
      superposed_rf_power_batch({&s, 1}, xs, ys, {out, 2}, {im, 2}),
      PreconditionError);
}

TEST(RectifierBatch, MatchesScalarAcrossSensitivityEdges) {
  const Rectifier rect;
  const Watts sens = rect.params().sensitivity;
  // Exact threshold, one ULP around it, zero, knee region, and cap region.
  std::vector<Watts> rf = {0.0,
                           std::nextafter(sens, 0.0),
                           sens,
                           std::nextafter(sens, 1.0),
                           0.5e-3,
                           2e-3,
                           rect.params().knee,
                           0.5,
                           5.0,
                           100.0};
  Rng gen(77);
  for (int i = 0; i < 50; ++i) rf.push_back(gen.uniform(0.0, 20.0));
  std::vector<Watts> dc(rf.size());
  rect.harvest_batch(rf, dc);
  for (std::size_t i = 0; i < rf.size(); ++i) {
    EXPECT_EQ(dc[i], rect.dc_output(rf[i])) << "rf = " << rf[i];
  }
}

TEST(RectifierBatch, InPlaceAndValidation) {
  const Rectifier rect;
  std::vector<Watts> buf = {0.0, 1e-3, 0.1, 3.0};
  std::vector<Watts> expected(buf.size());
  rect.harvest_batch(buf, expected);
  rect.harvest_batch(buf, buf);  // in-place is part of the contract
  EXPECT_EQ(buf, expected);

  std::vector<Watts> bad = {0.1, -0.2};
  std::vector<Watts> out(2);
  EXPECT_THROW(rect.harvest_batch(bad, out), PreconditionError);
  EXPECT_THROW(rect.harvest_batch(bad, {out.data(), 1}), PreconditionError);
}

TEST(ChargingModelBatch, MatchesScalarChain) {
  const ChargingModel model;
  Rng gen(5);
  std::vector<Meters> d = {0.0, model.params().dock_distance,
                           model.params().max_range,
                           std::nextafter(model.params().max_range, 1e9),
                           model.params().max_range + 3.0};
  for (int i = 0; i < 40; ++i) d.push_back(gen.uniform(0.0, 12.0));
  std::vector<Watts> dc(d.size());
  model.dc_at_distances(d, dc);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(dc[i], model.dc_at_distance(d[i])) << "d = " << d[i];
  }
}

TEST(SpoofingBatch, ProbeSweepMatchesScalarProbes) {
  const ChargingModel model;
  const SpoofingEmitter emitter(model, SpoofingParams{});
  const SpoofOutcome out = emitter.configure({-1.0, 0.5}, {0.3, -0.2});
  Rng gen(3);
  constexpr std::size_t kPoints = 32;
  std::vector<Meters> xs(kPoints), ys(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    xs[i] = gen.uniform(-2.0, 2.0);
    ys[i] = gen.uniform(-2.0, 2.0);
  }
  std::vector<Watts> rf(kPoints);
  std::vector<double> im(kPoints);
  emitter.rf_at_probes(out, xs, ys, rf, im);
  for (std::size_t i = 0; i < kPoints; ++i) {
    EXPECT_EQ(rf[i], emitter.rf_at_probe(out, {xs[i], ys[i]}));
  }
}

}  // namespace
}  // namespace wrsn::wpt
