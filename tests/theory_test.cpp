// Tests for the closed-form attack analyses — including the property tests
// that the SIMULATOR agrees with the THEORY (kill times, request cycles,
// pacing throughput, makespan bounds).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "core/exact.hpp"
#include "core/theory.hpp"
#include "sim/world.hpp"

namespace wrsn::csa::theory {
namespace {

TEST(Theory, KillTimeBasics) {
  EXPECT_DOUBLE_EQ(kill_time(100.0, 2.0), 50.0);
  EXPECT_TRUE(std::isinf(kill_time(100.0, 0.0)));
  EXPECT_THROW(kill_time(-1.0, 1.0), PreconditionError);
}

TEST(Theory, RequestCycleBasics) {
  // (0.95 - 0.30) * 1000 / 0.65 W = 1000 s.
  EXPECT_DOUBLE_EQ(request_cycle(1000.0, 0.95, 0.30, 0.65), 1000.0);
  EXPECT_TRUE(std::isinf(request_cycle(1000.0, 0.95, 0.30, 0.0)));
  EXPECT_THROW(request_cycle(1000.0, 0.3, 0.3, 1.0), PreconditionError);
}

TEST(Theory, WindowCloseClampsAtRequestTime) {
  EXPECT_DOUBLE_EQ(window_close(100.0, 50.0, 10.0), 140.0);
  EXPECT_DOUBLE_EQ(window_close(100.0, 50.0, 80.0), 100.0);  // margin > patience
}

TEST(Theory, KillableWithin) {
  EXPECT_TRUE(killable_within(0.0, 100.0, 100.0, 1.0, 250.0));
  EXPECT_FALSE(killable_within(0.0, 100.0, 100.0, 1.0, 150.0));
  EXPECT_FALSE(killable_within(
      std::numeric_limits<double>::infinity(), 100.0, 100.0, 1.0, 1e12));
  EXPECT_FALSE(killable_within(0.0, 100.0, 100.0, 0.0, 1e12));
}

TEST(Theory, MaxPacedKills) {
  // 3 kills per 24 h window over 5 days: 6 batches of 3.
  EXPECT_EQ(max_paced_kills(5 * 86'400.0, 3, 86'400.0), 18u);
  EXPECT_EQ(max_paced_kills(0.0, 3, 86'400.0), 3u);
  // Pacing disabled: unbounded.
  EXPECT_EQ(max_paced_kills(86'400.0, 0, 86'400.0),
            std::numeric_limits<std::size_t>::max());
}

TEST(Theory, DetectionRiskBound) {
  // If the attacker's own pace meets the threshold, risk is 1.
  EXPECT_DOUBLE_EQ(detection_risk_bound(1e-6, 86'400.0, 86'400.0, 3, 3), 1.0);
  // Zero background rate, pace under threshold: zero risk.
  EXPECT_DOUBLE_EQ(detection_risk_bound(0.0, 5 * 86'400.0, 86'400.0, 5, 3),
                   0.0);
  // Monotone in the failure rate.
  const double low = detection_risk_bound(1e-7, 5 * 86'400.0, 86'400.0, 5, 3);
  const double high = detection_risk_bound(1e-5, 5 * 86'400.0, 86'400.0, 5, 3);
  EXPECT_LE(low, high);
  EXPECT_GE(low, 0.0);
  EXPECT_LE(high, 1.0);
}

TEST(Theory, GreedyFloorValue) {
  EXPECT_NEAR(greedy_utility_floor(), 0.3160603, 1e-6);
}

TEST(Theory, EdfNecessaryConditionDetectsOverload) {
  TideInstance inst;
  inst.start_position = {0.0, 0.0};
  inst.speed = 1.0;
  // Two keys whose combined service cannot fit before the later deadline.
  Stop a;
  a.position = {0.0, 0.0};
  a.window_open = 0.0;
  a.window_close = 10.0;
  a.service_time = 50.0;
  a.is_key = true;
  Stop b = a;
  b.window_close = 40.0;
  inst.stops = {a, b};
  EXPECT_FALSE(edf_necessary_condition(inst));
  // Relax: now both fit.
  inst.stops[0].service_time = 5.0;
  inst.stops[1].service_time = 5.0;
  EXPECT_TRUE(edf_necessary_condition(inst));
}

TEST(Theory, EdfConditionIsNecessaryForExactSolver) {
  // Property: whenever the exact solver covers all keys, the EDF relaxation
  // must also pass (contrapositive of necessity).
  Rng gen(321);
  const ExactPlanner exact;
  for (int trial = 0; trial < 40; ++trial) {
    TideInstance inst;
    inst.start_position = {0.0, 0.0};
    inst.speed = 4.0;
    for (int k = 0; k < 4; ++k) {
      Stop s;
      s.position = {gen.uniform(-30.0, 30.0), gen.uniform(-30.0, 30.0)};
      s.window_open = gen.uniform(0.0, 40.0);
      s.window_close = s.window_open + gen.uniform(5.0, 60.0);
      s.service_time = gen.uniform(1.0, 20.0);
      s.is_key = true;
      inst.stops.push_back(s);
    }
    Rng rng(1);
    const Plan plan = exact.plan(inst, rng);
    if (plan.covers_all_keys()) {
      EXPECT_TRUE(edf_necessary_condition(inst)) << "trial " << trial;
    }
  }
}

TEST(Theory, MakespanBoundHoldsForAllPlanners) {
  Rng gen(77);
  const ExactPlanner exact;
  const CsaPlanner csa;
  for (int trial = 0; trial < 30; ++trial) {
    TideInstance inst;
    inst.start_position = {0.0, 0.0};
    inst.speed = 5.0;
    for (int i = 0; i < 6; ++i) {
      Stop s;
      s.position = {gen.uniform(-40.0, 40.0), gen.uniform(-40.0, 40.0)};
      s.window_open = gen.uniform(0.0, 30.0);
      s.window_close = s.window_open + gen.uniform(40.0, 200.0);
      s.service_time = gen.uniform(1.0, 10.0);
      s.is_key = (i < 2);
      s.utility = s.is_key ? 0.0 : gen.uniform(1.0, 5.0);
      inst.stops.push_back(s);
    }
    const Seconds bound = key_coverage_makespan_bound(inst);
    Rng rng(1);
    for (const Planner* planner :
         {static_cast<const Planner*>(&exact),
          static_cast<const Planner*>(&csa)}) {
      const Plan plan = planner->plan(inst, rng);
      if (plan.covers_all_keys() && inst.key_count() > 0) {
        EXPECT_GE(plan.completion_time + 1e-9, bound)
            << planner->name() << " trial " << trial;
      }
    }
  }
}

// --- simulator-vs-theory agreement ----------------------------------------

TEST(TheoryVsSim, SpoofedKeyDiesAtPredictedKillTime) {
  // Run a full attack mission; for every spoofed key whose drain never
  // changed between spoof and death, the death instant must match
  // kill_time(level at spoof end, drain).  Drains do shift when routing
  // changes, so assert a generous envelope: actual death inside
  // [predicted/2, predicted*2] and always after the session.
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 11;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);

  const std::set<net::NodeId> keys(result.keys.begin(), result.keys.end());
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind != sim::SessionKind::Spoofed) continue;
    for (const sim::DeathRecord& d : result.trace.deaths) {
      if (d.node != s.node || d.time < s.end) continue;
      EXPECT_GT(d.time, s.end);
      break;
    }
  }
  // At least one key died, and no spoofed node outlived the horizon with a
  // believed level below threshold (it would have re-requested).
  EXPECT_GT(result.report.keys_dead, 0u);
}

TEST(TheoryVsSim, RequestCycleMatchesSimulatedReRequest) {
  // Isolated 2-node world: serve node 1 fully, measure the time until its
  // next request, compare with request_cycle().
  std::vector<net::SensorSpec> specs(2);
  specs[0].id = 0;
  specs[0].position = {10.0, 0.0};
  specs[0].data_rate_bps = 0.0;
  specs[0].battery_capacity = 1'000.0;
  specs[1] = specs[0];
  specs[1].id = 1;
  specs[1].position = {12.0, 0.0};
  net::Network network(std::move(specs), {0.0, 0.0}, 15.0);

  sim::WorldParams wp;
  wp.request_threshold = 0.30;
  wp.charge_target_fraction = 0.95;
  wp.min_request_gap = 1.0;
  wp.initial_level_min = 1.0;
  wp.initial_level_max = 1.0;
  wp.drain.sensing_power = 0.5;
  wp.benign_gain_cv = 0.0;

  sim::Simulator sim;
  sim::World world(sim, std::move(network), wp, Rng(1));
  const Watts drain = world.drain_rate(1);

  std::vector<Seconds> request_times;
  world.set_request_handler([&](net::NodeId id) {
    if (id != 1) return;
    request_times.push_back(sim.now());
    // Serve instantly and perfectly to the target fraction.
    world.note_service_started(id);
    const Joules deficit = 0.95 * 1'000.0 - world.level(id);
    world.set_charge_input(id, 1e6);  // effectively instant
    sim.schedule_in(deficit / 1e6, [&, id] {
      world.set_charge_input(id, 0.0);
      world.note_service_ended(id, 0.95 * 1'000.0 - 300.0, deficit);
    });
  });

  sim.run_until(10'000.0);
  ASSERT_GE(request_times.size(), 3u);
  const Seconds cycle_sim = request_times[2] - request_times[1];
  const Seconds cycle_theory = request_cycle(1'000.0, 0.95, 0.30, drain);
  EXPECT_NEAR(cycle_sim, cycle_theory, 0.05 * cycle_theory);
}

TEST(TheoryVsSim, PacingThroughputBoundsObservedKills) {
  // The number of spoof-kill DEATHS landing inside the campaign can never
  // exceed the theoretical paced throughput, and no monitoring window may
  // contain many more spoof-deaths than the pace limit (slack covers
  // kill-time prediction error from drifting drains).
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = 12;
  cfg.attack.key_selection.max_count = 40;  // far more than pace allows
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);

  std::set<net::NodeId> spoofed;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind == sim::SessionKind::Spoofed) spoofed.insert(s.node);
  }
  std::vector<Seconds> kill_deaths;
  for (const sim::DeathRecord& d : result.trace.deaths) {
    if (spoofed.count(d.node) > 0) kill_deaths.push_back(d.time);
  }
  const std::size_t bound = max_paced_kills(
      cfg.attack.campaign_deadline, cfg.attack.pace_limit,
      cfg.attack.pace_window);
  EXPECT_LE(kill_deaths.size(), bound);

  // The pacing invariant is exact on SCHEDULED (predicted) death times;
  // realized deaths drift earlier as cascading load raises drains, so the
  // per-window check on observed deaths carries a drift allowance.
  for (const Seconds end : kill_deaths) {
    std::size_t in_window = 0;
    for (const Seconds t : kill_deaths) {
      if (t > end - cfg.attack.pace_window && t <= end) ++in_window;
    }
    EXPECT_LE(in_window, cfg.attack.pace_limit + 3);
  }
}

TEST(TheoryVsSim, DetectionRiskBoundCoversEmpiricalRate) {
  // The Poisson union bound must upper-bound the observed benign
  // death-rate false-positive frequency (which is ~0 at these rates).
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  const double fleet_rate =
      double(cfg.topology.node_count) / cfg.world.hardware_mtbf;
  const double bound =
      detection_risk_bound(fleet_rate, cfg.horizon, 86'400.0, 5, 0);
  int fp = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    cfg.seed = static_cast<std::uint64_t>(seed);
    const analysis::ScenarioResult result =
        analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
    for (const detect::SuiteResult& r : result.detections) {
      if (r.detector == "death-rate" && r.detection.has_value()) ++fp;
    }
  }
  EXPECT_LE(double(fp) / 5.0, bound + 0.05);
}

}  // namespace
}  // namespace wrsn::csa::theory
