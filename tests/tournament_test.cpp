// Tournament harness (src/analysis/tournament.*) and the static-policy
// equivalence guarantee: wrapping the PR 1-9 attacker/defender behaviors as
// trivial policies must be bit-identical to the pre-policy code.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/fuzz.hpp"
#include "analysis/scenario.hpp"
#include "analysis/tournament.hpp"
#include "common/check.hpp"
#include "core/planners.hpp"
#include "core/reference_planner.hpp"

namespace wrsn {
namespace {

// ---------------------------------------------------------------------------
// Static-policy equivalence: golden result digests captured on the commit
// BEFORE the policy seam existed (same four missions, Fast and Reference
// world modes).  If any of these change, the "static policies are the old
// behavior" contract is broken.
// ---------------------------------------------------------------------------

struct GoldenMission {
  const char* repro;
  std::uint64_t fast_digest;
  std::uint64_t reference_digest;
};

constexpr GoldenMission kGolden[] = {
    // attack, phase-cancel, single charger
    {"mode=attack;seed=71;topology.node_count=36;topology.region_size=240;"
     "horizon=43200;topology.battery_capacity=2500;world.sensing_power=0.05;"
     "world.initial_level_min=0.4;world.initial_level_max=0.55;"
     "world.patience=5400;attack.key_count=6",
     7377576853416446908ull, 14750235838302946708ull},
    // benign with standing faults
    {"mode=benign;seed=72;topology.node_count=36;topology.region_size=240;"
     "horizon=43200;topology.battery_capacity=2500;world.sensing_power=0.05;"
     "world.initial_level_min=0.4;world.initial_level_max=0.55;"
     "world.patience=5400;faults.node_burst_mtbf=20000;"
     "faults.node_burst_size=2;faults.battery_drift_mtbf=30000;"
     "faults.battery_drift_power=0.01",
     7904321165263882670ull, 3897419679105382845ull},
    // attack, partial-cancel, hardened detectors
    {"mode=attack;seed=73;topology.node_count=36;topology.region_size=240;"
     "horizon=43200;topology.battery_capacity=2500;world.sensing_power=0.05;"
     "world.initial_level_min=0.4;world.initial_level_max=0.55;"
     "world.patience=5400;attack.key_count=6;"
     "attack.spoof_mode=partial-cancel;hardened_detectors=true",
     7859015883800594880ull, 3949269500359290102ull},
    // fleet mission, compromised member, charger breakdown faults
    {"mode=attack;seed=74;topology.node_count=36;topology.region_size=240;"
     "horizon=43200;topology.battery_capacity=2500;world.sensing_power=0.05;"
     "world.initial_level_min=0.4;world.initial_level_max=0.55;"
     "world.patience=5400;attack.key_count=5;fleet.size=2;"
     "fleet.compromised=0;faults.mc_breakdown_mtbf=30000;"
     "faults.mc_repair_mean=3600",
     14883216790428870155ull, 13880819960805799142ull},
};

TEST(StaticPolicyEquivalence, GoldenDigestsMatchPrePolicyCommit) {
  const csa::CsaPlanner fast_planner;
  const csa::reference::NaiveCsaPlanner ref_planner;
  for (const GoldenMission& golden : kGolden) {
    const auto [cfg, mode] =
        analysis::resolve_overrides(analysis::parse_repro(golden.repro));
    ASSERT_EQ(cfg.policy.attacker.kind, policy::AttackPolicyKind::Static);
    ASSERT_EQ(cfg.policy.defender.kind, policy::DefenderPolicyKind::Static);

    analysis::ScenarioConfig fast_cfg = cfg;
    fast_cfg.world.update_mode = sim::WorldUpdateMode::Fast;
    EXPECT_EQ(analysis::digest_result(
                  analysis::run_mission(fast_cfg, mode, &fast_planner)),
              golden.fast_digest)
        << "Fast mode diverged from pre-policy behavior: " << golden.repro;

    analysis::ScenarioConfig ref_cfg = cfg;
    ref_cfg.world.update_mode = sim::WorldUpdateMode::Reference;
    EXPECT_EQ(analysis::digest_result(
                  analysis::run_mission(ref_cfg, mode, &ref_planner)),
              golden.reference_digest)
        << "Reference mode diverged from pre-policy behavior: "
        << golden.repro;
  }
}

// ---------------------------------------------------------------------------
// Tournament grid
// ---------------------------------------------------------------------------

analysis::TournamentConfig small_tournament() {
  // Activity-dense base (fuzzer-style knobs) so a 12h horizon produces
  // kills, detections, and benign deaths at tiny trial counts.
  analysis::ScenarioConfig base = analysis::default_scenario();
  base.topology.node_count = 36;
  base.topology.region = {{0.0, 0.0}, {240.0, 240.0}};
  base.topology.battery_capacity = 2'500.0;
  base.horizon = 43'200.0;
  base.world.drain.sensing_power = 0.05;
  base.world.initial_level_min = 0.4;
  base.world.initial_level_max = 0.55;
  base.world.patience = 5'400.0;
  base.attack.key_selection.max_count = 6;
  base.policy.attacker.epoch = 7'200.0;
  base.policy.defender.window = 7'200.0;

  analysis::TournamentConfig config = analysis::default_tournament(base);
  config.attack_trials = 2;
  config.benign_trials = 2;
  config.seed = 5;
  return config;
}

TEST(Tournament, DigestIsBitIdenticalAcrossThreadCounts) {
  analysis::TournamentConfig config = small_tournament();
  analysis::TournamentReport reports[3];
  const std::size_t thread_counts[] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    config.threads = thread_counts[i];
    reports[i] = analysis::TournamentRunner(config).run();
  }
  EXPECT_NE(reports[0].digest, 0u);
  EXPECT_EQ(reports[0].digest, reports[1].digest);
  EXPECT_EQ(reports[0].digest, reports[2].digest);
  ASSERT_EQ(reports[0].cells.size(), reports[2].cells.size());
  for (std::size_t c = 0; c < reports[0].cells.size(); ++c) {
    EXPECT_EQ(reports[0].cells[c].digest, reports[1].cells[c].digest);
    EXPECT_EQ(reports[0].cells[c].digest, reports[2].cells[c].digest);
    EXPECT_EQ(reports[0].cells[c].damage, reports[2].cells[c].damage);
    EXPECT_EQ(reports[0].cells[c].fp_rate, reports[2].cells[c].fp_rate);
  }
}

TEST(Tournament, GridShapeAndMetricRanges) {
  const analysis::TournamentConfig config = small_tournament();
  const analysis::TournamentReport report =
      analysis::TournamentRunner(config).run();

  const std::size_t cells = config.attackers.size() * config.defenders.size();
  ASSERT_EQ(report.cells.size(), cells);
  EXPECT_EQ(report.trials, cells * config.attack_trials +
                               config.defenders.size() * config.benign_trials);
  for (const analysis::TournamentCell& cell : report.cells) {
    EXPECT_EQ(cell.attack_trials, config.attack_trials);
    EXPECT_GE(cell.damage, 0.0);
    EXPECT_LE(cell.damage, 1.0);
    EXPECT_GE(cell.undetected_damage, 0.0);
    EXPECT_LE(cell.undetected_damage, cell.damage + 1e-12);
    EXPECT_GE(cell.detection_rate, 0.0);
    EXPECT_LE(cell.detection_rate, 1.0);
    EXPECT_GE(cell.fp_rate, 0.0);
    EXPECT_LE(cell.fp_rate, 1.0);
    EXPECT_GE(cell.mean_time_to_detection, 0.0);
    EXPECT_LE(cell.mean_time_to_detection, config.base.horizon);
    EXPECT_FALSE(cell.attacker.empty());
    EXPECT_FALSE(cell.defender.empty());
  }
  // FP rate is a property of the defender column: every attacker row must
  // report the same value for a given defender.
  const std::size_t defenders = config.defenders.size();
  for (std::size_t d = 0; d < defenders; ++d) {
    for (std::size_t a = 1; a < config.attackers.size(); ++a) {
      EXPECT_EQ(report.cells[a * defenders + d].fp_rate,
                report.cells[d].fp_rate);
    }
  }
}

TEST(Tournament, DefaultGridIsThreeByThree) {
  const analysis::TournamentConfig config =
      analysis::default_tournament(analysis::default_scenario());
  ASSERT_EQ(config.attackers.size(), 3u);
  ASSERT_EQ(config.defenders.size(), 3u);
  EXPECT_EQ(config.attackers[0].label, "static");
  EXPECT_EQ(config.attackers[1].label, "eps-greedy");
  EXPECT_EQ(config.attackers[2].label, "ucb");
  EXPECT_EQ(config.defenders[0].label, "static");
  EXPECT_EQ(config.defenders[1].label, "adaptive");
  EXPECT_EQ(config.defenders[2].label, "adaptive-tight");
  EXPECT_EQ(config.attackers[0].params.kind, policy::AttackPolicyKind::Static);
  EXPECT_EQ(config.defenders[2].params.quantile, 2.0);
}

TEST(Tournament, RejectsEmptyGrids) {
  analysis::TournamentConfig config = small_tournament();
  config.attackers.clear();
  EXPECT_THROW(analysis::TournamentRunner{config}, PreconditionError);
  config = small_tournament();
  config.defenders.clear();
  EXPECT_THROW(analysis::TournamentRunner{config}, PreconditionError);
  config = small_tournament();
  config.attack_trials = 0;
  EXPECT_THROW(analysis::TournamentRunner{config}, PreconditionError);
}

TEST(Tournament, JsonDocumentCarriesTheGrid) {
  const analysis::TournamentConfig config = small_tournament();
  const analysis::TournamentReport report =
      analysis::TournamentRunner(config).run();
  const std::string json = analysis::tournament_json(config, report);
  EXPECT_NE(json.find("\"schema\": \"wrsn-tournament-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"digest\": \"" + std::to_string(report.digest) +
                      "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"attacker\": \"eps-greedy\""), std::string::npos);
  EXPECT_NE(json.find("\"defender\": \"adaptive-tight\""), std::string::npos);
}

}  // namespace
}  // namespace wrsn
