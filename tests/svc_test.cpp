// Mission service: canonical scenario digest, LRU cache core, coalescing,
// admission control, batch submission, auto-seed streams, wire protocol,
// and the socket server round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "analysis/fuzz.hpp"
#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "svc/cache.hpp"
#include "svc/digest.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace wrsn::svc {
namespace {

/// Small, activity-dense mission that finishes in a few milliseconds —
/// service tests run dozens of them.
analysis::ScenarioConfig quick_scenario(std::uint64_t seed) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = seed;
  cfg.topology.node_count = 16;
  cfg.topology.region = {{0.0, 0.0}, {160.0, 160.0}};
  cfg.topology.battery_capacity = 2'000.0;
  cfg.world.drain.sensing_power = 0.05;
  cfg.world.initial_level_min = 0.35;
  cfg.world.initial_level_max = 0.55;
  cfg.world.patience = 2'400.0;
  cfg.horizon = 10'800.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  return cfg;
}

MissionRequest quick_request(std::uint64_t seed) {
  MissionRequest request;
  request.config = quick_scenario(seed);
  return request;
}

std::string quick_repro(std::uint64_t seed) {
  analysis::FuzzOverrides o;
  o["mode"] = "attack";
  o["seed"] = std::to_string(seed);
  o["topology.node_count"] = "16";
  o["topology.region_size"] = "160";
  o["topology.battery_capacity"] = "2000";
  o["world.sensing_power"] = "0.05";
  o["world.initial_level_min"] = "0.35";
  o["world.initial_level_max"] = "0.55";
  o["world.patience"] = "2400";
  o["horizon"] = "10800";
  return analysis::format_repro(o);
}

bool same_outcome(const MissionOutcome& a, const MissionOutcome& b) {
  return std::memcmp(&a, &b, sizeof(MissionOutcome)) == 0;
}

// ---------------------------------------------------------------------------
// Scenario digest
// ---------------------------------------------------------------------------

TEST(ScenarioDigest, OrderInvariantAcrossOverrideOrderings) {
  // parse_repro yields a sorted map either way; the point pinned here is
  // that two differently-ordered descriptions of one scenario digest
  // identically once resolved.
  const std::string forward =
      "horizon=10800;mode=attack;seed=7;topology.node_count=20";
  const std::string reversed =
      "topology.node_count=20;seed=7;mode=attack;horizon=10800";
  const auto [cfg_a, mode_a] =
      analysis::resolve_overrides(analysis::parse_repro(forward));
  const auto [cfg_b, mode_b] =
      analysis::resolve_overrides(analysis::parse_repro(reversed));
  EXPECT_EQ(scenario_digest(cfg_a, mode_a), scenario_digest(cfg_b, mode_b));
}

TEST(ScenarioDigest, SeedIsExcluded) {
  analysis::ScenarioConfig a = quick_scenario(1);
  analysis::ScenarioConfig b = quick_scenario(999);
  EXPECT_EQ(scenario_digest(a, analysis::ChargerMode::Attack),
            scenario_digest(b, analysis::ChargerMode::Attack));
}

TEST(ScenarioDigest, ModeIsIncluded) {
  const analysis::ScenarioConfig cfg = quick_scenario(1);
  EXPECT_NE(scenario_digest(cfg, analysis::ChargerMode::Attack),
            scenario_digest(cfg, analysis::ChargerMode::Benign));
}

TEST(ScenarioDigest, EveryMutatedFieldChangesTheDigest) {
  const analysis::ScenarioConfig base = quick_scenario(1);
  const std::uint64_t base_digest =
      scenario_digest(base, analysis::ChargerMode::Attack);

  // EVERY field the digest walks, one mutation each.  When a field is added
  // to a config struct, digest.cpp must gain a mixer and this sweep a line —
  // a forgotten mixer makes the mission cache serve stale results for
  // configs that differ only in that field.
  std::vector<std::pair<const char*, analysis::ScenarioConfig>> mutants;
  auto add = [&](const char* name, auto&& mutate) {
    analysis::ScenarioConfig cfg = base;
    mutate(cfg);
    mutants.emplace_back(name, cfg);
  };

  // --- topology ---
  add("topology.region.lo.x", [](auto& c) { c.topology.region.lo.x -= 1.0; });
  add("topology.region.lo.y", [](auto& c) { c.topology.region.lo.y -= 1.0; });
  add("topology.region.hi.x", [](auto& c) { c.topology.region.hi.x += 1.0; });
  add("topology.region.hi.y", [](auto& c) { c.topology.region.hi.y += 1.0; });
  add("topology.node_count", [](auto& c) { c.topology.node_count += 1; });
  add("topology.comm_range", [](auto& c) { c.topology.comm_range += 1.0; });
  add("topology.deployment",
      [](auto& c) { c.topology.deployment = net::Deployment::Grid; });
  add("topology.sink_at_center", [](auto& c) {
    c.topology.sink_at_center = false;
    c.topology.sink_position = {1.0, 1.0};
  });
  add("topology.sink_position.x",
      [](auto& c) { c.topology.sink_position.x += 1.0; });
  add("topology.sink_position.y",
      [](auto& c) { c.topology.sink_position.y += 1.0; });
  add("topology.mean_data_rate_bps",
      [](auto& c) { c.topology.mean_data_rate_bps += 10.0; });
  add("topology.battery_capacity",
      [](auto& c) { c.topology.battery_capacity += 100.0; });
  add("topology.min_separation",
      [](auto& c) { c.topology.min_separation += 0.5; });
  add("topology.cluster_count", [](auto& c) { c.topology.cluster_count += 1; });
  add("topology.cluster_sigma_fraction",
      [](auto& c) { c.topology.cluster_sigma_fraction += 0.01; });
  add("topology.cluster_background_fraction",
      [](auto& c) { c.topology.cluster_background_fraction += 0.01; });
  add("topology.corridor_count",
      [](auto& c) { c.topology.corridor_count += 1; });
  add("topology.class_count", [](auto& c) { c.topology.class_count += 1; });
  add("topology.class_capacity_ratio",
      [](auto& c) { c.topology.class_capacity_ratio += 0.5; });
  add("topology.class_rate_ratio",
      [](auto& c) { c.topology.class_rate_ratio += 0.5; });
  add("topology.max_attempts", [](auto& c) { c.topology.max_attempts += 1; });

  // --- world ---
  add("world.request_threshold",
      [](auto& c) { c.world.request_threshold += 0.01; });
  add("world.min_request_gap", [](auto& c) { c.world.min_request_gap += 1.0; });
  add("world.patience", [](auto& c) { c.world.patience += 60.0; });
  add("world.charge_target_fraction",
      [](auto& c) { c.world.charge_target_fraction -= 0.01; });
  add("world.benign_gain_mean",
      [](auto& c) { c.world.benign_gain_mean += 0.01; });
  add("world.benign_gain_cv", [](auto& c) { c.world.benign_gain_cv += 0.01; });
  add("world.initial_level_min",
      [](auto& c) { c.world.initial_level_min += 0.01; });
  add("world.initial_level_max",
      [](auto& c) { c.world.initial_level_max -= 0.01; });
  add("world.emergency_enabled",
      [](auto& c) { c.world.emergency_enabled = !c.world.emergency_enabled; });
  add("world.emergency_fraction",
      [](auto& c) { c.world.emergency_fraction += 0.01; });
  add("world.emergency_patience",
      [](auto& c) { c.world.emergency_patience += 60.0; });
  add("world.hardware_mtbf", [](auto& c) { c.world.hardware_mtbf += 3'600.0; });
  add("world.update_mode", [](auto& c) {
    c.world.update_mode = c.world.update_mode == sim::WorldUpdateMode::Fast
                              ? sim::WorldUpdateMode::Reference
                              : sim::WorldUpdateMode::Fast;
  });
  add("world.charging.source_power",
      [](auto& c) { c.world.charging.source_power += 1.0; });
  add("world.charging.gain_product",
      [](auto& c) { c.world.charging.gain_product += 0.1; });
  add("world.charging.beta", [](auto& c) { c.world.charging.beta += 0.1; });
  add("world.charging.max_range",
      [](auto& c) { c.world.charging.max_range += 0.5; });
  add("world.charging.dock_distance",
      [](auto& c) { c.world.charging.dock_distance += 0.1; });
  add("world.charging.wavelength",
      [](auto& c) { c.world.charging.wavelength += 0.01; });
  add("world.rectifier.sensitivity",
      [](auto& c) { c.world.charging.rectifier.sensitivity += 1e-4; });
  add("world.rectifier.max_efficiency",
      [](auto& c) { c.world.charging.rectifier.max_efficiency -= 0.01; });
  add("world.rectifier.knee",
      [](auto& c) { c.world.charging.rectifier.knee += 0.01; });
  add("world.rectifier.dc_cap",
      [](auto& c) { c.world.charging.rectifier.dc_cap += 0.1; });
  add("world.routing.hop_cost",
      [](auto& c) { c.world.routing.hop_cost += 1.0; });
  add("world.drain.sensing_power",
      [](auto& c) { c.world.drain.sensing_power += 1e-3; });
  add("world.drain.radio.e_elec",
      [](auto& c) { c.world.drain.radio.e_elec += 1e-9; });
  add("world.drain.radio.e_amp",
      [](auto& c) { c.world.drain.radio.e_amp += 1e-12; });
  add("world.mobility.fraction",
      [](auto& c) { c.world.mobility.fraction += 0.1; });
  add("world.mobility.interval",
      [](auto& c) { c.world.mobility.interval += 60.0; });
  add("world.mobility.speed_min",
      [](auto& c) { c.world.mobility.speed_min += 0.1; });
  add("world.mobility.speed_max",
      [](auto& c) { c.world.mobility.speed_max += 0.1; });
  add("world.mobility.pause_min",
      [](auto& c) { c.world.mobility.pause_min += 10.0; });
  add("world.mobility.pause_max",
      [](auto& c) { c.world.mobility.pause_max += 10.0; });
  add("world.coverage.k", [](auto& c) { c.world.coverage.k += 1; });
  add("world.coverage.radius", [](auto& c) { c.world.coverage.radius += 5.0; });
  add("world.coverage.bonus", [](auto& c) { c.world.coverage.bonus += 0.1; });

  // --- attack (mix_charger is covered field-by-field through this copy) ---
  add("attack.charger.depot.x",
      [](auto& c) { c.attack.charger.depot.x += 1.0; });
  add("attack.charger.depot.y",
      [](auto& c) { c.attack.charger.depot.y += 1.0; });
  add("attack.charger.speed", [](auto& c) { c.attack.charger.speed += 0.1; });
  add("attack.charger.battery_capacity",
      [](auto& c) { c.attack.charger.battery_capacity += 100.0; });
  add("attack.charger.travel_cost_per_meter",
      [](auto& c) { c.attack.charger.travel_cost_per_meter += 0.1; });
  add("attack.charger.pa_efficiency",
      [](auto& c) { c.attack.charger.pa_efficiency -= 0.01; });
  add("attack.charger.depot_recharge_power",
      [](auto& c) { c.attack.charger.depot_recharge_power += 1.0; });
  add("attack.key_rule", [](auto& c) {
    c.attack.key_selection.rule = net::KeyNodeRule::TopTraffic;
  });
  add("attack.key_count", [](auto& c) { c.attack.key_selection.max_count++; });
  add("attack.key_min_disconnect",
      [](auto& c) { c.attack.key_selection.min_disconnect += 1; });
  add("attack.spoofing.antenna_separation",
      [](auto& c) { c.attack.spoofing.antenna_separation += 0.01; });
  add("attack.spoofing.phase_jitter_sigma",
      [](auto& c) { c.attack.spoofing.phase_jitter_sigma += 0.01; });
  add("attack.spoofing.amplitude_imbalance",
      [](auto& c) { c.attack.spoofing.amplitude_imbalance += 0.01; });
  add("attack.spoof_mode", [](auto& c) {
    c.attack.spoof_mode = c.attack.spoof_mode == csa::SpoofMode::NoService
                              ? csa::SpoofMode::PhaseCancel
                              : csa::SpoofMode::NoService;
  });
  add("attack.partial_leak_ratio",
      [](auto& c) { c.attack.partial_leak_ratio += 0.01; });
  add("attack.window_margin", [](auto& c) { c.attack.window_margin += 60.0; });
  add("attack.lookahead", [](auto& c) { c.attack.lookahead += 60.0; });
  add("attack.campaign_deadline",
      [](auto& c) { c.attack.campaign_deadline += 60.0; });
  add("attack.campaign_slack",
      [](auto& c) { c.attack.campaign_slack += 60.0; });
  add("attack.pace_limit", [](auto& c) { c.attack.pace_limit += 1; });
  add("attack.pace_window", [](auto& c) { c.attack.pace_window += 60.0; });
  add("attack.comm_antenna_offset",
      [](auto& c) { c.attack.comm_antenna_offset += 0.01; });
  add("attack.battery_reserve_fraction",
      [](auto& c) { c.attack.battery_reserve_fraction += 0.01; });
  add("attack.territory", [](auto& c) { c.attack.territory.push_back(3); });

  // --- benign ---
  add("benign.charger.speed", [](auto& c) { c.benign.charger.speed += 0.1; });
  add("benign.policy", [](auto& c) {
    c.benign.policy = c.benign.policy == mc::SchedulePolicy::Fcfs
                          ? mc::SchedulePolicy::Edf
                          : mc::SchedulePolicy::Fcfs;
  });
  add("benign.preempt_travel",
      [](auto& c) { c.benign.preempt_travel = !c.benign.preempt_travel; });
  add("benign.battery_reserve_fraction",
      [](auto& c) { c.benign.battery_reserve_fraction += 0.01; });
  add("benign.territory", [](auto& c) { c.benign.territory.push_back(3); });
  add("benign.tour_batch", [](auto& c) { c.benign.tour_batch += 1; });
  add("benign.tour_max_wait",
      [](auto& c) { c.benign.tour_max_wait += 60.0; });

  // --- faults ---
  add("faults.mc_breakdown_mtbf",
      [](auto& c) { c.faults.mc_breakdown_mtbf = 9'999.0; });
  add("faults.mc_repair_mean",
      [](auto& c) { c.faults.mc_repair_mean += 60.0; });
  add("faults.mc_budget_loss",
      [](auto& c) { c.faults.mc_budget_loss += 0.05; });
  add("faults.mc_permanent_at",
      [](auto& c) { c.faults.mc_permanent_at = 7'200.0; });
  add("faults.node_burst_mtbf",
      [](auto& c) { c.faults.node_burst_mtbf = 9'999.0; });
  add("faults.node_burst_size", [](auto& c) { c.faults.node_burst_size += 1; });
  add("faults.phase_noise_mtbf",
      [](auto& c) { c.faults.phase_noise_mtbf = 9'999.0; });
  add("faults.phase_noise_duration",
      [](auto& c) { c.faults.phase_noise_duration += 60.0; });
  add("faults.phase_noise_scale",
      [](auto& c) { c.faults.phase_noise_scale += 1.0; });
  add("faults.escalation_drop_prob",
      [](auto& c) { c.faults.escalation_drop_prob = 0.25; });
  add("faults.escalation_delay_prob",
      [](auto& c) { c.faults.escalation_delay_prob = 0.25; });
  add("faults.escalation_delay_max",
      [](auto& c) { c.faults.escalation_delay_max += 60.0; });
  add("faults.battery_drift_mtbf",
      [](auto& c) { c.faults.battery_drift_mtbf = 9'999.0; });
  add("faults.battery_drift_power",
      [](auto& c) { c.faults.battery_drift_power += 1e-3; });
  add("faults.battery_drift_duration",
      [](auto& c) { c.faults.battery_drift_duration += 60.0; });

  // --- top level ---
  add("horizon", [](auto& c) { c.horizon += 60.0; });
  add("hardened_detectors", [](auto& c) { c.hardened_detectors = true; });
  add("fleet_size", [](auto& c) { c.fleet_size = 2; });
  add("fleet_compromised", [](auto& c) {
    c.fleet_size = 3;
    c.fleet_compromised = 1;
  });

  // --- policy ---
  add("policy.attacker.kind", [](auto& c) {
    c.policy.attacker.kind = policy::AttackPolicyKind::Ucb;
  });
  add("policy.attacker.epsilon",
      [](auto& c) { c.policy.attacker.epsilon += 0.05; });
  add("policy.attacker.ucb_c", [](auto& c) { c.policy.attacker.ucb_c += 0.5; });
  add("policy.attacker.epoch", [](auto& c) { c.policy.attacker.epoch += 60.0; });
  add("policy.attacker.risk_weight",
      [](auto& c) { c.policy.attacker.risk_weight += 1.0; });
  add("policy.attacker.risk_budget",
      [](auto& c) { c.policy.attacker.risk_budget += 1; });
  add("policy.defender.kind", [](auto& c) {
    c.policy.defender.kind = policy::DefenderPolicyKind::Adaptive;
  });
  add("policy.defender.window",
      [](auto& c) { c.policy.defender.window += 60.0; });
  add("policy.defender.quantile",
      [](auto& c) { c.policy.defender.quantile += 0.5; });
  add("policy.defender.min_samples",
      [](auto& c) { c.policy.defender.min_samples += 1; });

  for (const auto& [name, cfg] : mutants) {
    EXPECT_NE(scenario_digest(cfg, analysis::ChargerMode::Attack), base_digest)
        << "digest blind to " << name;
  }
}

// ---------------------------------------------------------------------------
// LruCore
// ---------------------------------------------------------------------------

MissionResponse response_for(std::uint64_t tag) {
  MissionResponse r;
  r.status = MissionStatus::kOk;
  r.outcome.result_digest = tag;
  return r;
}

TEST(LruCore, InsertLookupRoundTrip) {
  LruCore cache;
  cache.init(4);
  EXPECT_EQ(cache.capacity(), 4u);
  const MissionKey key{42, 7};
  EXPECT_TRUE(cache.insert(key, response_for(1)) == false);  // no eviction
  MissionResponse out;
  ASSERT_TRUE(cache.lookup(key, out));
  EXPECT_EQ(out.outcome.result_digest, 1u);
  EXPECT_FALSE(cache.lookup(MissionKey{42, 8}, out));
  EXPECT_FALSE(cache.lookup(MissionKey{43, 7}, out));
}

TEST(LruCore, EvictsLeastRecentlyUsed) {
  LruCore cache;
  cache.init(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(cache.insert(MissionKey{i, 0}, response_for(i)));
  }
  // Touch key 0 so key 1 becomes the LRU entry.
  MissionResponse out;
  ASSERT_TRUE(cache.lookup(MissionKey{0, 0}, out));
  EXPECT_TRUE(cache.insert(MissionKey{3, 0}, response_for(3)));  // evicts 1
  EXPECT_FALSE(cache.lookup(MissionKey{1, 0}, out));
  EXPECT_TRUE(cache.lookup(MissionKey{0, 0}, out));
  EXPECT_TRUE(cache.lookup(MissionKey{2, 0}, out));
  EXPECT_TRUE(cache.lookup(MissionKey{3, 0}, out));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCore, RefreshTouchesRecencyWithoutEviction) {
  LruCore cache;
  cache.init(2);
  cache.insert(MissionKey{1, 0}, response_for(1));
  cache.insert(MissionKey{2, 0}, response_for(2));
  // Re-inserting key 1 must not evict; it becomes MRU, so inserting key 3
  // evicts key 2.
  EXPECT_FALSE(cache.insert(MissionKey{1, 0}, response_for(1)));
  EXPECT_TRUE(cache.insert(MissionKey{3, 0}, response_for(3)));
  MissionResponse out;
  EXPECT_TRUE(cache.lookup(MissionKey{1, 0}, out));
  EXPECT_FALSE(cache.lookup(MissionKey{2, 0}, out));
}

TEST(LruCore, ZeroCapacityDisables) {
  LruCore cache;
  cache.init(0);
  EXPECT_FALSE(cache.insert(MissionKey{1, 0}, response_for(1)));
  MissionResponse out;
  EXPECT_FALSE(cache.lookup(MissionKey{1, 0}, out));
}

// ---------------------------------------------------------------------------
// MissionService
// ---------------------------------------------------------------------------

ServiceOptions quick_options(std::size_t threads = 2) {
  ServiceOptions opt;
  opt.threads = threads;
  opt.cache_capacity = 64;
  opt.shards = 4;
  opt.queue_limit = 64;
  return opt;
}

TEST(MissionService, CacheHitIsByteIdenticalToExecution) {
  MissionService service(quick_options());
  const MissionRequest request = quick_request(11);

  const MissionResponse first = service.submit(request);
  ASSERT_EQ(first.status, MissionStatus::kOk);
  EXPECT_EQ(first.route, MissionRoute::kExecuted);
  EXPECT_EQ(first.outcome.seed, 11u);
  EXPECT_GT(first.outcome.events_executed, 0u);

  const MissionResponse second = service.submit(request);
  ASSERT_EQ(second.status, MissionStatus::kOk);
  EXPECT_EQ(second.route, MissionRoute::kCacheHit);
  EXPECT_TRUE(same_outcome(first.outcome, second.outcome));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(MissionService, MatchesStandaloneRun) {
  MissionService service(quick_options());
  const MissionRequest request = quick_request(5);
  const MissionResponse served = service.submit(request);
  ASSERT_EQ(served.status, MissionStatus::kOk);

  const analysis::ScenarioResult direct =
      analysis::run_mission(request.config, request.mode);
  const MissionOutcome expected = make_outcome(
      scenario_digest(request.config, request.mode), 5, direct);
  EXPECT_TRUE(same_outcome(served.outcome, expected));
}

TEST(MissionService, DifferentSeedsExecuteSeparately) {
  MissionService service(quick_options());
  const MissionResponse a = service.submit(quick_request(1));
  const MissionResponse b = service.submit(quick_request(2));
  ASSERT_EQ(a.status, MissionStatus::kOk);
  ASSERT_EQ(b.status, MissionStatus::kOk);
  EXPECT_EQ(a.outcome.scenario_digest, b.outcome.scenario_digest);
  EXPECT_NE(a.outcome.result_digest, b.outcome.result_digest);
  EXPECT_EQ(service.stats().executions, 2u);
}

TEST(MissionService, CoalescesConcurrentDuplicatesOntoOneExecution) {
  MissionService service(quick_options(/*threads=*/1));

  // Park the execution until a duplicate has provably joined the flight.
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  service.set_execution_hook([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  });

  const MissionRequest request = quick_request(21);
  MissionResponse first, second;
  std::thread a([&] { first = service.submit(request); });
  std::thread b([&] { second = service.submit(request); });

  // One of the two created the flight; the other must coalesce onto it.
  while (service.stats().coalesced < 1) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  a.join();
  b.join();

  EXPECT_EQ(first.status, MissionStatus::kOk);
  EXPECT_EQ(second.status, MissionStatus::kOk);
  EXPECT_TRUE(same_outcome(first.outcome, second.outcome));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  // Exactly one of the two routes is the execution; the other joined it.
  EXPECT_TRUE((first.route == MissionRoute::kExecuted &&
               second.route == MissionRoute::kCoalesced) ||
              (first.route == MissionRoute::kCoalesced &&
               second.route == MissionRoute::kExecuted));
}

TEST(MissionService, ShedsDeterministicallyWhenQueueFull) {
  ServiceOptions opt = quick_options(/*threads=*/1);
  opt.queue_limit = 1;
  MissionService service(opt);

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  service.set_execution_hook([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  });

  MissionResponse first;
  std::thread a([&] { first = service.submit(quick_request(1)); });
  while (service.stats().queue_peak < 1) {
    std::this_thread::yield();
  }

  // The queue slot is held by the parked mission: a different scenario must
  // shed — deterministically, the ARRIVING request.
  const MissionResponse shed = service.submit(quick_request(2));
  EXPECT_EQ(shed.status, MissionStatus::kShed);
  EXPECT_EQ(shed.route, MissionRoute::kNone);
  EXPECT_EQ(shed.outcome.seed, 2u);

  // A duplicate of the parked mission coalesces instead of shedding: joins
  // hold no queue slot.
  MissionResponse joined;
  std::thread b([&] { joined = service.submit(quick_request(1)); });
  while (service.stats().coalesced < 1) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  a.join();
  b.join();

  EXPECT_EQ(first.status, MissionStatus::kOk);
  EXPECT_EQ(joined.status, MissionStatus::kOk);
  EXPECT_TRUE(same_outcome(first.outcome, joined.outcome));
  EXPECT_EQ(service.stats().shed, 1u);
  EXPECT_EQ(service.stats().executions, 1u);
}

TEST(MissionService, RejectsAfterShutdown) {
  MissionService service(quick_options());
  service.submit(quick_request(1));
  service.shutdown();
  const MissionResponse resp = service.submit(quick_request(2));
  EXPECT_EQ(resp.status, MissionStatus::kClosed);
  EXPECT_EQ(resp.outcome.seed, 2u);
}

TEST(MissionService, BatchKeepsOrderAndCoalescesDuplicates) {
  MissionService service(quick_options());

  std::vector<MissionRequest> requests;
  for (const std::uint64_t seed : {3u, 1u, 3u, 2u, 1u, 3u}) {
    requests.push_back(quick_request(seed));
  }
  const std::vector<MissionResponse> responses =
      service.submit_batch(requests);
  ASSERT_EQ(responses.size(), requests.size());

  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, MissionStatus::kOk) << "request " << i;
    EXPECT_EQ(responses[i].outcome.seed, requests[i].config.seed);
  }
  // Duplicates inside the batch are byte-identical however they were routed.
  EXPECT_TRUE(same_outcome(responses[0].outcome, responses[2].outcome));
  EXPECT_TRUE(same_outcome(responses[2].outcome, responses[5].outcome));
  EXPECT_TRUE(same_outcome(responses[1].outcome, responses[4].outcome));
  // 3 unique seeds -> exactly 3 executions; the rest hit or coalesced.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.executions, 3u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 3u);
  EXPECT_EQ(stats.requests,
            stats.executions + stats.cache_hits + stats.coalesced + stats.shed);
}

TEST(MissionService, AutoSeedStreamsAreDeterministicPerTenant) {
  std::vector<std::uint64_t> tenant1_a, tenant1_b, tenant2;
  for (int round = 0; round < 2; ++round) {
    ServiceOptions opt = quick_options();
    opt.base_seed = 77;
    MissionService service(opt);
    auto run = [&](std::uint64_t tenant) {
      MissionRequest request = quick_request(0);
      request.tenant = tenant;
      request.auto_seed = true;
      return service.submit(request).outcome.seed;
    };
    std::vector<std::uint64_t>& t1 = round == 0 ? tenant1_a : tenant1_b;
    for (int i = 0; i < 3; ++i) t1.push_back(run(1));
    if (round == 0) {
      for (int i = 0; i < 3; ++i) tenant2.push_back(run(2));
    }
  }
  // Same service config, same tenant, same arrival order => same seeds.
  EXPECT_EQ(tenant1_a, tenant1_b);
  // Streams are distinct per tenant and non-repeating within a tenant.
  EXPECT_NE(tenant1_a, tenant2);
  EXPECT_NE(tenant1_a[0], tenant1_a[1]);
}

TEST(MissionService, CacheDisabledStillCoalescesButReExecutes) {
  ServiceOptions opt = quick_options();
  opt.cache_capacity = 0;
  MissionService service(opt);
  const MissionRequest request = quick_request(9);
  const MissionResponse a = service.submit(request);
  const MissionResponse b = service.submit(request);
  EXPECT_EQ(a.route, MissionRoute::kExecuted);
  EXPECT_EQ(b.route, MissionRoute::kExecuted);
  EXPECT_TRUE(same_outcome(a.outcome, b.outcome));
  EXPECT_EQ(service.stats().executions, 2u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(MissionService, EvictionsAreCountedAndBounded) {
  ServiceOptions opt = quick_options();
  opt.cache_capacity = 4;  // 4 shards => 1 entry each
  opt.shards = 4;
  MissionService service(opt);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    service.submit(quick_request(seed));
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.executions, 12u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(MissionService, InvalidConfigYieldsInvalidNotCrash) {
  MissionService service(quick_options());
  MissionRequest request = quick_request(1);
  // Reaches execution, then topology generation throws (ConfigError).
  request.config.topology.max_attempts = 0;
  const MissionResponse resp = service.submit(request);
  EXPECT_EQ(resp.status, MissionStatus::kInvalid);
  // The service remains healthy afterwards.
  EXPECT_EQ(service.submit(quick_request(2)).status, MissionStatus::kOk);
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Protocol, JsonRequestRoundTrip) {
  WireRequest in;
  in.id = 7;
  in.tenant = 3;
  in.repro = "mode=attack;seed=42;topology.node_count=20";
  const std::string line = encode_request_json(in);
  WireRequest out;
  std::string error;
  ASSERT_TRUE(decode_request_json(line, out, error)) << error;
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.repro, in.repro);
}

WireResponse sample_response() {
  WireResponse wire;
  wire.id = 99;
  wire.response.status = MissionStatus::kOk;
  wire.response.route = MissionRoute::kCacheHit;
  MissionOutcome& o = wire.response.outcome;
  o.scenario_digest = 0xdeadbeefcafef00dull;  // exercises the full 64 bits
  o.seed = (1ull << 60) + 17;
  o.result_digest = 0xffffffffffffffffull;
  o.node_count = 20;
  o.alive_at_end = 18;
  o.keys_total = 5;
  o.keys_dead = 2;
  o.sessions_genuine = 31;
  o.sessions_spoofed = 7;
  o.escalations = 3;
  o.deaths_total = 2;
  o.plans_computed = 11;
  o.events_executed = 123'456;
  o.detected = 1;
  o.detection_time = 3'600.25;
  o.utility_delivered = 1.25e6;
  std::snprintf(o.detector, sizeof(o.detector), "coulomb");
  return wire;
}

TEST(Protocol, JsonResponseRoundTripPreservesFull64BitDigests) {
  const WireResponse in = sample_response();
  const std::string line = encode_response_json(in);
  WireResponse out;
  std::string error;
  ASSERT_TRUE(decode_response_json(line, out, error)) << error;
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.response.status, in.response.status);
  EXPECT_EQ(out.response.route, in.response.route);
  EXPECT_TRUE(same_outcome(out.response.outcome, in.response.outcome));
}

TEST(Protocol, BinaryFramesRoundTripByteExactly) {
  WireRequest rin;
  rin.id = 5;
  rin.tenant = 2;
  rin.repro = "mode=benign;seed=8";
  std::string payload;
  encode_request_frame(rin, payload);
  WireRequest rout;
  std::string error;
  ASSERT_TRUE(decode_request_frame(payload, rout, error)) << error;
  EXPECT_EQ(rout.id, rin.id);
  EXPECT_EQ(rout.tenant, rin.tenant);
  EXPECT_EQ(rout.repro, rin.repro);

  const WireResponse win = sample_response();
  encode_response_frame(win, payload);
  // Deterministic encoding: same response, same bytes.
  std::string payload2;
  encode_response_frame(win, payload2);
  EXPECT_EQ(payload, payload2);
  WireResponse wout;
  ASSERT_TRUE(decode_response_frame(payload, wout, error)) << error;
  EXPECT_EQ(wout.id, win.id);
  EXPECT_TRUE(same_outcome(wout.response.outcome, win.response.outcome));
}

TEST(Protocol, RejectsMalformedInput) {
  WireRequest req;
  WireResponse resp;
  std::string error;
  EXPECT_FALSE(decode_request_json("not json", req, error));
  EXPECT_FALSE(decode_request_json("{\"id\":}", req, error));
  EXPECT_FALSE(decode_request_json("{\"tenant\":1}", req, error));  // no id
  EXPECT_FALSE(decode_request_json("{\"id\":1,\"repro\":{}}", req, error));
  EXPECT_FALSE(decode_request_json("{\"id\":\"x\",\"repro\":\"a=1\"}", req,
                                   error));
  EXPECT_FALSE(decode_response_json("{\"id\":1,\"status\":\"bogus\"}", resp,
                                    error));
  EXPECT_FALSE(decode_request_frame("abc", req, error));  // truncated
  EXPECT_FALSE(decode_response_frame(std::string(10, '\0'), resp, error));
}

TEST(Protocol, ToMissionRequestResolvesReproLines) {
  WireRequest wire;
  wire.tenant = 4;
  wire.repro = "mode=benign;seed=31;topology.node_count=24;horizon=7200";
  const MissionRequest request = to_mission_request(wire);
  EXPECT_EQ(request.mode, analysis::ChargerMode::Benign);
  EXPECT_EQ(request.tenant, 4u);
  EXPECT_EQ(request.config.seed, 31u);
  EXPECT_EQ(request.config.topology.node_count, 24u);
  EXPECT_DOUBLE_EQ(request.config.horizon, 7'200.0);

  wire.repro = "mode=attack;bogus.key=1";
  EXPECT_THROW(to_mission_request(wire), ConfigError);
  wire.repro = "mode=sideways;seed=1";
  EXPECT_THROW(to_mission_request(wire), PreconditionError);
}

// ---------------------------------------------------------------------------
// Socket server
// ---------------------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/wrsn_svc_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

TEST(MissionServer, JsonAndBinaryClientsMatchDirectExecution) {
  MissionService service(quick_options());
  const std::string path = test_socket_path("rt");
  MissionServer server(service, path);
  server.start();

  const std::string repro = quick_repro(33);
  const auto [cfg, mode] =
      analysis::resolve_overrides(analysis::parse_repro(repro));
  const analysis::ScenarioResult direct = analysis::run_mission(cfg, mode);
  const std::uint64_t expected = analysis::digest_result(direct);

  MissionClient json_client(path, /*binary=*/false);
  const MissionResponse via_json = json_client.call(1, repro);
  ASSERT_EQ(via_json.status, MissionStatus::kOk);
  EXPECT_EQ(via_json.route, MissionRoute::kExecuted);
  EXPECT_EQ(via_json.outcome.result_digest, expected);

  MissionClient binary_client(path, /*binary=*/true);
  const MissionResponse via_binary = binary_client.call(1, repro);
  ASSERT_EQ(via_binary.status, MissionStatus::kOk);
  EXPECT_EQ(via_binary.route, MissionRoute::kCacheHit);
  EXPECT_TRUE(same_outcome(via_json.outcome, via_binary.outcome));

  // Malformed repro: explicit kInvalid response, connection stays usable.
  const MissionResponse bad = json_client.call(1, "mode=attack;bogus=1");
  EXPECT_EQ(bad.status, MissionStatus::kInvalid);
  EXPECT_EQ(json_client.call(1, repro).status, MissionStatus::kOk);

  EXPECT_EQ(server.connections(), 2u);
  server.stop();
}

TEST(MissionServer, StopIsIdempotentAndUnlinksSocket) {
  MissionService service(quick_options());
  const std::string path = test_socket_path("stop");
  {
    MissionServer server(service, path);
    server.start();
    MissionClient client(path);
    EXPECT_EQ(client.call(1, quick_repro(1)).status, MissionStatus::kOk);
    server.stop();
    server.stop();
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
  }
  // Re-binding the same path works (stale-socket unlink).
  MissionServer again(service, path);
  again.start();
  MissionClient client(path);
  EXPECT_EQ(client.call(1, quick_repro(1)).status, MissionStatus::kOk);
}

}  // namespace
}  // namespace wrsn::svc
