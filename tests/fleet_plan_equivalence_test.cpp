// FleetPlanEquivalence: the cooperative fleet planner (slack-based
// RouteState, shared pair-distance memo, CELF fills) must produce plans
// IDENTICAL to the retained naive sequential implementation
// (core/fleet_reference.hpp) on every instance — same per-charger visit
// sequences, bit-equal utilities and completion times, same orphan pool and
// auction outcomes.  Mirrors the single-charger PlanEquivalence discipline
// (tests/property_test.cpp): 3 instance families x 40 seeds = 120 randomized
// instances, including permanent-charger-loss handoff shapes (dead chargers
// whose would-be stops re-enter the auction) and clustered instances whose
// empty cells force the utility spill auction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "common/rng.hpp"
#include "core/fleet_planner.hpp"
#include "core/fleet_reference.hpp"
#include "core/planners.hpp"

namespace wrsn::csa {
namespace {

// Random fleet problem.  Stops get distinct node ids (node = index) so the
// planner's node-pair distance memo path is exercised, not the kInvalidNode
// fallback.
FleetInstance random_fleet(Rng& gen, int chargers, int keys, int stops) {
  FleetInstance inst;
  for (int m = 0; m < chargers; ++m) {
    FleetCharger c;
    c.start_position = {gen.uniform(-150.0, 150.0),
                        gen.uniform(-150.0, 150.0)};
    c.start_time = gen.uniform(0.0, 50.0);
    c.speed = gen.uniform(1.0, 8.0);
    inst.chargers.push_back(c);
  }
  for (int i = 0; i < keys + stops; ++i) {
    Stop s;
    s.node = static_cast<net::NodeId>(i);
    s.position = {gen.uniform(-200.0, 200.0), gen.uniform(-200.0, 200.0)};
    s.window_open = gen.uniform(0.0, 150.0);
    s.window_close = s.window_open + gen.uniform(10.0, 500.0);
    s.service_time = gen.uniform(0.0, 15.0);
    s.is_key = i < keys;
    s.utility = s.is_key ? 0.0 : gen.uniform(0.5, 10.0);
    inst.stops.push_back(s);
  }
  return inst;
}

void expect_fleet_plans_identical(const FleetInstance& inst,
                                  const char* family) {
  const FleetPlan fast = CooperativeFleetPlanner().plan(inst);
  const FleetPlan ref = reference::NaiveFleetPlanner().plan(inst);

  ASSERT_EQ(fast.plans.size(), inst.chargers.size()) << family;
  ASSERT_EQ(ref.plans.size(), inst.chargers.size()) << family;
  for (std::size_t m = 0; m < inst.chargers.size(); ++m) {
    ASSERT_EQ(fast.plans[m].visits.size(), ref.plans[m].visits.size())
        << family << " charger " << m;
    for (std::size_t i = 0; i < fast.plans[m].visits.size(); ++i) {
      ASSERT_EQ(fast.plans[m].visits[i].stop_index,
                ref.plans[m].visits[i].stop_index)
          << family << " charger " << m << " visit " << i;
    }
    // Same visit order + same instance => bit-equal evaluation.
    EXPECT_EQ(fast.plans[m].utility, ref.plans[m].utility) << family;
    EXPECT_EQ(fast.plans[m].completion_time, ref.plans[m].completion_time)
        << family;
    EXPECT_EQ(fast.plans[m].keys_scheduled, ref.plans[m].keys_scheduled)
        << family;
  }
  EXPECT_EQ(fast.utility, ref.utility) << family;
  EXPECT_EQ(fast.keys_scheduled, ref.keys_scheduled) << family;
  EXPECT_EQ(fast.keys_total, ref.keys_total) << family;
  EXPECT_EQ(fast.auction_moves, ref.auction_moves) << family;
  EXPECT_EQ(fast.unscheduled_keys, ref.unscheduled_keys) << family;
  EXPECT_EQ(fast.keys_scheduled + fast.unscheduled_keys.size(),
            fast.keys_total)
      << family;
}

class FleetPlanEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FleetPlanEquivalence, CooperativePlannerMatchesNaiveReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());

  {  // Mixed fleet: 3 chargers over a generic shared pool.
    Rng gen(seed * 613 + 17);
    expect_fleet_plans_identical(random_fleet(gen, 3, 5, 18), "mixed");
  }
  {  // Permanent-loss handoff shape: 1-2 of 4 chargers are dead; their
     // would-be stops must re-seed and re-auction onto the survivors.
    Rng gen(seed * 331 + 7);
    FleetInstance inst = random_fleet(gen, 4, 6, 16);
    inst.chargers[std::size_t(gen.uniform_int(0, 3))].alive = false;
    if (gen.bernoulli(0.5)) inst.chargers[0].alive = false;
    if (std::none_of(inst.chargers.begin(), inst.chargers.end(),
                     [](const FleetCharger& c) { return c.alive; })) {
      inst.chargers[3].alive = true;
    }
    expect_fleet_plans_identical(inst, "dead-charger");
  }
  {  // Clustered: every stop sits in charger 0's cell, cells 1-2 are empty
     // and tight windows push leftovers through the spill auction.
    Rng gen(seed * 977 + 29);
    FleetInstance inst = random_fleet(gen, 3, 4, 14);
    inst.chargers[0].start_position = {0.0, 0.0};
    inst.chargers[1].start_position = {900.0, 0.0};
    inst.chargers[2].start_position = {0.0, 900.0};
    for (Stop& s : inst.stops) {
      s.position = {gen.uniform(-60.0, 60.0), gen.uniform(-60.0, 60.0)};
      s.window_close = s.window_open + gen.uniform(5.0, 120.0);
    }
    expect_fleet_plans_identical(inst, "clustered-empty-cell");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDeadAndClustered, FleetPlanEquivalence,
                         ::testing::Range(0, 40));

// A fleet of one is the single-charger problem: the cooperative planner
// must reproduce CsaPlanner bit-for-bit.  (Both sort keys EDF; the fleet's
// (window_close, index) total order only differs on exact deadline ties,
// which the continuous random generator never produces.)
TEST(FleetPlanEquivalenceTargeted, SingleChargerFleetMatchesCsaPlanner) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng gen(seed * 127 + 3);
    const FleetInstance fleet = random_fleet(gen, 1, 4, 14);

    TideInstance tide;
    tide.start_position = fleet.chargers[0].start_position;
    tide.start_time = fleet.chargers[0].start_time;
    tide.speed = fleet.chargers[0].speed;
    tide.stops = fleet.stops;

    const FleetPlan fp = CooperativeFleetPlanner().plan(fleet);
    Rng planner_rng(1);
    const Plan solo = CsaPlanner().plan(tide, planner_rng);

    ASSERT_EQ(fp.plans.size(), 1u);
    ASSERT_EQ(fp.plans[0].visits.size(), solo.visits.size());
    for (std::size_t i = 0; i < solo.visits.size(); ++i) {
      EXPECT_EQ(fp.plans[0].visits[i].stop_index, solo.visits[i].stop_index);
    }
    EXPECT_EQ(fp.plans[0].utility, solo.utility);
    EXPECT_EQ(fp.plans[0].completion_time, solo.completion_time);
    EXPECT_EQ(fp.keys_scheduled, solo.keys_scheduled);
    EXPECT_EQ(fp.auction_moves, 0u);
  }
}

TEST(FleetPlanEquivalenceTargeted, NoStopServedTwiceAcrossFleet) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng gen(seed * 59 + 11);
    const FleetInstance inst = random_fleet(gen, 4, 6, 20);
    const FleetPlan fp = CooperativeFleetPlanner().plan(inst);
    std::set<std::size_t> served;
    for (const Plan& p : fp.plans) {
      for (const Visit& v : p.visits) {
        EXPECT_TRUE(served.insert(v.stop_index).second)
            << "stop " << v.stop_index << " served by two chargers (seed "
            << seed << ")";
      }
    }
  }
}

TEST(FleetPlanEquivalenceTargeted, AllChargersDeadLeavesEveryKeyOrphaned) {
  Rng gen(99);
  FleetInstance inst = random_fleet(gen, 3, 5, 10);
  for (FleetCharger& c : inst.chargers) c.alive = false;
  expect_fleet_plans_identical(inst, "all-dead");

  const FleetPlan fp = CooperativeFleetPlanner().plan(inst);
  EXPECT_EQ(fp.keys_scheduled, 0u);
  EXPECT_EQ(fp.unscheduled_keys.size(), inst.key_count());
  EXPECT_EQ(fp.utility, 0.0);
  EXPECT_EQ(fp.auction_moves, 0u);
  for (const Plan& p : fp.plans) {
    EXPECT_TRUE(p.visits.empty());
    EXPECT_EQ(p.keys_total, fp.keys_total);
  }
}

// The handoff contract: killing a charger must not silently drop the live
// key windows of its cell — with generous windows the survivor picks every
// one of them up through the re-seeded auction.
TEST(FleetPlanEquivalenceTargeted, DeadChargerKeysReenterTheAuction) {
  FleetInstance inst;
  inst.chargers.push_back({{0.0, 0.0}, 0.0, 5.0, /*alive=*/false});
  inst.chargers.push_back({{200.0, 0.0}, 0.0, 5.0, /*alive=*/true});
  for (int i = 0; i < 6; ++i) {
    Stop s;
    s.node = static_cast<net::NodeId>(i);
    s.position = {double(10 * i), 5.0};  // all in the dead charger's cell
    s.window_open = 0.0;
    s.window_close = 10'000.0;  // generous: feasible from the far depot
    s.service_time = 10.0;
    s.is_key = true;
    inst.stops.push_back(s);
  }
  expect_fleet_plans_identical(inst, "handoff-keys");

  const FleetPlan fp = CooperativeFleetPlanner().plan(inst);
  EXPECT_TRUE(fp.plans[0].visits.empty());
  EXPECT_TRUE(fp.covers_all_keys());
  EXPECT_TRUE(fp.unscheduled_keys.empty());
  EXPECT_EQ(fp.plans[1].visits.size(), 6u);
}

}  // namespace
}  // namespace wrsn::csa
