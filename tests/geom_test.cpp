// Tests for 2-D geometry primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "geom/vec2.hpp"

namespace wrsn::geom {
namespace {

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
  Vec2 c = a;
  c += b;
  EXPECT_EQ(c, Vec2(4.0, -2.0));
}

TEST(Vec2, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(distance({2.0, 7.0}, {-1.0, 3.0}),
                   distance({-1.0, 3.0}, {2.0, 7.0}));
}

TEST(Vec2, TriangleInequalityHolds) {
  const Vec2 pts[] = {{0, 0}, {5, 1}, {2, 9}, {-3, 4}, {7, -2}};
  for (const Vec2& a : pts) {
    for (const Vec2& b : pts) {
      for (const Vec2& c : pts) {
        EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-12);
      }
    }
  }
}

TEST(Lerp, EndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec2(5.0, 10.0));
}

TEST(Lerp, ClampsOutOfRangeT) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  EXPECT_EQ(lerp(a, b, -1.0), a);
  EXPECT_EQ(lerp(a, b, 2.0), b);
}

TEST(Rect, DimensionsAndCenter) {
  const Rect r{{1.0, 2.0}, {5.0, 10.0}};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_EQ(r.center(), Vec2(3.0, 6.0));
}

TEST(Rect, ContainsBoundaryAndInterior) {
  const Rect r{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({10.0, 10.0}));
  EXPECT_FALSE(r.contains({10.01, 5.0}));
  EXPECT_FALSE(r.contains({5.0, -0.01}));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

// Property sweep: |a+b|^2 = |a|^2 + 2 a.b + |b|^2.
class Vec2Algebra : public ::testing::TestWithParam<int> {};

TEST_P(Vec2Algebra, NormExpansionIdentity) {
  const int k = GetParam();
  const Vec2 a{std::sin(k * 1.7), std::cos(k * 0.9) * k};
  const Vec2 b{k * 0.3, std::sin(k * 2.1) * 3.0};
  const double lhs = (a + b).norm_sq();
  const double rhs = a.norm_sq() + 2.0 * a.dot(b) + b.norm_sq();
  EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::abs(rhs)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Vec2Algebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace wrsn::geom
