// Service-vs-standalone equivalence: sweeps fuzzer-generated scenarios
// through the batch API, the socket protocol, and direct execution, and
// requires equal result digests everywhere — at 1, 2, and 8 worker threads,
// with duplicate-heavy interleaving so cache hits and coalesced joins are
// exercised on real missions, not just unit fixtures.
//
// This is the PR's acceptance test for the mission service's core claim:
// responses are bit-identical to standalone runs whichever route served
// them, at any thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "analysis/fuzz.hpp"
#include "analysis/scenario.hpp"
#include "common/rng.hpp"
#include "svc/digest.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace wrsn::svc {
namespace {

/// Scenario count: >= 100 per the acceptance criteria.
constexpr std::size_t kScenarios = 104;

struct Case {
  std::string repro;
  MissionRequest request;
  std::uint64_t direct_digest = 0;  ///< digest_result of the standalone run
  MissionOutcome direct_outcome;
};

/// Fuzzer-generated scenarios, horizon-capped so the full sweep (1 direct
/// + 3 thread counts + socket replay per scenario) stays inside test time.
/// The cap is an override like any other — the configs remain fuzzed.
std::vector<Case>& cases() {
  static std::vector<Case>* cached = [] {
    auto* out = new std::vector<Case>;
    out->reserve(kScenarios);
    Rng gen(20'260'808);
    for (std::size_t i = 0; i < kScenarios; ++i) {
      analysis::FuzzOverrides overrides =
          analysis::generate_fuzz_overrides(gen);
      overrides["topology.node_count"] = "16";
      overrides["topology.region_size"] = "160";
      overrides["horizon"] = "7200";
      Case c;
      c.repro = analysis::format_repro(overrides);
      auto [config, mode] = analysis::resolve_overrides(overrides);
      c.request.config = config;
      c.request.mode = mode;

      const analysis::ScenarioResult direct =
          analysis::run_mission(config, mode);
      c.direct_digest = analysis::digest_result(direct);
      c.direct_outcome = make_outcome(scenario_digest(config, mode),
                                      config.seed, direct);
      out->push_back(std::move(c));
    }
    return out;
  }();
  return *cached;
}

bool same_outcome(const MissionOutcome& a, const MissionOutcome& b) {
  return std::memcmp(&a, &b, sizeof(MissionOutcome)) == 0;
}

/// Builds the duplicate-heavy request stream: every scenario once, then the
/// first half again (cache hits / coalesced joins on real missions), with
/// adjacent duplicates so batch staging coalesces some of them in flight.
std::vector<std::size_t> request_stream() {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < cases().size(); ++i) {
    order.push_back(i);
    if (i % 2 == 0) order.push_back(i);  // immediate duplicate
  }
  for (std::size_t i = 0; i < cases().size() / 2; ++i) order.push_back(i);
  return order;
}

void expect_equivalent_at(std::size_t threads) {
  ServiceOptions options;
  options.threads = threads;
  options.cache_capacity = 512;
  options.queue_limit = 512;
  MissionService service(options);

  const std::vector<std::size_t> order = request_stream();
  std::vector<MissionRequest> requests;
  requests.reserve(order.size());
  for (const std::size_t idx : order) {
    requests.push_back(cases()[idx].request);
  }
  const std::vector<MissionResponse> responses =
      service.submit_batch(requests);
  ASSERT_EQ(responses.size(), order.size());

  for (std::size_t i = 0; i < order.size(); ++i) {
    const Case& c = cases()[order[i]];
    ASSERT_EQ(responses[i].status, MissionStatus::kOk)
        << "threads=" << threads << " REPRO " << c.repro;
    EXPECT_EQ(responses[i].outcome.result_digest, c.direct_digest)
        << "threads=" << threads << " REPRO " << c.repro;
    EXPECT_TRUE(same_outcome(responses[i].outcome, c.direct_outcome))
        << "threads=" << threads << " REPRO " << c.repro;
  }

  // The duplicate-heavy stream must actually exercise the shared paths.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, order.size());
  EXPECT_EQ(stats.executions, cases().size());
  EXPECT_GT(stats.cache_hits + stats.coalesced, cases().size() / 2);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(ServiceEquivalence, BatchMatchesDirectAt1Thread) {
  expect_equivalent_at(1);
}

TEST(ServiceEquivalence, BatchMatchesDirectAt2Threads) {
  expect_equivalent_at(2);
}

TEST(ServiceEquivalence, BatchMatchesDirectAt8Threads) {
  expect_equivalent_at(8);
}

TEST(ServiceEquivalence, SocketReplayMatchesDirect) {
  ServiceOptions options;
  options.threads = 8;
  options.cache_capacity = 512;
  options.queue_limit = 512;
  MissionService service(options);
  const std::string path =
      "/tmp/wrsn_svc_equiv_" + std::to_string(::getpid()) + ".sock";
  MissionServer server(service, path);
  server.start();

  // Every scenario over the JSON protocol (the repro line is the wire
  // encoding, so this also covers parse_repro round-tripping fuzzed
  // configs), then a binary-protocol spot check on a warm cache.
  {
    MissionClient client(path, /*binary=*/false);
    for (const Case& c : cases()) {
      const MissionResponse resp = client.call(1, c.repro);
      ASSERT_EQ(resp.status, MissionStatus::kOk) << "REPRO " << c.repro;
      EXPECT_EQ(resp.outcome.result_digest, c.direct_digest)
          << "REPRO " << c.repro;
      EXPECT_TRUE(same_outcome(resp.outcome, c.direct_outcome))
          << "REPRO " << c.repro;
    }
  }
  {
    MissionClient client(path, /*binary=*/true);
    for (std::size_t i = 0; i < 16; ++i) {
      const Case& c = cases()[i];
      const MissionResponse resp = client.call(2, c.repro);
      ASSERT_EQ(resp.status, MissionStatus::kOk) << "REPRO " << c.repro;
      EXPECT_EQ(resp.route, MissionRoute::kCacheHit) << "REPRO " << c.repro;
      EXPECT_TRUE(same_outcome(resp.outcome, c.direct_outcome))
          << "REPRO " << c.repro;
    }
  }
  server.stop();
}

}  // namespace
}  // namespace wrsn::svc
