// Tests for the detector suite: each defense must fire on the misbehaviour
// it models and stay silent on benign-shaped traces (false-positive checks).
#include <gtest/gtest.h>

#include <memory>

#include "analysis/fuzz.hpp"
#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "detect/adaptive.hpp"
#include "detect/detectors.hpp"
#include "net/network.hpp"
#include "wpt/charging_model.hpp"

namespace wrsn::detect {
namespace {

net::Network tiny_network() {
  std::vector<net::SensorSpec> nodes(3);
  for (net::NodeId i = 0; i < 3; ++i) {
    nodes[i].id = i;
    nodes[i].position = {10.0 * double(i + 1), 0.0};
    nodes[i].data_rate_bps = 100.0;
    nodes[i].battery_capacity = 10'800.0;
  }
  return net::Network(std::move(nodes), {0.0, 0.0}, 15.0);
}

struct Fixture {
  net::Network network = tiny_network();
  wpt::ChargingModel model;
  DetectorContext ctx;

  Fixture() {
    ctx.network = &network;
    ctx.charging_model = &model;
    ctx.nominal_dc = model.docked_dc_power();
    ctx.benign_gain_mean = 0.85;
    ctx.benign_gain_cv = 0.2;
    ctx.horizon = 100'000.0;
  }

  /// A plausible honest session: strong RF, delivered == expected.
  sim::SessionRecord benign_session(net::NodeId node, Seconds start,
                                    Joules expected = 5'000.0) const {
    sim::SessionRecord s;
    s.node = node;
    s.start = start;
    s.end = start + 1'000.0;
    s.kind = sim::SessionKind::Genuine;
    s.expected_gain = expected;
    s.delivered = expected;
    s.rf_observed = model.rf_at_distance(model.params().dock_distance);
    s.rf_neighbor_probe = model.rf_at_distance(10.0);
    s.nearest_probe_distance = 10.0;
    s.radiated = model.params().source_power * 1'000.0;
    return s;
  }

  /// A CSA phase-cancel session: strong RF at the comm antenna, zero harvest.
  sim::SessionRecord spoofed_session(net::NodeId node, Seconds start) const {
    sim::SessionRecord s = benign_session(node, start);
    s.kind = sim::SessionKind::Spoofed;
    s.delivered = 0.0;
    return s;
  }
};

TEST(RssiPresence, SilentOnStrongCarrier) {
  Fixture f;
  sim::Trace trace;
  trace.sessions.push_back(f.benign_session(0, 100.0));
  trace.sessions.push_back(f.spoofed_session(1, 2'000.0));  // carrier present
  RssiPresenceDetector detector;
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(RssiPresence, FiresOnMissingCarrier) {
  Fixture f;
  sim::Trace trace;
  sim::SessionRecord lazy = f.spoofed_session(0, 100.0);
  lazy.rf_observed = 0.0;  // silent-skip attacker radiates nothing
  trace.sessions.push_back(lazy);
  RssiPresenceDetector detector;
  const auto detection = detector.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->node, 0u);
  EXPECT_DOUBLE_EQ(detection->time, lazy.end);
}

TEST(NeighborVoting, RequiresMultipleVotes) {
  Fixture f;
  sim::Trace trace;
  sim::SessionRecord s = f.benign_session(0, 100.0);
  s.rf_neighbor_probe = 0.0;
  s.nearest_probe_distance = 5.0;
  trace.sessions.push_back(s);
  NeighborVotingDetector detector(8.0, 0.25, 2);
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
  sim::SessionRecord s2 = s;
  s2.start += 1'000.0;
  s2.end += 1'000.0;
  trace.sessions.push_back(s2);
  EXPECT_TRUE(detector.analyze(trace, f.ctx).has_value());
}

TEST(NeighborVoting, IgnoresOutOfRangeProbes) {
  Fixture f;
  sim::Trace trace;
  sim::SessionRecord s = f.benign_session(0, 100.0);
  s.rf_neighbor_probe = 0.0;
  s.nearest_probe_distance = 50.0;  // beyond the 8 m probe range
  trace.sessions.push_back(s);
  trace.sessions.push_back(s);
  trace.sessions.push_back(s);
  NeighborVotingDetector detector;
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(ServiceAudit, EscalationBudget) {
  Fixture f;
  sim::Trace trace;
  ServiceAuditDetector detector(/*escalation_limit=*/3);
  trace.escalations.push_back({100.0, 0});
  trace.escalations.push_back({200.0, 1});
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
  trace.escalations.push_back({300.0, 2});
  const auto detection = detector.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_DOUBLE_EQ(detection->time, 300.0);
}

TEST(ServiceAudit, DiedWaitingNeedsRepetition) {
  Fixture f;
  sim::Trace trace;
  ServiceAuditDetector detector(8, 3, /*died_waiting_limit=*/2);
  trace.deaths.push_back({500.0, 0, /*request_outstanding=*/true});
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
  trace.deaths.push_back({900.0, 1, true});
  const auto detection = detector.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_DOUBLE_EQ(detection->time, 900.0);
}

TEST(ServiceAudit, SilentDeathsDoNotFire) {
  Fixture f;
  sim::Trace trace;
  for (int i = 0; i < 3; ++i) {
    trace.deaths.push_back({100.0 * (i + 1), static_cast<net::NodeId>(i),
                            /*request_outstanding=*/false});
  }
  ServiceAuditDetector detector;
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(ServiceAudit, RepeatedEmergencies) {
  Fixture f;
  sim::Trace trace;
  ServiceAuditDetector detector(8, /*emergency_limit=*/3);
  for (int i = 0; i < 3; ++i) {
    trace.requests.push_back(
        {100.0 * (i + 1), 0, 500.0, /*emergency=*/true});
  }
  const auto detection = detector.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->node, 0u);
}

TEST(ServiceAudit, EmergenciesSpreadAcrossNodesDoNotFire) {
  Fixture f;
  sim::Trace trace;
  ServiceAuditDetector detector(8, 3);
  for (net::NodeId i = 0; i < 3; ++i) {
    trace.requests.push_back({100.0 * (i + 1), i % 3, 500.0, true});
  }
  // Wait: all three land on nodes 0,1,2 -> one each, below the limit.
  trace.requests[1].node = 1;
  trace.requests[2].node = 2;
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(DeathRate, FiresOnClusterWithinWindow) {
  Fixture f;
  sim::Trace trace;
  DeathRateDetector detector(/*death_threshold=*/3, /*window=*/1'000.0);
  trace.deaths.push_back({100.0, 0, false});
  trace.deaths.push_back({500.0, 1, false});
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
  trace.deaths.push_back({900.0, 2, false});
  const auto detection = detector.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_DOUBLE_EQ(detection->time, 900.0);
}

TEST(DeathRate, SpreadDeathsStayUnderThreshold) {
  Fixture f;
  sim::Trace trace;
  DeathRateDetector detector(3, 1'000.0);
  trace.deaths.push_back({100.0, 0, false});
  trace.deaths.push_back({1'500.0, 1, false});
  trace.deaths.push_back({3'000.0, 2, false});
  trace.deaths.push_back({4'500.0, 0, false});
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(DeathRate, WindowBoundaryIsOpen) {
  // The sliding window is (t - window, t]: a death exactly `window` old has
  // aged out and must NOT count.  The eviction used `<` instead of `<=`,
  // keeping the boundary death and firing one death early — calibration
  // sizes the threshold assuming the open window, so the off-by-one
  // inflated the false-positive rate on benign missions.
  Fixture f;
  DeathRateDetector detector(/*death_threshold=*/3, /*window=*/1'000.0);

  // Deaths at 0 and 400; the third lands exactly at window age of the
  // first.  Open window: {400, 1000} -> only 2 in window, no detection.
  sim::Trace boundary;
  boundary.deaths.push_back({0.0, 0, false});
  boundary.deaths.push_back({400.0, 1, false});
  boundary.deaths.push_back({1'000.0, 2, false});
  EXPECT_FALSE(detector.analyze(boundary, f.ctx).has_value());

  // One tick inside the window and the cluster is real: fires.
  sim::Trace inside;
  inside.deaths.push_back({0.0, 0, false});
  inside.deaths.push_back({400.0, 1, false});
  inside.deaths.push_back({999.999, 2, false});
  const auto detection = detector.analyze(inside, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_DOUBLE_EQ(detection->time, 999.999);
}

TEST(EnergyDelta, FiresOnSpoofedSession) {
  Fixture f;
  sim::Trace trace;
  trace.sessions.push_back(f.spoofed_session(0, 100.0));
  EnergyDeltaDetector detector(/*audit_fraction=*/1.0);
  const auto detection = detector.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->node, 0u);
}

TEST(EnergyDelta, SilentOnHonestSessions) {
  Fixture f;
  sim::Trace trace;
  for (int i = 0; i < 50; ++i) {
    trace.sessions.push_back(
        f.benign_session(static_cast<net::NodeId>(i % 3), 100.0 * i));
  }
  EnergyDeltaDetector detector(1.0);
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(EnergyDelta, IgnoresTinySessions) {
  Fixture f;
  sim::Trace trace;
  sim::SessionRecord s = f.spoofed_session(0, 100.0);
  s.expected_gain = 100.0;  // below min_expected: too small to judge
  trace.sessions.push_back(s);
  EnergyDeltaDetector detector(1.0, 0.3, /*min_expected=*/500.0);
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(EnergyDelta, AuditFractionZeroSeesNothing) {
  Fixture f;
  sim::Trace trace;
  trace.sessions.push_back(f.spoofed_session(0, 100.0));
  EnergyDeltaDetector detector(/*audit_fraction=*/0.0);
  EXPECT_FALSE(detector.analyze(trace, f.ctx).has_value());
}

TEST(Cusum, AccumulatesAcrossSessions) {
  Fixture f;
  sim::Trace trace;
  // Mild shortfalls that the single-session test would tolerate: each
  // session delivers 60 % of expectation.
  for (int i = 0; i < 10; ++i) {
    sim::SessionRecord s = f.benign_session(0, 1'000.0 * i);
    s.delivered = 0.6 * s.expected_gain;
    trace.sessions.push_back(s);
  }
  EnergyDeltaDetector single(1.0);
  EXPECT_FALSE(single.analyze(trace, f.ctx).has_value());
  CusumShortfallDetector cusum(1.0);
  EXPECT_TRUE(cusum.analyze(trace, f.ctx).has_value());
}

TEST(Cusum, SilentOnHonestTraffic) {
  Fixture f;
  sim::Trace trace;
  wrsn::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    sim::SessionRecord s =
        f.benign_session(static_cast<net::NodeId>(i % 3), 500.0 * i);
    // Honest service with calibrated expectation: ratio ~ N(1, 0.2).
    s.delivered = s.expected_gain * rng.normal(1.0, 0.2);
    if (s.delivered < 0.0) s.delivered = 0.0;
    trace.sessions.push_back(s);
  }
  CusumShortfallDetector cusum(1.0);
  EXPECT_FALSE(cusum.analyze(trace, f.ctx).has_value());
}

TEST(Suite, DeployedAndHardenedComposition) {
  const DetectorSuite deployed = make_deployed_suite();
  const DetectorSuite hardened = make_hardened_suite();
  EXPECT_EQ(deployed.size(), 4u);
  EXPECT_EQ(hardened.size(), 7u);
}

TEST(FleetCusum, CatchesOncePerVictimLeaks) {
  // Per-node CUSUM cannot accumulate a single short session per node;
  // the fleet-level statistic can.
  Fixture f;
  sim::Trace trace;
  for (int i = 0; i < 10; ++i) {
    sim::SessionRecord s =
        f.benign_session(static_cast<net::NodeId>(i % 3), 1'000.0 * i);
    s.node = static_cast<net::NodeId>(i % 3);
    s.delivered = 0.45 * s.expected_gain;
    trace.sessions.push_back(s);
  }
  CusumShortfallDetector per_node(1.0);
  FleetCusumDetector fleet(1.0);
  // 3 nodes rotate, so per-node statistics get 3-4 samples each at
  // increment 2.25 - they do eventually fire; rebuild with unique nodes.
  sim::Trace unique_trace;
  for (int i = 0; i < 10; ++i) {
    sim::SessionRecord s = trace.sessions[static_cast<std::size_t>(i)];
    // Node ids 0, 1, 2 exist in the tiny fixture network; reuse them but
    // give each node exactly ONE session by truncating to 3 sessions.
    if (i < 3) unique_trace.sessions.push_back(s);
  }
  EXPECT_FALSE(per_node.analyze(unique_trace, f.ctx).has_value());
  // Three once-per-victim shortfalls: fleet statistic = 3 * 2.25 = 6.75,
  // under the default h = 8; with ten it fires.
  EXPECT_TRUE(fleet.analyze(trace, f.ctx).has_value());
}

TEST(FleetCusum, SilentOnHonestTraffic) {
  Fixture f;
  sim::Trace trace;
  wrsn::Rng rng(13);
  for (int i = 0; i < 400; ++i) {
    sim::SessionRecord s =
        f.benign_session(static_cast<net::NodeId>(i % 3), 500.0 * i);
    s.delivered = std::max(0.0, s.expected_gain * rng.normal(1.0, 0.2));
    trace.sessions.push_back(s);
  }
  FleetCusumDetector fleet(1.0);
  EXPECT_FALSE(fleet.analyze(trace, f.ctx).has_value());
}

TEST(Suite, EarliestPicksMinimumTime) {
  std::vector<SuiteResult> results;
  results.push_back({"a", Detection{500.0, 1, "x"}});
  results.push_back({"b", std::nullopt});
  results.push_back({"c", Detection{200.0, 2, "y"}});
  const auto earliest = DetectorSuite::earliest(results);
  ASSERT_TRUE(earliest.has_value());
  EXPECT_DOUBLE_EQ(earliest->time, 200.0);
  EXPECT_EQ(earliest->node, 2u);
}

TEST(Suite, RunsAllDetectorsOnCleanTrace) {
  Fixture f;
  sim::Trace trace;
  trace.sessions.push_back(f.benign_session(0, 100.0));
  const DetectorSuite suite = make_hardened_suite();
  const auto results = suite.run(trace, f.ctx);
  EXPECT_EQ(results.size(), 7u);
  for (const SuiteResult& r : results) {
    EXPECT_FALSE(r.detection.has_value()) << r.detector;
  }
}

TEST(Suite, DeterministicAcrossRuns) {
  Fixture f;
  sim::Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.sessions.push_back(
        f.benign_session(static_cast<net::NodeId>(i % 3), 500.0 * i));
  }
  trace.sessions.push_back(f.spoofed_session(1, 99'000.0));
  const DetectorSuite suite = make_hardened_suite();
  const auto r1 = suite.run(trace, f.ctx);
  const auto r2 = suite.run(trace, f.ctx);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].detection.has_value(), r2[i].detection.has_value());
    if (r1[i].detection.has_value()) {
      EXPECT_DOUBLE_EQ(r1[i].detection->time, r2[i].detection->time);
    }
  }
}

// Parameterized threshold sweep: a spoofed session fires iff the audit
// threshold exceeds the (noisy) measured/expected ratio of ~0.
class EnergyDeltaThreshold : public ::testing::TestWithParam<double> {};

TEST_P(EnergyDeltaThreshold, SpoofAlwaysCaughtAboveNoiseFloor) {
  Fixture f;
  sim::Trace trace;
  trace.sessions.push_back(f.spoofed_session(0, 100.0));
  EnergyDeltaDetector detector(1.0, GetParam());
  EXPECT_TRUE(detector.analyze(trace, f.ctx).has_value())
      << "threshold " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EnergyDeltaThreshold,
                         ::testing::Values(0.15, 0.2, 0.3, 0.4, 0.5));

// Regression: the SoC-gauge noise draw for a session must be keyed by
// (node, per-node session ordinal), not by the session's global index in
// the trace.  A node's gauge cannot know how many sessions OTHER nodes had,
// so inserting unrelated traffic earlier in the trace must not perturb its
// noise stream.  Under the old global-index keying, prepending one benign
// session on node 2 shifted every later draw and flipped borderline
// verdicts; these traces are built borderline on purpose.
TEST(MeteredNoise, UnrelatedEarlierSessionsDoNotPerturbVerdicts) {
  Fixture f;
  // Node 0: moderate shortfall sessions (CUSUM climbs ~2.0/session against
  // h=4 and h=8, so the crossing time hinges on the exact noise draws),
  // then one session sitting exactly at the EnergyDelta ratio threshold
  // (the noise sign alone decides the verdict).
  sim::Trace base;
  for (int i = 0; i < 6; ++i) {
    sim::SessionRecord s = f.benign_session(0, 1'000.0 * (i + 1));
    s.delivered = 0.5 * s.expected_gain;
    base.sessions.push_back(s);
  }
  sim::SessionRecord edge = f.benign_session(0, 10'000.0);
  edge.delivered = 0.30 * edge.expected_gain;
  base.sessions.push_back(edge);

  sim::Trace prepended = base;
  prepended.sessions.insert(prepended.sessions.begin(),
                            f.benign_session(2, 10.0));

  const EnergyDeltaDetector energy_delta;
  const CusumShortfallDetector cusum;
  const FleetCusumDetector fleet;
  for (const Detector* detector :
       {static_cast<const Detector*>(&energy_delta),
        static_cast<const Detector*>(&cusum),
        static_cast<const Detector*>(&fleet)}) {
    const auto before = detector->analyze(base, f.ctx);
    const auto after = detector->analyze(prepended, f.ctx);
    ASSERT_EQ(before.has_value(), after.has_value()) << detector->name();
    if (before.has_value()) {
      EXPECT_DOUBLE_EQ(before->time, after->time) << detector->name();
      EXPECT_EQ(before->node, after->node) << detector->name();
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptive (threshold-re-tuning) detectors — the defender half of the
// policy seam (detect/adaptive.hpp, DESIGN.md §15).
// ---------------------------------------------------------------------------

policy::DefenderPolicyParams tuning(Seconds window, double quantile = 3.0,
                                    std::size_t min_samples = 2) {
  policy::DefenderPolicyParams params;
  params.kind = policy::DefenderPolicyKind::Adaptive;
  params.window = window;
  params.quantile = quantile;
  params.min_samples = min_samples;
  return params;
}

TEST(AdaptiveDeathRate, MatchesStaticBeforeAnyWindowCompletes) {
  // With no completed tuning windows the adaptive threshold IS the static
  // one: a first-window death cluster fires both, at the same instant.
  Fixture f;
  sim::Trace trace;
  trace.deaths.push_back({100.0, 0, false});
  trace.deaths.push_back({500.0, 1, false});
  trace.deaths.push_back({900.0, 2, false});
  const DeathRateDetector static_detector(3, 1'000.0);
  const AdaptiveDeathRateDetector adaptive(3, tuning(5'000.0),
                                           /*monitor_window=*/1'000.0);
  const auto s = static_detector.analyze(trace, f.ctx);
  const auto a = adaptive.analyze(trace, f.ctx);
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->time, s->time);
  EXPECT_EQ(a->node, s->node);
}

TEST(AdaptiveDeathRate, LearnedBackgroundRateAbsorbsFaultBursts) {
  // Steady background of 2 deaths per 1000 s window for six windows (the
  // standing-fault signature of PR 5), then a 3-death burst.  The static
  // detector at threshold 3 fires on the burst; the adaptive one has
  // re-tuned its bound from the observed rate and stays silent — the
  // false positive the static calibration cannot avoid without knowing the
  // environmental failure rate (EXPERIMENTS.md, fig6 fault study).
  Fixture f;
  sim::Trace trace;
  net::NodeId id = 0;
  for (int w = 0; w < 6; ++w) {
    trace.deaths.push_back({1'000.0 * w + 100.0, id++, false});
    trace.deaths.push_back({1'000.0 * w + 600.0, id++, false});
  }
  trace.deaths.push_back({6'050.0, id++, false});
  trace.deaths.push_back({6'150.0, id++, false});
  trace.deaths.push_back({6'250.0, id++, false});

  const DeathRateDetector static_detector(3, 1'000.0);
  ASSERT_TRUE(static_detector.analyze(trace, f.ctx).has_value());

  const AdaptiveDeathRateDetector adaptive(3, tuning(1'000.0),
                                           /*monitor_window=*/1'000.0);
  EXPECT_FALSE(adaptive.analyze(trace, f.ctx).has_value());
}

TEST(AdaptiveDeathRate, FloorGuaranteesFiringSubsetOfStatic) {
  // The adaptive threshold never drops below the static one, so wherever
  // the adaptive detector fires, the static detector fired at or before
  // that time.  Exercise both a firing and a silent trace.
  Fixture f;
  const DeathRateDetector static_detector(3, 1'000.0);
  const AdaptiveDeathRateDetector adaptive(3, tuning(1'000.0), 1'000.0);

  sim::Trace storm;  // dense cluster mid-mission, after quiet windows
  storm.deaths.push_back({4'100.0, 0, false});
  storm.deaths.push_back({4'200.0, 1, false});
  storm.deaths.push_back({4'300.0, 2, false});
  storm.deaths.push_back({4'400.0, 3, false});
  sim::Trace quiet;
  quiet.deaths.push_back({500.0, 0, false});
  quiet.deaths.push_back({2'500.0, 1, false});

  for (const sim::Trace* trace : {&storm, &quiet}) {
    const auto a = adaptive.analyze(*trace, f.ctx);
    const auto s = static_detector.analyze(*trace, f.ctx);
    if (a.has_value()) {
      ASSERT_TRUE(s.has_value());
      EXPECT_LE(s->time, a->time);
    }
  }
  // The storm trace must actually exercise the firing branch.
  EXPECT_TRUE(adaptive.analyze(storm, f.ctx).has_value());
}

TEST(AdaptiveServiceAudit, BudgetGrowsWithObservedEscalationRate) {
  Fixture f;
  SuiteCalibration cal;
  cal.escalation_limit = 3;

  // A steady drip of one escalation per window: the static budget of 3
  // trips on the third, the adaptive budget has learned the rate by then.
  sim::Trace drip;
  for (int w = 0; w < 5; ++w) {
    drip.escalations.push_back({1'000.0 * w + 100.0, net::NodeId(w)});
  }
  const ServiceAuditDetector static_detector(cal.escalation_limit);
  ASSERT_TRUE(static_detector.analyze(drip, f.ctx).has_value());
  const AdaptiveServiceAuditDetector adaptive(cal, tuning(1'000.0));
  EXPECT_FALSE(adaptive.analyze(drip, f.ctx).has_value());

  // An attack-like first-window storm has no benign history to hide in:
  // the adaptive budget is still the static one and fires.
  sim::Trace storm;
  for (int i = 0; i < 4; ++i) {
    storm.escalations.push_back({100.0 * (i + 1), net::NodeId(i)});
  }
  EXPECT_TRUE(adaptive.analyze(storm, f.ctx).has_value());
}

TEST(AdaptiveServiceAudit, DiedWaitingRuleStaysStatic) {
  Fixture f;
  SuiteCalibration cal;
  cal.died_waiting_limit = 2;
  const AdaptiveServiceAuditDetector adaptive(cal, tuning(1'000.0));
  sim::Trace trace;
  trace.deaths.push_back({500.0, 0, /*request_outstanding=*/true});
  EXPECT_FALSE(adaptive.analyze(trace, f.ctx).has_value());
  trace.deaths.push_back({900.0, 1, true});
  const auto detection = adaptive.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_DOUBLE_EQ(detection->time, 900.0);
}

TEST(AdaptiveEnergyDelta, TightensAgainstPartialCancelLeaks) {
  // Two windows of honest sessions (ratio ~1.0) let the detector re-tune
  // its threshold well above the static 0.30: a partial-cancel session
  // leaking 45 % then trips the adaptive audit where the static one is
  // blind (the PR-7 partial-leak evasion).
  Fixture f;
  f.ctx.benign_gain_cv = 0.1;
  sim::Trace trace;
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 4; ++i) {
      trace.sessions.push_back(
          f.benign_session(net::NodeId(i % 3), 5'000.0 * w + 1'100.0 * i));
    }
  }
  sim::SessionRecord leak = f.benign_session(1, 11'000.0);
  leak.kind = sim::SessionKind::Spoofed;
  leak.delivered = 0.45 * leak.expected_gain;
  trace.sessions.push_back(leak);

  const EnergyDeltaDetector static_detector;
  EXPECT_FALSE(static_detector.analyze(trace, f.ctx).has_value());
  const AdaptiveEnergyDeltaDetector adaptive(tuning(5'000.0, /*quantile=*/2.0));
  const auto detection = adaptive.analyze(trace, f.ctx);
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->node, 1u);
}

TEST(AdaptiveEnergyDelta, SilentOnHonestSessionsAndCatchesFullSpoof) {
  Fixture f;
  sim::Trace honest;
  for (int i = 0; i < 12; ++i) {
    honest.sessions.push_back(
        f.benign_session(net::NodeId(i % 3), 1'100.0 * i));
  }
  const AdaptiveEnergyDeltaDetector adaptive(tuning(5'000.0));
  EXPECT_FALSE(adaptive.analyze(honest, f.ctx).has_value());

  // A zero-harvest phase-cancel session is below any threshold >= 0.30.
  sim::Trace spoofed = honest;
  spoofed.sessions.push_back(f.spoofed_session(0, 20'000.0));
  EXPECT_TRUE(adaptive.analyze(spoofed, f.ctx).has_value());
}

TEST(AdaptiveSuite, MirrorsStaticComposition) {
  const SuiteCalibration cal;
  const policy::DefenderPolicyParams params = tuning(7'200.0);
  EXPECT_EQ(make_adaptive_suite(cal, params, /*hardened=*/false).size(), 4u);
  EXPECT_EQ(make_adaptive_suite(cal, params, /*hardened=*/true).size(), 7u);
}

// ---------------------------------------------------------------------------
// Mission-level FP regression: the PR 5 finding and its adaptive remedy.
// ---------------------------------------------------------------------------

/// Activity-dense mission with a standing benign fault load (node-failure
/// bursts + battery drift): the mix EXPERIMENTS.md's fig6 fault study shows
/// firing the static death-rate monitor on benign missions.
analysis::ScenarioConfig fault_laden_config(std::uint64_t seed) {
  const auto [cfg, mode] = analysis::resolve_overrides(analysis::parse_repro(
      "mode=benign;seed=1;topology.node_count=36;topology.region_size=240;"
      "horizon=43200;topology.battery_capacity=2500;world.sensing_power=0.05;"
      "world.initial_level_min=0.4;world.initial_level_max=0.55;"
      "world.patience=5400;attack.key_count=6;faults.node_burst_mtbf=6000;"
      "faults.node_burst_size=3;faults.battery_drift_mtbf=20000;"
      "faults.battery_drift_power=0.015"));
  (void)mode;
  analysis::ScenarioConfig out = cfg;
  out.seed = seed;
  return out;
}

bool detector_fired(const analysis::ScenarioResult& result,
                    std::string_view name) {
  for (const auto& v : result.detections) {
    if (v.detector == name) return v.detection.has_value();
  }
  ADD_FAILURE() << "suite did not run detector " << name;
  return false;
}

analysis::ScenarioConfig with_adaptive_defender(analysis::ScenarioConfig cfg) {
  cfg.policy.defender.kind = policy::DefenderPolicyKind::Adaptive;
  cfg.policy.defender.window = 7'200.0;
  return cfg;
}

TEST(AdaptiveDefender, ReducesDeathRateFalsePositivesOnBenignFaultMissions) {
  constexpr std::uint64_t kSeeds = 10;
  std::size_t static_fp = 0;
  std::size_t adaptive_fp = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const analysis::ScenarioConfig cfg = fault_laden_config(seed);
    const analysis::ScenarioResult s =
        analysis::run_mission(cfg, analysis::ChargerMode::Benign);
    const analysis::ScenarioResult a = analysis::run_mission(
        with_adaptive_defender(cfg), analysis::ChargerMode::Benign);
    const bool s_fired = detector_fired(s, "death-rate");
    const bool a_fired = detector_fired(a, "death-rate-adaptive");
    if (s_fired) ++static_fp;
    if (a_fired) ++adaptive_fp;
    // Subset guarantee from the static-threshold floor: the adaptive
    // monitor never fires on a mission the static one cleared.
    if (a_fired) EXPECT_TRUE(s_fired) << "seed " << seed;
  }
  // The PR 5 finding must reproduce: the fault mix makes the static
  // death-rate monitor a false-positive machine on honest missions...
  EXPECT_GE(static_fp, kSeeds / 2) << "fault mix no longer trips the static "
                                      "death-rate monitor; FP regression "
                                      "baseline lost";
  // ...and the threshold-adapting defender strictly reduces it.
  EXPECT_LT(adaptive_fp, static_fp);
}

TEST(AdaptiveDefender, StillCatchesTheBaselineAttackSuite) {
  // Re-tuned thresholds must not buy the FP reduction by going blind: on
  // the fault-free baseline attack missions, every mission the static
  // deployed suite detects stays detected under the adaptive suite.
  constexpr std::uint64_t kSeeds = 10;
  std::size_t static_detected = 0;
  std::size_t adaptive_detected = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    analysis::ScenarioConfig cfg = fault_laden_config(seed);
    cfg.faults = {};  // baseline attack: no environmental faults
    const analysis::ScenarioResult s =
        analysis::run_mission(cfg, analysis::ChargerMode::Attack);
    const analysis::ScenarioResult a = analysis::run_mission(
        with_adaptive_defender(cfg), analysis::ChargerMode::Attack);
    if (s.report.detected) ++static_detected;
    if (a.report.detected) ++adaptive_detected;
  }
  EXPECT_GT(static_detected, 0u);
  EXPECT_GE(adaptive_detected, static_detected);
}

}  // namespace
}  // namespace wrsn::detect
