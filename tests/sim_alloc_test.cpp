// Zero-steady-state-allocation guarantee for the death hot path.
//
// This binary overrides global operator new/delete with counting versions
// (which is why it is a separate test target) and asserts that, once the
// world is warmed up — kernel slab/heap reserved, routing scratch sized,
// trace vectors reserved — an entire death cascade runs without a single
// heap allocation: event scheduling/cancelling (inline callbacks in slab
// slots), routing repair and fallback rebuild (persistent buffers +
// scratch), load/drain refresh, and the drain-diff rescheduling sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wrsn::sim {
namespace {

TEST(WorldAllocation, DeathCascadeHotPathDoesNotAllocate) {
  Simulator sim;
  net::TopologyConfig topo;
  topo.node_count = 100;
  topo.region = {{0.0, 0.0}, {400.0, 400.0}};
  topo.comm_range = 65.0;
  Rng topo_rng(42);
  net::Network network = net::generate_topology(topo, topo_rng);

  WorldParams params;
  params.emergency_enabled = true;  // exercise the comparator event path too
  params.update_mode = WorldUpdateMode::Fast;
  World world(sim, std::move(network), params, Rng(7));

  // The trace is append-only output, not part of the update machinery;
  // reserving it is the caller's knob for allocation-free steady state.
  world.trace().requests.reserve(4096);
  world.trace().sessions.reserve(64);
  world.trace().deaths.reserve(1024);
  world.trace().escalations.reserve(4096);

  // Warm up through the first death: the first cascade touches any
  // lazily-grown capacity that remains.
  while (world.trace().deaths.empty() && sim.step()) {
  }
  ASSERT_FALSE(world.trace().deaths.empty());

  // From here on, the entire network starves and dies (nobody charges):
  // every remaining request, escalation, emergency, death, routing repair,
  // and reschedule must run allocation-free.
  g_allocations.store(0);
  g_counting.store(true);
  while (world.alive_count() > 0 && sim.step()) {
  }
  g_counting.store(false);

  EXPECT_EQ(world.alive_count(), 0u);
  EXPECT_EQ(g_allocations.load(), 0u);
}

}  // namespace
}  // namespace wrsn::sim
