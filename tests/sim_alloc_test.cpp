// Zero-steady-state-allocation guarantee for the death hot path.
//
// This binary overrides global operator new/delete with counting versions
// (which is why it is a separate test target) and asserts that, once the
// world is warmed up — kernel slab/heap reserved, routing scratch sized,
// trace vectors reserved — an entire death cascade runs without a single
// heap allocation: event scheduling/cancelling (inline callbacks in slab
// slots), routing repair and fallback rebuild (persistent buffers +
// scratch), load/drain refresh, and the drain-diff rescheduling sweep.
//
// The same guarantee is pinned for the planners (CsaPlanner::plan_into and
// the fleet replan run on arenas reused across calls) and for the batched
// wpt kernels (pure array passes over caller storage).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "analysis/scenario.hpp"
#include "common/rng.hpp"
#include "core/fleet_planner.hpp"
#include "core/planners.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"
#include "svc/service.hpp"
#include "wpt/charging_model.hpp"
#include "wpt/wave.hpp"

namespace {

// Thread-local so multi-threaded service tests can pin the REQUESTING
// thread's path while worker threads execute missions (which allocate
// freely) in parallel.
thread_local bool g_counting = false;
thread_local std::size_t g_allocations = 0;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wrsn::sim {
namespace {

TEST(WorldAllocation, DeathCascadeHotPathDoesNotAllocate) {
  Simulator sim;
  net::TopologyConfig topo;
  topo.node_count = 100;
  topo.region = {{0.0, 0.0}, {400.0, 400.0}};
  topo.comm_range = 65.0;
  Rng topo_rng(42);
  net::Network network = net::generate_topology(topo, topo_rng);

  WorldParams params;
  params.emergency_enabled = true;  // exercise the comparator event path too
  params.update_mode = WorldUpdateMode::Fast;
  World world(sim, std::move(network), params, Rng(7));

  // The trace is append-only output, not part of the update machinery;
  // reserving it is the caller's knob for allocation-free steady state.
  world.trace().requests.reserve(4096);
  world.trace().sessions.reserve(64);
  world.trace().deaths.reserve(1024);
  world.trace().escalations.reserve(4096);

  // Warm up through the first death: the first cascade touches any
  // lazily-grown capacity that remains.
  while (world.trace().deaths.empty() && sim.step()) {
  }
  ASSERT_FALSE(world.trace().deaths.empty());

  // From here on, the entire network starves and dies (nobody charges):
  // every remaining request, escalation, emergency, death, routing repair,
  // and reschedule must run allocation-free.
  g_allocations = 0;
  g_counting = true;
  while (world.alive_count() > 0 && sim.step()) {
  }
  g_counting = false;

  EXPECT_EQ(world.alive_count(), 0u);
  EXPECT_EQ(g_allocations, 0u);
}

TEST(WorldAllocation, MobilityEpochSteadyStateDoesNotAllocate) {
  Simulator sim;
  net::TopologyConfig topo;
  topo.node_count = 100;
  topo.region = {{0.0, 0.0}, {400.0, 400.0}};
  topo.comm_range = 65.0;
  topo.battery_capacity = 1e9;  // death-free: only mobility events fire
  Rng topo_rng(42);
  net::Network network = net::generate_topology(topo, topo_rng);

  WorldParams params;
  params.update_mode = WorldUpdateMode::Fast;
  params.mobility.fraction = 0.3;
  params.mobility.interval = 600.0;
  World world(sim, std::move(network), params, Rng(7));

  // Warm up: early epochs grow the grid buckets, the CSR high-water marks,
  // and the routing scratch to their steady sizes.
  sim.run_until(8 * params.mobility.interval);
  ASSERT_GE(world.update_stats().mobility_epochs, 8u);

  // Steady state: interpolate walkers, rebuild adjacency into persistent
  // buffers, full Dijkstra refresh, drain-diff reschedule — zero heap.
  g_allocations = 0;
  g_counting = true;
  sim.run_until(16 * params.mobility.interval);
  g_counting = false;

  EXPECT_EQ(world.update_stats().mobility_epochs, 16u);
  EXPECT_EQ(g_allocations, 0u);
}

csa::Stop random_stop(Rng& gen, std::size_t index, bool key) {
  csa::Stop stop;
  stop.node = static_cast<net::NodeId>(index);
  stop.position = {gen.uniform(-200.0, 200.0), gen.uniform(-200.0, 200.0)};
  stop.window_open = gen.uniform(0.0, 20'000.0);
  stop.window_close = stop.window_open + gen.uniform(3'600.0, 14'400.0);
  stop.service_time = gen.uniform(600.0, 1'800.0);
  stop.is_key = key;
  stop.utility = key ? 0.0 : gen.uniform(100.0, 8'000.0);
  return stop;
}

TEST(PlannerAllocation, CsaPlanIsAllocationFreeAfterWarmup) {
  Rng gen(42);
  csa::TideInstance inst;
  inst.start_position = {0.0, 0.0};
  inst.speed = 3.0;
  for (std::size_t i = 0; i < 410; ++i) {
    inst.stops.push_back(random_stop(gen, i, i < 10));
  }
  inst.travel_matrix();  // the matrix cache belongs to the instance

  const csa::CsaPlanner planner;
  Rng rng(1);
  csa::Plan plan;
  planner.plan_into(inst, rng, plan);  // warmup sizes every arena
  const double warm_utility = plan.utility;

  g_allocations = 0;
  g_counting = true;
  planner.plan_into(inst, rng, plan);
  g_counting = false;

  EXPECT_EQ(plan.utility, warm_utility);
  EXPECT_EQ(g_allocations, 0u);
}

TEST(PlannerAllocation, FleetReplanIsAllocationFreeAfterWarmup) {
  Rng gen(42);
  csa::FleetInstance inst;
  for (std::size_t m = 0; m < 3; ++m) {
    csa::FleetCharger c;
    c.start_position = {gen.uniform(-200.0, 200.0),
                        gen.uniform(-200.0, 200.0)};
    c.speed = 3.0;
    inst.chargers.push_back(c);
  }
  for (std::size_t i = 0; i < 410; ++i) {
    inst.stops.push_back(random_stop(gen, i, i < 10));
  }

  const csa::CooperativeFleetPlanner planner;
  csa::FleetPlan plan;
  planner.plan_into(inst, plan);  // warmup: arenas + pair distance memo
  const double warm_utility = plan.utility;

  g_allocations = 0;
  g_counting = true;
  planner.plan_into(inst, plan);
  g_counting = false;

  EXPECT_EQ(plan.utility, warm_utility);
  EXPECT_EQ(g_allocations, 0u);
}

TEST(WptAllocation, BatchKernelsDoNotAllocate) {
  const wpt::ChargingModel model;
  Rng gen(9);
  std::vector<wpt::WaveSource> sources;
  for (int s = 0; s < 4; ++s) {
    wpt::WaveSource src =
        model.as_wave_source({gen.uniform(-3.0, 3.0), gen.uniform(-3.0, 3.0)},
                             gen.uniform(0.0, constants::kTwoPi));
    sources.push_back(src);
  }
  constexpr std::size_t kPoints = 512;
  std::vector<Meters> xs(kPoints), ys(kPoints), dist(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    xs[i] = gen.uniform(-12.0, 12.0);  // some beyond max_range
    ys[i] = gen.uniform(-12.0, 12.0);
    dist[i] = gen.uniform(0.0, 12.0);
  }
  std::vector<Watts> rf(kPoints), dc(kPoints);
  std::vector<double> im(kPoints);

  g_allocations = 0;
  g_counting = true;
  wpt::superposed_rf_power_batch(sources, xs, ys, rf, im);
  model.rectifier().harvest_batch(rf, dc);
  model.dc_at_distances(dist, dc);
  g_counting = false;

  EXPECT_EQ(g_allocations, 0u);
}

// ---------------------------------------------------------------------------
// Mission service: the shared request paths (cache hit, coalesced join) are
// allocation-free on the requesting thread after warmup.  Worker threads
// executing missions allocate freely — the counters are thread_local
// precisely so their work is invisible here.
// ---------------------------------------------------------------------------

svc::MissionRequest service_request(std::uint64_t seed) {
  svc::MissionRequest request;
  request.config = analysis::default_scenario();
  request.config.seed = seed;
  request.config.topology.node_count = 16;
  request.config.topology.region = {{0.0, 0.0}, {160.0, 160.0}};
  request.config.topology.battery_capacity = 2'000.0;
  request.config.world.drain.sensing_power = 0.05;
  request.config.horizon = 7'200.0;
  return request;
}

TEST(ServiceAllocation, CacheHitPathDoesNotAllocate) {
  svc::ServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 64;
  svc::MissionService service(options);
  const svc::MissionRequest request = service_request(3);

  // Warmup: one execution, one hit (the hit also touches every lazily-built
  // piece of the submit path — obs span, key digest, shard lookup).
  const svc::MissionResponse executed = service.submit(request);
  ASSERT_EQ(executed.status, svc::MissionStatus::kOk);
  ASSERT_EQ(service.submit(request).route, svc::MissionRoute::kCacheHit);

  g_allocations = 0;
  g_counting = true;
  svc::MissionResponse hit;
  for (int i = 0; i < 100; ++i) {
    hit = service.submit(request);
  }
  g_counting = false;

  ASSERT_EQ(hit.route, svc::MissionRoute::kCacheHit);
  EXPECT_EQ(std::memcmp(&hit.outcome, &executed.outcome,
                        sizeof(svc::MissionOutcome)),
            0);
  EXPECT_EQ(g_allocations, 0u);
}

TEST(ServiceAllocation, CoalescedJoinPathDoesNotAllocate) {
  svc::ServiceOptions options;
  options.threads = 1;
  options.cache_capacity = 64;
  svc::MissionService service(options);

  // Park every execution until released.  The hook runs on the worker after
  // the flight is registered in the shard table, so `parked` doubles as the
  // "safe to join now" signal.
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  service.set_execution_hook([&] {
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });

  // Warmup round: creator + join, then drain, so the flight pool, the
  // shard's flight table, and the collector path have all been exercised.
  const svc::MissionRequest warm = service_request(5);
  std::thread warm_creator([&] { service.submit(warm); });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
  std::thread warm_releaser([&] {
    while (service.stats().coalesced < 1) std::this_thread::yield();
    release.store(true, std::memory_order_release);
  });
  service.submit(warm);
  warm_creator.join();
  warm_releaser.join();
  service.drain();
  parked.store(false, std::memory_order_release);
  release.store(false, std::memory_order_release);

  // Measured round: a fresh scenario executes (parked); this thread joins
  // it.  A releaser thread opens the gate once the join is registered, so
  // the measured thread does nothing but stage-join-wait-copy.
  const svc::MissionRequest request = service_request(6);
  svc::MissionResponse created;
  std::thread creator([&] { created = service.submit(request); });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
  std::thread releaser([&] {
    while (service.stats().coalesced < 2) std::this_thread::yield();
    release.store(true, std::memory_order_release);
  });

  g_allocations = 0;
  g_counting = true;
  const svc::MissionResponse joined = service.submit(request);
  g_counting = false;

  creator.join();
  releaser.join();
  ASSERT_EQ(joined.status, svc::MissionStatus::kOk);
  ASSERT_EQ(joined.route, svc::MissionRoute::kCoalesced);
  EXPECT_EQ(std::memcmp(&joined.outcome, &created.outcome,
                        sizeof(svc::MissionOutcome)),
            0);
  EXPECT_EQ(g_allocations, 0u);
}

}  // namespace
}  // namespace wrsn::sim
