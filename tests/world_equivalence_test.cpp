// Property suite pinning the Fast world updater to the Reference one.
//
// WorldUpdateMode::Fast patches the routing tree after a death (subtree
// repair), refreshes loads/drains into persistent buffers, and reschedules
// only the nodes whose drain rate changed.  WorldUpdateMode::Reference is
// the seed behaviour: full rebuild plus an unconditional resync+reschedule
// of every alive node.  The two must be observationally identical: same
// requests, sessions, deaths, and escalations (same nodes, same flags, same
// order), with event times agreeing to well under a millisecond (Reference
// resyncs every node at every death, folding floating-point error slightly
// differently, so bitwise-equal times are not attainable by design).
//
// Scenarios sweep attack and benign charger modes, the emergency-comparator
// defense, background hardware failures, deployment shapes, and sizes —
// every topology-churn source the simulator has.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "analysis/scenario.hpp"

namespace wrsn::analysis {
namespace {

constexpr Seconds kTimeTol = 1e-5;
constexpr Joules kEnergyTol = 1e-3;
constexpr double kRfTol = 1e-9;

void expect_traces_equal(const sim::Trace& fast, const sim::Trace& ref,
                         const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(fast.requests.size(), ref.requests.size());
  for (std::size_t i = 0; i < ref.requests.size(); ++i) {
    SCOPED_TRACE("request #" + std::to_string(i));
    EXPECT_EQ(fast.requests[i].node, ref.requests[i].node);
    EXPECT_EQ(fast.requests[i].emergency, ref.requests[i].emergency);
    EXPECT_NEAR(fast.requests[i].time, ref.requests[i].time, kTimeTol);
    EXPECT_NEAR(fast.requests[i].level_at_request,
                ref.requests[i].level_at_request, kEnergyTol);
  }

  ASSERT_EQ(fast.sessions.size(), ref.sessions.size());
  for (std::size_t i = 0; i < ref.sessions.size(); ++i) {
    SCOPED_TRACE("session #" + std::to_string(i));
    EXPECT_EQ(fast.sessions[i].node, ref.sessions[i].node);
    EXPECT_EQ(fast.sessions[i].kind, ref.sessions[i].kind);
    EXPECT_NEAR(fast.sessions[i].start, ref.sessions[i].start, kTimeTol);
    EXPECT_NEAR(fast.sessions[i].end, ref.sessions[i].end, kTimeTol);
    EXPECT_NEAR(fast.sessions[i].expected_gain, ref.sessions[i].expected_gain,
                kEnergyTol);
    EXPECT_NEAR(fast.sessions[i].delivered, ref.sessions[i].delivered,
                kEnergyTol);
    EXPECT_NEAR(fast.sessions[i].rf_observed, ref.sessions[i].rf_observed,
                kRfTol);
  }

  ASSERT_EQ(fast.deaths.size(), ref.deaths.size());
  for (std::size_t i = 0; i < ref.deaths.size(); ++i) {
    SCOPED_TRACE("death #" + std::to_string(i));
    EXPECT_EQ(fast.deaths[i].node, ref.deaths[i].node);
    EXPECT_EQ(fast.deaths[i].request_outstanding,
              ref.deaths[i].request_outstanding);
    EXPECT_NEAR(fast.deaths[i].time, ref.deaths[i].time, kTimeTol);
  }

  ASSERT_EQ(fast.escalations.size(), ref.escalations.size());
  for (std::size_t i = 0; i < ref.escalations.size(); ++i) {
    SCOPED_TRACE("escalation #" + std::to_string(i));
    EXPECT_EQ(fast.escalations[i].node, ref.escalations[i].node);
    EXPECT_NEAR(fast.escalations[i].time, ref.escalations[i].time, kTimeTol);
  }
}

/// Builds scenario #index of the randomized sweep.  Region area scales with
/// node count to hold density at the calibrated default (100 nodes on
/// 400 m x 400 m with 65 m radios).
ScenarioConfig scenario_for(std::uint64_t index) {
  ScenarioConfig cfg = default_scenario();

  const std::size_t sizes[] = {25, 36, 49};
  const std::size_t n = sizes[index % 3];
  const double side = 40.0 * std::sqrt(double(n));
  cfg.topology.node_count = n;
  cfg.topology.region = {{0.0, 0.0}, {side, side}};
  cfg.topology.deployment = (index % 5 == 0)   ? net::Deployment::Clustered
                            : (index % 5 == 3) ? net::Deployment::Corridor
                                               : net::Deployment::Uniform;
  cfg.topology.corridor_count = 1 + index % 3;

  // Heterogeneous battery/drain classes: the per-node scaling draws ride the
  // topology rng, so both modes see identical hardware.
  if (index % 4 == 1) {
    cfg.topology.class_count = 3;
    cfg.topology.class_capacity_ratio = 2.0;
    cfg.topology.class_rate_ratio = 1.5;
  }

  // Waypoint mobility: epochs rebuild adjacency and resync through the mode
  // seam, the strongest topology churn the simulator has.
  if (index % 6 == 2) {
    cfg.world.mobility.fraction = 0.2;
    cfg.world.mobility.interval = 1'800.0;
    cfg.world.mobility.speed_max = 2.0;
  }

  // k-coverage utility reweighs planner stops; both planners must agree.
  if (index % 5 == 2) {
    cfg.world.coverage.k = 2;
    cfg.world.coverage.bonus = 1.0;
  }

  // Mix in every topology-churn source across the sweep.
  cfg.world.emergency_enabled = (index % 3 == 0);
  cfg.world.hardware_mtbf = (index % 2 == 0) ? 10.0 * 86'400.0 : 0.0;

  cfg.horizon = 1.5 * 86'400.0;
  cfg.seed = 0x5DEECE66Dull * (index + 1) + 11;

  // Fault injection rides the sweep: the compiled FaultPlan is a pure
  // function of the scenario rng, so a faulted Fast mission must still
  // match its Reference twin record-for-record.
  if (index % 3 == 1) {
    cfg.faults.mc_breakdown_mtbf = cfg.horizon / 3.0;
    cfg.faults.mc_repair_mean = 3'600.0;
    cfg.faults.mc_budget_loss = 0.08;
    cfg.faults.node_burst_mtbf = cfg.horizon / 2.0;
    cfg.faults.node_burst_size = 2;
    cfg.faults.battery_drift_mtbf = cfg.horizon / 2.0;
    cfg.faults.battery_drift_power = 8e-3;
    cfg.faults.battery_drift_duration = (index % 6 == 1) ? 7'200.0 : 0.0;
  }
  if (index % 7 == 2) {
    cfg.faults.phase_noise_mtbf = cfg.horizon / 2.0;
    cfg.faults.phase_noise_duration = 3'600.0;
    cfg.faults.phase_noise_scale = 30.0;
    cfg.faults.escalation_drop_prob = 0.25;
    cfg.faults.escalation_delay_prob = 0.5;
    cfg.faults.escalation_delay_max = 1'200.0;
  }
  if (index % 11 == 5) cfg.faults.mc_permanent_at = cfg.horizon / 2.0;
  return cfg;
}

class WorldEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldEquivalence, FastMatchesReference) {
  const std::uint64_t index = GetParam();
  ScenarioConfig cfg = scenario_for(index);
  const ChargerMode mode =
      (index % 2 == 0) ? ChargerMode::Attack : ChargerMode::Benign;

  cfg.world.update_mode = sim::WorldUpdateMode::Fast;
  const ScenarioResult fast = run_scenario(cfg, mode);
  cfg.world.update_mode = sim::WorldUpdateMode::Reference;
  const ScenarioResult ref = run_scenario(cfg, mode);

  const std::string label =
      "scenario " + std::to_string(index) +
      (mode == ChargerMode::Attack ? " (attack)" : " (benign)");
  expect_traces_equal(fast.trace, ref.trace, label);
  EXPECT_EQ(fast.alive_at_end, ref.alive_at_end);
  EXPECT_EQ(fast.sink_connected_at_end, ref.sink_connected_at_end);
  EXPECT_EQ(fast.keys, ref.keys);
  EXPECT_EQ(fast.plans_computed, ref.plans_computed);

  // Fault execution draws from per-concern streams in fire order, which
  // trace equivalence keeps identical across modes — so the tallies must
  // agree exactly, not just approximately.
  EXPECT_EQ(fast.fault_stats.mc_breakdowns, ref.fault_stats.mc_breakdowns);
  EXPECT_EQ(fast.fault_stats.mc_repairs, ref.fault_stats.mc_repairs);
  EXPECT_EQ(fast.fault_stats.node_burst_kills,
            ref.fault_stats.node_burst_kills);
  EXPECT_EQ(fast.fault_stats.phase_noise_windows,
            ref.fault_stats.phase_noise_windows);
  EXPECT_EQ(fast.fault_stats.escalations_dropped,
            ref.fault_stats.escalations_dropped);
  EXPECT_EQ(fast.fault_stats.escalations_delayed,
            ref.fault_stats.escalations_delayed);
  EXPECT_EQ(fast.fault_stats.drift_nodes, ref.fault_stats.drift_nodes);
  EXPECT_EQ(fast.fault_stats.absorbed, ref.fault_stats.absorbed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorldEquivalence,
                         ::testing::Range(std::uint64_t{0},
                                          std::uint64_t{100}));

// Compound frontier scenario: mobile nodes AND heterogeneous classes AND
// k-coverage utility in one mission, under attack, with hardware failures —
// every new scenario family interacting at once.  Mobility epochs force
// full adjacency rebuilds that must resync identically through both update
// modes while the coverage index reweighs the planner's stop utilities.
TEST(WorldEquivalenceFrontier, MobileHeterogeneousCoverageMatches) {
  ScenarioConfig cfg = default_scenario();
  const std::size_t n = 64;
  const double side = 40.0 * std::sqrt(double(n));
  cfg.topology.node_count = n;
  cfg.topology.region = {{0.0, 0.0}, {side, side}};
  cfg.topology.class_count = 4;
  cfg.topology.class_capacity_ratio = 2.5;
  cfg.topology.class_rate_ratio = 1.8;
  cfg.world.mobility.fraction = 0.25;
  cfg.world.mobility.interval = 1'200.0;
  cfg.world.mobility.speed_max = 2.5;
  cfg.world.coverage.k = 3;
  cfg.world.coverage.bonus = 1.5;
  cfg.world.emergency_enabled = true;
  cfg.world.hardware_mtbf = 10.0 * 86'400.0;
  cfg.horizon = 1.5 * 86'400.0;
  cfg.seed = 0xF00DF00Dull;

  cfg.world.update_mode = sim::WorldUpdateMode::Fast;
  const ScenarioResult fast = run_scenario(cfg, ChargerMode::Attack);
  cfg.world.update_mode = sim::WorldUpdateMode::Reference;
  const ScenarioResult ref = run_scenario(cfg, ChargerMode::Attack);

  expect_traces_equal(fast.trace, ref.trace, "frontier compound (attack)");
  EXPECT_EQ(fast.alive_at_end, ref.alive_at_end);
  EXPECT_EQ(fast.sink_connected_at_end, ref.sink_connected_at_end);
  EXPECT_EQ(fast.keys, ref.keys);
  EXPECT_EQ(fast.plans_computed, ref.plans_computed);
}

// One target-scale scenario: N = 1600 exercises the SoA hot lanes and the
// word bitmap far past any cache the small sweep sizes stay inside, and the
// death-cascade repair runs over a topology deep enough for multi-hop
// subtree patches.  The horizon is short — the point is layout coverage at
// scale, not another long mission.
TEST(WorldEquivalenceScale, FastMatchesReferenceAt1600Nodes) {
  ScenarioConfig cfg = default_scenario();
  const std::size_t n = 1600;
  const double side = 40.0 * std::sqrt(double(n));
  cfg.topology.node_count = n;
  cfg.topology.region = {{0.0, 0.0}, {side, side}};
  cfg.world.emergency_enabled = true;
  cfg.horizon = 0.5 * 86'400.0;
  cfg.seed = 0xC0FFEEull;

  cfg.world.update_mode = sim::WorldUpdateMode::Fast;
  const ScenarioResult fast = run_scenario(cfg, ChargerMode::Attack);
  cfg.world.update_mode = sim::WorldUpdateMode::Reference;
  const ScenarioResult ref = run_scenario(cfg, ChargerMode::Attack);

  expect_traces_equal(fast.trace, ref.trace, "scenario n=1600 (attack)");
  EXPECT_FALSE(fast.trace.deaths.empty());  // the cascade path must fire
  EXPECT_EQ(fast.alive_at_end, ref.alive_at_end);
  EXPECT_EQ(fast.sink_connected_at_end, ref.sink_connected_at_end);
  EXPECT_EQ(fast.keys, ref.keys);
  EXPECT_EQ(fast.plans_computed, ref.plans_computed);
}

}  // namespace
}  // namespace wrsn::analysis
