// Tests for the paper's core: the TIDE problem model, the CSA approximation
// planner and its baselines, the exact solver (including the empirical
// approximation-ratio property), and the attack orchestrator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/orchestrator.hpp"
#include "core/planners.hpp"
#include "core/reference_planner.hpp"
#include "core/report.hpp"
#include "core/route_state.hpp"
#include "core/tide.hpp"

namespace wrsn::csa {
namespace {

using geom::Vec2;

Stop make_stop(Vec2 pos, Seconds open, Seconds close, Seconds service,
               double utility, bool key) {
  Stop s;
  s.node = 0;
  s.position = pos;
  s.window_open = open;
  s.window_close = close;
  s.service_time = service;
  s.utility = utility;
  s.is_key = key;
  return s;
}

TideInstance simple_instance() {
  TideInstance inst;
  inst.start_position = {0.0, 0.0};
  inst.start_time = 0.0;
  inst.speed = 1.0;
  return inst;
}

TEST(Tide, ValidateRejectsBadStops) {
  TideInstance inst = simple_instance();
  inst.speed = 0.0;
  EXPECT_THROW(inst.validate(), ConfigError);
  inst = simple_instance();
  inst.stops.push_back(make_stop({1, 0}, 10.0, 5.0, 1.0, 0.0, true));
  EXPECT_THROW(inst.validate(), ConfigError);
  inst = simple_instance();
  inst.stops.push_back(make_stop({1, 0}, 0.0, 5.0, -1.0, 0.0, true));
  EXPECT_THROW(inst.validate(), ConfigError);
}

TEST(Tide, EvaluateComputesArrivalsWaitsAndUtility) {
  TideInstance inst = simple_instance();
  // Stop 0 at x=10, window [20, 100]: arrive at 10, wait to 20, serve 5.
  inst.stops.push_back(make_stop({10, 0}, 20.0, 100.0, 5.0, 3.0, false));
  // Stop 1 at x=20, open immediately.
  inst.stops.push_back(make_stop({20, 0}, 0.0, 200.0, 2.0, 4.0, false));
  const std::size_t order[] = {0, 1};
  const auto plan = evaluate_order(inst, order);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->visits.size(), 2u);
  EXPECT_DOUBLE_EQ(plan->visits[0].arrival, 10.0);
  EXPECT_DOUBLE_EQ(plan->visits[0].service_start, 20.0);
  EXPECT_DOUBLE_EQ(plan->visits[0].departure, 25.0);
  EXPECT_DOUBLE_EQ(plan->visits[1].arrival, 35.0);
  EXPECT_DOUBLE_EQ(plan->visits[1].service_start, 35.0);
  EXPECT_DOUBLE_EQ(plan->completion_time, 37.0);
  EXPECT_DOUBLE_EQ(plan->utility, 7.0);
}

TEST(Tide, EvaluateFailsOnMissedWindow) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({100, 0}, 0.0, 50.0, 1.0, 0.0, true));
  const std::size_t order[] = {0};  // arrival at 100 > close 50
  EXPECT_FALSE(evaluate_order(inst, order).has_value());
}

TEST(Tide, EvaluateDroppingSkipsMissedStops) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({100, 0}, 0.0, 50.0, 1.0, 5.0, false));
  inst.stops.push_back(make_stop({10, 0}, 0.0, 500.0, 1.0, 7.0, false));
  const std::size_t order[] = {0, 1};
  const Plan plan = evaluate_order_dropping(inst, order);
  ASSERT_EQ(plan.visits.size(), 1u);
  EXPECT_EQ(plan.visits[0].stop_index, 1u);
  EXPECT_DOUBLE_EQ(plan.utility, 7.0);
}

TEST(Tide, KeyCountAndCoverage) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({10, 0}, 0.0, 1e6, 1.0, 0.0, true));
  inst.stops.push_back(make_stop({20, 0}, 0.0, 1e6, 1.0, 5.0, false));
  EXPECT_EQ(inst.key_count(), 1u);
  const std::size_t only_utility[] = {1};
  const auto partial = evaluate_order(inst, only_utility);
  ASSERT_TRUE(partial.has_value());
  EXPECT_FALSE(partial->covers_all_keys());
  const std::size_t both[] = {0, 1};
  const auto full = evaluate_order(inst, both);
  ASSERT_TRUE(full.has_value());
  EXPECT_TRUE(full->covers_all_keys());
}

TEST(CsaPlanner, SchedulesAllKeysWithTightWindows) {
  TideInstance inst = simple_instance();
  // Three keys whose EDF order is the reverse of their index order.
  inst.stops.push_back(make_stop({10, 0}, 0.0, 300.0, 5.0, 0.0, true));
  inst.stops.push_back(make_stop({20, 0}, 0.0, 200.0, 5.0, 0.0, true));
  inst.stops.push_back(make_stop({30, 0}, 0.0, 100.0, 5.0, 0.0, true));
  Rng rng(1);
  const Plan plan = CsaPlanner().plan(inst, rng);
  EXPECT_TRUE(plan.covers_all_keys());
  EXPECT_EQ(plan.keys_total, 3u);
}

TEST(CsaPlanner, FillsSlackWithUtilityStops) {
  TideInstance inst = simple_instance();
  // One key far in the future; plenty of slack for utility stops.
  inst.stops.push_back(make_stop({50, 0}, 500.0, 600.0, 10.0, 0.0, true));
  inst.stops.push_back(make_stop({10, 0}, 0.0, 400.0, 10.0, 5.0, false));
  inst.stops.push_back(make_stop({20, 0}, 0.0, 400.0, 10.0, 7.0, false));
  Rng rng(1);
  const Plan plan = CsaPlanner().plan(inst, rng);
  EXPECT_TRUE(plan.covers_all_keys());
  EXPECT_DOUBLE_EQ(plan.utility, 12.0);
}

TEST(CsaPlanner, NeverViolatesKeyWindowForUtility) {
  TideInstance inst = simple_instance();
  // Key must start by 25; a juicy utility stop would blow that window.
  inst.stops.push_back(make_stop({20, 0}, 0.0, 25.0, 5.0, 0.0, true));
  inst.stops.push_back(make_stop({-50, 0}, 0.0, 1e6, 50.0, 100.0, false));
  Rng rng(1);
  const Plan plan = CsaPlanner().plan(inst, rng);
  EXPECT_TRUE(plan.covers_all_keys());
  // The utility stop can only appear after the key.
  ASSERT_GE(plan.visits.size(), 1u);
  EXPECT_TRUE(inst.stops[plan.visits[0].stop_index].is_key);
}

TEST(CsaPlanner, EmptyInstanceYieldsEmptyPlan) {
  TideInstance inst = simple_instance();
  Rng rng(1);
  const Plan plan = CsaPlanner().plan(inst, rng);
  EXPECT_TRUE(plan.visits.empty());
  EXPECT_TRUE(plan.covers_all_keys());  // vacuously: 0 of 0
}

TEST(CsaPlanner, InfeasibleKeyIsDroppedNotFatal) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({1000, 0}, 0.0, 10.0, 1.0, 0.0, true));
  Rng rng(1);
  const Plan plan = CsaPlanner().plan(inst, rng);
  EXPECT_EQ(plan.keys_scheduled, 0u);
  EXPECT_EQ(plan.keys_total, 1u);
  EXPECT_FALSE(plan.covers_all_keys());
}

TEST(UtilityFirstPlanner, CanMissKeysCsaKeeps) {
  // A utility stop with an urgent window whose 30 s service, taken first,
  // makes the key window unreachable; CSA reserves the key slot first and
  // sacrifices the utility instead.
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({40, 0}, 30.0, 50.0, 5.0, 0.0, true));
  inst.stops.push_back(make_stop({-5, 0}, 0.0, 10.0, 30.0, 50.0, false));
  Rng rng(1);
  const Plan csa = CsaPlanner().plan(inst, rng);
  const Plan utility_first = UtilityFirstPlanner().plan(inst, rng);
  EXPECT_TRUE(csa.covers_all_keys());
  EXPECT_FALSE(utility_first.covers_all_keys());
  EXPECT_GT(utility_first.utility, csa.utility);  // the trade it made
}

// The travel matrix must reproduce travel_time bit-for-bit (symmetry
// included) — the planners' equivalence with the naive reference relies on
// cached legs being the same doubles the reference recomputes.
TEST(TravelMatrix, MatchesTravelTimeBitForBit) {
  Rng gen(17);
  TideInstance inst = simple_instance();
  inst.speed = 3.7;
  inst.start_position = {gen.uniform(-50.0, 50.0), gen.uniform(-50.0, 50.0)};
  for (int i = 0; i < 12; ++i) {
    inst.stops.push_back(make_stop(
        {gen.uniform(-100.0, 100.0), gen.uniform(-100.0, 100.0)}, 0.0, 1e6,
        1.0, 1.0, false));
  }
  const TravelMatrix& m = inst.travel_matrix();
  ASSERT_EQ(m.size(), inst.stops.size());
  for (std::size_t i = 0; i < inst.stops.size(); ++i) {
    EXPECT_EQ(m.from_start(i), inst.travel_time(inst.start_position,
                                                inst.stops[i].position));
    for (std::size_t j = 0; j < inst.stops.size(); ++j) {
      EXPECT_EQ(m.between(i, j), inst.travel_time(inst.stops[i].position,
                                                  inst.stops[j].position));
      EXPECT_EQ(m.between(i, j), m.between(j, i));
    }
  }
}

TEST(TravelMatrix, SetRejectsWrongSize) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({1, 0}, 0.0, 1e6, 1.0, 1.0, false));
  TideInstance other = simple_instance();
  EXPECT_THROW(inst.set_travel_matrix(TravelMatrix::build(other)),
               PreconditionError);
}

// Integer-exact slack behavior: a stop inserted in front of a long wait is
// fully absorbed (delta exactly 0, downstream schedule untouched), and the
// slack array rejects exactly the insertions whose pushed-forward delay
// breaks a downstream window.
TEST(RouteState, SlackAbsorbsAndRejectsExactly) {
  TideInstance inst = simple_instance();  // speed 1, start (0,0) at t=0
  // Stop 0: x=100, window opens at 1000 -> 900 s of waiting slack.
  inst.stops.push_back(make_stop({100, 0}, 1000.0, 1100.0, 10.0, 0.0, true));
  // Stop 1: x=50, on the way, wide window, service 30.
  inst.stops.push_back(make_stop({50, 0}, 0.0, 2000.0, 30.0, 5.0, false));
  // Stop 2: x=200, window so tight after stop 0 that any extra delay kills
  // it: depart stop 0 at 1010, travel 100 -> arrival 1110, close at 1110.
  inst.stops.push_back(make_stop({200, 0}, 0.0, 1110.0, 1.0, 7.0, false));

  RouteState route(inst);
  route.insert(0, 0);

  // Inserting stop 1 before stop 0 is absorbed by the 900 s wait.
  const auto absorbed = route.try_insert(1, 0);
  ASSERT_TRUE(absorbed.has_value());
  EXPECT_EQ(*absorbed, 0.0);

  route.insert(2, 1);  // route: [0, 2], stop 2 starts exactly at its close
  // Now stop 1 before stop 0 would still be absorbed at stop 0 (the wait
  // soaks the delay before it ever reaches stop 2).
  const auto still_ok = route.try_insert(1, 0);
  ASSERT_TRUE(still_ok.has_value());
  EXPECT_EQ(*still_ok, 0.0);
  // But inserting stop 1 BETWEEN 0 and 2 pushes stop 2 past its window:
  // zero slack there, so the slack array must reject it.
  EXPECT_FALSE(route.try_insert(1, 1).has_value());
  // And appending at the end is fine (nothing downstream).
  EXPECT_TRUE(route.try_insert(1, 2).has_value());

  // The naive reference agrees on all three verdicts.
  csa::reference::NaiveRouteState naive(inst);
  naive.insert(0, 0);
  naive.insert(2, 1);
  EXPECT_EQ(naive.try_insert(1, 0).has_value(), true);
  EXPECT_EQ(*naive.try_insert(1, 0), 0.0);
  EXPECT_FALSE(naive.try_insert(1, 1).has_value());
  EXPECT_TRUE(naive.try_insert(1, 2).has_value());
}

// Documents the satellite "swap-and-pop / O(1) candidate removal" change:
// the greedy fill's argmax is keyed on (score, then smallest stop index),
// which is exactly what the old first-wins scan over the ascending-sorted
// `remaining` vector computed — `remaining` was built in ascending stop
// order and mid-vector erase preserves that order, so "first maximum in
// iteration order" always meant "smallest stop index".  Making the key
// explicit frees the implementation to store candidates in any order
// (utility-sorted with O(1) tombstone removal) without changing any plan.
// The instance below forces an EXACT score tie (equal utilities, both
// insertions fully absorbed so both deltas are 0), where only the
// tie-break determines the result.
TEST(CsaPlanner, FillTieBreakPrefersSmallestStopIndex) {
  TideInstance inst = simple_instance();  // speed 1
  // Key at x=100 opens at 1000: everything before it is absorbed.
  inst.stops.push_back(make_stop({100, 0}, 1000.0, 1100.0, 10.0, 0.0, true));
  // Two identical utility stops at the same position, same window, same
  // utility: scores tie exactly; index 1 must be inserted first.
  inst.stops.push_back(make_stop({40, 0}, 0.0, 2000.0, 5.0, 6.0, false));
  inst.stops.push_back(make_stop({40, 0}, 0.0, 2000.0, 5.0, 6.0, false));

  Rng rng(1);
  const Plan plan = CsaPlanner().plan(inst, rng);
  ASSERT_EQ(plan.visits.size(), 3u);
  // Stop 1 was inserted first (at position 0); stop 2's later insertion
  // also lands at position 0 (same min delta 0, smallest position wins),
  // so the visit order is [2, 1, 0] — exactly what the naive first-wins
  // scan produces.
  EXPECT_EQ(plan.visits[0].stop_index, 2u);
  EXPECT_EQ(plan.visits[1].stop_index, 1u);
  EXPECT_EQ(plan.visits[2].stop_index, 0u);
  Rng rng2(1);
  const Plan ref = csa::reference::NaiveCsaPlanner().plan(inst, rng2);
  ASSERT_EQ(ref.visits.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.visits[i].stop_index, ref.visits[i].stop_index);
  }
}

// Satellite bugfix: GreedyNearest used a bare `>` on window_close while the
// evaluators tolerate kWindowEpsilon; a stop arriving within the epsilon was
// skipped by the planner although evaluate_order_dropping would accept it.
TEST(GreedyNearest, AcceptsArrivalWithinWindowEpsilon) {
  TideInstance inst = simple_instance();  // speed 1
  // Arrival lands epsilon/2 past the close: inside the shared tolerance.
  inst.stops.push_back(
      make_stop({10.0 + 5e-10, 0}, 0.0, 10.0, 1.0, 3.0, false));
  Rng rng(1);
  const Plan plan = GreedyNearestPlanner().plan(inst, rng);
  ASSERT_EQ(plan.visits.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.utility, 3.0);
}

TEST(GreedyNearest, VisitsNearestFirstRegardlessOfDeadline) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({10, 0}, 0.0, 1e6, 1.0, 1.0, false));
  inst.stops.push_back(make_stop({100, 0}, 0.0, 105.0, 1.0, 0.0, true));
  Rng rng(1);
  const Plan plan = GreedyNearestPlanner().plan(inst, rng);
  // Nearest-first goes to x=10 first; the key at x=100 closes at 105 and
  // is then missed (10 + 1 + 90 = 101 arrival < 105 though...).
  ASSERT_FALSE(plan.visits.empty());
  EXPECT_EQ(plan.visits[0].stop_index, 0u);
}

TEST(RandomPlanner, DeterministicGivenRng) {
  TideInstance inst = simple_instance();
  for (int i = 0; i < 6; ++i) {
    inst.stops.push_back(
        make_stop({double(10 * (i + 1)), 0.0}, 0.0, 1e6, 1.0, 1.0, false));
  }
  Rng r1(5), r2(5);
  const Plan a = RandomPlanner().plan(inst, r1);
  const Plan b = RandomPlanner().plan(inst, r2);
  ASSERT_EQ(a.visits.size(), b.visits.size());
  for (std::size_t i = 0; i < a.visits.size(); ++i) {
    EXPECT_EQ(a.visits[i].stop_index, b.visits[i].stop_index);
  }
}

TEST(ExactPlanner, RefusesOversizedInstances) {
  TideInstance inst = simple_instance();
  for (int i = 0; i < 20; ++i) {
    inst.stops.push_back(make_stop({1.0 * i, 0.0}, 0.0, 1e6, 1.0, 1.0, false));
  }
  Rng rng(1);
  EXPECT_THROW(ExactPlanner(16).plan(inst, rng), PreconditionError);
}

TEST(ExactPlanner, SolvesTrivialInstanceExactly) {
  TideInstance inst = simple_instance();
  inst.stops.push_back(make_stop({10, 0}, 0.0, 1e6, 1.0, 5.0, false));
  inst.stops.push_back(make_stop({20, 0}, 0.0, 1e6, 1.0, 7.0, false));
  Rng rng(1);
  const Plan plan = ExactPlanner().plan(inst, rng);
  EXPECT_DOUBLE_EQ(plan.utility, 12.0);  // both reachable: take both
}

TEST(ExactPlanner, PrefersKeyCoverageOverUtility) {
  TideInstance inst = simple_instance();
  // Serving the huge-utility stop first would miss the key window.
  inst.stops.push_back(make_stop({30, 0}, 0.0, 35.0, 5.0, 0.0, true));
  inst.stops.push_back(make_stop({-40, 0}, 0.0, 1e6, 10.0, 1000.0, false));
  Rng rng(1);
  const Plan plan = ExactPlanner().plan(inst, rng);
  EXPECT_TRUE(plan.covers_all_keys());
  // And it still picks up the utility stop afterwards.
  EXPECT_DOUBLE_EQ(plan.utility, 1000.0);
}

TEST(ExactPlanner, RespectsWindowsOnReconstruction) {
  Rng gen(99);
  for (int trial = 0; trial < 20; ++trial) {
    TideInstance inst = simple_instance();
    inst.speed = 5.0;
    for (int i = 0; i < 7; ++i) {
      const Seconds open = gen.uniform(0.0, 50.0);
      inst.stops.push_back(make_stop(
          {gen.uniform(-50.0, 50.0), gen.uniform(-50.0, 50.0)}, open,
          open + gen.uniform(20.0, 200.0), gen.uniform(1.0, 5.0),
          gen.uniform(1.0, 10.0), false));
    }
    Rng rng(1);
    const Plan plan = ExactPlanner().plan(inst, rng);
    // Re-evaluate the reconstructed order: must be feasible and match.
    std::vector<std::size_t> order;
    for (const Visit& v : plan.visits) order.push_back(v.stop_index);
    const auto check = evaluate_order(inst, order);
    ASSERT_TRUE(check.has_value());
    EXPECT_DOUBLE_EQ(check->utility, plan.utility);
  }
}

// The headline algorithmic property: CSA's utility is within a constant
// factor of optimal on feasible instances (the paper's "bounded performance
// guarantee").  We check the empirical ratio across random small instances.
class ApproxRatio : public ::testing::TestWithParam<int> {};

TEST_P(ApproxRatio, CsaNearOptimal) {
  Rng gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  TideInstance inst = simple_instance();
  inst.speed = 5.0;
  // Two keys with generous-but-real windows plus 8 utility stops.
  for (int k = 0; k < 2; ++k) {
    const Seconds open = gen.uniform(0.0, 60.0);
    inst.stops.push_back(
        make_stop({gen.uniform(-40.0, 40.0), gen.uniform(-40.0, 40.0)}, open,
                  open + gen.uniform(60.0, 200.0), gen.uniform(2.0, 6.0), 0.0,
                  true));
  }
  for (int i = 0; i < 8; ++i) {
    const Seconds open = gen.uniform(0.0, 80.0);
    inst.stops.push_back(
        make_stop({gen.uniform(-40.0, 40.0), gen.uniform(-40.0, 40.0)}, open,
                  open + gen.uniform(40.0, 300.0), gen.uniform(1.0, 4.0),
                  gen.uniform(1.0, 10.0), false));
  }
  Rng rng(1);
  const Plan exact = ExactPlanner().plan(inst, rng);
  const Plan approx = CsaPlanner().plan(inst, rng);
  if (!exact.covers_all_keys()) return;  // infeasible draw: skip
  EXPECT_TRUE(approx.covers_all_keys());
  if (exact.utility > 0.0) {
    // Documented guarantee ~0.316; empirically CSA is far better.
    EXPECT_GE(approx.utility / exact.utility, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ApproxRatio,
                         ::testing::Range(0, 30));

TEST(Report, CountsKeysDeathsAndDetection) {
  net::TopologyConfig tcfg;
  tcfg.node_count = 10;
  tcfg.comm_range = 60.0;
  Rng rng(3);
  const net::Network network = net::generate_topology(tcfg, rng);

  sim::Trace trace;
  trace.deaths.push_back({100.0, 0, false});
  trace.deaths.push_back({200.0, 1, false});
  trace.deaths.push_back({300.0, 2, true});
  trace.escalations.push_back({250.0, 2});

  sim::SessionRecord genuine;
  genuine.node = 5;
  genuine.kind = sim::SessionKind::Genuine;
  genuine.delivered = 100.0;
  trace.sessions.push_back(genuine);
  sim::SessionRecord spoofed;
  spoofed.node = 0;
  spoofed.kind = sim::SessionKind::Spoofed;
  spoofed.delivered = 0.5;
  trace.sessions.push_back(spoofed);

  const std::vector<net::NodeId> keys{0, 1, 7};
  std::vector<detect::SuiteResult> detections;
  detections.push_back(
      {"death-rate", detect::Detection{150.0, 1, "cluster"}});

  const AttackReport report =
      build_report(network, trace, keys, detections);
  EXPECT_EQ(report.keys_total, 3u);
  EXPECT_EQ(report.keys_dead, 2u);
  EXPECT_EQ(report.keys_dead_before_detection, 1u);  // only the 100 s death
  EXPECT_TRUE(report.detected);
  EXPECT_DOUBLE_EQ(report.detection_time, 150.0);
  EXPECT_EQ(report.detector_name, "death-rate");
  EXPECT_EQ(report.deaths_total, 3u);
  EXPECT_EQ(report.escalations, 1u);
  EXPECT_EQ(report.sessions_genuine, 1u);
  EXPECT_EQ(report.sessions_spoofed, 1u);
  EXPECT_DOUBLE_EQ(report.utility_delivered, 100.0);
  EXPECT_DOUBLE_EQ(report.spoof_delivered, 0.5);
  EXPECT_NEAR(report.exhaustion_ratio, 2.0 / 3.0, 1e-12);
}

TEST(Report, NoDetectorsMeansUndetected) {
  net::TopologyConfig tcfg;
  tcfg.node_count = 5;
  tcfg.comm_range = 80.0;
  Rng rng(4);
  const net::Network network = net::generate_topology(tcfg, rng);
  sim::Trace trace;
  const std::vector<net::NodeId> keys{0};
  const AttackReport report = build_report(network, trace, keys, {});
  EXPECT_FALSE(report.detected);
  EXPECT_EQ(report.keys_dead, 0u);
}

TEST(AttackParams, Validation) {
  AttackParams params;
  params.charger.depot = {0.0, 0.0};
  EXPECT_NO_THROW(params.validate());
  params.window_margin = -1.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = AttackParams{};
  params.comm_antenna_offset = 0.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = AttackParams{};
  params.campaign_slack = 0.0;
  EXPECT_THROW(params.validate(), ConfigError);
}

// Orchestrator behaviour through the scenario harness (smaller world for
// test speed).
analysis::ScenarioConfig small_scenario(std::uint64_t seed) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.topology.node_count = 50;
  cfg.topology.region = {{0.0, 0.0}, {250.0, 250.0}};
  cfg.topology.comm_range = 60.0;
  cfg.horizon = 2.5 * 86'400.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  cfg.attack.key_selection.max_count = 5;
  cfg.seed = seed;
  return cfg;
}

TEST(Orchestrator, SpoofedSessionsDeliverNothingButLookNormal) {
  const analysis::ScenarioResult result = analysis::run_scenario(
      small_scenario(42), analysis::ChargerMode::Attack);
  std::size_t spoofed = 0;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind != sim::SessionKind::Spoofed) continue;
    ++spoofed;
    EXPECT_LT(s.delivered, 0.01 * s.expected_gain);
    // The carrier at the comm antenna stays strong (RSSI evasion).
    EXPECT_GT(s.rf_observed, 0.0);
    // Same radiated energy per second as a benign session.
    EXPECT_NEAR(s.radiated / (s.end - s.start),
                result.report.sessions_genuine > 0 ? 10.0 : 10.0, 1e-6);
  }
  EXPECT_GT(spoofed, 0u);
}

TEST(Orchestrator, KillsMajorityOfKeyTargets) {
  const analysis::ScenarioResult result = analysis::run_scenario(
      small_scenario(43), analysis::ChargerMode::Attack);
  EXPECT_GE(result.report.exhaustion_ratio, 0.6);
}

TEST(Orchestrator, SpoofedNodesDieSilently) {
  const analysis::ScenarioResult result = analysis::run_scenario(
      small_scenario(44), analysis::ChargerMode::Attack);
  const std::set<net::NodeId> keys(result.keys.begin(), result.keys.end());
  std::set<net::NodeId> spoofed_nodes;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind == sim::SessionKind::Spoofed) spoofed_nodes.insert(s.node);
  }
  for (const sim::DeathRecord& d : result.trace.deaths) {
    if (spoofed_nodes.count(d.node) > 0) {
      EXPECT_FALSE(d.request_outstanding)
          << "spoofed key " << d.node << " died while begging";
    }
  }
}

TEST(Orchestrator, NoServiceModeNeverSpoofsAndGetsAudited) {
  analysis::ScenarioConfig cfg = small_scenario(45);
  cfg.attack.spoof_mode = SpoofMode::NoService;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_EQ(result.report.sessions_spoofed, 0u);
  // Starved key nodes produce escalations / died-waiting audits.
  EXPECT_TRUE(result.report.detected);
}

TEST(Orchestrator, SilentSkipCaughtByRssi) {
  analysis::ScenarioConfig cfg = small_scenario(46);
  cfg.attack.spoof_mode = SpoofMode::SilentSkip;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  ASSERT_TRUE(result.report.detected);
  EXPECT_EQ(result.report.detector_name, "rssi-presence");
}

TEST(Orchestrator, PartialCancelEvadesSingleSessionAudit) {
  // The extension attack: deliver ~45 % of expectation.  The energy-delta
  // single-session test (threshold 0.30) must NOT fire; the sequential
  // CUSUM must catch it instead.
  analysis::ScenarioConfig cfg = small_scenario(52);
  cfg.attack.spoof_mode = SpoofMode::PartialCancel;
  cfg.hardened_detectors = true;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  ASSERT_GT(result.report.sessions_spoofed, 0u);
  bool fleet_fired = false;
  for (const detect::SuiteResult& r : result.detections) {
    if (r.detector == "energy-delta") {
      EXPECT_FALSE(r.detection.has_value())
          << "single-session audit should be evaded by the partial leak";
    }
    if (r.detector == "cusum-shortfall") {
      // Each victim is short-changed exactly once, so per-node sequential
      // statistics never accumulate — a finding of this reproduction.
      EXPECT_FALSE(r.detection.has_value());
    }
    if (r.detector == "fleet-cusum" && r.detection.has_value()) {
      fleet_fired = true;
    }
  }
  EXPECT_TRUE(fleet_fired)
      << "only fleet-level aggregation catches once-per-victim leaks";
}

TEST(Orchestrator, PartialCancelDeliversTheLeak) {
  analysis::ScenarioConfig cfg = small_scenario(53);
  cfg.attack.spoof_mode = SpoofMode::PartialCancel;
  cfg.attack.partial_leak_ratio = 0.45;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  std::size_t spoofed = 0;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind != sim::SessionKind::Spoofed) continue;
    ++spoofed;
    EXPECT_NEAR(s.delivered / s.expected_gain, 0.45, 0.08);
  }
  EXPECT_GT(spoofed, 0u);
}

TEST(Orchestrator, HardenedSuiteCatchesPhaseCancel) {
  analysis::ScenarioConfig cfg = small_scenario(47);
  cfg.hardened_detectors = true;
  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  ASSERT_TRUE(result.report.detected);
  EXPECT_TRUE(result.report.detector_name == "energy-delta" ||
              result.report.detector_name == "cusum-shortfall");
}

TEST(Orchestrator, PacingDisabledKillsFasterOrEqual) {
  analysis::ScenarioConfig paced = small_scenario(48);
  analysis::ScenarioConfig unpaced = small_scenario(48);
  unpaced.attack.pace_limit = 0;
  const auto r_paced =
      analysis::run_scenario(paced, analysis::ChargerMode::Attack);
  const auto r_unpaced =
      analysis::run_scenario(unpaced, analysis::ChargerMode::Attack);
  // Without pacing, kills are never deferred: at least as many keys dead.
  EXPECT_GE(r_unpaced.report.keys_dead + 1, r_paced.report.keys_dead);
}

}  // namespace
}  // namespace wrsn::csa
