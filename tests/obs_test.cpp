// Tests for the deterministic metrics/tracing layer (src/obs/) and its
// runner integration: registry semantics, histogram bucket edges, merge
// order, JSON shape, and the headline determinism contract — metric output
// bit-identical across WRSN_THREADS = 1/2/8 on a fig5-style sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/metrics_io.hpp"
#include "analysis/scenario.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"

namespace wrsn::obs {
namespace {

TEST(MetricRegistry, CountersGaugesAndNamed) {
  MetricRegistry reg;
  reg.add(Metric::kWorldDeaths);
  reg.add(Metric::kWorldDeaths, 2.0);
  reg.add(Metric::kMcTravelJ, 12.5);
  reg.gauge_max(Metric::kSimHeapPeak, 10.0);
  reg.gauge_max(Metric::kSimHeapPeak, 4.0);  // lower: ignored
  reg.add_named("custom.counter", 3.0);
  EXPECT_DOUBLE_EQ(reg.value(Metric::kWorldDeaths), 3.0);
  EXPECT_DOUBLE_EQ(reg.value(Metric::kMcTravelJ), 12.5);
  EXPECT_DOUBLE_EQ(reg.value(Metric::kSimHeapPeak), 10.0);

  const std::vector<MetricRow> rows = reg.rows();
  ASSERT_EQ(rows.size(), kMetricCount + 1);  // fixed metrics + 1 named
  EXPECT_EQ(rows.back().name, "custom.counter");
  EXPECT_DOUBLE_EQ(rows.back().value, 3.0);
}

TEST(Histogram, BucketBoundariesAndOverflow) {
  // Linear layout [0, 1] with 4 buckets: edges at 0.25/0.5/0.75/1.0.
  MetricDef def;
  def.kind = MetricKind::kHistogram;
  def.lo = 0.0;
  def.hi = 1.0;
  def.buckets = 4;
  def.log_spaced = false;
  Histogram hist(def);
  ASSERT_EQ(hist.bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(hist.bounds()[0], 0.25);
  EXPECT_DOUBLE_EQ(hist.bounds()[3], 1.0);
  ASSERT_EQ(hist.counts().size(), 5u);  // finite buckets + overflow

  hist.observe(0.1);    // bucket 0
  hist.observe(0.25);   // exact upper edge: inclusive, still bucket 0
  hist.observe(0.26);   // just past the edge: bucket 1
  hist.observe(-5.0);   // below lo folds into bucket 0
  hist.observe(1.0);    // hi lands in the last finite bucket
  hist.observe(1.0001); // past hi: overflow bucket
  EXPECT_EQ(hist.counts()[0], 3u);
  EXPECT_EQ(hist.counts()[1], 1u);
  EXPECT_EQ(hist.counts()[2], 0u);
  EXPECT_EQ(hist.counts()[3], 1u);
  EXPECT_EQ(hist.counts()[4], 1u);  // overflow
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1.0001);
}

TEST(Histogram, LogSpacedLayoutCoversRangeExactly) {
  const MetricDef& def = metric_def(Metric::kMcSessionEnergyJ);
  ASSERT_EQ(def.kind, MetricKind::kHistogram);
  Histogram hist(def);
  ASSERT_EQ(hist.bounds().size(), def.buckets);
  // Bounds ascend and the last edge is exactly `hi` (no pow round-off).
  for (std::size_t i = 1; i < hist.bounds().size(); ++i) {
    EXPECT_LT(hist.bounds()[i - 1], hist.bounds()[i]);
  }
  EXPECT_DOUBLE_EQ(hist.bounds().back(), def.hi);
  hist.observe(def.hi);
  EXPECT_EQ(hist.counts()[def.buckets - 1], 1u);  // hi is not overflow
  EXPECT_EQ(hist.counts()[def.buckets], 0u);
}

TEST(MetricRegistry, MergeAddsCountersMaxesGaugesAndFoldsHistograms) {
  MetricRegistry a, b;
  a.add(Metric::kWorldDeaths, 2.0);
  b.add(Metric::kWorldDeaths, 5.0);
  a.gauge_max(Metric::kSimHeapPeak, 7.0);
  b.gauge_max(Metric::kSimHeapPeak, 3.0);
  a.observe(Metric::kNetRepairAffectedFraction, 0.1);
  b.observe(Metric::kNetRepairAffectedFraction, 0.9);
  b.add_named("only.in.b", 1.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(Metric::kWorldDeaths), 7.0);
  EXPECT_DOUBLE_EQ(a.value(Metric::kSimHeapPeak), 7.0);
  const Histogram& hist = a.histogram(Metric::kNetRepairAffectedFraction);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.min(), 0.1);
  EXPECT_DOUBLE_EQ(hist.max(), 0.9);
  EXPECT_EQ(a.rows().size(), kMetricCount + 1);
}

TEST(ScopedRegistry, InstallsAndRestoresIncludingNull) {
  EXPECT_EQ(current(), nullptr);
  MetricRegistry outer_reg;
  {
    ScopedRegistry outer(&outer_reg);
    EXPECT_EQ(current(), &outer_reg);
    {
      ScopedRegistry inner(nullptr);  // runner semantics: explicitly none
      EXPECT_EQ(current(), nullptr);
      count(Metric::kWorldDeaths);  // no registry: must be a no-op
    }
    EXPECT_EQ(current(), &outer_reg);
    count(Metric::kWorldDeaths);
  }
  EXPECT_EQ(current(), nullptr);
  EXPECT_DOUBLE_EQ(outer_reg.value(Metric::kWorldDeaths), 1.0);
}

#if WRSN_OBS
TEST(Macros, WriteToInstalledRegistry) {
  MetricRegistry reg;
  {
    ScopedRegistry scope(&reg);
    WRSN_OBS_COUNT(kWorldDeaths);
    WRSN_OBS_ADD(kMcTravelJ, 2.5);
    WRSN_OBS_GAUGE_MAX(kSimHeapPeak, 42.0);
    WRSN_OBS_OBSERVE(kNetRepairAffectedFraction, 0.5);
    { WRSN_OBS_SPAN(kCsaPlanNs); }
    { WRSN_OBS_SPAN_NAMED(std::string("detect.test.analyze_ns")); }
  }
  EXPECT_DOUBLE_EQ(reg.value(Metric::kWorldDeaths), 1.0);
  EXPECT_DOUBLE_EQ(reg.value(Metric::kMcTravelJ), 2.5);
  EXPECT_DOUBLE_EQ(reg.value(Metric::kSimHeapPeak), 42.0);
  EXPECT_EQ(reg.histogram(Metric::kNetRepairAffectedFraction).count(), 1u);
  EXPECT_EQ(reg.histogram(Metric::kCsaPlanNs).count(), 1u);
  const std::vector<MetricRow> rows = reg.rows();
  ASSERT_EQ(rows.size(), kMetricCount + 1);
  EXPECT_EQ(rows.back().name, "detect.test.analyze_ns");
  EXPECT_TRUE(rows.back().timing);
}
#else
TEST(Macros, CompileOutToNoOps) {
  MetricRegistry reg;
  {
    ScopedRegistry scope(&reg);
    WRSN_OBS_COUNT(kWorldDeaths);
    WRSN_OBS_SPAN(kCsaPlanNs);
  }
  EXPECT_DOUBLE_EQ(reg.value(Metric::kWorldDeaths), 0.0);
  EXPECT_EQ(reg.histogram(Metric::kCsaPlanNs).count(), 0u);
}
#endif

TEST(Json, SchemaShapeAndDeterministicSection) {
  MetricRegistry reg;
  reg.add(Metric::kWorldDeaths, 3.0);
  reg.observe_named_ns("detect.rssi.analyze_ns", 120.0);
  const std::string full = to_json(reg);
  EXPECT_NE(full.find("\"schema\": \"wrsn-metrics-v1\""), std::string::npos);
  EXPECT_NE(full.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(full.find("\"timing\""), std::string::npos);
  EXPECT_NE(full.find("\"world.deaths\": 3"), std::string::npos);
  EXPECT_NE(full.find("detect.rssi.analyze_ns"), std::string::npos);

  const std::string det = to_json(reg, {.include_timing = false});
  EXPECT_EQ(det.find("\"timing\""), std::string::npos);
  EXPECT_EQ(det.find("analyze_ns"), std::string::npos);  // timing excluded
  EXPECT_EQ(det.find("runner.trial_ns"), std::string::npos);
}

TEST(MetricDefs, ServiceMetricsAreTimingScoped) {
  // The mission-server tallies depend on request arrival order and cache
  // state (load, not simulated work), so every svc.* metric must live in
  // the timing section — the deterministic section stays a pure function
  // of the missions executed.
  const struct {
    Metric metric;
    std::string_view name;
    MetricKind kind;
  } expected[] = {
      {Metric::kSvcRequests, "svc.requests", MetricKind::kCounter},
      {Metric::kSvcExecutions, "svc.executions", MetricKind::kCounter},
      {Metric::kSvcCacheHits, "svc.cache_hits", MetricKind::kCounter},
      {Metric::kSvcCacheMisses, "svc.cache_misses", MetricKind::kCounter},
      {Metric::kSvcCacheEvictions, "svc.cache_evictions",
       MetricKind::kCounter},
      {Metric::kSvcCoalesced, "svc.coalesced", MetricKind::kCounter},
      {Metric::kSvcShed, "svc.shed", MetricKind::kCounter},
      {Metric::kSvcQueuePeak, "svc.queue_peak", MetricKind::kGaugeMax},
      {Metric::kSvcRequestNs, "svc.request_ns", MetricKind::kHistogram},
  };
  for (const auto& row : expected) {
    const MetricDef& def = metric_def(row.metric);
    EXPECT_EQ(def.name, row.name);
    EXPECT_EQ(def.kind, row.kind);
    EXPECT_TRUE(def.timing) << row.name << " must be timing-scoped";
  }

  // And therefore none of them may appear in a deterministic-only export.
  MetricRegistry reg;
  reg.add(Metric::kSvcRequests, 5.0);
  reg.gauge_max(Metric::kSvcQueuePeak, 3.0);
  const std::string det = to_json(reg, {.include_timing = false});
  EXPECT_EQ(det.find("svc."), std::string::npos);
}

TEST(Json, NumberFormattingRoundTrips) {
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-17.0), "-17");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(0.5), "0.5");
  // %.17g survives a double round-trip.
  EXPECT_EQ(json_number(0.1), "0.10000000000000001");
}

TEST(MetricsTable, SplitsDeterministicAndTimingRows) {
  MetricRegistry reg;
  reg.add(Metric::kWorldDeaths, 3.0);
  const analysis::Table deterministic = analysis::metrics_table(reg);
  const analysis::Table timing = analysis::timing_metrics_table(reg);
  // Every metric lands in exactly one of the two tables.
  EXPECT_EQ(deterministic.row_count() + timing.row_count(),
            reg.rows().size());
  EXPECT_GT(deterministic.row_count(), 0u);
  EXPECT_GT(timing.row_count(), 0u);  // kCsaPlanNs et al. are timing spans
}

// The headline contract on a fig5-style sweep: the merged registry handed
// back by run_trials is bit-identical at 1, 2, and 8 threads.  Mirrors
// runner_test's result-determinism pin, but for metrics.
TEST(RunnerMetrics, BitIdenticalAcrossThreadCounts) {
  const auto sweep = [](std::size_t threads) {
    analysis::ScenarioConfig cfg = analysis::default_scenario();
    cfg.topology.node_count = 50;
    cfg.topology.comm_range = 65.0 * std::sqrt(2.0);
    cfg.horizon = 12.0 * 3600.0;

    MetricRegistry metrics;
    runner::run_trials(
        std::size_t(4),
        [&cfg](std::size_t index, Rng&) {
          analysis::ScenarioConfig trial_cfg = cfg;
          trial_cfg.seed = index + 1;
          const analysis::ScenarioResult result = analysis::run_scenario(
              trial_cfg, index % 2 == 0 ? analysis::ChargerMode::Attack
                                        : analysis::ChargerMode::Benign);
          return result.alive_at_end;
        },
        {.threads = threads, .label = "obs-sweep", .metrics = &metrics});
    return to_json(metrics, {.include_timing = false});
  };

  const std::string at1 = sweep(1);
  const std::string at2 = sweep(2);
  const std::string at8 = sweep(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
#if WRSN_OBS
  // The sweep actually exercised the instrumentation.
  EXPECT_NE(at1.find("\"runner.trials\": 4"), std::string::npos);
  EXPECT_EQ(at1.find("\"sim.events_fired\": 0,"), std::string::npos);
#endif
}

// Trials must not leak metrics into (or read them from) the caller's
// registry: run_trials installs its own shard — or explicitly none.
TEST(RunnerMetrics, TrialsDoNotWriteToCallersRegistry) {
  MetricRegistry ambient;
  ScopedRegistry scope(&ambient);
  runner::run_trials(
      std::size_t(2),
      [](std::size_t, Rng&) {
        count(Metric::kWorldDeaths);  // would hit `ambient` if leaked
        return 0;
      },
      {.threads = 1, .label = "no-leak"});
  EXPECT_DOUBLE_EQ(ambient.value(Metric::kWorldDeaths), 0.0);
}

}  // namespace
}  // namespace wrsn::obs
