// Tests for the network substrate: graph construction, topology generators,
// routing/traffic/drain computation, and key-node analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "net/coverage.hpp"
#include "net/keynodes.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace wrsn::net {
namespace {

using geom::Vec2;

/// Hand-built line topology: sink - n0 - n1 - n2 - ... spaced `gap` apart,
/// sink at origin, nodes along +x.
Network make_line(std::size_t count, Meters gap = 10.0,
                  Meters comm_range = 12.0) {
  std::vector<SensorSpec> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    SensorSpec spec;
    spec.id = static_cast<NodeId>(i);
    spec.position = {gap * double(i + 1), 0.0};
    spec.data_rate_bps = 1000.0;
    nodes.push_back(spec);
  }
  return Network(std::move(nodes), {0.0, 0.0}, comm_range);
}

TEST(Network, RejectsBadInput) {
  std::vector<SensorSpec> empty;
  EXPECT_THROW(Network(std::move(empty), {0, 0}, 10.0), PreconditionError);

  std::vector<SensorSpec> wrong_id(1);
  wrong_id[0].id = 5;
  wrong_id[0].battery_capacity = 100.0;
  EXPECT_THROW(Network(std::move(wrong_id), {0, 0}, 10.0), PreconditionError);

  std::vector<SensorSpec> bad_range(1);
  bad_range[0].id = 0;
  bad_range[0].battery_capacity = 100.0;
  EXPECT_THROW(Network(std::move(bad_range), {0, 0}, 0.0), PreconditionError);
}

TEST(Network, LineAdjacency) {
  const Network net = make_line(4);
  EXPECT_EQ(net.size(), 4u);
  // Chain: each interior node has 2 neighbours, ends have 1.
  EXPECT_EQ(net.neighbors(0).size(), 1u);
  EXPECT_EQ(net.neighbors(1).size(), 2u);
  EXPECT_EQ(net.neighbors(2).size(), 2u);
  EXPECT_EQ(net.neighbors(3).size(), 1u);
  // Only node 0 reaches the sink directly (10 <= 12).
  EXPECT_TRUE(net.sink_reachable(0));
  EXPECT_FALSE(net.sink_reachable(1));
  ASSERT_EQ(net.sink_neighbors().size(), 1u);
  EXPECT_EQ(net.sink_neighbors()[0], 0u);
}

TEST(Network, DistanceHelpers) {
  const Network net = make_line(3);
  EXPECT_DOUBLE_EQ(net.distance(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(net.distance_to_sink(1), 20.0);
  EXPECT_THROW(net.node(99), PreconditionError);
}

TEST(Connectivity, LineIsConnected) {
  const Network net = make_line(5);
  EXPECT_TRUE(is_connected(net));
  EXPECT_EQ(count_sink_connected(net), 5u);
}

TEST(Connectivity, KillingMiddleDisconnectsTail) {
  const Network net = make_line(5);
  Bitmap alive(5, true);
  alive.reset(2);
  EXPECT_FALSE(is_connected(net, alive));
  // Nodes 0, 1 still reach the sink.
  EXPECT_EQ(count_sink_connected(net, alive), 2u);
}

TEST(Connectivity, AliveMaskSizeMismatchThrows) {
  const Network net = make_line(3);
  Bitmap bad(2, true);
  EXPECT_THROW(count_sink_connected(net, bad), PreconditionError);
}

TEST(Topology, GeneratorsProduceConnectedNetworks) {
  for (const Deployment dep :
       {Deployment::Uniform, Deployment::Grid, Deployment::Clustered}) {
    TopologyConfig cfg;
    cfg.node_count = 60;
    cfg.comm_range = 25.0;
    cfg.deployment = dep;
    Rng rng(17);
    const Network net = generate_topology(cfg, rng);
    EXPECT_EQ(net.size(), 60u);
    EXPECT_TRUE(is_connected(net));
    for (const SensorSpec& spec : net.nodes()) {
      EXPECT_TRUE(cfg.region.contains(spec.position));
      EXPECT_GT(spec.data_rate_bps, 0.0);
    }
  }
}

TEST(Topology, CorridorPlacesNodesInBands) {
  TopologyConfig cfg;
  cfg.node_count = 50;
  cfg.comm_range = 30.0;
  cfg.deployment = Deployment::Corridor;
  cfg.corridor_count = 3;  // 2 horizontal + 1 vertical
  Rng rng(23);
  const Network net = generate_topology(cfg, rng);
  EXPECT_TRUE(is_connected(net));

  // Every node sits inside one corridor band (half-band around an axis).
  const double w = cfg.region.hi.x - cfg.region.lo.x;
  const double h = cfg.region.hi.y - cfg.region.lo.y;
  const double band = 0.1 * std::min(w, h);
  const std::size_t nh = (cfg.corridor_count + 1) / 2;
  const std::size_t nv = cfg.corridor_count - nh;
  for (const SensorSpec& spec : net.nodes()) {
    bool in_band = false;
    for (std::size_t c = 0; c < nh; ++c) {
      const double yc = cfg.region.lo.y + (double(c) + 0.5) * h / double(nh);
      if (std::abs(spec.position.y - yc) <= band / 2.0 + 1e-9) in_band = true;
    }
    for (std::size_t c = 0; c < nv; ++c) {
      const double xc = cfg.region.lo.x + (double(c) + 0.5) * w / double(nv);
      if (std::abs(spec.position.x - xc) <= band / 2.0 + 1e-9) in_band = true;
    }
    EXPECT_TRUE(in_band) << "node " << spec.id << " at (" << spec.position.x
                         << ", " << spec.position.y << ") outside all bands";
  }
}

TEST(Topology, HeterogeneousClassesScaleWithinRatio) {
  TopologyConfig cfg;
  cfg.node_count = 60;
  cfg.comm_range = 25.0;
  cfg.class_count = 3;
  cfg.class_capacity_ratio = 2.0;
  cfg.class_rate_ratio = 1.5;
  Rng rng(29);
  const Network net = generate_topology(cfg, rng);

  std::set<double> capacities;
  for (const SensorSpec& spec : net.nodes()) {
    EXPECT_GE(spec.battery_capacity, cfg.battery_capacity - 1e-9);
    EXPECT_LE(spec.battery_capacity,
              cfg.battery_capacity * cfg.class_capacity_ratio + 1e-9);
    EXPECT_GT(spec.data_rate_bps, 0.0);
    capacities.insert(spec.battery_capacity);
  }
  // Three classes on 60 draws: more than one tier must actually appear.
  EXPECT_GE(capacities.size(), 2u);
}

TEST(Topology, SingleClassMatchesHomogeneousDraws) {
  // class_count = 1 must not consume any rng draws, so seeded topologies
  // generated before heterogeneity existed are reproduced bit-for-bit.
  TopologyConfig homo;
  homo.node_count = 40;
  homo.comm_range = 30.0;
  TopologyConfig classed = homo;
  classed.class_count = 1;
  classed.class_capacity_ratio = 3.0;  // ignored with one class
  Rng r1(5), r2(5);
  const Network a = generate_topology(homo, r1);
  const Network b = generate_topology(classed, r2);
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).position, b.node(i).position);
    EXPECT_DOUBLE_EQ(a.node(i).battery_capacity, b.node(i).battery_capacity);
    EXPECT_DOUBLE_EQ(a.node(i).data_rate_bps, b.node(i).data_rate_bps);
  }
}

TEST(Network, RebuildAfterMoveMatchesFreshConstruction) {
  TopologyConfig cfg;
  cfg.node_count = 70;
  cfg.comm_range = 28.0;
  Rng rng(31);
  Network net = generate_topology(cfg, rng);

  // Move a third of the nodes, then rebuild in place.
  Rng move_rng(101);
  std::vector<SensorSpec> moved(net.nodes().begin(), net.nodes().end());
  for (NodeId id = 0; id < net.size(); id += 3) {
    const Vec2 p = {move_rng.uniform(0.0, 100.0),
                    move_rng.uniform(0.0, 100.0)};
    moved[id].position = p;
    net.set_position(id, p);
  }
  net.rebuild_adjacency();

  // In-place rebuild must equal a from-scratch Network: same CSR rows
  // (ascending, same order), same distances, same sink view.
  const Network fresh(std::move(moved), net.sink_position(),
                      net.comm_range());
  ASSERT_EQ(net.size(), fresh.size());
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto an = net.neighbors(id);
    const auto bn = fresh.neighbors(id);
    ASSERT_EQ(an.size(), bn.size()) << "node " << id;
    const auto ad = net.neighbor_distances(id);
    const auto bd = fresh.neighbor_distances(id);
    for (std::size_t i = 0; i < an.size(); ++i) {
      EXPECT_EQ(an[i], bn[i]) << "node " << id;
      EXPECT_DOUBLE_EQ(ad[i], bd[i]) << "node " << id;
    }
    EXPECT_EQ(net.sink_reachable(id), fresh.sink_reachable(id));
    EXPECT_DOUBLE_EQ(net.distance_to_sink(id), fresh.distance_to_sink(id));
  }
  EXPECT_EQ(std::vector<NodeId>(net.sink_neighbors().begin(),
                                net.sink_neighbors().end()),
            std::vector<NodeId>(fresh.sink_neighbors().begin(),
                                fresh.sink_neighbors().end()));
}

TEST(Coverage, CountsMatchBruteForce) {
  TopologyConfig cfg;
  cfg.node_count = 60;
  cfg.comm_range = 25.0;
  Rng rng(43);
  const Network net = generate_topology(cfg, rng);
  const Meters radius = 22.0;

  Bitmap alive(net.size(), true);
  alive.reset(7);
  alive.reset(19);

  CoverageIndex index;
  index.build(net, alive, radius);
  ASSERT_TRUE(index.built());

  const auto brute = [&](NodeId j) {
    std::size_t c = 0;
    for (NodeId i = 0; i < net.size(); ++i) {
      if (i == j || !alive.test(i)) continue;
      if (geom::distance(net.node(i).position, net.node(j).position) <=
          radius) {
        ++c;
      }
    }
    return c;
  };
  for (NodeId j = 0; j < net.size(); ++j) {
    EXPECT_EQ(index.coverers(j), brute(j)) << "node " << j;
  }

  // Incremental death updates must track the brute force recount.
  for (const NodeId dead : {NodeId{3}, NodeId{31}, NodeId{55}}) {
    index.on_death(net, dead);
    alive.reset(dead);
    for (NodeId j = 0; j < net.size(); ++j) {
      EXPECT_EQ(index.coverers(j), brute(j))
          << "after death of " << dead << ", node " << j;
    }
  }
}

TEST(Coverage, ParamsValidate) {
  CoverageParams p;
  p.k = 2;
  p.radius = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = CoverageParams{};
  p.k = 1;
  p.bonus = -0.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = CoverageParams{};  // disabled: always fine
  EXPECT_NO_THROW(p.validate());
}

TEST(Topology, ImpossibleDensityThrows) {
  TopologyConfig cfg;
  cfg.node_count = 5;
  cfg.comm_range = 2.0;  // 5 nodes on 100x100 with 2 m radios: hopeless
  cfg.max_attempts = 4;
  Rng rng(1);
  EXPECT_THROW(generate_topology(cfg, rng), SimulationError);
}

TEST(Topology, ConfigValidation) {
  TopologyConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = TopologyConfig{};
  cfg.comm_range = -1.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = TopologyConfig{};
  cfg.sink_at_center = false;
  cfg.sink_position = {1e9, 1e9};
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = TopologyConfig{};
  cfg.corridor_count = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = TopologyConfig{};
  cfg.class_count = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = TopologyConfig{};
  cfg.class_capacity_ratio = 0.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = TopologyConfig{};
  cfg.class_rate_ratio = -1.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Topology, DeterministicForSameSeed) {
  TopologyConfig cfg;
  cfg.node_count = 40;
  cfg.comm_range = 30.0;
  Rng r1(5), r2(5);
  const Network a = generate_topology(cfg, r1);
  const Network b = generate_topology(cfg, r2);
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).position, b.node(i).position);
    EXPECT_DOUBLE_EQ(a.node(i).data_rate_bps, b.node(i).data_rate_bps);
  }
}

TEST(Routing, LineBuildsChainTree) {
  const Network net = make_line(4);
  const RoutingTree tree = build_routing_tree(net);
  EXPECT_TRUE(tree.reachable[0]);
  EXPECT_TRUE(tree.reachable[3]);
  EXPECT_EQ(tree.parent[0], kInvalidNode);  // direct to sink
  EXPECT_EQ(tree.parent[1], 0u);
  EXPECT_EQ(tree.parent[2], 1u);
  EXPECT_EQ(tree.parent[3], 2u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(tree.uplink_distance[i], 10.0);
  }
}

TEST(Routing, PathCostsIncreaseAlongChain) {
  const Network net = make_line(4);
  const RoutingTree tree = build_routing_tree(net);
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_GT(tree.path_cost[i], tree.path_cost[i - 1]);
  }
}

TEST(Routing, DeadNodesAreUnreachable) {
  const Network net = make_line(4);
  Bitmap alive(4, true);
  alive.reset(1);
  const RoutingTree tree = build_routing_tree(net, alive);
  EXPECT_TRUE(tree.reachable[0]);
  EXPECT_FALSE(tree.reachable[1]);
  EXPECT_FALSE(tree.reachable[2]);  // cut off behind the dead node
  EXPECT_FALSE(tree.reachable[3]);
}

TEST(Routing, SettleOrderIsTopological) {
  TopologyConfig cfg;
  cfg.node_count = 50;
  cfg.comm_range = 30.0;
  Rng rng(3);
  const Network net = generate_topology(cfg, rng);
  const RoutingTree tree = build_routing_tree(net);
  // A parent must settle before its child.
  std::vector<int> position(net.size(), -1);
  for (std::size_t i = 0; i < tree.settle_order.size(); ++i) {
    position[tree.settle_order[i]] = static_cast<int>(i);
  }
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!tree.reachable[id] || tree.parent[id] == kInvalidNode) continue;
    EXPECT_LT(position[tree.parent[id]], position[id]);
  }
}

TEST(Loads, LineAggregatesDownstreamTraffic) {
  const Network net = make_line(4);  // each node generates 1000 bps
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  EXPECT_DOUBLE_EQ(loads.tx_bps[3], 1000.0);
  EXPECT_DOUBLE_EQ(loads.tx_bps[2], 2000.0);
  EXPECT_DOUBLE_EQ(loads.tx_bps[1], 3000.0);
  EXPECT_DOUBLE_EQ(loads.tx_bps[0], 4000.0);
  EXPECT_DOUBLE_EQ(loads.rx_bps[0], 3000.0);
  EXPECT_DOUBLE_EQ(loads.rx_bps[3], 0.0);
}

TEST(Loads, TrafficConservation) {
  // Total tx at sink uplinks equals total generated by reachable nodes.
  TopologyConfig cfg;
  cfg.node_count = 80;
  cfg.comm_range = 30.0;
  Rng rng(11);
  const Network net = generate_topology(cfg, rng);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);

  double generated = 0.0;
  for (const SensorSpec& spec : net.nodes()) generated += spec.data_rate_bps;
  double into_sink = 0.0;
  for (NodeId id = 0; id < net.size(); ++id) {
    if (tree.reachable[id] && tree.parent[id] == kInvalidNode) {
      into_sink += loads.tx_bps[id];
    }
  }
  EXPECT_NEAR(into_sink, generated, 1e-6);
}

TEST(Drains, SensingFloorAlwaysPaid) {
  const Network net = make_line(3);
  Bitmap alive(3, true);
  alive.reset(0);  // nodes 1, 2 unreachable
  const RoutingTree tree = build_routing_tree(net, alive);
  const TrafficLoads loads = compute_loads(net, tree, alive);
  DrainParams params;
  params.sensing_power = 0.005;
  const auto drains = compute_drain_rates(net, tree, loads, params);
  EXPECT_DOUBLE_EQ(drains[1], 0.005);  // unreachable: sensing only
  EXPECT_DOUBLE_EQ(drains[2], 0.005);
}

TEST(Drains, RelayDrainsMoreThanLeaf) {
  const Network net = make_line(4);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  const auto drains = compute_drain_rates(net, tree, loads);
  EXPECT_GT(drains[0], drains[3]);
  EXPECT_GT(drains[1], drains[2]);
}

TEST(KeyNodes, LineInteriorNodesAreArticulation) {
  const Network net = make_line(4);
  const auto cuts = articulation_points(net);
  // All but the last node are cut vertices of the sink-rooted chain.
  const std::set<NodeId> cut_set(cuts.begin(), cuts.end());
  EXPECT_TRUE(cut_set.count(0));
  EXPECT_TRUE(cut_set.count(1));
  EXPECT_TRUE(cut_set.count(2));
  EXPECT_FALSE(cut_set.count(3));
}

TEST(KeyNodes, TriangleHasNoArticulation) {
  // Three mutually-connected nodes all adjacent to the sink: no cuts.
  std::vector<SensorSpec> nodes(3);
  for (NodeId i = 0; i < 3; ++i) {
    nodes[i].id = i;
    nodes[i].data_rate_bps = 100.0;
  }
  nodes[0].position = {5.0, 0.0};
  nodes[1].position = {0.0, 5.0};
  nodes[2].position = {4.0, 4.0};
  const Network net(std::move(nodes), {0.0, 0.0}, 10.0);
  EXPECT_TRUE(articulation_points(net).empty());
}

TEST(KeyNodes, TarjanMatchesBruteForce) {
  // Property check on random graphs: a node is an articulation point iff
  // removing it disconnects some alive node from the sink.
  for (int seed = 1; seed <= 5; ++seed) {
    TopologyConfig cfg;
    cfg.node_count = 40;
    cfg.comm_range = 24.0;
    Rng rng(static_cast<std::uint64_t>(seed));
    const Network net = generate_topology(cfg, rng);
    const auto cuts = articulation_points(net);
    const std::set<NodeId> cut_set(cuts.begin(), cuts.end());

    const std::size_t base = count_sink_connected(net);
    for (NodeId id = 0; id < net.size(); ++id) {
      Bitmap alive(net.size(), true);
      alive.reset(id);
      const std::size_t connected = count_sink_connected(net, alive);
      const bool disconnects = connected < base - 1;
      EXPECT_EQ(cut_set.count(id) > 0, disconnects)
          << "seed " << seed << " node " << id;
    }
  }
}

TEST(KeyNodes, RankOrdersByDisconnectThenTraffic) {
  const Network net = make_line(5);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  const auto ranked = rank_key_nodes(net, loads);
  ASSERT_EQ(ranked.size(), 5u);
  // Node 0 disconnects 4 others, node 1 disconnects 3, etc.
  EXPECT_EQ(ranked[0].id, 0u);
  EXPECT_EQ(ranked[0].disconnect_count, 4u);
  EXPECT_EQ(ranked[1].id, 1u);
  EXPECT_EQ(ranked[1].disconnect_count, 3u);
  EXPECT_EQ(ranked.back().id, 4u);
  EXPECT_EQ(ranked.back().disconnect_count, 0u);
}

TEST(KeyNodes, SelectArticulationStopsAtNonCuts) {
  const Network net = make_line(5);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  KeyNodeConfig cfg;
  cfg.rule = KeyNodeRule::Articulation;
  cfg.max_count = 10;
  const auto keys = select_key_nodes(net, loads, cfg);
  EXPECT_EQ(keys.size(), 4u);  // node 4 is not a cut vertex
}

TEST(KeyNodes, SelectTopTraffic) {
  const Network net = make_line(5);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  KeyNodeConfig cfg;
  cfg.rule = KeyNodeRule::TopTraffic;
  cfg.max_count = 2;
  const auto keys = select_key_nodes(net, loads, cfg);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 0u);  // carries everything
  EXPECT_EQ(keys[1], 1u);
}

TEST(KeyNodes, HybridFillsWithTraffic) {
  const Network net = make_line(5);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  KeyNodeConfig cfg;
  cfg.rule = KeyNodeRule::Hybrid;
  cfg.max_count = 5;
  const auto keys = select_key_nodes(net, loads, cfg);
  EXPECT_EQ(keys.size(), 5u);  // 4 cuts + node 4 via traffic fill
  const std::set<NodeId> key_set(keys.begin(), keys.end());
  EXPECT_TRUE(key_set.count(4));
}

TEST(KeyNodes, MaxCountRespected) {
  const Network net = make_line(5);
  const RoutingTree tree = build_routing_tree(net);
  const TrafficLoads loads = compute_loads(net, tree);
  KeyNodeConfig cfg;
  cfg.max_count = 2;
  for (const KeyNodeRule rule : {KeyNodeRule::Articulation,
                                 KeyNodeRule::TopTraffic,
                                 KeyNodeRule::Hybrid}) {
    cfg.rule = rule;
    EXPECT_LE(select_key_nodes(net, loads, cfg).size(), 2u);
  }
}

// Parameterized: deployments stay connected across sizes.
class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, Deployment>> {};

TEST_P(TopologySweep, ConnectedAtAllSizes) {
  const auto [count, dep] = GetParam();
  TopologyConfig cfg;
  cfg.node_count = static_cast<std::size_t>(count);
  cfg.comm_range = 30.0;
  cfg.deployment = dep;
  Rng rng(static_cast<std::uint64_t>(count) * 31 + 7);
  const Network net = generate_topology(cfg, rng);
  EXPECT_TRUE(is_connected(net));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopologySweep,
    ::testing::Combine(::testing::Values(20, 50, 100, 150),
                       ::testing::Values(Deployment::Uniform, Deployment::Grid,
                                         Deployment::Clustered,
                                         Deployment::Corridor)));

}  // namespace
}  // namespace wrsn::net
