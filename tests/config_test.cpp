// Tests for the INI scenario-configuration loader.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/config_io.hpp"
#include "common/check.hpp"

namespace wrsn::analysis {
namespace {

std::map<std::string, std::string> parse(const std::string& text) {
  std::istringstream in(text);
  return parse_ini(in);
}

TEST(Ini, ParsesKeysCommentsAndSections) {
  const auto entries = parse(
      "# comment line\n"
      "[topology]\n"
      "topology.node_count = 50   # trailing comment\n"
      "\n"
      "seed=9\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at("topology.node_count"), "50");
  EXPECT_EQ(entries.at("seed"), "9");
}

TEST(Ini, RejectsMalformedLines) {
  EXPECT_THROW(parse("this is not a key value pair\n"), ConfigError);
  EXPECT_THROW(parse("= value\n"), ConfigError);
  EXPECT_THROW(parse("key =\n"), ConfigError);
}

TEST(Ini, RejectsDuplicateKeys) {
  EXPECT_THROW(parse("seed = 1\nseed = 2\n"), ConfigError);
}

TEST(Config, AppliesOverridesOnDefaults) {
  std::istringstream in(
      "topology.node_count = 42\n"
      "topology.region_size = 250\n"
      "world.patience = 5000\n"
      "attack.spoof_mode = partial-cancel\n"
      "attack.key_rule = top-traffic\n"
      "benign.policy = tour\n"
      "horizon = 100000\n"
      "hardened_detectors = true\n"
      "seed = 77\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_EQ(cfg.topology.node_count, 42u);
  EXPECT_DOUBLE_EQ(cfg.topology.region.hi.x, 250.0);
  EXPECT_DOUBLE_EQ(cfg.world.patience, 5000.0);
  EXPECT_EQ(cfg.attack.spoof_mode, csa::SpoofMode::PartialCancel);
  EXPECT_EQ(cfg.attack.key_selection.rule, net::KeyNodeRule::TopTraffic);
  EXPECT_EQ(cfg.benign.policy, mc::SchedulePolicy::Tour);
  EXPECT_DOUBLE_EQ(cfg.horizon, 100'000.0);
  // Horizon propagates into the attack campaign deadline.
  EXPECT_DOUBLE_EQ(cfg.attack.campaign_deadline, 100'000.0);
  EXPECT_TRUE(cfg.hardened_detectors);
  EXPECT_EQ(cfg.seed, 77u);
}

TEST(Config, UnsetKeysKeepDefaults) {
  std::istringstream in("seed = 3\n");
  const ScenarioConfig cfg = load_config(in);
  const ScenarioConfig defaults = default_scenario();
  EXPECT_EQ(cfg.topology.node_count, defaults.topology.node_count);
  EXPECT_DOUBLE_EQ(cfg.world.patience, defaults.world.patience);
  EXPECT_EQ(cfg.seed, 3u);
}

TEST(Config, UnknownKeyThrows) {
  std::istringstream in("topology.node_cnt = 10\n");  // typo
  EXPECT_THROW(load_config(in), ConfigError);
}

TEST(Config, BadValuesThrow) {
  {
    std::istringstream in("topology.node_count = fifty\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("topology.node_count = 12.5\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("hardened_detectors = maybe\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("attack.spoof_mode = invisible\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("world.patience = 5000km\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/config.ini"), ConfigError);
}

TEST(Config, LoadedConfigValidatesAndRuns) {
  std::istringstream in(
      "topology.node_count = 40\n"
      "topology.region_size = 220\n"
      "horizon = 86400\n"
      "seed = 5\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_NO_THROW(cfg.topology.validate());
  EXPECT_NO_THROW(cfg.world.validate());
  const ScenarioResult result = run_scenario(cfg, ChargerMode::Benign);
  EXPECT_EQ(result.node_count, 40u);
}

}  // namespace
}  // namespace wrsn::analysis
