// Tests for the INI scenario-configuration loader.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/config_io.hpp"
#include "common/check.hpp"

namespace wrsn::analysis {
namespace {

std::map<std::string, std::string> parse(const std::string& text) {
  std::istringstream in(text);
  return parse_ini(in);
}

TEST(Ini, ParsesKeysCommentsAndSections) {
  const auto entries = parse(
      "# comment line\n"
      "[topology]\n"
      "topology.node_count = 50   # trailing comment\n"
      "\n"
      "seed=9\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at("topology.node_count"), "50");
  EXPECT_EQ(entries.at("seed"), "9");
}

TEST(Ini, RejectsMalformedLines) {
  EXPECT_THROW(parse("this is not a key value pair\n"), ConfigError);
  EXPECT_THROW(parse("= value\n"), ConfigError);
  EXPECT_THROW(parse("key =\n"), ConfigError);
}

TEST(Ini, RejectsDuplicateKeys) {
  EXPECT_THROW(parse("seed = 1\nseed = 2\n"), ConfigError);
}

TEST(Config, AppliesOverridesOnDefaults) {
  std::istringstream in(
      "topology.node_count = 42\n"
      "topology.region_size = 250\n"
      "world.patience = 5000\n"
      "attack.spoof_mode = partial-cancel\n"
      "attack.key_rule = top-traffic\n"
      "benign.policy = tour\n"
      "horizon = 100000\n"
      "hardened_detectors = true\n"
      "seed = 77\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_EQ(cfg.topology.node_count, 42u);
  EXPECT_DOUBLE_EQ(cfg.topology.region.hi.x, 250.0);
  EXPECT_DOUBLE_EQ(cfg.world.patience, 5000.0);
  EXPECT_EQ(cfg.attack.spoof_mode, csa::SpoofMode::PartialCancel);
  EXPECT_EQ(cfg.attack.key_selection.rule, net::KeyNodeRule::TopTraffic);
  EXPECT_EQ(cfg.benign.policy, mc::SchedulePolicy::Tour);
  EXPECT_DOUBLE_EQ(cfg.horizon, 100'000.0);
  // Horizon propagates into the attack campaign deadline.
  EXPECT_DOUBLE_EQ(cfg.attack.campaign_deadline, 100'000.0);
  EXPECT_TRUE(cfg.hardened_detectors);
  EXPECT_EQ(cfg.seed, 77u);
}

TEST(Config, ScenarioFrontierKeysApply) {
  std::istringstream in(
      "topology.deployment = corridor\n"
      "topology.corridor_count = 2\n"
      "topology.min_separation = 4\n"
      "topology.class_count = 3\n"
      "topology.class_capacity_ratio = 2.5\n"
      "topology.class_rate_ratio = 1.5\n"
      "mobility.fraction = 0.25\n"
      "mobility.interval = 1200\n"
      "mobility.speed_min = 0.4\n"
      "mobility.speed_max = 2.0\n"
      "mobility.pause_min = 30\n"
      "mobility.pause_max = 300\n"
      "coverage.k = 2\n"
      "coverage.radius = 55\n"
      "coverage.bonus = 1.5\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_EQ(cfg.topology.deployment, net::Deployment::Corridor);
  EXPECT_EQ(cfg.topology.corridor_count, 2u);
  EXPECT_DOUBLE_EQ(cfg.topology.min_separation, 4.0);
  EXPECT_EQ(cfg.topology.class_count, 3u);
  EXPECT_DOUBLE_EQ(cfg.topology.class_capacity_ratio, 2.5);
  EXPECT_DOUBLE_EQ(cfg.topology.class_rate_ratio, 1.5);
  EXPECT_DOUBLE_EQ(cfg.world.mobility.fraction, 0.25);
  EXPECT_DOUBLE_EQ(cfg.world.mobility.interval, 1'200.0);
  EXPECT_DOUBLE_EQ(cfg.world.mobility.speed_min, 0.4);
  EXPECT_DOUBLE_EQ(cfg.world.mobility.speed_max, 2.0);
  EXPECT_DOUBLE_EQ(cfg.world.mobility.pause_min, 30.0);
  EXPECT_DOUBLE_EQ(cfg.world.mobility.pause_max, 300.0);
  EXPECT_EQ(cfg.world.coverage.k, 2u);
  EXPECT_DOUBLE_EQ(cfg.world.coverage.radius, 55.0);
  EXPECT_DOUBLE_EQ(cfg.world.coverage.bonus, 1.5);
}

TEST(Config, ScenarioFrontierBadValuesThrow) {
  {
    std::istringstream in("topology.deployment = ring\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("mobility.fraction = 2.0\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in(
        "mobility.fraction = 0.5\nmobility.speed_max = 0.1\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("topology.class_count = 0\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("coverage.k = 1\ncoverage.bonus = -1\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
}

TEST(Config, UnsetKeysKeepDefaults) {
  std::istringstream in("seed = 3\n");
  const ScenarioConfig cfg = load_config(in);
  const ScenarioConfig defaults = default_scenario();
  EXPECT_EQ(cfg.topology.node_count, defaults.topology.node_count);
  EXPECT_DOUBLE_EQ(cfg.world.patience, defaults.world.patience);
  EXPECT_EQ(cfg.seed, 3u);
}

TEST(Config, UnknownKeyThrows) {
  std::istringstream in("topology.node_cnt = 10\n");  // typo
  EXPECT_THROW(load_config(in), ConfigError);
}

TEST(Config, BadValuesThrow) {
  {
    std::istringstream in("topology.node_count = fifty\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("topology.node_count = 12.5\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("hardened_detectors = maybe\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("attack.spoof_mode = invisible\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("world.patience = 5000km\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
}

TEST(Config, FaultSectionRoundTrips) {
  std::istringstream in(
      "[faults]\n"
      "faults.mc_breakdown_mtbf = 1800\n"
      "faults.mc_repair_mean = 600\n"
      "faults.mc_budget_loss = 0.1\n"
      "faults.mc_permanent_at = 43200\n"
      "faults.node_burst_mtbf = 3600\n"
      "faults.node_burst_size = 3\n"
      "faults.phase_noise_mtbf = 7200\n"
      "faults.phase_noise_duration = 1200\n"
      "faults.phase_noise_scale = 25\n"
      "faults.escalation_drop_prob = 0.25\n"
      "faults.escalation_delay_prob = 0.5\n"
      "faults.escalation_delay_max = 900\n"
      "faults.battery_drift_mtbf = 7200\n"
      "faults.battery_drift_power = 0.004\n"
      "faults.battery_drift_duration = 3600\n"
      "seed = 4\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_DOUBLE_EQ(cfg.faults.mc_breakdown_mtbf, 1'800.0);
  EXPECT_DOUBLE_EQ(cfg.faults.mc_repair_mean, 600.0);
  EXPECT_DOUBLE_EQ(cfg.faults.mc_budget_loss, 0.1);
  EXPECT_DOUBLE_EQ(cfg.faults.mc_permanent_at, 43'200.0);
  EXPECT_DOUBLE_EQ(cfg.faults.node_burst_mtbf, 3'600.0);
  EXPECT_EQ(cfg.faults.node_burst_size, 3u);
  EXPECT_DOUBLE_EQ(cfg.faults.phase_noise_mtbf, 7'200.0);
  EXPECT_DOUBLE_EQ(cfg.faults.phase_noise_duration, 1'200.0);
  EXPECT_DOUBLE_EQ(cfg.faults.phase_noise_scale, 25.0);
  EXPECT_DOUBLE_EQ(cfg.faults.escalation_drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(cfg.faults.escalation_delay_prob, 0.5);
  EXPECT_DOUBLE_EQ(cfg.faults.escalation_delay_max, 900.0);
  EXPECT_DOUBLE_EQ(cfg.faults.battery_drift_mtbf, 7'200.0);
  EXPECT_DOUBLE_EQ(cfg.faults.battery_drift_power, 0.004);
  EXPECT_DOUBLE_EQ(cfg.faults.battery_drift_duration, 3'600.0);
  EXPECT_TRUE(cfg.faults.any());
}

TEST(Config, FaultsDefaultDisabled) {
  std::istringstream in("seed = 1\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_FALSE(cfg.faults.any());
}

TEST(Config, InvalidFaultValuesRejectedAtLoadTime) {
  // apply_config runs FaultParams::validate, so cross-field constraints
  // surface when the file is loaded, not when the mission starts.
  {
    std::istringstream in("faults.mc_breakdown_mtbf = -5\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in(
        "faults.mc_breakdown_mtbf = 3600\n"
        "faults.mc_repair_mean = 0\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in(
        "faults.node_burst_mtbf = 3600\n"
        "faults.node_burst_size = 0\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in(
        "faults.phase_noise_mtbf = 3600\n"
        "faults.phase_noise_duration = 600\n"
        "faults.phase_noise_scale = 0.5\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in(
        "faults.escalation_drop_prob = 0.7\n"
        "faults.escalation_delay_prob = 0.7\n"
        "faults.escalation_delay_max = 60\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
  {
    std::istringstream in("faults.escalation_drop_prob = 1.5\n");
    EXPECT_THROW(load_config(in), ConfigError);
  }
}

TEST(Config, InitialLevelOverridesApply) {
  std::istringstream in(
      "world.initial_level_min = 0.35\n"
      "world.initial_level_max = 0.55\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_DOUBLE_EQ(cfg.world.initial_level_min, 0.35);
  EXPECT_DOUBLE_EQ(cfg.world.initial_level_max, 0.55);
}

TEST(Config, FaultedConfigRunsDeterministically) {
  const char* text =
      "topology.node_count = 30\n"
      "topology.region_size = 220\n"
      "horizon = 86400\n"
      "seed = 8\n"
      "[faults]\n"
      "faults.mc_breakdown_mtbf = 14400\n"
      "faults.mc_repair_mean = 1800\n"
      "faults.escalation_delay_prob = 0.3\n"
      "faults.escalation_delay_max = 600\n";
  std::istringstream in_a(text), in_b(text);
  const ScenarioResult a = run_scenario(load_config(in_a), ChargerMode::Benign);
  const ScenarioResult b = run_scenario(load_config(in_b), ChargerMode::Benign);
  EXPECT_EQ(a.trace.sessions.size(), b.trace.sessions.size());
  EXPECT_EQ(a.fault_stats.mc_breakdowns, b.fault_stats.mc_breakdowns);
  EXPECT_EQ(a.fault_stats.escalations_delayed, b.fault_stats.escalations_delayed);
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/config.ini"), ConfigError);
}

TEST(Config, LoadedConfigValidatesAndRuns) {
  std::istringstream in(
      "topology.node_count = 40\n"
      "topology.region_size = 220\n"
      "horizon = 86400\n"
      "seed = 5\n");
  const ScenarioConfig cfg = load_config(in);
  EXPECT_NO_THROW(cfg.topology.validate());
  EXPECT_NO_THROW(cfg.world.validate());
  const ScenarioResult result = run_scenario(cfg, ChargerMode::Benign);
  EXPECT_EQ(result.node_count, 40u);
}

}  // namespace
}  // namespace wrsn::analysis
