// End-to-end integration tests: full missions exercising every module
// together, checking the paper's headline claims and cross-module
// invariants (energy conservation, stealth, detector separations).
#include <gtest/gtest.h>

#include <set>

#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"

namespace wrsn {
namespace {

using analysis::ChargerMode;
using analysis::ScenarioConfig;
using analysis::ScenarioResult;

ScenarioConfig mission(std::uint64_t seed) {
  ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = seed;
  return cfg;
}

TEST(Integration, BenignMissionKeepsNetworkHealthy) {
  const ScenarioResult result = analysis::run_scenario(mission(101), ChargerMode::Benign);
  // Only background hardware failures may kill nodes.
  EXPECT_GE(result.alive_at_end + 4, result.node_count);
  EXPECT_FALSE(result.report.detected);
  EXPECT_LT(result.report.escalations, 8u);
}

TEST(Integration, HeadlineClaim_MajorityKeysExhaustedUndetected) {
  // The paper: "CSA can exhaust at least 80% of key nodes without being
  // detected."  Aggregate over seeds; the mean exhaustion must clear 80 %
  // and the undetected-exhaustion mean must clear ~60 % (individual seeds
  // fluctuate).
  std::vector<double> exhausted, undetected;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ScenarioResult r = analysis::run_scenario(mission(seed), ChargerMode::Attack);
    exhausted.push_back(r.report.exhaustion_ratio);
    undetected.push_back(r.report.undetected_exhaustion_ratio);
  }
  EXPECT_GE(analysis::summarize(exhausted).mean, 0.7);
  EXPECT_GE(analysis::summarize(undetected).mean, 0.55);
}

TEST(Integration, SpoofedEnergyIsNegligible) {
  const ScenarioResult result = analysis::run_scenario(mission(3), ChargerMode::Attack);
  ASSERT_GT(result.report.sessions_spoofed, 0u);
  // Across all spoofed sessions, total harvested energy is < 1 J while a
  // single genuine session delivers kJ.
  EXPECT_LT(result.report.spoof_delivered, 50.0);
  EXPECT_GT(result.report.utility_delivered, 1e5);
}

TEST(Integration, AttackRadiationLedgerLooksBenign) {
  const ScenarioResult attack = analysis::run_scenario(mission(4), ChargerMode::Attack);
  // Depot-side audit: radiated energy per session-second is the source
  // power for both kinds; the spoofed bucket is indistinguishable in rate.
  double genuine_time = 0.0, spoof_time = 0.0;
  for (const sim::SessionRecord& s : attack.trace.sessions) {
    if (s.kind == sim::SessionKind::Spoofed) {
      spoof_time += s.end - s.start;
    } else {
      genuine_time += s.end - s.start;
    }
  }
  ASSERT_GT(spoof_time, 0.0);
  const double genuine_rate = attack.ledger.radiated_genuine / genuine_time;
  const double spoof_rate = attack.ledger.radiated_spoofed / spoof_time;
  EXPECT_NEAR(genuine_rate, spoof_rate, 1e-6);
}

TEST(Integration, AttackPartitionsNetworkBenignDoesNot) {
  const ScenarioResult benign = analysis::run_scenario(mission(5), ChargerMode::Benign);
  const ScenarioResult attack = analysis::run_scenario(mission(5), ChargerMode::Attack);
  EXPECT_TRUE(attack.report.partition_time.has_value());
  // A benign mission may lose an unlucky hardware-failed cut vertex, but
  // the attack partitions far earlier when both partition.
  if (benign.report.partition_time.has_value()) {
    EXPECT_LT(*attack.report.partition_time,
              *benign.report.partition_time);
  }
  EXPECT_LT(attack.sink_connected_at_end, benign.sink_connected_at_end);
}

TEST(Integration, EnergyConservationPerNode) {
  // For every node: initial + delivered - consumed == final (within eps),
  // checked via the trace and end-state on a benign run.
  ScenarioConfig cfg = mission(6);
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.horizon = 2 * 86'400.0;
  cfg.world.hardware_mtbf = 0.0;  // keep the ledger pure
  const ScenarioResult result = analysis::run_scenario(cfg, ChargerMode::Benign);
  // Total delivered must not exceed what the charger radiated.
  double delivered = 0.0;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    delivered += s.delivered;
  }
  EXPECT_LE(delivered, result.ledger.radiated_total() + 1e-6);
  EXPECT_GT(delivered, 0.0);
}

TEST(Integration, EmergencyDefenseExposesCsa) {
  // With the low-voltage-interrupt defense on, spoof-killed nodes scream
  // before dying: the service audit catches the repeated emergencies.
  ScenarioConfig cfg = mission(7);
  cfg.world.emergency_enabled = true;
  const ScenarioResult result = analysis::run_scenario(cfg, ChargerMode::Attack);
  bool emergency_seen = false;
  for (const sim::RequestRecord& r : result.trace.requests) {
    if (r.emergency) emergency_seen = true;
  }
  EXPECT_TRUE(emergency_seen);
  EXPECT_TRUE(result.report.detected);
}

TEST(Integration, DetectorSeparationMatrix) {
  // The qualitative detection matrix the paper's security argument rests
  // on: deployed suite misses phase-cancel but catches both naive modes.
  using csa::SpoofMode;
  ScenarioConfig cfg = mission(8);

  cfg.attack.spoof_mode = SpoofMode::SilentSkip;
  const ScenarioResult silent = analysis::run_scenario(cfg, ChargerMode::Attack);
  ASSERT_TRUE(silent.report.detected);
  EXPECT_EQ(silent.report.detector_name, "rssi-presence");

  cfg.attack.spoof_mode = SpoofMode::NoService;
  const ScenarioResult starve = analysis::run_scenario(cfg, ChargerMode::Attack);
  ASSERT_TRUE(starve.report.detected);
  EXPECT_EQ(starve.report.detector_name, "service-audit");

  cfg.attack.spoof_mode = SpoofMode::PhaseCancel;
  cfg.hardened_detectors = true;
  const ScenarioResult hardened = analysis::run_scenario(cfg, ChargerMode::Attack);
  ASSERT_TRUE(hardened.report.detected);
  EXPECT_TRUE(hardened.report.detector_name == "energy-delta" ||
              hardened.report.detector_name == "cusum-shortfall");
}

TEST(Integration, SpoofedKeysNeverEscalate) {
  const ScenarioResult result = analysis::run_scenario(mission(9), ChargerMode::Attack);
  std::set<net::NodeId> spoofed;
  for (const sim::SessionRecord& s : result.trace.sessions) {
    if (s.kind == sim::SessionKind::Spoofed) spoofed.insert(s.node);
  }
  for (const sim::EscalationRecord& e : result.trace.escalations) {
    EXPECT_EQ(spoofed.count(e.node), 0u)
        << "spoofed node " << e.node << " escalated";
  }
}

TEST(Integration, PlannerOrderingCsaVsBaselines) {
  // CSA should dominate Random/Greedy on cover utility while matching or
  // beating their kill counts.
  const csa::RandomPlanner random;
  const csa::GreedyNearestPlanner greedy;
  ScenarioConfig cfg = mission(10);

  const ScenarioResult csa_run = analysis::run_scenario(cfg, ChargerMode::Attack);
  const ScenarioResult random_run =
      analysis::run_scenario(cfg, ChargerMode::Attack, &random);
  const ScenarioResult greedy_run =
      analysis::run_scenario(cfg, ChargerMode::Attack, &greedy);

  EXPECT_GE(csa_run.report.utility_delivered,
            random_run.report.utility_delivered);
  EXPECT_GE(csa_run.report.keys_dead + 2, random_run.report.keys_dead);
  EXPECT_GE(csa_run.report.keys_dead + 2, greedy_run.report.keys_dead);
}

TEST(Integration, PermanentChargerLossDoesNotDeadlockMission) {
  // Random breakdowns, then a permanent one at 60 % of the horizon, with
  // escalation-delay churn on top.  The attack-mode mission must still run
  // to completion with a bounded event count (the fuzzer's liveness bound)
  // and no session may start once the charger is gone for good.
  ScenarioConfig cfg = mission(11);
  cfg.faults.mc_breakdown_mtbf = cfg.horizon / 4.0;
  cfg.faults.mc_repair_mean = 3'600.0;
  cfg.faults.mc_permanent_at = cfg.horizon * 0.6;
  cfg.faults.escalation_delay_prob = 0.5;
  cfg.faults.escalation_delay_max = 1'800.0;
  const ScenarioResult r = analysis::run_scenario(cfg, ChargerMode::Attack);
  EXPECT_LT(r.events_executed, 2'000'000u + 20'000u * r.node_count);
  EXPECT_GE(r.fault_stats.mc_breakdowns, 1u);
  ASSERT_GT(r.trace.sessions.size(), 0u);
  for (const sim::SessionRecord& s : r.trace.sessions) {
    EXPECT_LT(s.start, cfg.faults.mc_permanent_at + 1e-9);
  }
}

TEST(Integration, FleetSurvivesPermanentLossOfOneCharger) {
  // Only the faulted vehicle stops; its fleet-mates keep their own cells
  // alive, so sessions continue past the loss.
  ScenarioConfig cfg = mission(12);
  cfg.faults.mc_permanent_at = cfg.horizon / 3.0;
  const ScenarioResult r = analysis::run_fleet_scenario(cfg, 3, SIZE_MAX);
  EXPECT_EQ(r.fault_stats.mc_breakdowns, 1u);
  EXPECT_EQ(r.fault_stats.mc_repairs, 0u);
  bool session_after_loss = false;
  for (const sim::SessionRecord& s : r.trace.sessions) {
    session_after_loss |= s.start > cfg.faults.mc_permanent_at;
  }
  EXPECT_TRUE(session_after_loss);
}

}  // namespace
}  // namespace wrsn
