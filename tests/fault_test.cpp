// Fault-injection layer: plan compilation, per-kind injection semantics,
// metrics parity, and the scenario fuzzer's oracles (including the
// self-test that proves the oracles catch a deliberately broken planner).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "analysis/fuzz.hpp"
#include "analysis/scenario.hpp"
#include "common/check.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "mc/agent.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace wrsn {
namespace {

/// Small but activity-dense mission: tight batteries and an elevated
/// sensing floor make requests, sessions, escalations, and deaths all fit
/// inside a 12 h horizon.
analysis::ScenarioConfig active_scenario(std::uint64_t seed) {
  analysis::ScenarioConfig cfg = analysis::default_scenario();
  cfg.seed = seed;
  cfg.topology.node_count = 30;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.topology.battery_capacity = 2'500.0;
  cfg.world.drain.sensing_power = 0.05;
  cfg.world.initial_level_min = 0.35;
  cfg.world.initial_level_max = 0.60;
  cfg.world.patience = 3'600.0;
  cfg.horizon = 43'200.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultParams validation
// ---------------------------------------------------------------------------

TEST(FaultParams, RejectsNegativeRates) {
  fault::FaultParams p;
  p.mc_breakdown_mtbf = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);

  p = {};
  p.battery_drift_mtbf = -0.5;
  EXPECT_THROW(p.validate(), ConfigError);

  p = {};
  p.escalation_drop_prob = 1.2;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(FaultParams, RejectsInconsistentCombinations) {
  fault::FaultParams p;
  p.escalation_drop_prob = 0.6;
  p.escalation_delay_prob = 0.6;  // sums past 1
  EXPECT_THROW(p.validate(), ConfigError);

  p = {};
  p.node_burst_mtbf = 1'000.0;
  p.node_burst_size = 0;
  EXPECT_THROW(p.validate(), ConfigError);

  p = {};
  p.phase_noise_mtbf = 1'000.0;
  p.phase_noise_scale = 0.5;  // would *improve* calibration
  EXPECT_THROW(p.validate(), ConfigError);

  p = {};
  p.mc_breakdown_mtbf = 1'000.0;
  p.mc_repair_mean = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(FaultParams, DefaultsAreValidAndDisabled) {
  const fault::FaultParams p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_FALSE(p.any());
}

// ---------------------------------------------------------------------------
// FaultPlan compilation
// ---------------------------------------------------------------------------

fault::FaultParams all_kinds_params() {
  fault::FaultParams p;
  p.mc_breakdown_mtbf = 10'000.0;
  p.mc_repair_mean = 1'800.0;
  p.node_burst_mtbf = 8'000.0;
  p.node_burst_size = 2;
  p.phase_noise_mtbf = 9'000.0;
  p.phase_noise_duration = 1'200.0;
  p.phase_noise_scale = 20.0;
  p.escalation_drop_prob = 0.1;
  p.escalation_delay_prob = 0.2;
  p.escalation_delay_max = 600.0;
  p.battery_drift_mtbf = 7'000.0;
  p.battery_drift_power = 0.01;
  p.battery_drift_duration = 3'600.0;
  return p;
}

TEST(FaultPlan, CompileIsDeterministic) {
  const fault::FaultParams p = all_kinds_params();
  const Rng rng(99);
  const fault::FaultPlan a =
      fault::FaultPlan::compile(p, 86'400.0, 50, rng.fork("faults"));
  const fault::FaultPlan b =
      fault::FaultPlan::compile(p, 86'400.0, 50, rng.fork("faults"));

  ASSERT_EQ(a.mc_outages.size(), b.mc_outages.size());
  for (std::size_t i = 0; i < a.mc_outages.size(); ++i) {
    EXPECT_EQ(a.mc_outages[i].start, b.mc_outages[i].start);
    EXPECT_EQ(a.mc_outages[i].end, b.mc_outages[i].end);
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].magnitude, b.events[i].magnitude);
  }
  EXPECT_FALSE(a.empty());
}

TEST(FaultPlan, ScheduleIsSortedAndInsideHorizon) {
  const Seconds horizon = 86'400.0;
  const fault::FaultPlan plan = fault::FaultPlan::compile(
      all_kinds_params(), horizon, 50, Rng(7).fork("faults"));

  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_GE(plan.events[i].time, 0.0);
    EXPECT_LT(plan.events[i].time, horizon);
    if (i > 0) EXPECT_LE(plan.events[i - 1].time, plan.events[i].time);
  }
  for (std::size_t i = 0; i < plan.mc_outages.size(); ++i) {
    EXPECT_LT(plan.mc_outages[i].start, plan.mc_outages[i].end);
    if (i > 0) {
      EXPECT_LT(plan.mc_outages[i - 1].end, plan.mc_outages[i].start);
    }
  }
}

TEST(FaultPlan, NormalizeOutagesMergesOverlaps) {
  const auto merged = fault::FaultPlan::normalize_outages(
      {{100.0, 200.0}, {50.0, 120.0}, {300.0, 300.0}, {150.0, 250.0}}, 0.0);
  // {50,120} ∪ {100,200} ∪ {150,250} chain-merge; {300,300} is degenerate.
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].start, 50.0);
  EXPECT_EQ(merged[0].end, 250.0);
}

TEST(FaultPlan, NormalizeOutagesAppliesPermanentBreakdown) {
  const auto merged = fault::FaultPlan::normalize_outages(
      {{100.0, 200.0}, {900.0, 1'200.0}}, 1'000.0);
  // The second interval straddles the permanent cut: its start folds into
  // the infinite outage.  The first survives untouched.
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].start, 100.0);
  EXPECT_EQ(merged[0].end, 200.0);
  EXPECT_EQ(merged[1].start, 900.0);
  EXPECT_TRUE(std::isinf(merged[1].end));
}

TEST(FaultPlan, PermanentOnlyPlanHasOneInfiniteOutage) {
  fault::FaultParams p;
  p.mc_permanent_at = 10'000.0;
  const fault::FaultPlan plan =
      fault::FaultPlan::compile(p, 86'400.0, 30, Rng(1).fork("faults"));
  ASSERT_EQ(plan.mc_outages.size(), 1u);
  EXPECT_EQ(plan.mc_outages[0].start, 10'000.0);
  EXPECT_TRUE(std::isinf(plan.mc_outages[0].end));
}

// ---------------------------------------------------------------------------
// Agent breakdown lifecycle (direct, no scenario layer)
// ---------------------------------------------------------------------------

TEST(FaultAgent, BreakdownHaltsAndRepairResumesService) {
  std::vector<net::SensorSpec> specs(1);
  specs[0].id = 0;
  specs[0].position = {5.0, 0.0};
  specs[0].data_rate_bps = 1'000.0;
  specs[0].battery_capacity = 1'000.0;
  net::Network network(std::move(specs), {0.0, 0.0}, 10.0);

  sim::WorldParams wp;
  wp.drain.sensing_power = 0.05;
  sim::Simulator sim;
  sim::World world(sim, std::move(network), wp, Rng(11));
  mc::AgentParams ap;
  ap.charger.depot = {0.0, 0.0};
  mc::ChargerAgent agent(world, ap);
  agent.start();

  // Break the vehicle early (whatever state it is in — idle, traveling, or
  // mid-session), repair it two hours later; service must resume and keep
  // the node alive to the horizon.
  sim.schedule_at(4'000.0,
                  [&] { agent.fault_breakdown(0.25, /*permanent=*/false); });
  sim.schedule_at(11'200.0, [&] { agent.fault_repair(); });
  sim.run_until(100'000.0);

  EXPECT_FALSE(agent.broken());
  EXPECT_TRUE(world.alive(0));
  EXPECT_GT(agent.sessions_completed(), 0u);
}

TEST(FaultAgent, PermanentBreakdownNeverRepairs) {
  std::vector<net::SensorSpec> specs(1);
  specs[0].id = 0;
  specs[0].position = {5.0, 0.0};
  specs[0].data_rate_bps = 1'000.0;
  specs[0].battery_capacity = 1'000.0;
  net::Network network(std::move(specs), {0.0, 0.0}, 10.0);

  sim::WorldParams wp;
  wp.drain.sensing_power = 0.05;
  sim::Simulator sim;
  sim::World world(sim, std::move(network), wp, Rng(12));
  mc::AgentParams ap;
  ap.charger.depot = {0.0, 0.0};
  mc::ChargerAgent agent(world, ap);
  agent.start();

  sim.schedule_at(2'000.0,
                  [&] { agent.fault_breakdown(0.1, /*permanent=*/true); });
  sim.schedule_at(3'000.0, [&] { agent.fault_repair(); });  // must no-op
  sim.run_until(100'000.0);

  EXPECT_TRUE(agent.broken());
  // Unserved, the node exhausts; the simulation still terminates cleanly.
  EXPECT_FALSE(world.alive(0));
  EXPECT_EQ(world.trace().deaths.size(), 1u);
}

// ---------------------------------------------------------------------------
// Scenario-level injection per fault kind
// ---------------------------------------------------------------------------

TEST(FaultScenario, BreakdownsWithRepairsKeepServiceRunning) {
  analysis::ScenarioConfig cfg = active_scenario(301);
  cfg.faults.mc_breakdown_mtbf = cfg.horizon / 4.0;
  cfg.faults.mc_repair_mean = 1'800.0;
  cfg.faults.mc_budget_loss = 0.05;

  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_GE(result.fault_stats.mc_breakdowns, 1u);
  EXPECT_LE(result.fault_stats.mc_repairs, result.fault_stats.mc_breakdowns);
  EXPECT_GT(result.trace.sessions.size(), 0u);

  // Breakdown-truncated sessions must still be well-ordered per node.
  std::map<net::NodeId, Seconds> last_end;
  for (const auto& s : result.trace.sessions) {
    EXPECT_LE(s.start, s.end + 1e-9);
    const auto it = last_end.find(s.node);
    if (it != last_end.end()) EXPECT_GE(s.start, it->second - 1e-6);
    last_end[s.node] = std::max(last_end[s.node], s.end);
  }
}

TEST(FaultScenario, PermanentBreakdownDoesNotHangTheMission) {
  analysis::ScenarioConfig cfg = active_scenario(302);
  cfg.faults.mc_permanent_at = cfg.horizon / 4.0;

  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
  EXPECT_EQ(result.fault_stats.mc_breakdowns, 1u);
  EXPECT_EQ(result.fault_stats.mc_repairs, 0u);
  // With the charger gone, the protocol must still progress: unserved
  // requests escalate (or nodes exhaust) rather than silently starving.
  EXPECT_GT(result.trace.escalations.size() + result.trace.deaths.size(), 0u);
  // No session can start after the vehicle died for good.
  for (const auto& s : result.trace.sessions) {
    EXPECT_LE(s.start, cfg.faults.mc_permanent_at + 1e-6);
  }
}

TEST(FaultScenario, NodeBurstsKillAndAreTallied) {
  analysis::ScenarioConfig cfg = active_scenario(303);
  cfg.faults.node_burst_mtbf = cfg.horizon / 6.0;
  cfg.faults.node_burst_size = 3;

  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_GT(result.fault_stats.node_burst_kills, 0u);
  // Every burst kill is a real death in the trace (exhaustion deaths can
  // add more).
  EXPECT_GE(result.trace.deaths.size(),
            std::size_t(result.fault_stats.node_burst_kills));
}

TEST(FaultScenario, EscalationDropSuppressesEveryReport) {
  // Collapse every service window so the mission generates escalations.
  analysis::ScenarioConfig cfg = active_scenario(304);
  cfg.attack.window_margin = cfg.world.patience * 2.0;

  const analysis::ScenarioResult baseline =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  ASSERT_GT(baseline.trace.escalations.size(), 0u);

  cfg.faults.escalation_drop_prob = 1.0;
  const analysis::ScenarioResult dropped =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_EQ(dropped.trace.escalations.size(), 0u);
  EXPECT_GT(dropped.fault_stats.escalations_dropped, 0u);
}

TEST(FaultScenario, EscalationDelayDefersButStillDelivers) {
  analysis::ScenarioConfig cfg = active_scenario(305);
  cfg.attack.window_margin = cfg.world.patience * 2.0;

  const analysis::ScenarioResult baseline =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  ASSERT_GT(baseline.trace.escalations.size(), 0u);

  cfg.faults.escalation_delay_prob = 1.0;
  cfg.faults.escalation_delay_max = 600.0;
  const analysis::ScenarioResult delayed =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_GT(delayed.fault_stats.escalations_delayed, 0u);
  ASSERT_GT(delayed.trace.escalations.size(), 0u);
  // The tamper only postpones the report: the first delivered escalation
  // cannot precede the untampered one (deadlines never tighten into the
  // past — the PR 3 fire_emergency bug class).
  EXPECT_GE(delayed.trace.escalations.front().time,
            baseline.trace.escalations.front().time - 1e-6);
}

TEST(FaultWorld, SelfDischargeDriftAcceleratesDeath) {
  const auto build = [](sim::Simulator& sim) {
    std::vector<net::SensorSpec> specs(1);
    specs[0].id = 0;
    specs[0].position = {5.0, 0.0};
    specs[0].data_rate_bps = 1'000.0;
    specs[0].battery_capacity = 1'000.0;
    net::Network network(std::move(specs), {0.0, 0.0}, 10.0);
    sim::WorldParams wp;
    wp.drain.sensing_power = 0.01;
    return std::make_unique<sim::World>(sim, std::move(network), wp, Rng(21));
  };

  sim::Simulator sim_a;
  const auto world_a = build(sim_a);
  sim_a.run_until(500'000.0);
  ASSERT_EQ(world_a->trace().deaths.size(), 1u);

  sim::Simulator sim_b;
  const auto world_b = build(sim_b);
  ASSERT_TRUE(world_b->set_self_discharge(0, 0.05));
  EXPECT_EQ(world_b->self_discharge(0), 0.05);
  sim_b.run_until(500'000.0);
  ASSERT_EQ(world_b->trace().deaths.size(), 1u);

  // The parasitic drain is invisible to the node's own SoC estimate but
  // very real to the battery: death comes much sooner.
  EXPECT_LT(world_b->trace().deaths[0].time,
            world_a->trace().deaths[0].time / 2.0);
}

TEST(FaultScenario, PhaseNoiseWindowsAreCounted) {
  analysis::ScenarioConfig cfg = active_scenario(306);
  cfg.faults.phase_noise_mtbf = cfg.horizon / 4.0;
  cfg.faults.phase_noise_duration = 3'600.0;
  cfg.faults.phase_noise_scale = 40.0;

  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  EXPECT_GT(result.fault_stats.phase_noise_windows, 0u);
  EXPECT_GT(result.trace.sessions.size(), 0u);
}

TEST(FaultScenario, BenignRunAbsorbsPhaseNoise) {
  analysis::ScenarioConfig cfg = active_scenario(307);
  cfg.faults.phase_noise_mtbf = cfg.horizon / 4.0;

  const analysis::ScenarioResult result =
      analysis::run_scenario(cfg, analysis::ChargerMode::Benign);
  // No spoofing emitter to degrade: the windows land in `absorbed`.
  EXPECT_EQ(result.fault_stats.phase_noise_windows, 0u);
  EXPECT_GT(result.fault_stats.absorbed, 0u);
}

TEST(FaultScenario, ObsMetricsMatchFaultStats) {
  analysis::ScenarioConfig cfg = active_scenario(308);
  cfg.faults.mc_breakdown_mtbf = cfg.horizon / 4.0;
  cfg.faults.mc_repair_mean = 1'800.0;
  cfg.faults.node_burst_mtbf = cfg.horizon / 5.0;
  cfg.faults.battery_drift_mtbf = cfg.horizon / 5.0;
  cfg.faults.battery_drift_power = 0.01;

  obs::MetricRegistry registry;
  analysis::ScenarioResult result;
  {
    obs::ScopedRegistry scope(&registry);
    result = analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  }
  const fault::FaultStats& fs = result.fault_stats;
  EXPECT_GT(fs.injected_total(), 0u);
  EXPECT_EQ(registry.value(obs::Metric::kFaultMcBreakdowns),
            double(fs.mc_breakdowns));
  EXPECT_EQ(registry.value(obs::Metric::kFaultMcRepairs),
            double(fs.mc_repairs));
  EXPECT_EQ(registry.value(obs::Metric::kFaultNodeBurstKills),
            double(fs.node_burst_kills));
  EXPECT_EQ(registry.value(obs::Metric::kFaultPhaseNoiseWindows),
            double(fs.phase_noise_windows));
  EXPECT_EQ(registry.value(obs::Metric::kFaultEscalationsDropped),
            double(fs.escalations_dropped));
  EXPECT_EQ(registry.value(obs::Metric::kFaultEscalationsDelayed),
            double(fs.escalations_delayed));
  EXPECT_EQ(registry.value(obs::Metric::kFaultDriftNodes),
            double(fs.drift_nodes));
  EXPECT_EQ(registry.value(obs::Metric::kFaultAbsorbed), double(fs.absorbed));
}

TEST(FaultScenario, FaultedMissionIsSeedDeterministic) {
  analysis::ScenarioConfig cfg = active_scenario(309);
  cfg.faults = all_kinds_params();

  const analysis::ScenarioResult a =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  const analysis::ScenarioResult b =
      analysis::run_scenario(cfg, analysis::ChargerMode::Attack);
  ASSERT_EQ(a.trace.sessions.size(), b.trace.sessions.size());
  for (std::size_t i = 0; i < a.trace.sessions.size(); ++i) {
    EXPECT_EQ(a.trace.sessions[i].node, b.trace.sessions[i].node);
    EXPECT_EQ(a.trace.sessions[i].start, b.trace.sessions[i].start);
  }
  EXPECT_EQ(a.fault_stats.injected_total(), b.fault_stats.injected_total());
  EXPECT_EQ(a.fault_stats.absorbed, b.fault_stats.absorbed);
}

// ---------------------------------------------------------------------------
// Fuzzer: repro codec, smoke campaign, oracle self-test
// ---------------------------------------------------------------------------

TEST(Fuzzer, ReproLineRoundTrips) {
  Rng rng(5);
  const analysis::FuzzOverrides overrides =
      analysis::generate_fuzz_overrides(rng);
  const std::string line = analysis::format_repro(overrides);
  EXPECT_EQ(analysis::parse_repro(line), overrides);
}

TEST(Fuzzer, ParseReproRejectsMalformedLines) {
  EXPECT_THROW(analysis::parse_repro(""), ConfigError);
  EXPECT_THROW(analysis::parse_repro("seed"), ConfigError);
  EXPECT_THROW(analysis::parse_repro("seed="), ConfigError);
  EXPECT_THROW(analysis::parse_repro("seed=1;seed=2"), ConfigError);
}

TEST(Fuzzer, SmokeCampaignAllOraclesGreen) {
  const analysis::FuzzReport report =
      analysis::run_fuzz_campaign(/*trials=*/200, /*seed=*/7);
  EXPECT_EQ(report.trials, 200u);
  EXPECT_EQ(report.failed_trials, 0u) << (report.first_failures.empty()
                                              ? ""
                                              : report.first_failures.front());
  EXPECT_NE(report.digest, 0u);
}

TEST(Fuzzer, CampaignDigestIsThreadCountIndependent) {
  // Pinned at 1/2/8 workers: trial generation is sequential from a fixed
  // fork and the fold walks verdicts in trial order, so the digest must be
  // a pure function of (trials, seed) however the pool is sized.
  const analysis::FuzzReport one =
      analysis::run_fuzz_campaign(/*trials=*/40, /*seed=*/13, /*threads=*/1);
  const analysis::FuzzReport two =
      analysis::run_fuzz_campaign(/*trials=*/40, /*seed=*/13, /*threads=*/2);
  const analysis::FuzzReport eight =
      analysis::run_fuzz_campaign(/*trials=*/40, /*seed=*/13, /*threads=*/8);
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.failed_trials, two.failed_trials);
  EXPECT_EQ(one.failed_trials, eight.failed_trials);
}

TEST(Fuzzer, MutationPoolCoversEveryScenarioFamily) {
  // Each scenario-frontier family must actually appear in the generator's
  // output — a family that never mutates is a family the differential
  // oracle never exercises.
  Rng rng(99);
  std::map<std::string, std::size_t> seen;
  constexpr std::size_t kDraws = 400;
  for (std::size_t i = 0; i < kDraws; ++i) {
    for (const auto& [key, value] : analysis::generate_fuzz_overrides(rng)) {
      ++seen[key];
    }
  }
  for (const char* key :
       {"topology.deployment", "topology.corridor_count",
        "topology.class_count", "topology.class_capacity_ratio",
        "topology.class_rate_ratio", "mobility.fraction", "mobility.interval",
        "coverage.k", "coverage.bonus", "fleet.size",
        "faults.mc_breakdown_mtbf", "policy.attacker", "policy.epsilon",
        "policy.ucb_c", "policy.epoch", "policy.risk_weight",
        "policy.risk_budget", "policy.defender", "policy.defender_window",
        "policy.defender_quantile", "policy.defender_min_samples"}) {
    EXPECT_GT(seen[key], 0u) << "family never generated: " << key;
  }
  // Corridor counts stay in 1-3: wider draws can disconnect the sink.
  Rng check(7);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const analysis::FuzzOverrides o = analysis::generate_fuzz_overrides(check);
    const auto it = o.find("topology.corridor_count");
    if (it == o.end()) continue;
    const int count = std::stoi(it->second);
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 3);
  }
}

TEST(Fuzzer, SelfTestCatchesInjectedPlannerBug) {
  const analysis::FuzzReport report = analysis::run_fuzz_campaign(
      /*trials=*/40, /*seed=*/1, /*threads=*/0, /*inject_divergence=*/true);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.repro_lines.empty());

  // The printed repro line replays to the same verdict.
  const analysis::FuzzOverrides overrides =
      analysis::parse_repro(report.repro_lines.front());
  const analysis::FuzzVerdict replay =
      analysis::run_fuzz_trial(overrides, /*inject_divergence=*/true);
  EXPECT_FALSE(replay.ok());
  // ... and the same mission with the real planner is clean: the oracle
  // flagged the injected bug, not the scenario.
  const analysis::FuzzVerdict clean =
      analysis::run_fuzz_trial(overrides, /*inject_divergence=*/false);
  EXPECT_TRUE(clean.ok()) << clean.failures.front();
}

}  // namespace
}  // namespace wrsn
