// Tests for the analysis helpers (stats, tables) and the scenario runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/fuzz.hpp"
#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "analysis/trace_io.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace wrsn::analysis {
namespace {

TEST(Stats, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v{4.2};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.2);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.max, 4.2);
}

TEST(Stats, KnownMoments) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // unbiased (n-1) estimator
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  // n = 8 -> Student-t critical value for 7 dof, not the normal 1.96.
  EXPECT_NEAR(s.ci95, 2.365 * s.stddev / std::sqrt(8.0), 1e-12);
}

TEST(Stats, CiUsesStudentTForSmallSamples) {
  // Known case: n = 10, stddev = 1 -> half-width = t_{0.975,9} / sqrt(10).
  // The normal approximation (1.96) would understate this by ~13 %.
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(double(i) * std::sqrt(6.0 / 55.0));  // sample variance 1
  }
  const Summary s = summarize(v);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  EXPECT_NEAR(s.ci95, 2.262 / std::sqrt(10.0), 1e-12);
  EXPECT_GT(s.ci95, 1.96 * s.stddev / std::sqrt(10.0));
}

TEST(Stats, TCriticalTableValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);  // n = 2
  EXPECT_DOUBLE_EQ(t_critical_95(5), 2.571);   // fig10's 6 seeds
  EXPECT_DOUBLE_EQ(t_critical_95(7), 2.365);   // fig7's 8 seeds
  EXPECT_DOUBLE_EQ(t_critical_95(9), 2.262);   // the benches' 10 seeds
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(t_critical_95(31), 1.96);   // normal fallback
  EXPECT_DOUBLE_EQ(t_critical_95(10'000), 1.96);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Stats, QuantileValidation) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile({}, 0.5), PreconditionError);
  EXPECT_THROW(quantile(v, 1.5), PreconditionError);
}

TEST(Stats, SortedQuantilesMatchesRepeatedQuantileCalls) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0, 9.0, 0.5};
  const std::vector<double> qs =
      sorted_quantiles(v, {0.0, 0.10, 0.25, 0.5, 0.75, 0.9, 1.0});
  const std::vector<double> want{0.0, 0.10, 0.25, 0.5, 0.75, 0.9, 1.0};
  ASSERT_EQ(qs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(qs[i], quantile(v, want[i])) << "q=" << want[i];
  }
}

TEST(Stats, SortedQuantilesBoundariesHitMinAndMax) {
  const std::vector<double> v{7.0, -2.0, 3.5};
  const std::vector<double> qs = sorted_quantiles(v, {0.0, 1.0});
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_DOUBLE_EQ(qs[0], -2.0);  // q=0 is exactly the sample minimum
  EXPECT_DOUBLE_EQ(qs[1], 7.0);   // q=1 is exactly the sample maximum
}

TEST(Stats, SortedQuantilesSingleElementAndValidation) {
  const std::vector<double> one{42.0};
  const std::vector<double> qs = sorted_quantiles(one, {0.0, 0.5, 1.0});
  for (const double q : qs) EXPECT_DOUBLE_EQ(q, 42.0);
  EXPECT_THROW(sorted_quantiles({}, {0.5}), PreconditionError);
  EXPECT_THROW(sorted_quantiles(one, {-0.1}), PreconditionError);
  EXPECT_THROW(sorted_quantiles(one, {1.1}), PreconditionError);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t("demo");
  t.headers({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header columns aligned: "value" column starts at the same offset in
  // each row; spot-check that rows are newline-separated and non-ragged.
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.headers({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), PreconditionError);
}

TEST(Table, CsvOutput) {
  Table t("demo");
  t.headers({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Fmt, FormatsDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_ci(1.5, 0.25, 2), "1.50 +- 0.25");
}

TEST(TraceIo, SessionsCsvRoundTripShape) {
  sim::Trace trace;
  sim::SessionRecord s;
  s.node = 3;
  s.start = 10.0;
  s.end = 25.5;
  s.kind = sim::SessionKind::Spoofed;
  s.expected_gain = 100.0;
  s.delivered = 0.5;
  s.rf_observed = 2.25;
  s.rf_neighbor_probe = 0.1;
  s.nearest_probe_distance = 4.0;
  s.radiated = 155.0;
  trace.sessions.push_back(s);

  std::ostringstream os;
  write_sessions_csv(os, trace);
  const std::string out = os.str();
  // Header plus one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("spoofed"), std::string::npos);
  EXPECT_NE(out.find("3,10,25.5"), std::string::npos);
}

TEST(TraceIo, AllWritersEmitHeadersOnEmptyTrace) {
  const sim::Trace trace;
  for (const auto writer :
       {write_sessions_csv, write_requests_csv, write_deaths_csv,
        write_escalations_csv}) {
    std::ostringstream os;
    writer(os, trace);
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
  }
}

TEST(TraceIo, ExportWritesFourFiles) {
  sim::Trace trace;
  trace.deaths.push_back({5.0, 1, true});
  trace.requests.push_back({1.0, 2, 300.0, false});
  trace.escalations.push_back({4.0, 2});
  const std::string prefix = "/tmp/wrsn_trace_io_test";
  export_trace(prefix, trace);
  for (const char* suffix :
       {"_sessions.csv", "_requests.csv", "_deaths.csv",
        "_escalations.csv"}) {
    std::ifstream file(prefix + std::string(suffix));
    EXPECT_TRUE(file.is_open()) << suffix;
    std::string header;
    std::getline(file, header);
    EXPECT_FALSE(header.empty());
  }
  EXPECT_THROW(export_trace("/nonexistent-dir/x", trace), SimulationError);
}

TEST(Scenario, DefaultConfigValidates) {
  const ScenarioConfig cfg = default_scenario();
  EXPECT_NO_THROW(cfg.topology.validate());
  EXPECT_NO_THROW(cfg.world.validate());
  EXPECT_NO_THROW(cfg.attack.validate());
  EXPECT_NO_THROW(cfg.benign.validate());
  EXPECT_GT(cfg.horizon, 0.0);
}

TEST(Scenario, RunsAreDeterministicPerSeed) {
  ScenarioConfig cfg = default_scenario();
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.horizon = 1.5 * 86'400.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  cfg.seed = 77;
  const ScenarioResult a = run_scenario(cfg, ChargerMode::Attack);
  const ScenarioResult b = run_scenario(cfg, ChargerMode::Attack);
  EXPECT_EQ(a.report.keys_dead, b.report.keys_dead);
  EXPECT_EQ(a.trace.sessions.size(), b.trace.sessions.size());
  EXPECT_EQ(a.trace.deaths.size(), b.trace.deaths.size());
  EXPECT_EQ(a.report.detected, b.report.detected);
}

TEST(Scenario, RunMissionMatchesRunScenarioForSingleCharger) {
  // run_mission is the one resolution point every front end (fuzzer, CLI,
  // mission service) funnels through; for fleet_size <= 1 it must be the
  // identity wrapper around run_scenario, digest-for-digest.
  ScenarioConfig cfg = default_scenario();
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.horizon = 1.5 * 86'400.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  cfg.seed = 77;
  const ScenarioResult direct = run_scenario(cfg, ChargerMode::Attack);
  const ScenarioResult routed = run_mission(cfg, ChargerMode::Attack);
  EXPECT_EQ(digest_result(direct), digest_result(routed));

  // Fleet missions route through run_fleet_scenario with the compromised
  // index clamped into the fleet (attack missions stay attack missions).
  cfg.fleet_size = 2;
  cfg.fleet_compromised = 7;  // stale override, clamped to < fleet_size
  const ScenarioResult fleet_direct =
      run_fleet_scenario(cfg, 2, /*compromised=*/1);
  const ScenarioResult fleet_routed = run_mission(cfg, ChargerMode::Attack);
  EXPECT_EQ(digest_result(fleet_direct), digest_result(fleet_routed));
}

TEST(Scenario, BenignModeRunsCleanly) {
  ScenarioConfig cfg = default_scenario();
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.horizon = 1.5 * 86'400.0;
  cfg.seed = 5;
  const ScenarioResult result = run_scenario(cfg, ChargerMode::Benign);
  EXPECT_FALSE(result.keys.empty());
  EXPECT_EQ(result.report.sessions_spoofed, 0u);
  EXPECT_FALSE(result.report.detected);
  EXPECT_EQ(result.report.keys_dead, 0u);
}

TEST(Scenario, AttackAndBenignShareKeyDefinition) {
  ScenarioConfig cfg = default_scenario();
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.horizon = 86'400.0;
  cfg.attack.campaign_deadline = cfg.horizon;
  cfg.seed = 6;
  const ScenarioResult benign = run_scenario(cfg, ChargerMode::Benign);
  const ScenarioResult attack = run_scenario(cfg, ChargerMode::Attack);
  // Both select from the same ranked candidates; the attacker applies the
  // killability filter so its set is a subset-ish selection, but never
  // empty when the benign set is non-empty on these small worlds.
  EXPECT_FALSE(benign.keys.empty());
  EXPECT_FALSE(attack.keys.empty());
}

TEST(Scenario, DetectorSetupMatchesCalibrationFormula) {
  // run_scenario and run_fleet_scenario used to carry hand-duplicated
  // copies of this calibration block; make_detector_setup is now the single
  // source of truth, pinned here against the documented formula.
  ScenarioConfig cfg = default_scenario();
  cfg.topology.node_count = 40;
  cfg.topology.region = {{0.0, 0.0}, {220.0, 220.0}};
  cfg.world.hardware_mtbf = 12.0 * 86'400.0;
  cfg.seed = 99;

  Rng rng(cfg.seed);
  Rng topo_rng = rng.fork("topology");
  net::Network network = net::generate_topology(cfg.topology, topo_rng);
  sim::Simulator simulator;
  sim::World world(simulator, std::move(network), cfg.world,
                   rng.fork("world"));

  const DetectorSetup setup = make_detector_setup(cfg, world);

  const std::size_t n = world.network().size();
  const double expected = double(n) * 86'400.0 / cfg.world.hardware_mtbf;
  const detect::SuiteCalibration want =
      detect::SuiteCalibration::for_deployment(n, expected);
  EXPECT_EQ(setup.calibration.death_threshold, want.death_threshold);
  EXPECT_EQ(setup.calibration.escalation_limit, want.escalation_limit);
  EXPECT_EQ(setup.calibration.died_waiting_limit, want.died_waiting_limit);

  EXPECT_EQ(setup.context.network, &world.network());
  EXPECT_EQ(setup.context.charging_model, &world.charging_model());
  EXPECT_DOUBLE_EQ(setup.context.nominal_dc, world.nominal_dc_power());
  EXPECT_DOUBLE_EQ(setup.context.benign_gain_mean,
                   cfg.world.benign_gain_mean);
  EXPECT_DOUBLE_EQ(setup.context.benign_gain_cv, cfg.world.benign_gain_cv);
  EXPECT_EQ(setup.context.noise_seed, cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  EXPECT_DOUBLE_EQ(setup.context.horizon, cfg.horizon);

  // Identical config -> identical setup, whichever path (single-charger or
  // fleet) asks for it.
  const DetectorSetup again = make_detector_setup(cfg, world);
  EXPECT_EQ(again.calibration.death_threshold,
            setup.calibration.death_threshold);
  EXPECT_EQ(again.calibration.escalation_limit,
            setup.calibration.escalation_limit);
  EXPECT_EQ(again.calibration.died_waiting_limit,
            setup.calibration.died_waiting_limit);
  EXPECT_EQ(again.context.noise_seed, setup.context.noise_seed);
  EXPECT_EQ(again.suite.size(), setup.suite.size());

  // The hardened flag must select the larger coulomb-counter suite.
  ScenarioConfig hardened_cfg = cfg;
  hardened_cfg.hardened_detectors = true;
  const DetectorSetup hardened = make_detector_setup(hardened_cfg, world);
  EXPECT_GT(hardened.suite.size(), setup.suite.size());
}

}  // namespace
}  // namespace wrsn::analysis
