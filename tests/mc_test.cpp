// Tests for the mobile charger vehicle, the TSP toolkit, and the benign
// charging agent.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mc/agent.hpp"
#include "mc/charger.hpp"
#include "mc/tsp.hpp"
#include "net/topology.hpp"

namespace wrsn::mc {
namespace {

using geom::Vec2;

ChargerParams test_charger() {
  ChargerParams params;
  params.depot = {0.0, 0.0};
  params.speed = 2.0;
  params.battery_capacity = 1e5;
  params.travel_cost_per_meter = 10.0;
  params.pa_efficiency = 0.8;
  params.depot_recharge_power = 100.0;
  return params;
}

TEST(Charger, ParamsValidation) {
  ChargerParams p = test_charger();
  p.speed = 0.0;
  EXPECT_THROW(MobileCharger{p}, ConfigError);
  p = test_charger();
  p.pa_efficiency = 1.5;
  EXPECT_THROW(MobileCharger{p}, ConfigError);
  p = test_charger();
  p.battery_capacity = 0.0;
  EXPECT_THROW(MobileCharger{p}, ConfigError);
}

TEST(Charger, StartsAtDepotFullyCharged) {
  MobileCharger mc(test_charger());
  EXPECT_EQ(mc.position(0.0), Vec2(0.0, 0.0));
  EXPECT_DOUBLE_EQ(mc.battery_fraction(), 1.0);
  EXPECT_FALSE(mc.traveling());
}

TEST(Charger, TravelInterpolatesPosition) {
  MobileCharger mc(test_charger());
  const Seconds arrival = mc.begin_travel(0.0, {20.0, 0.0});
  EXPECT_DOUBLE_EQ(arrival, 10.0);  // 20 m at 2 m/s
  EXPECT_TRUE(mc.traveling());
  EXPECT_EQ(mc.position(5.0), Vec2(10.0, 0.0));
  EXPECT_EQ(mc.position(10.0), Vec2(20.0, 0.0));
  EXPECT_EQ(mc.position(12.0), Vec2(20.0, 0.0));  // clamps past arrival
  mc.arrive(10.0);
  EXPECT_FALSE(mc.traveling());
}

TEST(Charger, TravelEnergyAccounted) {
  MobileCharger mc(test_charger());
  mc.begin_travel(0.0, {20.0, 0.0});
  EXPECT_DOUBLE_EQ(mc.ledger().travel, 200.0);
  EXPECT_DOUBLE_EQ(mc.battery_level(), 1e5 - 200.0);
}

TEST(Charger, HaltPinsMidSegment) {
  MobileCharger mc(test_charger());
  mc.begin_travel(0.0, {20.0, 0.0});
  mc.halt(5.0);
  EXPECT_FALSE(mc.traveling());
  EXPECT_EQ(mc.position(7.0), Vec2(10.0, 0.0));
}

TEST(Charger, ArriveBeforeTimeThrows) {
  MobileCharger mc(test_charger());
  mc.begin_travel(0.0, {20.0, 0.0});
  EXPECT_THROW(mc.arrive(5.0), PreconditionError);
}

TEST(Charger, RadiationSplitsLedgerByKind) {
  MobileCharger mc(test_charger());
  mc.radiate(4.0, 10.0, /*spoofed=*/false);
  mc.radiate(4.0, 5.0, /*spoofed=*/true);
  EXPECT_DOUBLE_EQ(mc.ledger().radiated_genuine, 40.0);
  EXPECT_DOUBLE_EQ(mc.ledger().radiated_spoofed, 20.0);
  EXPECT_DOUBLE_EQ(mc.ledger().radiated_total(), 60.0);
  // PA losses: drawn = radiated / 0.8.
  EXPECT_DOUBLE_EQ(mc.ledger().drawn_for_radiation, 75.0);
  EXPECT_DOUBLE_EQ(mc.radiation_draw(4.0), 5.0);
}

TEST(Charger, DepotRecharge) {
  MobileCharger mc(test_charger());
  mc.radiate(4.0, 100.0, false);  // draw 500 J
  EXPECT_DOUBLE_EQ(mc.depot_recharge_time(), 5.0);
  mc.recharge_full();
  EXPECT_DOUBLE_EQ(mc.battery_fraction(), 1.0);
}

TEST(Tsp, TourLengthOfKnownOrder) {
  const std::vector<Vec2> pts{{10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}};
  const std::vector<std::size_t> order{0, 1, 2};
  EXPECT_DOUBLE_EQ(tour_length(pts, order, {0.0, 0.0}), 30.0);
}

TEST(Tsp, NearestNeighborOnLineIsOptimal) {
  const std::vector<Vec2> pts{{30.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
  const auto order = nearest_neighbor_tour(pts, {0.0, 0.0});
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Tsp, TwoOptImprovesCrossedTour) {
  // Square: visiting corners in crossing order is improvable.
  const std::vector<Vec2> pts{{0, 10}, {10, 0}, {10, 10}, {0, 0}};
  std::vector<std::size_t> order{0, 1, 2, 3};
  const double before = tour_length(pts, order, {0.0, 0.0});
  const std::size_t moves = two_opt(pts, order, {0.0, 0.0});
  const double after = tour_length(pts, order, {0.0, 0.0});
  EXPECT_GT(moves, 0u);
  EXPECT_LT(after, before);
}

TEST(Tsp, TwoOptNeverWorsens) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 12; ++i) {
      pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    std::vector<std::size_t> order(pts.size());
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    const double before = tour_length(pts, order, {0.0, 0.0});
    two_opt(pts, order, {0.0, 0.0});
    const double after = tour_length(pts, order, {0.0, 0.0});
    EXPECT_LE(after, before + 1e-9);
    // Order must remain a permutation.
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(Tsp, PlanTourBeatsRandomOrderOnAverage) {
  Rng rng(5);
  double planned_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 15; ++i) {
      pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    const auto tour = plan_tour(pts, {0.0, 0.0});
    planned_total += tour_length(pts, tour, {0.0, 0.0});
    std::vector<std::size_t> rand_order(pts.size());
    std::iota(rand_order.begin(), rand_order.end(), 0u);
    rng.shuffle(rand_order);
    random_total += tour_length(pts, rand_order, {0.0, 0.0});
  }
  EXPECT_LT(planned_total, random_total);
}

TEST(Tsp, EmptyAndSingleton) {
  const std::vector<Vec2> empty;
  EXPECT_TRUE(nearest_neighbor_tour(empty, {0, 0}).empty());
  const std::vector<Vec2> one{{5.0, 0.0}};
  const auto order = nearest_neighbor_tour(one, {0, 0});
  ASSERT_EQ(order.size(), 1u);
  EXPECT_DOUBLE_EQ(tour_length(one, order, {0, 0}), 5.0);
}

// --- agent-level tests on a small world -----------------------------------

sim::WorldParams agent_world_params() {
  sim::WorldParams params;
  params.request_threshold = 0.3;
  params.patience = 20'000.0;
  params.min_request_gap = 60.0;
  params.initial_level_min = 0.5;
  params.initial_level_max = 1.0;
  params.benign_gain_cv = 0.1;
  params.drain.sensing_power = 0.025;  // brisk cycles, ~60 % charger load
  return params;
}

net::Network agent_network(std::uint64_t seed, std::size_t count = 20) {
  net::TopologyConfig cfg;
  cfg.region = {{0.0, 0.0}, {80.0, 80.0}};
  cfg.node_count = count;
  cfg.comm_range = 30.0;
  cfg.battery_capacity = 2'000.0;
  cfg.mean_data_rate_bps = 2'000.0;
  Rng rng(seed);
  return net::generate_topology(cfg, rng);
}

AgentParams agent_params() {
  AgentParams params;
  params.charger = test_charger();
  params.charger.speed = 5.0;
  params.charger.battery_capacity = 5e6;
  return params;
}

TEST(Agent, ServesRequestsAndKeepsNetworkAlive) {
  sim::Simulator sim;
  sim::World world(sim, agent_network(21), agent_world_params(), Rng(2));
  ChargerAgent agent(world, agent_params());
  agent.start();
  sim.run_until(80'000.0);
  EXPECT_GT(agent.sessions_completed(), 5u);
  EXPECT_EQ(world.alive_count(), 20u);
  EXPECT_TRUE(world.trace().escalations.empty());
}

TEST(Agent, SessionsDeliverTheDeficit) {
  sim::Simulator sim;
  sim::World world(sim, agent_network(22), agent_world_params(), Rng(3));
  ChargerAgent agent(world, agent_params());
  agent.start();
  sim.run_until(80'000.0);
  ASSERT_GT(world.trace().sessions.size(), 5u);
  double ratio_sum = 0.0;
  for (const sim::SessionRecord& s : world.trace().sessions) {
    EXPECT_EQ(s.kind, sim::SessionKind::Genuine);
    EXPECT_GT(s.rf_observed, 0.0);
    EXPECT_GT(s.radiated, 0.0);
    // Energy-target service: delivered/expected == gain/mean-gain, i.e. the
    // node's calibrated expectation is unbiased but per-session noisy.
    const double ratio = s.delivered / s.expected_gain;
    EXPECT_GT(ratio, 0.4 / 0.85 - 0.05);
    EXPECT_LT(ratio, 1.6 / 0.85 + 0.05);
    ratio_sum += ratio;
  }
  const double mean_ratio =
      ratio_sum / double(world.trace().sessions.size());
  EXPECT_NEAR(mean_ratio, 1.0, 0.12);
}

TEST(Agent, DoubleStartThrows) {
  sim::Simulator sim;
  sim::World world(sim, agent_network(23), agent_world_params(), Rng(4));
  ChargerAgent agent(world, agent_params());
  agent.start();
  EXPECT_THROW(agent.start(), PreconditionError);
}

TEST(Agent, TourPolicyBatchesRequests) {
  sim::Simulator sim;
  sim::World world(sim, agent_network(26), agent_world_params(), Rng(7));
  AgentParams params = agent_params();
  params.policy = SchedulePolicy::Tour;
  params.tour_batch = 3;
  params.tour_max_wait = 1'200.0;
  ChargerAgent agent(world, params);
  agent.start();
  sim.run_until(80'000.0);
  EXPECT_GT(agent.sessions_completed(), 5u);
  EXPECT_EQ(world.alive_count(), 20u);
  EXPECT_TRUE(world.trace().escalations.empty());
}

TEST(Agent, TourMaxWaitBoundsServiceDelay) {
  // Even when the batch never fills, the oldest request must start service
  // within tour_max_wait (+travel+queue of at most the active session).
  sim::Simulator sim;
  sim::World world(sim, agent_network(27), agent_world_params(), Rng(8));
  AgentParams params = agent_params();
  params.policy = SchedulePolicy::Tour;
  params.tour_batch = 50;  // impossible batch: only the age trigger fires
  params.tour_max_wait = 600.0;
  ChargerAgent agent(world, params);
  agent.start();
  sim.run_until(80'000.0);
  EXPECT_GT(agent.sessions_completed(), 3u);
  EXPECT_TRUE(world.trace().escalations.empty());
  // Match each request to its service start.
  for (const sim::RequestRecord& r : world.trace().requests) {
    Seconds started = -1.0;
    for (const sim::SessionRecord& s : world.trace().sessions) {
      if (s.node == r.node && s.start >= r.time) {
        started = s.start;
        break;
      }
    }
    if (started < 0.0) continue;  // request close to horizon
    // Envelope: the age trigger (600 s) plus a full in-flight tour of a
    // handful of ~20-minute sessions that may already be committed.
    EXPECT_LT(started - r.time, 600.0 + 7'200.0)
        << "node " << r.node << " waited too long under the age trigger";
  }
}

TEST(Agent, ValidationRejectsBadTourParams) {
  AgentParams params = agent_params();
  params.tour_batch = 0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = agent_params();
  params.tour_max_wait = -1.0;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(Agent, PoliciesAllServeWithoutEscalation) {
  for (const SchedulePolicy policy :
       {SchedulePolicy::Njnp, SchedulePolicy::Edf, SchedulePolicy::Fcfs,
        SchedulePolicy::Tour}) {
    sim::Simulator sim;
    sim::World world(sim, agent_network(24), agent_world_params(), Rng(5));
    AgentParams params = agent_params();
    params.policy = policy;
    ChargerAgent agent(world, params);
    agent.start();
    sim.run_until(60'000.0);
    EXPECT_TRUE(world.trace().escalations.empty())
        << "policy " << static_cast<int>(policy);
    EXPECT_EQ(world.alive_count(), 20u);
  }
}

TEST(Agent, LedgerTracksTravelAndRadiation) {
  sim::Simulator sim;
  sim::World world(sim, agent_network(25), agent_world_params(), Rng(6));
  ChargerAgent agent(world, agent_params());
  agent.start();
  sim.run_until(60'000.0);
  ASSERT_GT(agent.sessions_completed(), 0u);
  EXPECT_GT(agent.charger().ledger().travel, 0.0);
  EXPECT_GT(agent.charger().ledger().radiated_genuine, 0.0);
  EXPECT_DOUBLE_EQ(agent.charger().ledger().radiated_spoofed, 0.0);
  // Radiated energy in the ledger equals the per-session records' sum.
  double recorded = 0.0;
  for (const sim::SessionRecord& s : world.trace().sessions) {
    recorded += s.radiated;
  }
  EXPECT_NEAR(agent.charger().ledger().radiated_genuine, recorded, 1e-6);
}

TEST(Agent, ValidationRejectsBadReserve) {
  AgentParams params = agent_params();
  params.battery_reserve_fraction = 1.0;
  EXPECT_THROW(params.validate(), ConfigError);
}

}  // namespace
}  // namespace wrsn::mc
