#include "core/fleet_reference.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/check.hpp"
#include "core/reference_planner.hpp"

namespace wrsn::csa::reference {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Key stop indices in EDF order (window_close, then stop index) — the same
/// total order as the fast fleet planner.
std::vector<std::size_t> keys_edf(const std::vector<Stop>& stops) {
  std::vector<std::size_t> keys;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    if (stops[i].is_key) keys.push_back(i);
  }
  std::sort(keys.begin(), keys.end(), [&](std::size_t a, std::size_t b) {
    if (stops[a].window_close != stops[b].window_close) {
      return stops[a].window_close < stops[b].window_close;
    }
    return a < b;
  });
  return keys;
}

/// Phase D for one charger: the original full-rescore cost-benefit greedy
/// (core/reference_planner.cpp), restricted to `cell`; whatever the loop
/// cannot place is appended to `spill`.
void fill_cell_rescore(const TideInstance& instance, NaiveRouteState& route,
                       const std::vector<std::size_t>& cell,
                       std::vector<std::size_t>& spill) {
  std::vector<std::size_t> remaining = cell;
  while (!remaining.empty()) {
    double best_score = -kInf;
    std::size_t best_stop = 0;
    std::size_t best_pos = 0;
    std::size_t best_remaining_idx = 0;
    bool found = false;
    for (std::size_t r = 0; r < remaining.size(); ++r) {
      const std::size_t stop = remaining[r];
      const auto best = route.best_insertion(stop);
      if (!best.has_value()) continue;
      const double score =
          instance.stops[stop].utility / std::max(best->second, 1.0);
      if (score > best_score) {
        best_score = score;
        best_stop = stop;
        best_pos = best->first;
        best_remaining_idx = r;
        found = true;
      }
    }
    if (!found) break;
    route.insert(best_stop, best_pos);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best_remaining_idx));
  }
  spill.insert(spill.end(), remaining.begin(), remaining.end());
}

}  // namespace

FleetPlan NaiveFleetPlanner::plan(const FleetInstance& instance) const {
  instance.validate();
  const std::size_t m = instance.chargers.size();

  FleetPlan out;
  out.keys_total = instance.key_count();
  out.plans.resize(m);

  std::vector<std::size_t> alive;
  for (std::size_t k = 0; k < m; ++k) {
    if (instance.chargers[k].alive) alive.push_back(k);
  }
  const std::vector<std::size_t> keys = keys_edf(instance.stops);

  if (alive.empty()) {
    out.unscheduled_keys = keys;
    for (Plan& p : out.plans) p.keys_total = out.keys_total;
    return out;
  }

  // One member instance per alive charger over the full stop pool; travel
  // times come straight from TideInstance::travel_time (the naive route
  // state never touches a matrix), which the TravelMatrix contract pins
  // bit-identical to the fast planner's cached/memoized values.
  std::vector<TideInstance> insts(m);
  std::vector<std::optional<NaiveRouteState>> routes(m);
  for (const std::size_t k : alive) {
    insts[k].start_position = instance.chargers[k].start_position;
    insts[k].start_time = instance.chargers[k].start_time;
    insts[k].speed = instance.chargers[k].speed;
    insts[k].stops = instance.stops;
    routes[k].emplace(insts[k]);
  }

  // (A) Spatial seed: nearest alive depot by squared distance, ties to the
  // lower charger index.
  std::vector<std::size_t> seed(instance.stops.size());
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    std::size_t best = alive.front();
    double best_sq = (instance.stops[i].position -
                      instance.chargers[best].start_position)
                         .norm_sq();
    for (std::size_t j = 1; j < alive.size(); ++j) {
      const std::size_t k = alive[j];
      const double d = (instance.stops[i].position -
                        instance.chargers[k].start_position)
                           .norm_sq();
      if (d < best_sq) {
        best_sq = d;
        best = k;
      }
    }
    seed[i] = best;
  }

  // (B) Per-charger EDF key skeleton.
  std::vector<std::size_t> orphans;
  for (const std::size_t key : keys) {
    NaiveRouteState& route = *routes[seed[key]];
    if (const auto best = route.best_insertion(key)) {
      route.insert(key, best->first);
    } else {
      orphans.push_back(key);
    }
  }

  // (C) Orphan key auction (min delta, ties to the lower charger index).
  const auto auction = [&](std::size_t stop) -> std::optional<std::size_t> {
    std::optional<std::size_t> winner;
    std::size_t winner_pos = 0;
    Seconds winner_delta = kInf;
    for (const std::size_t k : alive) {
      const auto bid = routes[k]->best_insertion(stop);
      if (bid && bid->second < winner_delta) {
        winner = k;
        winner_pos = bid->first;
        winner_delta = bid->second;
      }
    }
    if (winner) routes[*winner]->insert(stop, winner_pos);
    return winner;
  };
  for (const std::size_t key : orphans) {
    if (const auto winner = auction(key)) {
      if (*winner != seed[key]) ++out.auction_moves;
    } else {
      out.unscheduled_keys.push_back(key);
    }
  }

  // (D) Per-charger full-rescore utility fill restricted to the seed cell.
  std::vector<std::size_t> spill;
  for (const std::size_t k : alive) {
    std::vector<std::size_t> cell;
    for (std::size_t i = 0; i < instance.stops.size(); ++i) {
      const Stop& s = instance.stops[i];
      if (!s.is_key && s.utility > 0.0 && seed[i] == k) cell.push_back(i);
    }
    fill_cell_rescore(insts[k], *routes[k], cell, spill);
  }

  // (E) Utility spill auction, descending utility (ties: lower stop index).
  std::sort(spill.begin(), spill.end(), [&](std::size_t a, std::size_t b) {
    const double ua = instance.stops[a].utility;
    const double ub = instance.stops[b].utility;
    return ua != ub ? ua > ub : a < b;
  });
  for (const std::size_t stop : spill) {
    if (const auto winner = auction(stop)) {
      if (*winner != seed[stop]) ++out.auction_moves;
    }
  }

  for (std::size_t k = 0; k < m; ++k) {
    if (routes[k]) {
      out.plans[k] = routes[k]->to_plan();
    } else {
      out.plans[k].keys_total = out.keys_total;
    }
    out.utility += out.plans[k].utility;
    out.keys_scheduled += out.plans[k].keys_scheduled;
  }
  WRSN_ASSERT(out.keys_scheduled + out.unscheduled_keys.size() ==
              out.keys_total);
  return out;
}

}  // namespace wrsn::csa::reference
