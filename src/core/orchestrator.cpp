#include "core/orchestrator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "core/theory.hpp"
#include "obs/metrics.hpp"

namespace wrsn::csa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void AttackParams::validate() const {
  charger.validate();
  spoofing.validate();
  if (window_margin < 0.0) throw ConfigError("window_margin < 0");
  if (lookahead < 0.0) throw ConfigError("lookahead < 0");
  if (comm_antenna_offset <= 0.0) {
    throw ConfigError("comm_antenna_offset must be > 0");
  }
  if (battery_reserve_fraction < 0.0 || battery_reserve_fraction >= 1.0) {
    throw ConfigError("battery_reserve_fraction must be in [0, 1)");
  }
  if (campaign_deadline <= 0.0) throw ConfigError("campaign_deadline <= 0");
  if (partial_leak_ratio < 0.0 || partial_leak_ratio >= 1.0) {
    throw ConfigError("partial_leak_ratio must be in [0, 1)");
  }
  if (campaign_slack <= 0.0 || campaign_slack > 1.0) {
    throw ConfigError("campaign_slack must be in (0, 1]");
  }
}

AttackAgent::AttackAgent(sim::World& world, const AttackParams& params,
                         const Planner& planner, Rng rng,
                         const policy::AttackPolicyParams& policy)
    : world_(world),
      params_(params),
      planner_(planner),
      rng_(std::move(rng)),
      mc_(params.charger) {
  params_.validate();
  territory_.insert(params_.territory.begin(), params_.territory.end());
  emitter_.emplace(world_.charging_model(), params_.spoofing);
  // fork() is const — the policy stream never advances rng_, so the static
  // policy (which consumes nothing) leaves every existing draw sequence,
  // and therefore every pre-policy result, bit-identical.
  policy_ = policy::make_attack_policy(policy, rng_.fork("policy"),
                                       params_.pace_limit,
                                       params_.partial_leak_ratio);
}

AttackAgent::~AttackAgent() {
  WRSN_OBS_ADD(kCsaReplans, double(plans_computed_));
  WRSN_OBS_ADD(kCsaTravelMemoHits, double(memo_hits_));
  WRSN_OBS_ADD(kCsaTravelMemoMisses, double(memo_misses_));
  WRSN_OBS_ADD(kMcSessions, double(sessions_ended_));
  WRSN_OBS_ADD(kMcSessionsSpoofed, double(spoofed_sessions_ended_));
}

void AttackAgent::start() {
  WRSN_REQUIRE(!started_, "attack agent already started");
  started_ = true;

  // Survey the network once and lock in the key-target set (the attacker's
  // reconnaissance phase).  Candidates come ranked by structural impact;
  // the attacker keeps only targets it can actually exhaust before the
  // campaign ends: the node must request (predictable from its drain rate)
  // and then burn through its remaining ~threshold-level charge in time.
  net::KeyNodeConfig wide = params_.key_selection;
  wide.max_count = world_.network().size();
  const std::vector<net::NodeId> candidates =
      net::select_key_nodes(world_.network(), world_.loads(), wide);

  // Taking more targets than the kill-pacing throughput can cover would
  // force the last-chance override constantly and blow the death-rate
  // cover; cap the selection at the stealth throughput.
  const std::size_t target_cap =
      std::min<std::size_t>(params_.key_selection.max_count,
                            theory::max_paced_kills(params_.campaign_deadline,
                                                    params_.pace_limit,
                                                    params_.pace_window));

  const Seconds deadline = params_.campaign_deadline * params_.campaign_slack;
  for (const net::NodeId id : candidates) {
    if (key_targets_.size() >= target_cap) break;
    if (!in_territory(id)) continue;  // can only spoof nodes it services
    Seconds request_at = world_.has_pending_request(id)
                             ? world_.simulator().now()
                             : world_.predicted_request(id);
    if (!std::isfinite(request_at)) continue;
    const Watts drain = world_.drain_rate(id);
    if (drain <= 0.0) continue;
    const Joules level_at_spoof = world_.params().request_threshold *
                                  world_.network().node(id).battery_capacity;
    const Seconds kill_time = level_at_spoof / drain;
    if (request_at + world_.params().patience + kill_time > deadline) {
      continue;  // not exhaustible inside the campaign
    }
    key_targets_.push_back(id);
  }
  if (key_targets_.empty()) {
    // No candidate is cleanly exhaustible inside the campaign; attack the
    // highest-impact ones anyway (partial exhaustion beats no attack).
    for (const net::NodeId id : candidates) {
      if (key_targets_.size() >= std::max<std::size_t>(target_cap, 1)) break;
      if (!in_territory(id)) continue;
      key_targets_.push_back(id);
    }
  }
  key_set_.insert(key_targets_.begin(), key_targets_.end());
  log(LogLevel::Info) << "CSA attacker selected " << key_targets_.size()
                      << " key targets";

  world_.add_request_listener([this](net::NodeId id) { on_request(id); });
  world_.add_death_listener([this](net::NodeId id) { on_death(id); });
  if (state_ == State::Idle) replan();
}

void AttackAgent::on_request(net::NodeId id) {
  if (!in_territory(id)) return;
  if (state_ == State::Idle) replan();
  // Travel/charging legs finish first; the fresh request enters the next
  // receding-horizon replan at the coming decision point.
}

void AttackAgent::on_death(net::NodeId id) {
  // Every death is visible in the base-station logs the attacker operates
  // under; deaths it did not schedule (hardware failures, starvation) join
  // the pacing window so kills keep hiding in the total rate.
  const bool own_kill = spoof_killed_.count(id) != 0;
  if (!own_kill) {
    kill_schedule_.push_back(world_.simulator().now());
  }
  policy_->observe_death(world_.simulator().now(), own_kill);
  if (id != target_) return;
  const Seconds now = world_.simulator().now();
  if (state_ == State::Traveling) {
    mc_.halt(now);
    ++event_version_;
    target_ = net::kInvalidNode;
    state_ = State::Idle;
    replan();
  } else if (state_ == State::Charging) {
    ++event_version_;
    end_session(event_version_);
  }
}

void AttackAgent::fault_breakdown(double budget_loss, bool permanent) {
  WRSN_REQUIRE(budget_loss >= 0.0 && budget_loss <= 1.0,
               "budget_loss must be in [0, 1]");
  if (broken_) {
    permanently_broken_ = permanently_broken_ || permanent;
    return;
  }
  broken_ = true;
  permanently_broken_ = permanent;
  const Seconds now = world_.simulator().now();
  switch (state_) {
    case State::Traveling:
    case State::ToDepot:
      mc_.halt(now);
      ++event_version_;  // invalidate the in-flight arrival event
      target_ = net::kInvalidNode;
      break;
    case State::Charging:
      // Truncate the session cleanly (spoofed or genuine); replan at the
      // session tail no-ops on broken_.
      end_session(++event_version_);
      break;
    case State::DepotCharging:
      ++event_version_;  // invalidate the depot-completion event
      break;
    case State::Idle:
    case State::Broken:
      break;
  }
  mc_.damage(budget_loss * mc_.params().battery_capacity);
  state_ = State::Broken;
  WRSN_LOG(Debug) << "attacker vehicle breakdown at t=" << now
                  << (permanent ? " (permanent)" : "");
}

void AttackAgent::fault_repair() {
  if (!broken_ || permanently_broken_) return;
  broken_ = false;
  state_ = State::Idle;
  WRSN_LOG(Debug) << "attacker vehicle repaired at t="
                  << world_.simulator().now();
  if (started_) replan();
}

void AttackAgent::fault_phase_noise(double scale) {
  WRSN_REQUIRE(scale > 0.0, "phase noise scale must be > 0");
  wpt::SpoofingParams degraded = params_.spoofing;
  degraded.phase_jitter_sigma *= scale;
  emitter_.emplace(world_.charging_model(), degraded);
}

void AttackAgent::adopt_territory(std::span<const net::NodeId> nodes) {
  // A whole-network agent (empty territory) already services everything.
  if (territory_.empty()) return;
  territory_.insert(nodes.begin(), nodes.end());
  WRSN_LOG(Debug) << "attacker adopted " << nodes.size() << " nodes at t="
                  << world_.simulator().now();
  if (started_ && !broken_ && state_ == State::Idle) replan();
}

std::size_t AttackAgent::kill_window_count(Seconds death_at) const {
  // Simulate the defender's trailing window: after adding this kill, the
  // worst window of length pace_window over deaths (scheduled kills +
  // observed background deaths).  Candidate window ends are the entry times
  // themselves plus the new kill.  The static policy's paced-out verdict is
  // `count > pace_limit` — exactly the pre-policy arithmetic.
  const auto count_in = [&](Seconds end) {
    const Seconds begin = end - params_.pace_window;
    std::size_t n = (death_at >= begin && death_at <= end) ? 1 : 0;
    for (const Seconds t : kill_schedule_) {
      if (t >= begin && t <= end) ++n;
    }
    return n;
  };
  std::size_t worst = count_in(death_at + params_.pace_window);
  worst = std::max(worst, count_in(death_at));
  for (const Seconds t : kill_schedule_) {
    if (t >= death_at && t <= death_at + params_.pace_window) {
      worst = std::max(worst, count_in(t));
    }
  }
  return worst;
}

policy::SpoofDecision AttackAgent::spoof_decision(net::NodeId id) {
  // Non-targets and NoService campaigns never spoof; both short-circuit
  // before the policy (they are mode structure, not scheduling).
  if (!is_key(id)) return {false, params_.partial_leak_ratio};
  if (params_.spoof_mode == SpoofMode::NoService) {
    return {false, params_.partial_leak_ratio};
  }
  const Watts drain = world_.drain_rate(id);
  // No measurable drain means no death to pace; spoof unconditionally.
  if (drain <= 0.0) return {true, params_.partial_leak_ratio};

  const Seconds now = world_.simulator().now();
  policy::SpoofQuery query;
  query.now = now;
  query.death_at = now + world_.level(id) / drain;
  query.window_deaths = kill_window_count(query.death_at);

  // Deferring means serving genuinely and killing on the node's NEXT
  // request; if that redo cycle no longer fits inside the campaign, this is
  // the last chance and every policy takes the kill.
  const Joules capacity = world_.network().node(id).battery_capacity;
  const Seconds redo_cycle =
      (world_.params().charge_target_fraction -
       world_.params().request_threshold) *
      capacity / drain;
  const Seconds kill_time =
      world_.params().request_threshold * capacity / drain;
  query.last_chance = now + redo_cycle + kill_time >
                      params_.campaign_deadline * params_.campaign_slack;
  query.keys_killed = spoof_killed_.size();
  query.keys_total = key_targets_.size();
  return policy_->decide(query);
}

void AttackAgent::build_instance(TideInstance& instance) const {
  const Seconds now = world_.simulator().now();
  const Watts nominal = world_.nominal_dc_power();
  WRSN_ASSERT(nominal > 0.0);

  instance.start_position = mc_.position(now);
  instance.start_time = now;
  instance.speed = mc_.params().speed;
  instance.stops.clear();

  const auto believed_deficit = [&](net::NodeId id) {
    const Joules capacity = world_.network().node(id).battery_capacity;
    return std::max(
        0.0, world_.params().charge_target_fraction * capacity -
                 world_.believed_level(id));
  };

  // Pending requests: hard-deadline stops.  Key nodes become spoof targets;
  // the rest become genuine-utility stops.
  for (const net::NodeId node : world_.pending_nodes()) {
    if (!in_territory(node)) continue;
    if (params_.spoof_mode == SpoofMode::NoService && is_key(node)) {
      continue;  // naive variant: starve key nodes outright
    }
    const sim::PendingRequest req = world_.pending_request(node);
    Stop stop;
    stop.node = node;
    stop.position = world_.network().node(node).position;
    stop.window_open = now;
    stop.window_close =
        std::max(now, req.escalation_deadline - params_.window_margin);
    stop.service_time =
        world_.planned_session_duration(believed_deficit(node));
    stop.is_key = is_key(node);
    // k-coverage utility mode: under-covered nodes are worth more to keep
    // alive, so their genuine-service utility is scaled up (weight 1 when
    // the mode is off).  Key nodes stay utility 0 — they are spoof targets.
    stop.utility = stop.is_key
                       ? 0.0
                       : believed_deficit(node) * world_.coverage_weight(node);
    instance.stops.push_back(stop);
  }

  // Predicted key-node requests inside the lookahead horizon: lets the
  // planner reserve capacity for tight future windows.
  if (params_.spoof_mode == SpoofMode::NoService) {
    prime_travel_matrix(instance);
    return;
  }
  for (const net::NodeId key : key_targets_) {
    if (!world_.alive(key) || world_.has_pending_request(key)) continue;
    const Seconds predicted = world_.predicted_request(key);
    if (!(predicted < now + params_.lookahead)) continue;
    Stop stop;
    stop.node = key;
    stop.position = world_.network().node(key).position;
    stop.window_open = predicted;
    stop.window_close = std::max(
        predicted, predicted + world_.params().patience - params_.window_margin);
    // Expected deficit at request time: believed level hits the threshold.
    const Joules capacity = world_.network().node(key).battery_capacity;
    stop.service_time = world_.planned_session_duration(
        (world_.params().charge_target_fraction -
         world_.params().request_threshold) *
        capacity);
    stop.is_key = true;
    stop.utility = 0.0;
    instance.stops.push_back(stop);
  }
  prime_travel_matrix(instance);
}

void AttackAgent::prime_travel_matrix(TideInstance& instance) const {
  // memo_hits_/memo_misses_ are plain member tallies flushed once by the
  // destructor: the memo lambda runs O(stops²) per replan, far too hot for
  // a registry write per lookup.
  if (memo_topology_version_ != world_.topology_version()) {
    // Mobility moved nodes since the memo was filled: every cached pair
    // distance is stale.
    stop_pair_distance_.clear();
    memo_topology_version_ = world_.topology_version();
  }
  if (!travel_matrix_) travel_matrix_ = std::make_shared<TravelMatrix>();
  travel_matrix_->rebuild(
      instance, [this](const Stop& a, const Stop& b) -> Meters {
        if (a.node == net::kInvalidNode || b.node == net::kInvalidNode) {
          return geom::distance(a.position, b.position);
        }
        const net::NodeId lo = std::min(a.node, b.node);
        const net::NodeId hi = std::max(a.node, b.node);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(lo) << 32) | hi;
        const auto [it, inserted] = stop_pair_distance_.try_emplace(key, 0.0);
        if (inserted) {
          ++memo_misses_;
          it->second = geom::distance(a.position, b.position);
        } else {
          ++memo_hits_;
        }
        return it->second;
      });
  instance.set_travel_matrix(
      std::shared_ptr<const TravelMatrix>(travel_matrix_));
}

void AttackAgent::replan() {
  if (broken_) return;  // a broken vehicle plans nothing until repaired
  WRSN_ASSERT(state_ == State::Idle);
  const Seconds now = world_.simulator().now();

  if (mc_.battery_fraction() < params_.battery_reserve_fraction) {
    go_to_depot();
    return;
  }

  build_instance(plan_instance_);
  if (plan_instance_.stops.empty()) return;  // nothing to do; requests wake us

  planner_.plan_into(plan_instance_, rng_, plan_);
  ++plans_computed_;
  if (plan_.visits.empty()) return;

  const Visit& next = plan_.visits.front();
  const Stop& stop = plan_instance_.stops[next.stop_index];

  // Only execute stops whose request is actually outstanding; a predicted
  // (future) first stop means we pre-position just in time and wait for the
  // request to fire.
  if (!world_.has_pending_request(stop.node)) {
    const geom::Vec2 node_pos = world_.network().node(stop.node).position;
    const Seconds travel = mc_.travel_time(mc_.position(now), node_pos);
    const Seconds depart_at = stop.window_open - travel;
    const std::uint64_t version = ++event_version_;
    if (depart_at > now + 1.0) {
      // Too early to leave; sleep until the departure instant.
      world_.simulator().schedule_at(depart_at,
                                     [this, version] { on_wake(version); });
      return;
    }
    const Meters dock = world_.charging_model().params().dock_distance;
    if (geom::distance(mc_.position(now), node_pos) > dock + 0.01) {
      travel_to_node(stop.node);  // pre-position next to the target
      return;
    }
    // Already adjacent; poll until the predicted request materializes (the
    // request callback usually wakes us first).
    world_.simulator().schedule_at(std::max(stop.window_open, now + 30.0),
                                   [this, version] { on_wake(version); });
    return;
  }
  travel_to_node(stop.node);
}

void AttackAgent::on_wake(std::uint64_t version) {
  if (version != event_version_) return;
  if (state_ != State::Idle) return;
  replan();
}

void AttackAgent::travel_to_node(net::NodeId id) {
  const Seconds now = world_.simulator().now();
  const geom::Vec2 node_pos = world_.network().node(id).position;
  const geom::Vec2 pos = mc_.position(now);
  const Meters dock = world_.charging_model().params().dock_distance;
  const geom::Vec2 approach = (node_pos - pos).normalized();
  const geom::Vec2 dock_pos =
      geom::distance(pos, node_pos) > dock ? node_pos - approach * dock : pos;

  target_ = id;
  state_ = State::Traveling;
  const Seconds arrival = mc_.begin_travel(now, dock_pos);
  const std::uint64_t version = ++event_version_;
  world_.simulator().schedule_at(arrival,
                                 [this, version] { on_arrival(version); });
}

void AttackAgent::go_to_depot() {
  const Seconds now = world_.simulator().now();
  state_ = State::ToDepot;
  target_ = net::kInvalidNode;
  const Seconds arrival = mc_.begin_travel(now, mc_.params().depot);
  const std::uint64_t version = ++event_version_;
  world_.simulator().schedule_at(arrival,
                                 [this, version] { on_arrival(version); });
}

void AttackAgent::on_arrival(std::uint64_t version) {
  if (version != event_version_) return;
  const Seconds now = world_.simulator().now();
  mc_.arrive(now);

  if (state_ == State::ToDepot) {
    state_ = State::DepotCharging;
    const Seconds done = now + mc_.depot_recharge_time();
    const std::uint64_t v = ++event_version_;
    world_.simulator().schedule_at(done, [this, v] {
      if (v != event_version_) return;
      mc_.recharge_full();
      state_ = State::Idle;
      replan();
    });
    return;
  }

  WRSN_ASSERT(state_ == State::Traveling);
  const net::NodeId node = target_;
  if (!world_.alive(node) || !world_.has_pending_request(node)) {
    target_ = net::kInvalidNode;
    state_ = State::Idle;
    replan();
    return;
  }
  start_session(node);
}

void AttackAgent::start_session(net::NodeId id) {
  const Seconds now = world_.simulator().now();
  const Joules capacity = world_.network().node(id).battery_capacity;
  const Joules believed_deficit =
      std::max(0.0, world_.params().charge_target_fraction * capacity -
                        world_.believed_level(id));
  if (believed_deficit <= 0.0) {
    world_.note_service_started(id);
    world_.note_service_ended(id, 0.0, 0.0);
    target_ = net::kInvalidNode;
    state_ = State::Idle;
    replan();
    return;
  }

  const Watts nominal = world_.nominal_dc_power();
  // Spoofed sessions mimic a nominal-rate service; genuine ones stretch to
  // the realized rate (set below).
  session_genuine_duration_ = world_.planned_session_duration(believed_deficit);
  const policy::SpoofDecision decision = spoof_decision(id);
  const bool spoof = decision.spoof;
  if (spoof) {
    const Watts drain = world_.drain_rate(id);
    kill_schedule_.push_back(drain > 0.0
                                 ? now + world_.level(id) / drain
                                 : now + params_.pace_window);
    spoof_killed_.insert(id);
  }

  const geom::Vec2 node_pos = world_.network().node(id).position;
  const geom::Vec2 charger_pos = mc_.position(now);

  if (spoof && params_.spoof_mode == SpoofMode::SilentSkip) {
    // Dock and pretend: no radiation at all.  Free energy for the attacker
    // but the carrier absence is what RSSI checks look for.
    session_dc_ = 0.0;
    session_rf_observed_ = 0.0;
    session_probe_rf_ = 0.0;
    session_probe_distance_ = 0.0;
    ++spoofed_sessions_;
  } else if (spoof) {
    // RSSI is measured at the node's communication antenna, offset from the
    // nulled rectenna; the emitter keeps the carrier there strong.
    const geom::Vec2 los = (node_pos - charger_pos).normalized();
    const geom::Vec2 perp{-los.y, los.x};
    const geom::Vec2 comm_antenna =
        node_pos + perp * params_.comm_antenna_offset;

    // Full cancellation kills fastest; partial cancellation leaks exactly
    // enough to slip under single-session energy audits.
    const Watts expected_rate =
        nominal * world_.params().benign_gain_mean;
    const wpt::SpoofOutcome outcome =
        params_.spoof_mode == SpoofMode::PartialCancel
            ? emitter_->configure_partial(
                  charger_pos, node_pos,
                  decision.leak_ratio * expected_rate, &rng_,
                  &comm_antenna)
            : emitter_->configure(charger_pos, node_pos, &rng_);
    session_dc_ = outcome.dc_at_target;

    // Nearest alive neighbour probes the field too.
    const net::Network& network = world_.network();
    Meters nearest = kInf;
    geom::Vec2 nearest_pos;
    for (const net::NodeId nb : network.neighbors(id)) {
      if (!world_.alive(nb)) continue;
      const Meters d = network.distance(id, nb);
      if (d < nearest) {
        nearest = d;
        nearest_pos = network.node(nb).position;
      }
    }
    session_probe_distance_ = nearest;

    // Comm antenna and neighbour witness share one batched field pass.
    const bool has_witness = std::isfinite(nearest);
    const Meters probe_x[2] = {comm_antenna.x, nearest_pos.x};
    const Meters probe_y[2] = {comm_antenna.y, nearest_pos.y};
    Watts probe_rf[2] = {0.0, 0.0};
    double probe_im[2];
    const std::size_t probes = has_witness ? 2 : 1;
    emitter_->rf_at_probes(outcome, {probe_x, probes}, {probe_y, probes},
                           {probe_rf, probes}, {probe_im, probes});
    session_rf_observed_ = probe_rf[0];
    session_probe_rf_ = has_witness ? probe_rf[1] : 0.0;
    ++spoofed_sessions_;
  } else {
    const double gain = world_.draw_genuine_gain_factor();
    session_dc_ = nominal * gain;
    // Energy-target service: the realized rate stretches the stay.
    session_genuine_duration_ = believed_deficit / session_dc_;
    session_rf_observed_ = world_.charging_model().rf_at_distance(
        world_.charging_model().params().dock_distance);
    const net::Network& network = world_.network();
    Meters nearest = kInf;
    for (const net::NodeId nb : network.neighbors(id)) {
      if (!world_.alive(nb)) continue;
      nearest = std::min(nearest, network.distance(id, nb));
    }
    session_probe_distance_ = nearest;
    session_probe_rf_ = std::isfinite(nearest)
                            ? world_.charging_model().rf_at_distance(nearest)
                            : 0.0;
    ++genuine_sessions_;
  }

  state_ = State::Charging;
  session_spoofed_ = spoof;
  session_radiated_power_ =
      (spoof && params_.spoof_mode == SpoofMode::SilentSkip)
          ? 0.0
          : world_.charging_model().params().source_power;
  session_start_ = now;

  world_.note_service_started(id);
  world_.set_charge_input(id, session_dc_);

  const std::uint64_t version = ++event_version_;
  world_.simulator().schedule_at(now + session_genuine_duration_,
                                 [this, version] { end_session(version); });
}

void AttackAgent::end_session(std::uint64_t version) {
  if (version != event_version_) return;
  WRSN_ASSERT(state_ == State::Charging);
  const Seconds now = world_.simulator().now();
  const net::NodeId node = target_;
  const Seconds duration = now - session_start_;
  const Joules expected = world_.expected_session_gain(duration);
  const Joules delivered = session_dc_ * duration;

  world_.set_charge_input(node, 0.0);
  world_.note_service_ended(node, expected, delivered);

  const Watts source = session_radiated_power_;
  mc_.radiate(source, duration, session_spoofed_);

  sim::SessionRecord record;
  record.node = node;
  record.start = session_start_;
  record.end = now;
  record.kind = session_spoofed_ ? sim::SessionKind::Spoofed
                                 : sim::SessionKind::Genuine;
  record.expected_gain = expected;
  record.delivered = delivered;
  record.rf_observed = session_rf_observed_;
  record.rf_neighbor_probe = session_probe_rf_;
  record.nearest_probe_distance = session_probe_distance_;
  record.radiated = source * duration;
  world_.trace().sessions.push_back(record);
  ++sessions_ended_;
  if (session_spoofed_) ++spoofed_sessions_ended_;
  WRSN_OBS_OBSERVE(kMcSessionEnergyJ, delivered);

  WRSN_LOG(Debug) << (session_spoofed_ ? "SPOOFED" : "genuine")
                  << " session on node " << node << " delivered "
                  << delivered << " J of " << expected << " J expected";

  target_ = net::kInvalidNode;
  state_ = State::Idle;
  replan();
}

}  // namespace wrsn::csa
