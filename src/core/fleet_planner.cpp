#include "core/fleet_planner.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/check.hpp"
#include "core/route_state.hpp"
#include "obs/metrics.hpp"

namespace wrsn::csa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Key stop indices in EDF order, filled into caller-owned scratch.  Unlike
/// the single-charger planners (which sort by window_close only and lean on
/// std::sort stability being irrelevant there), the fleet phases interleave
/// chargers, so the order is made a TOTAL one: ties on window_close break to
/// the lower stop index.
void keys_edf(const std::vector<Stop>& stops, std::vector<std::size_t>& keys) {
  keys.clear();
  for (std::size_t i = 0; i < stops.size(); ++i) {
    if (stops[i].is_key) keys.push_back(i);
  }
  std::sort(keys.begin(), keys.end(), [&](std::size_t a, std::size_t b) {
    if (stops[a].window_close != stops[b].window_close) {
      return stops[a].window_close < stops[b].window_close;
    }
    return a < b;
  });
}

/// Resets `p` to the empty plan a dead or auction-less charger reports.
void reset_plan(Plan& p, std::size_t keys_total) {
  p.visits.clear();
  p.utility = 0.0;
  p.keys_scheduled = 0;
  p.keys_total = keys_total;
  p.completion_time = 0.0;
}

/// Nearest alive charger by SQUARED depot distance, ties to the lower
/// charger index (`alive` is ascending) — mc::nearest_depot's rule.
std::size_t seed_charger(const FleetInstance& instance, geom::Vec2 p,
                         const std::vector<std::size_t>& alive) {
  std::size_t best = alive.front();
  double best_sq =
      (p - instance.chargers[best].start_position).norm_sq();
  for (std::size_t j = 1; j < alive.size(); ++j) {
    const std::size_t k = alive[j];
    const double d = (p - instance.chargers[k].start_position).norm_sq();
    if (d < best_sq) {
      best_sq = d;
      best = k;
    }
  }
  return best;
}

/// Phase D for one charger: the CSA lazy (CELF-style) cost-benefit fill of
/// core/planners.cpp, restricted to the utility stops of `cell`.  Stops the
/// fill leaves uninserted (pre-filtered unreachable ones included: they are
/// infeasible at every position, so the reference's full rescans reject
/// them too) are appended to `spill` for the fleet-wide re-auction.
void fill_cell_celf(const TideInstance& instance, RouteState& route,
                    const std::vector<std::size_t>& cell, CelfFill& fill,
                    std::vector<std::size_t>& spill) {
  const TravelMatrix& tt = instance.travel_matrix();
  std::vector<CelfCandidate>& candidates = fill.candidates();
  candidates.clear();
  candidates.reserve(cell.size());
  for (const std::size_t i : cell) {
    const Stop& s = instance.stops[i];
    if (instance.start_time + tt.from_start(i) >
        s.window_close + kWindowEpsilon + 1e-6) {
      spill.push_back(i);  // unreachable even straight from the start
      continue;
    }
    CelfCandidate c;
    c.stop = i;
    c.utility = s.utility;
    c.open = s.window_open;
    c.close_eps = s.window_close + kWindowEpsilon;
    c.service = s.service_time;
    candidates.push_back(c);
  }
  // The fleet planner keeps no per-fill observability tallies; feed the
  // shared engine throwaway accumulators.
  std::uint64_t tried = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  fill.run(instance, route, tried, hits, misses);
  for (const CelfCandidate& c : candidates) {
    if (!c.inserted) spill.push_back(c.stop);
  }
}

}  // namespace

std::size_t FleetInstance::key_count() const {
  std::size_t n = 0;
  for (const Stop& s : stops) {
    if (s.is_key) ++n;
  }
  return n;
}

void FleetInstance::validate() const {
  if (chargers.empty()) throw ConfigError("fleet has no chargers");
  for (const FleetCharger& c : chargers) {
    if (c.speed <= 0.0) throw ConfigError("fleet charger speed must be > 0");
  }
  // Same per-stop checks as TideInstance::validate (the member instances are
  // assembled from this pool verbatim).
  for (const Stop& stop : stops) {
    if (stop.window_close < stop.window_open) {
      throw ConfigError("TIDE stop window closes before it opens");
    }
    if (stop.service_time < 0.0) {
      throw ConfigError("TIDE stop has negative service time");
    }
    if (stop.utility < 0.0) {
      throw ConfigError("TIDE stop has negative utility");
    }
  }
}

FleetPlan CooperativeFleetPlanner::plan(const FleetInstance& instance) const {
  FleetPlan out;
  plan_into(instance, out);
  return out;
}

void CooperativeFleetPlanner::plan_into(const FleetInstance& instance,
                                        FleetPlan& out) const {
  instance.validate();
  const std::size_t m = instance.chargers.size();

  out.plans.resize(m);
  out.unscheduled_keys.clear();
  out.utility = 0.0;
  out.keys_scheduled = 0;
  out.keys_total = instance.key_count();
  out.auction_moves = 0;

  alive_.clear();
  for (std::size_t k = 0; k < m; ++k) {
    if (instance.chargers[k].alive) alive_.push_back(k);
  }
  keys_edf(instance.stops, keys_);

  if (alive_.empty()) {
    out.unscheduled_keys = keys_;
    for (Plan& p : out.plans) reset_plan(p, out.keys_total);
    WRSN_OBS_COUNT(kFleetPlans);
    WRSN_OBS_ADD(kFleetUnscheduledKeys, double(out.unscheduled_keys.size()));
    return;
  }

  // Member instances share the stop pool, so one node-pair distance memo
  // (the orchestrator's cross-replan idiom) pays each pair's sqrt once
  // across the M travel-matrix fills instead of M times.  The memo lives on
  // the planner: node positions never move, so entries stay valid across
  // replans and a steady-state refill does no distance work at all.
  auto& pair_memo = pair_memo_;
  const TravelMatrix::PairDistance pair_distance =
      [&pair_memo](const Stop& a, const Stop& b) -> Meters {
    if (a.node == net::kInvalidNode || b.node == net::kInvalidNode) {
      return geom::distance(a.position, b.position);
    }
    const net::NodeId lo = std::min(a.node, b.node);
    const net::NodeId hi = std::max(a.node, b.node);
    const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
    const auto [it, inserted] = pair_memo.try_emplace(key, 0.0);
    if (inserted) it->second = geom::distance(a.position, b.position);
    return it->second;
  };

  insts_.resize(m);
  matrices_.resize(m);
  routes_.resize(m);
  for (const std::size_t k : alive_) {
    insts_[k].start_position = instance.chargers[k].start_position;
    insts_[k].start_time = instance.chargers[k].start_time;
    insts_[k].speed = instance.chargers[k].speed;
    insts_[k].stops = instance.stops;
    if (!matrices_[k]) matrices_[k] = std::make_shared<TravelMatrix>();
    matrices_[k]->rebuild(insts_[k], pair_distance);
    insts_[k].set_travel_matrix(
        std::shared_ptr<const TravelMatrix>(matrices_[k]));
    routes_[k].bind(insts_[k]);
    routes_[k].reserve(instance.stops.size());
  }

  // (A) Spatial seed.
  seed_.resize(instance.stops.size());
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    seed_[i] = seed_charger(instance, instance.stops[i].position, alive_);
  }

  // (B) Per-charger EDF key skeleton.
  orphans_.clear();
  for (const std::size_t key : keys_) {
    RouteState& route = routes_[seed_[key]];
    if (const auto best = route.best_insertion(key)) {
      route.insert(key, best->first);
    } else {
      orphans_.push_back(key);
    }
  }

  // (C) Orphan key auction: min completion-time delta over all alive
  // chargers (the seed re-bids), ties to the lower charger index.
  const auto auction = [&](std::size_t stop) -> std::optional<std::size_t> {
    std::optional<std::size_t> winner;
    std::size_t winner_pos = 0;
    Seconds winner_delta = kInf;
    for (const std::size_t k : alive_) {
      const auto bid = routes_[k].best_insertion(stop);
      if (bid && bid->second < winner_delta) {
        winner = k;
        winner_pos = bid->first;
        winner_delta = bid->second;
      }
    }
    if (winner) routes_[*winner].insert(stop, winner_pos);
    return winner;
  };
  for (const std::size_t key : orphans_) {
    if (const auto winner = auction(key)) {
      if (*winner != seed_[key]) ++out.auction_moves;
    } else {
      out.unscheduled_keys.push_back(key);
    }
  }

  // (D) Per-charger utility fill restricted to the seed cell.
  spill_.clear();
  for (const std::size_t k : alive_) {
    cell_.clear();
    for (std::size_t i = 0; i < instance.stops.size(); ++i) {
      const Stop& s = instance.stops[i];
      if (!s.is_key && s.utility > 0.0 && seed_[i] == k) cell_.push_back(i);
    }
    fill_cell_celf(insts_[k], routes_[k], cell_, fill_, spill_);
  }

  // (E) Utility spill auction, descending utility (ties: lower stop index).
  std::sort(spill_.begin(), spill_.end(), [&](std::size_t a, std::size_t b) {
    const double ua = instance.stops[a].utility;
    const double ub = instance.stops[b].utility;
    return ua != ub ? ua > ub : a < b;
  });
  for (const std::size_t stop : spill_) {
    if (const auto winner = auction(stop)) {
      if (*winner != seed_[stop]) ++out.auction_moves;
    }
  }

  for (std::size_t k = 0; k < m; ++k) {
    if (instance.chargers[k].alive) {
      routes_[k].to_plan_into(out.plans[k]);
    } else {
      reset_plan(out.plans[k], out.keys_total);
    }
    out.utility += out.plans[k].utility;
    out.keys_scheduled += out.plans[k].keys_scheduled;
  }
  WRSN_ASSERT(out.keys_scheduled + out.unscheduled_keys.size() ==
              out.keys_total);

  WRSN_OBS_COUNT(kFleetPlans);
  WRSN_OBS_ADD(kFleetAuctionMoves, double(out.auction_moves));
  WRSN_OBS_ADD(kFleetUnscheduledKeys, double(out.unscheduled_keys.size()));
}

}  // namespace wrsn::csa
