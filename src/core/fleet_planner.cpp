#include "core/fleet_planner.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/check.hpp"
#include "core/route_state.hpp"
#include "obs/metrics.hpp"

namespace wrsn::csa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Key stop indices in EDF order.  Unlike the single-charger planners (which
/// sort by window_close only and lean on std::sort stability being
/// irrelevant there), the fleet phases interleave chargers, so the order is
/// made a TOTAL one: ties on window_close break to the lower stop index.
std::vector<std::size_t> keys_edf(const std::vector<Stop>& stops) {
  std::vector<std::size_t> keys;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    if (stops[i].is_key) keys.push_back(i);
  }
  std::sort(keys.begin(), keys.end(), [&](std::size_t a, std::size_t b) {
    if (stops[a].window_close != stops[b].window_close) {
      return stops[a].window_close < stops[b].window_close;
    }
    return a < b;
  });
  return keys;
}

/// Nearest alive charger by SQUARED depot distance, ties to the lower
/// charger index (`alive` is ascending) — mc::nearest_depot's rule.
std::size_t seed_charger(const FleetInstance& instance, geom::Vec2 p,
                         const std::vector<std::size_t>& alive) {
  std::size_t best = alive.front();
  double best_sq =
      (p - instance.chargers[best].start_position).norm_sq();
  for (std::size_t j = 1; j < alive.size(); ++j) {
    const std::size_t k = alive[j];
    const double d = (p - instance.chargers[k].start_position).norm_sq();
    if (d < best_sq) {
      best_sq = d;
      best = k;
    }
  }
  return best;
}

/// Phase D for one charger: the CSA lazy (CELF-style) cost-benefit fill of
/// core/planners.cpp, restricted to the utility stops of `cell`.  Stops the
/// fill leaves uninserted (pre-filtered unreachable ones included: they are
/// infeasible at every position, so the reference's full rescans reject
/// them too) are appended to `spill` for the fleet-wide re-auction.
void fill_cell_celf(const TideInstance& instance, RouteState& route,
                    const std::vector<std::size_t>& cell,
                    std::vector<std::size_t>& spill) {
  struct Candidate {
    std::size_t stop = 0;
    std::uint64_t version = 0;
    bool scored = false;
    bool feasible = false;
    bool inserted = false;
    std::size_t pos = 0;
    Seconds delta = 0.0;
    double score = 0.0;
  };

  const TravelMatrix& tt = instance.travel_matrix();
  std::vector<Candidate> candidates;
  candidates.reserve(cell.size());
  for (const std::size_t i : cell) {
    const Stop& s = instance.stops[i];
    if (instance.start_time + tt.from_start(i) >
        s.window_close + kWindowEpsilon + 1e-6) {
      spill.push_back(i);  // unreachable even straight from the start
      continue;
    }
    Candidate c;
    c.stop = i;
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              const double ua = instance.stops[a.stop].utility;
              const double ub = instance.stops[b.stop].utility;
              return ua != ub ? ua > ub : a.stop < b.stop;
            });

  while (true) {
    double best_score = -kInf;
    Candidate* best = nullptr;
    for (Candidate& c : candidates) {
      if (c.inserted) continue;
      const double bound = instance.stops[c.stop].utility;
      if (best != nullptr && bound < best_score) break;  // CELF cutoff
      if (!c.scored || c.version != route.version()) {
        const auto bi = route.best_insertion(c.stop);
        c.scored = true;
        c.version = route.version();
        c.feasible = bi.has_value();
        if (bi) {
          c.pos = bi->first;
          c.delta = bi->second;
          c.score = bound / std::max(c.delta, 1.0);
        }
      }
      if (!c.feasible) continue;
      if (best == nullptr || c.score > best_score ||
          (c.score == best_score && c.stop < best->stop)) {
        best = &c;
        best_score = c.score;
      }
    }
    if (best == nullptr) break;
    route.insert(best->stop, best->pos);
    best->inserted = true;
  }
  for (const Candidate& c : candidates) {
    if (!c.inserted) spill.push_back(c.stop);
  }
}

}  // namespace

std::size_t FleetInstance::key_count() const {
  std::size_t n = 0;
  for (const Stop& s : stops) {
    if (s.is_key) ++n;
  }
  return n;
}

void FleetInstance::validate() const {
  if (chargers.empty()) throw ConfigError("fleet has no chargers");
  for (const FleetCharger& c : chargers) {
    if (c.speed <= 0.0) throw ConfigError("fleet charger speed must be > 0");
  }
  // Same per-stop checks as TideInstance::validate (the member instances are
  // assembled from this pool verbatim).
  for (const Stop& stop : stops) {
    if (stop.window_close < stop.window_open) {
      throw ConfigError("TIDE stop window closes before it opens");
    }
    if (stop.service_time < 0.0) {
      throw ConfigError("TIDE stop has negative service time");
    }
    if (stop.utility < 0.0) {
      throw ConfigError("TIDE stop has negative utility");
    }
  }
}

FleetPlan CooperativeFleetPlanner::plan(const FleetInstance& instance) const {
  instance.validate();
  const std::size_t m = instance.chargers.size();

  FleetPlan out;
  out.keys_total = instance.key_count();
  out.plans.resize(m);

  std::vector<std::size_t> alive;
  for (std::size_t k = 0; k < m; ++k) {
    if (instance.chargers[k].alive) alive.push_back(k);
  }
  const std::vector<std::size_t> keys = keys_edf(instance.stops);

  if (alive.empty()) {
    out.unscheduled_keys = keys;
    for (Plan& p : out.plans) p.keys_total = out.keys_total;
    WRSN_OBS_COUNT(kFleetPlans);
    WRSN_OBS_ADD(kFleetUnscheduledKeys, double(out.unscheduled_keys.size()));
    return out;
  }

  // Member instances share the stop pool, so one node-pair distance memo
  // (the orchestrator's cross-replan idiom) pays each pair's sqrt once
  // across the M travel-matrix builds instead of M times.
  std::unordered_map<std::uint64_t, Meters> pair_memo;
  const TravelMatrix::PairDistance pair_distance =
      [&pair_memo](const Stop& a, const Stop& b) -> Meters {
    if (a.node == net::kInvalidNode || b.node == net::kInvalidNode) {
      return geom::distance(a.position, b.position);
    }
    const net::NodeId lo = std::min(a.node, b.node);
    const net::NodeId hi = std::max(a.node, b.node);
    const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
    const auto [it, inserted] = pair_memo.try_emplace(key, 0.0);
    if (inserted) it->second = geom::distance(a.position, b.position);
    return it->second;
  };

  std::vector<TideInstance> insts(m);
  std::vector<std::optional<RouteState>> routes(m);
  for (const std::size_t k : alive) {
    insts[k].start_position = instance.chargers[k].start_position;
    insts[k].start_time = instance.chargers[k].start_time;
    insts[k].speed = instance.chargers[k].speed;
    insts[k].stops = instance.stops;
    insts[k].set_travel_matrix(TravelMatrix::build(insts[k], pair_distance));
    routes[k].emplace(insts[k]);
  }

  // (A) Spatial seed.
  std::vector<std::size_t> seed(instance.stops.size());
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    seed[i] = seed_charger(instance, instance.stops[i].position, alive);
  }

  // (B) Per-charger EDF key skeleton.
  std::vector<std::size_t> orphans;
  for (const std::size_t key : keys) {
    RouteState& route = *routes[seed[key]];
    if (const auto best = route.best_insertion(key)) {
      route.insert(key, best->first);
    } else {
      orphans.push_back(key);
    }
  }

  // (C) Orphan key auction: min completion-time delta over all alive
  // chargers (the seed re-bids), ties to the lower charger index.
  const auto auction = [&](std::size_t stop) -> std::optional<std::size_t> {
    std::optional<std::size_t> winner;
    std::size_t winner_pos = 0;
    Seconds winner_delta = kInf;
    for (const std::size_t k : alive) {
      const auto bid = routes[k]->best_insertion(stop);
      if (bid && bid->second < winner_delta) {
        winner = k;
        winner_pos = bid->first;
        winner_delta = bid->second;
      }
    }
    if (winner) routes[*winner]->insert(stop, winner_pos);
    return winner;
  };
  for (const std::size_t key : orphans) {
    if (const auto winner = auction(key)) {
      if (*winner != seed[key]) ++out.auction_moves;
    } else {
      out.unscheduled_keys.push_back(key);
    }
  }

  // (D) Per-charger utility fill restricted to the seed cell.
  std::vector<std::size_t> spill;
  for (const std::size_t k : alive) {
    std::vector<std::size_t> cell;
    for (std::size_t i = 0; i < instance.stops.size(); ++i) {
      const Stop& s = instance.stops[i];
      if (!s.is_key && s.utility > 0.0 && seed[i] == k) cell.push_back(i);
    }
    fill_cell_celf(insts[k], *routes[k], cell, spill);
  }

  // (E) Utility spill auction, descending utility (ties: lower stop index).
  std::sort(spill.begin(), spill.end(), [&](std::size_t a, std::size_t b) {
    const double ua = instance.stops[a].utility;
    const double ub = instance.stops[b].utility;
    return ua != ub ? ua > ub : a < b;
  });
  for (const std::size_t stop : spill) {
    if (const auto winner = auction(stop)) {
      if (*winner != seed[stop]) ++out.auction_moves;
    }
  }

  for (std::size_t k = 0; k < m; ++k) {
    if (routes[k]) {
      out.plans[k] = routes[k]->to_plan();
    } else {
      out.plans[k].keys_total = out.keys_total;
    }
    out.utility += out.plans[k].utility;
    out.keys_scheduled += out.plans[k].keys_scheduled;
  }
  WRSN_ASSERT(out.keys_scheduled + out.unscheduled_keys.size() ==
              out.keys_total);

  WRSN_OBS_COUNT(kFleetPlans);
  WRSN_OBS_ADD(kFleetAuctionMoves, double(out.auction_moves));
  WRSN_OBS_ADD(kFleetUnscheduledKeys, double(out.unscheduled_keys.size()));
  return out;
}

}  // namespace wrsn::csa
