// Exact TIDE solver (Held-Karp dynamic program over stop subsets with time
// windows).
//
// For every subset S of stops and last stop l, the DP keeps the earliest
// route completion time of a feasible sequence visiting exactly S and ending
// at l; earliest completion dominates because waiting is allowed, so one
// scalar per (S, l) suffices.  The answer is the maximum-utility subset that
// is feasible and contains every key stop (ties broken by earlier
// completion).  Exponential in |stops| — intended for the fig8
// approximation-ratio bench on small instances.
#pragma once

#include "core/planners.hpp"

namespace wrsn::csa {

/// Exact solver; refuses instances with more than `max_stops` stops
/// (default 16: ~16 MB of DP state) via PreconditionError.
class ExactPlanner final : public Planner {
 public:
  explicit ExactPlanner(std::size_t max_stops = 16) : max_stops_(max_stops) {}
  std::string_view name() const override { return "Exact-DP"; }
  Plan plan(const TideInstance& instance, Rng& rng) const override;

 private:
  std::size_t max_stops_;
};

}  // namespace wrsn::csa
