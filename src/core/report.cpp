#include "core/report.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/bitset.hpp"
#include "net/topology.hpp"

namespace wrsn::csa {

AttackReport build_report(const net::Network& network, const sim::Trace& trace,
                          std::span<const net::NodeId> keys,
                          std::span<const detect::SuiteResult> suite_results) {
  AttackReport report;
  report.keys_total = keys.size();
  const std::unordered_set<net::NodeId> key_set(keys.begin(), keys.end());

  const std::optional<detect::Detection> earliest =
      detect::DetectorSuite::earliest(
          {suite_results.begin(), suite_results.end()});
  if (earliest.has_value()) {
    report.detected = true;
    report.detection_time = earliest->time;
    for (const detect::SuiteResult& result : suite_results) {
      if (result.detection.has_value() &&
          result.detection->time == earliest->time) {
        report.detector_name = result.detector;
        break;
      }
    }
  }

  report.deaths_total = trace.deaths.size();
  report.escalations = trace.escalations.size();

  // Key deaths and the partition instant (replay deaths chronologically).
  Bitmap alive(network.size(), true);
  for (const sim::DeathRecord& death : trace.deaths) {
    alive.reset(death.node);
    if (key_set.count(death.node) > 0) {
      ++report.keys_dead;
      if (!report.detected || death.time <= report.detection_time) {
        ++report.keys_dead_before_detection;
      }
    }
    if (!report.partition_time.has_value() &&
        !net::is_connected(network, alive)) {
      report.partition_time = death.time;
    }
  }
  if (report.keys_total > 0) {
    report.exhaustion_ratio =
        double(report.keys_dead) / double(report.keys_total);
    report.undetected_exhaustion_ratio =
        double(report.keys_dead_before_detection) / double(report.keys_total);
  }

  for (const sim::SessionRecord& session : trace.sessions) {
    if (session.kind == sim::SessionKind::Spoofed) {
      ++report.sessions_spoofed;
      report.spoof_delivered += session.delivered;
    } else {
      ++report.sessions_genuine;
      if (key_set.count(session.node) == 0) {
        report.utility_delivered += session.delivered;
      }
    }
  }
  return report;
}

}  // namespace wrsn::csa
