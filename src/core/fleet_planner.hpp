// Fleet-level TIDE: M cooperating mobile chargers over one shared stop pool.
//
// CooperativeFleetPlanner extends the single-charger CSA scheme (see
// core/planners.hpp) to a fleet with a deterministic partition-then-auction
// decomposition:
//
//   (A) Spatial seed: every stop is assigned to the nearest ALIVE charger by
//       SQUARED depot distance, ties to the lower charger index — the same
//       rule as mc::nearest_depot, so the planner, the agent territories and
//       the fault-handoff redistribution all decompose the field identically.
//   (B) Key skeleton: key stops in EDF order (window_close, then stop index)
//       are each placed at the cheapest feasible position of their seed
//       charger's route; failures fall into an orphan pool.
//   (C) Orphan key auction: every alive charger (the seed re-bids too) bids
//       its best-insertion completion-time delta; the minimum delta wins,
//       ties to the lower charger index.  Keys with no feasible bid anywhere
//       are reported in `FleetPlan::unscheduled_keys`.
//   (D) Per-charger utility fill: each charger runs the CSA cost-benefit
//       greedy fill (lazy, CELF-style) restricted to the utility stops of
//       its own seed cell.
//   (E) Utility spill auction: cell-local leftovers are re-auctioned across
//       the whole fleet (descending utility, ties to the lower stop index;
//       awards as in C), so slack anywhere in the fleet can absorb demand
//       from an overloaded cell.
//
// Every phase is a deterministic fold with total-order tie-breaks, so plans
// are bit-identical across platforms and thread counts.  The retained naive
// sequential implementation (core/fleet_reference.hpp) runs the same phases
// on the tail-walking NaiveRouteState with full-rescore fills; the
// FleetPlanEquivalence suite pins the two bit-for-bit, mirroring the
// PlanEquivalence discipline for the single-charger planners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/planners.hpp"
#include "core/route_state.hpp"
#include "core/tide.hpp"

namespace wrsn::csa {

/// One vehicle of a fleet planning problem.  `start_position` doubles as the
/// depot / Voronoi seed for the spatial decomposition.
struct FleetCharger {
  geom::Vec2 start_position;
  Seconds start_time = 0.0;
  MetersPerSecond speed = 3.0;
  /// Permanently lost chargers stay in the list with `alive = false` so
  /// charger indices stay stable; they receive an empty plan and their
  /// would-be stops are seeded to the surviving fleet instead.
  bool alive = true;
};

/// A static fleet TIDE problem: M chargers over ONE shared stop pool.
struct FleetInstance {
  std::vector<FleetCharger> chargers;
  std::vector<Stop> stops;

  std::size_t key_count() const;
  /// Throws ConfigError on inconsistent data (no chargers, non-positive
  /// speeds, or stop data TideInstance::validate would reject).
  void validate() const;
};

/// An evaluated fleet route set.  `plans.size() == chargers.size()` always:
/// a dead charger (or one whose cell is empty and who wins no auction) holds
/// a default-constructed empty Plan, never a skipped entry, so plan indices
/// stay aligned with charger ids downstream.  Visits carry GLOBAL stop-pool
/// indices; per-charger `Plan::keys_total` is the global key count (each
/// member plan is over the full pool), so use the fleet-level aggregates
/// here for coverage questions.
struct FleetPlan {
  std::vector<Plan> plans;
  /// Keys no charger could feasibly schedule, in EDF order.
  std::vector<std::size_t> unscheduled_keys;
  double utility = 0.0;
  std::size_t keys_scheduled = 0;
  std::size_t keys_total = 0;
  /// Stops awarded to a charger other than their spatial seed (phases C/E).
  std::size_t auction_moves = 0;

  bool covers_all_keys() const { return keys_scheduled == keys_total; }
};

/// Strategy interface for fleet planners (deterministic: no rng).
class FleetPlanner {
 public:
  virtual ~FleetPlanner() = default;
  virtual std::string_view name() const = 0;
  virtual FleetPlan plan(const FleetInstance& instance) const = 0;
};

/// The production fleet planner (phases A-E above) on the slack-based
/// RouteState, sharing one node-pair distance memo across the M travel
/// matrices of a plan() call.
///
/// Same thread-affinity rule as csa::Planner (mutable arenas: one thread
/// at a time), plus one more: the distance memo is keyed by node id and
/// assumes one fixed deployment, so a planner instance must not be reused
/// across unrelated instances whose node ids map to different positions.
class CooperativeFleetPlanner final : public FleetPlanner {
 public:
  std::string_view name() const override { return "Fleet-CSA"; }
  FleetPlan plan(const FleetInstance& instance) const override;
  /// In-place variant for the replan loop.  All per-charger state (member
  /// instances, travel matrices, route states) and every phase's scratch
  /// list are arenas reused across calls, and the node-pair distance memo
  /// persists (node positions never move), so a steady-state replan over a
  /// previously seen stop set performs no heap allocation (sim_alloc_test
  /// pins this).
  void plan_into(const FleetInstance& instance, FleetPlan& out) const;

 private:
  // plan() is const (FleetPlanner interface); the arenas hold no cross-call
  // state a later call can observe — the distance memo only caches a pure
  // function of immutable node geometry.
  mutable std::vector<TideInstance> insts_;
  mutable std::vector<std::shared_ptr<TravelMatrix>> matrices_;
  mutable std::vector<RouteState> routes_;
  mutable std::unordered_map<std::uint64_t, Meters> pair_memo_;
  mutable std::vector<std::size_t> alive_;
  mutable std::vector<std::size_t> keys_;
  mutable std::vector<std::size_t> seed_;
  mutable std::vector<std::size_t> orphans_;
  mutable std::vector<std::size_t> spill_;
  mutable std::vector<std::size_t> cell_;
  mutable CelfFill fill_;
};

}  // namespace wrsn::csa
