#include "core/theory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace wrsn::csa::theory {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// P[X >= k] for X ~ Poisson(lambda), summed from the complement.
double poisson_tail(double lambda, std::size_t k) {
  if (k == 0) return 1.0;
  double term = std::exp(-lambda);
  double below = term;  // P[X = 0]
  for (std::size_t i = 1; i < k; ++i) {
    term *= lambda / double(i);
    below += term;
  }
  return std::max(0.0, 1.0 - below);
}

}  // namespace

Seconds kill_time(Joules level, Watts drain) {
  WRSN_REQUIRE(level >= 0.0, "negative level");
  if (drain <= 0.0) return kInf;
  return level / drain;
}

Seconds request_cycle(Joules capacity, double target_fraction,
                      double threshold_fraction, Watts drain) {
  WRSN_REQUIRE(capacity > 0.0, "capacity must be positive");
  WRSN_REQUIRE(target_fraction > threshold_fraction,
               "target must exceed threshold");
  if (drain <= 0.0) return kInf;
  return (target_fraction - threshold_fraction) * capacity / drain;
}

Seconds window_close(Seconds request_time, Seconds patience, Seconds margin) {
  WRSN_REQUIRE(patience > 0.0, "patience must be positive");
  WRSN_REQUIRE(margin >= 0.0, "negative margin");
  return std::max(request_time, request_time + patience - margin);
}

bool killable_within(Seconds predicted_request, Seconds patience,
                     Joules level_at_spoof, Watts drain, Seconds deadline) {
  if (!std::isfinite(predicted_request)) return false;
  const Seconds kt = kill_time(level_at_spoof, drain);
  if (!std::isfinite(kt)) return false;
  return predicted_request + patience + kt <= deadline;
}

std::size_t max_paced_kills(Seconds campaign, std::size_t pace_limit,
                            Seconds pace_window) {
  WRSN_REQUIRE(campaign >= 0.0, "negative campaign");
  if (pace_limit == 0) return std::numeric_limits<std::size_t>::max();
  WRSN_REQUIRE(pace_window > 0.0, "pace_window must be positive");
  // `pace_limit` kills may land instantaneously at t = 0; each further
  // batch of `pace_limit` requires the window to slide past the previous
  // batch entirely.
  const auto batches =
      static_cast<std::size_t>(std::floor(campaign / pace_window)) + 1;
  return batches * pace_limit;
}

double detection_risk_bound(double failure_rate, Seconds mission,
                            Seconds window, std::size_t threshold,
                            std::size_t pace_limit) {
  WRSN_REQUIRE(failure_rate >= 0.0, "negative failure rate");
  WRSN_REQUIRE(window > 0.0 && mission >= 0.0, "bad horizon");
  if (threshold <= pace_limit) return 1.0;  // the attacker alone trips it
  const std::size_t needed = threshold - pace_limit;
  const double lambda = failure_rate * window;
  // Union bound over overlapping windows: ~2 * mission / window shifted
  // half-window starts dominate all window positions.
  const double windows = std::max(1.0, 2.0 * mission / window);
  return std::min(1.0, windows * poisson_tail(lambda, needed));
}

double greedy_utility_floor() { return 0.5 * (1.0 - 1.0 / std::exp(1.0)); }

Seconds key_coverage_makespan_bound(const TideInstance& instance) {
  Seconds best_single = instance.start_time;
  Seconds total_service = 0.0;
  for (const Stop& stop : instance.stops) {
    if (!stop.is_key) continue;
    const Seconds direct_arrival =
        instance.start_time +
        instance.travel_time(instance.start_position, stop.position);
    const Seconds earliest_end =
        std::max(direct_arrival, stop.window_open) + stop.service_time;
    best_single = std::max(best_single, earliest_end);
    total_service += stop.service_time;
  }
  return std::max(best_single, instance.start_time + total_service);
}

bool edf_necessary_condition(const TideInstance& instance) {
  std::vector<const Stop*> keys;
  for (const Stop& stop : instance.stops) {
    if (stop.is_key) keys.push_back(&stop);
  }
  std::sort(keys.begin(), keys.end(), [](const Stop* a, const Stop* b) {
    return a->window_close < b->window_close;
  });
  // Ignoring travel (a relaxation), serving in EDF order each key's
  // service must START by its deadline given all earlier keys' service
  // time and release constraints.
  Seconds clock = instance.start_time;
  for (const Stop* key : keys) {
    clock = std::max(clock, key->window_open);
    if (clock > key->window_close) return false;
    clock += key->service_time;
  }
  return true;
}

}  // namespace wrsn::csa::theory
