#include "core/celf_fill.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.hpp"

namespace wrsn::csa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Candidate-pool size from which the batched position-major rescore pays
/// for itself.  Below it the travel matrix is small enough to stay
/// cache-resident and the plain lazy gathers win.  A work schedule only —
/// selection (and the hit/miss tallies) are identical on both paths.
constexpr std::size_t kBatchMin = 64;

/// Column padding of the transposed rows: one cache line of doubles, so
/// every row starts line-aligned relative to the block.
constexpr std::size_t kColAlign = 8;

}  // namespace

void CelfFill::run(const TideInstance& instance, RouteState& route,
                   std::uint64_t& insertions_tried, std::uint64_t& cache_hits,
                   std::uint64_t& cache_misses) {
  // Local inner-loop tallies: a write into the caller's accumulators per
  // scan step (let alone a registry write) would dominate the loop.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  if (candidates_.size() < kBatchMin) {
    run_lazy(route, hits, misses);
  } else {
    run_batch(instance, route, misses);
  }
  cache_hits += hits;
  cache_misses += misses;
  insertions_tried += misses;  // every miss scores one insertion
}

void CelfFill::run_lazy(RouteState& route, std::uint64_t& hits,
                        std::uint64_t& misses) {
  // Utility-descending traversal order (ties: ascending stop index) is what
  // makes the CELF cutoff valid; it does not affect selection, which has
  // its own total-order tie-break below.
  std::sort(candidates_.begin(), candidates_.end(),
            [](const CelfCandidate& a, const CelfCandidate& b) {
              return a.utility != b.utility ? a.utility > b.utility
                                            : a.stop < b.stop;
            });
  while (true) {
    double best_score = -kInf;
    CelfCandidate* best = nullptr;
    for (CelfCandidate& c : candidates_) {
      if (c.inserted) continue;
      const double bound = c.utility;
      if (best != nullptr && bound < best_score) break;  // CELF cutoff
      if (!c.scored || c.version != route.version()) {
        ++misses;
        const auto bi = route.best_insertion(c.stop);
        c.scored = true;
        c.version = route.version();
        c.feasible = bi.has_value();
        if (bi) {
          c.pos = bi->first;
          c.delta = bi->second;
          c.score = bound / std::max(c.delta, 1.0);
        }
      } else {
        ++hits;
      }
      if (!c.feasible) continue;
      if (best == nullptr || c.score > best_score ||
          (c.score == best_score && c.stop < best->stop)) {
        best = &c;
        best_score = c.score;
      }
    }
    if (best == nullptr) break;
    route.insert(best->stop, best->pos);
    best->inserted = true;
  }
}

void CelfFill::run_batch(const TideInstance& instance, RouteState& route,
                         std::uint64_t& misses) {
  init_batch(instance, route);
  // Same utility-descending total order as run_lazy, but over 16-byte keys:
  // the scan below walks the key array directly, so the candidate structs
  // are never permuted or rewritten — each round touches only the key
  // stream and the refresh output arrays.
  sort_keys_.resize(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    sort_keys_[i] = {candidates_[i].utility,
                     static_cast<std::uint32_t>(candidates_[i].stop),
                     static_cast<std::uint32_t>(i)};
  }
  std::sort(sort_keys_.begin(), sort_keys_.end(),
            [](const SortKey& a, const SortKey& b) {
              return a.utility != b.utility ? a.utility > b.utility
                                            : a.stop < b.stop;
            });

  // Every round starts with a committed insertion from the previous one (or
  // the initial unscored pool), so every consult in run_lazy's scan would
  // find a stale cache entry and rescore: a round here refreshes everything
  // up front with the vector pass and counts one miss per consult, which is
  // tally-identical (cache hits cannot occur across a version bump).
  const SortKey* const keys = sort_keys_.data();
  while (true) {
    refresh_batch(route);

    double best_score = -kInf;
    double best_delta = 0.0;
    std::uint32_t best_stop = 0;
    std::size_t best_ci = 0;
    bool found = false;
    for (std::size_t r = 0; r < sort_keys_.size(); ++r) {
      const std::size_t ci = keys[r].index;
      // close_ is forced to -inf on insertion and real windows are finite,
      // so this is exactly the scan's `inserted` skip.
      if (close_[ci] == -kInf) continue;
      const double bound = keys[r].utility;
      if (found && bound < best_score) break;  // CELF cutoff
      ++misses;
      if (best_d_[ci] == kInf) continue;  // no feasible position
      const double score = bound / std::max(best_d_[ci], 1.0);
      if (!found || score > best_score ||
          (score == best_score && keys[r].stop < best_stop)) {
        found = true;
        best_score = score;
        best_delta = best_d_[ci];
        best_stop = keys[r].stop;
        best_ci = ci;
      }
    }
    if (!found) break;
    // The refresh only proves feasibility and the minimum delta; recover the
    // winner's position with one exact scalar scan (O(route) once per round —
    // the refresh pass is O(route * candidates)).
    const auto bi = route.best_insertion(best_stop);
    WRSN_REQUIRE(bi.has_value() && bi->second == best_delta,
                 "batched rescore out of sync with best_insertion");
    const std::size_t best_pos = bi->first;
    route.insert(best_stop, best_pos);
    candidates_[best_ci].inserted = true;  // callers read this flag
    close_[best_ci] = -kInf;
    push_row(instance, best_stop, best_pos, route.order().size());
  }
}

void CelfFill::init_batch(const TideInstance& instance,
                          const RouteState& route) {
  const TravelMatrix& tt = instance.travel_matrix();
  const std::vector<std::size_t>& order = route.order();
  const std::size_t n = order.size();
  cols_ = candidates_.size();
  stride_ = (cols_ + kColAlign - 1) & ~(kColAlign - 1);
  // Row headroom beyond the current route so the common case never resizes;
  // rows are row-major, so growing is a plain resize with no relayout.
  row_cap_ = n + 64;
  legs_t_.resize(row_cap_ * stride_);
  leg0_.resize(stride_);
  open_.resize(stride_);
  close_.resize(stride_);
  service_.resize(stride_);
  stop_.resize(stride_);
  best_d_.resize(stride_);
  for (std::size_t ci = 0; ci < cols_; ++ci) {
    const CelfCandidate& c = candidates_[ci];
    leg0_[ci] = tt.from_start(c.stop);
    open_[ci] = c.open;
    close_[ci] = c.close_eps;
    service_[ci] = c.service;
    stop_[ci] = static_cast<std::uint32_t>(c.stop);
  }
  // Padding columns: window already closed (-inf) masks them out of every
  // refresh, and stop 0 gives their lane reads a real (ignored) cell.
  for (std::size_t ci = cols_; ci < stride_; ++ci) {
    leg0_[ci] = 0.0;
    open_[ci] = 0.0;
    close_[ci] = -kInf;
    service_[ci] = 0.0;
    stop_[ci] = 0;
  }
  // Row-major fill streams each route stop's matrix row once; the mirror
  // cells row(order[pos])[stop] and row(stop)[order[pos]] are written from
  // the same computed value, so rows are exact copies.
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Seconds* const row = tt.row(order[pos]);
    Seconds* const out = legs_t_.data() + pos * stride_;
    for (std::size_t ci = 0; ci < stride_; ++ci) out[ci] = row[stop_[ci]];
  }
}

void CelfFill::refresh_batch(const RouteState& route) {
  const std::size_t n = route.order().size();
  const std::size_t w = stride_;
  Seconds* const __restrict bd = best_d_.data();
  const Seconds* const __restrict open = open_.data();
  const Seconds* const __restrict close = close_.data();
  const Seconds* const __restrict service = service_.data();

  for (std::size_t ci = 0; ci < w; ++ci) bd[ci] = kInf;

  const Seconds* const depart = route.departures().data();
  const Seconds* const arrival_at = route.arrivals().data();
  const Seconds* const slack = route.slacks().data();
  const Seconds* const waitsum = route.waitsums().data();

  // Interior positions.  Per-element arithmetic is try_insert's, expression
  // for expression; ascending positions with a strict < keep the FIRST
  // minimum, exactly like the scalar scan (whose delta == 0 early break
  // only skips positions that could never displace the incumbent — deltas
  // are all >= 0).  Positions past the scalar scan's window cut fail the
  // start <= close check here, so they contribute nothing, as there.
  // Select/min chains only, stores unconditional — the exact shape GCC's
  // if-converter turns into mask/blend vector code.
  const Seconds* __restrict leg_in = leg0_.data();
  Seconds prev = route.start_time();
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Seconds* const __restrict leg_out = legs_t_.data() + pos * w;
    const Seconds arr_pos = arrival_at[pos];
    const Seconds slack_pos = slack[pos];
    const Seconds wait_pos = waitsum[pos];
    for (std::size_t ci = 0; ci < w; ++ci) {
      const Seconds arrival = prev + leg_in[ci];
      const Seconds start = std::max(arrival, open[ci]);
      const Seconds delay = start + service[ci] + leg_out[ci] - arr_pos;
      const Seconds residual = delay - wait_pos;
      const Seconds delta = residual > kWindowEpsilon ? residual : 0.0;
      const Seconds d =
          (start <= close[ci]) & (delay <= slack_pos) ? delta : kInf;
      bd[ci] = d < bd[ci] ? d : bd[ci];
    }
    prev = depart[pos];
    leg_in = leg_out;
  }

  // Appending (position n): no downstream stop, so the delta is the plain
  // completion-time extension and only the candidate's own window gates it.
  // The sweep leaves leg_in at the last row (or the start legs when the
  // route is empty) and prev at the last departure — the append inputs.
  const Seconds comp = route.completion();
  for (std::size_t ci = 0; ci < w; ++ci) {
    const Seconds arrival = prev + leg_in[ci];
    const Seconds start = std::max(arrival, open[ci]);
    const Seconds delta = start + service[ci] - comp;
    const Seconds d = start <= close[ci] ? delta : kInf;
    bd[ci] = d < bd[ci] ? d : bd[ci];
  }
}

void CelfFill::push_row(const TideInstance& instance, std::size_t stop,
                        std::size_t pos, std::size_t route_len) {
  if (route_len > row_cap_) {
    row_cap_ = route_len + 64;
    legs_t_.resize(row_cap_ * stride_);
  }
  // Rows at or past the insertion point shift one slot; row-major layout
  // makes that a single contiguous move.
  std::memmove(legs_t_.data() + (pos + 1) * stride_,
               legs_t_.data() + pos * stride_,
               (route_len - 1 - pos) * stride_ * sizeof(Seconds));
  const Seconds* const row = instance.travel_matrix().row(stop);
  Seconds* const out = legs_t_.data() + pos * stride_;
  for (std::size_t ci = 0; ci < stride_; ++ci) out[ci] = row[stop_[ci]];
}

}  // namespace wrsn::csa
