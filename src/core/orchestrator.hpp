// The CSA attack orchestrator: a compromised charging service.
//
// Outwardly it behaves exactly like the benign ChargerAgent — it answers
// charging requests, drives the same vehicle, radiates the same power, and
// keeps the same depot ledger.  Inwardly it runs receding-horizon TIDE
// planning: at every decision point it snapshots the pending requests plus
// the *predicted* upcoming requests of its key-node targets (the charging
// service can predict request times from drain rates and request history),
// plans a route with the injected Planner, and executes the first leg.  Key
// targets are "served" with the dual-antenna phase-cancellation payload:
// full radiated power, zero harvested energy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/planners.hpp"
#include "mc/charger.hpp"
#include "policy/policy.hpp"
#include "sim/world.hpp"
#include "wpt/spoofing.hpp"

namespace wrsn::csa {

/// How the attacker "serves" its key targets.
enum class SpoofMode {
  PhaseCancel,   ///< CSA: dual-antenna destructive interference (stealthy)
  PartialCancel, ///< CSA extension: leak a calibrated fraction of the
                 ///< expected energy, defeating single-session audits
  SilentSkip,    ///< naive: dock but radiate nothing (caught by RSSI checks)
  NoService,     ///< naive: ignore key requests entirely (caught by audits)
};

struct AttackParams {
  mc::ChargerParams charger;
  net::KeyNodeConfig key_selection;
  wpt::SpoofingParams spoofing;
  SpoofMode spoof_mode = SpoofMode::PhaseCancel;

  /// PartialCancel only: fraction of the node's EXPECTED session gain that
  /// is really delivered.  Must sit above the single-session audit
  /// threshold (~0.30) to evade it; the leak slows the kill accordingly.
  double partial_leak_ratio = 0.45;

  /// Safety margin shaved off every escalation deadline when building
  /// windows, so plan execution jitter cannot trip an escalation.
  Seconds window_margin = 120.0;

  /// Predicted key-node requests within this horizon enter the plan, letting
  /// the attacker pre-position for tight windows.
  Seconds lookahead = 14'400.0;

  /// End of the attack campaign [s].  Target selection is killability-aware:
  /// a candidate key node is only selected if its predicted request time
  /// plus the post-spoof exhaustion time fits inside the campaign.
  Seconds campaign_deadline = 4 * 86'400.0;

  /// Safety factor applied to the campaign deadline during selection.
  double campaign_slack = 0.95;

  /// Kill pacing (stealth vs the death-rate monitor): a spoof is deferred —
  /// the key node is served genuinely this round — whenever its predicted
  /// death would join >= `pace_limit` other kills inside a `pace_window`
  /// interval.  pace_limit = 0 disables pacing.
  /// One below the deployed death-rate threshold (5/24 h): margin for a
  /// surprise background failure landing inside the window.
  std::size_t pace_limit = 3;
  /// Slightly wider than the defender's 24 h monitoring window: margin for
  /// kill-time prediction error (drains rise as the network degrades,
  /// pulling deaths earlier than predicted at spoof time).
  Seconds pace_window = 100'000.0;

  /// Offset between a node's rectenna and its communication antenna [m];
  /// the spoof nulls the field at the rectenna, while the comm antenna
  /// (where RSSI is measured) still sees a strong carrier.
  Meters comm_antenna_offset = 0.08;

  /// Return to the depot to recharge below this battery fraction.
  double battery_reserve_fraction = 0.10;

  /// Nodes this vehicle services; empty = the whole network.  A compromised
  /// member of a charger fleet can only spoof targets inside its own cell.
  std::vector<net::NodeId> territory;

  void validate() const;
};

/// The attack agent; bind one to a world instead of a benign ChargerAgent.
class AttackAgent {
 public:
  /// `policy` selects the spoof-scheduling policy (DESIGN.md §15); the
  /// default Static kind reproduces the fixed pacing arithmetic bit-for-bit
  /// and consumes no randomness.  Bandit kinds draw from rng.fork("policy"),
  /// a stream no other consumer touches.
  AttackAgent(sim::World& world, const AttackParams& params,
              const Planner& planner, Rng rng,
              const policy::AttackPolicyParams& policy = {});

  AttackAgent(const AttackAgent&) = delete;
  AttackAgent& operator=(const AttackAgent&) = delete;

  /// Flushes the agent's accumulated tallies (replans, travel-memo hits,
  /// session counts) to the installed obs registry in one shot — the
  /// per-replan and per-session paths are too hot for a write each.
  ~AttackAgent();

  /// Selects key targets from the current routing state, subscribes to world
  /// events, and begins operating.  Call exactly once before running.
  void start();

  const std::vector<net::NodeId>& key_targets() const { return key_targets_; }
  const mc::MobileCharger& charger() const { return mc_; }
  std::uint64_t genuine_sessions() const { return genuine_sessions_; }
  std::uint64_t spoofed_sessions() const { return spoofed_sessions_; }
  std::uint64_t plans_computed() const { return plans_computed_; }

  // --- fault-injection hooks -------------------------------------------------
  /// MC component fault: halts on the spot, truncates any active session,
  /// drains `budget_loss` of the battery capacity, and stops planning until
  /// repaired.  `permanent` means no repair will follow.  Idempotent while
  /// already broken.
  void fault_breakdown(double budget_loss, bool permanent);
  /// Repair complete: resumes the campaign from the breakdown position.
  /// No-op when not broken or when the breakdown was permanent.
  void fault_repair();
  bool broken() const { return broken_; }
  /// Phase-calibration degradation: sets the spoofing emitter's phase
  /// jitter to `scale` times the configured baseline (1.0 restores it).
  /// Takes effect from the next spoofed session.
  void fault_phase_noise(double scale);

  /// Fleet handoff: permanently adds `nodes` to this vehicle's territory
  /// (e.g. the cell of a permanently lost fleet member) and replans if
  /// idle.  Adopted nodes are serviced GENUINELY — key-target selection
  /// happened at start() and is not widened, so the compromised member
  /// plays the dutiful survivor.  No-op on a whole-network agent.
  void adopt_territory(std::span<const net::NodeId> nodes);

 private:
  enum class State { Idle, Traveling, Charging, ToDepot, DepotCharging,
                     Broken };

  bool is_key(net::NodeId id) const {
    return key_set_.find(id) != key_set_.end();
  }
  bool in_territory(net::NodeId id) const {
    return territory_.empty() || territory_.count(id) > 0;
  }

  /// Deaths (scheduled kills + observed background deaths) in the worst
  /// pace_window interval a kill at `death_at` would join, that kill
  /// included — the pacing pressure the spoof policy decides against.
  std::size_t kill_window_count(Seconds death_at) const;
  /// Consults the spoof-scheduling policy: spoofed right now vs. served
  /// genuinely for cover, and the PartialCancel leak ratio to use.
  policy::SpoofDecision spoof_decision(net::NodeId id);

  void on_request(net::NodeId id);
  void on_death(net::NodeId id);

  /// Builds the TIDE snapshot (pending requests + predicted key windows)
  /// into `instance`, reusing its stop storage.
  void build_instance(TideInstance& instance) const;
  /// Installs the instance's travel matrix — the agent-owned matrix arena
  /// refilled in place — reusing node-pair distances memoized across this
  /// agent's replans.
  void prime_travel_matrix(TideInstance& instance) const;
  /// Replans and engages the next leg (idle vehicles only).
  void replan();
  void travel_to_node(net::NodeId id);
  void go_to_depot();
  void on_arrival(std::uint64_t version);
  void on_wake(std::uint64_t version);
  void start_session(net::NodeId id);
  void end_session(std::uint64_t version);

  sim::World& world_;
  AttackParams params_;
  const Planner& planner_;
  Rng rng_;
  mc::MobileCharger mc_;
  std::optional<wpt::SpoofingEmitter> emitter_;
  std::unique_ptr<policy::AttackPolicy> policy_;

  std::vector<net::NodeId> key_targets_;
  std::unordered_set<net::NodeId> key_set_;
  std::unordered_set<net::NodeId> territory_;
  /// Predicted death times of keys already spoofed plus observed deaths of
  /// other nodes (kill pacing state).
  std::vector<Seconds> kill_schedule_;
  /// Keys already spoof-killed (their deaths are pre-counted predictively).
  std::unordered_set<net::NodeId> spoof_killed_;
  /// Node-pair distances memoized across replans: consecutive TIDE
  /// snapshots overlap heavily in stops (node positions only move on
  /// mobility epochs), so the travel matrix of each instance is primed from
  /// here instead of recomputing sqrt per pair.  Keyed by packed
  /// (min id, max id); invalidated wholesale whenever the world's topology
  /// version moves (a mobility epoch changed positions).
  mutable std::unordered_map<std::uint64_t, Meters> stop_pair_distance_;
  mutable std::uint64_t memo_topology_version_ = 0;
  /// Replan arenas: the instance snapshot, its travel matrix, and the plan
  /// are rebuilt in place every replan, so steady-state replanning (stop
  /// set previously seen) performs no heap allocation (sim_alloc_test).
  TideInstance plan_instance_;
  mutable std::shared_ptr<TravelMatrix> travel_matrix_;
  Plan plan_;

  State state_ = State::Idle;
  bool started_ = false;
  bool broken_ = false;
  bool permanently_broken_ = false;
  net::NodeId target_ = net::kInvalidNode;
  std::uint64_t event_version_ = 0;

  // Active-session bookkeeping.
  bool session_spoofed_ = false;
  Watts session_radiated_power_ = 0.0;
  Seconds session_start_ = 0.0;
  Seconds session_genuine_duration_ = 0.0;
  Watts session_dc_ = 0.0;
  Watts session_rf_observed_ = 0.0;
  Watts session_probe_rf_ = 0.0;
  Meters session_probe_distance_ = 0.0;

  std::uint64_t genuine_sessions_ = 0;
  std::uint64_t spoofed_sessions_ = 0;
  std::uint64_t plans_computed_ = 0;

  // Observability tallies, flushed by the destructor.  The session pair
  // counts completed sessions (the *_sessions_ counters above tick at
  // session start, so an in-flight session at the horizon would skew them).
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
  std::uint64_t sessions_ended_ = 0;
  std::uint64_t spoofed_sessions_ended_ = 0;
};

}  // namespace wrsn::csa
