// Post-run attack assessment: turns a trace + key-target set + detector
// verdicts into the metrics the paper reports (key-node exhaustion ratio,
// undetected exhaustion, utility, partition time).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "detect/detector.hpp"
#include "net/network.hpp"
#include "sim/trace.hpp"

namespace wrsn::csa {

struct AttackReport {
  std::size_t keys_total = 0;
  std::size_t keys_dead = 0;
  /// Key nodes already exhausted when the earliest detector fired (all of
  /// keys_dead when nothing fired).
  std::size_t keys_dead_before_detection = 0;
  double exhaustion_ratio = 0.0;
  double undetected_exhaustion_ratio = 0.0;

  bool detected = false;
  Seconds detection_time = 0.0;
  std::string detector_name;

  /// Genuine energy delivered to non-key nodes [J] — the "charging utility"
  /// the attacker maintains for cover.
  Joules utility_delivered = 0.0;
  /// Ground-truth energy delivered during spoofed sessions [J] (~0).
  Joules spoof_delivered = 0.0;

  std::size_t deaths_total = 0;
  std::size_t escalations = 0;
  std::size_t sessions_genuine = 0;
  std::size_t sessions_spoofed = 0;

  /// First time the alive network became disconnected from the sink;
  /// nullopt if it never partitioned within the trace.
  std::optional<Seconds> partition_time;
};

/// Builds the report.  `suite_results` may be empty (no detectors deployed).
AttackReport build_report(const net::Network& network, const sim::Trace& trace,
                          std::span<const net::NodeId> keys,
                          std::span<const detect::SuiteResult> suite_results);

}  // namespace wrsn::csa
