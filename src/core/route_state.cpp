#include "core/route_state.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::csa {
namespace {

constexpr Seconds kInfSlack = std::numeric_limits<Seconds>::infinity();

}  // namespace

RouteState::RouteState(const TideInstance& instance)
    : inst_(&instance), tt_(&instance.travel_matrix()) {
  slack_.assign(1, kInfSlack);
  waitsum_.assign(1, 0.0);
}

std::optional<Seconds> RouteState::try_insert(std::size_t stop,
                                              std::size_t pos) const {
  WRSN_ASSERT(pos <= order_.size());
  const Stop& s = inst_->stops[stop];

  const Seconds prev_depart = pos == 0 ? inst_->start_time : depart_[pos - 1];
  const Seconds leg_in =
      pos == 0 ? tt_->from_start(stop) : tt_->between(order_[pos - 1], stop);
  const Seconds arrival = prev_depart + leg_in;
  const Seconds start = std::max(arrival, s.window_open);
  if (start > s.window_close + kWindowEpsilon) return std::nullopt;

  const Seconds depart = start + s.service_time;
  if (pos == order_.size()) return depart - completion();

  // Arrival delay imposed on the first downstream stop (>= 0 up to rounding
  // by the triangle inequality).  Feasible iff the tail can absorb it.
  const Seconds delay =
      depart + tt_->between(stop, order_[pos]) - arrival_[pos];
  if (delay > slack_[pos]) return std::nullopt;

  // Waiting along the tail soaks up the delay; whatever survives the suffix
  // of waits reaches the completion time.  Residuals within the feasibility
  // epsilon count as fully absorbed, mirroring the naive walk's early exit.
  const Seconds residual = delay - waitsum_[pos];
  return residual > kWindowEpsilon ? residual : 0.0;
}

std::optional<std::pair<std::size_t, Seconds>> RouteState::best_insertion(
    std::size_t stop) const {
  std::optional<std::pair<std::size_t, Seconds>> best;
  for (std::size_t pos = 0; pos <= order_.size(); ++pos) {
    const auto delta = try_insert(stop, pos);
    if (!delta.has_value()) continue;
    if (!best.has_value() || *delta < best->second) {
      best = {pos, *delta};
    }
  }
  return best;
}

void RouteState::insert(std::size_t stop, std::size_t pos) {
  WRSN_ASSERT(try_insert(stop, pos).has_value());
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos), stop);
  rebuild();
}

Plan RouteState::to_plan() const {
  const auto plan = evaluate_order(*inst_, order_);
  WRSN_ASSERT(plan.has_value());
  return *plan;
}

void RouteState::rebuild() {
  const std::size_t n = order_.size();
  arrival_.resize(n);
  start_.resize(n);
  depart_.resize(n);
  slack_.resize(n + 1);
  waitsum_.resize(n + 1);

  Seconds clock = inst_->start_time;
  for (std::size_t k = 0; k < n; ++k) {
    const Stop& s = inst_->stops[order_[k]];
    const Seconds leg = k == 0 ? tt_->from_start(order_[0])
                               : tt_->between(order_[k - 1], order_[k]);
    arrival_[k] = clock + leg;
    start_[k] = std::max(arrival_[k], s.window_open);
    WRSN_ASSERT(start_[k] <= s.window_close + kWindowEpsilon);
    depart_[k] = start_[k] + s.service_time;
    clock = depart_[k];
  }

  // Backward pass.  Two thresholds per suffix, matching the naive tail walk
  // stop by stop:
  //   slack_[k]: delay bound when stop k is the FIRST downstream stop (its
  //     window is checked before any absorbed-delay early exit can trigger);
  //   interior[k]: bound for stops deeper in the walk, where a delay that
  //     has shrunk to <= kWindowEpsilon exits early as "absorbed" before
  //     the stop's window is consulted — hence the max(..., epsilon).
  slack_[n] = kInfSlack;
  waitsum_[n] = 0.0;
  Seconds interior = kInfSlack;
  for (std::size_t k = n; k-- > 0;) {
    const Stop& s = inst_->stops[order_[k]];
    const Seconds wait = start_[k] - arrival_[k];
    const Seconds margin = s.window_close + kWindowEpsilon - start_[k];
    waitsum_[k] = wait + waitsum_[k + 1];
    slack_[k] = std::min(wait + margin, wait + interior);
    interior =
        std::min(std::max(wait + margin, kWindowEpsilon), wait + interior);
  }
  ++version_;
}

}  // namespace wrsn::csa
