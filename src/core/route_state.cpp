#include "core/route_state.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::csa {
namespace {

constexpr Seconds kInfSlack = std::numeric_limits<Seconds>::infinity();

}  // namespace

RouteState::RouteState(const TideInstance& instance) { bind(instance); }

void RouteState::bind(const TideInstance& instance) {
  inst_ = &instance;
  tt_ = &instance.travel_matrix();
  order_.clear();
  arrival_.clear();
  start_.clear();
  depart_.clear();
  slack_.assign(1, kInfSlack);
  waitsum_.assign(1, 0.0);
}

void RouteState::reserve(std::size_t stops) {
  order_.reserve(stops);
  arrival_.reserve(stops);
  start_.reserve(stops);
  depart_.reserve(stops);
  slack_.reserve(stops + 1);
  waitsum_.reserve(stops + 1);
}

std::optional<Seconds> RouteState::try_insert(std::size_t stop,
                                              std::size_t pos) const {
  WRSN_ASSERT(pos <= order_.size());
  const Stop& s = inst_->stops[stop];

  const Seconds prev_depart = pos == 0 ? inst_->start_time : depart_[pos - 1];
  const Seconds leg_in =
      pos == 0 ? tt_->from_start(stop) : tt_->between(order_[pos - 1], stop);
  const Seconds arrival = prev_depart + leg_in;
  const Seconds start = std::max(arrival, s.window_open);
  if (start > s.window_close + kWindowEpsilon) return std::nullopt;

  const Seconds depart = start + s.service_time;
  if (pos == order_.size()) return depart - completion();

  // Arrival delay imposed on the first downstream stop (>= 0 up to rounding
  // by the triangle inequality).  Feasible iff the tail can absorb it.
  const Seconds delay =
      depart + tt_->between(stop, order_[pos]) - arrival_[pos];
  if (delay > slack_[pos]) return std::nullopt;

  // Waiting along the tail soaks up the delay; whatever survives the suffix
  // of waits reaches the completion time.  Residuals within the feasibility
  // epsilon count as fully absorbed, mirroring the naive walk's early exit.
  const Seconds residual = delay - waitsum_[pos];
  return residual > kWindowEpsilon ? residual : 0.0;
}

std::optional<std::pair<std::size_t, Seconds>> RouteState::best_insertion(
    std::size_t stop) const {
  // Flattened position scan: one pass with try_insert's exact arithmetic,
  // but the per-position invariants hoisted out of the loop — the stop's
  // window/service fields, its travel-matrix row (between(i, stop) ==
  // row(stop)[i] by symmetry), and a running previous-departure instead of
  // re-branching on pos == 0.  Every candidate delta is >= 0 (appending
  // never shortens the route; interior deltas are clamped residuals), so a
  // delta of exactly 0.0 cannot be beaten and, with the first-strict-min
  // tie-break, cannot even be tied away from — scan over.
  const Stop& s = inst_->stops[stop];
  const std::size_t n = order_.size();
  const Seconds* const row = tt_->row(stop);
  const Seconds open = s.window_open;
  const Seconds close_eps = s.window_close + kWindowEpsilon;
  const Seconds service = s.service_time;

  // Positions whose predecessor already departs past the window close are
  // all rejected by the window check below (start >= prev_depart >
  // close_eps); departures are nondecreasing, so they form a suffix of the
  // position range — skip it outright instead of rejecting one by one.
  const std::size_t pos_end = std::min(
      n, static_cast<std::size_t>(
             std::upper_bound(depart_.begin(), depart_.end(), close_eps) -
             depart_.begin()));

  std::size_t best_pos = n + 1;
  Seconds best_delta = kInfSlack;
  Seconds prev_depart = inst_->start_time;
  for (std::size_t pos = 0; pos <= pos_end; ++pos) {
    const Seconds leg_in = pos == 0 ? tt_->from_start(stop)
                                    : row[order_[pos - 1]];
    const Seconds arrival = prev_depart + leg_in;
    const Seconds start = std::max(arrival, open);
    if (start <= close_eps) {
      if (pos == n) {
        const Seconds delta = start + service - completion();
        if (delta < best_delta) {
          best_delta = delta;
          best_pos = pos;
        }
        break;  // last position either way
      }
      const Seconds delay =
          start + service + row[order_[pos]] - arrival_[pos];
      if (delay <= slack_[pos]) {
        const Seconds residual = delay - waitsum_[pos];
        const Seconds delta = residual > kWindowEpsilon ? residual : 0.0;
        if (delta < best_delta) {
          best_delta = delta;
          best_pos = pos;
          if (delta == 0.0) break;
        }
      }
    }
    if (pos < n) prev_depart = depart_[pos];
  }
  if (best_pos > n) return std::nullopt;
  return std::make_pair(best_pos, best_delta);
}

void RouteState::insert(std::size_t stop, std::size_t pos) {
  WRSN_ASSERT(try_insert(stop, pos).has_value());
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos), stop);
  rebuild();
}

Plan RouteState::to_plan() const {
  const auto plan = evaluate_order(*inst_, order_);
  WRSN_ASSERT(plan.has_value());
  return *plan;
}

void RouteState::to_plan_into(Plan& out) const {
  const bool ok = evaluate_order_into(*inst_, order_, out);
  WRSN_ASSERT(ok);
  (void)ok;
}

void RouteState::rebuild() {
  const std::size_t n = order_.size();
  arrival_.resize(n);
  start_.resize(n);
  depart_.resize(n);
  slack_.resize(n + 1);
  waitsum_.resize(n + 1);

  Seconds clock = inst_->start_time;
  for (std::size_t k = 0; k < n; ++k) {
    const Stop& s = inst_->stops[order_[k]];
    const Seconds leg = k == 0 ? tt_->from_start(order_[0])
                               : tt_->between(order_[k - 1], order_[k]);
    arrival_[k] = clock + leg;
    start_[k] = std::max(arrival_[k], s.window_open);
    WRSN_ASSERT(start_[k] <= s.window_close + kWindowEpsilon);
    depart_[k] = start_[k] + s.service_time;
    clock = depart_[k];
  }

  // Backward pass.  Two thresholds per suffix, matching the naive tail walk
  // stop by stop:
  //   slack_[k]: delay bound when stop k is the FIRST downstream stop (its
  //     window is checked before any absorbed-delay early exit can trigger);
  //   interior[k]: bound for stops deeper in the walk, where a delay that
  //     has shrunk to <= kWindowEpsilon exits early as "absorbed" before
  //     the stop's window is consulted — hence the max(..., epsilon).
  slack_[n] = kInfSlack;
  waitsum_[n] = 0.0;
  Seconds interior = kInfSlack;
  for (std::size_t k = n; k-- > 0;) {
    const Stop& s = inst_->stops[order_[k]];
    const Seconds wait = start_[k] - arrival_[k];
    const Seconds margin = s.window_close + kWindowEpsilon - start_[k];
    waitsum_[k] = wait + waitsum_[k + 1];
    slack_[k] = std::min(wait + margin, wait + interior);
    interior =
        std::min(std::max(wait + margin, kWindowEpsilon), wait + interior);
  }
  ++version_;
}

}  // namespace wrsn::csa
