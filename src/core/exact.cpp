#include "core/exact.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::csa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Plan ExactPlanner::plan(const TideInstance& instance, Rng& rng) const {
  (void)rng;
  instance.validate();
  const std::size_t n = instance.stops.size();
  WRSN_REQUIRE(n <= max_stops_, "instance too large for the exact DP solver");
  if (n == 0) {
    Plan plan;
    plan.completion_time = instance.start_time;
    return plan;
  }

  const std::size_t subsets = std::size_t{1} << n;
  // completion[S * n + l]: earliest completion visiting S, ending at stop l.
  std::vector<double> completion(subsets * n, kInf);
  std::vector<std::uint8_t> parent(subsets * n, 0xFF);  // previous last stop

  std::uint32_t key_mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (instance.stops[i].is_key) key_mask |= (1u << i);
  }

  // Base cases: start -> i.
  for (std::size_t i = 0; i < n; ++i) {
    const Stop& s = instance.stops[i];
    const Seconds arrival =
        instance.start_time +
        instance.travel_time(instance.start_position, s.position);
    const Seconds start = std::max(arrival, s.window_open);
    if (start > s.window_close + kWindowEpsilon) continue;
    completion[(std::size_t{1} << i) * n + i] = start + s.service_time;
  }

  // Transitions in increasing subset order.
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    for (std::size_t last = 0; last < n; ++last) {
      if (!(mask & (std::size_t{1} << last))) continue;
      const double done = completion[mask * n + last];
      if (done == kInf) continue;
      for (std::size_t next = 0; next < n; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        const Stop& s = instance.stops[next];
        const Seconds arrival =
            done + instance.travel_time(instance.stops[last].position,
                                        s.position);
        const Seconds start = std::max(arrival, s.window_open);
        if (start > s.window_close + kWindowEpsilon) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << next);
        const double value = start + s.service_time;
        if (value < completion[next_mask * n + next]) {
          completion[next_mask * n + next] = value;
          parent[next_mask * n + next] = static_cast<std::uint8_t>(last);
        }
      }
    }
  }

  // Utility per subset is order-free; pick the best feasible subset,
  // preferring full key coverage, then utility, then earlier completion.
  double best_utility = -1.0;
  std::size_t best_keys = 0;
  double best_completion = kInf;
  std::size_t best_mask = 0;
  std::size_t best_last = 0;
  bool found = false;

  for (std::size_t mask = 0; mask < subsets; ++mask) {
    double min_done = kInf;
    std::size_t min_last = 0;
    for (std::size_t last = 0; last < n; ++last) {
      if (!(mask & (std::size_t{1} << last))) continue;
      if (completion[mask * n + last] < min_done) {
        min_done = completion[mask * n + last];
        min_last = last;
      }
    }
    if (mask != 0 && min_done == kInf) continue;  // infeasible subset

    double utility = 0.0;
    std::size_t keys = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (std::size_t{1} << i))) continue;
      if (instance.stops[i].is_key) {
        ++keys;
      } else {
        utility += instance.stops[i].utility;
      }
    }
    const bool better = [&] {
      if (!found) return true;
      if (keys != best_keys) return keys > best_keys;
      if (utility != best_utility) return utility > best_utility;
      return min_done < best_completion;
    }();
    if (better) {
      found = true;
      best_utility = utility;
      best_keys = keys;
      best_completion = mask == 0 ? instance.start_time : min_done;
      best_mask = mask;
      best_last = min_last;
    }
    (void)key_mask;
  }
  WRSN_ASSERT(found);

  // Reconstruct the visiting order.
  std::vector<std::size_t> order;
  std::size_t mask = best_mask;
  std::size_t last = best_last;
  while (mask != 0) {
    order.push_back(last);
    const std::uint8_t prev = parent[mask * n + last];
    mask &= ~(std::size_t{1} << last);
    if (mask == 0) break;
    WRSN_ASSERT(prev != 0xFF);
    last = prev;
  }
  std::reverse(order.begin(), order.end());

  const auto plan = evaluate_order(instance, order);
  WRSN_ASSERT(plan.has_value());
  return *plan;
}

}  // namespace wrsn::csa
