#include "core/tide.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wrsn::csa {

std::size_t TideInstance::key_count() const {
  return static_cast<std::size_t>(
      std::count_if(stops.begin(), stops.end(),
                    [](const Stop& s) { return s.is_key; }));
}

Seconds TideInstance::travel_time(geom::Vec2 from, geom::Vec2 to) const {
  return geom::distance(from, to) / speed;
}

TravelMatrix TravelMatrix::build(const TideInstance& instance,
                                 const PairDistance& pair_distance) {
  TravelMatrix m;
  m.rebuild(instance, pair_distance);
  return m;
}

void TravelMatrix::rebuild(const TideInstance& instance,
                           const PairDistance& pair_distance) {
  n_ = instance.stops.size();
  start_row_.resize(n_);
  cell_.assign(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    start_row_[i] =
        geom::distance(instance.start_position, instance.stops[i].position) /
        instance.speed;
  }
  // Tile size: a 64x64 double block (32 KiB) plus its transpose fit in L1/L2
  // together, so the mirrored cell_[j * n_ + i] writes land in a resident
  // block instead of touching a fresh cache line per write once n_ is large.
  constexpr std::size_t kTile = 64;
  for (std::size_t i0 = 0; i0 < n_; i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, n_);
    for (std::size_t j0 = i0; j0 < n_; j0 += kTile) {
      const std::size_t j1 = std::min(j0 + kTile, n_);
      for (std::size_t i = i0; i < i1; ++i) {
        const Stop& a = instance.stops[i];
        for (std::size_t j = std::max(j0, i + 1); j < j1; ++j) {
          const Stop& b = instance.stops[j];
          const Meters d = pair_distance
                               ? pair_distance(a, b)
                               : geom::distance(a.position, b.position);
          const Seconds t = d / instance.speed;
          cell_[i * n_ + j] = t;
          cell_[j * n_ + i] = t;
        }
      }
    }
  }
}

const TravelMatrix& TideInstance::travel_matrix() const {
  if (!matrix_) {
    matrix_ = std::make_shared<const TravelMatrix>(TravelMatrix::build(*this));
  }
  return *matrix_;
}

void TideInstance::set_travel_matrix(TravelMatrix matrix) {
  WRSN_REQUIRE(matrix.size() == stops.size(),
               "travel matrix does not cover the instance stops");
  matrix_ = std::make_shared<const TravelMatrix>(std::move(matrix));
}

void TideInstance::set_travel_matrix(std::shared_ptr<const TravelMatrix> matrix) {
  WRSN_REQUIRE(matrix != nullptr, "travel matrix must not be null");
  WRSN_REQUIRE(matrix->size() == stops.size(),
               "travel matrix does not cover the instance stops");
  matrix_ = std::move(matrix);
}

void TideInstance::validate() const {
  if (speed <= 0.0) throw ConfigError("TIDE speed must be > 0");
  for (const Stop& stop : stops) {
    if (stop.window_close < stop.window_open) {
      throw ConfigError("TIDE stop window closes before it opens");
    }
    if (stop.service_time < 0.0) {
      throw ConfigError("TIDE stop has negative service time");
    }
    if (stop.utility < 0.0) {
      throw ConfigError("TIDE stop has negative utility");
    }
  }
}

std::optional<Plan> evaluate_order(const TideInstance& instance,
                                   std::span<const std::size_t> order) {
  Plan plan;
  if (!evaluate_order_into(instance, order, plan)) return std::nullopt;
  return plan;
}

bool evaluate_order_into(const TideInstance& instance,
                         std::span<const std::size_t> order, Plan& out) {
  out.visits.clear();
  out.utility = 0.0;
  out.keys_scheduled = 0;
  out.keys_total = instance.key_count();
  out.completion_time = instance.start_time;

  geom::Vec2 pos = instance.start_position;
  Seconds clock = instance.start_time;
  for (const std::size_t idx : order) {
    WRSN_REQUIRE(idx < instance.stops.size(), "stop index out of range");
    const Stop& stop = instance.stops[idx];
    const Seconds arrival = clock + instance.travel_time(pos, stop.position);
    const Seconds start = std::max(arrival, stop.window_open);
    if (start > stop.window_close + kWindowEpsilon) {
      out.visits.clear();
      return false;
    }

    Visit visit;
    visit.stop_index = idx;
    visit.arrival = arrival;
    visit.service_start = start;
    visit.departure = start + stop.service_time;
    out.visits.push_back(visit);

    if (stop.is_key) {
      ++out.keys_scheduled;
    } else {
      out.utility += stop.utility;
    }
    clock = visit.departure;
    pos = stop.position;
  }
  out.completion_time = clock;
  return true;
}

Plan evaluate_order_dropping(const TideInstance& instance,
                             std::span<const std::size_t> order) {
  Plan plan;
  plan.keys_total = instance.key_count();

  geom::Vec2 pos = instance.start_position;
  Seconds clock = instance.start_time;
  for (const std::size_t idx : order) {
    WRSN_REQUIRE(idx < instance.stops.size(), "stop index out of range");
    const Stop& stop = instance.stops[idx];
    const Seconds arrival = clock + instance.travel_time(pos, stop.position);
    const Seconds start = std::max(arrival, stop.window_open);
    if (start > stop.window_close + kWindowEpsilon) {
      continue;  // window missed: skip the stop
    }

    Visit visit;
    visit.stop_index = idx;
    visit.arrival = arrival;
    visit.service_start = start;
    visit.departure = start + stop.service_time;
    plan.visits.push_back(visit);

    if (stop.is_key) {
      ++plan.keys_scheduled;
    } else {
      plan.utility += stop.utility;
    }
    clock = visit.departure;
    pos = stop.position;
  }
  plan.completion_time = clock;
  return plan;
}

}  // namespace wrsn::csa
