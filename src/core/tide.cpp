#include "core/tide.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wrsn::csa {

std::size_t TideInstance::key_count() const {
  return static_cast<std::size_t>(
      std::count_if(stops.begin(), stops.end(),
                    [](const Stop& s) { return s.is_key; }));
}

Seconds TideInstance::travel_time(geom::Vec2 from, geom::Vec2 to) const {
  return geom::distance(from, to) / speed;
}

TravelMatrix TravelMatrix::build(const TideInstance& instance,
                                 const PairDistance& pair_distance) {
  TravelMatrix m;
  m.n_ = instance.stops.size();
  m.start_row_.resize(m.n_);
  m.cell_.assign(m.n_ * m.n_, 0.0);
  for (std::size_t i = 0; i < m.n_; ++i) {
    const Stop& a = instance.stops[i];
    m.start_row_[i] =
        geom::distance(instance.start_position, a.position) / instance.speed;
    for (std::size_t j = i + 1; j < m.n_; ++j) {
      const Stop& b = instance.stops[j];
      const Meters d = pair_distance ? pair_distance(a, b)
                                     : geom::distance(a.position, b.position);
      const Seconds t = d / instance.speed;
      m.cell_[i * m.n_ + j] = t;
      m.cell_[j * m.n_ + i] = t;
    }
  }
  return m;
}

const TravelMatrix& TideInstance::travel_matrix() const {
  if (!matrix_) {
    matrix_ = std::make_shared<const TravelMatrix>(TravelMatrix::build(*this));
  }
  return *matrix_;
}

void TideInstance::set_travel_matrix(TravelMatrix matrix) {
  WRSN_REQUIRE(matrix.size() == stops.size(),
               "travel matrix does not cover the instance stops");
  matrix_ = std::make_shared<const TravelMatrix>(std::move(matrix));
}

void TideInstance::validate() const {
  if (speed <= 0.0) throw ConfigError("TIDE speed must be > 0");
  for (const Stop& stop : stops) {
    if (stop.window_close < stop.window_open) {
      throw ConfigError("TIDE stop window closes before it opens");
    }
    if (stop.service_time < 0.0) {
      throw ConfigError("TIDE stop has negative service time");
    }
    if (stop.utility < 0.0) {
      throw ConfigError("TIDE stop has negative utility");
    }
  }
}

std::optional<Plan> evaluate_order(const TideInstance& instance,
                                   std::span<const std::size_t> order) {
  Plan plan;
  plan.keys_total = instance.key_count();
  plan.completion_time = instance.start_time;

  geom::Vec2 pos = instance.start_position;
  Seconds clock = instance.start_time;
  for (const std::size_t idx : order) {
    WRSN_REQUIRE(idx < instance.stops.size(), "stop index out of range");
    const Stop& stop = instance.stops[idx];
    const Seconds arrival = clock + instance.travel_time(pos, stop.position);
    const Seconds start = std::max(arrival, stop.window_open);
    if (start > stop.window_close + kWindowEpsilon) return std::nullopt;

    Visit visit;
    visit.stop_index = idx;
    visit.arrival = arrival;
    visit.service_start = start;
    visit.departure = start + stop.service_time;
    plan.visits.push_back(visit);

    if (stop.is_key) {
      ++plan.keys_scheduled;
    } else {
      plan.utility += stop.utility;
    }
    clock = visit.departure;
    pos = stop.position;
  }
  plan.completion_time = clock;
  return plan;
}

Plan evaluate_order_dropping(const TideInstance& instance,
                             std::span<const std::size_t> order) {
  Plan plan;
  plan.keys_total = instance.key_count();

  geom::Vec2 pos = instance.start_position;
  Seconds clock = instance.start_time;
  for (const std::size_t idx : order) {
    WRSN_REQUIRE(idx < instance.stops.size(), "stop index out of range");
    const Stop& stop = instance.stops[idx];
    const Seconds arrival = clock + instance.travel_time(pos, stop.position);
    const Seconds start = std::max(arrival, stop.window_open);
    if (start > stop.window_close + kWindowEpsilon) {
      continue;  // window missed: skip the stop
    }

    Visit visit;
    visit.stop_index = idx;
    visit.arrival = arrival;
    visit.service_start = start;
    visit.departure = start + stop.service_time;
    plan.visits.push_back(visit);

    if (stop.is_key) {
      ++plan.keys_scheduled;
    } else {
      plan.utility += stop.utility;
    }
    clock = visit.departure;
    pos = stop.position;
  }
  plan.completion_time = clock;
  return plan;
}

}  // namespace wrsn::csa
