// Incrementally maintained TIDE route with O(1) insertion feasibility.
//
// The classic insertion check walks the downstream tail of the route to see
// whether the delay introduced by a new stop breaks any later time window —
// O(route) per candidate position, O(route^2) per best_insertion.  This
// RouteState instead maintains two suffix arrays over the current schedule
// (the push-forward slack technique of the deadline-driven charging
// literature):
//
//   slack_[pos]   — the largest arrival delay the tail starting at position
//                   `pos` can absorb before some downstream service would
//                   start after its window closes.  Encodes the evaluator's
//                   exact semantics, including the kWindowEpsilon tolerance
//                   and the "delay fully absorbed by waiting" early exit.
//   waitsum_[pos] — total waiting time (service_start - arrival) from
//                   position `pos` to the end of the route.  An arrival
//                   delay d at `pos` propagates to the route completion as
//                   max(0, d - waitsum_[pos]) because each wait absorbs
//                   delay before it reaches the next leg.
//
// With these, try_insert answers both feasibility and the completion-time
// delta in O(1), so best_insertion is O(route) and the CSA planner's greedy
// fill drops from O(U^2 R^2) to roughly O(U R) per plan.  Both arrays are
// recomputed by rebuild() in O(route) after every committed insertion; the
// invariant is checked against the naive tail walk by core_test and the
// plan-equivalence property test (tests/property_test.cpp) which pins this
// implementation to the retained reference in core/reference_planner.hpp.
//
// All travel times come from the instance's cached TravelMatrix, so the
// inner loops perform no sqrt at all.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/tide.hpp"

namespace wrsn::csa {

class RouteState {
 public:
  /// Unbound state; call bind() before use.  Lets planners keep a RouteState
  /// arena across plan() calls (storage is reused, not reallocated).
  RouteState() = default;
  /// Binds to `instance` (not owned) and forces its travel matrix.
  explicit RouteState(const TideInstance& instance);

  /// Rebinds to `instance` and resets to the empty route, KEEPING the
  /// existing array capacity — the zero-alloc replan path.  The version
  /// counter keeps counting (it only ever needs to differ between commits).
  void bind(const TideInstance& instance);
  /// Grows every internal array's capacity to hold a route of `stops` stops
  /// so later inserts cannot reallocate.
  void reserve(std::size_t stops);

  const std::vector<std::size_t>& order() const { return order_; }
  Seconds completion() const {
    return depart_.empty() ? inst_->start_time : depart_.back();
  }
  /// Bumped on every committed insertion; lets callers cache per-stop
  /// best-insertion results and detect staleness (the lazy greedy fill).
  std::uint64_t version() const { return version_; }

  /// Completion-time increase if `stop` were inserted at `pos`;
  /// nullopt when any window (the stop's or a downstream one) would break.
  /// O(1): the downstream check is `delay <= slack_[pos]`.
  std::optional<Seconds> try_insert(std::size_t stop, std::size_t pos) const;

  /// Best insertion position for `stop` by minimum completion-time increase
  /// (ties: smallest position).  O(route).
  std::optional<std::pair<std::size_t, Seconds>> best_insertion(
      std::size_t stop) const;

  /// Read-only views of the maintained schedule arrays, for the batched
  /// position-major candidate rescore in core/celf_fill.cpp: arrivals /
  /// starts / departures are per current position (size order().size()),
  /// slacks / waitsums are the suffix arrays described above (one longer).
  /// The batch pass evaluates try_insert's exact arithmetic against these,
  /// so its results are bit-identical to best_insertion.
  const std::vector<Seconds>& arrivals() const { return arrival_; }
  const std::vector<Seconds>& departures() const { return depart_; }
  const std::vector<Seconds>& slacks() const { return slack_; }
  const std::vector<Seconds>& waitsums() const { return waitsum_; }
  Seconds start_time() const { return inst_->start_time; }

  void insert(std::size_t stop, std::size_t pos);

  Plan to_plan() const;
  /// Allocation-free variant: evaluates the route into `out` in place.
  void to_plan_into(Plan& out) const;

 private:
  void rebuild();

  const TideInstance* inst_ = nullptr;
  const TravelMatrix* tt_ = nullptr;
  std::vector<std::size_t> order_;
  std::vector<Seconds> arrival_;
  std::vector<Seconds> start_;
  std::vector<Seconds> depart_;
  /// Max absorbable arrival delay per position; size order_.size() + 1,
  /// slack_[order_.size()] = +inf (empty tail absorbs anything).
  std::vector<Seconds> slack_;
  /// Suffix sums of waiting time; size order_.size() + 1, last entry 0.
  std::vector<Seconds> waitsum_;
  std::uint64_t version_ = 0;
};

}  // namespace wrsn::csa
