// Retained naive reference implementation of the fleet planner.
//
// Runs the same partition-then-auction phases as CooperativeFleetPlanner
// (core/fleet_planner.hpp) but on the tail-walking NaiveRouteState with the
// original full-rescore greedy fills and per-charger travel matrices built
// fresh — no slack arrays, no CELF laziness, no shared distance memo.  It
// exists ONLY as the executable specification for the FleetPlanEquivalence
// suite (tests/fleet_plan_equivalence_test.cpp), which pins the fast
// planner's plans bit-for-bit to this one.  Do not use it in benches or
// production paths.
#pragma once

#include "core/fleet_planner.hpp"

namespace wrsn::csa::reference {

class NaiveFleetPlanner final : public FleetPlanner {
 public:
  std::string_view name() const override { return "Fleet-naive-reference"; }
  FleetPlan plan(const FleetInstance& instance) const override;
};

}  // namespace wrsn::csa::reference
