#include "core/reference_planner.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::csa::reference {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Phase 1: EDF-ordered key insertion, each at its cheapest feasible
/// position.  Keys that cannot be placed are skipped (counted as missed).
void insert_keys_edf(const TideInstance& instance, NaiveRouteState& route) {
  std::vector<std::size_t> keys;
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    if (instance.stops[i].is_key) keys.push_back(i);
  }
  std::sort(keys.begin(), keys.end(), [&](std::size_t a, std::size_t b) {
    return instance.stops[a].window_close < instance.stops[b].window_close;
  });
  for (const std::size_t key : keys) {
    if (const auto best = route.best_insertion(key)) {
      route.insert(key, best->first);
    }
  }
}

/// Phase 2: cost-benefit greedy filling, rescoring every remaining stop
/// each round (the original O(U^2 R^2) loop, erase included).
void fill_utility_greedy(const TideInstance& instance,
                         NaiveRouteState& route) {
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    if (!instance.stops[i].is_key && instance.stops[i].utility > 0.0) {
      remaining.push_back(i);
    }
  }

  while (!remaining.empty()) {
    double best_score = -kInf;
    std::size_t best_stop = 0;
    std::size_t best_pos = 0;
    std::size_t best_remaining_idx = 0;
    bool found = false;

    for (std::size_t r = 0; r < remaining.size(); ++r) {
      const std::size_t stop = remaining[r];
      const auto best = route.best_insertion(stop);
      if (!best.has_value()) continue;
      // Cost-benefit density; insertions absorbed by waiting slack cost
      // (almost) nothing, so clamp the denominator to keep scores finite.
      const double score =
          instance.stops[stop].utility / std::max(best->second, 1.0);
      if (score > best_score) {
        best_score = score;
        best_stop = stop;
        best_pos = best->first;
        best_remaining_idx = r;
        found = true;
      }
    }
    if (!found) break;
    route.insert(best_stop, best_pos);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best_remaining_idx));
  }
}

}  // namespace

std::optional<Seconds> NaiveRouteState::try_insert(std::size_t stop,
                                                   std::size_t pos) const {
  WRSN_ASSERT(pos <= order_.size());
  const Stop& s = inst_->stops[stop];

  const geom::Vec2 prev_pos =
      pos == 0 ? inst_->start_position : inst_->stops[order_[pos - 1]].position;
  const Seconds prev_depart = pos == 0 ? inst_->start_time : depart_[pos - 1];

  const Seconds arrival = prev_depart + inst_->travel_time(prev_pos, s.position);
  const Seconds start = std::max(arrival, s.window_open);
  if (start > s.window_close + kWindowEpsilon) return std::nullopt;

  Seconds depart = start + s.service_time;
  geom::Vec2 cursor = s.position;
  for (std::size_t k = pos; k < order_.size(); ++k) {
    const Stop& next = inst_->stops[order_[k]];
    const Seconds a = depart + inst_->travel_time(cursor, next.position);
    const Seconds st = std::max(a, next.window_open);
    if (st > next.window_close + kWindowEpsilon) return std::nullopt;
    const Seconds d = st + next.service_time;
    if (d <= depart_[k] + kWindowEpsilon) {
      // Delay fully absorbed by waiting slack; the tail is unchanged.
      return 0.0;
    }
    depart = d;
    cursor = next.position;
  }
  return depart - completion();
}

std::optional<std::pair<std::size_t, Seconds>> NaiveRouteState::best_insertion(
    std::size_t stop) const {
  std::optional<std::pair<std::size_t, Seconds>> best;
  for (std::size_t pos = 0; pos <= order_.size(); ++pos) {
    const auto delta = try_insert(stop, pos);
    if (!delta.has_value()) continue;
    if (!best.has_value() || *delta < best->second) {
      best = {pos, *delta};
    }
  }
  return best;
}

void NaiveRouteState::insert(std::size_t stop, std::size_t pos) {
  WRSN_ASSERT(try_insert(stop, pos).has_value());
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos), stop);
  rebuild();
}

Plan NaiveRouteState::to_plan() const {
  const auto plan = evaluate_order(*inst_, order_);
  WRSN_ASSERT(plan.has_value());
  return *plan;
}

void NaiveRouteState::rebuild() {
  arrival_.resize(order_.size());
  start_.resize(order_.size());
  depart_.resize(order_.size());
  geom::Vec2 pos = inst_->start_position;
  Seconds clock = inst_->start_time;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const Stop& s = inst_->stops[order_[k]];
    arrival_[k] = clock + inst_->travel_time(pos, s.position);
    start_[k] = std::max(arrival_[k], s.window_open);
    WRSN_ASSERT(start_[k] <= s.window_close + kWindowEpsilon);
    depart_[k] = start_[k] + s.service_time;
    clock = depart_[k];
    pos = s.position;
  }
}

Plan NaiveCsaPlanner::plan(const TideInstance& instance, Rng& rng) const {
  (void)rng;
  instance.validate();
  NaiveRouteState route(instance);
  insert_keys_edf(instance, route);
  fill_utility_greedy(instance, route);
  return route.to_plan();
}

Plan NaiveUtilityFirstPlanner::plan(const TideInstance& instance,
                                    Rng& rng) const {
  (void)rng;
  instance.validate();
  NaiveRouteState route(instance);
  fill_utility_greedy(instance, route);
  insert_keys_edf(instance, route);
  return route.to_plan();
}

}  // namespace wrsn::csa::reference
