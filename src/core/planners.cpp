#include "core/planners.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/check.hpp"
#include "core/route_state.hpp"
#include "obs/metrics.hpp"

namespace wrsn::csa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Phase 1: EDF-ordered key insertion, each at its cheapest feasible
/// position.  Keys that cannot be placed are skipped (counted as missed).
/// O(K * route) with the slack-based RouteState.  `keys` is caller-owned
/// scratch (cleared here) so steady-state replans allocate nothing.
void insert_keys_edf(const TideInstance& instance, RouteState& route,
                     std::vector<std::size_t>& keys,
                     std::uint64_t& insertions_tried) {
  keys.clear();
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    if (instance.stops[i].is_key) keys.push_back(i);
  }
  std::sort(keys.begin(), keys.end(), [&](std::size_t a, std::size_t b) {
    return instance.stops[a].window_close < instance.stops[b].window_close;
  });
  insertions_tried += keys.size();
  for (const std::size_t key : keys) {
    if (const auto best = route.best_insertion(key)) {
      route.insert(key, best->first);
    }
  }
}

/// Phase 2: cost-benefit greedy filling with the non-key stops, lazily
/// (CELF-style).  Selection is identical to the classic full-rescore loop
/// (core/reference_planner.cpp): argmax of utility / max(delta, 1), ties to
/// the smallest stop index — the reference scans `remaining` in ascending
/// stop order with a strict >, which is exactly that tie-break, so neither
/// the utility-sorted traversal here nor O(1) candidate removal (an
/// `inserted` flag instead of the old O(n) mid-vector erase) can change the
/// outcome.  The speedup comes from two places:
///   1. utility is an upper bound on any stop's score (denominator >= 1),
///      so a round may stop rescoring as soon as the remaining candidates'
///      utilities fall below the incumbent best — with wide windows the
///      winner's insertion is absorbed by waiting slack (delta = 0, score =
///      utility) and a round rescoren only a handful of entries;
///   2. each candidate caches its last best (pos, delta) stamped with the
///      route version and is re-evaluated only when consulted stale.
/// The round loop itself (and the leg-lane cache that keeps big pools'
/// rescoring on L2-resident data) lives in the shared CelfFill engine.
void fill_utility_greedy(const TideInstance& instance, RouteState& route,
                         CelfFill& fill, std::uint64_t& insertions_tried,
                         std::uint64_t& cache_hits_out,
                         std::uint64_t& cache_misses_out) {
  const TravelMatrix& tt = instance.travel_matrix();
  std::vector<CelfCandidate>& candidates = fill.candidates();
  candidates.clear();
  candidates.reserve(instance.stops.size());
  for (std::size_t i = 0; i < instance.stops.size(); ++i) {
    const Stop& s = instance.stops[i];
    if (s.is_key || s.utility <= 0.0) continue;
    // A stop the charger cannot reach in time even driving straight from
    // the start can never be inserted (any route prefix only arrives
    // later); the guard keeps borderline floating-point cases in play so
    // the reference planner's per-round rejections are reproduced exactly.
    if (instance.start_time + tt.from_start(i) >
        s.window_close + kWindowEpsilon + 1e-6) {
      continue;
    }
    CelfCandidate c;
    c.stop = i;
    c.utility = s.utility;
    c.open = s.window_open;
    c.close_eps = s.window_close + kWindowEpsilon;
    c.service = s.service_time;
    candidates.push_back(c);
  }
  fill.run(instance, route, insertions_tried, cache_hits_out,
           cache_misses_out);
}

}  // namespace

CsaPlanner::~CsaPlanner() {
  WRSN_OBS_ADD(kCsaInsertionsTried, double(insertions_tried_));
  WRSN_OBS_ADD(kCsaCacheHits, double(cache_hits_));
  WRSN_OBS_ADD(kCsaCacheMisses, double(cache_misses_));
}

Plan CsaPlanner::plan(const TideInstance& instance, Rng& rng) const {
  Plan out;
  plan_into(instance, rng, out);
  return out;
}

void CsaPlanner::plan_into(const TideInstance& instance, Rng& rng,
                           Plan& out) const {
  (void)rng;
  WRSN_OBS_SPAN(kCsaPlanNs);
  instance.validate();
  route_.bind(instance);
  route_.reserve(instance.stops.size());
  insert_keys_edf(instance, route_, keys_, insertions_tried_);
  fill_utility_greedy(instance, route_, fill_, insertions_tried_,
                      cache_hits_, cache_misses_);
  route_.to_plan_into(out);
}

Plan UtilityFirstPlanner::plan(const TideInstance& instance, Rng& rng) const {
  (void)rng;
  instance.validate();
  RouteState route(instance);
  // The ablation planner is cold (bench-only); flush per call.
  std::vector<std::size_t> keys;
  CelfFill fill;
  std::uint64_t insertions = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  fill_utility_greedy(instance, route, fill, insertions, hits, misses);
  insert_keys_edf(instance, route, keys, insertions);
  WRSN_OBS_ADD(kCsaInsertionsTried, double(insertions));
  WRSN_OBS_ADD(kCsaCacheHits, double(hits));
  WRSN_OBS_ADD(kCsaCacheMisses, double(misses));
  return route.to_plan();
}

Plan GreedyNearestPlanner::plan(const TideInstance& instance, Rng& rng) const {
  (void)rng;
  instance.validate();

  std::vector<bool> used(instance.stops.size(), false);
  std::vector<std::size_t> order;
  geom::Vec2 pos = instance.start_position;
  Seconds clock = instance.start_time;

  for (std::size_t step = 0; step < instance.stops.size(); ++step) {
    std::size_t best = instance.stops.size();
    double best_dist = kInf;
    for (std::size_t i = 0; i < instance.stops.size(); ++i) {
      if (used[i]) continue;
      const Stop& s = instance.stops[i];
      // One sqrt per stop: travel time is distance / speed by definition.
      const double d = geom::distance(pos, s.position);
      const Seconds arrival = clock + d / instance.speed;
      if (std::max(arrival, s.window_open) >
          s.window_close + kWindowEpsilon) {
        continue;  // window already lost from here (same tolerance as the
                   // evaluators, so a chosen stop is never dropped later)
      }
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    if (best == instance.stops.size()) break;
    used[best] = true;
    order.push_back(best);
    const Stop& s = instance.stops[best];
    const Seconds arrival = clock + best_dist / instance.speed;
    clock = std::max(arrival, s.window_open) + s.service_time;
    pos = s.position;
  }
  return evaluate_order_dropping(instance, order);
}

Plan RandomPlanner::plan(const TideInstance& instance, Rng& rng) const {
  instance.validate();
  std::vector<std::size_t> order(instance.stops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  return evaluate_order_dropping(instance, order);
}

}  // namespace wrsn::csa
