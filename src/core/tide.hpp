// TIDE: the charging-uTility optImization problem with key-noDe timE window
// constraints — the formal core of the Charging Spoofing Attack.
//
// Given the mobile charger's position, a set of KEY stops (nodes to be
// spoof-charged; each must have its service START inside a hard time window,
// i.e. after the node's charging request and before the base station's
// escalation deadline) and a set of UTILITY stops (genuine charging jobs,
// each with its own window and a utility equal to the energy it restores),
// find a route and schedule that services every key stop inside its window
// while maximizing the total utility of the genuine stops served.  Waiting
// at a stop until its window opens is allowed.  TIDE contains TSP with time
// windows as the special case of zero utility stops, hence it is NP-hard.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "geom/vec2.hpp"
#include "net/network.hpp"

namespace wrsn::csa {

struct TideInstance;

/// One candidate visit in a TIDE instance.
struct Stop {
  net::NodeId node = net::kInvalidNode;
  geom::Vec2 position;
  /// Earliest allowed service start [s] (the node's request time).
  Seconds window_open = 0.0;
  /// Latest allowed service start [s] (escalation deadline minus margin).
  Seconds window_close = 0.0;
  /// Service duration [s].
  Seconds service_time = 0.0;
  /// Utility of serving this stop (0 for key stops by convention).
  double utility = 0.0;
  /// Key stops are hard constraints (spoof targets); others are optional.
  bool is_key = false;
};

/// Dense symmetric travel-time matrix over an instance's stops plus a row
/// for the charger's start position.  Built once per instance (lazily on the
/// planner's first use) so the planners' inner loops never recompute the
/// sqrt behind geom::distance.  Values are bit-identical to
/// TideInstance::travel_time on the same endpoints: each pair's distance is
/// computed once and mirrored (hypot is sign-symmetric), then divided by the
/// instance speed with the same expression.
class TravelMatrix {
 public:
  /// Supplies the straight-line distance for a stop pair; the orchestrator
  /// injects a memoized version so node-pair distances survive across the
  /// receding-horizon replans of overlapping stop sets.
  using PairDistance = std::function<Meters(const Stop&, const Stop&)>;

  TravelMatrix() = default;
  /// Builds from instance geometry; `pair_distance` (optional) overrides how
  /// stop-pair distances are obtained.  The start row is always computed
  /// fresh (the charger moves between replans).
  static TravelMatrix build(const TideInstance& instance,
                            const PairDistance& pair_distance = nullptr);

  /// In-place variant of build(): refills this matrix for `instance`,
  /// reusing the existing storage (allocation-free once capacity covers the
  /// stop count).  The fill is cache-blocked: the upper triangle is walked
  /// in square tiles so the mirrored column writes stay inside one resident
  /// block instead of striding the full row length per write.  Cell values
  /// are bit-identical to build()'s for any fill order (each is a pure
  /// per-pair function).
  void rebuild(const TideInstance& instance,
               const PairDistance& pair_distance = nullptr);

  std::size_t size() const { return n_; }
  /// Travel time from the instance start position to stop `i`.
  Seconds from_start(std::size_t i) const { return start_row_[i]; }
  /// Travel time between stops `i` and `j` (symmetric).
  Seconds between(std::size_t i, std::size_t j) const {
    return cell_[i * n_ + j];
  }
  /// Row `i` as a flat lane: row(i)[j] == between(i, j).  The planners hoist
  /// a candidate stop's row out of their position scans so the inner loop
  /// indexes one contiguous array.
  const Seconds* row(std::size_t i) const { return cell_.data() + i * n_; }
  /// The whole start-leg lane (from_start(i) == start_row()[i]); lets the
  /// batched insertion rescore index it like a matrix row.
  const Seconds* start_row() const { return start_row_.data(); }

 private:
  std::size_t n_ = 0;
  std::vector<Seconds> start_row_;
  std::vector<Seconds> cell_;  ///< n_ x n_, row-major, symmetric
};

/// A static TIDE planning problem.
struct TideInstance {
  geom::Vec2 start_position;
  Seconds start_time = 0.0;
  MetersPerSecond speed = 3.0;
  std::vector<Stop> stops;

  std::size_t key_count() const;
  /// Travel time between two stop positions at the instance speed.
  Seconds travel_time(geom::Vec2 from, geom::Vec2 to) const;
  /// The cached travel-time matrix, built on first call (planners call this
  /// once per plan).  Lazy init is NOT thread-safe; every runner thread owns
  /// its instances, which is the repo-wide convention.
  const TravelMatrix& travel_matrix() const;
  /// Installs a pre-built matrix (the orchestrator primes it from its
  /// cross-replan node-pair distance cache).  Must cover `stops`.
  void set_travel_matrix(TravelMatrix matrix);
  /// Shares an externally owned matrix without copying it — the zero-alloc
  /// replan path: the caller rebuild()s its arena matrix in place and
  /// re-installs the same shared_ptr (a refcount bump, no allocation).
  void set_travel_matrix(std::shared_ptr<const TravelMatrix> matrix);
  /// Throws ConfigError on inconsistent data (closed-before-open windows,
  /// non-positive speed, negative service times).
  void validate() const;

 private:
  mutable std::shared_ptr<const TravelMatrix> matrix_;
};

/// Feasibility tolerance on window-close comparisons [s]; shared by the
/// evaluators and the planners' incremental insertion checks so a schedule
/// accepted by one is never rejected by the other over rounding.
inline constexpr Seconds kWindowEpsilon = 1e-9;

/// One scheduled visit of an evaluated plan.
struct Visit {
  std::size_t stop_index = 0;
  Seconds arrival = 0.0;        ///< when the MC reaches the stop
  Seconds service_start = 0.0;  ///< max(arrival, window_open)
  Seconds departure = 0.0;      ///< service_start + service_time
};

/// An evaluated route through a TIDE instance.
struct Plan {
  std::vector<Visit> visits;
  double utility = 0.0;          ///< total utility of non-key stops served
  std::size_t keys_scheduled = 0;
  std::size_t keys_total = 0;
  Seconds completion_time = 0.0;

  bool covers_all_keys() const { return keys_scheduled == keys_total; }
};

/// Walks `order` (stop indices) through the instance: arrivals, in-window
/// waits, departures.  Returns nullopt if any stop's service would start
/// after its window closes.  `keys_total` is filled from the instance (not
/// from the order), so a feasible order that omits keys yields a Plan with
/// covers_all_keys() == false.
std::optional<Plan> evaluate_order(const TideInstance& instance,
                                   std::span<const std::size_t> order);

/// Allocation-free variant: fills `out` in place (reusing its visit storage)
/// and returns false instead of nullopt on an infeasible order.  `out` is
/// cleared in both cases.
bool evaluate_order_into(const TideInstance& instance,
                         std::span<const std::size_t> order, Plan& out);

/// Like evaluate_order but drops infeasible stops instead of failing:
/// greedily keeps each stop whose window can still be met.  Used by the
/// baseline planners that ignore deadlines when choosing their order.
Plan evaluate_order_dropping(const TideInstance& instance,
                             std::span<const std::size_t> order);

}  // namespace wrsn::csa
