// Retained naive reference implementation of the CSA planner.
//
// This is the pre-optimization planner kept verbatim: insertion feasibility
// walks the downstream tail (O(route) per position), best_insertion scans
// every position with that walk (O(route^2)), and the greedy fill rescores
// every remaining stop each round with an O(n) mid-vector erase —
// O(U^2 R^2) overall.  It exists ONLY as the executable specification for
// the equivalence property test (tests/property_test.cpp): the slack-based
// RouteState + lazy-greedy CsaPlanner must produce bit-identical plans
// (visit order, utility, completion time) on randomized and degenerate
// instances.  Do not use it in benches or production paths.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/planners.hpp"
#include "core/tide.hpp"

namespace wrsn::csa::reference {

/// The original tail-walking route state (see file comment).
class NaiveRouteState {
 public:
  explicit NaiveRouteState(const TideInstance& instance) : inst_(&instance) {}

  const std::vector<std::size_t>& order() const { return order_; }
  Seconds completion() const {
    return depart_.empty() ? inst_->start_time : depart_.back();
  }

  std::optional<Seconds> try_insert(std::size_t stop, std::size_t pos) const;
  std::optional<std::pair<std::size_t, Seconds>> best_insertion(
      std::size_t stop) const;
  void insert(std::size_t stop, std::size_t pos);
  Plan to_plan() const;

 private:
  void rebuild();

  const TideInstance* inst_;
  std::vector<std::size_t> order_;
  std::vector<Seconds> arrival_;
  std::vector<Seconds> start_;
  std::vector<Seconds> depart_;
};

/// Pre-optimization CSA (EDF key skeleton, then full-rescore greedy fill).
class NaiveCsaPlanner final : public Planner {
 public:
  std::string_view name() const override { return "CSA-naive-reference"; }
  Plan plan(const TideInstance& instance, Rng& rng) const override;
};

/// Pre-optimization Utility-first ablation (fill first, then keys).
class NaiveUtilityFirstPlanner final : public Planner {
 public:
  std::string_view name() const override {
    return "Utility-first-naive-reference";
  }
  Plan plan(const TideInstance& instance, Rng& rng) const override;
};

}  // namespace wrsn::csa::reference
