// TIDE planners: the CSA approximation algorithm and the baseline attackers
// it is evaluated against.
//
// CsaPlanner implements the paper's two-phase scheme:
//   Phase 1 (key skeleton): key stops are taken in earliest-deadline order
//     and each is placed at the feasible route position that minimizes the
//     route completion time — the EDF ordering is what makes tight window
//     sets schedulable.
//   Phase 2 (slack filling): genuine charging stops are inserted one at a
//     time by cost-benefit greedy (utility per unit of added route time),
//     never violating a key window.  Utility of a stop set is additive
//     (hence monotone submodular), so cost-benefit greedy inherits the
//     classic 1/2*(1-1/e) guarantee relative to the optimal utility of the
//     residual routing problem; the fig8 bench measures the empirical ratio
//     against an exact solver.
//
// Performance: insertion feasibility is O(1) via the push-forward slack
// suffix array in core/route_state.hpp (so best_insertion is O(route)), all
// travel times come from the instance's cached TravelMatrix (no sqrt in the
// inner loops), and the greedy fill is lazy, CELF-style: each remaining
// stop caches its best (position, delta) stamped with the route version and
// a round stops rescoring once the remaining utilities (an upper bound on
// the cost-benefit score) drop below the incumbent.  Plans are bit-identical
// to the retained naive implementation (core/reference_planner.hpp), which
// the plan-equivalence property test enforces on every run.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/celf_fill.hpp"
#include "core/route_state.hpp"
#include "core/tide.hpp"

namespace wrsn::csa {

/// Strategy interface every attacker's route planner implements.
///
/// Thread affinity: plan() is const but implementations may carry mutable
/// arenas (CsaPlanner reuses its route state and candidate table across
/// calls), so one planner instance must only ever be used by one thread at
/// a time.  Code that fans work out across runner threads constructs a
/// planner per trial instead of sharing one instance — run_scenario already
/// does this for its default planner.
class Planner {
 public:
  virtual ~Planner() = default;
  virtual std::string_view name() const = 0;
  /// Plans a route for `instance`; `rng` feeds randomized strategies.
  virtual Plan plan(const TideInstance& instance, Rng& rng) const = 0;
  /// In-place variant for the receding-horizon replan loop: fills `out`
  /// reusing its storage.  The default forwards to plan(); allocation-aware
  /// planners override it to reuse their arenas.
  virtual void plan_into(const TideInstance& instance, Rng& rng,
                         Plan& out) const {
    out = plan(instance, rng);
  }
};

/// The paper's algorithm (EDF key skeleton + cost-benefit greedy filling).
class CsaPlanner final : public Planner {
 public:
  /// Flushes the accumulated planning tallies (insertions tried, candidate
  /// cache hits/misses) to the installed obs registry in one shot — plan()
  /// runs every replan, too often for registry writes per call.
  ~CsaPlanner() override;
  std::string_view name() const override { return "CSA"; }
  Plan plan(const TideInstance& instance, Rng& rng) const override;
  /// Zero-allocation after warmup: the route state, key list, and candidate
  /// table are arenas reused across calls, so a steady-state replan performs
  /// no heap allocation at all (sim_alloc_test pins this).
  void plan_into(const TideInstance& instance, Rng& rng,
                 Plan& out) const override;

 private:
  // plan() is const (Planner interface); the arenas hold no cross-call
  // state the next call can observe, and the tallies are observability only.
  mutable RouteState route_;
  mutable std::vector<std::size_t> keys_;
  mutable CelfFill fill_;
  mutable std::uint64_t insertions_tried_ = 0;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
};

/// Nearest-stop-next attacker: always heads to the closest not-yet-expired
/// stop, ignoring deadlines when choosing.  Misses tight key windows.
class GreedyNearestPlanner final : public Planner {
 public:
  std::string_view name() const override { return "Greedy-nearest"; }
  Plan plan(const TideInstance& instance, Rng& rng) const override;
};

/// Random-order attacker: visits stops in a random order, dropping any whose
/// window has already closed on arrival.
class RandomPlanner final : public Planner {
 public:
  std::string_view name() const override { return "Random"; }
  Plan plan(const TideInstance& instance, Rng& rng) const override;
};

/// Utility-first ablation: runs the greedy utility fill FIRST and only then
/// tries to place key stops in the leftover slack.  Demonstrates why the
/// key-skeleton-first ordering of CSA is necessary.
class UtilityFirstPlanner final : public Planner {
 public:
  std::string_view name() const override { return "Utility-first"; }
  Plan plan(const TideInstance& instance, Rng& rng) const override;
};

}  // namespace wrsn::csa
