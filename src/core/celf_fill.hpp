// Shared lazy (CELF-style) cost-benefit greedy fill engine.
//
// Both the single-charger CsaPlanner and the fleet planner's per-cell fill
// run the same greedy loop: pick the feasible candidate maximizing
// utility / max(delta, 1) (ties to the smallest stop index), insert it,
// repeat.  This engine owns that loop plus the arenas that make it fast and
// allocation-free after warmup:
//
//   - the candidate pool (built by the caller, sorted and scanned here with
//     the version-stamped lazy rescoring and the CELF utility-bound cutoff
//     of core/planners.cpp — selection is bit-identical to the classic
//     full-rescore reference loop);
//   - a BATCHED POSITION-MAJOR rescore for pools large enough that the
//     per-candidate travel-matrix gathers stop being cache-resident.  The
//     route is frozen while a round rescores candidates, so the refresh
//     loops over route positions on the outside and candidates on the
//     inside: per position it broadcasts the route-side scalars (previous
//     departure, downstream arrival, slack, waitsum) and streams contiguous
//     per-candidate lanes — transposed leg rows legs_t[pos][ci] ==
//     row(stop_ci)[order[pos]], hoisted window/service fields, and one
//     running best-delta accumulator.  Every inner statement is a
//     straight-line blend/min, so the compiler vectorizes it.  Each
//     committed insertion shifts the row block one slot (one contiguous
//     memmove) and writes one new row streamed from the inserted stop's
//     matrix row (symmetry: row(stop)[new] == row(new)[stop]).
//
// The batch pass evaluates try_insert's exact arithmetic expression (lanes
// hold exact copies of matrix cells), so the per-candidate minimum delta is
// bit-identical to a scalar best_insertion scan.  The selection scan walks
// 16-byte sort keys in the same utility-descending order and reads the
// refresh outputs directly — same conditionals, same tie-breaks, and the
// same tally counts (every batch-round consult is a cache miss, because a
// round always follows a route-version bump).  The winning candidate's
// insertion POSITION is then recovered with one scalar best_insertion call
// per round, cross-checked against the batched delta — so plans and the
// hit/miss observability counters are bit-identical to the plain
// best_insertion path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/route_state.hpp"
#include "core/tide.hpp"

namespace wrsn::csa {

/// Per-stop scratch entry of the lazy greedy fill.  Public only so planners
/// can keep a candidate arena alive across plan() calls; not a result type.
struct CelfCandidate {
  std::size_t stop = 0;
  double utility = 0.0;       ///< cached stops[stop].utility (the CELF bound)
  Seconds open = 0.0;         ///< cached stops[stop].window_open
  Seconds close_eps = 0.0;    ///< cached window_close + kWindowEpsilon
  Seconds service = 0.0;      ///< cached stops[stop].service_time
  std::uint64_t version = 0;  ///< route version of the cached evaluation
  bool scored = false;        ///< ever evaluated at all
  bool feasible = false;
  bool inserted = false;
  std::size_t pos = 0;
  Seconds delta = 0.0;
  double score = 0.0;
};

/// The fill engine.  Reuse one instance across plan() calls: every buffer
/// (candidates, lanes, accumulators) is an arena, so a steady-state replan
/// over a previously seen problem size performs no heap allocation.
class CelfFill {
 public:
  /// The candidate pool.  Callers clear and refill it (stop, utility and the
  /// hoisted window/service fields) before each run(); run() sorts it.
  std::vector<CelfCandidate>& candidates() { return candidates_; }

  /// Runs greedy rounds on `route` until no feasible candidate remains,
  /// marking inserted candidates.  The tally accumulators mirror the
  /// planner's observability counters: one miss per (re)scored insertion,
  /// one hit per consult answered from a fresh cache entry; `tried` counts
  /// misses too (every miss scores one insertion).
  void run(const TideInstance& instance, RouteState& route,
           std::uint64_t& insertions_tried, std::uint64_t& cache_hits,
           std::uint64_t& cache_misses);

 private:
  /// The plain lazy scan over sorted candidate structs (small pools).
  void run_lazy(RouteState& route, std::uint64_t& hits, std::uint64_t& misses);
  /// The batched path: position-major refresh + key-order selection scan.
  void run_batch(const TideInstance& instance, RouteState& route,
                 std::uint64_t& misses);
  void init_batch(const TideInstance& instance, const RouteState& route);
  /// Recomputes best_d_ for every candidate against the current route — the
  /// position-major vector pass.
  void refresh_batch(const RouteState& route);
  /// Shifts the transposed rows for an insertion of `stop` at route position
  /// `pos` (`route_len` = new route length) and fills the new row.
  void push_row(const TideInstance& instance, std::size_t stop,
                std::size_t pos, std::size_t route_len);

  std::vector<CelfCandidate> candidates_;
  /// Transposed leg rows: legs_t_[pos * stride_ + ci] is candidate ci's leg
  /// to the stop at route position pos.  cols_ = candidates_.size() at
  /// init, stride_ pads it to an 8-column boundary (masked dummy columns);
  /// row_cap_ rows are allocated (row-major, so growing rows is a plain
  /// resize with no relayout).
  std::vector<Seconds> legs_t_;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::size_t row_cap_ = 0;
  /// Hoisted per-candidate fields, contiguous for the inner loop.  close_ is
  /// set to -inf once a candidate is inserted, which masks it out of every
  /// later refresh without a branch.
  std::vector<Seconds> leg0_, open_, close_, service_;
  std::vector<std::uint32_t> stop_;
  /// Refresh output: per candidate, the minimum completion-time delta over
  /// all positions, +inf when none is feasible.  The winning position is
  /// recovered per round with one scalar best_insertion, keeping the
  /// streamed accumulator a single array.
  std::vector<Seconds> best_d_;
  /// Batch scan order: 16-byte keys sorted utility-descending (ties to the
  /// smaller stop) drive the selection scan directly, so the candidate
  /// structs are never permuted in batch mode.
  struct SortKey {
    double utility;
    std::uint32_t stop;
    std::uint32_t index;
  };
  std::vector<SortKey> sort_keys_;
};

}  // namespace wrsn::csa
