// Closed-form analyses of the Charging Spoofing Attack — the quantities the
// attacker plans with and the bounds the evaluation verifies empirically.
//
// Everything here is pure arithmetic over the model parameters; the theory
// tests check that the simulator agrees with each formula, and fig5/fig6
// check the bounds against measured outcomes.
#pragma once

#include <cstddef>
#include <span>

#include "common/units.hpp"
#include "core/tide.hpp"

namespace wrsn::csa::theory {

/// Time for a node at `level` joules draining at `drain` watts to exhaust,
/// assuming no further (real) charge arrives.  +inf when drain <= 0.
Seconds kill_time(Joules level, Watts drain);

/// The believed-level cycle: time between a service filling the node's
/// belief to `target_fraction` and its next request at `threshold_fraction`.
Seconds request_cycle(Joules capacity, double target_fraction,
                      double threshold_fraction, Watts drain);

/// Latest time the attacker may begin the spoofed session for a request
/// issued at `request_time` under base-station patience `patience` and the
/// planner's safety `margin`.
Seconds window_close(Seconds request_time, Seconds patience, Seconds margin);

/// Whether a node is exhaustible inside a campaign: predicted request plus
/// patience plus kill time must fit before `deadline`.
bool killable_within(Seconds predicted_request, Seconds patience,
                     Joules level_at_spoof, Watts drain, Seconds deadline);

/// Maximum number of kills a campaign of length `campaign` can schedule
/// while never exceeding `pace_limit` deaths per `pace_window` trailing
/// window (the stealth throughput of the attack).
std::size_t max_paced_kills(Seconds campaign, std::size_t pace_limit,
                            Seconds pace_window);

/// Upper bound on the probability that background hardware failures alone
/// push a window over the death-rate threshold somewhere in the mission:
/// a union bound over ~mission/window disjoint windows of the Poisson tail
/// P[X >= threshold - pace_limit] with X ~ Poisson(rate * window).
/// `failure_rate` is fleet-wide failures per second.
double detection_risk_bound(double failure_rate, Seconds mission,
                            Seconds window, std::size_t threshold,
                            std::size_t pace_limit);

/// The documented approximation floor of the cost-benefit greedy fill:
/// 1/2 * (1 - 1/e).  The fig8 bench measures the (much better) empirical
/// ratio; this is the analytical guarantee the planner's phase 2 inherits
/// from monotone-submodular maximization under a routing budget.
double greedy_utility_floor();

/// Lower bound on the completion time of any plan covering all key stops
/// of `instance`: max over keys of (earliest physically possible service
/// end), combined with the total service time of all keys.  Used by tests
/// as a sanity floor for every planner.
Seconds key_coverage_makespan_bound(const TideInstance& instance);

/// EDF feasibility necessary condition: processing keys in deadline order,
/// the cumulative minimum service time by each deadline must fit.  If this
/// returns false, NO plan covers all keys (travel only makes it worse).
bool edf_necessary_condition(const TideInstance& instance);

}  // namespace wrsn::csa::theory
