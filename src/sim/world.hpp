// Live WRSN world state on top of the event kernel.
//
// Energy is accounted lazily: each node stores its battery level at the last
// synchronization point plus constant drain/charge rates; levels at `now` are
// linear extrapolations, and deaths/threshold crossings are scheduled as
// analytic events (no ticking).  A node death invalidates the routing tree;
// how the world reacts is governed by WorldParams::update_mode:
//
//   * Fast (default): the routing tree is PATCHED via an affected-subtree
//     Dijkstra repair (falling back to a full in-place rebuild when the
//     blast radius is large), loads and drains are refilled into persistent
//     buffers (zero allocations after warmup), and only nodes whose drain
//     rate actually changed are resynced and rescheduled.  Nodes outside
//     the dead node's routing subtree and ancestor chain see bitwise
//     identical drains, so their pending events remain exact and untouched —
//     per-death cost is O(affected), not O(N log N).
//   * Reference: the seed behaviour, kept as the executable spec — full
//     Dijkstra rebuild into fresh vectors and resync+reschedule of every
//     alive node.  The world-equivalence test suite pins Fast to Reference
//     (identical traces and end metrics) across randomized scenarios.
//
// Stale events are CANCELLED at the kernel (O(1) generation bump), not
// invalidated by version counters, so superseded events never linger in the
// event heap.  Invariant: every NodeCold event-id field either is
// kInvalidEvent or names the single live kernel event of that type.
//
// Charging-service protocol (the contract both the benign charger and the
// attacker operate under), and the believed-level mechanism the attack
// exploits:
//   * Nodes cannot meter harvested energy precisely (commodity SoC gauges
//     are noisy), so each node tracks a BELIEVED level: its true level plus
//     a surplus equal to the energy the charging service was expected to
//     deliver but did not.  Requests are armed on the believed level.
//   * A node issues a charging request when its believed level falls below
//     `request_threshold`; if the request stays unserved for `patience`
//     seconds the base station escalates (a service-failure record).
//   * When service starts the request is considered answered; when it ends
//     the node adds the EXPECTED gain to its believed level.  A spoof-charged
//     node therefore believes it is nearly full, schedules its next request
//     far in the future, and dies silently first — "exhausted in vain".
//   * Optional defense (`emergency_enabled`): a hardware low-voltage
//     comparator on the TRUE level fires an emergency request at
//     `emergency_fraction` regardless of beliefs.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "common/bitset.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/coverage.hpp"
#include "net/keynodes.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/mobility.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "wpt/charging_model.hpp"

namespace wrsn::sim {

/// How the world reacts to topology changes (deaths); see the header note.
enum class WorldUpdateMode {
  Fast,       ///< incremental repair + drain-diff rescheduling (default)
  Reference,  ///< full rebuild + reschedule-everyone: the executable spec
};

/// Tunable protocol and physics parameters of the world.
struct WorldParams {
  /// Believed battery fraction below which a node requests charging.
  double request_threshold = 0.30;

  /// Minimum gap between a service ending and the node's next request [s]
  /// (protocol rate limit).
  Seconds min_request_gap = 300.0;

  /// Seconds an unserved request may age before the base station escalates.
  /// Must be generous relative to session length (~25 min) or benign queueing
  /// alone trips escalations.
  Seconds patience = 7'200.0;

  /// Genuine sessions aim to fill the battery to this fraction.
  double charge_target_fraction = 0.95;

  /// Mean multiplicative efficiency of genuine sessions relative to the
  /// nominal docked harvest rate (partial service / misalignment is normal).
  double benign_gain_mean = 0.85;

  /// Coefficient of variation of the genuine-session efficiency.
  double benign_gain_cv = 0.20;

  /// Initial battery fractions are drawn uniform in this range, staggering
  /// the first wave of requests as in a steady-state deployment.
  double initial_level_min = 0.45;
  double initial_level_max = 1.0;

  /// Hardware low-voltage-interrupt defense: when enabled, a comparator on
  /// the TRUE battery level fires an emergency request at
  /// `emergency_fraction` no matter what the node believes.
  bool emergency_enabled = false;
  double emergency_fraction = 0.05;
  Seconds emergency_patience = 600.0;

  /// Mean time between background hardware failures per node [s];
  /// 0 disables them.  Real deployments lose nodes to component faults;
  /// the death-rate defense must be calibrated against this background,
  /// which is also the noise the attack hides its kills in.
  Seconds hardware_mtbf = 0.0;

  /// Death-reaction strategy; Fast and Reference produce identical traces
  /// (the world-equivalence suite asserts it), Fast is O(affected) per death.
  WorldUpdateMode update_mode = WorldUpdateMode::Fast;

  wpt::ChargingModelParams charging;
  net::RoutingParams routing;
  net::DrainParams drain;

  /// Waypoint mobility: fraction > 0 makes that share of nodes walk the
  /// deployment, with positions/adjacency/routing/drains refreshed on
  /// fixed-interval epochs (pure function of time, so Fast == Reference).
  MobilityParams mobility;

  /// k-coverage utility: k > 0 scales a node's charging utility by how
  /// many alive sensors cover its region (fewer coverers => more valuable).
  net::CoverageParams coverage;

  void validate() const;
};

/// Counters describing how the world has reacted to topology changes;
/// exposed for benchmarks and diagnostics (Fast mode should mostly repair,
/// and reschedule far fewer nodes than Reference's everyone-every-death).
struct WorldUpdateStats {
  std::uint64_t repairs = 0;    ///< subtree repairs taken
  std::uint64_t rebuilds = 0;   ///< full rebuilds (fallback or Reference)
  std::uint64_t reschedules = 0;  ///< nodes resynced+rescheduled by updates
  std::uint64_t mobility_epochs = 0;  ///< batched position/routing refreshes
};

/// What the base-station uplink does with one escalation report
/// (fault-injection surface; see set_escalation_interceptor).
enum class EscalationAction : std::uint8_t {
  Deliver,  ///< report the escalation normally
  Drop,     ///< report lost: no trace record, no listener call, no retry
  Delay,    ///< report deferred by `delay` seconds (at most once per request)
};

struct EscalationDecision {
  EscalationAction action = EscalationAction::Deliver;
  Seconds delay = 0.0;
};

/// A pending charging request as seen by the charging service.
struct PendingRequest {
  net::NodeId node = net::kInvalidNode;
  Seconds requested_at = 0.0;
  /// Escalation fires at this absolute time if unserved.
  Seconds escalation_deadline = 0.0;
  bool emergency = false;
};

/// Mutable network world; all mutation flows through event callbacks and the
/// charger-facing service API.
class World {
 public:
  World(Simulator& sim, net::Network network, const WorldParams& params,
        Rng rng);

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  /// Flushes the accumulated WorldUpdateStats (repairs, rebuilds, drain
  /// reschedules) to the installed obs registry in one shot.
  ~World();

  // --- static context -------------------------------------------------------
  const net::Network& network() const { return network_; }
  const wpt::ChargingModel& charging_model() const { return charging_model_; }
  const WorldParams& params() const { return params_; }
  Simulator& simulator() { return sim_; }

  // --- live state queries ---------------------------------------------------
  bool alive(net::NodeId id) const;
  std::size_t alive_count() const { return alive_count_; }
  /// Maintained per-node alive mask (indexed by NodeId), e.g. for feeding
  /// mc::partition_by_depot without N alive() calls.
  const Bitmap& alive_mask() const { return alive_mask_; }
  /// True battery level at the current simulation time [J].
  Joules level(net::NodeId id) const;
  double level_fraction(net::NodeId id) const;
  /// What the node believes its level is (true level + trusted-but-undelivered
  /// surplus), capped at capacity.
  Joules believed_level(net::NodeId id) const;
  Watts drain_rate(net::NodeId id) const;
  Watts charge_rate(net::NodeId id) const;
  /// Time the node dies if no further charge arrives; +inf if net-positive.
  Seconds predicted_death(net::NodeId id) const;
  /// Time the node will next issue a request (alive, non-pending nodes);
  /// +inf if it never will at current rates.
  Seconds predicted_request(net::NodeId id) const;
  bool has_pending_request(net::NodeId id) const;
  /// Alive nodes with an outstanding request, ascending node id.  Backed by
  /// a maintained index: O(pending), no scan, no allocation.
  const std::vector<net::NodeId>& pending_nodes() const {
    return pending_ids_;
  }
  /// The outstanding request of `id`; requires has_pending_request(id).
  PendingRequest pending_request(net::NodeId id) const;
  /// Materialized copy of the pending set (allocates; prefer pending_nodes()
  /// + pending_request() on hot paths).
  std::vector<PendingRequest> pending_requests() const;
  const net::RoutingTree& routing() const { return routing_; }
  const net::TrafficLoads& loads() const { return loads_; }
  /// Alive nodes currently connected to the sink.
  std::size_t sink_connected_count() const;
  const WorldUpdateStats& update_stats() const { return update_stats_; }

  /// Bumped on every adjacency change (mobility epochs); planners key
  /// their node-pair distance memos on this so cached travel distances
  /// never survive a position change.  Deaths don't move nodes and so
  /// don't bump it.
  std::uint64_t topology_version() const { return topology_version_; }

  /// Multiplier a planner applies to the node's charging utility under the
  /// k-coverage mode: 1 when disabled or the node has >= k alive coverers,
  /// ramping up to 1 + bonus for a completely uncovered node.  Identical
  /// in Fast and Reference (exact integer counts, same death order).
  double coverage_weight(net::NodeId id) const;

  // --- charging-service API (benign charger and attacker both use this) -----
  /// Nominal harvest rate of a docked genuine session [W].
  Watts nominal_dc_power() const;
  /// Session length a charger plans to restore `deficit` joules, using the
  /// fleet-calibrated mean session efficiency.
  Seconds planned_session_duration(Joules deficit) const;
  /// Energy a node expects from a session of `duration` — the calibrated
  /// expectation (unbiased for honest service), which is what the node
  /// credits its believed level with.
  Joules expected_session_gain(Seconds duration) const;
  /// Draws the per-session multiplicative efficiency of a genuine session.
  double draw_genuine_gain_factor();
  /// Sets the DC power currently flowing into a node's battery (0 stops).
  /// No-op (returns false) if the node is dead.
  bool set_charge_input(net::NodeId id, Watts dc);
  /// Marks the node's outstanding request as being answered (service began):
  /// cancels the escalation timer.
  void note_service_started(net::NodeId id);
  /// Marks service complete.  The node credits its believed level with
  /// `expected` (it trusts the service) while only `delivered` actually
  /// arrived; the believed-vs-true surplus grows by the difference.
  void note_service_ended(net::NodeId id, Joules expected, Joules delivered);

  // --- fault-injection API ---------------------------------------------------
  /// Bricks an alive node immediately (injected component fault): same
  /// death path as a background hardware failure.  Returns false (no-op)
  /// when the node is already dead.
  bool inject_hardware_failure(net::NodeId id);
  /// Sets an unmetered parasitic drain on a node [W] (aging cell, moisture
  /// leakage); 0 clears it.  The drain empties the TRUE battery but is
  /// invisible to the node's own SoC estimate — believed and true level
  /// drift apart, so the node dies earlier than it expects to request.
  /// Returns false (no-op) when the node is dead.
  bool set_self_discharge(net::NodeId id, Watts power);
  /// Unmetered parasitic drain currently injected on the node [W].
  Watts self_discharge(net::NodeId id) const;
  /// Installs the escalation-tampering interceptor consulted when an
  /// escalation is about to be reported (null restores normal delivery).
  /// A request's report can be delayed at most once; a dropped report is
  /// lost for good (the node never re-escalates the same request).
  void set_escalation_interceptor(
      std::function<EscalationDecision(net::NodeId)> interceptor);

  // --- event subscription ----------------------------------------------------
  /// Adds a charging-service request listener.  Multi-charger fleets
  /// register one listener per vehicle and filter by territory.
  void add_request_listener(std::function<void(net::NodeId)> listener);
  /// Convenience for the single-charger case (same as adding a listener).
  void set_request_handler(std::function<void(net::NodeId)> handler);
  void add_death_listener(std::function<void(net::NodeId)> listener);
  void add_escalation_listener(std::function<void(net::NodeId)> listener);

  // --- trace -----------------------------------------------------------------
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  /// Cold per-node bookkeeping: protocol flags, request deadlines, and the
  /// kernel event handles.  Touched only on request/service/death
  /// transitions; the hot death-cascade and drain-diff paths read the
  /// contiguous SoA lanes below instead (see DESIGN.md §12).
  struct NodeCold {
    bool pending = false;
    bool pending_emergency = false;
    /// The current request's escalation report has already been deferred
    /// once by the tampering interceptor (delay at most once per request).
    bool escalation_deferred = false;
    bool in_service = false;
    Seconds requested_at = 0.0;
    Seconds escalation_deadline = 0.0;
    Seconds cooldown_until = 0.0;  ///< min-request-gap guard
    /// Live kernel events owned by this node (kInvalidEvent when none).
    /// Superseded events are cancelled at the kernel, never left to fire.
    EventId death_event = kInvalidEvent;
    EventId request_event = kInvalidEvent;
    EventId emergency_event = kInvalidEvent;
    EventId escalation_event = kInvalidEvent;
    EventId hardware_event = kInvalidEvent;
  };

  Watts net_drain(net::NodeId id) const {
    return drain_[id] + self_discharge_[id] - charge_[id];
  }
  /// Battery mutation with the clamped semantics of energy::Battery
  /// (never negative, never above capacity), on the SoA level lane.
  void battery_discharge(net::NodeId id, Joules amount) {
    level_[id] -= std::min(amount, level_[id]);
  }
  void battery_charge(net::NodeId id, Joules amount) {
    level_[id] += std::min(amount, capacity_[id] - level_[id]);
  }
  NodeCold& cold(net::NodeId id);
  const NodeCold& cold(net::NodeId id) const;

  /// Folds elapsed time into the battery and resets the sync point.
  void resync(net::NodeId id);
  /// (Re)schedules the death, request-arming, and emergency events,
  /// cancelling the superseded ones.
  void reschedule(net::NodeId id);
  void fire_death(net::NodeId id);
  void fire_hardware_failure(net::NodeId id);
  /// One mobility epoch: interpolate every mobile node to `now`, rebuild
  /// the adjacency + coverage index in place, and push the new topology
  /// through the mode-dispatching routing/drain seam (Fast reschedules
  /// only bitwise-changed drains; Reference resyncs everyone).
  void fire_mobility_epoch();
  /// Shared hardware-death path (background failure and injected fault):
  /// bricks the battery, retires the node, records the death, and reacts.
  void kill_node_hardware(net::NodeId id);
  void fire_request(net::NodeId id);
  void fire_emergency(net::NodeId id);
  void fire_escalation(net::NodeId id);
  void issue_request(net::NodeId id, bool emergency);
  /// Marks the node dead in every live-state index and cancels its events.
  void retire_node(net::NodeId id);
  /// Full routing/loads/drains rebuild (mode-dispatching); used at
  /// construction and as the Fast-mode fallback.
  void recompute_routing();
  /// Reacts to the death of `dead`: Fast repairs the routing subtree and
  /// reschedules only drain-changed nodes; Reference rebuilds everything.
  void on_topology_change(net::NodeId dead);
  /// Refills loads_/drains_ from routing_ into the persistent buffers.
  void refresh_loads_and_drains();
  /// Like refresh_loads_and_drains, but after a subtree repair: loads are
  /// patched in place via net::update_loads_after_repair (O(affected), not
  /// O(N)) and drains recomputed only for the touched set.  Bitwise
  /// identical to the full refresh: drain is a pure function of (reachable,
  /// uplink, tx, rx), and outside the touched set those inputs are
  /// untouched by the repair.  `old_parent` is the dead node's routing
  /// parent captured before the repair.
  /// Collects the recomputed ids into dirty_ids_ for apply_drain_changes.
  void refresh_loads_and_drains_after_repair(net::NodeId dead,
                                             net::NodeId old_parent);
  /// Resyncs + reschedules exactly the alive nodes whose drain changed,
  /// scanning every node (used after a full rebuild).
  void apply_drain_changes();
  /// Same, but visits only the given candidate ids (the post-repair dirty
  /// set) — any node absent from it has a bitwise-unchanged drain.
  void apply_drain_changes(const std::vector<net::NodeId>& candidates);
  /// The seed code path: fresh vectors, full Dijkstra, reschedule everyone.
  void recompute_routing_reference();
  void pending_insert(net::NodeId id);
  void pending_erase(net::NodeId id);

  Simulator& sim_;
  net::Network network_;
  WorldParams params_;
  wpt::ChargingModel charging_model_;
  Rng rng_;
  // --- hot per-node SoA lanes (indexed by NodeId) ---------------------------
  // The death-cascade drain diff, lazy-energy extrapolation, and routing
  // repair scan these contiguous arrays; per-node protocol bookkeeping lives
  // in cold_.  A new per-node field goes into a lane only if a hot loop
  // scans it; see DESIGN.md §12 for the layout and determinism rules.
  std::vector<Joules> level_;     ///< true battery level at sync_time_
  std::vector<Joules> capacity_;  ///< battery capacity (constant)
  std::vector<Seconds> sync_time_;
  std::vector<Watts> drain_;
  std::vector<Watts> charge_;
  /// The node's own estimate of its level [J], tracked independently of
  /// the true battery: it drains at the measured consumption rate and is
  /// credited with the EXPECTED gain when a service ends (the node cannot
  /// meter the harvest itself).  Honest service keeps it near the truth;
  /// a spoofed session inflates it by the whole expected gain.
  std::vector<Joules> believed_;
  /// Injected unmetered parasitic drain [W] (fault API); drains the true
  /// battery but never the believed level.
  std::vector<Watts> self_discharge_;
  std::vector<NodeCold> cold_;
  std::size_t alive_count_ = 0;
  /// Persistent alive mask (word-packed), updated at each death — never
  /// rebuilt per call; the single source of truth for liveness.
  Bitmap alive_mask_;
  net::RoutingTree routing_;
  net::TrafficLoads loads_;
  /// Persistent drain-rate buffer (diffed against the drain_ lane).
  std::vector<Watts> drains_;
  net::RoutingScratch scratch_;
  /// Alive nodes with an outstanding request, sorted ascending by id.
  std::vector<net::NodeId> pending_ids_;
  /// Nodes whose drain was recomputed by the latest post-repair refresh.
  std::vector<net::NodeId> dirty_ids_;
  MobilityModel mobility_;
  EventId mobility_event_ = kInvalidEvent;
  std::uint64_t topology_version_ = 0;
  net::CoverageIndex coverage_;
  Meters coverage_radius_ = 0.0;
  WorldUpdateStats update_stats_;
  Trace trace_;
  // Observability tallies flushed by the destructor (the trace itself may
  // be moved out by the caller before the World dies, so counts are kept
  // separately; the per-event paths are too hot for a registry write each).
  std::uint64_t deaths_tally_ = 0;
  std::uint64_t requests_tally_ = 0;
  std::uint64_t escalations_tally_ = 0;
  std::function<EscalationDecision(net::NodeId)> escalation_interceptor_;
  std::vector<std::function<void(net::NodeId)>> request_listeners_;
  std::vector<std::function<void(net::NodeId)>> death_listeners_;
  std::vector<std::function<void(net::NodeId)>> escalation_listeners_;
};

}  // namespace wrsn::sim
