// Live WRSN world state on top of the event kernel.
//
// Energy is accounted lazily: each node stores its battery level at the last
// synchronization point plus constant drain/charge rates; levels at `now` are
// linear extrapolations, and deaths/threshold crossings are scheduled as
// analytic events (no ticking).  A node death invalidates the routing tree,
// so the world recomputes routes, loads, and drain rates and reschedules all
// pending node events with version counters (the standard invalidate-by-
// version idiom for mutable-deadline event queues).
//
// Charging-service protocol (the contract both the benign charger and the
// attacker operate under), and the believed-level mechanism the attack
// exploits:
//   * Nodes cannot meter harvested energy precisely (commodity SoC gauges
//     are noisy), so each node tracks a BELIEVED level: its true level plus
//     a surplus equal to the energy the charging service was expected to
//     deliver but did not.  Requests are armed on the believed level.
//   * A node issues a charging request when its believed level falls below
//     `request_threshold`; if the request stays unserved for `patience`
//     seconds the base station escalates (a service-failure record).
//   * When service starts the request is considered answered; when it ends
//     the node adds the EXPECTED gain to its believed level.  A spoof-charged
//     node therefore believes it is nearly full, schedules its next request
//     far in the future, and dies silently first — "exhausted in vain".
//   * Optional defense (`emergency_enabled`): a hardware low-voltage
//     comparator on the TRUE level fires an emergency request at
//     `emergency_fraction` regardless of beliefs.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "energy/battery.hpp"
#include "net/keynodes.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "wpt/charging_model.hpp"

namespace wrsn::sim {

/// Tunable protocol and physics parameters of the world.
struct WorldParams {
  /// Believed battery fraction below which a node requests charging.
  double request_threshold = 0.30;

  /// Minimum gap between a service ending and the node's next request [s]
  /// (protocol rate limit).
  Seconds min_request_gap = 300.0;

  /// Seconds an unserved request may age before the base station escalates.
  /// Must be generous relative to session length (~25 min) or benign queueing
  /// alone trips escalations.
  Seconds patience = 7'200.0;

  /// Genuine sessions aim to fill the battery to this fraction.
  double charge_target_fraction = 0.95;

  /// Mean multiplicative efficiency of genuine sessions relative to the
  /// nominal docked harvest rate (partial service / misalignment is normal).
  double benign_gain_mean = 0.85;

  /// Coefficient of variation of the genuine-session efficiency.
  double benign_gain_cv = 0.20;

  /// Initial battery fractions are drawn uniform in this range, staggering
  /// the first wave of requests as in a steady-state deployment.
  double initial_level_min = 0.45;
  double initial_level_max = 1.0;

  /// Hardware low-voltage-interrupt defense: when enabled, a comparator on
  /// the TRUE battery level fires an emergency request at
  /// `emergency_fraction` no matter what the node believes.
  bool emergency_enabled = false;
  double emergency_fraction = 0.05;
  Seconds emergency_patience = 600.0;

  /// Mean time between background hardware failures per node [s];
  /// 0 disables them.  Real deployments lose nodes to component faults;
  /// the death-rate defense must be calibrated against this background,
  /// which is also the noise the attack hides its kills in.
  Seconds hardware_mtbf = 0.0;

  wpt::ChargingModelParams charging;
  net::RoutingParams routing;
  net::DrainParams drain;

  void validate() const;
};

/// A pending charging request as seen by the charging service.
struct PendingRequest {
  net::NodeId node = net::kInvalidNode;
  Seconds requested_at = 0.0;
  /// Escalation fires at this absolute time if unserved.
  Seconds escalation_deadline = 0.0;
  bool emergency = false;
};

/// Mutable network world; all mutation flows through event callbacks and the
/// charger-facing service API.
class World {
 public:
  World(Simulator& sim, net::Network network, const WorldParams& params,
        Rng rng);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- static context -------------------------------------------------------
  const net::Network& network() const { return network_; }
  const wpt::ChargingModel& charging_model() const { return charging_model_; }
  const WorldParams& params() const { return params_; }
  Simulator& simulator() { return sim_; }

  // --- live state queries ---------------------------------------------------
  bool alive(net::NodeId id) const;
  std::size_t alive_count() const { return alive_count_; }
  /// True battery level at the current simulation time [J].
  Joules level(net::NodeId id) const;
  double level_fraction(net::NodeId id) const;
  /// What the node believes its level is (true level + trusted-but-undelivered
  /// surplus), capped at capacity.
  Joules believed_level(net::NodeId id) const;
  Watts drain_rate(net::NodeId id) const;
  Watts charge_rate(net::NodeId id) const;
  /// Time the node dies if no further charge arrives; +inf if net-positive.
  Seconds predicted_death(net::NodeId id) const;
  /// Time the node will next issue a request (alive, non-pending nodes);
  /// +inf if it never will at current rates.
  Seconds predicted_request(net::NodeId id) const;
  bool has_pending_request(net::NodeId id) const;
  std::vector<PendingRequest> pending_requests() const;
  const net::RoutingTree& routing() const { return routing_; }
  const net::TrafficLoads& loads() const { return loads_; }
  /// Alive nodes currently connected to the sink.
  std::size_t sink_connected_count() const;

  // --- charging-service API (benign charger and attacker both use this) -----
  /// Nominal harvest rate of a docked genuine session [W].
  Watts nominal_dc_power() const;
  /// Session length a charger plans to restore `deficit` joules, using the
  /// fleet-calibrated mean session efficiency.
  Seconds planned_session_duration(Joules deficit) const;
  /// Energy a node expects from a session of `duration` — the calibrated
  /// expectation (unbiased for honest service), which is what the node
  /// credits its believed level with.
  Joules expected_session_gain(Seconds duration) const;
  /// Draws the per-session multiplicative efficiency of a genuine session.
  double draw_genuine_gain_factor();
  /// Sets the DC power currently flowing into a node's battery (0 stops).
  /// No-op (returns false) if the node is dead.
  bool set_charge_input(net::NodeId id, Watts dc);
  /// Marks the node's outstanding request as being answered (service began):
  /// cancels the escalation timer.
  void note_service_started(net::NodeId id);
  /// Marks service complete.  The node credits its believed level with
  /// `expected` (it trusts the service) while only `delivered` actually
  /// arrived; the believed-vs-true surplus grows by the difference.
  void note_service_ended(net::NodeId id, Joules expected, Joules delivered);

  // --- event subscription ----------------------------------------------------
  /// Adds a charging-service request listener.  Multi-charger fleets
  /// register one listener per vehicle and filter by territory.
  void add_request_listener(std::function<void(net::NodeId)> listener);
  /// Convenience for the single-charger case (same as adding a listener).
  void set_request_handler(std::function<void(net::NodeId)> handler);
  void add_death_listener(std::function<void(net::NodeId)> listener);
  void add_escalation_listener(std::function<void(net::NodeId)> listener);

  // --- trace -----------------------------------------------------------------
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  struct NodeState {
    energy::Battery battery;
    Seconds sync_time = 0.0;
    Watts drain = 0.0;
    Watts charge = 0.0;
    /// The node's own estimate of its level [J], tracked independently of
    /// the true battery: it drains at the measured consumption rate and is
    /// credited with the EXPECTED gain when a service ends (the node cannot
    /// meter the harvest itself).  Honest service keeps it near the truth;
    /// a spoofed session inflates it by the whole expected gain.
    Joules believed = 0.0;
    bool alive = true;
    bool pending = false;
    bool pending_emergency = false;
    bool in_service = false;
    Seconds requested_at = 0.0;
    Seconds escalation_deadline = 0.0;
    Seconds cooldown_until = 0.0;  ///< min-request-gap guard
    std::uint64_t death_version = 0;
    std::uint64_t request_version = 0;
    std::uint64_t emergency_version = 0;
    std::uint64_t escalation_version = 0;

    explicit NodeState(energy::Battery b) : battery(std::move(b)) {}
  };

  Watts net_drain(const NodeState& state) const {
    return state.drain - state.charge;
  }
  NodeState& state(net::NodeId id);
  const NodeState& state(net::NodeId id) const;

  /// Folds elapsed time into the battery and resets the sync point.
  void resync(net::NodeId id);
  /// (Re)schedules the death, request-arming, and emergency events.
  void reschedule(net::NodeId id);
  void fire_death(net::NodeId id, std::uint64_t version);
  void fire_hardware_failure(net::NodeId id);
  void fire_request(net::NodeId id, std::uint64_t version);
  void fire_emergency(net::NodeId id, std::uint64_t version);
  void fire_escalation(net::NodeId id, std::uint64_t version);
  void issue_request(net::NodeId id, bool emergency);
  /// Rebuilds routing/loads/drains after a topology change and reschedules
  /// every alive node.
  void recompute_routing();

  Simulator& sim_;
  net::Network network_;
  WorldParams params_;
  wpt::ChargingModel charging_model_;
  Rng rng_;
  std::vector<NodeState> states_;
  std::size_t alive_count_ = 0;
  net::RoutingTree routing_;
  net::TrafficLoads loads_;
  Trace trace_;
  std::vector<std::function<void(net::NodeId)>> request_listeners_;
  std::vector<std::function<void(net::NodeId)>> death_listeners_;
  std::vector<std::function<void(net::NodeId)>> escalation_listeners_;
};

}  // namespace wrsn::sim
