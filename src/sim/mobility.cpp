#include "sim/mobility.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace wrsn::sim {

void MobilityParams::validate() const {
  if (fraction < 0.0 || fraction > 1.0) {
    throw ConfigError("mobility fraction must be in [0, 1]");
  }
  if (fraction > 0.0) {
    if (interval <= 0.0) throw ConfigError("mobility interval must be > 0");
    if (speed_min <= 0.0) throw ConfigError("mobility speed_min must be > 0");
    if (speed_max < speed_min) {
      throw ConfigError("mobility speed_max must be >= speed_min");
    }
    if (pause_min < 0.0) throw ConfigError("mobility pause_min must be >= 0");
    if (pause_max < pause_min) {
      throw ConfigError("mobility pause_max must be >= pause_min");
    }
  }
}

MobilityModel::MobilityModel(const MobilityParams& params,
                             const net::Network& network, const Rng& rng)
    : params_(params) {
  params_.validate();
  if (params_.fraction <= 0.0 || network.size() == 0) return;

  geom::Vec2 lo = network.node(0).position;
  geom::Vec2 hi = lo;
  for (const net::SensorSpec& s : network.nodes()) {
    lo.x = std::min(lo.x, s.position.x);
    lo.y = std::min(lo.y, s.position.y);
    hi.x = std::max(hi.x, s.position.x);
    hi.y = std::max(hi.y, s.position.y);
  }
  area_ = {lo, hi};

  Rng select = rng.fork("select");
  for (std::size_t i = 0; i < network.size(); ++i) {
    if (!select.bernoulli(params_.fraction)) continue;
    Mobile m;
    m.id = static_cast<net::NodeId>(i);
    m.rng = rng.fork("node-" + std::to_string(i));
    m.from = m.to = network.node(m.id).position;
    m.depart = m.arrive = 0.0;
    mobiles_.push_back(std::move(m));
  }
}

void MobilityModel::next_segment(Mobile& m) {
  m.from = m.to;
  m.depart = m.arrive + m.rng.uniform(params_.pause_min, params_.pause_max);
  m.to = {m.rng.uniform(area_.lo.x, area_.hi.x),
          m.rng.uniform(area_.lo.y, area_.hi.y)};
  const double speed = m.rng.uniform(params_.speed_min, params_.speed_max);
  m.arrive = m.depart + geom::distance(m.from, m.to) / speed;
}

void MobilityModel::advance_to(Seconds t, net::Network& network) {
  for (Mobile& m : mobiles_) {
    while (m.arrive <= t) next_segment(m);
    geom::Vec2 p;
    if (t <= m.depart) {
      p = m.from;  // pausing at the previous waypoint
    } else {
      p = geom::lerp(m.from, m.to,
                     (t - m.depart) / (m.arrive - m.depart));
    }
    network.set_position(m.id, p);
  }
}

}  // namespace wrsn::sim
