// Random-waypoint mobility for sensor nodes.
//
// A configured fraction of nodes walk the deployment area: each mobile node
// owns a private forked RNG stream and repeats pause -> pick waypoint ->
// travel at a drawn speed.  A node's position is a pure function of (its
// stream, t), so advancing the model to the same epoch times yields
// identical positions in Fast and Reference worlds — the world batches
// position updates on fixed-interval mobility epochs and pushes them
// through the existing routing/drain resync seam.
//
// Motivated by "Adaptive wireless power transfer in mobile Ad Hoc networks"
// (PAPERS.md): churn continuously re-shapes the routing tree, so key-node
// identity — the heart of the charging-spoofing attack — shifts over time.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "geom/vec2.hpp"
#include "net/network.hpp"

namespace wrsn::sim {

/// Waypoint-mobility knobs (lives in WorldParams as `mobility`).
struct MobilityParams {
  /// Fraction of nodes that move; 0 disables mobility entirely.
  double fraction = 0.0;
  /// Epoch length [s]: positions, adjacency, routing, and drains are
  /// refreshed this often while mobility is enabled.
  Seconds interval = 900.0;
  /// Waypoint travel speed range [m/s].
  double speed_min = 0.5;
  double speed_max = 1.5;
  /// Pause at each waypoint [s].
  Seconds pause_min = 0.0;
  Seconds pause_max = 600.0;

  void validate() const;
};

/// Seeded per-node waypoint streams over the deployment's bounding box.
class MobilityModel {
 public:
  MobilityModel() = default;

  /// Selects the mobile subset (one bernoulli per node in id order from a
  /// fork of `rng`) and anchors each mobile node at its deployed position.
  /// The walk area is the bounding box of the initial deployment.
  MobilityModel(const MobilityParams& params, const net::Network& network,
                const Rng& rng);

  bool enabled() const { return !mobiles_.empty(); }
  std::size_t mobile_count() const { return mobiles_.size(); }

  /// Advances every mobile node's waypoint schedule to time `t` and writes
  /// the interpolated positions into `network`.  Allocation-free.
  void advance_to(Seconds t, net::Network& network);

 private:
  struct Mobile {
    net::NodeId id = net::kInvalidNode;
    Rng rng{0};  ///< private waypoint stream (re-seeded by fork at setup)
    geom::Vec2 from;
    geom::Vec2 to;
    Seconds depart = 0.0;
    Seconds arrive = 0.0;
  };

  void next_segment(Mobile& m);

  MobilityParams params_;
  geom::Rect area_;
  std::vector<Mobile> mobiles_;
};

}  // namespace wrsn::sim
