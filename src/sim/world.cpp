#include "sim/world.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace wrsn::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Slack applied when validating analytically-scheduled crossings, to absorb
// floating-point drift between the scheduled time and the extrapolated level.
constexpr Joules kLevelEpsilon = 1e-6;

// Above this fraction of reachable nodes in the dead node's routing subtree,
// a full in-place rebuild beats the repair.  The repair's restricted
// Dijkstra skips every settled survivor, so it stays cheaper than a rebuild
// until the subtree covers most of the tree (profiling the N=400 cascade
// bench put the crossover above one half; rebuilds there cost ~40 % of the
// cascade at a 0.25 threshold).
constexpr double kRepairRebuildFraction = 0.6;

}  // namespace

void WorldParams::validate() const {
  if (request_threshold <= 0.0 || request_threshold >= 1.0) {
    throw ConfigError("request_threshold must be in (0, 1)");
  }
  if (min_request_gap < 0.0) throw ConfigError("min_request_gap < 0");
  if (patience <= 0.0) throw ConfigError("patience must be > 0");
  if (charge_target_fraction <= request_threshold ||
      charge_target_fraction > 1.0) {
    throw ConfigError(
        "charge_target_fraction must be in (request_threshold, 1]");
  }
  if (benign_gain_mean <= 0.0 || benign_gain_mean > 1.0) {
    throw ConfigError("benign_gain_mean must be in (0, 1]");
  }
  if (benign_gain_cv < 0.0) throw ConfigError("benign_gain_cv < 0");
  if (initial_level_min <= 0.0 || initial_level_max > 1.0 ||
      initial_level_min > initial_level_max) {
    throw ConfigError("initial level range must satisfy 0 < min <= max <= 1");
  }
  if (emergency_fraction <= 0.0 || emergency_fraction >= request_threshold) {
    throw ConfigError(
        "emergency_fraction must be in (0, request_threshold)");
  }
  if (emergency_patience <= 0.0) throw ConfigError("emergency_patience <= 0");
  if (hardware_mtbf < 0.0) throw ConfigError("hardware_mtbf < 0");
  charging.validate();
  drain.radio.validate();
  mobility.validate();
  coverage.validate();
}

World::~World() {
  WRSN_OBS_ADD(kWorldDeaths, double(deaths_tally_));
  WRSN_OBS_ADD(kWorldRequests, double(requests_tally_));
  WRSN_OBS_ADD(kWorldEscalations, double(escalations_tally_));
  WRSN_OBS_ADD(kNetRoutingRepairs, double(update_stats_.repairs));
  WRSN_OBS_ADD(kNetRoutingRebuilds, double(update_stats_.rebuilds));
  WRSN_OBS_ADD(kNetDrainReschedules, double(update_stats_.reschedules));
}

World::World(Simulator& sim, net::Network network, const WorldParams& params,
             Rng rng)
    : sim_(sim),
      network_(std::move(network)),
      params_(params),
      charging_model_(params.charging),
      rng_(std::move(rng)) {
  params_.validate();

  const std::size_t n = network_.size();
  Rng init_rng = rng_.fork("init-levels");
  level_.reserve(n);
  capacity_.reserve(n);
  believed_.reserve(n);
  for (const net::SensorSpec& spec : network_.nodes()) {
    WRSN_REQUIRE(spec.battery_capacity > 0.0,
                 "battery capacity must be positive");
    const double frac =
        init_rng.uniform(params_.initial_level_min, params_.initial_level_max);
    capacity_.push_back(spec.battery_capacity);
    level_.push_back(frac * spec.battery_capacity);
    believed_.push_back(frac * spec.battery_capacity);
  }
  sync_time_.assign(n, sim_.now());
  drain_.assign(n, 0.0);
  charge_.assign(n, 0.0);
  self_discharge_.assign(n, 0.0);
  cold_.assign(n, NodeCold{});
  alive_count_ = n;
  alive_mask_.assign(n, true);
  pending_ids_.reserve(n);
  dirty_ids_.reserve(n);

  // Pre-size the kernel slab/heap, the routing scratch, and the persistent
  // buffers so the steady-state death path never allocates.
  std::size_t edges = 0;
  for (net::NodeId id = 0; id < n; ++id) {
    edges += network_.neighbors(id).size();
  }
  scratch_.reserve(n, edges);
  sim_.reserve(5 * n + 64);
  drains_.reserve(n);

  // Background hardware failures: each node draws an exponential lifetime.
  if (params_.hardware_mtbf > 0.0) {
    Rng failure_rng = rng_.fork("hardware-failures");
    for (net::NodeId id = 0; id < n; ++id) {
      const Seconds at =
          sim_.now() + failure_rng.exponential(1.0 / params_.hardware_mtbf);
      cold_[id].hardware_event =
          sim_.schedule_at(at, [this, id] { fire_hardware_failure(id); });
    }
  }

  // k-coverage utility: count each node's alive coverers up front; deaths
  // decrement incrementally, mobility epochs rebuild.
  if (params_.coverage.k > 0) {
    coverage_radius_ = params_.coverage.radius > 0.0 ? params_.coverage.radius
                                                     : network_.comm_range();
    coverage_.build(network_, alive_mask_, coverage_radius_);
  }

  // Waypoint mobility: forked streams (fork does not perturb the parent, so
  // the init-levels / hardware-failures sequences above are unchanged when
  // mobility is off OR on), epochs batched on the event kernel.
  if (params_.mobility.fraction > 0.0) {
    mobility_ = MobilityModel(params_.mobility, network_, rng_.fork("mobility"));
    if (mobility_.enabled()) {
      mobility_event_ =
          sim_.schedule_at(sim_.now() + params_.mobility.interval,
                           [this] { fire_mobility_epoch(); });
    }
  }

  recompute_routing();
}

World::NodeCold& World::cold(net::NodeId id) {
  WRSN_REQUIRE(id < cold_.size(), "node id out of range");
  return cold_[id];
}

const World::NodeCold& World::cold(net::NodeId id) const {
  WRSN_REQUIRE(id < cold_.size(), "node id out of range");
  return cold_[id];
}

bool World::alive(net::NodeId id) const {
  WRSN_REQUIRE(id < cold_.size(), "node id out of range");
  return alive_mask_.test(id);
}

Joules World::level(net::NodeId id) const {
  if (!alive(id)) return 0.0;
  const Seconds dt = sim_.now() - sync_time_[id];
  const Joules delta = net_drain(id) * dt;
  return std::clamp(level_[id] - delta, 0.0, capacity_[id]);
}

double World::level_fraction(net::NodeId id) const {
  return level(id) / capacity_[id];
}

Joules World::believed_level(net::NodeId id) const {
  if (!alive(id)) return 0.0;
  const Seconds dt = sim_.now() - sync_time_[id];
  return std::clamp(believed_[id] - drain_[id] * dt, 0.0, capacity_[id]);
}

Watts World::drain_rate(net::NodeId id) const {
  WRSN_REQUIRE(id < drain_.size(), "node id out of range");
  return drain_[id];
}

Watts World::charge_rate(net::NodeId id) const {
  WRSN_REQUIRE(id < charge_.size(), "node id out of range");
  return charge_[id];
}

Seconds World::predicted_death(net::NodeId id) const {
  if (!alive(id)) return sim_.now();
  const Watts net = net_drain(id);
  if (net <= 0.0) return kInf;
  return sim_.now() + level(id) / net;
}

Seconds World::predicted_request(net::NodeId id) const {
  const NodeCold& c = cold(id);
  if (!alive_mask_.test(id) || c.pending || c.in_service) return kInf;
  const Joules threshold = params_.request_threshold * capacity_[id];
  const Joules believed = believed_level(id);
  if (believed <= threshold) {
    return std::max(sim_.now(), c.cooldown_until);
  }
  // The believed level declines at the node's measured consumption rate
  // (harvest is only credited at service end).
  if (drain_[id] <= 0.0) return kInf;
  const Seconds crossing = sim_.now() + (believed - threshold) / drain_[id];
  return std::max(crossing, c.cooldown_until);
}

bool World::has_pending_request(net::NodeId id) const {
  return cold(id).pending;
}

PendingRequest World::pending_request(net::NodeId id) const {
  const NodeCold& c = cold(id);
  WRSN_REQUIRE(alive_mask_.test(id) && c.pending,
               "node has no pending request");
  return {id, c.requested_at, c.escalation_deadline, c.pending_emergency};
}

std::vector<PendingRequest> World::pending_requests() const {
  std::vector<PendingRequest> pending;
  pending.reserve(pending_ids_.size());
  for (const net::NodeId id : pending_ids_) {
    pending.push_back(pending_request(id));
  }
  return pending;
}

std::size_t World::sink_connected_count() const {
  return net::count_sink_connected(network_, alive_mask_);
}

Watts World::nominal_dc_power() const {
  return charging_model_.docked_dc_power();
}

Seconds World::planned_session_duration(Joules deficit) const {
  WRSN_REQUIRE(deficit >= 0.0, "negative deficit");
  return deficit / (nominal_dc_power() * params_.benign_gain_mean);
}

Joules World::expected_session_gain(Seconds duration) const {
  WRSN_REQUIRE(duration >= 0.0, "negative duration");
  return nominal_dc_power() * params_.benign_gain_mean * duration;
}

double World::draw_genuine_gain_factor() {
  // Clamp bounds sit ~2.6 sigma out, so the draw stays effectively
  // unbiased: E[factor] ~= benign_gain_mean, which is what keeps the
  // fleet-calibrated expectation honest for benign service.  Factors above
  // 1 are good-alignment sessions where harvest beats the mean-calibrated
  // rate; the charger meters its output, so a low factor just means a
  // longer stay, not a short-changed node.
  const double sigma = params_.benign_gain_mean * params_.benign_gain_cv;
  const double factor = rng_.normal(params_.benign_gain_mean, sigma);
  return std::clamp(factor, 0.4, 1.6);
}

bool World::set_charge_input(net::NodeId id, Watts dc) {
  WRSN_REQUIRE(dc >= 0.0, "negative charge input");
  if (!alive(id)) return false;
  resync(id);
  charge_[id] = dc;
  reschedule(id);
  return true;
}

void World::note_service_started(net::NodeId id) {
  NodeCold& c = cold(id);
  if (!alive_mask_.test(id)) return;
  c.in_service = true;
  if (c.pending) {
    c.pending = false;
    c.pending_emergency = false;
    pending_erase(id);
    if (c.escalation_event != kInvalidEvent) {
      sim_.cancel(c.escalation_event);
      c.escalation_event = kInvalidEvent;
    }
  }
}

void World::note_service_ended(net::NodeId id, Joules expected,
                               Joules delivered) {
  WRSN_REQUIRE(expected >= 0.0 && delivered >= 0.0,
               "negative session energy");
  (void)delivered;  // only the trace sees the truth; the node cannot
  NodeCold& c = cold(id);
  c.in_service = false;
  if (!alive_mask_.test(id)) return;
  c.cooldown_until = sim_.now() + params_.min_request_gap;
  resync(id);
  // The node trusts the service: it credits the fleet-calibrated EXPECTED
  // gain, whatever truly arrived.  Honest service keeps the belief near the
  // truth (expectations are unbiased); a spoofed session inflates it by the
  // whole expected gain — the node then schedules its next request far in
  // the future and dies silently first.
  believed_[id] = std::min(believed_[id] + expected, capacity_[id]);
  reschedule(id);
}

void World::add_request_listener(std::function<void(net::NodeId)> listener) {
  request_listeners_.push_back(std::move(listener));
}

void World::set_request_handler(std::function<void(net::NodeId)> handler) {
  add_request_listener(std::move(handler));
}

void World::add_death_listener(std::function<void(net::NodeId)> listener) {
  death_listeners_.push_back(std::move(listener));
}

void World::add_escalation_listener(
    std::function<void(net::NodeId)> listener) {
  escalation_listeners_.push_back(std::move(listener));
}

void World::resync(net::NodeId id) {
  const Seconds now = sim_.now();
  const Seconds dt = now - sync_time_[id];
  if (dt > 0.0 && alive_mask_.test(id)) {
    const Joules delta = net_drain(id) * dt;
    if (delta >= 0.0) {
      battery_discharge(id, delta);
    } else {
      battery_charge(id, -delta);  // clamped at capacity
    }
    // The node's own estimate drains at the consumption rate; harvested
    // energy is only credited when a service ends (note_service_ended).
    believed_[id] = std::max(0.0, believed_[id] - drain_[id] * dt);
  }
  sync_time_[id] = now;
}

void World::reschedule(net::NodeId id) {
  NodeCold& c = cold_[id];
  if (!alive_mask_.test(id)) return;
  WRSN_ASSERT(sync_time_[id] == sim_.now());

  // Death event.  Superseded events are cancelled at the kernel — O(1), and
  // the heap never accumulates version-dead tombstones.
  if (c.death_event != kInvalidEvent) {
    sim_.cancel(c.death_event);
    c.death_event = kInvalidEvent;
  }
  const Watts net = net_drain(id);
  if (net > 0.0) {
    const Seconds at = sim_.now() + level_[id] / net;
    c.death_event = sim_.schedule_at(at, [this, id] { fire_death(id); });
  }

  // Request-arming event (believed-level crossing).
  if (c.request_event != kInvalidEvent) {
    sim_.cancel(c.request_event);
    c.request_event = kInvalidEvent;
  }
  const Seconds req_at = predicted_request(id);
  if (req_at < kInf) {
    c.request_event =
        sim_.schedule_at(req_at, [this, id] { fire_request(id); });
  }

  // Hardware low-voltage comparator (true-level crossing).
  if (params_.emergency_enabled) {
    if (c.emergency_event != kInvalidEvent) {
      sim_.cancel(c.emergency_event);
      c.emergency_event = kInvalidEvent;
    }
    const Joules em_level = params_.emergency_fraction * capacity_[id];
    if (net > 0.0 && level_[id] > em_level) {
      const Seconds at = sim_.now() + (level_[id] - em_level) / net;
      c.emergency_event =
          sim_.schedule_at(at, [this, id] { fire_emergency(id); });
    } else if (level_[id] <= em_level && !c.pending && !c.in_service) {
      // The comparator output is level-triggered: it (re)asserts as soon as
      // the node may speak again, even straight out of a service cooldown.
      c.emergency_event =
          sim_.schedule_at(std::max(sim_.now(), c.cooldown_until),
                           [this, id] { fire_emergency(id); });
    }
  }
}

void World::retire_node(net::NodeId id) {
  NodeCold& c = cold_[id];
  charge_[id] = 0.0;
  alive_mask_.reset(id);
  --alive_count_;
  // Nodes the dead one covered lose a coverer.  Exact integer update in
  // death order, so Fast and Reference (identical death sequences) agree.
  if (params_.coverage.k > 0) coverage_.on_death(network_, id);
  if (c.pending) pending_erase(id);
  // Cancel every event the node still owns; a dead node never fires again.
  for (EventId* ev : {&c.death_event, &c.request_event, &c.emergency_event,
                      &c.escalation_event, &c.hardware_event}) {
    if (*ev != kInvalidEvent) {
      sim_.cancel(*ev);
      *ev = kInvalidEvent;
    }
  }
}

void World::fire_death(net::NodeId id) {
  NodeCold& c = cold_[id];
  c.death_event = kInvalidEvent;  // this event just fired
  if (!alive_mask_.test(id)) return;
  resync(id);
  if (level_[id] > kLevelEpsilon) {
    // Rates changed between scheduling and firing; reschedule instead.
    reschedule(id);
    return;
  }

  retire_node(id);
  ++deaths_tally_;
  trace_.deaths.push_back({sim_.now(), id, c.pending});
  WRSN_LOG(Debug) << "node " << id << " died at t=" << sim_.now()
                  << (c.pending ? " (request outstanding)" : "");

  on_topology_change(id);
  for (const auto& listener : death_listeners_) listener(id);
}

void World::fire_hardware_failure(net::NodeId id) {
  cold_[id].hardware_event = kInvalidEvent;  // this event just fired
  if (!alive_mask_.test(id)) return;
  kill_node_hardware(id);
}

void World::kill_node_hardware(net::NodeId id) {
  WRSN_ASSERT(alive_mask_.test(id));
  resync(id);
  battery_discharge(id, level_[id]);  // component fault: node bricks
  retire_node(id);
  ++deaths_tally_;
  trace_.deaths.push_back({sim_.now(), id, cold_[id].pending});
  WRSN_LOG(Debug) << "node " << id << " hardware failure at t=" << sim_.now();
  on_topology_change(id);
  for (const auto& listener : death_listeners_) listener(id);
}

bool World::inject_hardware_failure(net::NodeId id) {
  if (!alive(id)) return false;
  kill_node_hardware(id);
  return true;
}

void World::fire_mobility_epoch() {
  mobility_event_ = kInvalidEvent;  // this event just fired
  // A dead network has nothing left to route or drain; stop the epoch chain
  // so run_all() terminates on worlds with mobility enabled.
  if (alive_count_ == 0) return;
  mobility_.advance_to(sim_.now(), network_);
  network_.rebuild_adjacency();
  ++topology_version_;
  if (params_.coverage.k > 0) {
    coverage_.build(network_, alive_mask_, coverage_radius_);
  }
  // The mode-dispatching seam: Fast rebuilds routing in place and resyncs
  // only bitwise-drain-changed nodes; Reference rebuilds into fresh vectors
  // and resyncs everyone.  Positions, adjacency, and coverage are pure
  // functions of (streams, t) and identical across modes, so the epoch
  // preserves the Fast == Reference equivalence exactly like a death does.
  recompute_routing();
  ++update_stats_.mobility_epochs;
  mobility_event_ = sim_.schedule_at(sim_.now() + params_.mobility.interval,
                                     [this] { fire_mobility_epoch(); });
}

double World::coverage_weight(net::NodeId id) const {
  const std::size_t k = params_.coverage.k;
  if (k == 0) return 1.0;
  const std::size_t covering = coverage_.coverers(id);
  if (covering >= k) return 1.0;
  return 1.0 + params_.coverage.bonus * double(k - covering) / double(k);
}

bool World::set_self_discharge(net::NodeId id, Watts power) {
  WRSN_REQUIRE(power >= 0.0, "negative self-discharge power");
  if (!alive(id)) return false;
  resync(id);
  self_discharge_[id] = power;
  reschedule(id);
  return true;
}

Watts World::self_discharge(net::NodeId id) const {
  WRSN_REQUIRE(id < self_discharge_.size(), "node id out of range");
  return self_discharge_[id];
}

void World::set_escalation_interceptor(
    std::function<EscalationDecision(net::NodeId)> interceptor) {
  escalation_interceptor_ = std::move(interceptor);
}

void World::fire_request(net::NodeId id) {
  NodeCold& c = cold_[id];
  c.request_event = kInvalidEvent;  // this event just fired
  if (!alive_mask_.test(id) || c.pending || c.in_service) return;
  if (sim_.now() < c.cooldown_until) return;
  resync(id);
  const Joules threshold = params_.request_threshold * capacity_[id];
  if (believed_level(id) > threshold + kLevelEpsilon) {
    reschedule(id);  // level rose (charging) before the event fired
    return;
  }
  issue_request(id, /*emergency=*/false);
}

void World::fire_emergency(net::NodeId id) {
  NodeCold& c = cold_[id];
  c.emergency_event = kInvalidEvent;  // this event just fired
  if (!alive_mask_.test(id) || c.in_service) return;
  if (sim_.now() < c.cooldown_until) {
    // Re-arm after the rate-limit gap: the comparator output is level-
    // triggered, so it re-asserts as soon as the node may speak again.
    c.emergency_event = sim_.schedule_at(
        c.cooldown_until, [this, id] { fire_emergency(id); });
    return;
  }
  resync(id);
  const Joules em_level = params_.emergency_fraction * capacity_[id];
  if (level_[id] > em_level + kLevelEpsilon) {
    reschedule(id);
    return;
  }
  if (c.pending) {
    // Upgrade the outstanding request to an emergency: tighten escalation.
    if (!c.pending_emergency) {
      c.pending_emergency = true;
      // Only tighten when the emergency deadline is actually earlier; the
      // original deadline may already be in the past (escalation fired long
      // ago on a starved request), and must not be rescheduled.
      const Seconds tightened = sim_.now() + params_.emergency_patience;
      if (tightened < c.escalation_deadline) {
        c.escalation_deadline = tightened;
        if (c.escalation_event != kInvalidEvent) {
          sim_.cancel(c.escalation_event);
        }
        c.escalation_event = sim_.schedule_at(
            c.escalation_deadline, [this, id] { fire_escalation(id); });
      }
      ++requests_tally_;
      trace_.requests.push_back(
          {sim_.now(), id, level_[id], /*emergency=*/true});
      for (const auto& listener : request_listeners_) listener(id);
    }
    return;
  }
  issue_request(id, /*emergency=*/true);
}

void World::issue_request(net::NodeId id, bool emergency) {
  NodeCold& c = cold_[id];
  c.pending = true;
  c.pending_emergency = emergency;
  c.escalation_deferred = false;  // the delay-once budget is per request
  c.requested_at = sim_.now();
  pending_insert(id);
  const Seconds patience =
      emergency ? params_.emergency_patience : params_.patience;
  c.escalation_deadline = sim_.now() + patience;
  ++requests_tally_;
  trace_.requests.push_back({sim_.now(), id, level_[id], emergency});

  if (c.escalation_event != kInvalidEvent) {
    sim_.cancel(c.escalation_event);
  }
  c.escalation_event = sim_.schedule_at(
      c.escalation_deadline, [this, id] { fire_escalation(id); });

  for (const auto& listener : request_listeners_) listener(id);
}

void World::fire_escalation(net::NodeId id) {
  NodeCold& c = cold_[id];
  c.escalation_event = kInvalidEvent;  // this event just fired
  if (!alive_mask_.test(id) || !c.pending) return;
  if (escalation_interceptor_ && !c.escalation_deferred) {
    const EscalationDecision decision = escalation_interceptor_(id);
    if (decision.action == EscalationAction::Drop) {
      // Uplink lost the report; the node never re-escalates this request.
      return;
    }
    if (decision.action == EscalationAction::Delay) {
      // Defer the report once.  The node's escalation_deadline is left
      // untouched: the tamper lives in the base-station reporting path, not
      // in the node's protocol state.  Never scheduled into the past.
      c.escalation_deferred = true;
      c.escalation_event =
          sim_.schedule_at(sim_.now() + std::max(0.0, decision.delay),
                           [this, id] { fire_escalation(id); });
      return;
    }
  }
  ++escalations_tally_;
  trace_.escalations.push_back({sim_.now(), id});
  WRSN_LOG(Debug) << "escalation for node " << id << " at t=" << sim_.now();
  for (const auto& listener : escalation_listeners_) listener(id);
}

void World::pending_insert(net::NodeId id) {
  const auto it =
      std::lower_bound(pending_ids_.begin(), pending_ids_.end(), id);
  WRSN_ASSERT(it == pending_ids_.end() || *it != id);
  pending_ids_.insert(it, id);
}

void World::pending_erase(net::NodeId id) {
  const auto it =
      std::lower_bound(pending_ids_.begin(), pending_ids_.end(), id);
  WRSN_ASSERT(it != pending_ids_.end() && *it == id);
  pending_ids_.erase(it);
}

void World::recompute_routing() {
  if (params_.update_mode == WorldUpdateMode::Reference) {
    recompute_routing_reference();
    return;
  }
  net::rebuild_routing_tree(network_, alive_mask_, params_.routing, routing_,
                            scratch_);
  refresh_loads_and_drains();
  apply_drain_changes();
}

void World::on_topology_change(net::NodeId dead) {
  if (params_.update_mode == WorldUpdateMode::Reference) {
    recompute_routing_reference();
    return;
  }
  // The repair resets the dead node's tree fields; capture the old parent
  // first — its ancestor chain loses the dead subtree's traffic.
  const net::NodeId old_parent = routing_.parent[dead];
  const bool was_reachable = routing_.reachable[dead];
  if (net::repair_routing_after_death(network_, alive_mask_, params_.routing,
                                      dead, routing_, scratch_,
                                      kRepairRebuildFraction)) {
    ++update_stats_.repairs;
    dirty_ids_.clear();
    if (was_reachable) {
      refresh_loads_and_drains_after_repair(dead, old_parent);
    }
    // An unreachable node routed no traffic, so its death changes no loads
    // and no drains: the dirty set stays empty.
    WRSN_OBS_OBSERVE(kNetRepairAffectedFraction,
                     cold_.empty() ? 0.0
                                   : double(dirty_ids_.size()) /
                                         double(cold_.size()));
    apply_drain_changes(dirty_ids_);
  } else {
    // Large blast radius: the repair declined; rebuild in place instead.
    net::rebuild_routing_tree(network_, alive_mask_, params_.routing, routing_,
                              scratch_);
    ++update_stats_.rebuilds;
    WRSN_OBS_OBSERVE(kNetRepairAffectedFraction, 1.0);
    refresh_loads_and_drains();
    apply_drain_changes();
  }
}

void World::refresh_loads_and_drains() {
  net::recompute_loads(network_, routing_, alive_mask_, loads_);
  net::recompute_drain_rates(network_, routing_, loads_, params_.drain,
                             drains_);
}

void World::refresh_loads_and_drains_after_repair(net::NodeId dead,
                                                  net::NodeId old_parent) {
  // O(affected): patch the loads of exactly the nodes whose aggregated
  // traffic could have changed, then recompute just their drains.  Unchanged
  // inputs give bitwise-unchanged outputs, so this matches a full refresh
  // exactly; apply_drain_changes then reschedules the strict subset whose
  // drain truly moved.
  net::update_loads_after_repair(network_, routing_, dead, old_parent,
                                 scratch_, loads_, dirty_ids_);
  const energy::RadioModel radio(params_.drain.radio);
  for (const net::NodeId id : dirty_ids_) {
    Watts drain = params_.drain.sensing_power;
    if (routing_.reachable[id]) {
      drain += radio.tx_power(loads_.tx_bps[id], routing_.uplink_distance[id]);
      drain += radio.rx_power(loads_.rx_bps[id]);
    }
    drains_[id] = drain;
  }
}

void World::apply_drain_changes() {
  // Only nodes whose recomputed drain differs get touched.  The comparison
  // is exact (bitwise): unaffected nodes' loads are summed in the same order
  // as a full rebuild (settle-order merge preserves it), so their drains come
  // out bit-identical and their pending events remain valid as-is.
  alive_mask_.for_each_set([&](std::size_t i) {
    const auto id = static_cast<net::NodeId>(i);
    if (drain_[id] == drains_[id]) return;
    resync(id);
    drain_[id] = drains_[id];
    reschedule(id);
    ++update_stats_.reschedules;
  });
}

void World::apply_drain_changes(const std::vector<net::NodeId>& candidates) {
  for (const net::NodeId id : candidates) {
    if (!alive_mask_.test(id)) continue;
    if (drain_[id] == drains_[id]) continue;
    resync(id);
    drain_[id] = drains_[id];
    reschedule(id);
    ++update_stats_.reschedules;
  }
}

void World::recompute_routing_reference() {
  // The seed code path, retained as the executable spec for the incremental
  // updater: fresh mask copy, full Dijkstra into fresh vectors, and an
  // unconditional resync+reschedule of every alive node.
  const Bitmap mask = alive_mask_;
  routing_ = net::build_routing_tree(network_, mask, params_.routing);
  loads_ = net::compute_loads(network_, routing_, mask);
  const std::vector<Watts> drains =
      net::compute_drain_rates(network_, routing_, loads_, params_.drain);

  for (net::NodeId id = 0; id < cold_.size(); ++id) {
    if (!mask.test(id)) continue;
    resync(id);
    drain_[id] = drains[id];
    reschedule(id);
    ++update_stats_.reschedules;
  }
  ++update_stats_.rebuilds;
}

}  // namespace wrsn::sim
