#include "sim/world.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace wrsn::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Slack applied when validating analytically-scheduled crossings, to absorb
// floating-point drift between the scheduled time and the extrapolated level.
constexpr Joules kLevelEpsilon = 1e-6;

// Above this fraction of reachable nodes in the dead node's routing subtree,
// a full in-place rebuild beats the repair.  The repair's restricted
// Dijkstra skips every settled survivor, so it stays cheaper than a rebuild
// until the subtree covers most of the tree (profiling the N=400 cascade
// bench put the crossover above one half; rebuilds there cost ~40 % of the
// cascade at a 0.25 threshold).
constexpr double kRepairRebuildFraction = 0.6;

}  // namespace

void WorldParams::validate() const {
  if (request_threshold <= 0.0 || request_threshold >= 1.0) {
    throw ConfigError("request_threshold must be in (0, 1)");
  }
  if (min_request_gap < 0.0) throw ConfigError("min_request_gap < 0");
  if (patience <= 0.0) throw ConfigError("patience must be > 0");
  if (charge_target_fraction <= request_threshold ||
      charge_target_fraction > 1.0) {
    throw ConfigError(
        "charge_target_fraction must be in (request_threshold, 1]");
  }
  if (benign_gain_mean <= 0.0 || benign_gain_mean > 1.0) {
    throw ConfigError("benign_gain_mean must be in (0, 1]");
  }
  if (benign_gain_cv < 0.0) throw ConfigError("benign_gain_cv < 0");
  if (initial_level_min <= 0.0 || initial_level_max > 1.0 ||
      initial_level_min > initial_level_max) {
    throw ConfigError("initial level range must satisfy 0 < min <= max <= 1");
  }
  if (emergency_fraction <= 0.0 || emergency_fraction >= request_threshold) {
    throw ConfigError(
        "emergency_fraction must be in (0, request_threshold)");
  }
  if (emergency_patience <= 0.0) throw ConfigError("emergency_patience <= 0");
  if (hardware_mtbf < 0.0) throw ConfigError("hardware_mtbf < 0");
  charging.validate();
  drain.radio.validate();
}

World::~World() {
  WRSN_OBS_ADD(kWorldDeaths, double(deaths_tally_));
  WRSN_OBS_ADD(kWorldRequests, double(requests_tally_));
  WRSN_OBS_ADD(kWorldEscalations, double(escalations_tally_));
  WRSN_OBS_ADD(kNetRoutingRepairs, double(update_stats_.repairs));
  WRSN_OBS_ADD(kNetRoutingRebuilds, double(update_stats_.rebuilds));
  WRSN_OBS_ADD(kNetDrainReschedules, double(update_stats_.reschedules));
}

World::World(Simulator& sim, net::Network network, const WorldParams& params,
             Rng rng)
    : sim_(sim),
      network_(std::move(network)),
      params_(params),
      charging_model_(params.charging),
      rng_(std::move(rng)) {
  params_.validate();

  const std::size_t n = network_.size();
  Rng init_rng = rng_.fork("init-levels");
  states_.reserve(n);
  for (const net::SensorSpec& spec : network_.nodes()) {
    const double frac =
        init_rng.uniform(params_.initial_level_min, params_.initial_level_max);
    states_.emplace_back(
        energy::Battery(spec.battery_capacity, frac * spec.battery_capacity));
    states_.back().sync_time = sim_.now();
    states_.back().believed = frac * spec.battery_capacity;
  }
  alive_count_ = states_.size();
  alive_mask_.assign(n, true);
  pending_ids_.reserve(n);
  dirty_ids_.reserve(n);

  // Pre-size the kernel slab/heap, the routing scratch, and the persistent
  // buffers so the steady-state death path never allocates.
  std::size_t edges = 0;
  for (net::NodeId id = 0; id < n; ++id) {
    edges += network_.neighbors(id).size();
  }
  scratch_.reserve(n, edges);
  sim_.reserve(5 * n + 64);
  drains_.reserve(n);

  // Background hardware failures: each node draws an exponential lifetime.
  if (params_.hardware_mtbf > 0.0) {
    Rng failure_rng = rng_.fork("hardware-failures");
    for (net::NodeId id = 0; id < states_.size(); ++id) {
      const Seconds at =
          sim_.now() + failure_rng.exponential(1.0 / params_.hardware_mtbf);
      states_[id].hardware_event =
          sim_.schedule_at(at, [this, id] { fire_hardware_failure(id); });
    }
  }

  recompute_routing();
}

World::NodeState& World::state(net::NodeId id) {
  WRSN_REQUIRE(id < states_.size(), "node id out of range");
  return states_[id];
}

const World::NodeState& World::state(net::NodeId id) const {
  WRSN_REQUIRE(id < states_.size(), "node id out of range");
  return states_[id];
}

bool World::alive(net::NodeId id) const { return state(id).alive; }

Joules World::level(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive) return 0.0;
  const Seconds dt = sim_.now() - s.sync_time;
  const Joules delta = net_drain(s) * dt;
  return std::clamp(s.battery.level() - delta, 0.0, s.battery.capacity());
}

double World::level_fraction(net::NodeId id) const {
  return level(id) / state(id).battery.capacity();
}

Joules World::believed_level(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive) return 0.0;
  const Seconds dt = sim_.now() - s.sync_time;
  return std::clamp(s.believed - s.drain * dt, 0.0, s.battery.capacity());
}

Watts World::drain_rate(net::NodeId id) const { return state(id).drain; }

Watts World::charge_rate(net::NodeId id) const { return state(id).charge; }

Seconds World::predicted_death(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive) return sim_.now();
  const Watts net = net_drain(s);
  if (net <= 0.0) return kInf;
  return sim_.now() + level(id) / net;
}

Seconds World::predicted_request(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive || s.pending || s.in_service) return kInf;
  const Joules threshold = params_.request_threshold * s.battery.capacity();
  const Joules believed = believed_level(id);
  if (believed <= threshold) {
    return std::max(sim_.now(), s.cooldown_until);
  }
  // The believed level declines at the node's measured consumption rate
  // (harvest is only credited at service end).
  if (s.drain <= 0.0) return kInf;
  const Seconds crossing = sim_.now() + (believed - threshold) / s.drain;
  return std::max(crossing, s.cooldown_until);
}

bool World::has_pending_request(net::NodeId id) const {
  return state(id).pending;
}

PendingRequest World::pending_request(net::NodeId id) const {
  const NodeState& s = state(id);
  WRSN_REQUIRE(s.alive && s.pending, "node has no pending request");
  return {id, s.requested_at, s.escalation_deadline, s.pending_emergency};
}

std::vector<PendingRequest> World::pending_requests() const {
  std::vector<PendingRequest> pending;
  pending.reserve(pending_ids_.size());
  for (const net::NodeId id : pending_ids_) {
    pending.push_back(pending_request(id));
  }
  return pending;
}

std::size_t World::sink_connected_count() const {
  return net::count_sink_connected(network_, alive_mask_);
}

Watts World::nominal_dc_power() const {
  return charging_model_.docked_dc_power();
}

Seconds World::planned_session_duration(Joules deficit) const {
  WRSN_REQUIRE(deficit >= 0.0, "negative deficit");
  return deficit / (nominal_dc_power() * params_.benign_gain_mean);
}

Joules World::expected_session_gain(Seconds duration) const {
  WRSN_REQUIRE(duration >= 0.0, "negative duration");
  return nominal_dc_power() * params_.benign_gain_mean * duration;
}

double World::draw_genuine_gain_factor() {
  // Clamp bounds sit ~2.6 sigma out, so the draw stays effectively
  // unbiased: E[factor] ~= benign_gain_mean, which is what keeps the
  // fleet-calibrated expectation honest for benign service.  Factors above
  // 1 are good-alignment sessions where harvest beats the mean-calibrated
  // rate; the charger meters its output, so a low factor just means a
  // longer stay, not a short-changed node.
  const double sigma = params_.benign_gain_mean * params_.benign_gain_cv;
  const double factor = rng_.normal(params_.benign_gain_mean, sigma);
  return std::clamp(factor, 0.4, 1.6);
}

bool World::set_charge_input(net::NodeId id, Watts dc) {
  WRSN_REQUIRE(dc >= 0.0, "negative charge input");
  NodeState& s = state(id);
  if (!s.alive) return false;
  resync(id);
  s.charge = dc;
  reschedule(id);
  return true;
}

void World::note_service_started(net::NodeId id) {
  NodeState& s = state(id);
  if (!s.alive) return;
  s.in_service = true;
  if (s.pending) {
    s.pending = false;
    s.pending_emergency = false;
    pending_erase(id);
    if (s.escalation_event != kInvalidEvent) {
      sim_.cancel(s.escalation_event);
      s.escalation_event = kInvalidEvent;
    }
  }
}

void World::note_service_ended(net::NodeId id, Joules expected,
                               Joules delivered) {
  WRSN_REQUIRE(expected >= 0.0 && delivered >= 0.0,
               "negative session energy");
  (void)delivered;  // only the trace sees the truth; the node cannot
  NodeState& s = state(id);
  s.in_service = false;
  if (!s.alive) return;
  s.cooldown_until = sim_.now() + params_.min_request_gap;
  resync(id);
  // The node trusts the service: it credits the fleet-calibrated EXPECTED
  // gain, whatever truly arrived.  Honest service keeps the belief near the
  // truth (expectations are unbiased); a spoofed session inflates it by the
  // whole expected gain — the node then schedules its next request far in
  // the future and dies silently first.
  s.believed = std::min(s.believed + expected, s.battery.capacity());
  reschedule(id);
}

void World::add_request_listener(std::function<void(net::NodeId)> listener) {
  request_listeners_.push_back(std::move(listener));
}

void World::set_request_handler(std::function<void(net::NodeId)> handler) {
  add_request_listener(std::move(handler));
}

void World::add_death_listener(std::function<void(net::NodeId)> listener) {
  death_listeners_.push_back(std::move(listener));
}

void World::add_escalation_listener(
    std::function<void(net::NodeId)> listener) {
  escalation_listeners_.push_back(std::move(listener));
}

void World::resync(net::NodeId id) {
  NodeState& s = state(id);
  const Seconds now = sim_.now();
  const Seconds dt = now - s.sync_time;
  if (dt > 0.0 && s.alive) {
    const Joules delta = net_drain(s) * dt;
    if (delta >= 0.0) {
      s.battery.discharge(delta);
    } else {
      s.battery.charge(-delta);  // clamped at capacity by the battery
    }
    // The node's own estimate drains at the consumption rate; harvested
    // energy is only credited when a service ends (note_service_ended).
    s.believed = std::max(0.0, s.believed - s.drain * dt);
  }
  s.sync_time = now;
}

void World::reschedule(net::NodeId id) {
  NodeState& s = state(id);
  if (!s.alive) return;
  WRSN_ASSERT(s.sync_time == sim_.now());

  // Death event.  Superseded events are cancelled at the kernel — O(1), and
  // the heap never accumulates version-dead tombstones.
  if (s.death_event != kInvalidEvent) {
    sim_.cancel(s.death_event);
    s.death_event = kInvalidEvent;
  }
  const Watts net = net_drain(s);
  if (net > 0.0) {
    const Seconds at = sim_.now() + s.battery.level() / net;
    s.death_event = sim_.schedule_at(at, [this, id] { fire_death(id); });
  }

  // Request-arming event (believed-level crossing).
  if (s.request_event != kInvalidEvent) {
    sim_.cancel(s.request_event);
    s.request_event = kInvalidEvent;
  }
  const Seconds req_at = predicted_request(id);
  if (req_at < kInf) {
    s.request_event =
        sim_.schedule_at(req_at, [this, id] { fire_request(id); });
  }

  // Hardware low-voltage comparator (true-level crossing).
  if (params_.emergency_enabled) {
    if (s.emergency_event != kInvalidEvent) {
      sim_.cancel(s.emergency_event);
      s.emergency_event = kInvalidEvent;
    }
    const Joules em_level = params_.emergency_fraction * s.battery.capacity();
    if (net > 0.0 && s.battery.level() > em_level) {
      const Seconds at = sim_.now() + (s.battery.level() - em_level) / net;
      s.emergency_event =
          sim_.schedule_at(at, [this, id] { fire_emergency(id); });
    } else if (s.battery.level() <= em_level && !s.pending && !s.in_service) {
      // The comparator output is level-triggered: it (re)asserts as soon as
      // the node may speak again, even straight out of a service cooldown.
      s.emergency_event =
          sim_.schedule_at(std::max(sim_.now(), s.cooldown_until),
                           [this, id] { fire_emergency(id); });
    }
  }
}

void World::retire_node(net::NodeId id) {
  NodeState& s = state(id);
  s.alive = false;
  s.charge = 0.0;
  alive_mask_[id] = false;
  --alive_count_;
  if (s.pending) pending_erase(id);
  // Cancel every event the node still owns; a dead node never fires again.
  for (EventId* ev : {&s.death_event, &s.request_event, &s.emergency_event,
                      &s.escalation_event, &s.hardware_event}) {
    if (*ev != kInvalidEvent) {
      sim_.cancel(*ev);
      *ev = kInvalidEvent;
    }
  }
}

void World::fire_death(net::NodeId id) {
  NodeState& s = state(id);
  s.death_event = kInvalidEvent;  // this event just fired
  if (!s.alive) return;
  resync(id);
  if (s.battery.level() > kLevelEpsilon) {
    // Rates changed between scheduling and firing; reschedule instead.
    reschedule(id);
    return;
  }

  retire_node(id);
  ++deaths_tally_;
  trace_.deaths.push_back({sim_.now(), id, s.pending});
  WRSN_LOG(Debug) << "node " << id << " died at t=" << sim_.now()
                  << (s.pending ? " (request outstanding)" : "");

  on_topology_change(id);
  for (const auto& listener : death_listeners_) listener(id);
}

void World::fire_hardware_failure(net::NodeId id) {
  NodeState& s = state(id);
  s.hardware_event = kInvalidEvent;  // this event just fired
  if (!s.alive) return;
  kill_node_hardware(id);
}

void World::kill_node_hardware(net::NodeId id) {
  NodeState& s = state(id);
  WRSN_ASSERT(s.alive);
  resync(id);
  s.battery.discharge(s.battery.level());  // component fault: node bricks
  retire_node(id);
  ++deaths_tally_;
  trace_.deaths.push_back({sim_.now(), id, s.pending});
  WRSN_LOG(Debug) << "node " << id << " hardware failure at t=" << sim_.now();
  on_topology_change(id);
  for (const auto& listener : death_listeners_) listener(id);
}

bool World::inject_hardware_failure(net::NodeId id) {
  NodeState& s = state(id);
  if (!s.alive) return false;
  kill_node_hardware(id);
  return true;
}

bool World::set_self_discharge(net::NodeId id, Watts power) {
  WRSN_REQUIRE(power >= 0.0, "negative self-discharge power");
  NodeState& s = state(id);
  if (!s.alive) return false;
  resync(id);
  s.self_discharge = power;
  reschedule(id);
  return true;
}

Watts World::self_discharge(net::NodeId id) const {
  return state(id).self_discharge;
}

void World::set_escalation_interceptor(
    std::function<EscalationDecision(net::NodeId)> interceptor) {
  escalation_interceptor_ = std::move(interceptor);
}

void World::fire_request(net::NodeId id) {
  NodeState& s = state(id);
  s.request_event = kInvalidEvent;  // this event just fired
  if (!s.alive || s.pending || s.in_service) return;
  if (sim_.now() < s.cooldown_until) return;
  resync(id);
  const Joules threshold = params_.request_threshold * s.battery.capacity();
  if (believed_level(id) > threshold + kLevelEpsilon) {
    reschedule(id);  // level rose (charging) before the event fired
    return;
  }
  issue_request(id, /*emergency=*/false);
}

void World::fire_emergency(net::NodeId id) {
  NodeState& s = state(id);
  s.emergency_event = kInvalidEvent;  // this event just fired
  if (!s.alive || s.in_service) return;
  if (sim_.now() < s.cooldown_until) {
    // Re-arm after the rate-limit gap: the comparator output is level-
    // triggered, so it re-asserts as soon as the node may speak again.
    s.emergency_event = sim_.schedule_at(
        s.cooldown_until, [this, id] { fire_emergency(id); });
    return;
  }
  resync(id);
  const Joules em_level = params_.emergency_fraction * s.battery.capacity();
  if (s.battery.level() > em_level + kLevelEpsilon) {
    reschedule(id);
    return;
  }
  if (s.pending) {
    // Upgrade the outstanding request to an emergency: tighten escalation.
    if (!s.pending_emergency) {
      s.pending_emergency = true;
      // Only tighten when the emergency deadline is actually earlier; the
      // original deadline may already be in the past (escalation fired long
      // ago on a starved request), and must not be rescheduled.
      const Seconds tightened = sim_.now() + params_.emergency_patience;
      if (tightened < s.escalation_deadline) {
        s.escalation_deadline = tightened;
        if (s.escalation_event != kInvalidEvent) {
          sim_.cancel(s.escalation_event);
        }
        s.escalation_event = sim_.schedule_at(
            s.escalation_deadline, [this, id] { fire_escalation(id); });
      }
      ++requests_tally_;
      trace_.requests.push_back(
          {sim_.now(), id, s.battery.level(), /*emergency=*/true});
      for (const auto& listener : request_listeners_) listener(id);
    }
    return;
  }
  issue_request(id, /*emergency=*/true);
}

void World::issue_request(net::NodeId id, bool emergency) {
  NodeState& s = state(id);
  s.pending = true;
  s.pending_emergency = emergency;
  s.escalation_deferred = false;  // the delay-once budget is per request
  s.requested_at = sim_.now();
  pending_insert(id);
  const Seconds patience =
      emergency ? params_.emergency_patience : params_.patience;
  s.escalation_deadline = sim_.now() + patience;
  ++requests_tally_;
  trace_.requests.push_back({sim_.now(), id, s.battery.level(), emergency});

  if (s.escalation_event != kInvalidEvent) {
    sim_.cancel(s.escalation_event);
  }
  s.escalation_event = sim_.schedule_at(
      s.escalation_deadline, [this, id] { fire_escalation(id); });

  for (const auto& listener : request_listeners_) listener(id);
}

void World::fire_escalation(net::NodeId id) {
  NodeState& s = state(id);
  s.escalation_event = kInvalidEvent;  // this event just fired
  if (!s.alive || !s.pending) return;
  if (escalation_interceptor_ && !s.escalation_deferred) {
    const EscalationDecision decision = escalation_interceptor_(id);
    if (decision.action == EscalationAction::Drop) {
      // Uplink lost the report; the node never re-escalates this request.
      return;
    }
    if (decision.action == EscalationAction::Delay) {
      // Defer the report once.  The node's escalation_deadline is left
      // untouched: the tamper lives in the base-station reporting path, not
      // in the node's protocol state.  Never scheduled into the past.
      s.escalation_deferred = true;
      s.escalation_event =
          sim_.schedule_at(sim_.now() + std::max(0.0, decision.delay),
                           [this, id] { fire_escalation(id); });
      return;
    }
  }
  ++escalations_tally_;
  trace_.escalations.push_back({sim_.now(), id});
  WRSN_LOG(Debug) << "escalation for node " << id << " at t=" << sim_.now();
  for (const auto& listener : escalation_listeners_) listener(id);
}

void World::pending_insert(net::NodeId id) {
  const auto it =
      std::lower_bound(pending_ids_.begin(), pending_ids_.end(), id);
  WRSN_ASSERT(it == pending_ids_.end() || *it != id);
  pending_ids_.insert(it, id);
}

void World::pending_erase(net::NodeId id) {
  const auto it =
      std::lower_bound(pending_ids_.begin(), pending_ids_.end(), id);
  WRSN_ASSERT(it != pending_ids_.end() && *it == id);
  pending_ids_.erase(it);
}

void World::recompute_routing() {
  if (params_.update_mode == WorldUpdateMode::Reference) {
    recompute_routing_reference();
    return;
  }
  net::rebuild_routing_tree(network_, alive_mask_, params_.routing, routing_,
                            scratch_);
  refresh_loads_and_drains();
  apply_drain_changes();
}

void World::on_topology_change(net::NodeId dead) {
  if (params_.update_mode == WorldUpdateMode::Reference) {
    recompute_routing_reference();
    return;
  }
  if (net::repair_routing_after_death(network_, alive_mask_, params_.routing,
                                      dead, routing_, scratch_,
                                      kRepairRebuildFraction)) {
    ++update_stats_.repairs;
    refresh_loads_and_drains_after_repair(dead);
    WRSN_OBS_OBSERVE(kNetRepairAffectedFraction,
                     states_.empty() ? 0.0
                                     : double(dirty_ids_.size()) /
                                           double(states_.size()));
    apply_drain_changes(dirty_ids_);
  } else {
    // Large blast radius: the repair declined; rebuild in place instead.
    net::rebuild_routing_tree(network_, alive_mask_, params_.routing, routing_,
                              scratch_);
    ++update_stats_.rebuilds;
    WRSN_OBS_OBSERVE(kNetRepairAffectedFraction, 1.0);
    refresh_loads_and_drains();
    apply_drain_changes();
  }
}

void World::refresh_loads_and_drains() {
  std::swap(loads_, prev_loads_);
  net::recompute_loads(network_, routing_, alive_mask_, loads_);
  net::recompute_drain_rates(network_, routing_, loads_, params_.drain,
                             drains_);
}

void World::refresh_loads_and_drains_after_repair(net::NodeId dead) {
  std::swap(loads_, prev_loads_);
  net::recompute_loads(network_, routing_, alive_mask_, loads_);

  // Recompute the drain only where its inputs may have changed: the repaired
  // set (scratch_.affected, whose tree fields moved) plus any node whose
  // aggregated loads differ from the previous update.  Unchanged inputs give
  // bitwise-unchanged outputs, so this matches the full recompute exactly.
  // A stale affected mask (repair short-circuited) only marks extra nodes
  // dirty, which recomputes — never changes — their values.
  const energy::RadioModel radio(params_.drain.radio);
  const std::size_t n = states_.size();
  const bool prev_valid =
      prev_loads_.tx_bps.size() == n && prev_loads_.rx_bps.size() == n;
  dirty_ids_.clear();
  for (net::NodeId id = 0; id < n; ++id) {
    const bool dirty = !prev_valid || id == dead ||
                       scratch_.affected[id] != 0 ||
                       loads_.tx_bps[id] != prev_loads_.tx_bps[id] ||
                       loads_.rx_bps[id] != prev_loads_.rx_bps[id];
    if (!dirty) continue;
    dirty_ids_.push_back(id);
    Watts drain = params_.drain.sensing_power;
    if (routing_.reachable[id]) {
      drain += radio.tx_power(loads_.tx_bps[id], routing_.uplink_distance[id]);
      drain += radio.rx_power(loads_.rx_bps[id]);
    }
    drains_[id] = drain;
  }
}

void World::apply_drain_changes() {
  // Only nodes whose recomputed drain differs get touched.  The comparison
  // is exact (bitwise): unaffected nodes' loads are summed in the same order
  // as a full rebuild (settle-order merge preserves it), so their drains come
  // out bit-identical and their pending events remain valid as-is.
  for (net::NodeId id = 0; id < states_.size(); ++id) {
    NodeState& s = states_[id];
    if (!s.alive) continue;
    if (s.drain == drains_[id]) continue;
    resync(id);
    s.drain = drains_[id];
    reschedule(id);
    ++update_stats_.reschedules;
  }
}

void World::apply_drain_changes(const std::vector<net::NodeId>& candidates) {
  for (const net::NodeId id : candidates) {
    NodeState& s = states_[id];
    if (!s.alive) continue;
    if (s.drain == drains_[id]) continue;
    resync(id);
    s.drain = drains_[id];
    reschedule(id);
    ++update_stats_.reschedules;
  }
}

void World::recompute_routing_reference() {
  // The seed code path, retained as the executable spec for the incremental
  // updater: fresh mask, full Dijkstra into fresh vectors, and an
  // unconditional resync+reschedule of every alive node.
  std::vector<bool> mask(states_.size());
  for (net::NodeId id = 0; id < states_.size(); ++id) {
    mask[id] = states_[id].alive;
  }
  routing_ = net::build_routing_tree(network_, mask, params_.routing);
  loads_ = net::compute_loads(network_, routing_, mask);
  const std::vector<Watts> drains =
      net::compute_drain_rates(network_, routing_, loads_, params_.drain);

  for (net::NodeId id = 0; id < states_.size(); ++id) {
    NodeState& s = states_[id];
    if (!s.alive) continue;
    resync(id);
    s.drain = drains[id];
    reschedule(id);
    ++update_stats_.reschedules;
  }
  ++update_stats_.rebuilds;
}

}  // namespace wrsn::sim
