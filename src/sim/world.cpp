#include "sim/world.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/topology.hpp"

namespace wrsn::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Slack applied when validating analytically-scheduled crossings, to absorb
// floating-point drift between the scheduled time and the extrapolated level.
constexpr Joules kLevelEpsilon = 1e-6;

}  // namespace

void WorldParams::validate() const {
  if (request_threshold <= 0.0 || request_threshold >= 1.0) {
    throw ConfigError("request_threshold must be in (0, 1)");
  }
  if (min_request_gap < 0.0) throw ConfigError("min_request_gap < 0");
  if (patience <= 0.0) throw ConfigError("patience must be > 0");
  if (charge_target_fraction <= request_threshold ||
      charge_target_fraction > 1.0) {
    throw ConfigError(
        "charge_target_fraction must be in (request_threshold, 1]");
  }
  if (benign_gain_mean <= 0.0 || benign_gain_mean > 1.0) {
    throw ConfigError("benign_gain_mean must be in (0, 1]");
  }
  if (benign_gain_cv < 0.0) throw ConfigError("benign_gain_cv < 0");
  if (initial_level_min <= 0.0 || initial_level_max > 1.0 ||
      initial_level_min > initial_level_max) {
    throw ConfigError("initial level range must satisfy 0 < min <= max <= 1");
  }
  if (emergency_fraction <= 0.0 || emergency_fraction >= request_threshold) {
    throw ConfigError(
        "emergency_fraction must be in (0, request_threshold)");
  }
  if (emergency_patience <= 0.0) throw ConfigError("emergency_patience <= 0");
  if (hardware_mtbf < 0.0) throw ConfigError("hardware_mtbf < 0");
  charging.validate();
  drain.radio.validate();
}

World::World(Simulator& sim, net::Network network, const WorldParams& params,
             Rng rng)
    : sim_(sim),
      network_(std::move(network)),
      params_(params),
      charging_model_(params.charging),
      rng_(std::move(rng)) {
  params_.validate();

  Rng init_rng = rng_.fork("init-levels");
  states_.reserve(network_.size());
  for (const net::SensorSpec& spec : network_.nodes()) {
    const double frac =
        init_rng.uniform(params_.initial_level_min, params_.initial_level_max);
    states_.emplace_back(
        energy::Battery(spec.battery_capacity, frac * spec.battery_capacity));
    states_.back().sync_time = sim_.now();
    states_.back().believed = frac * spec.battery_capacity;
  }
  alive_count_ = states_.size();

  // Background hardware failures: each node draws an exponential lifetime.
  if (params_.hardware_mtbf > 0.0) {
    Rng failure_rng = rng_.fork("hardware-failures");
    for (net::NodeId id = 0; id < states_.size(); ++id) {
      const Seconds at =
          sim_.now() + failure_rng.exponential(1.0 / params_.hardware_mtbf);
      sim_.schedule_at(at, [this, id] { fire_hardware_failure(id); });
    }
  }

  recompute_routing();
}

void World::fire_hardware_failure(net::NodeId id) {
  NodeState& s = state(id);
  if (!s.alive) return;
  resync(id);
  s.battery.discharge(s.battery.level());  // component fault: node bricks
  s.alive = false;
  s.charge = 0.0;
  --alive_count_;
  ++s.death_version;
  ++s.request_version;
  ++s.emergency_version;
  ++s.escalation_version;
  trace_.deaths.push_back({sim_.now(), id, s.pending});
  log(LogLevel::Debug) << "node " << id << " hardware failure at t="
                       << sim_.now();
  recompute_routing();
  for (const auto& listener : death_listeners_) listener(id);
}

World::NodeState& World::state(net::NodeId id) {
  WRSN_REQUIRE(id < states_.size(), "node id out of range");
  return states_[id];
}

const World::NodeState& World::state(net::NodeId id) const {
  WRSN_REQUIRE(id < states_.size(), "node id out of range");
  return states_[id];
}

bool World::alive(net::NodeId id) const { return state(id).alive; }

Joules World::level(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive) return 0.0;
  const Seconds dt = sim_.now() - s.sync_time;
  const Joules delta = net_drain(s) * dt;
  return std::clamp(s.battery.level() - delta, 0.0, s.battery.capacity());
}

double World::level_fraction(net::NodeId id) const {
  return level(id) / state(id).battery.capacity();
}

Joules World::believed_level(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive) return 0.0;
  const Seconds dt = sim_.now() - s.sync_time;
  return std::clamp(s.believed - s.drain * dt, 0.0, s.battery.capacity());
}

Watts World::drain_rate(net::NodeId id) const { return state(id).drain; }

Watts World::charge_rate(net::NodeId id) const { return state(id).charge; }

Seconds World::predicted_death(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive) return sim_.now();
  const Watts net = net_drain(s);
  if (net <= 0.0) return kInf;
  return sim_.now() + level(id) / net;
}

Seconds World::predicted_request(net::NodeId id) const {
  const NodeState& s = state(id);
  if (!s.alive || s.pending || s.in_service) return kInf;
  const Joules threshold = params_.request_threshold * s.battery.capacity();
  const Joules believed = believed_level(id);
  if (believed <= threshold) {
    return std::max(sim_.now(), s.cooldown_until);
  }
  // The believed level declines at the node's measured consumption rate
  // (harvest is only credited at service end).
  if (s.drain <= 0.0) return kInf;
  const Seconds crossing = sim_.now() + (believed - threshold) / s.drain;
  return std::max(crossing, s.cooldown_until);
}

bool World::has_pending_request(net::NodeId id) const {
  return state(id).pending;
}

std::vector<PendingRequest> World::pending_requests() const {
  std::vector<PendingRequest> pending;
  for (net::NodeId id = 0; id < states_.size(); ++id) {
    const NodeState& s = states_[id];
    if (s.alive && s.pending) {
      pending.push_back(
          {id, s.requested_at, s.escalation_deadline, s.pending_emergency});
    }
  }
  return pending;
}

std::size_t World::sink_connected_count() const {
  std::vector<bool> mask(states_.size());
  for (net::NodeId id = 0; id < states_.size(); ++id) {
    mask[id] = states_[id].alive;
  }
  return net::count_sink_connected(network_, mask);
}

Watts World::nominal_dc_power() const {
  return charging_model_.docked_dc_power();
}

Seconds World::planned_session_duration(Joules deficit) const {
  WRSN_REQUIRE(deficit >= 0.0, "negative deficit");
  return deficit / (nominal_dc_power() * params_.benign_gain_mean);
}

Joules World::expected_session_gain(Seconds duration) const {
  WRSN_REQUIRE(duration >= 0.0, "negative duration");
  return nominal_dc_power() * params_.benign_gain_mean * duration;
}

double World::draw_genuine_gain_factor() {
  // Clamp bounds sit ~2.6 sigma out, so the draw stays effectively
  // unbiased: E[factor] ~= benign_gain_mean, which is what keeps the
  // fleet-calibrated expectation honest for benign service.  Factors above
  // 1 are good-alignment sessions where harvest beats the mean-calibrated
  // rate; the charger meters its output, so a low factor just means a
  // longer stay, not a short-changed node.
  const double sigma = params_.benign_gain_mean * params_.benign_gain_cv;
  const double factor = rng_.normal(params_.benign_gain_mean, sigma);
  return std::clamp(factor, 0.4, 1.6);
}

bool World::set_charge_input(net::NodeId id, Watts dc) {
  WRSN_REQUIRE(dc >= 0.0, "negative charge input");
  NodeState& s = state(id);
  if (!s.alive) return false;
  resync(id);
  s.charge = dc;
  reschedule(id);
  return true;
}

void World::note_service_started(net::NodeId id) {
  NodeState& s = state(id);
  if (!s.alive) return;
  s.in_service = true;
  if (s.pending) {
    s.pending = false;
    s.pending_emergency = false;
    ++s.escalation_version;  // cancel the escalation timer
  }
}

void World::note_service_ended(net::NodeId id, Joules expected,
                               Joules delivered) {
  WRSN_REQUIRE(expected >= 0.0 && delivered >= 0.0,
               "negative session energy");
  (void)delivered;  // only the trace sees the truth; the node cannot
  NodeState& s = state(id);
  s.in_service = false;
  if (!s.alive) return;
  s.cooldown_until = sim_.now() + params_.min_request_gap;
  resync(id);
  // The node trusts the service: it credits the fleet-calibrated EXPECTED
  // gain, whatever truly arrived.  Honest service keeps the belief near the
  // truth (expectations are unbiased); a spoofed session inflates it by the
  // whole expected gain — the node then schedules its next request far in
  // the future and dies silently first.
  s.believed = std::min(s.believed + expected, s.battery.capacity());
  reschedule(id);
}

void World::add_request_listener(std::function<void(net::NodeId)> listener) {
  request_listeners_.push_back(std::move(listener));
}

void World::set_request_handler(std::function<void(net::NodeId)> handler) {
  add_request_listener(std::move(handler));
}

void World::add_death_listener(std::function<void(net::NodeId)> listener) {
  death_listeners_.push_back(std::move(listener));
}

void World::add_escalation_listener(
    std::function<void(net::NodeId)> listener) {
  escalation_listeners_.push_back(std::move(listener));
}

void World::resync(net::NodeId id) {
  NodeState& s = state(id);
  const Seconds now = sim_.now();
  const Seconds dt = now - s.sync_time;
  if (dt > 0.0 && s.alive) {
    const Joules delta = net_drain(s) * dt;
    if (delta >= 0.0) {
      s.battery.discharge(delta);
    } else {
      s.battery.charge(-delta);  // clamped at capacity by the battery
    }
    // The node's own estimate drains at the consumption rate; harvested
    // energy is only credited when a service ends (note_service_ended).
    s.believed = std::max(0.0, s.believed - s.drain * dt);
  }
  s.sync_time = now;
}

void World::reschedule(net::NodeId id) {
  NodeState& s = state(id);
  if (!s.alive) return;
  WRSN_ASSERT(s.sync_time == sim_.now());

  // Death event.
  const std::uint64_t death_ver = ++s.death_version;
  const Watts net = net_drain(s);
  if (net > 0.0) {
    const Seconds at = sim_.now() + s.battery.level() / net;
    sim_.schedule_at(at, [this, id, death_ver] { fire_death(id, death_ver); });
  }

  // Request-arming event (believed-level crossing).
  const std::uint64_t req_ver = ++s.request_version;
  const Seconds req_at = predicted_request(id);
  if (req_at < kInf) {
    sim_.schedule_at(req_at,
                     [this, id, req_ver] { fire_request(id, req_ver); });
  }

  // Hardware low-voltage comparator (true-level crossing).
  if (params_.emergency_enabled) {
    const std::uint64_t em_ver = ++s.emergency_version;
    const Joules em_level = params_.emergency_fraction * s.battery.capacity();
    if (net > 0.0 && s.battery.level() > em_level) {
      const Seconds at = sim_.now() + (s.battery.level() - em_level) / net;
      sim_.schedule_at(at,
                       [this, id, em_ver] { fire_emergency(id, em_ver); });
    } else if (s.battery.level() <= em_level && !s.pending && !s.in_service) {
      // The comparator output is level-triggered: it (re)asserts as soon as
      // the node may speak again, even straight out of a service cooldown.
      sim_.schedule_at(std::max(sim_.now(), s.cooldown_until),
                       [this, id, em_ver] { fire_emergency(id, em_ver); });
    }
  }
}

void World::fire_death(net::NodeId id, std::uint64_t version) {
  NodeState& s = state(id);
  if (!s.alive || version != s.death_version) return;
  resync(id);
  if (s.battery.level() > kLevelEpsilon) {
    // Rates changed between scheduling and firing; reschedule instead.
    reschedule(id);
    return;
  }

  s.alive = false;
  s.charge = 0.0;
  --alive_count_;
  ++s.death_version;
  ++s.request_version;
  ++s.emergency_version;
  ++s.escalation_version;

  trace_.deaths.push_back({sim_.now(), id, s.pending});
  log(LogLevel::Debug) << "node " << id << " died at t=" << sim_.now()
                       << (s.pending ? " (request outstanding)" : "");

  recompute_routing();
  for (const auto& listener : death_listeners_) listener(id);
}

void World::fire_request(net::NodeId id, std::uint64_t version) {
  NodeState& s = state(id);
  if (!s.alive || s.pending || s.in_service || version != s.request_version) {
    return;
  }
  if (sim_.now() < s.cooldown_until) return;
  resync(id);
  const Joules threshold = params_.request_threshold * s.battery.capacity();
  if (believed_level(id) > threshold + kLevelEpsilon) {
    reschedule(id);  // level rose (charging) before the event fired
    return;
  }
  issue_request(id, /*emergency=*/false);
}

void World::fire_emergency(net::NodeId id, std::uint64_t version) {
  NodeState& s = state(id);
  if (!s.alive || s.in_service || version != s.emergency_version) return;
  if (sim_.now() < s.cooldown_until) {
    // Re-arm after the rate-limit gap: the comparator output is level-
    // triggered, so it re-asserts as soon as the node may speak again.
    const std::uint64_t em_ver = s.emergency_version;
    sim_.schedule_at(s.cooldown_until,
                     [this, id, em_ver] { fire_emergency(id, em_ver); });
    return;
  }
  resync(id);
  const Joules em_level = params_.emergency_fraction * s.battery.capacity();
  if (s.battery.level() > em_level + kLevelEpsilon) {
    reschedule(id);
    return;
  }
  if (s.pending) {
    // Upgrade the outstanding request to an emergency: tighten escalation.
    if (!s.pending_emergency) {
      s.pending_emergency = true;
      s.escalation_deadline =
          std::min(s.escalation_deadline,
                   sim_.now() + params_.emergency_patience);
      const std::uint64_t esc_ver = ++s.escalation_version;
      sim_.schedule_at(s.escalation_deadline, [this, id, esc_ver] {
        fire_escalation(id, esc_ver);
      });
      trace_.requests.push_back(
          {sim_.now(), id, s.battery.level(), /*emergency=*/true});
      for (const auto& listener : request_listeners_) listener(id);
    }
    return;
  }
  issue_request(id, /*emergency=*/true);
}

void World::issue_request(net::NodeId id, bool emergency) {
  NodeState& s = state(id);
  s.pending = true;
  s.pending_emergency = emergency;
  s.requested_at = sim_.now();
  const Seconds patience =
      emergency ? params_.emergency_patience : params_.patience;
  s.escalation_deadline = sim_.now() + patience;
  trace_.requests.push_back({sim_.now(), id, s.battery.level(), emergency});

  const std::uint64_t esc_ver = ++s.escalation_version;
  sim_.schedule_at(s.escalation_deadline,
                   [this, id, esc_ver] { fire_escalation(id, esc_ver); });

  for (const auto& listener : request_listeners_) listener(id);
}

void World::fire_escalation(net::NodeId id, std::uint64_t version) {
  NodeState& s = state(id);
  if (!s.alive || !s.pending || version != s.escalation_version) return;
  trace_.escalations.push_back({sim_.now(), id});
  log(LogLevel::Debug) << "escalation for node " << id
                       << " at t=" << sim_.now();
  for (const auto& listener : escalation_listeners_) listener(id);
}

void World::recompute_routing() {
  std::vector<bool> mask(states_.size());
  for (net::NodeId id = 0; id < states_.size(); ++id) {
    mask[id] = states_[id].alive;
  }
  routing_ = net::build_routing_tree(network_, mask, params_.routing);
  loads_ = net::compute_loads(network_, routing_, mask);
  const std::vector<Watts> drains =
      net::compute_drain_rates(network_, routing_, loads_, params_.drain);

  for (net::NodeId id = 0; id < states_.size(); ++id) {
    NodeState& s = states_[id];
    if (!s.alive) continue;
    resync(id);
    s.drain = drains[id];
    reschedule(id);
  }
}

}  // namespace wrsn::sim
