// Discrete-event simulation kernel.
//
// A minimal, deterministic event loop: events are (time, sequence) ordered,
// so same-time events fire in scheduling order and runs are exactly
// reproducible.  Cancellation is by id; cancelled events are dropped lazily
// when they reach the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>

#include "common/units.hpp"

namespace wrsn::sim {

using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Deterministic single-threaded event loop.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time [s].
  Seconds now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now); returns a cancellable id.
  EventId schedule_at(Seconds at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId schedule_in(Seconds delay, std::function<void()> fn);

  /// Cancels a pending event; returns false — with no state change — if the
  /// id already fired, was already cancelled, or was never scheduled (safe
  /// to call either way).
  bool cancel(EventId id);

  /// Runs events with time <= `until`, then advances the clock to `until`.
  void run_until(Seconds until);

  /// Runs until the queue is empty.
  void run_all();

  /// Fires the single earliest event; returns false if the queue is empty.
  bool step();

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& rhs) const {
      if (time != rhs.time) return time > rhs.time;
      return seq > rhs.seq;
    }
  };

  bool pop_and_run();

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  /// Ids scheduled but not yet fired or cancelled.  Guards `cancel` against
  /// dead or unknown ids, so `cancelled_` (the lazy-deletion tombstones)
  /// only ever holds ids still sitting in the heap.
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace wrsn::sim
