// Discrete-event simulation kernel.
//
// A minimal, deterministic event loop: events are (time, sequence) ordered,
// so same-time events fire in scheduling order and runs are exactly
// reproducible.
//
// Storage layout (the death-cascade hot path schedules and cancels a handful
// of events per affected node, so this is allocation- and hash-free):
//   * Event records live in a slab of reusable slots; an EventId encodes
//     (slot index, generation).  Cancellation bumps the slot generation —
//     O(1), no hashing — and any heap entry carrying the old generation is a
//     tombstone that is dropped lazily.
//   * The ready queue is a 4-ary implicit heap of POD entries keyed by
//     (time, seq); callbacks stay in the slab, so heap moves copy 24 bytes.
//   * When more than half the heap is tombstones, the heap is compacted in
//     place (filter + heapify), bounding memory and pop cost.
//   * Callbacks are type-erased into EventCallback, which stores small
//     closures inline (no per-event heap allocation; larger ones fall back
//     to the heap transparently).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace wrsn::sim {

using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Move-only type-erased `void()` callable with inline storage for small
/// closures.  Event callbacks capture a few words (object pointer, node id,
/// version), so the common case never touches the allocator.
class EventCallback {
 public:
  /// Inline storage size [bytes]; closures up to this size are stored
  /// in place, larger ones are boxed on the heap.
  static constexpr std::size_t kInlineCapacity = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                !std::is_same_v<std::decay_t<F>, std::function<void()>> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  /// std::function interop: an empty std::function yields an empty callback
  /// (so null-callback preconditions keep working for legacy callers).
  EventCallback(std::function<void()> fn) {  // NOLINT(google-explicit-constructor)
    if (fn) emplace(std::move(fn));
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = boxed_ops<D>();
    }
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
        [](void* dst, void* src) {
          D* from = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*from));
          from->~D();
        },
        [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }};
    return &ops;
  }

  template <typename D>
  static const Ops* boxed_ops() {
    static constexpr Ops ops{
        [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
        [](void* dst, void* src) {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); }};
    return &ops;
  }

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// Deterministic single-threaded event loop.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  /// Flushes the kernel tallies (events scheduled/fired/cancelled, heap
  /// peak, compactions) to the installed obs registry in one shot — the
  /// per-event paths are too hot for a registry write each.
  ~Simulator();

  /// Current simulation time [s].
  Seconds now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now); returns a cancellable id.
  /// Ids are never reused: a slot that is recycled gets a fresh generation,
  /// so stale ids from fired or cancelled events can never hit a newer event.
  EventId schedule_at(Seconds at, EventCallback fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId schedule_in(Seconds delay, EventCallback fn);

  /// Cancels a pending event in O(1); returns false — with no state change —
  /// if the id already fired, was already cancelled, or was never scheduled
  /// (safe to call either way).
  bool cancel(EventId id);

  /// Runs events with time <= `until`, then advances the clock to `until`.
  void run_until(Seconds until);

  /// Runs until the queue is empty.
  void run_all();

  /// Fires the single earliest event; returns false if the queue is empty.
  bool step();

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_; }

  /// Pre-sizes the slab, heap, and free list so a workload with at most
  /// `capacity` concurrently pending events never allocates after this call.
  void reserve(std::size_t capacity);

  // Introspection for tests and benches.
  /// Heap entries including tombstones of cancelled events.
  std::size_t heap_size() const { return heap_.size(); }
  /// Tombstones currently in the heap (always <= heap_size() / 2 + 1 after
  /// a cancel, thanks to compaction).
  std::size_t stale_entries() const { return stale_; }
  /// Number of slab slots ever allocated (peak concurrent events).
  std::size_t slab_size() const { return slots_.size(); }

 private:
  struct Slot {
    EventCallback fn;
    std::uint32_t gen = 0;
    bool scheduled = false;
  };

  /// POD heap entry; the generation detects tombstones without hashing.
  struct HeapEntry {
    Seconds time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  bool entry_stale(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  /// Returns the slot to the free list and bumps its generation, killing
  /// every outstanding id and heap tombstone that still references it.
  void release_slot(std::uint32_t idx) {
    Slot& slot = slots_[idx];
    slot.fn.reset();
    slot.scheduled = false;
    ++slot.gen;
    free_.push_back(idx);
  }

  void heap_push(const HeapEntry& entry);
  void heap_pop_front();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Drops all tombstones and re-heapifies in place.
  void compact();

  bool pop_and_run();

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t heap_peak_ = 0;
  std::size_t live_ = 0;
  std::size_t stale_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
};

}  // namespace wrsn::sim
