#include "sim/simulator.hpp"

#include "common/check.hpp"

namespace wrsn::sim {

EventId Simulator::schedule_at(Seconds at, std::function<void()> fn) {
  WRSN_REQUIRE(at >= now_, "cannot schedule into the past");
  WRSN_REQUIRE(static_cast<bool>(fn), "null event callback");
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId Simulator::schedule_in(Seconds delay, std::function<void()> fn) {
  WRSN_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // fired, cancelled, or unknown
  cancelled_.insert(id);
  return true;
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (cancelled_.erase(entry.id) > 0) continue;
    WRSN_ASSERT(entry.time >= now_);
    live_.erase(entry.id);
    now_ = entry.time;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Seconds until) {
  WRSN_REQUIRE(until >= now_, "cannot run backwards");
  while (!queue_.empty()) {
    // Peek past cancelled entries to find the next live event time.
    if (cancelled_.erase(queue_.top().id) > 0) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > until) break;
    pop_and_run();
  }
  now_ = until;
}

void Simulator::run_all() {
  while (pop_and_run()) {
  }
}

bool Simulator::step() { return pop_and_run(); }

}  // namespace wrsn::sim
