#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace wrsn::sim {

Simulator::~Simulator() {
  // One-shot flush of the kernel tallies.  `next_seq_` increments on every
  // schedule and `executed_` on every fire, so the hot paths pay only plain
  // member updates; the registry sees the totals when the kernel dies
  // (while the trial's ScopedRegistry is still installed).
  WRSN_OBS_ADD(kSimEventsScheduled, double(next_seq_));
  WRSN_OBS_ADD(kSimEventsFired, double(executed_));
  WRSN_OBS_ADD(kSimEventsCancelled, double(cancelled_));
  WRSN_OBS_ADD(kSimHeapCompactions, double(compactions_));
  WRSN_OBS_GAUGE_MAX(kSimHeapPeak, double(heap_peak_));
}

EventId Simulator::schedule_at(Seconds at, EventCallback fn) {
  WRSN_REQUIRE(at >= now_, "cannot schedule into the past");
  WRSN_REQUIRE(static_cast<bool>(fn), "null event callback");

  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    WRSN_REQUIRE(slots_.size() < 0xffffffffull, "event slab exhausted");
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[idx];
  WRSN_ASSERT(!slot.scheduled);
  slot.fn = std::move(fn);
  slot.scheduled = true;

  heap_push(HeapEntry{at, next_seq_++, idx, slot.gen});
  ++live_;
  heap_peak_ = std::max(heap_peak_, heap_.size());
  return make_id(idx, slot.gen);
}

EventId Simulator::schedule_in(Seconds delay, EventCallback fn) {
  WRSN_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint64_t low = id & 0xffffffffull;
  if (low == 0) return false;  // kInvalidEvent
  const auto idx = static_cast<std::uint32_t>(low - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;  // never scheduled
  Slot& slot = slots_[idx];
  if (!slot.scheduled || slot.gen != gen) return false;  // fired or cancelled

  release_slot(idx);  // generation bump turns the heap entry into a tombstone
  --live_;
  ++stale_;
  ++cancelled_;
  if (stale_ * 2 > heap_.size()) compact();
  return true;
}

bool Simulator::pop_and_run() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    heap_pop_front();
    if (entry_stale(top)) {
      --stale_;
      continue;
    }
    WRSN_ASSERT(top.time >= now_);
    // Move the callback out and free the slot *before* invoking, so the
    // callback can schedule new events (possibly into this very slot) and
    // a cancel of the fired id reports false instead of hitting a reuse.
    EventCallback fn = std::move(slots_[top.slot].fn);
    release_slot(top.slot);
    --live_;
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Seconds until) {
  WRSN_REQUIRE(until >= now_, "cannot run backwards");
  while (!heap_.empty()) {
    // Peek past tombstones to find the next live event time.
    if (entry_stale(heap_.front())) {
      heap_pop_front();
      --stale_;
      continue;
    }
    if (heap_.front().time > until) break;
    pop_and_run();
  }
  now_ = until;
}

void Simulator::run_all() {
  while (pop_and_run()) {
  }
}

bool Simulator::step() { return pop_and_run(); }

void Simulator::reserve(std::size_t capacity) {
  slots_.reserve(capacity);
  free_.reserve(capacity);
  // Compaction keeps tombstones at no more than half the heap, so twice the
  // live capacity (plus one for the in-flight push) is a steady-state bound.
  heap_.reserve(2 * capacity + 1);
}

void Simulator::heap_push(const HeapEntry& entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

void Simulator::heap_pop_front() {
  WRSN_ASSERT(!heap_.empty());
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void Simulator::sift_up(std::size_t i) {
  const HeapEntry item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry item = heap_[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], item)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

void Simulator::compact() {
  ++compactions_;
  std::size_t keep = 0;
  for (const HeapEntry& entry : heap_) {
    if (!entry_stale(entry)) heap_[keep++] = entry;
  }
  heap_.resize(keep);
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_down(i);
    }
  }
  stale_ = 0;
}

}  // namespace wrsn::sim
