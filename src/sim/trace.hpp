// Simulation trace: the ground-truth record every detector, metric, and
// bench consumes.
//
// Records carry both the observable view (what a node or the base station
// could measure) and the ground truth (session kind); detectors must only
// read the observable fields — tests enforce this by construction, since the
// detector APIs take the observable projection.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"

namespace wrsn::sim {

/// Why a charging session ran.
enum class SessionKind {
  Genuine,  ///< honest charging: harvested DC follows the benign model
  Spoofed,  ///< CSA phase-cancelled session: ~zero harvested DC
};

/// A node asking the charging service for energy.
struct RequestRecord {
  Seconds time = 0.0;
  net::NodeId node = net::kInvalidNode;
  Joules level_at_request = 0.0;
  /// True when issued by the hardware low-voltage comparator defense.
  bool emergency = false;
};

/// One completed (or truncated) charging session.
struct SessionRecord {
  net::NodeId node = net::kInvalidNode;
  Seconds start = 0.0;
  Seconds end = 0.0;
  SessionKind kind = SessionKind::Genuine;  ///< ground truth, not observable

  /// Energy the node/BS expects from a nominal session of this duration [J].
  Joules expected_gain = 0.0;
  /// Energy actually stored in the battery [J].
  Joules delivered = 0.0;
  /// RF power observed at the node's communication antenna during the
  /// session [W] — what an RSSI check sees.
  Watts rf_observed = 0.0;
  /// RF power a neighbouring node probing the session would measure [W] —
  /// what the neighbourhood-voting detector sees.
  Watts rf_neighbor_probe = 0.0;
  /// Distance from the served node to that probing neighbour [m];
  /// +inf when no alive neighbour exists.
  Meters nearest_probe_distance = 0.0;
  /// Energy the charger radiated during the session [J] (depot accounting).
  Joules radiated = 0.0;
};

/// A node exhausting its battery.
struct DeathRecord {
  Seconds time = 0.0;
  net::NodeId node = net::kInvalidNode;
  /// True if the node had an unserved request outstanding when it died —
  /// the strongest base-station-visible indictment of the charging service.
  bool request_outstanding = false;
};

/// The base station noticing a request unserved past the patience deadline.
struct EscalationRecord {
  Seconds time = 0.0;
  net::NodeId node = net::kInvalidNode;
};

/// Append-only event log of one simulation run.
struct Trace {
  std::vector<RequestRecord> requests;
  std::vector<SessionRecord> sessions;
  std::vector<DeathRecord> deaths;
  std::vector<EscalationRecord> escalations;

  void clear() {
    requests.clear();
    sessions.clear();
    deaths.clear();
    escalations.clear();
  }
};

}  // namespace wrsn::sim
