#include "svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/check.hpp"

namespace wrsn::svc {
namespace {

// ---------------------------------------------------------------------------
// fd helpers: EINTR-safe, MSG_NOSIGNAL so a vanished peer surfaces as an
// error return instead of SIGPIPE.
// ---------------------------------------------------------------------------

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= std::size_t(n);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // orderly EOF
    p += n;
    size -= std::size_t(n);
  }
  return true;
}

/// Reads until '\n' (exclusive), carrying leftovers across calls in `buffer`.
/// Returns false on EOF/error before a full line arrives.
bool read_line(int fd, std::string& buffer, std::string& line) {
  while (true) {
    if (const std::size_t nl = buffer.find('\n'); nl != std::string::npos) {
      line.assign(buffer, 0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    if (buffer.size() > kMaxFrameBytes) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buffer.append(chunk, std::size_t(n));
  }
}

bool write_frame(int fd, const std::string& payload) {
  std::uint32_t size = std::uint32_t(payload.size());
  char prefix[4];
  for (int i = 0; i < 4; ++i) prefix[i] = char((size >> (8 * i)) & 0xff);
  return write_all(fd, prefix, sizeof(prefix)) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload) {
  unsigned char prefix[4];
  if (!read_exact(fd, prefix, sizeof(prefix))) return false;
  const std::uint32_t size = std::uint32_t(prefix[0]) |
                             std::uint32_t(prefix[1]) << 8 |
                             std::uint32_t(prefix[2]) << 16 |
                             std::uint32_t(prefix[3]) << 24;
  if (size > kMaxFrameBytes) return false;
  payload.resize(size);
  return size == 0 || read_exact(fd, payload.data(), size);
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("connect(" + path +
                             ") failed: " + std::strerror(errno));
  }
  return fd;
}

/// Serves one decoded request: parse errors become kInvalid responses with
/// the offending id echoed, never dropped connections.
WireResponse serve_request(MissionService& service, const WireRequest& wire) {
  WireResponse reply;
  reply.id = wire.id;
  try {
    const MissionRequest request = to_mission_request(wire);
    reply.response = service.submit(request);
  } catch (const std::exception&) {
    reply.response.status = MissionStatus::kInvalid;
    reply.response.route = MissionRoute::kNone;
  }
  return reply;
}

}  // namespace

MissionServer::MissionServer(MissionService& service, std::string socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());  // stale socket from a crashed server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen(" + socket_path_ +
                             ") failed: " + why);
  }
}

MissionServer::~MissionServer() { stop(); }

void MissionServer::start() {
  WRSN_REQUIRE(listen_fd_ >= 0, "server already stopped");
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void MissionServer::stop() {
  running_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close() alone does not
    // reliably on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_m_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  ::unlink(socket_path_.c_str());
}

void MissionServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_m_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void MissionServer::serve_connection(int fd) {
  // Mode detection: peek at the first byte.  '{' starts a JSON line; 'W'
  // starts the "WRB1" magic.
  char first = 0;
  if (read_exact(fd, &first, 1)) {
    if (first == '{') {
      serve_json(fd, std::string(1, first));
    } else if (first == kBinaryMagic[0]) {
      char rest[3];
      if (read_exact(fd, rest, sizeof(rest)) &&
          std::string_view(rest, 3) == kBinaryMagic.substr(1)) {
        serve_binary(fd);
      }
    }
    // Anything else: garbage connection, just drop it.
  }
  ::close(fd);
}

void MissionServer::serve_json(int fd, std::string initial) {
  std::string buffer = std::move(initial);
  std::string line, error;
  while (read_line(fd, buffer, line)) {
    if (line.empty()) continue;
    WireRequest wire;
    WireResponse reply;
    if (decode_request_json(line, wire, error)) {
      reply = serve_request(service_, wire);
    } else {
      reply.response.status = MissionStatus::kInvalid;
    }
    const std::string out = encode_response_json(reply) + '\n';
    if (!write_all(fd, out.data(), out.size())) break;
  }
}

void MissionServer::serve_binary(int fd) {
  std::string payload, out, error;
  while (read_frame(fd, payload)) {
    WireRequest wire;
    WireResponse reply;
    if (decode_request_frame(payload, wire, error)) {
      reply = serve_request(service_, wire);
    } else {
      reply.response.status = MissionStatus::kInvalid;
    }
    encode_response_frame(reply, out);
    if (!write_frame(fd, out)) break;
  }
}

MissionClient::MissionClient(const std::string& socket_path, bool binary)
    : fd_(connect_unix(socket_path)), binary_(binary) {
  if (binary_ &&
      !write_all(fd_, kBinaryMagic.data(), kBinaryMagic.size())) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("failed to send protocol magic");
  }
}

MissionClient::~MissionClient() {
  if (fd_ >= 0) ::close(fd_);
}

MissionResponse MissionClient::call(std::uint64_t tenant,
                                    const std::string& repro) {
  WireRequest wire;
  wire.id = next_id_++;
  wire.tenant = tenant;
  wire.repro = repro;

  WireResponse reply;
  std::string error;
  if (binary_) {
    std::string payload;
    encode_request_frame(wire, payload);
    if (!write_frame(fd_, payload) || !read_frame(fd_, payload) ||
        !decode_response_frame(payload, reply, error)) {
      throw std::runtime_error("binary call failed: " +
                               (error.empty() ? "transport error" : error));
    }
  } else {
    const std::string out = encode_request_json(wire) + '\n';
    std::string line;
    if (!write_all(fd_, out.data(), out.size()) ||
        !read_line(fd_, line_buffer_, line) ||
        !decode_response_json(line, reply, error)) {
      throw std::runtime_error("json call failed: " +
                               (error.empty() ? "transport error" : error));
    }
  }
  if (reply.id != wire.id) {
    throw std::runtime_error("response id mismatch");
  }
  return reply.response;
}

}  // namespace wrsn::svc
