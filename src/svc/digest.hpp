// Canonical scenario digest: the service's cache/coalescing key.
//
// `scenario_digest` folds every ScenarioConfig field that determines a
// mission's result — topology, world physics, attack/benign service
// parameters, fault plan, fleet shape, detector suite — EXCEPT the seed,
// plus the charger mode.  The seed is kept separate so a what-if sweep
// (same scenario, many seeds) shares one digest and the cache key is the
// (digest, seed) pair.
//
// Order invariance is by construction: overrides land in a ScenarioConfig
// first (config_io applies a sorted map onto fixed struct fields) and the
// digest walks the struct in declaration order, so two requests describing
// the same scenario in different override orders — or via INI file vs repro
// line vs flags — produce the same key.  svc_test pins field sensitivity:
// mutating any config field must change the digest.
#pragma once

#include <cstddef>
#include <cstdint>

#include "analysis/scenario.hpp"

namespace wrsn::svc {

/// FNV-1a fold of (mode, every non-seed config field).  Allocation-free.
std::uint64_t scenario_digest(const analysis::ScenarioConfig& config,
                              analysis::ChargerMode mode) noexcept;

/// Cache / coalescing key: one scenario at one seed.
struct MissionKey {
  std::uint64_t digest = 0;
  std::uint64_t seed = 0;

  friend bool operator==(const MissionKey&, const MissionKey&) = default;
};

struct MissionKeyHash {
  std::size_t operator()(const MissionKey& key) const noexcept {
    // splitmix64 finalizer over the xor-fold: the digest is already well
    // mixed, but seeds are small integers, so stir them in properly.
    std::uint64_t x = key.digest ^ (key.seed + 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace wrsn::svc
