#include "svc/service.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/fnv.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"

namespace wrsn::svc {
namespace {

MissionResponse rejection(MissionStatus status, const MissionKey& key) {
  MissionResponse resp;
  resp.status = status;
  resp.route = MissionRoute::kNone;
  // The identity fields still fill in, so a shed client can retry or log
  // exactly which scenario was rejected.
  resp.outcome.scenario_digest = key.digest;
  resp.outcome.seed = key.seed;
  return resp;
}

}  // namespace

MissionService::MissionService(ServiceOptions options)
    : options_(options),
      pool_(options.threads > 0 ? options.threads
                                : runner::configured_threads()) {
  const std::size_t shard_count = std::max<std::size_t>(1, options_.shards);
  const std::size_t per_shard =
      options_.cache_capacity == 0
          ? 0
          : (options_.cache_capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->cache.init(per_shard);
    // Flight tables stay tiny (bounded by queue_limit); reserve so the
    // coalesce path's find() never observes a rehash in progress.
    shard->flights.reserve(options_.queue_limit + 8);
    shards_.push_back(std::move(shard));
  }
  // Admission caps concurrently-admitted missions at queue_limit, so that
  // many flight records suffice; the margin absorbs nothing but costs
  // nothing measurable either.
  const std::size_t pool_size = options_.queue_limit + 8;
  flight_storage_.reserve(pool_size);
  flight_free_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    flight_storage_.push_back(std::make_unique<Flight>());
    flight_free_.push_back(flight_storage_.back().get());
  }
}

MissionService::~MissionService() { shutdown(); }

void MissionService::set_execution_hook(std::function<void()> hook) {
  hook_ = std::move(hook);
}

MissionService::Shard& MissionService::shard_for(const MissionKey& key) {
  return *shards_[MissionKeyHash{}(key) % shards_.size()];
}

std::uint64_t MissionService::resolve_seed(const MissionRequest& request) {
  if (!request.auto_seed) return request.config.seed;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(tenant_m_);
    seq = tenant_seq_[request.tenant]++;
  }
  // The tenant's seed stream: an FNV fold of (base_seed, tenant, seq) —
  // deterministic per service configuration and per-tenant arrival order,
  // and unrelated across tenants (the fold separates the streams the same
  // way Rng::fork labels separate stream families).
  Fnv fnv;
  fnv.mix(options_.base_seed);
  fnv.mix(request.tenant);
  fnv.mix(seq);
  return fnv.hash();
}

MissionService::Flight* MissionService::acquire_flight() {
  std::lock_guard<std::mutex> lock(pool_m_);
  WRSN_ASSERT(!flight_free_.empty());
  Flight* flight = flight_free_.back();
  flight_free_.pop_back();
  return flight;
}

void MissionService::release_flight(Flight* flight) {
  std::lock_guard<std::mutex> lock(pool_m_);
  flight_free_.push_back(flight);
}

MissionService::Ticket MissionService::stage(const MissionRequest& request) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  const MissionKey key{scenario_digest(request.config, request.mode),
                       resolve_seed(request)};

  Ticket ticket;
  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    ticket.immediate = rejection(MissionStatus::kClosed, key);
    return ticket;
  }

  Shard& shard = shard_for(key);
  std::unique_lock<std::mutex> lock(shard.m);

  if (shard.cache.lookup(key, ticket.immediate)) {
    ticket.immediate.route = MissionRoute::kCacheHit;
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return ticket;
  }
  if (const auto it = shard.flights.find(key); it != shard.flights.end()) {
    Flight* flight = it->second;
    ++flight->refs;
    stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
    ticket.shard = &shard;
    ticket.flight = flight;
    ticket.route = MissionRoute::kCoalesced;
    return ticket;
  }

  // Admission: hold a pending slot or shed.  fetch_add-then-check keeps the
  // admitted count <= queue_limit without a CAS loop; rejected arrivals
  // release their transient increment immediately.  The shed policy is
  // deterministic by construction — the ARRIVING request is rejected, never
  // a queued one, so admitted work is never abandoned.
  const std::size_t prior = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= options_.queue_limit) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    ticket.immediate = rejection(MissionStatus::kShed, key);
    return ticket;
  }
  std::uint64_t peak = stats_.queue_peak.load(std::memory_order_relaxed);
  while (prior + 1 > peak &&
         !stats_.queue_peak.compare_exchange_weak(
             peak, prior + 1, std::memory_order_relaxed)) {
  }

  Flight* flight = acquire_flight();
  flight->key = key;
  flight->done = false;
  flight->refs = 1;  // the creator's ticket
  shard.flights.emplace(key, flight);
  ticket.shard = &shard;
  ticket.flight = flight;
  ticket.route = MissionRoute::kExecuted;
  lock.unlock();

  // Miss path: copy the request (the executed config carries the resolved
  // seed) and enqueue.  These allocations are fine — this request is about
  // to run a full mission.
  MissionRequest owned = request;
  owned.config.seed = key.seed;
  pool_.submit([this, &shard, flight, req = std::move(owned)]() mutable {
    execute(shard, flight, std::move(req));
  });
  return ticket;
}

MissionResponse MissionService::collect(Ticket& ticket) {
  if (ticket.flight == nullptr) return ticket.immediate;
  Flight* flight = ticket.flight;
  MissionResponse resp;
  {
    std::unique_lock<std::mutex> lock(ticket.shard->m);
    flight->cv.wait(lock, [flight] { return flight->done; });
    resp = flight->response;
    if (--flight->refs == 0) {
      lock.unlock();
      release_flight(flight);
    }
  }
  resp.route = ticket.route;
  return resp;
}

void MissionService::execute(Shard& shard, Flight* flight,
                             MissionRequest request) {
  if (hook_) hook_();
  // The runner's convention: workers run with explicitly NO registry, so
  // mission behavior never depends on the submitting thread's obs state.
  obs::ScopedRegistry no_obs(nullptr);

  MissionResponse resp;
  resp.route = MissionRoute::kExecuted;
  try {
    const analysis::ScenarioResult result =
        analysis::run_mission(request.config, request.mode);
    resp.status = MissionStatus::kOk;
    resp.outcome = make_outcome(flight->key.digest, flight->key.seed, result);
  } catch (const std::exception&) {
    // A config that passes validation but cannot run (e.g. topology
    // generation gives up) yields an explicit kInvalid, not a dead flight.
    resp = rejection(MissionStatus::kInvalid, flight->key);
  }
  stats_.executions.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(shard.m);
    if (resp.status == MissionStatus::kOk && shard.cache.capacity() > 0) {
      if (shard.cache.insert(flight->key, resp)) {
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    flight->response = resp;
    flight->done = true;
    shard.flights.erase(flight->key);
    flight->cv.notify_all();
  }
  pending_.fetch_sub(1, std::memory_order_acq_rel);
}

MissionResponse MissionService::submit(const MissionRequest& request) {
  WRSN_OBS_SPAN(kSvcRequestNs);
  Ticket ticket = stage(request);
  return collect(ticket);
}

void MissionService::submit_batch(std::span<const MissionRequest> requests,
                                  std::span<MissionResponse> responses) {
  WRSN_REQUIRE(requests.size() == responses.size(),
               "submit_batch: responses span must match requests");
  // Stage everything first: duplicates inside the batch coalesce onto one
  // execution, and independent missions fan out across the pool instead of
  // serializing behind a blocking submit loop.
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (const MissionRequest& request : requests) {
    tickets.push_back(stage(request));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    responses[i] = collect(tickets[i]);
  }
}

std::vector<MissionResponse> MissionService::submit_batch(
    std::span<const MissionRequest> requests) {
  std::vector<MissionResponse> responses(requests.size());
  submit_batch(requests, responses);
  return responses;
}

void MissionService::drain() { pool_.wait_idle(); }

void MissionService::shutdown() {
  accepting_.store(false, std::memory_order_release);
  drain();
}

ServiceStats MissionService::stats() const {
  ServiceStats s;
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.executions = stats_.executions.load(std::memory_order_relaxed);
  s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  s.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
  s.shed = stats_.shed.load(std::memory_order_relaxed);
  s.evictions = stats_.evictions.load(std::memory_order_relaxed);
  s.queue_peak = stats_.queue_peak.load(std::memory_order_relaxed);
  return s;
}

void MissionService::flush_obs() const {
  const ServiceStats s = stats();
  WRSN_OBS_ADD(kSvcRequests, double(s.requests));
  WRSN_OBS_ADD(kSvcExecutions, double(s.executions));
  WRSN_OBS_ADD(kSvcCacheHits, double(s.cache_hits));
  // Misses = everything that had to look past the cache.
  WRSN_OBS_ADD(kSvcCacheMisses, double(s.executions + s.coalesced));
  WRSN_OBS_ADD(kSvcCacheEvictions, double(s.evictions));
  WRSN_OBS_ADD(kSvcCoalesced, double(s.coalesced));
  WRSN_OBS_ADD(kSvcShed, double(s.shed));
  WRSN_OBS_GAUGE_MAX(kSvcQueuePeak, double(s.queue_peak));
}

}  // namespace wrsn::svc
