#include "svc/types.hpp"

#include <algorithm>

#include "analysis/fuzz.hpp"

namespace wrsn::svc {

MissionOutcome make_outcome(std::uint64_t scenario_digest, std::uint64_t seed,
                            const analysis::ScenarioResult& result) {
  MissionOutcome out;
  out.scenario_digest = scenario_digest;
  out.seed = seed;
  out.result_digest = analysis::digest_result(result);

  const csa::AttackReport& r = result.report;
  out.node_count = static_cast<std::uint32_t>(result.node_count);
  out.alive_at_end = static_cast<std::uint32_t>(result.alive_at_end);
  out.sink_connected_at_end =
      static_cast<std::uint32_t>(result.sink_connected_at_end);
  out.keys_total = static_cast<std::uint32_t>(r.keys_total);
  out.keys_dead = static_cast<std::uint32_t>(r.keys_dead);
  out.keys_dead_before_detection =
      static_cast<std::uint32_t>(r.keys_dead_before_detection);
  out.sessions_genuine = static_cast<std::uint32_t>(r.sessions_genuine);
  out.sessions_spoofed = static_cast<std::uint32_t>(r.sessions_spoofed);
  out.escalations = static_cast<std::uint32_t>(r.escalations);
  out.deaths_total = static_cast<std::uint32_t>(r.deaths_total);
  out.plans_computed = result.plans_computed;
  out.events_executed = result.events_executed;
  out.detected = r.detected ? 1 : 0;
  out.detection_time = r.detected ? r.detection_time : 0.0;
  out.utility_delivered = r.utility_delivered;
  if (r.detected) {
    const std::size_t n =
        std::min(r.detector_name.size(), sizeof(out.detector) - 1);
    std::memcpy(out.detector, r.detector_name.data(), n);
  }
  return out;
}

}  // namespace wrsn::svc
