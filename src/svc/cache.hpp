// Bounded LRU result cache, single-shard core.
//
// The mission service owns N shards, each pairing one `LruCore` with the
// shard mutex that also guards the in-flight coalescing table — one lock
// acquisition per request, and the completion path can publish to the cache
// and retire the flight record atomically, so a request can never miss both
// the cache and the flight table for a scenario that already executed.
//
// Storage is preallocated at init: a fixed slot vector, an intrusive
// index-based LRU list (no node allocations, no pointers to chase), and a
// rehash-proofed index map.  The HIT path — find, relink, copy out — is
// allocation-free; sim_alloc_test pins that with a counting operator new.
// Inserts (the miss path, which just ran a multi-millisecond mission) may
// allocate an index node.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "svc/digest.hpp"
#include "svc/types.hpp"

namespace wrsn::svc {

class LruCore {
 public:
  /// Sizes the cache for `capacity` entries (0 = disabled: every lookup
  /// misses, inserts drop).  Call once before use.
  void init(std::size_t capacity);

  /// On hit: copies the cached response into `out`, promotes the entry to
  /// most-recently-used, returns true.  Allocation-free.
  bool lookup(const MissionKey& key, MissionResponse& out) noexcept;

  /// Inserts (or refreshes) `key`.  Evicts the least-recently-used entry
  /// when full; returns true iff an eviction happened.  Responses are
  /// deterministic per key, so refreshing an existing entry only touches
  /// recency.
  bool insert(const MissionKey& key, const MissionResponse& value);

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    MissionKey key;
    MissionResponse value;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t i) noexcept;
  void push_front(std::uint32_t i) noexcept;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<MissionKey, std::uint32_t, MissionKeyHash> index_;
  std::uint32_t head_ = kNil;  ///< most recently used
  std::uint32_t tail_ = kNil;  ///< eviction candidate
};

}  // namespace wrsn::svc
