// Wire protocol of the mission server: JSON-lines and length-prefixed
// binary framing over a local stream socket.
//
// A connection speaks exactly one mode, detected from its first byte:
//
//   * '{'  — JSON lines.  One request object per line:
//              {"id":7,"tenant":2,"repro":"mode=attack;seed=42;..."}
//            answered by one response object per line (same id; ids are
//            echoed, so pipelined requests match up order-independently).
//            The "repro" value is the repo's canonical scenario encoding —
//            the same `k=v;k=v` line scenario_fuzzer prints and
//            `wrsn_cli --repro` replays — so any failing request is
//            replayable standalone by construction.
//   * 'W'  — binary.  The 4-byte magic "WRB1", then length-prefixed frames
//            (u32 LE payload size, then the payload).  Requests carry
//            (id, tenant, repro string); responses carry (id, status,
//            route, packed MissionOutcome).  All integers little-endian,
//            doubles as IEEE-754 bit patterns; fields are packed one by
//            one (no struct memcpy), so frames are byte-deterministic.
//
// u64 values (digests, seeds) travel as decimal *strings* in JSON — JSON
// numbers lose precision past 2^53 and digests use all 64 bits.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/types.hpp"

namespace wrsn::svc {

inline constexpr std::string_view kBinaryMagic = "WRB1";
/// Upper bound on accepted frame/line sizes (a repro line is < 2 KiB; this
/// is purely a garbage-input guard).
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

struct WireRequest {
  std::uint64_t id = 0;
  std::uint64_t tenant = 0;
  /// Scenario overrides as a repro line (`k=v;k=v`, pseudo-key "mode").
  std::string repro;
};

struct WireResponse {
  std::uint64_t id = 0;
  MissionResponse response;
};

// --- JSON lines (no trailing newline; the transport adds it) ---
std::string encode_request_json(const WireRequest& request);
bool decode_request_json(std::string_view line, WireRequest& out,
                         std::string& error);
std::string encode_response_json(const WireResponse& response);
bool decode_response_json(std::string_view line, WireResponse& out,
                          std::string& error);

// --- binary frame payloads (framing: u32 LE size prefix, added by the
// transport helpers in server.cpp) ---
void encode_request_frame(const WireRequest& request, std::string& out);
bool decode_request_frame(std::string_view payload, WireRequest& out,
                          std::string& error);
void encode_response_frame(const WireResponse& response, std::string& out);
bool decode_response_frame(std::string_view payload, WireResponse& out,
                           std::string& error);

/// Resolves a wire request into a service request: parses the repro line,
/// splits the "mode" pseudo-key, applies the rest over default_scenario().
/// Throws ConfigError on malformed repro lines or unknown keys.
MissionRequest to_mission_request(const WireRequest& request);

/// The inverse encoding used on mismatch reports: status/route as short
/// lowercase names.
std::string_view status_name(MissionStatus status);
std::string_view route_name(MissionRoute route);

}  // namespace wrsn::svc
