// MissionServer / MissionClient: the socket transport over MissionService.
//
// The server listens on an AF_UNIX stream socket and speaks the protocol of
// svc/protocol.hpp (JSON lines or "WRB1" binary, per connection, detected
// from the first byte).  Each connection gets a lightweight reader thread;
// the mission work itself still runs on the service's shared pool — the
// reader threads only block in submit(), so concurrency is governed by the
// service's admission control, not by connection count.
//
// stop() shuts the listener down and force-closes live connections; the
// service drains separately (the server never owns the service).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace wrsn::svc {

class MissionServer {
 public:
  /// Binds and listens on `socket_path` (unlinking any stale socket file).
  /// Throws std::runtime_error on bind/listen failure.
  MissionServer(MissionService& service, std::string socket_path);
  ~MissionServer();

  MissionServer(const MissionServer&) = delete;
  MissionServer& operator=(const MissionServer&) = delete;

  /// Starts the accept loop on a background thread.
  void start();
  /// Stops accepting, force-closes live connections, joins all threads,
  /// and unlinks the socket file.  Idempotent.
  void stop();

  const std::string& socket_path() const { return socket_path_; }
  /// Total connections ever accepted.
  std::uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void serve_json(int fd, std::string initial);
  void serve_binary(int fd);

  MissionService& service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};

  std::mutex conn_m_;  ///< guards conn_threads_ / conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

/// Blocking single-connection client.  One in-flight call at a time; the
/// wire id is assigned internally and checked on the reply.
class MissionClient {
 public:
  /// Connects to `socket_path`; binary mode sends the "WRB1" magic first.
  /// Throws std::runtime_error on connect failure.
  explicit MissionClient(const std::string& socket_path, bool binary = false);
  ~MissionClient();

  MissionClient(const MissionClient&) = delete;
  MissionClient& operator=(const MissionClient&) = delete;

  /// Round-trips one request.  Throws std::runtime_error on transport or
  /// decode errors (a well-behaved server never triggers these).
  MissionResponse call(std::uint64_t tenant, const std::string& repro);

  bool binary() const { return binary_; }

 private:
  int fd_ = -1;
  bool binary_ = false;
  std::uint64_t next_id_ = 1;
  std::string line_buffer_;  ///< leftover bytes past the last newline
};

}  // namespace wrsn::svc
