#include "svc/digest.hpp"

#include "common/fnv.hpp"

namespace wrsn::svc {
namespace {

// Every mixer walks its struct in declaration order.  When a field is added
// to a config struct, add it here too — svc_test's field-sensitivity sweep
// exists to catch the omission.

void mix_charger(Fnv& fnv, const mc::ChargerParams& c) {
  fnv.mix(c.depot.x);
  fnv.mix(c.depot.y);
  fnv.mix(c.speed);
  fnv.mix(c.battery_capacity);
  fnv.mix(c.travel_cost_per_meter);
  fnv.mix(c.pa_efficiency);
  fnv.mix(c.depot_recharge_power);
}

void mix_territory(Fnv& fnv, const std::vector<net::NodeId>& territory) {
  fnv.mix(std::uint64_t{territory.size()});
  for (const net::NodeId id : territory) fnv.mix(std::uint64_t{id});
}

void mix_topology(Fnv& fnv, const net::TopologyConfig& t) {
  fnv.mix(t.region.lo.x);
  fnv.mix(t.region.lo.y);
  fnv.mix(t.region.hi.x);
  fnv.mix(t.region.hi.y);
  fnv.mix(std::uint64_t{t.node_count});
  fnv.mix(t.comm_range);
  fnv.mix(std::uint64_t(t.deployment));
  fnv.mix(std::uint64_t{t.sink_at_center ? 1u : 0u});
  fnv.mix(t.sink_position.x);
  fnv.mix(t.sink_position.y);
  fnv.mix(t.mean_data_rate_bps);
  fnv.mix(t.battery_capacity);
  fnv.mix(t.min_separation);
  fnv.mix(std::uint64_t{t.cluster_count});
  fnv.mix(t.cluster_sigma_fraction);
  fnv.mix(t.cluster_background_fraction);
  fnv.mix(std::uint64_t{t.corridor_count});
  fnv.mix(std::uint64_t{t.class_count});
  fnv.mix(t.class_capacity_ratio);
  fnv.mix(t.class_rate_ratio);
  fnv.mix(std::uint64_t{t.max_attempts});
}

void mix_world(Fnv& fnv, const sim::WorldParams& w) {
  fnv.mix(w.request_threshold);
  fnv.mix(w.min_request_gap);
  fnv.mix(w.patience);
  fnv.mix(w.charge_target_fraction);
  fnv.mix(w.benign_gain_mean);
  fnv.mix(w.benign_gain_cv);
  fnv.mix(w.initial_level_min);
  fnv.mix(w.initial_level_max);
  fnv.mix(std::uint64_t{w.emergency_enabled ? 1u : 0u});
  fnv.mix(w.emergency_fraction);
  fnv.mix(w.emergency_patience);
  fnv.mix(w.hardware_mtbf);
  fnv.mix(std::uint64_t(w.update_mode));
  fnv.mix(w.charging.source_power);
  fnv.mix(w.charging.gain_product);
  fnv.mix(w.charging.beta);
  fnv.mix(w.charging.max_range);
  fnv.mix(w.charging.dock_distance);
  fnv.mix(w.charging.wavelength);
  fnv.mix(w.charging.rectifier.sensitivity);
  fnv.mix(w.charging.rectifier.max_efficiency);
  fnv.mix(w.charging.rectifier.knee);
  fnv.mix(w.charging.rectifier.dc_cap);
  fnv.mix(w.routing.hop_cost);
  fnv.mix(w.drain.sensing_power);
  fnv.mix(w.drain.radio.e_elec);
  fnv.mix(w.drain.radio.e_amp);
  fnv.mix(w.mobility.fraction);
  fnv.mix(w.mobility.interval);
  fnv.mix(w.mobility.speed_min);
  fnv.mix(w.mobility.speed_max);
  fnv.mix(w.mobility.pause_min);
  fnv.mix(w.mobility.pause_max);
  fnv.mix(std::uint64_t{w.coverage.k});
  fnv.mix(w.coverage.radius);
  fnv.mix(w.coverage.bonus);
}

void mix_attack(Fnv& fnv, const csa::AttackParams& a) {
  mix_charger(fnv, a.charger);
  fnv.mix(std::uint64_t(a.key_selection.rule));
  fnv.mix(std::uint64_t{a.key_selection.max_count});
  fnv.mix(std::uint64_t{a.key_selection.min_disconnect});
  fnv.mix(a.spoofing.antenna_separation);
  fnv.mix(a.spoofing.phase_jitter_sigma);
  fnv.mix(a.spoofing.amplitude_imbalance);
  fnv.mix(std::uint64_t(a.spoof_mode));
  fnv.mix(a.partial_leak_ratio);
  fnv.mix(a.window_margin);
  fnv.mix(a.lookahead);
  fnv.mix(a.campaign_deadline);
  fnv.mix(a.campaign_slack);
  fnv.mix(std::uint64_t{a.pace_limit});
  fnv.mix(a.pace_window);
  fnv.mix(a.comm_antenna_offset);
  fnv.mix(a.battery_reserve_fraction);
  mix_territory(fnv, a.territory);
}

void mix_benign(Fnv& fnv, const mc::AgentParams& b) {
  mix_charger(fnv, b.charger);
  fnv.mix(std::uint64_t(b.policy));
  fnv.mix(std::uint64_t{b.preempt_travel ? 1u : 0u});
  fnv.mix(b.battery_reserve_fraction);
  mix_territory(fnv, b.territory);
  fnv.mix(std::uint64_t{b.tour_batch});
  fnv.mix(b.tour_max_wait);
}

void mix_policy(Fnv& fnv, const policy::PolicyParams& p) {
  fnv.mix(std::uint64_t(p.attacker.kind));
  fnv.mix(p.attacker.epsilon);
  fnv.mix(p.attacker.ucb_c);
  fnv.mix(p.attacker.epoch);
  fnv.mix(p.attacker.risk_weight);
  fnv.mix(std::uint64_t{p.attacker.risk_budget});
  fnv.mix(std::uint64_t(p.defender.kind));
  fnv.mix(p.defender.window);
  fnv.mix(p.defender.quantile);
  fnv.mix(std::uint64_t{p.defender.min_samples});
}

void mix_faults(Fnv& fnv, const fault::FaultParams& f) {
  fnv.mix(f.mc_breakdown_mtbf);
  fnv.mix(f.mc_repair_mean);
  fnv.mix(f.mc_budget_loss);
  fnv.mix(f.mc_permanent_at);
  fnv.mix(f.node_burst_mtbf);
  fnv.mix(std::uint64_t{f.node_burst_size});
  fnv.mix(f.phase_noise_mtbf);
  fnv.mix(f.phase_noise_duration);
  fnv.mix(f.phase_noise_scale);
  fnv.mix(f.escalation_drop_prob);
  fnv.mix(f.escalation_delay_prob);
  fnv.mix(f.escalation_delay_max);
  fnv.mix(f.battery_drift_mtbf);
  fnv.mix(f.battery_drift_power);
  fnv.mix(f.battery_drift_duration);
}

}  // namespace

std::uint64_t scenario_digest(const analysis::ScenarioConfig& config,
                              analysis::ChargerMode mode) noexcept {
  Fnv fnv;
  fnv.mix(std::uint64_t(mode));
  mix_topology(fnv, config.topology);
  mix_world(fnv, config.world);
  mix_attack(fnv, config.attack);
  mix_benign(fnv, config.benign);
  fnv.mix(config.horizon);
  // config.seed deliberately NOT mixed: the key is (digest, seed).
  fnv.mix(std::uint64_t{config.hardened_detectors ? 1u : 0u});
  mix_faults(fnv, config.faults);
  fnv.mix(std::uint64_t{config.fleet_size});
  fnv.mix(std::uint64_t{config.fleet_compromised});
  mix_policy(fnv, config.policy);
  return fnv.hash();
}

}  // namespace wrsn::svc
