#include "svc/cache.hpp"

#include "common/check.hpp"

namespace wrsn::svc {

void LruCore::init(std::size_t capacity) {
  WRSN_REQUIRE(slots_.empty(), "LruCore::init called twice");
  slots_.resize(capacity);
  free_.reserve(capacity);
  // Hand out low indices first (cosmetic; any order works).
  for (std::size_t i = capacity; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  // Reserve past the max load factor so inserts never rehash; the per-node
  // allocations of the index are confined to the miss path.
  index_.reserve(capacity + capacity / 2 + 1);
}

void LruCore::unlink(std::uint32_t i) noexcept {
  Slot& s = slots_[i];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  if (head_ == i) head_ = s.next;
  if (tail_ == i) tail_ = s.prev;
  s.prev = s.next = kNil;
}

void LruCore::push_front(std::uint32_t i) noexcept {
  Slot& s = slots_[i];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) slots_[head_].prev = i;
  head_ = i;
  if (tail_ == kNil) tail_ = i;
}

bool LruCore::lookup(const MissionKey& key, MissionResponse& out) noexcept {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const std::uint32_t i = it->second;
  if (head_ != i) {
    unlink(i);
    push_front(i);
  }
  out = slots_[i].value;
  return true;
}

bool LruCore::insert(const MissionKey& key, const MissionResponse& value) {
  if (slots_.empty()) return false;
  if (const auto it = index_.find(key); it != index_.end()) {
    const std::uint32_t i = it->second;
    if (head_ != i) {
      unlink(i);
      push_front(i);
    }
    slots_[i].value = value;
    return false;
  }
  bool evicted = false;
  std::uint32_t i = kNil;
  if (!free_.empty()) {
    i = free_.back();
    free_.pop_back();
  } else {
    i = tail_;
    WRSN_ASSERT(i != kNil);
    index_.erase(slots_[i].key);
    unlink(i);
    evicted = true;
  }
  slots_[i].key = key;
  slots_[i].value = value;
  push_front(i);
  index_.emplace(key, i);
  return evicted;
}

}  // namespace wrsn::svc
