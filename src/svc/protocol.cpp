#include "svc/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "analysis/fuzz.hpp"
#include "common/check.hpp"

namespace wrsn::svc {
namespace {

// ---------------------------------------------------------------------------
// JSON helpers: a flat object of string / integer / bool / double values is
// all the protocol needs, so the parser is deliberately minimal (and strict:
// anything else is a decode error, never a guess).
// ---------------------------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string u64_field(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string double_field(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n')) {
      ++pos;
    }
  }
  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (code > 0x7f) return fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default:
            return fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }
  /// Raw scalar token (number / true / false / null), no validation beyond
  /// the charset; the caller converts.
  bool parse_scalar(std::string& out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    out.assign(text.substr(start, pos - start));
    return true;
  }
};

/// Parses one flat JSON object into key -> raw value text (strings
/// unescaped).  Nested containers are a decode error.
bool parse_flat_object(std::string_view line,
                       std::map<std::string, std::string>& out,
                       std::string& error) {
  JsonCursor cur{line, 0, {}};
  out.clear();
  if (!cur.expect('{')) {
    error = cur.error;
    return false;
  }
  cur.skip_ws();
  if (cur.pos < cur.text.size() && cur.text[cur.pos] == '}') {
    ++cur.pos;
    return true;
  }
  while (true) {
    std::string key, value;
    if (!cur.parse_string(key) || !cur.expect(':')) break;
    cur.skip_ws();
    if (cur.pos < cur.text.size() && cur.text[cur.pos] == '"') {
      if (!cur.parse_string(value)) break;
    } else if (cur.pos < cur.text.size() &&
               (cur.text[cur.pos] == '{' || cur.text[cur.pos] == '[')) {
      cur.fail("nested containers unsupported");
      break;
    } else if (!cur.parse_scalar(value)) {
      break;
    }
    out[key] = value;
    cur.skip_ws();
    if (cur.pos < cur.text.size() && cur.text[cur.pos] == ',') {
      ++cur.pos;
      continue;
    }
    if (!cur.expect('}')) break;
    return true;
  }
  error = cur.error.empty() ? "malformed object" : cur.error;
  return false;
}

bool parse_u64(const std::map<std::string, std::string>& kv,
               const std::string& key, std::uint64_t& out, bool required,
               std::string& error) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    if (required) error = "missing field '" + key + "'";
    return !required;
  }
  char* end = nullptr;
  out = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    error = "field '" + key + "' is not an unsigned integer";
    return false;
  }
  return true;
}

double parse_double_or(const std::map<std::string, std::string>& kv,
                       const std::string& key, double fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::uint64_t parse_u64_or(const std::map<std::string, std::string>& kv,
                           const std::string& key, std::uint64_t fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback
                        : std::strtoull(it->second.c_str(), nullptr, 10);
}

// ---------------------------------------------------------------------------
// Binary field packing: integers LE, doubles as IEEE bit patterns.  Fields
// are appended one by one — no struct memcpy, so padding never leaks and
// the bytes are deterministic.
// ---------------------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += char((v >> (8 * i)) & 0xff);
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += char((v >> (8 * i)) & 0xff);
}
void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

struct FrameCursor {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || pos + n > data.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, data.data() + pos, n);
    pos += n;
    return true;
  }
  std::uint32_t u32() {
    unsigned char b[4] = {};
    take(b, 4);
    return std::uint32_t(b[0]) | std::uint32_t(b[1]) << 8 |
           std::uint32_t(b[2]) << 16 | std::uint32_t(b[3]) << 24;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    unsigned char b[8] = {};
    take(b, 8);
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

}  // namespace

std::string_view status_name(MissionStatus status) {
  switch (status) {
    case MissionStatus::kOk: return "ok";
    case MissionStatus::kShed: return "shed";
    case MissionStatus::kInvalid: return "invalid";
    case MissionStatus::kClosed: return "closed";
  }
  return "unknown";
}

std::string_view route_name(MissionRoute route) {
  switch (route) {
    case MissionRoute::kExecuted: return "executed";
    case MissionRoute::kCacheHit: return "cache_hit";
    case MissionRoute::kCoalesced: return "coalesced";
    case MissionRoute::kNone: return "none";
  }
  return "unknown";
}

std::string encode_request_json(const WireRequest& request) {
  std::string out = "{\"id\":" + u64_field(request.id) +
                    ",\"tenant\":" + u64_field(request.tenant) +
                    ",\"repro\":";
  append_escaped(out, request.repro);
  out += '}';
  return out;
}

bool decode_request_json(std::string_view line, WireRequest& out,
                         std::string& error) {
  std::map<std::string, std::string> kv;
  if (!parse_flat_object(line, kv, error)) return false;
  out = WireRequest{};
  if (!parse_u64(kv, "id", out.id, /*required=*/true, error)) return false;
  if (!parse_u64(kv, "tenant", out.tenant, /*required=*/false, error)) {
    return false;
  }
  const auto it = kv.find("repro");
  if (it == kv.end()) {
    error = "missing field 'repro'";
    return false;
  }
  out.repro = it->second;
  return true;
}

std::string encode_response_json(const WireResponse& wire) {
  const MissionResponse& r = wire.response;
  const MissionOutcome& o = r.outcome;
  std::string out = "{\"id\":" + u64_field(wire.id);
  out += ",\"status\":\"" + std::string(status_name(r.status)) + '"';
  out += ",\"route\":\"" + std::string(route_name(r.route)) + '"';
  // 64-bit identities as strings: JSON numbers stop being exact at 2^53.
  out += ",\"scenario_digest\":\"" + u64_field(o.scenario_digest) + '"';
  out += ",\"seed\":\"" + u64_field(o.seed) + '"';
  out += ",\"result_digest\":\"" + u64_field(o.result_digest) + '"';
  out += ",\"node_count\":" + u64_field(o.node_count);
  out += ",\"alive_at_end\":" + u64_field(o.alive_at_end);
  out += ",\"sink_connected_at_end\":" + u64_field(o.sink_connected_at_end);
  out += ",\"keys_total\":" + u64_field(o.keys_total);
  out += ",\"keys_dead\":" + u64_field(o.keys_dead);
  out += ",\"keys_dead_before_detection\":" +
         u64_field(o.keys_dead_before_detection);
  out += ",\"sessions_genuine\":" + u64_field(o.sessions_genuine);
  out += ",\"sessions_spoofed\":" + u64_field(o.sessions_spoofed);
  out += ",\"escalations\":" + u64_field(o.escalations);
  out += ",\"deaths_total\":" + u64_field(o.deaths_total);
  out += ",\"plans_computed\":" + u64_field(o.plans_computed);
  out += ",\"events_executed\":" + u64_field(o.events_executed);
  out += ",\"detected\":";
  out += o.detected != 0 ? "true" : "false";
  out += ",\"detection_time\":" + double_field(o.detection_time);
  out += ",\"utility_delivered\":" + double_field(o.utility_delivered);
  out += ",\"detector\":";
  append_escaped(out, o.detector);
  out += '}';
  return out;
}

bool decode_response_json(std::string_view line, WireResponse& out,
                          std::string& error) {
  std::map<std::string, std::string> kv;
  if (!parse_flat_object(line, kv, error)) return false;
  out = WireResponse{};
  if (!parse_u64(kv, "id", out.id, /*required=*/true, error)) return false;

  MissionResponse& r = out.response;
  const auto status_it = kv.find("status");
  const std::string status = status_it == kv.end() ? "ok" : status_it->second;
  if (status == "ok") r.status = MissionStatus::kOk;
  else if (status == "shed") r.status = MissionStatus::kShed;
  else if (status == "invalid") r.status = MissionStatus::kInvalid;
  else if (status == "closed") r.status = MissionStatus::kClosed;
  else {
    error = "unknown status '" + status + "'";
    return false;
  }
  const auto route_it = kv.find("route");
  const std::string route = route_it == kv.end() ? "none" : route_it->second;
  if (route == "executed") r.route = MissionRoute::kExecuted;
  else if (route == "cache_hit") r.route = MissionRoute::kCacheHit;
  else if (route == "coalesced") r.route = MissionRoute::kCoalesced;
  else if (route == "none") r.route = MissionRoute::kNone;
  else {
    error = "unknown route '" + route + "'";
    return false;
  }

  MissionOutcome& o = r.outcome;
  if (!parse_u64(kv, "scenario_digest", o.scenario_digest, true, error) ||
      !parse_u64(kv, "seed", o.seed, true, error) ||
      !parse_u64(kv, "result_digest", o.result_digest, true, error)) {
    return false;
  }
  o.node_count = std::uint32_t(parse_u64_or(kv, "node_count", 0));
  o.alive_at_end = std::uint32_t(parse_u64_or(kv, "alive_at_end", 0));
  o.sink_connected_at_end =
      std::uint32_t(parse_u64_or(kv, "sink_connected_at_end", 0));
  o.keys_total = std::uint32_t(parse_u64_or(kv, "keys_total", 0));
  o.keys_dead = std::uint32_t(parse_u64_or(kv, "keys_dead", 0));
  o.keys_dead_before_detection =
      std::uint32_t(parse_u64_or(kv, "keys_dead_before_detection", 0));
  o.sessions_genuine = std::uint32_t(parse_u64_or(kv, "sessions_genuine", 0));
  o.sessions_spoofed = std::uint32_t(parse_u64_or(kv, "sessions_spoofed", 0));
  o.escalations = std::uint32_t(parse_u64_or(kv, "escalations", 0));
  o.deaths_total = std::uint32_t(parse_u64_or(kv, "deaths_total", 0));
  o.plans_computed = parse_u64_or(kv, "plans_computed", 0);
  o.events_executed = parse_u64_or(kv, "events_executed", 0);
  const auto det_it = kv.find("detected");
  o.detected = (det_it != kv.end() && det_it->second == "true") ? 1 : 0;
  o.detection_time = parse_double_or(kv, "detection_time", 0.0);
  o.utility_delivered = parse_double_or(kv, "utility_delivered", 0.0);
  if (const auto it = kv.find("detector"); it != kv.end()) {
    const std::size_t n =
        std::min(it->second.size(), sizeof(o.detector) - 1);
    std::memcpy(o.detector, it->second.data(), n);
  }
  return true;
}

void encode_request_frame(const WireRequest& request, std::string& out) {
  out.clear();
  put_u64(out, request.id);
  put_u64(out, request.tenant);
  put_u32(out, std::uint32_t(request.repro.size()));
  out += request.repro;
}

bool decode_request_frame(std::string_view payload, WireRequest& out,
                          std::string& error) {
  FrameCursor cur{payload};
  out = WireRequest{};
  out.id = cur.u64();
  out.tenant = cur.u64();
  const std::uint32_t len = cur.u32();
  if (!cur.ok || cur.pos + len != payload.size()) {
    error = "malformed request frame";
    return false;
  }
  out.repro.assign(payload.substr(cur.pos, len));
  return true;
}

void encode_response_frame(const WireResponse& wire, std::string& out) {
  const MissionResponse& r = wire.response;
  const MissionOutcome& o = r.outcome;
  out.clear();
  put_u64(out, wire.id);
  out += char(std::uint8_t(r.status));
  out += char(std::uint8_t(r.route));
  put_u64(out, o.scenario_digest);
  put_u64(out, o.seed);
  put_u64(out, o.result_digest);
  put_u32(out, o.node_count);
  put_u32(out, o.alive_at_end);
  put_u32(out, o.sink_connected_at_end);
  put_u32(out, o.keys_total);
  put_u32(out, o.keys_dead);
  put_u32(out, o.keys_dead_before_detection);
  put_u32(out, o.sessions_genuine);
  put_u32(out, o.sessions_spoofed);
  put_u32(out, o.escalations);
  put_u32(out, o.deaths_total);
  put_u64(out, o.plans_computed);
  put_u64(out, o.events_executed);
  out += char(o.detected);
  put_double(out, o.detection_time);
  put_double(out, o.utility_delivered);
  out.append(o.detector, sizeof(o.detector));
}

bool decode_response_frame(std::string_view payload, WireResponse& out,
                           std::string& error) {
  FrameCursor cur{payload};
  out = WireResponse{};
  MissionResponse& r = out.response;
  MissionOutcome& o = r.outcome;
  out.id = cur.u64();
  std::uint8_t status = 0, route = 0, detected = 0;
  cur.take(&status, 1);
  cur.take(&route, 1);
  o.scenario_digest = cur.u64();
  o.seed = cur.u64();
  o.result_digest = cur.u64();
  o.node_count = cur.u32();
  o.alive_at_end = cur.u32();
  o.sink_connected_at_end = cur.u32();
  o.keys_total = cur.u32();
  o.keys_dead = cur.u32();
  o.keys_dead_before_detection = cur.u32();
  o.sessions_genuine = cur.u32();
  o.sessions_spoofed = cur.u32();
  o.escalations = cur.u32();
  o.deaths_total = cur.u32();
  o.plans_computed = cur.u64();
  o.events_executed = cur.u64();
  cur.take(&detected, 1);
  o.detection_time = cur.f64();
  o.utility_delivered = cur.f64();
  cur.take(o.detector, sizeof(o.detector));
  if (!cur.ok || cur.pos != payload.size() || status > 3 || route > 3) {
    error = "malformed response frame";
    return false;
  }
  r.status = MissionStatus(status);
  r.route = MissionRoute(route);
  o.detected = detected;
  o.detector[sizeof(o.detector) - 1] = '\0';
  return true;
}

MissionRequest to_mission_request(const WireRequest& wire) {
  const analysis::FuzzOverrides overrides = analysis::parse_repro(wire.repro);
  auto [config, mode] = analysis::resolve_overrides(overrides);
  MissionRequest request;
  request.config = std::move(config);
  request.mode = mode;
  request.tenant = wire.tenant;
  return request;
}

}  // namespace wrsn::svc
