// MissionService: a long-running, multi-tenant mission server.
//
// Thousands of concurrent mission / what-if requests dispatch onto the
// repo's runner thread pool.  The perf core (DESIGN.md section 13):
//
//   * canonical scenario digest (svc/digest.hpp) — the order-invariant
//     identity of a request; the cache/coalescing key is (digest, seed);
//   * request coalescing — identical in-flight keys share ONE execution
//     via pooled flight records; joiners block on the flight's condvar and
//     copy the finished response;
//   * bounded sharded LRU result cache — each shard pairs an LruCore with
//     the mutex that also guards the shard's flight table, so completion
//     publishes to the cache and retires the flight atomically;
//   * admission control — at most `queue_limit` missions in flight; the
//     shed policy is deterministic (reject the arriving request, never a
//     queued one), so an overloaded service degrades to explicit kShed
//     responses instead of unbounded memory;
//   * graceful drain — shutdown() stops admitting and waits for in-flight
//     executions; the destructor drains implicitly.
//
// Determinism: a mission is a pure function of (config, mode) — every
// stochastic choice inside run_mission forks from config.seed — so worker
// scheduling cannot affect results.  Workers run under an explicit null
// obs registry (the runner's convention), keeping execution independent of
// the caller's thread-local state.  Responses are therefore bit-identical
// to a standalone `wrsn_cli` run of the same scenario, whichever route
// (execute / cache hit / coalesced join) served them, at any thread count.
//
// Steady-state allocation: after warmup, the cache-hit and coalesced-join
// paths allocate nothing — preallocated cache slots, pooled flight records,
// an index map that never rehashes, and trivially-copyable responses
// (sim_alloc_test pins both paths with a counting operator new).  Misses
// allocate (they are about to run a multi-millisecond mission).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "runner/thread_pool.hpp"
#include "svc/cache.hpp"
#include "svc/digest.hpp"
#include "svc/types.hpp"

namespace wrsn::svc {

struct ServiceOptions {
  /// Worker threads; 0 = runner::configured_threads() (WRSN_THREADS).
  std::size_t threads = 0;
  /// Result-cache entries across all shards; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Lock shards (cache + flight table); clamped to >= 1.
  std::size_t shards = 8;
  /// Max missions admitted (queued + executing) before shedding.
  std::size_t queue_limit = 1024;
  /// Base of the per-tenant auto-seed streams.
  std::uint64_t base_seed = 1;
};

/// Monotonic tallies since construction.  requests = executions +
/// cache_hits + coalesced + shed (+ closed rejections, counted under shed).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t executions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t shed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t queue_peak = 0;  ///< deepest in-flight backlog observed
};

class MissionService {
 public:
  explicit MissionService(ServiceOptions options = {});
  /// Drains in-flight work (shutdown()) before tearing down.
  ~MissionService();

  MissionService(const MissionService&) = delete;
  MissionService& operator=(const MissionService&) = delete;

  /// Serves one request, blocking until its response is ready.  Safe to
  /// call from any number of threads concurrently.
  MissionResponse submit(const MissionRequest& request);

  /// Serves a batch: stages every request first (so duplicates inside the
  /// batch coalesce onto one execution and independent missions fan out
  /// across the pool), then collects responses into `responses` in request
  /// order.  `responses.size()` must equal `requests.size()`.
  void submit_batch(std::span<const MissionRequest> requests,
                    std::span<MissionResponse> responses);
  std::vector<MissionResponse> submit_batch(
      std::span<const MissionRequest> requests);

  /// Blocks until every admitted mission has finished executing.
  void drain();
  /// Stops admitting (subsequent submits return kClosed) and drains.
  void shutdown();

  ServiceStats stats() const;
  /// Adds the stats to the installed obs registry (svc.* metrics, timing
  /// section).  No-op without a registry.
  void flush_obs() const;

  std::size_t threads() const { return pool_.size(); }

  /// Test seam: runs inside the worker immediately before each execution
  /// (e.g. to park an execution so a test can deterministically join it).
  /// Not thread-safe against in-flight work; set before submitting.
  void set_execution_hook(std::function<void()> hook);

 private:
  /// One in-flight execution; joiners wait on `cv` under the shard mutex.
  /// Pooled and reused: `refs` counts stagers still holding a ticket
  /// (creator included); the last collector returns it to the freelist.
  struct Flight {
    MissionKey key;
    MissionResponse response;
    bool done = false;
    std::uint32_t refs = 0;
    std::condition_variable cv;
  };

  struct Shard {
    mutable std::mutex m;
    LruCore cache;
    std::unordered_map<MissionKey, Flight*, MissionKeyHash> flights;
  };

  /// Staged request: either an immediate response (hit / shed / closed) or
  /// a flight to wait on.
  struct Ticket {
    Shard* shard = nullptr;
    Flight* flight = nullptr;
    MissionRoute route = MissionRoute::kNone;
    MissionResponse immediate;
  };

  Ticket stage(const MissionRequest& request);
  MissionResponse collect(Ticket& ticket);
  void execute(Shard& shard, Flight* flight, MissionRequest request);
  std::uint64_t resolve_seed(const MissionRequest& request);
  Flight* acquire_flight();
  void release_flight(Flight* flight);
  Shard& shard_for(const MissionKey& key);

  const ServiceOptions options_;
  runner::ThreadPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex pool_m_;  ///< guards the flight freelist
  std::vector<std::unique_ptr<Flight>> flight_storage_;
  std::vector<Flight*> flight_free_;

  std::mutex tenant_m_;
  std::unordered_map<std::uint64_t, std::uint64_t> tenant_seq_;

  std::atomic<bool> accepting_{true};
  std::atomic<std::size_t> pending_{0};

  std::function<void()> hook_;

  struct StatCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> queue_peak{0};
  };
  mutable StatCounters stats_;
};

}  // namespace wrsn::svc
