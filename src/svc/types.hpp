// Request/response types of the mission service.
//
// The response payload (`MissionOutcome`) is deliberately a trivially
// copyable POD: it is memcpy'd between cache slots, flight records, and
// binary protocol frames, and the service's byte-identical guarantee
// ("a cache hit or coalesced join returns exactly what the execution
// returned") is literally a memcmp over this struct.  Transport metadata
// (how the request was served) lives outside it in `MissionResponse`, so
// the deterministic payload and the load-dependent routing never mix.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "analysis/scenario.hpp"

namespace wrsn::svc {

enum class MissionStatus : std::uint8_t {
  kOk = 0,
  kShed = 1,     ///< rejected by admission control (bounded queue full)
  kInvalid = 2,  ///< mission threw (bad config reached execution)
  kClosed = 3,   ///< service is shutting down; no longer accepting
};

/// How the service satisfied the request.  Load-dependent: whether a
/// duplicate lands as kCacheHit or kCoalesced depends on arrival timing.
/// The outcome bytes are identical either way.
enum class MissionRoute : std::uint8_t {
  kExecuted = 0,   ///< this request ran the mission
  kCacheHit = 1,   ///< served from the result cache
  kCoalesced = 2,  ///< joined an identical in-flight execution
  kNone = 3,       ///< not served (shed / closed / invalid request)
};

/// Deterministic mission summary: a pure function of (scenario, seed).
struct MissionOutcome {
  std::uint64_t scenario_digest = 0;  ///< canonical config digest (no seed)
  std::uint64_t seed = 0;             ///< resolved seed the mission ran with
  std::uint64_t result_digest = 0;    ///< analysis::digest_result of the run

  std::uint32_t node_count = 0;
  std::uint32_t alive_at_end = 0;
  std::uint32_t sink_connected_at_end = 0;
  std::uint32_t keys_total = 0;
  std::uint32_t keys_dead = 0;
  std::uint32_t keys_dead_before_detection = 0;
  std::uint32_t sessions_genuine = 0;
  std::uint32_t sessions_spoofed = 0;
  std::uint32_t escalations = 0;
  std::uint32_t deaths_total = 0;
  std::uint64_t plans_computed = 0;
  std::uint64_t events_executed = 0;

  std::uint8_t detected = 0;
  double detection_time = 0.0;
  double utility_delivered = 0.0;

  /// First detector that fired, truncated; empty when !detected.
  char detector[24] = {};
};
static_assert(std::is_trivially_copyable_v<MissionOutcome>);

/// One mission request.  The config is fully resolved (defaults + overrides
/// already applied); `mode` selects the benign or attacking service exactly
/// as analysis::run_mission does.
struct MissionRequest {
  analysis::ScenarioConfig config;
  analysis::ChargerMode mode = analysis::ChargerMode::Attack;
  /// Tenant id: selects the per-tenant auto-seed stream and labels stats.
  std::uint64_t tenant = 0;
  /// Replace config.seed with the next seed of this tenant's deterministic
  /// stream (what-if sweeps without client-side seed bookkeeping).  The
  /// resolved seed is reported back in outcome.seed for standalone replay.
  bool auto_seed = false;
};

struct MissionResponse {
  MissionStatus status = MissionStatus::kOk;
  MissionRoute route = MissionRoute::kNone;
  MissionOutcome outcome;
};
static_assert(std::is_trivially_copyable_v<MissionResponse>);

/// Fills an outcome from a finished mission (copies the report summary and
/// folds the result digest).
MissionOutcome make_outcome(std::uint64_t scenario_digest, std::uint64_t seed,
                            const analysis::ScenarioResult& result);

}  // namespace wrsn::svc
