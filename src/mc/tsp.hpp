// Tour construction toolkit: nearest-neighbour seeding and 2-opt improvement.
//
// Used by the benign periodic-tour scheduler and reused by the CSA planner
// when ordering slack-filling stops between key-node deadlines.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace wrsn::mc {

/// Length of the open tour start -> points[order[0]] -> ... -> points[order.back()].
double tour_length(std::span<const geom::Vec2> points,
                   std::span<const std::size_t> order, geom::Vec2 start);

/// Nearest-neighbour order over `points` beginning at `start`.
std::vector<std::size_t> nearest_neighbor_tour(
    std::span<const geom::Vec2> points, geom::Vec2 start);

/// In-place 2-opt improvement of an open tour; stops when a full pass yields
/// no improvement or after `max_passes`.  Returns the number of improving
/// moves applied.
std::size_t two_opt(std::span<const geom::Vec2> points,
                    std::vector<std::size_t>& order, geom::Vec2 start,
                    std::size_t max_passes = 16);

/// Convenience: nearest-neighbour + 2-opt.
std::vector<std::size_t> plan_tour(std::span<const geom::Vec2> points,
                                   geom::Vec2 start);

}  // namespace wrsn::mc
