// Multi-charger fleet support: territory partitioning.
//
// The standard multi-MC deployment assigns each vehicle the nodes nearest
// its depot (a Voronoi partition of the field); each agent then only
// answers requests inside its cell.
#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "net/network.hpp"

namespace wrsn::mc {

/// Evenly spaced depot sites for `count` chargers: the corners (then edge
/// midpoints) of the deployment region, inset by `margin`.
std::vector<geom::Vec2> default_depots(const geom::Rect& region,
                                       std::size_t count,
                                       Meters margin = 10.0);

/// Voronoi partition: result[k] lists the nodes nearest depots[k]
/// (ties to the lower index).  Every node appears in exactly one cell.
std::vector<std::vector<net::NodeId>> partition_by_depot(
    const net::Network& network, std::span<const geom::Vec2> depots);

}  // namespace wrsn::mc
