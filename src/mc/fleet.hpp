// Multi-charger fleet support: territory partitioning.
//
// The standard multi-MC deployment assigns each vehicle the nodes nearest
// its depot (a Voronoi partition of the field); each agent then only
// answers requests inside its cell.
#pragma once

#include <span>
#include <vector>

#include "common/bitset.hpp"
#include "geom/vec2.hpp"
#include "net/network.hpp"

namespace wrsn::mc {

/// Evenly spaced depot sites for `count` chargers: the corners (then edge
/// midpoints) of the deployment region, inset by `margin`.  The inset is
/// clamped to the region center, so an oversized margin degrades to every
/// depot at the center rather than silently inverting the inner rect and
/// placing depots outside the region.
std::vector<geom::Vec2> default_depots(const geom::Rect& region,
                                       std::size_t count,
                                       Meters margin = 10.0);

/// Index of the depot nearest `p` under the fleet partition rule: SQUARED
/// Euclidean distance (no sqrt, so "ties to the lower index" holds bit-for-
/// bit even when the rounded square roots of two distinct squared distances
/// collide), ties to the lower index.  Shared by partition_by_depot, the
/// fleet planner's spatial seed, and the fault-handoff redistribution so
/// every layer decomposes the field identically.
std::size_t nearest_depot(geom::Vec2 p, std::span<const geom::Vec2> depots);

/// Voronoi partition: result[k] lists the nodes nearest depots[k] (squared
/// distance, ties to the lower index).  `alive` (optional) is the world's
/// maintained alive mask: dead nodes are skipped; with an empty mask every
/// node appears in exactly one cell.  result.size() == depots.size() always
/// — a depot with no nodes yields an EMPTY cell, never a skipped one, so
/// cell indices stay aligned with charger ids downstream.
std::vector<std::vector<net::NodeId>> partition_by_depot(
    const net::Network& network, std::span<const geom::Vec2> depots,
    const Bitmap& alive = {});

}  // namespace wrsn::mc
