#include "mc/tsp.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace wrsn::mc {

double tour_length(std::span<const geom::Vec2> points,
                   std::span<const std::size_t> order, geom::Vec2 start) {
  double length = 0.0;
  geom::Vec2 prev = start;
  for (const std::size_t idx : order) {
    WRSN_REQUIRE(idx < points.size(), "tour index out of range");
    length += geom::distance(prev, points[idx]);
    prev = points[idx];
  }
  return length;
}

std::vector<std::size_t> nearest_neighbor_tour(
    std::span<const geom::Vec2> points, geom::Vec2 start) {
  const std::size_t n = points.size();
  std::vector<bool> used(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);

  geom::Vec2 current = start;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double d = geom::distance(current, points[i]);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    WRSN_ASSERT(best < n);
    used[best] = true;
    order.push_back(best);
    current = points[best];
  }
  return order;
}

std::size_t two_opt(std::span<const geom::Vec2> points,
                    std::vector<std::size_t>& order, geom::Vec2 start,
                    std::size_t max_passes) {
  const std::size_t n = order.size();
  if (n < 3) return 0;

  const auto point_at = [&](std::size_t pos) -> geom::Vec2 {
    return pos == 0 ? start : points[order[pos - 1]];
  };

  std::size_t improvements = 0;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    // Reversing order[i..j] replaces edges (i-1 -> i) and (j -> j+1) with
    // (i-1 -> j) and (i -> j+1); the open tour has no edge after the last
    // stop, so j = n-1 only removes one edge.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const geom::Vec2 a = point_at(i);          // node before segment
        const geom::Vec2 b = points[order[i]];     // segment head
        const geom::Vec2 c = points[order[j]];     // segment tail
        const double removed =
            geom::distance(a, b) +
            (j + 1 < n ? geom::distance(c, points[order[j + 1]]) : 0.0);
        const double added =
            geom::distance(a, c) +
            (j + 1 < n ? geom::distance(b, points[order[j + 1]]) : 0.0);
        if (added + 1e-12 < removed) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          ++improvements;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return improvements;
}

std::vector<std::size_t> plan_tour(std::span<const geom::Vec2> points,
                                   geom::Vec2 start) {
  std::vector<std::size_t> order = nearest_neighbor_tour(points, start);
  two_opt(points, order, start);
  return order;
}

}  // namespace wrsn::mc
