#include "mc/fleet.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wrsn::mc {

std::vector<geom::Vec2> default_depots(const geom::Rect& region,
                                       std::size_t count, Meters margin) {
  WRSN_REQUIRE(count > 0, "at least one depot");
  WRSN_REQUIRE(margin >= 0.0, "depot margin must be non-negative");
  WRSN_REQUIRE(region.lo.x <= region.hi.x && region.lo.y <= region.hi.y,
               "depot region must have lo <= hi on both axes");
  // Clamp the inset to the region center: a margin of at least half the
  // extent used to invert the inner rect (inner.lo > inner.hi), silently
  // placing depots outside the region.  With the clamp an oversized margin
  // collapses the sites onto the center instead, which downstream code
  // handles (the partition sends every node to the lowest depot index).
  const Meters inset_x = std::min(margin, region.width() / 2.0);
  const Meters inset_y = std::min(margin, region.height() / 2.0);
  const geom::Rect inner{{region.lo.x + inset_x, region.lo.y + inset_y},
                         {region.hi.x - inset_x, region.hi.y - inset_y}};
  const geom::Vec2 sites[] = {
      inner.lo,
      inner.hi,
      {inner.lo.x, inner.hi.y},
      {inner.hi.x, inner.lo.y},
      {inner.center().x, inner.lo.y},
      {inner.center().x, inner.hi.y},
      {inner.lo.x, inner.center().y},
      {inner.hi.x, inner.center().y},
  };
  WRSN_REQUIRE(count <= std::size(sites), "at most 8 default depots");
  return {sites, sites + count};
}

std::size_t nearest_depot(geom::Vec2 p, std::span<const geom::Vec2> depots) {
  WRSN_REQUIRE(!depots.empty(), "at least one depot");
  // Squared distances: sqrt (or hypot) can round two distinct squared
  // distances to the same value, which would resolve a non-tie by index
  // order instead of by distance — and does so differently across libm
  // implementations.  The squared comparison is exact on the same inputs.
  std::size_t best = 0;
  double best_sq = (p - depots[0]).norm_sq();
  for (std::size_t k = 1; k < depots.size(); ++k) {
    const double d = (p - depots[k]).norm_sq();
    if (d < best_sq) {
      best_sq = d;
      best = k;
    }
  }
  return best;
}

std::vector<std::vector<net::NodeId>> partition_by_depot(
    const net::Network& network, std::span<const geom::Vec2> depots,
    const Bitmap& alive) {
  WRSN_REQUIRE(!depots.empty(), "at least one depot");
  WRSN_REQUIRE(alive.empty() || alive.size() == network.size(),
               "alive mask must cover every node");
  std::vector<std::vector<net::NodeId>> cells(depots.size());
  for (net::NodeId id = 0; id < network.size(); ++id) {
    if (!alive.empty() && !alive.test(id)) continue;
    cells[nearest_depot(network.node(id).position, depots)].push_back(id);
  }
  return cells;
}

}  // namespace wrsn::mc
