#include "mc/fleet.hpp"

#include <limits>

#include "common/check.hpp"

namespace wrsn::mc {

std::vector<geom::Vec2> default_depots(const geom::Rect& region,
                                       std::size_t count, Meters margin) {
  WRSN_REQUIRE(count > 0, "at least one depot");
  const geom::Rect inner{{region.lo.x + margin, region.lo.y + margin},
                         {region.hi.x - margin, region.hi.y - margin}};
  const geom::Vec2 sites[] = {
      inner.lo,
      inner.hi,
      {inner.lo.x, inner.hi.y},
      {inner.hi.x, inner.lo.y},
      {inner.center().x, inner.lo.y},
      {inner.center().x, inner.hi.y},
      {inner.lo.x, inner.center().y},
      {inner.hi.x, inner.center().y},
  };
  WRSN_REQUIRE(count <= std::size(sites), "at most 8 default depots");
  return {sites, sites + count};
}

std::vector<std::vector<net::NodeId>> partition_by_depot(
    const net::Network& network, std::span<const geom::Vec2> depots) {
  WRSN_REQUIRE(!depots.empty(), "at least one depot");
  std::vector<std::vector<net::NodeId>> cells(depots.size());
  for (net::NodeId id = 0; id < network.size(); ++id) {
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < depots.size(); ++k) {
      const double d = geom::distance(network.node(id).position, depots[k]);
      if (d < best_dist) {
        best_dist = d;
        best = k;
      }
    }
    cells[best].push_back(id);
  }
  return cells;
}

}  // namespace wrsn::mc
