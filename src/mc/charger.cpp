#include "mc/charger.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace wrsn::mc {

void ChargerParams::validate() const {
  if (speed <= 0.0) throw ConfigError("MC speed must be > 0");
  if (battery_capacity <= 0.0) throw ConfigError("MC battery must be > 0");
  if (travel_cost_per_meter < 0.0) throw ConfigError("negative travel cost");
  if (pa_efficiency <= 0.0 || pa_efficiency > 1.0) {
    throw ConfigError("pa_efficiency must be in (0, 1]");
  }
  if (depot_recharge_power <= 0.0) {
    throw ConfigError("depot_recharge_power must be > 0");
  }
}

MobileCharger::MobileCharger(const ChargerParams& params)
    : params_(params), battery_(params.battery_capacity), pinned_pos_(params.depot) {
  params_.validate();
}

MobileCharger::~MobileCharger() {
  WRSN_OBS_ADD(kMcTravelJ, ledger_.travel);
  WRSN_OBS_ADD(kMcRadiatedGenuineJ, ledger_.radiated_genuine);
  WRSN_OBS_ADD(kMcRadiatedSpoofedJ, ledger_.radiated_spoofed);
}

geom::Vec2 MobileCharger::position(Seconds now) const {
  if (!traveling_) return pinned_pos_;
  if (now >= seg_arrival_time_) return dest_;
  const Seconds span = seg_arrival_time_ - seg_start_time_;
  const double t = span > 0.0 ? (now - seg_start_time_) / span : 1.0;
  return geom::lerp(seg_start_, dest_, t);
}

Seconds MobileCharger::begin_travel(Seconds now, geom::Vec2 to) {
  const geom::Vec2 from = position(now);
  const Meters dist = geom::distance(from, to);
  spend(dist * params_.travel_cost_per_meter);
  ledger_.travel += dist * params_.travel_cost_per_meter;

  traveling_ = true;
  seg_start_ = from;
  dest_ = to;
  seg_start_time_ = now;
  seg_arrival_time_ = now + dist / params_.speed;
  return seg_arrival_time_;
}

void MobileCharger::arrive(Seconds now) {
  WRSN_REQUIRE(traveling_, "arrive() without active travel");
  WRSN_REQUIRE(now + 1e-9 >= seg_arrival_time_, "arrive() before arrival time");
  traveling_ = false;
  pinned_pos_ = dest_;
}

void MobileCharger::halt(Seconds now) {
  if (!traveling_) return;
  pinned_pos_ = position(now);
  traveling_ = false;
  // Unused travel energy from the aborted tail is not refunded: locomotion
  // energy was modeled as spent on motion already performed plus braking;
  // keeping the ledger monotone keeps depot audits simple.  The overcharge
  // is bounded by one segment and identical across schedulers.
}

void MobileCharger::radiate(Watts source_power, Seconds duration,
                            bool spoofed) {
  WRSN_REQUIRE(source_power >= 0.0, "negative source power");
  WRSN_REQUIRE(duration >= 0.0, "negative duration");
  const Joules radiated = source_power * duration;
  const Joules drawn = radiated / params_.pa_efficiency;
  spend(drawn);
  ledger_.drawn_for_radiation += drawn;
  if (spoofed) {
    ledger_.radiated_spoofed += radiated;
  } else {
    ledger_.radiated_genuine += radiated;
  }
}

Watts MobileCharger::radiation_draw(Watts source_power) const {
  return source_power / params_.pa_efficiency;
}

Seconds MobileCharger::depot_recharge_time() const {
  return (params_.battery_capacity - battery_) / params_.depot_recharge_power;
}

void MobileCharger::recharge_full() { battery_ = params_.battery_capacity; }

void MobileCharger::damage(Joules amount) {
  WRSN_REQUIRE(amount >= 0.0, "negative damage");
  spend(amount);
}

Seconds MobileCharger::travel_time(geom::Vec2 from, geom::Vec2 to) const {
  return geom::distance(from, to) / params_.speed;
}

void MobileCharger::spend(Joules amount) {
  battery_ = std::max(0.0, battery_ - amount);
}

}  // namespace wrsn::mc
