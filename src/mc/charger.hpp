// Mobile charger (MC) vehicle model: motion, battery, and energy accounting.
//
// The MC is the vehicle both the benign service and the attacker drive; it
// tracks position (with interpolation mid-travel so preemptive schedulers can
// retarget), its own battery, and an energy ledger split into travel and
// radiated energy — the ledger is what the depot audits, and the attack is
// designed to leave it indistinguishable from benign operation (Table III).
#pragma once

#include "common/units.hpp"
#include "geom/vec2.hpp"

namespace wrsn::mc {

/// Vehicle and power-chain parameters.
struct ChargerParams {
  geom::Vec2 depot;                    ///< home/recharge position
  MetersPerSecond speed = 5.0;         ///< travel speed
  Joules battery_capacity = 2e6;       ///< onboard energy store [J]
  double travel_cost_per_meter = 40.0; ///< locomotion energy [J/m]
  double pa_efficiency = 0.85;         ///< radiated / drawn power ratio
  Watts depot_recharge_power = 500.0;  ///< recharge rate while docked

  void validate() const;
};

/// Cumulative energy ledger (depot-auditable).
struct EnergyLedger {
  Joules travel = 0.0;            ///< spent moving
  Joules radiated_genuine = 0.0;  ///< RF energy radiated in genuine sessions
  Joules radiated_spoofed = 0.0;  ///< RF energy radiated in spoofed sessions
  Joules drawn_for_radiation = 0.0;  ///< battery draw incl. PA losses

  Joules radiated_total() const { return radiated_genuine + radiated_spoofed; }
  Joules total() const { return travel + drawn_for_radiation; }
};

/// The mobile charger vehicle.
class MobileCharger {
 public:
  explicit MobileCharger(const ChargerParams& params);

  MobileCharger(const MobileCharger&) = delete;
  MobileCharger& operator=(const MobileCharger&) = delete;

  /// Flushes the energy-ledger totals (travel, genuine/spoofed radiation)
  /// to the installed obs registry in one shot; begin_travel and radiate
  /// are called per leg and per session, too often for a write each.
  ~MobileCharger();

  const ChargerParams& params() const { return params_; }

  /// Position at time `now` (interpolated while traveling).
  geom::Vec2 position(Seconds now) const;

  bool traveling() const { return traveling_; }
  geom::Vec2 destination() const { return dest_; }

  /// Starts traveling from the current position toward `to`; returns the
  /// arrival time.  Travel energy is charged to the battery immediately.
  Seconds begin_travel(Seconds now, geom::Vec2 to);

  /// Commits the arrival: pins the position at the destination.
  /// Requires `now` >= the arrival time returned by begin_travel.
  void arrive(Seconds now);

  /// Interrupts travel at time `now`, pinning the position mid-segment
  /// (used by preemptive schedulers to retarget).
  void halt(Seconds now);

  /// Accounts for `duration` seconds of RF radiation at the model's source
  /// power; `spoofed` routes the ledger entry to the spoofed bucket.
  void radiate(Watts source_power, Seconds duration, bool spoofed);

  /// Instantaneous battery draw while radiating `source_power`.
  Watts radiation_draw(Watts source_power) const;

  /// Time to fully recharge at the depot from the current level.
  Seconds depot_recharge_time() const;

  /// Refills the onboard battery (after a depot stay).
  void recharge_full();

  /// Fault-injection: drains `amount` joules from the onboard battery
  /// (clamped at 0) without a ledger entry — breakdown losses are not
  /// auditable radiation or travel.
  void damage(Joules amount);

  Joules battery_level() const { return battery_; }
  double battery_fraction() const { return battery_ / params_.battery_capacity; }
  const EnergyLedger& ledger() const { return ledger_; }

  /// Travel time between two points at this vehicle's speed.
  Seconds travel_time(geom::Vec2 from, geom::Vec2 to) const;

 private:
  void spend(Joules amount);

  ChargerParams params_;
  Joules battery_;
  EnergyLedger ledger_;

  bool traveling_ = false;
  geom::Vec2 pinned_pos_;   ///< position when not traveling
  geom::Vec2 seg_start_;    ///< travel segment origin
  geom::Vec2 dest_;         ///< travel segment destination
  Seconds seg_start_time_ = 0.0;
  Seconds seg_arrival_time_ = 0.0;
};

}  // namespace wrsn::mc
