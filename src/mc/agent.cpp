#include "mc/agent.hpp"

#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"
#include "mc/tsp.hpp"
#include "obs/metrics.hpp"

namespace wrsn::mc {

void AgentParams::validate() const {
  charger.validate();
  if (battery_reserve_fraction < 0.0 || battery_reserve_fraction >= 1.0) {
    throw ConfigError("battery_reserve_fraction must be in [0, 1)");
  }
  if (tour_batch == 0) throw ConfigError("tour_batch must be >= 1");
  if (tour_max_wait < 0.0) throw ConfigError("tour_max_wait < 0");
}

ChargerAgent::ChargerAgent(sim::World& world, const AgentParams& params)
    : world_(world),
      params_(params),
      territory_(params.territory.begin(), params.territory.end()),
      mc_(params.charger) {
  params_.validate();
}

ChargerAgent::~ChargerAgent() {
  WRSN_OBS_ADD(kMcSessions, double(sessions_completed_));
}

void ChargerAgent::start() {
  WRSN_REQUIRE(!started_, "agent already started");
  started_ = true;
  world_.add_request_listener([this](net::NodeId id) { on_request(id); });
  world_.add_death_listener([this](net::NodeId id) { on_death(id); });
  if (state_ == State::Idle) plan_next();
}

void ChargerAgent::on_request(net::NodeId id) {
  if (!in_territory(id)) return;
  switch (state_) {
    case State::Idle:
      plan_next();
      break;
    case State::Traveling: {
      if (params_.policy != SchedulePolicy::Njnp || !params_.preempt_travel) {
        break;
      }
      const Seconds now = world_.simulator().now();
      const geom::Vec2 pos = mc_.position(now);
      const Meters d_new =
          geom::distance(pos, world_.network().node(id).position);
      const Meters d_cur =
          geom::distance(pos, world_.network().node(target_).position);
      if (d_new + 1e-9 < d_cur) {
        mc_.halt(now);
        ++event_version_;  // invalidate the in-flight arrival event
        travel_to_node(id);
      }
      break;
    }
    case State::Charging:
    case State::ToDepot:
    case State::DepotCharging:
      break;  // request stays pending; picked up at the next plan_next()
    case State::Broken:
      break;  // request stays pending until the vehicle is repaired
  }
}

void ChargerAgent::fault_breakdown(double budget_loss, bool permanent) {
  WRSN_REQUIRE(budget_loss >= 0.0 && budget_loss <= 1.0,
               "budget_loss must be in [0, 1]");
  if (broken_) {
    permanently_broken_ = permanently_broken_ || permanent;
    return;
  }
  broken_ = true;
  permanently_broken_ = permanent;
  const Seconds now = world_.simulator().now();
  switch (state_) {
    case State::Traveling:
    case State::ToDepot:
      mc_.halt(now);
      ++event_version_;  // invalidate the in-flight arrival event
      target_ = net::kInvalidNode;
      break;
    case State::Charging:
      // Truncate the session cleanly: the node is told service ended and
      // credits only the expected gain of the shortened stay.  plan_next at
      // the session tail no-ops on broken_.
      end_session(++event_version_, /*truncated=*/true);
      break;
    case State::DepotCharging:
      ++event_version_;  // invalidate the depot-completion event
      break;
    case State::Idle:
    case State::Broken:
      break;
  }
  mc_.damage(budget_loss * mc_.params().battery_capacity);
  state_ = State::Broken;
  WRSN_LOG(Debug) << "charger breakdown at t=" << now
                  << (permanent ? " (permanent)" : "");
}

void ChargerAgent::fault_repair() {
  if (!broken_ || permanently_broken_) return;
  broken_ = false;
  state_ = State::Idle;
  WRSN_LOG(Debug) << "charger repaired at t=" << world_.simulator().now();
  if (started_) plan_next();
}

void ChargerAgent::adopt_territory(std::span<const net::NodeId> nodes) {
  // A whole-network agent (empty territory) already answers everything.
  if (territory_.empty()) return;
  territory_.insert(nodes.begin(), nodes.end());
  WRSN_LOG(Debug) << "charger adopted " << nodes.size() << " nodes at t="
                  << world_.simulator().now();
  if (started_ && !broken_ && state_ == State::Idle) plan_next();
}

void ChargerAgent::on_death(net::NodeId id) {
  if (id != target_) return;
  const Seconds now = world_.simulator().now();
  if (state_ == State::Traveling) {
    mc_.halt(now);
    ++event_version_;
    target_ = net::kInvalidNode;
    state_ = State::Idle;
    plan_next();
  } else if (state_ == State::Charging) {
    ++event_version_;  // invalidate the scheduled session end
    end_session(event_version_, /*truncated=*/true);
  }
}

void ChargerAgent::plan_next() {
  if (broken_) return;  // a broken vehicle plans nothing until repaired
  WRSN_ASSERT(state_ == State::Idle);

  if (mc_.battery_fraction() < params_.battery_reserve_fraction) {
    go_to_depot();
    return;
  }
  const std::optional<net::NodeId> target = pick_target();
  if (!target.has_value()) return;  // stay idle; next request wakes us
  travel_to_node(*target);
}

std::optional<net::NodeId> ChargerAgent::pick_target() {
  if (params_.policy == SchedulePolicy::Tour) return pick_tour_target();

  // pending_nodes() is the world's maintained index (alive nodes with an
  // outstanding request): no per-decision scan or allocation.
  const std::vector<net::NodeId>& pending = world_.pending_nodes();
  if (pending.empty()) return std::nullopt;

  const Seconds now = world_.simulator().now();
  const geom::Vec2 pos = mc_.position(now);

  net::NodeId best = net::kInvalidNode;
  double best_score = std::numeric_limits<double>::infinity();
  for (const net::NodeId node : pending) {
    if (!in_territory(node)) continue;
    double score = 0.0;
    switch (params_.policy) {
      case SchedulePolicy::Njnp:
        score = geom::distance(pos, world_.network().node(node).position);
        break;
      case SchedulePolicy::Edf:
        score = world_.pending_request(node).escalation_deadline;
        break;
      case SchedulePolicy::Fcfs:
        score = world_.pending_request(node).requested_at;
        break;
      case SchedulePolicy::Tour:
        break;  // handled above
    }
    if (score < best_score) {
      best_score = score;
      best = node;
    }
  }
  if (best == net::kInvalidNode) return std::nullopt;
  return best;
}

std::optional<net::NodeId> ChargerAgent::pick_tour_target() {
  const Seconds now = world_.simulator().now();

  // Drive the remainder of the committed tour first.
  while (!tour_queue_.empty()) {
    const net::NodeId next = tour_queue_.front();
    tour_queue_.erase(tour_queue_.begin());
    if (world_.alive(next) && world_.has_pending_request(next)) return next;
  }

  // Collect the batch candidates from the maintained pending index.
  std::vector<net::NodeId> batch;
  Seconds oldest = now;
  for (const net::NodeId node : world_.pending_nodes()) {
    if (!in_territory(node)) continue;
    batch.push_back(node);
    oldest = std::min(oldest, world_.pending_request(node).requested_at);
  }
  if (batch.empty()) return std::nullopt;

  const bool batch_full = batch.size() >= params_.tour_batch;
  const bool overdue = now - oldest >= params_.tour_max_wait;
  if (!batch_full && !overdue) {
    // Too early to roll out; wake when the oldest request comes of age.
    // Clamp strictly into the future: floating-point rounding of
    // oldest + max_wait can land exactly on `now` while the >= overdue
    // comparison above just missed, which would spin the event loop.
    const Seconds wake_at =
        std::max(oldest + params_.tour_max_wait, now + 1.0);
    const std::uint64_t version = ++tour_wake_version_;
    world_.simulator().schedule_at(wake_at, [this, version] {
      if (version != tour_wake_version_) return;
      if (state_ == State::Idle) plan_next();
    });
    return std::nullopt;
  }

  // Plan a 2-opt tour over the batch from the current position.
  std::vector<geom::Vec2> points;
  points.reserve(batch.size());
  for (const net::NodeId id : batch) {
    points.push_back(world_.network().node(id).position);
  }
  const std::vector<std::size_t> order =
      plan_tour(points, mc_.position(now));
  tour_queue_.clear();
  for (const std::size_t idx : order) tour_queue_.push_back(batch[idx]);

  const net::NodeId first = tour_queue_.front();
  tour_queue_.erase(tour_queue_.begin());
  return first;
}

void ChargerAgent::travel_to_node(net::NodeId id) {
  const Seconds now = world_.simulator().now();
  const geom::Vec2 node_pos = world_.network().node(id).position;
  // Dock at dock_distance short of the node, approaching along the line
  // from the current position.
  const geom::Vec2 pos = mc_.position(now);
  const Meters dock = world_.charging_model().params().dock_distance;
  const geom::Vec2 approach = (node_pos - pos).normalized();
  const geom::Vec2 dock_pos =
      geom::distance(pos, node_pos) > dock ? node_pos - approach * dock : pos;

  target_ = id;
  state_ = State::Traveling;
  const Seconds arrival = mc_.begin_travel(now, dock_pos);
  const std::uint64_t version = ++event_version_;
  world_.simulator().schedule_at(
      arrival, [this, version] { on_arrival(version); });
}

void ChargerAgent::go_to_depot() {
  const Seconds now = world_.simulator().now();
  state_ = State::ToDepot;
  target_ = net::kInvalidNode;
  const Seconds arrival = mc_.begin_travel(now, mc_.params().depot);
  const std::uint64_t version = ++event_version_;
  world_.simulator().schedule_at(
      arrival, [this, version] { on_arrival(version); });
}

void ChargerAgent::on_arrival(std::uint64_t version) {
  if (version != event_version_) return;
  const Seconds now = world_.simulator().now();
  mc_.arrive(now);

  if (state_ == State::ToDepot) {
    state_ = State::DepotCharging;
    const Seconds done = now + mc_.depot_recharge_time();
    const std::uint64_t v = ++event_version_;
    world_.simulator().schedule_at(done, [this, v] {
      if (v != event_version_) return;
      mc_.recharge_full();
      state_ = State::Idle;
      plan_next();
    });
    return;
  }

  WRSN_ASSERT(state_ == State::Traveling);
  const net::NodeId node = target_;
  if (!world_.alive(node)) {
    target_ = net::kInvalidNode;
    state_ = State::Idle;
    plan_next();
    return;
  }
  start_session(node);
}

void ChargerAgent::start_session(net::NodeId id) {
  const Seconds now = world_.simulator().now();
  const Joules capacity = world_.network().node(id).battery_capacity;
  // The node reports its (believed) level with the request; the charger
  // meters its own output and stays docked until the deficit is delivered.
  const Joules deficit = world_.params().charge_target_fraction * capacity -
                         world_.believed_level(id);
  if (deficit <= 0.0) {
    // Node is above target (e.g. stale request); acknowledge and move on.
    world_.note_service_started(id);
    world_.note_service_ended(id, 0.0, 0.0);
    target_ = net::kInvalidNode;
    state_ = State::Idle;
    plan_next();
    return;
  }

  const Watts nominal = world_.nominal_dc_power();
  WRSN_ASSERT(nominal > 0.0);
  // Realized harvest rate this session; the charger observes it on its own
  // meter and extends/shortens the stay to hit the energy target exactly.
  const double gain = world_.draw_genuine_gain_factor();
  const Seconds duration = deficit / (nominal * gain);

  state_ = State::Charging;
  session_start_ = now;
  session_planned_end_ = now + duration;
  session_dc_ = nominal * gain;
  session_expected_ = deficit;

  world_.note_service_started(id);
  world_.set_charge_input(id, session_dc_);

  const std::uint64_t version = ++event_version_;
  world_.simulator().schedule_at(session_planned_end_, [this, version] {
    end_session(version, /*truncated=*/false);
  });
}

std::pair<Watts, Meters> ChargerAgent::neighbor_probe_rf(
    net::NodeId node) const {
  // RF a probing neighbour measures: single benign source at the node's dock
  // position, observed from the nearest alive neighbour.
  const net::Network& network = world_.network();
  Meters nearest = std::numeric_limits<Meters>::infinity();
  for (const net::NodeId nb : network.neighbors(node)) {
    if (!world_.alive(nb)) continue;
    nearest = std::min(nearest, network.distance(node, nb));
  }
  if (!std::isfinite(nearest)) return {0.0, nearest};
  return {world_.charging_model().rf_at_distance(nearest), nearest};
}

void ChargerAgent::end_session(std::uint64_t version, bool truncated) {
  if (version != event_version_) return;
  WRSN_ASSERT(state_ == State::Charging);
  const Seconds now = world_.simulator().now();
  const net::NodeId node = target_;
  const Seconds duration = now - session_start_;
  const Joules expected = world_.expected_session_gain(duration);
  const Joules delivered = session_dc_ * duration;

  world_.set_charge_input(node, 0.0);
  world_.note_service_ended(node, expected, delivered);

  const Watts source = world_.charging_model().params().source_power;
  mc_.radiate(source, duration, /*spoofed=*/false);

  sim::SessionRecord record;
  record.node = node;
  record.start = session_start_;
  record.end = now;
  record.kind = sim::SessionKind::Genuine;
  record.expected_gain = expected;
  record.delivered = delivered;
  record.rf_observed = world_.charging_model().rf_at_distance(
      world_.charging_model().params().dock_distance);
  const auto [probe_rf, probe_dist] = neighbor_probe_rf(node);
  record.rf_neighbor_probe = probe_rf;
  record.nearest_probe_distance = probe_dist;
  record.radiated = source * duration;
  world_.trace().sessions.push_back(record);
  WRSN_OBS_OBSERVE(kMcSessionEnergyJ, record.delivered);

  ++sessions_completed_;
  WRSN_LOG(Debug) << "genuine session on node " << node << " ["
                  << session_start_ << ", " << now << ") delivered "
                  << record.delivered << " J"
                  << (truncated ? " (truncated)" : "");

  target_ = net::kInvalidNode;
  state_ = State::Idle;
  plan_next();
}

}  // namespace wrsn::mc
