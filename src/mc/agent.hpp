// Benign charging-service agent: drives the MC to serve charging requests
// honestly under a pluggable scheduling policy.
//
// This is both the baseline the attack is compared against (network lifetime
// with an honest charger) and the behavioural envelope the attacker must
// imitate to stay stealthy: the CSA agent reuses the same vehicle, the same
// session protocol, and the same radiated power.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "mc/charger.hpp"
#include "sim/world.hpp"

namespace wrsn::mc {

/// Request-service ordering policy.
enum class SchedulePolicy {
  Njnp,  ///< nearest-job-next (with optional travel preemption)
  Edf,   ///< earliest escalation deadline first
  Fcfs,  ///< first-come first-served
  Tour,  ///< periodic TSP tour: batch requests, serve along a 2-opt tour
};

struct AgentParams {
  ChargerParams charger;
  SchedulePolicy policy = SchedulePolicy::Njnp;
  /// NJNP travel preemption: retarget mid-travel when a closer request lands.
  bool preempt_travel = true;
  /// Return to the depot to recharge below this battery fraction.
  double battery_reserve_fraction = 0.15;
  /// Nodes this vehicle is responsible for; empty = the whole network.
  /// Multi-charger fleets partition the field (see mc/fleet.hpp).
  std::vector<net::NodeId> territory;

  /// Tour policy: start a tour once this many requests are pending...
  std::size_t tour_batch = 4;
  /// ...or when the oldest pending request reaches this age [s].
  Seconds tour_max_wait = 1'800.0;

  void validate() const;
};

/// Honest charging service bound to a world.
class ChargerAgent {
 public:
  ChargerAgent(sim::World& world, const AgentParams& params);

  ChargerAgent(const ChargerAgent&) = delete;
  ChargerAgent& operator=(const ChargerAgent&) = delete;

  /// Flushes the completed-session tally to the installed obs registry in
  /// one shot (the per-session path is hot under fleet scenarios).
  ~ChargerAgent();

  /// Subscribes to world events and begins serving.  Call exactly once,
  /// before the simulation runs.
  void start();

  const MobileCharger& charger() const { return mc_; }
  std::uint64_t sessions_completed() const { return sessions_completed_; }

  // --- fault-injection hooks -------------------------------------------------
  /// MC component fault: halts on the spot, truncates any active session,
  /// drains `budget_loss` of the battery capacity, and stops planning until
  /// repaired.  `permanent` means no repair will follow.  Idempotent while
  /// already broken.
  void fault_breakdown(double budget_loss, bool permanent);
  /// Repair complete: resumes planning from the breakdown position.
  /// No-op when not broken or when the breakdown was permanent.
  void fault_repair();
  bool broken() const { return broken_; }

  /// Fleet handoff: permanently adds `nodes` to this vehicle's territory
  /// (e.g. the cell of a permanently lost fleet member) and kicks planning
  /// if the vehicle is idle.  No-op on a whole-network agent (empty
  /// territory already covers everything).
  void adopt_territory(std::span<const net::NodeId> nodes);

 private:
  enum class State { Idle, Traveling, Charging, ToDepot, DepotCharging,
                     Broken };

  bool in_territory(net::NodeId id) const {
    return territory_.empty() || territory_.count(id) > 0;
  }

  void on_request(net::NodeId id);
  void on_death(net::NodeId id);
  /// Chooses and engages the next action from an idle vehicle.
  void plan_next();
  std::optional<net::NodeId> pick_target();
  std::optional<net::NodeId> pick_tour_target();
  void travel_to_node(net::NodeId id);
  void go_to_depot();
  void on_arrival(std::uint64_t version);
  void start_session(net::NodeId id);
  void end_session(std::uint64_t version, bool truncated);
  std::pair<Watts, Meters> neighbor_probe_rf(net::NodeId node) const;

  sim::World& world_;
  AgentParams params_;
  std::unordered_set<net::NodeId> territory_;
  MobileCharger mc_;
  State state_ = State::Idle;
  bool started_ = false;
  bool broken_ = false;
  bool permanently_broken_ = false;

  net::NodeId target_ = net::kInvalidNode;
  std::uint64_t event_version_ = 0;  ///< invalidates stale arrival/end events

  /// Tour policy state: the planned service order still to be driven.
  std::vector<net::NodeId> tour_queue_;
  std::uint64_t tour_wake_version_ = 0;

  // Active-session bookkeeping.
  Seconds session_start_ = 0.0;
  Seconds session_planned_end_ = 0.0;
  Watts session_dc_ = 0.0;
  Joules session_expected_ = 0.0;

  std::uint64_t sessions_completed_ = 0;
};

}  // namespace wrsn::mc
