// Trace serialization: CSV export of the simulation event log, for external
// plotting/analysis pipelines.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace wrsn::analysis {

/// Writes `trace.sessions` as CSV (header + one row per session).
void write_sessions_csv(std::ostream& os, const sim::Trace& trace);

/// Writes `trace.requests` as CSV.
void write_requests_csv(std::ostream& os, const sim::Trace& trace);

/// Writes `trace.deaths` as CSV.
void write_deaths_csv(std::ostream& os, const sim::Trace& trace);

/// Writes `trace.escalations` as CSV.
void write_escalations_csv(std::ostream& os, const sim::Trace& trace);

/// Writes all four tables to `<prefix>_sessions.csv`, `<prefix>_requests.csv`,
/// `<prefix>_deaths.csv`, `<prefix>_escalations.csv`.
/// Throws SimulationError if a file cannot be opened.
void export_trace(const std::string& prefix, const sim::Trace& trace);

}  // namespace wrsn::analysis
