#include "analysis/config_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/check.hpp"

namespace wrsn::analysis {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

double to_double(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "': cannot parse number '" +
                      value + "'");
  }
  if (consumed != value.size()) {
    throw ConfigError("config key '" + key + "': trailing junk in '" + value +
                      "'");
  }
  return parsed;
}

std::size_t to_size(const std::string& key, const std::string& value) {
  const double parsed = to_double(key, value);
  if (parsed < 0.0 || parsed != std::floor(parsed)) {
    throw ConfigError("config key '" + key + "': expected a non-negative "
                      "integer, got '" + value + "'");
  }
  return static_cast<std::size_t>(parsed);
}

bool to_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw ConfigError("config key '" + key + "': expected a boolean, got '" +
                    value + "'");
}

net::KeyNodeRule to_key_rule(const std::string& key,
                             const std::string& value) {
  if (value == "articulation") return net::KeyNodeRule::Articulation;
  if (value == "top-traffic") return net::KeyNodeRule::TopTraffic;
  if (value == "hybrid") return net::KeyNodeRule::Hybrid;
  throw ConfigError("config key '" + key +
                    "': expected articulation|top-traffic|hybrid");
}

csa::SpoofMode to_spoof_mode(const std::string& key,
                             const std::string& value) {
  if (value == "phase-cancel") return csa::SpoofMode::PhaseCancel;
  if (value == "partial-cancel") return csa::SpoofMode::PartialCancel;
  if (value == "silent-skip") return csa::SpoofMode::SilentSkip;
  if (value == "no-service") return csa::SpoofMode::NoService;
  throw ConfigError(
      "config key '" + key +
      "': expected phase-cancel|partial-cancel|silent-skip|no-service");
}

mc::SchedulePolicy to_policy(const std::string& key,
                             const std::string& value) {
  if (value == "njnp") return mc::SchedulePolicy::Njnp;
  if (value == "edf") return mc::SchedulePolicy::Edf;
  if (value == "fcfs") return mc::SchedulePolicy::Fcfs;
  if (value == "tour") return mc::SchedulePolicy::Tour;
  throw ConfigError("config key '" + key + "': expected njnp|edf|fcfs|tour");
}

}  // namespace

std::map<std::string, std::string> parse_ini(std::istream& in) {
  std::map<std::string, std::string> entries;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    if (stripped.front() == '[' && stripped.back() == ']') continue;

    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("config line " + std::to_string(line_number) +
                        ": expected 'key = value', got '" + stripped + "'");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw ConfigError("config line " + std::to_string(line_number) +
                        ": empty key or value");
    }
    if (!entries.emplace(key, value).second) {
      throw ConfigError("config line " + std::to_string(line_number) +
                        ": duplicate key '" + key + "'");
    }
  }
  return entries;
}

ScenarioConfig apply_config(
    const ScenarioConfig& base,
    const std::map<std::string, std::string>& entries) {
  ScenarioConfig cfg = base;

  using Setter = std::function<void(const std::string&, const std::string&)>;
  const std::map<std::string, Setter> setters = {
      // topology
      {"topology.node_count",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.node_count = to_size(k, v);
       }},
      {"topology.comm_range",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.comm_range = to_double(k, v);
       }},
      {"topology.region_size",
       [&](const std::string& k, const std::string& v) {
         const double side = to_double(k, v);
         cfg.topology.region = {{0.0, 0.0}, {side, side}};
       }},
      {"topology.mean_data_rate_bps",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.mean_data_rate_bps = to_double(k, v);
       }},
      {"topology.battery_capacity",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.battery_capacity = to_double(k, v);
       }},
      {"topology.deployment",
       [&](const std::string& k, const std::string& v) {
         if (v == "uniform") {
           cfg.topology.deployment = net::Deployment::Uniform;
         } else if (v == "grid") {
           cfg.topology.deployment = net::Deployment::Grid;
         } else if (v == "clustered") {
           cfg.topology.deployment = net::Deployment::Clustered;
         } else if (v == "corridor") {
           cfg.topology.deployment = net::Deployment::Corridor;
         } else {
           throw ConfigError("config key '" + k +
                             "': expected uniform|grid|clustered|corridor");
         }
       }},
      {"topology.min_separation",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.min_separation = to_double(k, v);
       }},
      {"topology.corridor_count",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.corridor_count = to_size(k, v);
       }},
      {"topology.class_count",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.class_count = to_size(k, v);
       }},
      {"topology.class_capacity_ratio",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.class_capacity_ratio = to_double(k, v);
       }},
      {"topology.class_rate_ratio",
       [&](const std::string& k, const std::string& v) {
         cfg.topology.class_rate_ratio = to_double(k, v);
       }},
      // mobility
      {"mobility.fraction",
       [&](const std::string& k, const std::string& v) {
         cfg.world.mobility.fraction = to_double(k, v);
       }},
      {"mobility.interval",
       [&](const std::string& k, const std::string& v) {
         cfg.world.mobility.interval = to_double(k, v);
       }},
      {"mobility.speed_min",
       [&](const std::string& k, const std::string& v) {
         cfg.world.mobility.speed_min = to_double(k, v);
       }},
      {"mobility.speed_max",
       [&](const std::string& k, const std::string& v) {
         cfg.world.mobility.speed_max = to_double(k, v);
       }},
      {"mobility.pause_min",
       [&](const std::string& k, const std::string& v) {
         cfg.world.mobility.pause_min = to_double(k, v);
       }},
      {"mobility.pause_max",
       [&](const std::string& k, const std::string& v) {
         cfg.world.mobility.pause_max = to_double(k, v);
       }},
      // k-coverage utility
      {"coverage.k",
       [&](const std::string& k, const std::string& v) {
         cfg.world.coverage.k = to_size(k, v);
       }},
      {"coverage.radius",
       [&](const std::string& k, const std::string& v) {
         cfg.world.coverage.radius = to_double(k, v);
       }},
      {"coverage.bonus",
       [&](const std::string& k, const std::string& v) {
         cfg.world.coverage.bonus = to_double(k, v);
       }},
      // world
      {"world.request_threshold",
       [&](const std::string& k, const std::string& v) {
         cfg.world.request_threshold = to_double(k, v);
       }},
      {"world.patience",
       [&](const std::string& k, const std::string& v) {
         cfg.world.patience = to_double(k, v);
       }},
      {"world.min_request_gap",
       [&](const std::string& k, const std::string& v) {
         cfg.world.min_request_gap = to_double(k, v);
       }},
      {"world.hardware_mtbf",
       [&](const std::string& k, const std::string& v) {
         cfg.world.hardware_mtbf = to_double(k, v);
       }},
      {"world.emergency_enabled",
       [&](const std::string& k, const std::string& v) {
         cfg.world.emergency_enabled = to_bool(k, v);
       }},
      {"world.sensing_power",
       [&](const std::string& k, const std::string& v) {
         cfg.world.drain.sensing_power = to_double(k, v);
       }},
      {"world.initial_level_min",
       [&](const std::string& k, const std::string& v) {
         cfg.world.initial_level_min = to_double(k, v);
       }},
      {"world.initial_level_max",
       [&](const std::string& k, const std::string& v) {
         cfg.world.initial_level_max = to_double(k, v);
       }},
      {"world.source_power",
       [&](const std::string& k, const std::string& v) {
         cfg.world.charging.source_power = to_double(k, v);
       }},
      // benign charger
      {"benign.policy",
       [&](const std::string& k, const std::string& v) {
         cfg.benign.policy = to_policy(k, v);
       }},
      {"benign.speed",
       [&](const std::string& k, const std::string& v) {
         cfg.benign.charger.speed = to_double(k, v);
       }},
      // attack
      {"attack.spoof_mode",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.spoof_mode = to_spoof_mode(k, v);
       }},
      {"attack.key_rule",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.key_selection.rule = to_key_rule(k, v);
       }},
      {"attack.key_count",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.key_selection.max_count = to_size(k, v);
       }},
      {"attack.pace_limit",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.pace_limit = to_size(k, v);
       }},
      {"attack.pace_window",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.pace_window = to_double(k, v);
       }},
      {"attack.partial_leak_ratio",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.partial_leak_ratio = to_double(k, v);
       }},
      {"attack.lookahead",
       [&](const std::string& k, const std::string& v) {
         cfg.attack.lookahead = to_double(k, v);
       }},
      // faults
      {"faults.mc_breakdown_mtbf",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.mc_breakdown_mtbf = to_double(k, v);
       }},
      {"faults.mc_repair_mean",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.mc_repair_mean = to_double(k, v);
       }},
      {"faults.mc_budget_loss",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.mc_budget_loss = to_double(k, v);
       }},
      {"faults.mc_permanent_at",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.mc_permanent_at = to_double(k, v);
       }},
      {"faults.node_burst_mtbf",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.node_burst_mtbf = to_double(k, v);
       }},
      {"faults.node_burst_size",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.node_burst_size = to_size(k, v);
       }},
      {"faults.phase_noise_mtbf",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.phase_noise_mtbf = to_double(k, v);
       }},
      {"faults.phase_noise_duration",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.phase_noise_duration = to_double(k, v);
       }},
      {"faults.phase_noise_scale",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.phase_noise_scale = to_double(k, v);
       }},
      {"faults.escalation_drop_prob",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.escalation_drop_prob = to_double(k, v);
       }},
      {"faults.escalation_delay_prob",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.escalation_delay_prob = to_double(k, v);
       }},
      {"faults.escalation_delay_max",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.escalation_delay_max = to_double(k, v);
       }},
      {"faults.battery_drift_mtbf",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.battery_drift_mtbf = to_double(k, v);
       }},
      {"faults.battery_drift_power",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.battery_drift_power = to_double(k, v);
       }},
      {"faults.battery_drift_duration",
       [&](const std::string& k, const std::string& v) {
         cfg.faults.battery_drift_duration = to_double(k, v);
       }},
      // fleet
      {"fleet.size",
       [&](const std::string& k, const std::string& v) {
         cfg.fleet_size = to_size(k, v);
         if (cfg.fleet_size == 0) {
           throw ConfigError("'" + k + "' must be >= 1");
         }
       }},
      {"fleet.compromised",
       [&](const std::string& k, const std::string& v) {
         cfg.fleet_compromised = to_size(k, v);
       }},
      // policy (DESIGN.md §15)
      {"policy.attacker",
       [&](const std::string&, const std::string& v) {
         cfg.policy.attacker.kind = policy::parse_attack_policy(v);
       }},
      {"policy.epsilon",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.attacker.epsilon = to_double(k, v);
       }},
      {"policy.ucb_c",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.attacker.ucb_c = to_double(k, v);
       }},
      {"policy.epoch",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.attacker.epoch = to_double(k, v);
       }},
      {"policy.risk_weight",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.attacker.risk_weight = to_double(k, v);
       }},
      {"policy.risk_budget",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.attacker.risk_budget = to_size(k, v);
       }},
      {"policy.defender",
       [&](const std::string&, const std::string& v) {
         cfg.policy.defender.kind = policy::parse_defender_policy(v);
       }},
      {"policy.defender_window",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.defender.window = to_double(k, v);
       }},
      {"policy.defender_quantile",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.defender.quantile = to_double(k, v);
       }},
      {"policy.defender_min_samples",
       [&](const std::string& k, const std::string& v) {
         cfg.policy.defender.min_samples = to_size(k, v);
       }},
      // run
      {"horizon",
       [&](const std::string& k, const std::string& v) {
         cfg.horizon = to_double(k, v);
         cfg.attack.campaign_deadline = cfg.horizon;
       }},
      {"seed",
       [&](const std::string& k, const std::string& v) {
         cfg.seed = static_cast<std::uint64_t>(to_size(k, v));
       }},
      {"hardened_detectors",
       [&](const std::string& k, const std::string& v) {
         cfg.hardened_detectors = to_bool(k, v);
       }},
  };

  for (const auto& [key, value] : entries) {
    const auto it = setters.find(key);
    if (it == setters.end()) {
      throw ConfigError("unknown config key '" + key + "'");
    }
    it->second(key, value);
  }
  // Fault parameters carry cross-field constraints (e.g. drop + delay
  // probabilities summing past 1), so the whole section validates at load
  // time rather than at the first run_scenario call.  The topology class /
  // corridor knobs and the mobility/coverage sections carry the same kind
  // of constraints (speed and pause ordering, positive ratios), so they
  // validate here too.
  cfg.faults.validate();
  cfg.topology.validate();
  cfg.world.mobility.validate();
  cfg.world.coverage.validate();
  cfg.policy.validate();
  return cfg;
}

ScenarioConfig load_config(std::istream& in) {
  return apply_config(default_scenario(), parse_ini(in));
}

ScenarioConfig load_config_file(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    throw ConfigError("cannot open config file '" + path + "'");
  }
  return load_config(file);
}

}  // namespace wrsn::analysis
