// Perf-trace emission for the experiment runner: turns runner::RunStats
// into Table rows so every bench's output doubles as a throughput trace.
#pragma once

#include <deque>
#include <ostream>
#include <string>

#include "analysis/table.hpp"
#include "runner/runner.hpp"

namespace wrsn::analysis {

/// Builds a one-table perf trace: trial count, thread count, wall time,
/// per-trial time distribution (total/mean/min/max), throughput, speedup.
Table perf_table(const runner::RunStats& stats, const std::string& title);

/// Convenience: prints `perf_table` for the stats of a single-phase bench.
void print_perf(std::ostream& os, const runner::RunStats& stats,
                const std::string& title = "Runner perf trace");

/// Per-phase accounting for a bench that makes several `run_trials` calls
/// back to back.  Each phase keeps its own RunStats — so per-phase speedups
/// stay honest when phases ran with different thread counts — and the
/// combined row derives its speedup from Σ trial-seconds / Σ wall-seconds
/// rather than from any single phase's thread count.  (The predecessor,
/// `merge_stats`, collapsed phases into one RunStats with
/// `threads = max(threads)`, which misreported the merged speedup and
/// throughput whenever thread counts differed.)
class PhasedStats {
 public:
  /// Registers a phase and returns its stats slot; pass the pointer straight
  /// to `run_trials`.  Slots stay valid as more phases are added.
  runner::RunStats* phase(std::string name);

  std::size_t phase_count() const { return phases_.size(); }
  const runner::RunStats& phase_stats(std::size_t i) const;
  const std::string& phase_name(std::size_t i) const;

  /// Combined view: trials summed, wall-seconds summed (phases run back to
  /// back), trial times concatenated.  `threads` is the common per-phase
  /// value, or 0 when phases used different thread counts (the table prints
  /// "mixed"); `speedup()` on the result is Σ trial-seconds / Σ wall.
  runner::RunStats combined() const;

  /// One row per phase, plus a combined row when there are several.
  Table table(const std::string& title) const;

 private:
  struct Entry {
    std::string name;
    runner::RunStats stats;
  };
  std::deque<Entry> phases_;  // deque: `phase()` pointers stay valid
};

/// Convenience: prints `PhasedStats::table`.
void print_perf(std::ostream& os, const PhasedStats& stats,
                const std::string& title = "Runner perf trace");

}  // namespace wrsn::analysis
