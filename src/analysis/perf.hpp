// Perf-trace emission for the experiment runner: turns a runner::RunStats
// into a Table row so every bench's output doubles as a throughput trace.
#pragma once

#include <ostream>

#include "analysis/table.hpp"
#include "runner/runner.hpp"

namespace wrsn::analysis {

/// Builds a one-table perf trace: trial count, thread count, wall time,
/// per-trial time distribution (total/mean/min/max), throughput, speedup.
Table perf_table(const runner::RunStats& stats, const std::string& title);

/// Convenience: prints `perf_table` for the combined stats of a bench run.
void print_perf(std::ostream& os, const runner::RunStats& stats,
                const std::string& title = "Runner perf trace");

/// Merges `extra` into `into` as if their trials ran in one call: trial
/// times concatenate and wall times add (the calls ran back to back).
void merge_stats(runner::RunStats& into, const runner::RunStats& extra);

}  // namespace wrsn::analysis
