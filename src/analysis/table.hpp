// Column-aligned table and CSV emission for bench output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace wrsn::analysis {

/// A simple text table: set headers, push rows of cells, print aligned.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& headers(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  /// Prints title + aligned columns.
  void print(std::ostream& os) const;
  /// Prints the same data as CSV (no title line).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
std::string fmt(double value, int digits = 3);

/// Formats "mean +- ci" for a summarized metric.
std::string fmt_ci(double mean, double ci, int digits = 3);

}  // namespace wrsn::analysis
