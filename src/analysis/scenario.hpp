// One-call experiment runner: builds a world, binds a benign or attacking
// charging service, simulates to the horizon, runs the detector suite, and
// returns the full assessment.  All benches and examples are thin wrappers
// over this.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/orchestrator.hpp"
#include "core/report.hpp"
#include "detect/detectors.hpp"
#include "fault/fault.hpp"
#include "mc/agent.hpp"
#include "net/topology.hpp"
#include "policy/policy.hpp"
#include "sim/world.hpp"

namespace wrsn::analysis {

/// Which charging service operates the vehicle.
enum class ChargerMode { Benign, Attack };

struct ScenarioConfig {
  net::TopologyConfig topology;
  sim::WorldParams world;
  csa::AttackParams attack;   ///< used in Attack mode
  mc::AgentParams benign;     ///< used in Benign mode
  Seconds horizon = 4 * 86'400.0;
  std::uint64_t seed = 1;
  /// Deploy the hardened detector suite (coulomb-counter defenses) instead
  /// of the standard one.
  bool hardened_detectors = false;
  /// Deterministic fault injection ([faults] INI section); all kinds
  /// disabled by default.  The schedule is compiled from rng.fork("faults"),
  /// so it is identical across world update modes and planner choices.
  fault::FaultParams faults;
  /// Fleet size ([fleet] INI section).  1 = the classic single-charger
  /// mission; > 1 routes runners (the fuzzer included) through
  /// run_fleet_scenario.
  std::size_t fleet_size = 1;
  /// Fleet member running the CSA attack in Attack mode; SIZE_MAX (or any
  /// value >= fleet_size) = wholly honest fleet.
  std::size_t fleet_compromised = SIZE_MAX;
  /// Adaptive-policy plug-ins for both sides ([policy.*] INI section,
  /// DESIGN.md §15).  Defaults are the static policies, which reproduce
  /// pre-policy behavior bit-for-bit.
  policy::PolicyParams policy;
};

/// Everything a bench needs from one simulated mission.
struct ScenarioResult {
  csa::AttackReport report;
  std::vector<detect::SuiteResult> detections;
  std::vector<net::NodeId> keys;
  sim::Trace trace;
  std::size_t node_count = 0;
  std::size_t alive_at_end = 0;
  std::size_t sink_connected_at_end = 0;
  mc::EnergyLedger ledger;
  /// Field-wise sum over EVERY vehicle of the mission (equal to `ledger`
  /// for single-charger runs).  The trace interleaves all vehicles'
  /// sessions, so energy-conservation oracles must compare against this,
  /// not the single-vehicle `ledger`.
  mc::EnergyLedger fleet_ledger;
  std::uint64_t plans_computed = 0;
  /// Fault-injection tallies (all zero when faults are disabled).
  fault::FaultStats fault_stats;
  /// Kernel events executed over the whole mission — the fuzzer's liveness
  /// oracle bounds this to catch event-loop spins.
  std::uint64_t events_executed = 0;
  /// Min/max true battery fraction over nodes still alive at the horizon
  /// (0 when none survive) — the fuzzer's battery-bounds oracle.
  double min_final_level_fraction = 0.0;
  double max_final_level_fraction = 0.0;
};

/// Calibrated default configuration (see DESIGN.md for the derivation):
/// 100 nodes on 400 m x 400 m, 65 m radios, 10.8 kJ batteries, ~5 W docked
/// harvest, 3 m/s charger — request load ~45 % of charger capacity.
ScenarioConfig default_scenario();

/// The calibrated detector suite and its evaluation context for one
/// scenario.  Single source of truth shared by the single-charger and fleet
/// paths (they used to carry hand-duplicated copies of this block, which
/// could silently drift apart).
struct DetectorSetup {
  detect::SuiteCalibration calibration;
  detect::DetectorSuite suite;
  detect::DetectorContext context;
};

/// Builds the deployment-calibrated suite (hardened or standard per
/// `config`) and the detector context for a world built from `config`.
DetectorSetup make_detector_setup(const ScenarioConfig& config,
                                  const sim::World& world);

/// Runs one mission.  In Attack mode, `planner` selects the attacker's
/// route strategy (defaults to CsaPlanner when null).
ScenarioResult run_scenario(const ScenarioConfig& config, ChargerMode mode,
                            const csa::Planner* planner = nullptr);

/// Runs a multi-charger mission: `fleet_size` vehicles at the default depot
/// sites, each serving its Voronoi cell.  If `compromised < fleet_size`,
/// that member runs the CSA attack inside its own cell (route strategy from
/// `planner`, CsaPlanner when null); otherwise the whole fleet is honest.
/// The result's ledger/keys describe the compromised vehicle when present
/// (first vehicle otherwise).  When the fault layer permanently kills the
/// faulted vehicle, its Voronoi cell is handed off: every node of the cell
/// is adopted by the survivor with the nearest depot (squared distance,
/// ties to the lower fleet index) and survivors replan.
ScenarioResult run_fleet_scenario(const ScenarioConfig& config,
                                  std::size_t fleet_size,
                                  std::size_t compromised = SIZE_MAX,
                                  const csa::Planner* planner = nullptr);

/// Runs one mission exactly the way every front end (fuzzer, CLI replay,
/// mission service) does: `config.fleet_size > 1` routes through
/// run_fleet_scenario, and in Attack mode the compromised index is clamped
/// into the fleet so a stale `fleet.compromised` override can never silently
/// demote the mission to an honest one.  Benign fleets are wholly honest.
/// This is the ONE resolution point for fleet/compromised semantics — the
/// service's bit-identical-to-standalone guarantee rests on all paths
/// funnelling through it.
ScenarioResult run_mission(const ScenarioConfig& config, ChargerMode mode,
                           const csa::Planner* planner = nullptr);

}  // namespace wrsn::analysis
